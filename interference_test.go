package interference

import (
	"os"
	"strings"
	"testing"

	"repro/internal/topology"
)

func TestPingPongHenriDefaults(t *testing.T) {
	res, err := PingPong(Config{Noiseless: true}, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Paper henri: ≈1.4–1.8 µs depending on setup.
	if res.LatencyMicros < 1.2 || res.LatencyMicros > 2.5 {
		t.Fatalf("4B latency %.2fµs", res.LatencyMicros)
	}
	if res.P10Micros > res.LatencyMicros || res.P90Micros < res.LatencyMicros {
		t.Fatalf("decile band [%v,%v] does not bracket median %v",
			res.P10Micros, res.P90Micros, res.LatencyMicros)
	}
}

func TestPingPongAsymptoticBandwidth(t *testing.T) {
	res, err := PingPong(Config{Noiseless: true}, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	if res.BandwidthMBps < 10000 || res.BandwidthMBps > 11000 {
		t.Fatalf("asymptotic bandwidth %.0f MB/s, want ≈10500", res.BandwidthMBps)
	}
}

func TestPingPongErrors(t *testing.T) {
	if _, err := PingPong(Config{Cluster: "nope"}, 4); err == nil {
		t.Fatal("unknown cluster accepted")
	}
	if _, err := PingPong(Config{}, -1); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestInterfereMemoryBoundDegradesComm(t *testing.T) {
	sum, err := Interfere(Config{Noiseless: true, Runs: 1}, InterferenceOptions{
		Workload:    MemoryBound,
		Cores:       35,
		MessageSize: 64 << 20,
		DataNearNIC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum.BandwidthTogetherMBps >= sum.BandwidthAloneMBps*0.6 {
		t.Fatalf("35-core STREAM did not degrade bandwidth: %.0f → %.0f MB/s",
			sum.BandwidthAloneMBps, sum.BandwidthTogetherMBps)
	}
}

func TestInterfereCPUBoundHarmless(t *testing.T) {
	sum, err := Interfere(Config{Noiseless: true, Runs: 1}, InterferenceOptions{
		Workload: CPUBound,
		Cores:    20,
	})
	if err != nil {
		t.Fatal(err)
	}
	// §3.2: CPU-bound computation does not hurt latency (it slightly
	// helps via the uncore).
	if sum.LatencyTogetherMicros > sum.LatencyAloneMicros*1.05 {
		t.Fatalf("CPU-bound compute hurt latency: %.2f → %.2f µs",
			sum.LatencyAloneMicros, sum.LatencyTogetherMicros)
	}
}

func TestInterfereCursorSweepDirection(t *testing.T) {
	low, err := Interfere(Config{Noiseless: true, Runs: 1}, InterferenceOptions{
		Cursor: 1, Cores: 35, MessageSize: 64 << 20, DataNearNIC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Interfere(Config{Noiseless: true, Runs: 1}, InterferenceOptions{
		Cursor: 1200, Cores: 35, MessageSize: 64 << 20, DataNearNIC: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	lowDrop := 1 - low.BandwidthTogetherMBps/low.BandwidthAloneMBps
	highDrop := 1 - high.BandwidthTogetherMBps/high.BandwidthAloneMBps
	if lowDrop <= highDrop+0.2 {
		t.Fatalf("memory-bound cursor (drop %.2f) not worse than CPU-bound (drop %.2f)",
			lowDrop, highDrop)
	}
}

func TestInterfereValidation(t *testing.T) {
	if _, err := Interfere(Config{}, InterferenceOptions{Workload: "quantum"}); err == nil {
		t.Fatal("unknown workload accepted")
	}
	if _, err := Interfere(Config{}, InterferenceOptions{Cores: 99}); err == nil {
		t.Fatal("out-of-range core count accepted")
	}
}

func TestExperimentsListed(t *testing.T) {
	es := Experiments()
	if len(es) != 26 {
		t.Fatalf("%d experiments, want 26", len(es))
	}
	ids := map[string]bool{}
	for _, e := range es {
		ids[e.ID] = true
	}
	for _, want := range []string{"fig1", "fig4", "fig7", "fig10", "tab1", "sec5.2"} {
		if !ids[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestRunWritesTables(t *testing.T) {
	var ascii, csv strings.Builder
	if err := Run(Config{Noiseless: true, Runs: 1}, "sec5.2", &ascii); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ascii.String(), "overhead_us") {
		t.Fatalf("ascii output missing header:\n%s", ascii.String())
	}
	if err := RunCSV(Config{Noiseless: true, Runs: 1}, "sec5.2", &csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "#") {
		t.Fatalf("csv output missing title comment:\n%s", csv.String())
	}
	if err := Run(Config{}, "nope", &ascii); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestClusterSpecText(t *testing.T) {
	s, err := ClusterSpec("billy")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "64 total") {
		t.Fatalf("spec text %q", s)
	}
	if _, err := ClusterSpec("nope"); err == nil {
		t.Fatal("unknown cluster accepted")
	}
}

func TestDeterminismSameSeed(t *testing.T) {
	a, _ := PingPong(Config{Seed: 7}, 4096)
	b, _ := PingPong(Config{Seed: 7}, 4096)
	if a != b {
		t.Fatalf("same seed, different results: %+v vs %+v", a, b)
	}
}

func TestConfigSpecFile(t *testing.T) {
	// Export a preset, tweak nothing, and run through the custom-spec
	// path: results must match the named preset exactly.
	dir := t.TempDir()
	path := dir + "/henri.json"
	spec := topology.Henri()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := topology.WriteSpec(f, spec); err != nil {
		t.Fatal(err)
	}
	f.Close()
	a, err := PingPong(Config{SpecFile: path, Noiseless: true}, 4096)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := PingPong(Config{Cluster: "henri", Noiseless: true}, 4096)
	if a != b {
		t.Fatalf("spec-file run diverged from preset: %+v vs %+v", a, b)
	}
	if _, err := PingPong(Config{SpecFile: "/nope.json"}, 4); err == nil {
		t.Fatal("missing spec file accepted")
	}
}

func TestAutotunePublicAPI(t *testing.T) {
	// A communication-dominated memory-bound app: extra workers past the
	// saturation point only degrade the transfers.
	res, err := Autotune(Config{Noiseless: true}, TuneOptions{
		TaskMB:               2,
		MessagesPerIteration: 12,
		WorkerCounts:         []int{2, 16, 34},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 || res.Best.Workers == 0 {
		t.Fatalf("sweep incomplete: %+v", res)
	}
	// Memory-bound default: the full machine must not win.
	if res.Best.Workers == 34 {
		t.Fatalf("memory-bound autotune picked the full machine: %+v", res.Series)
	}
	// CPU-bound: the full machine must win.
	cpu, err := Autotune(Config{Noiseless: true}, TuneOptions{
		Intensity:    200,
		TaskMB:       2,
		WorkerCounts: []int{2, 16, 34},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cpu.Best.Workers != 34 {
		t.Fatalf("CPU-bound autotune picked %d workers: %+v", cpu.Best.Workers, cpu.Series)
	}
	if _, err := Autotune(Config{}, TuneOptions{Intensity: -1}); err == nil {
		t.Fatal("negative intensity accepted")
	}
}
