// Faults: run a resilient two-rank distributed CG through a scheduled
// node crash and watch the recovery machinery work — the heartbeat
// failure detector declares the death, the survivor shrinks the ring,
// rolls back to the last checkpoint, re-executes the dead rank's tasks,
// and converges to the exact residual a healthy run produces.
//
// The numerics run host-side (a small SPD tridiagonal CG) and are
// driven by the simulated iterations: checkpoints deep-copy the solver
// state and a rollback restores it, so the replayed iterations redo
// bit-identical float arithmetic. The simulated tasks model what that
// compute and its halo exchanges cost on the cluster, crash included.
//
// This example uses internal packages directly (it lives in the same
// module); the library's public entry points remain the root package.
package main

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/net"
	"repro/internal/sim"
	"repro/internal/taskrt"
	"repro/internal/topology"
)

// cg is a tiny host-side conjugate-gradient solve (A tridiagonal SPD,
// b = ones) whose state can be checkpointed and rolled back.
type cg struct {
	x, r, p []float64
	rsold   float64
}

func newCG(n int) *cg {
	s := &cg{x: make([]float64, n), r: make([]float64, n), p: make([]float64, n), rsold: float64(n)}
	for i := range s.r {
		s.r[i], s.p[i] = 1, 1
	}
	return s
}

func (s *cg) step() {
	n := len(s.x)
	ap := make([]float64, n)
	var pap float64
	for i := 0; i < n; i++ {
		ap[i] = 2.001 * s.p[i]
		if i > 0 {
			ap[i] -= s.p[i-1]
		}
		if i < n-1 {
			ap[i] -= s.p[i+1]
		}
		pap += s.p[i] * ap[i]
	}
	alpha := s.rsold / pap
	var rsnew float64
	for i := 0; i < n; i++ {
		s.x[i] += alpha * s.p[i]
		s.r[i] -= alpha * ap[i]
		rsnew += s.r[i] * s.r[i]
	}
	for i := 0; i < n; i++ {
		s.p[i] = s.r[i] + rsnew/s.rsold*s.p[i]
	}
	s.rsold = rsnew
}

func (s *cg) clone() *cg {
	c := &cg{rsold: s.rsold}
	c.x = append([]float64(nil), s.x...)
	c.r = append([]float64(nil), s.r...)
	c.p = append([]float64(nil), s.p...)
	return c
}

func (s *cg) restore(c *cg) {
	copy(s.x, c.x)
	copy(s.r, c.r)
	copy(s.p, c.p)
	s.rsold = c.rsold
}

// solve runs the resilient app under the given fault schedule and
// returns the recovery statistics plus the final residual.
func solve(sched *fault.Schedule) (taskrt.ResilientStats, float64) {
	spec := topology.Henri()
	spec.NIC.NoiseFrac = 0
	cluster := machine.NewCluster(spec, 2, 1)
	nw := net.New(cluster)
	if sched != nil {
		nw.InstallFaults(fault.NewInjector(cluster, sched, 1))
	}
	world := mpi.NewWorld(cluster, nw)
	det := world.StartHeartbeat(mpi.DefaultHeartbeat())

	var rts [2]*taskrt.Runtime
	for i := 0; i < 2; i++ {
		rts[i] = taskrt.New(taskrt.Config{
			Node:        cluster.Nodes[i],
			Rank:        world.Rank(i),
			MainCore:    0,
			CommCore:    world.Rank(i).CommCore,
			WorkerCores: []int{1, 2},
		})
		rts[i].Start()
	}

	solver := newCG(64)
	snaps := map[int]*cg{-1: solver.clone()}
	app := &taskrt.ResilientApp{
		Name:            "cg",
		Slice:           func(int) machine.ComputeSpec { return kernels.CGBlock(512, 512, -1) },
		TasksPerIter:    8,
		Iterations:      12,
		MsgSize:         256 << 10,
		HandleNUMA:      -1,
		CheckpointEvery: 3,
		CheckpointBytes: 1 << 20,
		OnIteration:     func(int) { solver.step() },
		OnCheckpoint:    func(it int) { snaps[it] = solver.clone() },
		OnRollback:      func(ckpt int) { solver.restore(snaps[ckpt]) },
	}
	st := app.Run(rts[:], det)
	return st, math.Sqrt(solver.rsold)
}

func main() {
	healthy, wantResid := solve(nil)
	fmt.Printf("healthy run : %2d iterations on %d ranks in %v, residual %.10e\n",
		healthy.CompletedIters, healthy.Survivors, healthy.Elapsed, wantResid)

	// Crash node 1 at 40% of the healthy runtime.
	crashAt := sim.DurationOfSeconds(healthy.Elapsed.Seconds() * 0.4)
	sched := &fault.Schedule{Events: []fault.Event{
		{Kind: fault.NodeCrash, Node: 1, From: -1, To: -1, At: crashAt},
	}}
	st, resid := solve(sched)
	fmt.Printf("crashed run : %2d iterations, node 1 lost at %v, residual %.10e\n",
		st.CompletedIters, crashAt, resid)

	fmt.Printf("\nrecovery statistics:\n")
	fmt.Printf("  survivors            %d of 2\n", st.Survivors)
	fmt.Printf("  tasks re-executed    %.0f (the dead rank's lineage since the last checkpoint)\n", st.TasksReexec)
	fmt.Printf("  iterations replayed  %.0f (rolled back to the checkpoint)\n", st.RollbackIters)
	fmt.Printf("  checkpoints taken    %.0f (every 3 iterations, 1 MB each)\n", st.Checkpoints)
	fmt.Printf("  time lost recovering %.3f ms\n", st.RecoverySecs*1e3)
	fmt.Printf("  elapsed              %v (healthy: %v)\n", st.Elapsed, healthy.Elapsed)

	if resid == wantResid {
		fmt.Println("\nThe crash-recovered solve converged to the byte-identical residual:")
		fmt.Println("checkpoint rollback replays the exact float arithmetic the healthy")
		fmt.Println("run performs, so losing a node costs time, never the answer.")
	} else {
		fmt.Println("\nWARNING: residuals diverged — recovery is broken.")
	}
}
