// Placement: reproduce the §4.3 NUMA placement study in miniature —
// how binding the communication thread and allocating the data near or
// far from the NIC changes latency and bandwidth under memory
// contention (the paper's Figure 5 / Table 1).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro"
)

func main() {
	cfg := interference.Config{Cluster: "henri", Seed: 1, Runs: 2}
	const cores = 35 // full machine: the worst case of Fig 5

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "data\tcomm thread\tlatency alone\tlatency w/ compute\tbandwidth alone\tbandwidth w/ compute")
	fmt.Fprintln(w, "----\t-----------\t-------------\t------------------\t---------------\t--------------------")
	for _, data := range []bool{true, false} {
		for _, thread := range []bool{true, false} {
			lat, err := interference.Interfere(cfg, interference.InterferenceOptions{
				Workload:          interference.MemoryBound,
				Cores:             cores,
				MessageSize:       4,
				DataNearNIC:       data,
				CommThreadNearNIC: thread,
			})
			if err != nil {
				log.Fatal(err)
			}
			bw, err := interference.Interfere(cfg, interference.InterferenceOptions{
				Workload:          interference.MemoryBound,
				Cores:             cores,
				MessageSize:       64 << 20,
				DataNearNIC:       data,
				CommThreadNearNIC: thread,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(w, "%s\t%s\t%.2f µs\t%.2f µs\t%.0f MB/s\t%.0f MB/s\n",
				nearFar(data), nearFar(thread),
				lat.LatencyAloneMicros, lat.LatencyTogetherMicros,
				bw.BandwidthAloneMBps, bw.BandwidthTogetherMBps)
		}
	}
	w.Flush()
	fmt.Println("\nExpected shape (paper Table 1): a far communication thread suffers a")
	fmt.Println("large latency increase under contention; far data makes the bandwidth")
	fmt.Println("drop more abruptly; near/near is the most robust placement.")
}

func nearFar(b bool) string {
	if b {
		return "near"
	}
	return "far"
}
