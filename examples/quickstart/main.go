// Quickstart: measure ping-pong performance on a simulated henri
// cluster, then show the paper's headline effect — a memory-bound
// computation on every core crushes the network bandwidth, while a
// CPU-bound one leaves it untouched.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := interference.Config{Cluster: "henri", Seed: 1, Runs: 3}

	// Step 1: nominal network performance (no computation).
	lat, err := interference.PingPong(cfg, 4)
	if err != nil {
		log.Fatal(err)
	}
	bw, err := interference.PingPong(cfg, 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nominal latency   : %6.2f µs  [%5.2f–%5.2f]\n",
		lat.LatencyMicros, lat.P10Micros, lat.P90Micros)
	fmt.Printf("nominal bandwidth : %6.0f MB/s\n\n", bw.BandwidthMBps)

	// Step 2: run STREAM TRIAD on 35 cores beside the bandwidth
	// benchmark (the paper's Fig 4b at full load).
	mem, err := interference.Interfere(cfg, interference.InterferenceOptions{
		Workload:    interference.MemoryBound,
		Cores:       35,
		MessageSize: 64 << 20,
		DataNearNIC: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with 35 STREAM cores:\n")
	fmt.Printf("  network bandwidth : %6.0f → %6.0f MB/s (%.0f%% lost)\n",
		mem.BandwidthAloneMBps, mem.BandwidthTogetherMBps,
		100*(1-mem.BandwidthTogetherMBps/mem.BandwidthAloneMBps))
	fmt.Printf("  STREAM per core   : %6.2f → %6.2f GB/s\n\n",
		mem.ComputeAloneGBps, mem.ComputeTogetherGBps)

	// Step 3: the same with a CPU-bound kernel — no interference.
	cpu, err := interference.Interfere(cfg, interference.InterferenceOptions{
		Workload:    interference.CPUBound,
		Cores:       35,
		MessageSize: 64 << 20,
		DataNearNIC: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with 35 CPU-bound cores:\n")
	fmt.Printf("  network bandwidth : %6.0f → %6.0f MB/s (unaffected)\n",
		cpu.BandwidthAloneMBps, cpu.BandwidthTogetherMBps)
}
