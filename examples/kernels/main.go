// Kernels: run the paper's §6 use case — dense conjugate gradient (CG)
// and dense matrix multiplication (GEMM) on the StarPU-like task
// runtime, distributed over two simulated nodes — and print the
// sending-bandwidth degradation and memory-stall fraction per worker
// count (the paper's Figure 10).
//
// CG is memory-bound (AI ≈ 0.25 flop/B): at full workers ≈70% of
// cycles stall on memory and the sending bandwidth collapses. GEMM is
// compute-bound (AI ≈ 43 flop/B): stalls stay near 20% and the network
// loses little.
package main

import (
	"log"
	"os"

	"repro"
)

func main() {
	cfg := interference.Config{Cluster: "henri", Seed: 1, Runs: 1, Noiseless: true}
	if err := interference.Run(cfg, "fig10", os.Stdout); err != nil {
		log.Fatal(err)
	}
}
