// Autotune: demonstrate the paper's §8 future-work proposal — have the
// runtime system select the number of workers automatically. For a
// memory-bound, communication-heavy application the whole-program
// optimum is well below the full machine: beyond the memory-controller
// saturation point, extra workers add no compute throughput but keep
// degrading the communications (the interference the paper measures).
//
// This example drives the extension experiments through the public API.
package main

import (
	"log"
	"os"

	"repro"
)

func main() {
	cfg := interference.Config{Cluster: "henri", Seed: 1, Runs: 1, Noiseless: true}
	for _, id := range []string{"ext-tuner", "ext-throttle", "ext-sched"} {
		if err := interference.Run(cfg, id, os.Stdout); err != nil {
			log.Fatal(err)
		}
		os.Stdout.WriteString("\n")
	}
}
