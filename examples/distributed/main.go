// Distributed: write a two-node program in the starpu_mpi_insert_task
// style the paper's §6 applications use — every rank replays the same
// task-insertion stream, the runtimes move data handles automatically,
// and the §4 interference mechanisms apply to those transfers.
//
// The program is a toy distributed iteration: each rank owns half the
// domain; every step updates the local half (memory-bound, CG-like
// blocks) and then reads the remote boundary, which makes the runtimes
// exchange it. We print per-rank execution traces and the sending
// bandwidth the transfers achieved against the compute pressure.
//
// This example uses internal packages directly (it lives in the same
// module); the library's public entry points remain the root package.
package main

import (
	"fmt"
	"log"

	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/net"
	"repro/internal/sim"
	"repro/internal/taskrt"
	"repro/internal/topology"
)

func main() {
	spec := topology.Henri()
	spec.NIC.NoiseFrac = 0
	cluster := machine.NewCluster(spec, 2, 1)
	world := mpi.NewWorld(cluster, net.New(cluster))

	var workers []int
	for c := 1; c <= 24; c++ {
		workers = append(workers, c)
	}
	var ds [2]*taskrt.DistRuntime
	for i := 0; i < 2; i++ {
		rt := taskrt.New(taskrt.Config{
			Node:        cluster.Nodes[i],
			Rank:        world.Rank(i),
			MainCore:    0,
			CommCore:    world.Rank(i).CommCore,
			WorkerCores: workers,
		})
		rt.Start()
		ds[i] = taskrt.NewDistRuntime(rt, 2)
	}

	const (
		iterations = 4
		halfBytes  = 32 << 20 // each rank's domain half
		boundary   = 2 << 20  // exchanged halo
	)

	program := func(d *taskrt.DistRuntime, p *sim.Proc) {
		// Identical insertion stream on both ranks (the model's rule).
		half := [2]*taskrt.DistHandle{
			d.RegisterData(0, halfBytes, 0),
			d.RegisterData(1, halfBytes, 0),
		}
		halo := [2]*taskrt.DistHandle{
			d.RegisterData(0, boundary, spec.NUMANodes()-1),
			d.RegisterData(1, boundary, spec.NUMANodes()-1),
		}
		for it := 0; it < iterations; it++ {
			for rank := 0; rank < 2; rank++ {
				// Update the local half (8 memory-bound blocks) and
				// refresh the outgoing halo.
				for b := 0; b < 8; b++ {
					d.Insert(p, &taskrt.DistTask{
						Spec:     kernels.CGBlock(1024, 512, b%spec.NUMANodes()),
						ExecRank: rank,
						Accesses: []taskrt.DistAccess{{Handle: half[rank], Mode: taskrt.W}},
					})
				}
				d.Insert(p, &taskrt.DistTask{
					Spec:     kernels.CGBlock(256, 512, 0),
					ExecRank: rank,
					Accesses: []taskrt.DistAccess{
						{Handle: half[rank], Mode: taskrt.R},
						{Handle: halo[rank], Mode: taskrt.W},
					},
				})
			}
			for rank := 0; rank < 2; rank++ {
				// Consume the peer's halo: this is what triggers the
				// automatic transfer.
				d.Insert(p, &taskrt.DistTask{
					Spec:     kernels.CGBlock(256, 512, 0),
					ExecRank: rank,
					Accesses: []taskrt.DistAccess{
						{Handle: halo[1-rank], Mode: taskrt.R},
						{Handle: half[rank], Mode: taskrt.W},
					},
				})
			}
		}
	}

	done := 0
	var finish sim.Time
	for i := 0; i < 2; i++ {
		d := ds[i]
		cluster.K.Spawn(fmt.Sprintf("app.r%d", i), func(p *sim.Proc) {
			program(d, p)
			d.WaitAllDist(p)
			done++
			if done == 2 {
				finish = p.Now()
				ds[0].Runtime().Shutdown()
				ds[1].Runtime().Shutdown()
			}
		})
	}
	cluster.K.RunUntil(cluster.K.Now().Add(sim.Duration(600 * sim.Second)))
	if done != 2 {
		log.Fatal("distributed program did not finish")
	}

	for i := 0; i < 2; i++ {
		ctr := cluster.Nodes[i].Counters
		fmt.Printf("rank %d: sent %5.1f MB, send bandwidth %6.0f MB/s, memory stalls %4.1f%%\n",
			i, ctr.BytesSent/1e6, ctr.SendBandwidth()/1e6, 100*ctr.StallFraction())
	}
	fmt.Printf("total simulated time: %v\n", finish)
	fmt.Println("\nEach iteration the halo handles migrate automatically between the")
	fmt.Println("ranks; their transfers contend with the CG blocks exactly as §6's")
	fmt.Println("measurements show (compare the send bandwidth with `-exp fig10`).")
}
