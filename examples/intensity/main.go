// Intensity: sweep the arithmetic intensity of the computation (the
// paper's §4.5 "cursor" benchmark) and watch the network bandwidth sink
// while the code is memory-bound, then recover once it becomes
// CPU-bound — the roofline ridge sits near 6 flop/B on henri.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
)

func main() {
	cfg := interference.Config{Cluster: "henri", Seed: 1, Runs: 1, Noiseless: true}
	const cores = 35

	fmt.Println("cursor  flop/B   net bandwidth together   compute ms/iter   ")
	fmt.Println("------  -------  ------------------------ ----------------")
	var nominal float64
	for _, cursor := range []int{1, 4, 12, 24, 48, 72, 144, 288, 1200} {
		sum, err := interference.Interfere(cfg, interference.InterferenceOptions{
			Cursor:      cursor,
			Cores:       cores,
			MessageSize: 64 << 20,
			DataNearNIC: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		if nominal == 0 {
			nominal = sum.BandwidthAloneMBps
		}
		frac := sum.BandwidthTogetherMBps / nominal
		bar := strings.Repeat("#", int(frac*24+0.5))
		fmt.Printf("%6d  %7.2f  %7.0f MB/s %-24s  %7.1f\n",
			cursor, float64(cursor)/12, sum.BandwidthTogetherMBps, bar,
			sum.ComputeTogetherMs)
	}
	fmt.Printf("\nnominal bandwidth without computation: %.0f MB/s\n", nominal)
	fmt.Println("low cursor = memory-bound (high pressure, network starved);")
	fmt.Println("high cursor = CPU-bound (pressure gone, network back to nominal).")
}
