// Package interference reproduces the ICPP 2021 paper "Interferences
// between Communications and Computations in Distributed HPC Systems"
// (A. Denis, E. Jeannot, P. Swartvagher) on a deterministic simulator of
// distributed HPC nodes.
//
// The paper is a measurement study: it quantifies how MPI communications
// and computations degrade each other when they run side by side on the
// same node, through three mechanisms — CPU core/uncore frequency
// scaling (DVFS, turbo, AVX licences), memory-bus contention between
// compute streams and NIC DMA/PIO traffic (including NUMA placement,
// message size, arithmetic intensity), and task-based runtime systems
// (software-path overhead, worker polling). Since the paper's hardware
// (Xeon/EPYC/ThunderX2 testbeds, InfiniBand/Omni-Path fabrics, BIOS
// access) is not reproducible in a Go process, this library rebuilds the
// full stack as a calibrated performance model:
//
//   - a discrete-event kernel and a SimGrid-style max-min fair
//     bandwidth-sharing solver (internal/sim, internal/fluid);
//   - machine models of the paper's four clusters — henri, bora, billy,
//     pyxis — with NUMA memory systems, frequency domains and NICs
//     (internal/topology, internal/freq, internal/machine);
//   - an MPI-like message-passing layer with eager/rendezvous protocols
//     and a registration cache, plus the NetPIPE-style ping-pong
//     (internal/net, internal/mpi);
//   - the paper's compute kernels as roofline workloads: prime counting,
//     AVX-512 FMA, STREAM COPY/TRIAD, the tunable-intensity TriadX, and
//     CG/GEMM task shapes (internal/kernels);
//   - a StarPU-like task runtime with polling workers and a
//     communication thread (internal/taskrt);
//   - the §2.1 benchmarking protocol and one driver per table/figure
//     (internal/bench, internal/core).
//
// # Quick start
//
//	res, err := interference.PingPong(interference.Config{Cluster: "henri"}, 4)
//	// res.LatencyMicros ≈ 1.7 (the paper's henri latency)
//
//	err = interference.Run(interference.Config{Cluster: "henri"}, "fig4", os.Stdout)
//	// prints the Fig 4 contention sweep as an aligned table
//
// Every simulation is fully deterministic for a given Config.Seed; no
// wall-clock time or host performance leaks into results.
package interference
