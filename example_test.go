package interference_test

import (
	"fmt"
	"os"

	interference "repro"
)

// ExamplePingPong measures the nominal network performance of the
// simulated henri cluster. Deterministic: the same seed always prints
// the same numbers.
func ExamplePingPong() {
	cfg := interference.Config{Cluster: "henri", Seed: 1, Noiseless: true}
	lat, _ := interference.PingPong(cfg, 4)
	bw, _ := interference.PingPong(cfg, 64<<20)
	fmt.Printf("latency %.2f us\n", lat.LatencyMicros)
	fmt.Printf("bandwidth %.1f GB/s\n", bw.BandwidthMBps/1e3)
	// Output:
	// latency 2.28 us
	// bandwidth 10.9 GB/s
}

// ExampleInterfere reproduces the paper's headline finding: a
// memory-bound computation on every core starves the network, while a
// CPU-bound one does not.
func ExampleInterfere() {
	cfg := interference.Config{Cluster: "henri", Seed: 1, Runs: 1, Noiseless: true}
	mem, _ := interference.Interfere(cfg, interference.InterferenceOptions{
		Workload:    interference.MemoryBound,
		Cores:       35,
		MessageSize: 64 << 20,
		DataNearNIC: true,
	})
	cpu, _ := interference.Interfere(cfg, interference.InterferenceOptions{
		Workload:    interference.CPUBound,
		Cores:       35,
		MessageSize: 64 << 20,
		DataNearNIC: true,
	})
	fmt.Printf("STREAM:    %2.0f%% of nominal bandwidth left\n",
		100*mem.BandwidthTogetherMBps/mem.BandwidthAloneMBps)
	fmt.Printf("CPU-bound: %2.0f%% of nominal bandwidth left\n",
		100*cpu.BandwidthTogetherMBps/cpu.BandwidthAloneMBps)
	// Output:
	// STREAM:    29% of nominal bandwidth left
	// CPU-bound: 100% of nominal bandwidth left
}

// ExampleRun regenerates one of the paper's tables on stdout.
func ExampleRun() {
	cfg := interference.Config{Cluster: "henri", Seed: 1, Runs: 1, Noiseless: true}
	_ = interference.Run(cfg, "sec5.2", os.Stdout)
}

// ExampleExperiments lists everything the harness can reproduce.
func ExampleExperiments() {
	for _, e := range interference.Experiments() {
		if e.ID == "fig4" || e.ID == "fig10" {
			fmt.Println(e.ID)
		}
	}
	// Output:
	// fig10
	// fig4
}
