package interference

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/taskrt"
	"repro/internal/tuning"
)

// TuneOptions describes the application whose worker count should be
// selected automatically (the paper's §8 future-work proposal, provided
// here as a working extension).
type TuneOptions struct {
	// Intensity is the tasks' arithmetic intensity in flop/B; low values
	// (≲1) are memory-bound and profit from fewer workers, high values
	// are CPU-bound and want the whole machine. Default 0.25 (CG-like).
	Intensity float64
	// TaskMB is the per-task data footprint in MiB; default 4.
	TaskMB int
	// TasksPerIteration and Iterations shape the program; defaults 64/3.
	TasksPerIteration, Iterations int
	// MessageKB and MessagesPerIteration shape the communication phase;
	// defaults 512 KB × 6.
	MessageKB, MessagesPerIteration int
	// WorkerCounts lists the candidates; empty sweeps 1,2,4,...,max.
	WorkerCounts []int
	// NUMALocalScheduler selects the locality scheduler instead of the
	// central FIFO list.
	NUMALocalScheduler bool
	// ThrottleDuringComm pauses up to this many workers while transfers
	// are in flight.
	ThrottleDuringComm int
}

// TunePoint is one measured worker count.
type TunePoint struct {
	Workers          int
	IterationMs      float64
	SendBandwidthMB  float64
	MemoryStallsFrac float64
}

// TuneResult is the sweep outcome; Best minimises the whole-program
// iteration time.
type TuneResult struct {
	Best   TunePoint
	Series []TunePoint
}

// Autotune sweeps worker counts for the described application on the
// configured cluster and returns the whole-program optimum (§8:
// "select automatically the optimal number of workers which reduces
// memory contention and maximizes performances").
func Autotune(cfg Config, opts TuneOptions) (TuneResult, error) {
	env, err := cfg.env()
	if err != nil {
		return TuneResult{}, err
	}
	if opts.Intensity < 0 {
		return TuneResult{}, fmt.Errorf("interference: negative intensity %v", opts.Intensity)
	}
	intensity := opts.Intensity
	if intensity == 0 {
		intensity = 0.25
	}
	taskMB := orDefault(opts.TaskMB, 4)
	tasks := orDefault(opts.TasksPerIteration, 64)
	iters := orDefault(opts.Iterations, 3)
	msgKB := orDefault(opts.MessageKB, 512)
	msgs := orDefault(opts.MessagesPerIteration, 6)

	bytes := float64(taskMB) * (1 << 20)
	spec := env.Spec
	scheduler := taskrt.EagerFIFO
	if opts.NUMALocalScheduler {
		scheduler = taskrt.NUMALocal
	}
	app := func() *taskrt.App {
		return &taskrt.App{
			Name: "autotune",
			Slice: func(i int) machine.ComputeSpec {
				s := kernels.StreamTriad(1, (i/2)%spec.NUMANodes())
				s.Name = "tune-task"
				s.Bytes = bytes
				s.Flops = bytes * intensity
				return s
			},
			TasksPerIter: tasks,
			Iterations:   iters,
			MsgSize:      int64(msgKB) << 10,
			MsgsPerIter:  msgs,
			HandleNUMA:   -1,
		}
	}
	res := tuning.WorkerSweep(tuning.Options{
		Spec:         spec,
		Seed:         env.Seed,
		App:          app,
		WorkerCounts: opts.WorkerCounts,
		Scheduler:    scheduler,
		CommThrottle: opts.ThrottleDuringComm,
	})
	out := TuneResult{}
	for _, pt := range res.Series {
		tp := TunePoint{
			Workers:          pt.Workers,
			IterationMs:      pt.IterSeconds * 1e3,
			SendBandwidthMB:  pt.SendBandwidth / 1e6,
			MemoryStallsFrac: pt.StallFraction,
		}
		out.Series = append(out.Series, tp)
		if pt.Workers == res.Best.Workers {
			out.Best = tp
		}
	}
	return out, nil
}

func orDefault(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}
