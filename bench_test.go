package interference

// The benchmark harness: one testing.B benchmark per table and figure
// of the paper's evaluation. Each benchmark runs the corresponding
// experiment driver end to end on the simulated henri cluster (the
// machine the paper reports most results on) and reports, as custom
// metrics, the headline quantities of that figure so `go test -bench`
// output can be compared against the paper directly (see
// EXPERIMENTS.md for the paper-vs-measured audit).
//
// Simulated time is decoupled from wall time: these benchmarks measure
// the harness itself while asserting and exporting the modelled
// results.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/topology"
)

// benchEnv is the single-run, noiseless environment used by the
// benchmark harness: deterministic output, minimal wall time.
func benchEnv() bench.Env {
	spec := topology.Henri()
	spec.NIC.NoiseFrac = 0
	return bench.Env{Spec: spec, Seed: 1, Runs: 1}
}

func BenchmarkFig1aFrequencyLatency(b *testing.B) {
	var lo, hi float64
	for i := 0; i < b.N; i++ {
		pts := bench.Fig1Frequencies(benchEnv(), []int64{4})
		for _, p := range pts {
			if p.UncoreGHz != 2.4 {
				continue
			}
			switch p.CoreGHz {
			case 1.0:
				lo = p.Latency.Median * 1e6
			case 2.3:
				hi = p.Latency.Median * 1e6
			}
		}
	}
	b.ReportMetric(hi, "us-latency-2300MHz") // paper: 1.8
	b.ReportMetric(lo, "us-latency-1000MHz") // paper: 3.1
}

func BenchmarkFig1bFrequencyBandwidth(b *testing.B) {
	var hiU, loU float64
	for i := 0; i < b.N; i++ {
		pts := bench.Fig1Frequencies(benchEnv(), []int64{64 << 20})
		for _, p := range pts {
			if p.CoreGHz != 2.3 {
				continue
			}
			switch p.UncoreGHz {
			case 2.4:
				hiU = p.Bandwidth() / 1e9
			case 1.2:
				loU = p.Bandwidth() / 1e9
			}
		}
	}
	b.ReportMetric(hiU, "GBps-uncore-2400MHz") // paper: 10.5
	b.ReportMetric(loU, "GBps-uncore-1200MHz") // paper: 10.1
}

func BenchmarkFig2FrequencyTrace(b *testing.B) {
	var alone, with float64
	for i := 0; i < b.N; i++ {
		r := bench.Fig2FrequencyTrace(benchEnv())
		alone = r.LatencyAlone.Median * 1e6
		with = r.LatencyTogether.Median * 1e6
	}
	b.ReportMetric(alone, "us-latency-alone")       // paper: 1.7
	b.ReportMetric(with, "us-latency-with-compute") // paper: 1.52
}

func BenchmarkFig3AVXLatency(b *testing.B) {
	var f4, f20, lat float64
	for i := 0; i < b.N; i++ {
		rs := bench.Fig3AVX(benchEnv(), []int{4, 20})
		f4 = rs[0].ComputeSecsWith.Median * 1e3
		f20 = rs[1].ComputeSecsWith.Median * 1e3
		lat = rs[1].LatencyWith.Median * 1e6
	}
	b.ReportMetric(f4, "ms-compute-4cores")    // paper: 135
	b.ReportMetric(f20, "ms-compute-20cores")  // paper: 210
	b.ReportMetric(lat, "us-latency-with-avx") // paper: 1.33
}

func BenchmarkFig4MemoryContention(b *testing.B) {
	var latFactor, bwDrop float64
	for i := 0; i < b.N; i++ {
		pts := bench.Fig4Contention(benchEnv(), bench.ContentionConfig{
			Data: bench.Near, CommThread: bench.Far, CoreCounts: []int{35},
		})
		pt := pts[0]
		latFactor = pt.Latency.CommTogether.Median / pt.Latency.CommAlone.Median
		bwDrop = 100 * (1 - pt.Bandwidth.BandwidthTogether()/pt.Bandwidth.BandwidthAlone())
	}
	b.ReportMetric(latFactor, "x-latency-35cores") // paper: ≈2
	b.ReportMetric(bwDrop, "%-bw-drop-35cores")    // paper: ≈65
}

func BenchmarkFig5Placement(b *testing.B) {
	var farFar, nearNear float64
	for i := 0; i < b.N; i++ {
		series := bench.Fig5Placement(benchEnv(), []int{35})
		ff := series["near/far"][0]
		nn := series["near/near"][0]
		farFar = ff.Latency.CommTogether.Median * 1e6
		nearNear = nn.Latency.CommTogether.Median * 1e6
	}
	b.ReportMetric(farFar, "us-latency-thread-far")    // paper: ≈2×1.67
	b.ReportMetric(nearNear, "us-latency-thread-near") // paper: ≈2
}

func BenchmarkTable1Summary(b *testing.B) {
	var rows []bench.Table1Row
	for i := 0; i < b.N; i++ {
		rows = bench.Table1(bench.Fig5Placement(benchEnv(), []int{5, 35}))
	}
	for _, r := range rows {
		if r.Data == bench.Near && r.CommThread == bench.Far {
			b.ReportMetric(r.LatencyIncrease, "x-latency-near-far")
			b.ReportMetric(r.BandwidthDropFrac*100, "%-bw-drop-near-far")
		}
	}
}

func BenchmarkFig6MessageSize(b *testing.B) {
	var onset float64
	for i := 0; i < b.N; i++ {
		pts := bench.Fig6MessageSize(benchEnv(), 35, []int64{4, 128, 4096, 64 << 10, 1 << 20})
		onset = 0
		for _, pt := range pts {
			if pt.Result.CommTogether.Median > 1.3*pt.Result.CommAlone.Median {
				onset = float64(pt.Size)
				break
			}
		}
	}
	b.ReportMetric(onset, "B-degradation-onset-35cores") // paper: 128
}

func BenchmarkFig7Intensity(b *testing.B) {
	var ridge float64
	for i := 0; i < b.N; i++ {
		pts := bench.Fig7Intensity(benchEnv(), 35, []int{1, 24, 48, 72, 96, 144, 288})
		ridge = 0
		for _, pt := range pts {
			// The ridge: bandwidth back above 90% of nominal.
			if pt.Bandwidth.BandwidthTogether() > 0.9*pt.Bandwidth.BandwidthAlone() {
				ridge = pt.Intensity
				break
			}
		}
	}
	b.ReportMetric(ridge, "flopPerByte-recovery-ridge") // paper: ≈6
}

func BenchmarkFig8RuntimeLatency(b *testing.B) {
	var colocated, split float64
	for i := 0; i < b.N; i++ {
		pts := bench.Fig8Runtime(benchEnv())
		for _, pt := range pts {
			if pt.DataClose && pt.ThreadClose {
				colocated = pt.Latency.Median * 1e6
			}
			if pt.DataClose && !pt.ThreadClose {
				split = pt.Latency.Median * 1e6
			}
		}
	}
	b.ReportMetric(colocated, "us-colocated")
	b.ReportMetric(split, "us-split") // paper: co-location matters most
}

func BenchmarkSec52Overhead(b *testing.B) {
	var overhead float64
	for i := 0; i < b.N; i++ {
		overhead = bench.RuntimeOverhead(benchEnv()).OverheadSeconds * 1e6
	}
	b.ReportMetric(overhead, "us-runtime-overhead") // paper: 38 on henri
}

func BenchmarkFig9Polling(b *testing.B) {
	var def, paused float64
	for i := 0; i < b.N; i++ {
		for _, pt := range bench.Fig9Polling(benchEnv()) {
			switch pt.Label {
			case "default-32":
				def = pt.Latency.Median * 1e6
			case "paused":
				paused = pt.Latency.Median * 1e6
			}
		}
	}
	b.ReportMetric(def, "us-default-polling")
	b.ReportMetric(paused, "us-paused-workers") // paper: polling > paused
}

func BenchmarkFig10Kernels(b *testing.B) {
	var cgDrop, gemmDrop, cgStall, gemmStall float64
	for i := 0; i < b.N; i++ {
		pts := bench.Fig10Kernels(benchEnv(), []int{2, 34})
		base := map[string]float64{}
		for _, pt := range pts {
			if pt.Workers == 2 {
				base[pt.Kernel] = pt.SendBandwidth
			}
		}
		for _, pt := range pts {
			if pt.Workers != 34 {
				continue
			}
			drop := 100 * (1 - pt.SendBandwidth/base[pt.Kernel])
			if pt.Kernel == "cg" {
				cgDrop, cgStall = drop, pt.StallFraction*100
			} else {
				gemmDrop, gemmStall = drop, pt.StallFraction*100
			}
		}
	}
	b.ReportMetric(cgDrop, "%-cg-send-bw-loss")     // paper: up to 90
	b.ReportMetric(gemmDrop, "%-gemm-send-bw-loss") // paper: ≤20
	b.ReportMetric(cgStall, "%-cg-mem-stalls")      // paper: ≈70
	b.ReportMetric(gemmStall, "%-gemm-mem-stalls")  // paper: ≈20
}
