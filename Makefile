# Convenience targets for the interference reproduction.

GO ?= go

.PHONY: all build test vet bench results examples fuzz clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# One testing.B benchmark per paper table/figure, with paper-comparable
# custom metrics (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' .

# Regenerate every experiment's series into results/ (ASCII tables).
results:
	mkdir -p results
	$(GO) run ./cmd/interference -exp all -runs 3 -o results -q

# Run every example program.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/placement
	$(GO) run ./examples/intensity
	$(GO) run ./examples/kernels
	$(GO) run ./examples/autotune
	$(GO) run ./examples/distributed

# Short fuzz pass over the fluid solver invariants.
fuzz:
	$(GO) test ./internal/fluid/ -fuzz FuzzSolverInvariants -fuzztime 30s

clean:
	rm -rf results test_output.txt bench_output.txt
