# Convenience targets for the interference reproduction.

GO ?= go

.PHONY: all build test test-race verify bench cover cover-check results faults crash examples fuzz fabric serve load-test chaos-soak failover-drill clean

all: build vet test test-race bench

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the whole tree — the parallel experiment runner
# (internal/runner) fans experiments out over a worker pool, so the
# tier-1 verify flow runs the suite under the race detector too.
test-race:
	$(GO) test -race ./...

# Re-run every experiment and diff against the golden files in results/
# (non-zero exit + unified diff on drift). Populates the point cache at
# results/.cache, so a repeat verify replays unchanged points in well
# under a second.
verify:
	$(GO) run ./cmd/interference -all -verify -q

# Performance trajectory: solver/kernel/stats microbenchmarks (with
# their reference baselines), the per-figure paper benchmarks, and the
# full-campaign matrix — cold cache-disabled walls at -j 1/4/8 plus a
# cold and a warm pass over a fresh point cache — all folded into
# BENCH_sim.json by cmd/benchreport. Compare trajectories with
#   go run ./cmd/benchreport -totext <old.json> > old.txt   (+ new)
#   benchstat old.txt new.txt
bench:
	$(GO) test -bench=. -benchmem -benchtime=200ms -run='^$$' ./internal/fluid ./internal/sim ./internal/stats ./internal/bench > bench_output.txt
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' . >> bench_output.txt
	$(GO) run ./cmd/benchreport -in bench_output.txt -out BENCH_sim.json

# Total test coverage, and the ratchet: fail if total coverage drops
# more than 0.5 points below the committed baseline
# (.github/coverage-baseline.txt). Raise the baseline when coverage
# durably improves.
cover:
	$(GO) test -count=1 -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

cover-check: cover
	@total=$$($(GO) tool cover -func=coverage.out | awk '/^total:/ {sub(/%/,"",$$3); print $$3}'); \
	base=$$(cat .github/coverage-baseline.txt); \
	awk -v t="$$total" -v b="$$base" 'BEGIN { \
		if (t + 0.5 < b) { printf "coverage %.1f%% is more than 0.5 points below the %.1f%% baseline\n", t, b; exit 1 } \
		printf "coverage %.1f%% (baseline %.1f%%)\n", t, b }'

# Regenerate every experiment's golden file in results/ (ASCII tables).
results:
	$(GO) run ./cmd/interference -all -runs 3 -update -q

# Run the fault-injection experiment family (ping-pong and overlap
# under the built-in fault-intensity sweep; see EXPERIMENTS.md).
faults:
	$(GO) run ./cmd/interference -exp faults

# Run the node-crash fault-tolerance experiments: ping-pong under peer
# death and the resilient CG with checkpoint rollback (EXPERIMENTS.md).
crash:
	$(GO) run ./cmd/interference -exp faults-crash-pingpong
	$(GO) run ./cmd/interference -exp faults-crash-cg

# Run every example program.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/placement
	$(GO) run ./examples/intensity
	$(GO) run ./examples/kernels
	$(GO) run ./examples/autotune
	$(GO) run ./examples/distributed
	$(GO) run ./examples/faults

# Short fuzz passes: fluid solver invariants, machine-spec JSON
# parsing, fabric-spec JSON parsing, fault-schedule spec parsing,
# campaign-spec submissions.
fuzz:
	$(GO) test ./internal/fluid/ -fuzz FuzzSolverInvariants -fuzztime 30s
	$(GO) test ./internal/topology/ -fuzz FuzzReadSpec -fuzztime 30s
	$(GO) test ./internal/topology/ -fuzz FuzzFabricSpec -fuzztime 30s
	$(GO) test ./internal/fault/ -fuzz FuzzParseSchedule -fuzztime 30s
	$(GO) test ./internal/server/ -fuzz FuzzSubmitSpec -fuzztime 30s

# The switched-fabric battery: topology shape/routing invariants, the
# max-min property storm over random fabrics, the two-node degeneracy
# differential (fabric vs legacy network, byte-identical), the fabric
# experiment determinism sweep, and the 1k-host solve budget — all
# under the race detector.
fabric:
	$(GO) test -race -count=1 -run 'Fabric' ./internal/topology/ ./internal/net/ ./internal/bench/ ./internal/runner/ ./internal/server/

# Boot the campaign daemon on :7077 with its cache and durability state
# under interfd-data/ (clients: `interference -remote http://host:7077`
# or raw POSTs to /campaign; see EXPERIMENTS.md). SIGINT/SIGTERM drain
# gracefully: admission closes, in-flight campaigns finish within
# -drain-timeout (default 30s), state is flushed, exit 0 — campaigns
# that outlive the window simply resume on the next start.
serve:
	$(GO) run ./cmd/interfd

# The daemon concurrency battery under the race detector: many clients,
# overlapping campaign specs, byte-identity and exactly-once assertions
# (size with SERVER_LOAD_CLIENTS / SERVER_LOAD_PER_CLIENT).
load-test:
	$(GO) test -race -run TestServerLoad -count=1 -v ./internal/server/

# The chaos battery under the race detector: the load storm against
# daemons with failing disks and a hostile network, asserting
# byte-identity, the exactly-once bound, breaker/degradation behaviour
# and graceful shutdown. Reproduce a red run with its printed seed:
# CHAOS_SEED=<n> make chaos-soak. Size with CHAOS_SOAK_CLIENTS /
# CHAOS_SOAK_PER_CLIENT.
chaos-soak:
	$(GO) test -race -run 'TestServerChaosSoak|TestRemoteCacheChaosTransport|TestDaemonGracefulShutdown|TestDaemonChaosDrill' -count=1 -v ./internal/server/ ./cmd/interfd/

# The stampede battery under the race detector: the in-process failover
# soak (two replicas, one cache dir, a kill switch in the transport),
# the server overload storm at 2x capacity, and the end-to-end drill —
# two real interfd processes sharing a -cache-dir, one SIGKILLed
# mid-storm, byte-identical completion required. Size with
# REPLICA_SOAK_CLIENTS / REPLICA_SOAK_PER_CLIENT and
# FAILOVER_DRILL_CLIENTS / FAILOVER_DRILL_PER_CLIENT.
failover-drill:
	$(GO) test -race -run 'TestFailoverSoak|TestServerOverloadStorm|TestInterfdFailoverDrill' -count=1 -v ./internal/replica/ ./internal/server/ ./cmd/interfd/

clean:
	rm -rf results test_output.txt bench_output.txt
