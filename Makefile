# Convenience targets for the interference reproduction.

GO ?= go

.PHONY: all build test test-race verify bench results faults crash examples fuzz clean

all: build vet test test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the whole tree — the parallel experiment runner
# (internal/runner) fans experiments out over a worker pool, so the
# tier-1 verify flow runs the suite under the race detector too.
test-race:
	$(GO) test -race ./...

# Re-run every experiment and diff against the golden files in results/
# (non-zero exit + unified diff on drift).
verify:
	$(GO) run ./cmd/interference -all -verify -q

# One testing.B benchmark per paper table/figure, with paper-comparable
# custom metrics (see EXPERIMENTS.md).
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run='^$$' .

# Regenerate every experiment's golden file in results/ (ASCII tables).
results:
	$(GO) run ./cmd/interference -all -runs 3 -update -q

# Run the fault-injection experiment family (ping-pong and overlap
# under the built-in fault-intensity sweep; see EXPERIMENTS.md).
faults:
	$(GO) run ./cmd/interference -exp faults

# Run the node-crash fault-tolerance experiments: ping-pong under peer
# death and the resilient CG with checkpoint rollback (EXPERIMENTS.md).
crash:
	$(GO) run ./cmd/interference -exp faults-crash-pingpong
	$(GO) run ./cmd/interference -exp faults-crash-cg

# Run every example program.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/placement
	$(GO) run ./examples/intensity
	$(GO) run ./examples/kernels
	$(GO) run ./examples/autotune
	$(GO) run ./examples/distributed
	$(GO) run ./examples/faults

# Short fuzz passes: fluid solver invariants, machine-spec JSON
# parsing, fault-schedule spec parsing.
fuzz:
	$(GO) test ./internal/fluid/ -fuzz FuzzSolverInvariants -fuzztime 30s
	$(GO) test ./internal/topology/ -fuzz FuzzReadSpec -fuzztime 30s
	$(GO) test ./internal/fault/ -fuzz FuzzParseSchedule -fuzztime 30s

clean:
	rm -rf results test_output.txt bench_output.txt
