package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestResumeRequiresJournal(t *testing.T) {
	code, _, stderr := runCLI("-exp", "sec5.2", "-resume")
	if code != 2 || !strings.Contains(stderr, "-journal") {
		t.Fatalf("-resume without -journal: exit %d, stderr %q", code, stderr)
	}
}

func TestJournalRejectedWithGoldenModes(t *testing.T) {
	for _, mode := range []string{"-verify", "-update"} {
		code, _, stderr := runCLI("-exp", "sec5.2", "-journal", "j.jsonl", mode)
		if code != 2 || !strings.Contains(stderr, "-journal") {
			t.Fatalf("-journal %s: exit %d, stderr %q", mode, code, stderr)
		}
	}
}

func TestJournalUnwritablePathRejected(t *testing.T) {
	code, _, stderr := runCLI("-exp", "fig3", "-runs", "1", "-q",
		"-journal", filepath.Join(t.TempDir(), "no", "such", "dir", "j.jsonl"))
	if code != 2 || !strings.Contains(stderr, "journal") {
		t.Fatalf("unwritable journal: exit %d, stderr %q", code, stderr)
	}
}

// TestResumeWorkflow pins the crash-safe campaign contract end to end:
// a campaign killed after experiment k (modelled by journaling a strict
// subset) re-run with -resume produces byte-identical stdout while
// executing only the missing experiments.
func TestResumeWorkflow(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	base := []string{"-exp", "faults", "-runs", "1", "-j", "2"}

	// The uninterrupted reference campaign (no journal).
	_, want, _ := runCLI(append(base, "-q")...)
	if want == "" {
		t.Fatal("reference campaign produced no output")
	}

	// "Killed" campaign: only the first experiment of the family ran to
	// completion and made it into the journal.
	code, _, stderr := runCLI("-exp", "faults-crash-cg", "-runs", "1", "-j", "2", "-q", "-journal", journal)
	if code != 0 {
		t.Fatalf("partial campaign failed (%d): %s", code, stderr)
	}

	// Resume: the journaled experiment is replayed, the rest execute.
	code, got, stderr := runCLI(append(base, "-journal", journal, "-resume")...)
	if code != 0 {
		t.Fatalf("resume failed (%d): %s", code, stderr)
	}
	if got != want {
		t.Fatalf("resumed campaign differs from uninterrupted run:\n--- want ---\n%s\n--- got ---\n%s", want, got)
	}
	if !strings.Contains(stderr, "replayed from the journal") {
		t.Fatalf("progress log does not mark the cached experiment:\n%s", stderr)
	}
	if !strings.Contains(stderr, "cached") {
		t.Fatalf("summary does not mark the cached experiment:\n%s", stderr)
	}

	// A second resume replays everything and still matches.
	code, got2, stderr2 := runCLI(append(base, "-q", "-journal", journal, "-resume")...)
	if code != 0 {
		t.Fatalf("second resume failed (%d): %s", code, stderr2)
	}
	if got2 != want {
		t.Fatal("fully-cached resume differs from uninterrupted run")
	}
}

// TestJournalWithoutResumeReRuns: -journal alone records but never
// replays, so a second run re-executes everything (attempts stay live).
func TestJournalWithoutResumeReRuns(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	args := []string{"-exp", "fig3", "-runs", "1", "-j", "1", "-q", "-journal", journal}
	if code, _, stderr := runCLI(args...); code != 0 {
		t.Fatalf("first run failed: %s", stderr)
	}
	code, _, stderr := runCLI(args...)
	if code != 0 {
		t.Fatalf("second run failed: %s", stderr)
	}
	if strings.Contains(stderr, "replayed from the journal") {
		t.Fatal("-journal without -resume replayed a cached result")
	}
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), "\n"); n != 2 {
		t.Fatalf("journal holds %d lines after two recorded runs, want 2", n)
	}
}

// TestResumeIgnoresStaleConfig: journal entries recorded under a
// different seed must not be replayed (the config hash differs).
func TestResumeIgnoresStaleConfig(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	if code, _, stderr := runCLI("-exp", "fig3", "-runs", "1", "-q", "-seed", "1", "-journal", journal); code != 0 {
		t.Fatalf("seed-1 run failed: %s", stderr)
	}
	code, _, stderr := runCLI("-exp", "fig3", "-runs", "1", "-seed", "2", "-journal", journal, "-resume")
	if code != 0 {
		t.Fatalf("seed-2 resume failed: %s", stderr)
	}
	if strings.Contains(stderr, "replayed from the journal") {
		t.Fatal("resume replayed an entry recorded under a different seed")
	}
}
