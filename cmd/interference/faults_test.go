package main

import (
	"strings"
	"testing"
)

func TestInvalidJobsRejected(t *testing.T) {
	for _, j := range []string{"-1", "-3"} {
		code, _, stderr := runCLI("-exp", "sec5.2", "-j", j)
		if code != 2 {
			t.Fatalf("-j %s: exit %d, want 2", j, code)
		}
		if !strings.Contains(stderr, "-j") || !strings.Contains(stderr, "worker") {
			t.Fatalf("-j %s: unhelpful error %q", j, stderr)
		}
	}
}

func TestJobsZeroMeansGOMAXPROCS(t *testing.T) {
	// -j 0 (and the unset default) resolves to GOMAXPROCS instead of
	// being rejected.
	code, _, stderr := runCLI("-exp", "sec5.2", "-j", "0", "-q", "-no-cache")
	if code != 0 {
		t.Fatalf("-j 0: exit %d, stderr %q", code, stderr)
	}
}

func TestInvalidRetryAndTimeoutRejected(t *testing.T) {
	if code, _, stderr := runCLI("-exp", "sec5.2", "-retry", "-1"); code != 2 || !strings.Contains(stderr, "-retry") {
		t.Fatalf("-retry -1: exit %d, stderr %q", code, stderr)
	}
	if code, _, stderr := runCLI("-exp", "sec5.2", "-timeout", "-5s"); code != 2 || !strings.Contains(stderr, "-timeout") {
		t.Fatalf("-timeout -5s: exit %d, stderr %q", code, stderr)
	}
}

func TestFaultsRejectedWithGoldenModes(t *testing.T) {
	for _, mode := range []string{"-verify", "-update"} {
		code, _, stderr := runCLI("-faults", "loss:p=0.1", mode)
		if code != 2 || !strings.Contains(stderr, "-faults") {
			t.Fatalf("-faults %s: exit %d, stderr %q", mode, code, stderr)
		}
	}
}

func TestBadFaultSpecRejected(t *testing.T) {
	code, _, stderr := runCLI("-faults", "explode:p=1")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "unknown event kind") {
		t.Fatalf("stderr %q", stderr)
	}
}

// TestFaultsFlagDefaultsToFamily: -faults without -exp runs the faults
// family under the custom schedule.
func TestFaultsFlagDefaultsToFamily(t *testing.T) {
	code, stdout, stderr := runCLI("-faults", "degrade:factor=0.5", "-runs", "1", "-q")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, want := range []string{"FAULTS — ping-pong", "FAULTS — communication/computation overlap", "custom"} {
		if !strings.Contains(stdout, want) {
			t.Fatalf("stdout missing %q:\n%s", want, stdout)
		}
	}
}

// TestDegradedCampaignPartialResults: a campaign mixing a healthy and a
// doomed experiment (total loss exhausts the retry budget) completes
// the healthy one, prints a failure recap after the summary, and exits
// non-zero.
func TestDegradedCampaignPartialResults(t *testing.T) {
	code, stdout, stderr := runCLI("-faults", "loss:p=1", "-runs", "1", "-j", "2")
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	// The overlap experiment's first scenario is fault-free only for the
	// built-in sweep; under a custom total-loss schedule both experiments
	// are doomed — the campaign must still reach the recap.
	if !strings.Contains(stderr, "experiments failed:") {
		t.Fatalf("no failure recap:\n%s", stderr)
	}
	if !strings.Contains(stderr, "failed after 9 attempts") {
		t.Fatalf("recap does not carry the TransferError:\n%s", stderr)
	}
	// The summary table still renders (partial results).
	if !strings.Contains(stderr, "Runner summary") || !strings.Contains(stderr, "error") {
		t.Fatalf("no partial-results summary:\n%s", stderr)
	}
	_ = stdout
}

// TestFaultsStdoutDeterministicAcrossJobs pins the acceptance contract:
// fixed seed + fixed schedule produce byte-identical output at -j 1 and
// -j 8.
func TestFaultsStdoutDeterministicAcrossJobs(t *testing.T) {
	args := []string{"-exp", "faults", "-runs", "1", "-q"}
	_, out1, _ := runCLI(append(args, "-j", "1")...)
	code, out8, _ := runCLI(append(args, "-j", "8")...)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if out1 == "" || out1 != out8 {
		t.Fatalf("faults output differs between -j 1 and -j 8:\n%q\n%q", out1, out8)
	}
}

// TestRetryFlagSurvivesTransientDeadline: -retry with a generous second
// attempt lets a deadline-prone campaign finish (the deadline is per
// attempt, so this mostly exercises flag plumbing end to end).
func TestRetryFlagPlumbed(t *testing.T) {
	code, _, stderr := runCLI("-exp", "sec5.2", "-runs", "1", "-q", "-retry", "2", "-timeout", "5m")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
}
