package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/server"
)

// startDaemon boots an in-process interfd for the CLI to talk to.
func startDaemon(t *testing.T, cfg server.Config) string {
	t.Helper()
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return ts.URL
}

// TestRemoteRejectsLocalFlags: every local-execution flag must fail
// loudly when combined with -remote — a daemon-side setting silently
// ignored is a lie to the user.
func TestRemoteRejectsLocalFlags(t *testing.T) {
	cases := [][]string{
		{"-j", "4"},
		{"-cache", "somedir"},
		{"-no-cache"},
		{"-journal", "j.jsonl"},
		{"-resume"},
		{"-timeout", "5s"},
		{"-retry", "2"},
		{"-update"},
		{"-cpuprofile", "cpu.out"},
		{"-memprofile", "mem.out"},
	}
	for _, extra := range cases {
		args := append([]string{"-remote", "http://localhost:1", "-exp", "fig3"}, extra...)
		var stdout, stderr strings.Builder
		code := run(args, &stdout, &stderr)
		if code != 2 {
			t.Errorf("%v: exit %d, want 2", extra, code)
		}
		if !strings.Contains(stderr.String(), "cannot be combined with -remote") ||
			!strings.Contains(stderr.String(), extra[0]) {
			t.Errorf("%v: stderr does not name the conflicting flag: %q", extra, stderr.String())
		}
	}
}

// TestRemoteExplicitDefaultsStillRejected: setting a conflicting flag
// to its default value is still an explicit local-execution request and
// must be rejected, not special-cased by value.
func TestRemoteExplicitDefaultsStillRejected(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-remote", "http://localhost:1", "-exp", "fig3", "-j", "0"}, &stdout, &stderr)
	if code != 2 || !strings.Contains(stderr.String(), "-j cannot be combined") {
		t.Fatalf("exit %d, stderr %q", code, stderr.String())
	}
}

// TestRemoteUnreachableDaemon: a dead daemon is a runtime failure (exit
// 1) with the URL in the error, not a silent fallback to local
// execution.
func TestRemoteUnreachableDaemon(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run([]string{"-remote", "http://127.0.0.1:1", "-exp", "fig3", "-runs", "1", "-q"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "127.0.0.1:1") {
		t.Fatalf("error does not name the daemon: %q", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("failed remote run still produced output: %q", stdout.String())
	}
}

// TestRemoteRejectedSpec: a daemon-side 4xx surfaces to the user with
// the daemon's reason.
func TestRemoteRejectedSpec(t *testing.T) {
	url := startDaemon(t, server.Config{MaxRuns: 2})
	var stdout, stderr strings.Builder
	code := run([]string{"-remote", url, "-exp", "fig3", "-runs", "30", "-q"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(stderr.String(), "out of range") {
		t.Fatalf("daemon reason lost: %q", stderr.String())
	}
}

// TestRemoteStdoutMatchesLocal is the byte-identity contract: the same
// campaign through -remote (cold cache, then warm) and locally must
// write identical stdout — goldens and downstream tooling cannot tell
// where a campaign ran.
func TestRemoteStdoutMatchesLocal(t *testing.T) {
	url := startDaemon(t, server.Config{CacheDir: filepath.Join(t.TempDir(), "cache")})
	for _, exp := range []string{"fig3", "ext-sched"} {
		args := []string{"-exp", exp, "-runs", "1", "-seed", "1", "-q"}
		_, local, localErr := runCLI(args...)
		if local == "" {
			t.Fatalf("%s: local run produced nothing: %s", exp, localErr)
		}
		for _, phase := range []string{"cold", "warm"} {
			var stdout, stderr strings.Builder
			code := run(append([]string{"-remote", url}, args...), &stdout, &stderr)
			if code != 0 {
				t.Fatalf("%s %s: exit %d: %s", exp, phase, code, stderr.String())
			}
			if stdout.String() != local {
				t.Fatalf("%s %s: remote stdout differs from local:\n got %q\nwant %q",
					exp, phase, stdout.String(), local)
			}
		}
	}
}

// TestRemoteVerifyAgainstGoldens: -verify under -remote compares the
// daemon's output against local goldens — pass on fresh goldens, exit 1
// with a diff on tampered ones.
func TestRemoteVerifyAgainstGoldens(t *testing.T) {
	url := startDaemon(t, server.Config{})
	dir := t.TempDir()
	args := []string{"-exp", "fig3", "-runs", "1", "-q", "-o", dir}

	if code, _, stderr := runCLI(append(args, "-update")...); code != 0 {
		t.Fatalf("golden update failed (%d): %s", code, stderr)
	}
	var stdout, stderr strings.Builder
	if code := run(append(append([]string{"-remote", url}, args...), "-verify"), &stdout, &stderr); code != 0 {
		t.Fatalf("remote -verify against fresh goldens failed (%d): %s%s", code, stdout.String(), stderr.String())
	}

	golden := filepath.Join(dir, "fig3-henri.txt")
	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(golden, append(data, "tampered\n"...), 0o644); err != nil {
		t.Fatal(err)
	}
	stdout.Reset()
	stderr.Reset()
	code := run(append(append([]string{"-remote", url}, args...), "-verify"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("remote -verify of tampered golden exited %d, want 1", code)
	}
	if !strings.Contains(stdout.String(), "@@") {
		t.Fatalf("remote -verify did not print a diff:\n%s", stdout.String())
	}
}

// TestRemoteRecapNamesDaemon: the cache recap under -remote credits the
// daemon, not a local directory.
func TestRemoteRecapNamesDaemon(t *testing.T) {
	url := startDaemon(t, server.Config{CacheDir: filepath.Join(t.TempDir(), "cache")})
	var stdout, stderr strings.Builder
	if code := run([]string{"-remote", url, "-exp", "fig3", "-runs", "1"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "remote: "+url) {
		t.Fatalf("recap does not name the daemon:\n%s", stderr.String())
	}
}

// TestLocalRunAgainstRemoteCache: -cache with an http URL executes
// locally but publishes and consumes points through the daemon's shared
// cache — the second run is fully served.
func TestLocalRunAgainstRemoteCache(t *testing.T) {
	url := startDaemon(t, server.Config{CacheDir: filepath.Join(t.TempDir(), "cache")})
	args := []string{"-exp", "fig3", "-runs", "1", "-cache", url}
	var cold, coldErr strings.Builder
	if code := run(args, &cold, &coldErr); code != 0 {
		t.Fatalf("cold exit %d: %s", code, coldErr.String())
	}
	var warm, warmErr strings.Builder
	if code := run(args, &warm, &warmErr); code != 0 {
		t.Fatalf("warm exit %d: %s", code, warmErr.String())
	}
	if warm.String() != cold.String() {
		t.Fatal("warm remote-cache stdout differs from cold")
	}
	if !strings.Contains(warmErr.String(), "0 computed (100% served without executing)") {
		t.Fatalf("warm run not served by the daemon's cache:\n%s", warmErr.String())
	}
	if !strings.Contains(warmErr.String(), url) {
		t.Fatalf("recap does not name the remote cache:\n%s", warmErr.String())
	}
}

// TestChaosRequiresRemoteTraffic: -chaos injects into daemon HTTP
// traffic, so it is a usage error anywhere there is none — purely local
// runs stay provably chaos-free.
func TestChaosRequiresRemoteTraffic(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-exp", "fig3", "-chaos", "refuse:p=1"}, "-chaos requires"},
		{[]string{"-exp", "fig3", "-no-cache", "-chaos", "refuse:p=1"}, "-chaos requires"},
		{[]string{"-exp", "fig3", "-chaos-seed", "3"}, "-chaos-seed without -chaos"},
		{[]string{"-remote", "http://localhost:1", "-exp", "fig3", "-chaos", "bogus:p=1"}, "chaos"},
	}
	for _, tc := range cases {
		var stdout, stderr strings.Builder
		if code := run(tc.args, &stdout, &stderr); code != 2 {
			t.Errorf("%v: exit %d, want 2: %s", tc.args, code, stderr.String())
		} else if !strings.Contains(stderr.String(), tc.want) {
			t.Errorf("%v: stderr %q does not contain %q", tc.args, stderr.String(), tc.want)
		}
	}
}

// TestChaosRetriesAgainstRemoteCache: a 5xx burst injected into the
// remote-cache traffic is absorbed by the client's backoff retries —
// stdout stays byte-identical to a fault-free run and the recap reports
// the retries.
func TestChaosRetriesAgainstRemoteCache(t *testing.T) {
	url := startDaemon(t, server.Config{CacheDir: filepath.Join(t.TempDir(), "cache")})
	args := []string{"-exp", "fig3", "-runs", "1", "-seed", "1"}
	_, clean, cleanErr := runCLI(args...)
	if clean == "" {
		t.Fatalf("fault-free run produced nothing: %s", cleanErr)
	}
	var stdout, stderr strings.Builder
	chaosArgs := append([]string{"-cache", url, "-chaos", "http:status=503,ops=1-2", "-chaos-seed", "7"}, args...)
	if code := run(chaosArgs, &stdout, &stderr); code != 0 {
		t.Fatalf("chaos run exit %d: %s", code, stderr.String())
	}
	if stdout.String() != clean {
		t.Fatal("stdout drifted under injected 5xx bursts")
	}
	if !strings.Contains(stderr.String(), "CHAOS ACTIVE") || !strings.Contains(stderr.String(), "seed 7") {
		t.Fatalf("chaos drill not announced with its seed:\n%s", stderr.String())
	}
	if !strings.Contains(stderr.String(), "transient failures retried") {
		t.Fatalf("recap does not report the retries:\n%s", stderr.String())
	}
}

// TestChaosRefusalOnSubmission: with every connection refused, -remote
// fails cleanly (exit 1, daemon named) — proving the chaos transport is
// wired into the submission path, and that a drill failure is loud, not
// a silent local fallback.
func TestChaosRefusalOnSubmission(t *testing.T) {
	url := startDaemon(t, server.Config{})
	var stdout, stderr strings.Builder
	code := run([]string{"-remote", url, "-exp", "fig3", "-runs", "1", "-q", "-chaos", "refuse:p=1"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d, want 1: %s", code, stderr.String())
	}
	// With the failover layer the refusal surfaces either at the health
	// gate ("no replica ... is healthy") or at submission; both name the
	// daemon and neither falls back to local execution.
	if !strings.Contains(stderr.String(), "submitting campaign") &&
		!strings.Contains(stderr.String(), "is healthy") {
		t.Fatalf("refusal not surfaced as a submission error:\n%s", stderr.String())
	}
	if stdout.Len() != 0 {
		t.Fatalf("refused submission still produced output: %q", stdout.String())
	}
}
