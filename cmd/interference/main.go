// Command interference runs the paper's experiments on the simulated
// clusters and prints the tables/series behind every figure.
//
// The unit of scheduling is the sweep *point*: every experiment
// compiles its parameter grids (core counts, message sizes, placements,
// ...) into independent points that all -j workers execute from one
// shared pool, merging results back in index order — so output is
// byte-identical at every -j value, and a campaign dominated by one
// big sweep still uses every worker. Computed points are persisted in
// a content-addressed cache (-cache, default results/.cache) keyed by
// solver version, cluster spec, seed/runs/faults and the point's
// parameters; repeated campaigns replay unchanged points and report
// the hit rate. -no-cache disables the persistent layer (points are
// still deduplicated in memory within the campaign).
//
// Usage:
//
//	interference -list
//	interference -cluster henri -exp fig4
//	interference -cluster billy -exp all -format csv -o results/
//	interference -cluster henri -exp fig7 -runs 5 -seed 42
//	interference -all -j 8 -verify      # diff against results/ goldens
//	interference -all -update           # regenerate results/ goldens
//	interference -all -no-cache         # force recomputation of all points
//	interference -all -cache-stats      # campaign + cache occupancy/hit-rate recap
//	interference -compact -cache-stats  # migrate legacy loose entries into a pack
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fluid"
	"repro/internal/replica"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/topology"
	"repro/internal/trace"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment abstracted, so tests can drive the
// flag handling and exit codes directly.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("interference", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		cluster  = fs.String("cluster", "henri", "cluster preset: henri, bora, billy or pyxis")
		specFile = fs.String("spec", "", "JSON machine spec file (overrides -cluster; see `topo -json`)")
		exp      = fs.String("exp", "", "experiment ID (fig1..fig10, tab1, sec5.2, ...) or \"all\"")
		all      = fs.Bool("all", false, "run every registered experiment (same as -exp all)")
		list     = fs.Bool("list", false, "list available experiments and exit")
		format   = fs.String("format", "ascii", "output format: ascii or csv")
		outDir   = fs.String("o", "", "write one file per experiment into this directory instead of stdout")
		seed     = fs.Int64("seed", 1, "simulation seed")
		runs     = fs.Int("runs", 3, "repetitions per configuration (decile bands)")
		jobs     = fs.Int("j", 0, "concurrent workers executing sweep points and experiments; 0 = GOMAXPROCS")
		verify   = fs.Bool("verify", false, "re-run experiments and diff against the golden files (exit 1 on drift)")
		update   = fs.Bool("update", false, "regenerate the golden files from this run")
		quiet    = fs.Bool("q", false, "suppress progress messages and the summary table")
		faults   = fs.String("faults", "", "fault schedule spec, e.g. \"loss:p=0.1;degrade:factor=0.5\" (see fault.ParseSpec); defaults -exp to the faults family")
		timeout  = fs.Duration("timeout", 0, "per-experiment wall-clock deadline; 0 disables")
		retry    = fs.Int("retry", 0, "extra attempts for a failed experiment")
		journal  = fs.String("journal", "", "append completed results to this JSON-lines journal (crash-safe campaigns)")
		resume   = fs.Bool("resume", false, "replay results already in -journal and run only the missing experiments")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file (whole process: with -j>1 all workers share one profile)")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file at exit (whole process: with -j>1 all workers share one profile)")
		cacheDir = fs.String("cache", "results/.cache", "persistent point cache: a directory, or comma-separated interfd base URLs (http://...) to share a remote cache (several replicas hedge reads)")
		noCache  = fs.Bool("no-cache", false, "disable the persistent point cache (in-memory dedup stays on)")
		cacheTop = fs.Bool("cache-stats", false, "print the point cache's disk occupancy (pack segments, pending writes, loose shards) and hit rate after the campaign (requires a local directory -cache)")
		compact  = fs.Bool("compact", false, "migrate the cache's legacy loose JSON entries into a pack segment and exit (combine with -cache-stats to print the resulting occupancy)")
		remote   = fs.String("remote", "", "comma-separated interfd base URLs (e.g. http://a:7077,http://b:7077): submit the campaign to a healthy replica instead of executing locally, failing over on errors")
		deadline = fs.Duration("deadline", 0, "client deadline sent with a -remote submission (X-Deadline): the daemon refuses campaigns it predicts cannot finish in time; 0 sends none")
		chaosStr = fs.String("chaos", "", "chaos schedule injected into daemon HTTP traffic, e.g. \"refuse:p=0.2;http:status=503,p=0.1\" (requires -remote or an http:// -cache)")
		chaosSd  = fs.Int64("chaos-seed", 1, "seed for the deterministic chaos schedule (-chaos)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	// Which flags the user actually set (vs defaults): -remote rejects
	// local-execution flags explicitly instead of silently ignoring
	// them, and that needs to distinguish "-j 0" from an untouched -j.
	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })

	if *list {
		for _, e := range core.Experiments() {
			fmt.Fprintf(stdout, "%-16s %s\n", e.ID, e.Title)
			if e.Sweep != "" {
				fmt.Fprintf(stdout, "%-16s   %s\n", "", e.Sweep)
			}
		}
		return 0
	}
	if *remote != "" {
		// Everything below is a local-execution setting: the daemon owns
		// worker counts, caching, durability and scheduling. Fail loudly
		// rather than letting a flag be silently meaningless.
		for _, bad := range []struct {
			name string
			why  string
		}{
			{"j", "the daemon sizes its own worker shards"},
			{"cache", "the daemon owns the point cache"},
			{"no-cache", "the daemon owns the point cache"},
			{"cache-stats", "the daemon owns the point cache"},
			{"compact", "the daemon owns the point cache"},
			{"journal", "the daemon journals campaigns itself"},
			{"resume", "the daemon journals campaigns itself"},
			{"timeout", "attempt deadlines are a daemon-side setting"},
			{"retry", "retries are a daemon-side setting"},
			{"update", "goldens must be regenerated by a local run (the solver's differential oracle only arms locally)"},
			{"cpuprofile", "nothing executes locally under -remote"},
			{"memprofile", "nothing executes locally under -remote"},
		} {
			if explicit[bad.name] {
				fmt.Fprintf(stderr, "interference: -%s cannot be combined with -remote: %s\n", bad.name, bad.why)
				return 2
			}
		}
	}
	if explicit["deadline"] && *remote == "" {
		fmt.Fprintln(stderr, "interference: -deadline requires -remote (it is sent to the daemon as X-Deadline)")
		return 2
	}
	if *deadline < 0 {
		fmt.Fprintf(stderr, "interference: -deadline %v is invalid: need a non-negative duration\n", *deadline)
		return 2
	}
	// Chaos only makes sense where there is network traffic to disturb:
	// a remote submission or a remote point cache. Local simulation is
	// deterministic by construction; refusing -chaos there keeps "my run
	// was chaos-free" an invariant rather than a hope.
	remoteCacheURL := !*noCache &&
		(strings.HasPrefix(*cacheDir, "http://") || strings.HasPrefix(*cacheDir, "https://"))
	if *cacheTop && (*noCache || remoteCacheURL) {
		fmt.Fprintln(stderr, "interference: -cache-stats requires a local directory -cache (disk occupancy is a local-cache concept)")
		return 2
	}
	if *compact {
		if *noCache || remoteCacheURL {
			fmt.Fprintln(stderr, "interference: -compact requires a local directory -cache (there are no loose files to migrate elsewhere)")
			return 2
		}
		cache, err := runner.OpenPointCache(*cacheDir)
		if err != nil {
			fmt.Fprintln(stderr, "interference:", err)
			return 2
		}
		n, err := cache.Compact()
		if err != nil {
			fmt.Fprintln(stderr, "interference:", err)
			return 1
		}
		fmt.Fprintf(stdout, "compacted %d loose entr%s into a pack segment [%s]\n",
			n, map[bool]string{true: "y", false: "ies"}[n == 1], *cacheDir)
		if *cacheTop {
			ds := cache.DiskStats()
			fmt.Fprintf(stderr, "cache disk: %d pack segment(s) holding %d record(s), %d pending write(s), %d loose JSON file(s) across %d shard dir(s)\n",
				ds.Packs, ds.PackedEntries, ds.PendingEntries, ds.LooseEntries, ds.LooseShards)
		}
		return 0
	}
	var chaosRT http.RoundTripper
	if *chaosStr != "" {
		if *remote == "" && !remoteCacheURL {
			fmt.Fprintln(stderr, "interference: -chaos requires -remote or an http(s):// -cache (it injects faults into daemon traffic)")
			return 2
		}
		sched, err := chaos.ParseSpec(*chaosStr)
		if err != nil {
			fmt.Fprintln(stderr, "interference:", err)
			return 2
		}
		chaosRT = &chaos.Transport{Inj: chaos.NewInjector(*chaosSd, sched)}
		if !*quiet {
			fmt.Fprintf(stderr, "interference: CHAOS ACTIVE: injecting %q with seed %d into daemon traffic\n",
				sched, *chaosSd)
		}
	} else if explicit["chaos-seed"] {
		fmt.Fprintln(stderr, "interference: -chaos-seed without -chaos has no schedule to seed")
		return 2
	}
	if *jobs == 0 {
		*jobs = runtime.GOMAXPROCS(0)
	}
	if *jobs < 1 {
		fmt.Fprintf(stderr, "interference: -j %d is invalid: need at least one worker (or 0 for GOMAXPROCS)\n", *jobs)
		return 2
	}
	if *retry < 0 {
		fmt.Fprintf(stderr, "interference: -retry %d is invalid: need a non-negative attempt count\n", *retry)
		return 2
	}
	if *timeout < 0 {
		fmt.Fprintf(stderr, "interference: -timeout %v is invalid: need a non-negative duration\n", *timeout)
		return 2
	}
	if *verify && *update {
		fmt.Fprintln(stderr, "interference: -verify and -update are mutually exclusive")
		return 2
	}
	if *resume && *journal == "" {
		fmt.Fprintln(stderr, "interference: -resume requires -journal (nothing to resume from)")
		return 2
	}
	if *journal != "" && (*verify || *update) {
		fmt.Fprintln(stderr, "interference: -journal cannot be combined with -verify/-update (goldens must re-run every experiment)")
		return 2
	}
	if *faults != "" && (*verify || *update) {
		fmt.Fprintln(stderr, "interference: -faults cannot be combined with -verify/-update (goldens are recorded under the built-in schedules)")
		return 2
	}
	if (*verify || *update) && *format != "ascii" {
		fmt.Fprintln(stderr, "interference: golden files are ascii; -format", *format, "cannot be combined with -verify/-update")
		return 2
	}
	// Profiles cover the whole process by design: experiment workers are
	// goroutines in this process, so with -j>1 the profile aggregates
	// every worker rather than attributing samples per experiment. That
	// is the useful view for solver/kernel hot-spot hunting; per-
	// experiment attribution falls out of the pprof call graph anyway
	// (each experiment enters through its own registered function).
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(stderr, "interference:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(stderr, "interference:", err)
			f.Close()
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		path := *memProf
		defer func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(stderr, "interference:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, "interference:", err)
			}
		}()
	}
	if *verify && *remote == "" {
		// Golden verification also arms the solver's differential oracle:
		// every incremental re-solve is shadowed by the reference solver
		// and any disagreement panics, so a -verify pass certifies both
		// the rendered bytes and the allocation math behind them. Under
		// -remote nothing simulates locally — the verification is then a
		// pure byte comparison of the daemon's output against the goldens.
		fluid.SetDifferential(true)
	}
	if *all {
		*exp = "all"
	}
	if *exp == "" && *faults != "" {
		*exp = "faults"
	}
	if *exp == "" {
		fmt.Fprintln(stderr, "interference: -exp or -all is required (or -list); e.g. -exp fig4")
		return 2
	}
	env, err := core.Env(*cluster, *seed, *runs)
	if err != nil {
		fmt.Fprintln(stderr, "interference:", err)
		return 2
	}
	if *specFile != "" {
		spec, err := topology.LoadSpecFile(*specFile)
		if err != nil {
			fmt.Fprintln(stderr, "interference:", err)
			return 2
		}
		env.Spec = spec
		*cluster = spec.Name
	}

	if *faults != "" {
		sched, err := fault.ParseSpec(*faults)
		if err != nil {
			fmt.Fprintln(stderr, "interference:", err)
			return 2
		}
		env.Faults = sched
	}

	var todo []core.Experiment
	switch *exp {
	case "all":
		todo = core.Experiments()
	case "faults":
		for _, id := range core.FaultFamily() {
			e, _ := core.ByID(id)
			todo = append(todo, e)
		}
	default:
		e, ok := core.ByID(*exp)
		if !ok {
			fmt.Fprintf(stderr, "interference: unknown experiment %q; valid IDs: %s\n",
				*exp, strings.Join(experimentIDs(), ", "))
			return 2
		}
		todo = []core.Experiment{e}
	}

	// The golden directory: -o when given, the checked-in results/
	// otherwise.
	goldenDir := *outDir
	if goldenDir == "" {
		goldenDir = "results"
	}

	failed := 0
	var done []runner.Result
	stats := &runner.CacheStats{}
	cacheLabel := "persistent cache disabled"
	var results <-chan runner.Result
	var breaker *runner.Breaker
	var localCache *runner.PointCache
	var remoteResp *server.CampaignResponse
	var replicaSet *replica.Set
	var hedged *replica.Cache
	if *remote != "" {
		urls, err := replica.ParseList(*remote)
		if err != nil {
			fmt.Fprintln(stderr, "interference:", err)
			return 2
		}
		replicaSet = replica.NewSet(urls, replica.Options{Transport: chaosRT})
		var inline *topology.NodeSpec
		if *specFile != "" {
			inline = env.Spec
		}
		results, remoteResp, err = submitRemote(replicaSet, inline, *cluster, todo, *seed, *runs, *format, *faults, *deadline, stats)
		if err != nil {
			fmt.Fprintln(stderr, "interference:", err)
			return 1
		}
		cacheLabel = "remote: " + *remote
	} else {
		opts := runner.Options{
			Workers: *jobs, Format: *format, Deadline: *timeout, Retries: *retry,
			CacheStats: stats,
		}
		if !*noCache {
			if remoteCacheURL {
				// Local execution against a daemon's shared cache: points
				// computed here are published for every other client. The
				// remote store retries transient failures with backoff and
				// sits behind a circuit breaker, so an unreachable daemon
				// degrades to local recomputation instead of hammering a
				// dead endpoint once per point. With several replicas the
				// reads are hedged: a GET that outlives the adaptive hedge
				// delay races a second replica and the first answer wins.
				urls, err := replica.ParseList(*cacheDir)
				if err != nil {
					fmt.Fprintln(stderr, "interference:", err)
					return 2
				}
				var store runner.CacheStore
				if len(urls) > 1 {
					cacheSet := replica.NewSet(urls, replica.Options{Transport: chaosRT})
					hedged = replica.NewCache(cacheSet, stats)
					store = hedged
				} else {
					rc := server.NewRemoteCache(urls[0])
					rc.AttachStats(stats)
					if chaosRT != nil {
						rc.SetTransport(chaosRT)
					}
					store = rc
				}
				breaker = runner.NewBreaker(store, 0, 0)
				opts.Cache = breaker
			} else {
				cache, err := runner.OpenPointCache(*cacheDir)
				if err != nil {
					fmt.Fprintln(stderr, "interference:", err)
					return 2
				}
				opts.Cache = cache
				localCache = cache
			}
			cacheLabel = *cacheDir
		}
		if *journal != "" {
			j, err := runner.OpenJournal(*journal)
			if err != nil {
				fmt.Fprintln(stderr, "interference:", err)
				return 2
			}
			defer j.Close()
			results = runner.RunResumable(env, todo, opts, j, *cluster, *resume)
		} else {
			results = runner.Run(env, todo, opts)
		}
	}
	for res := range results {
		done = append(done, res)
		if res.DurabilityErr != nil {
			// The result is correct; only its crash-safety is gone. A
			// warning, never a failure — campaigns keep their exit code.
			fmt.Fprintf(stderr, "interference: %s: durability warning: %v\n", res.Exp.ID, res.DurabilityErr)
		}
		if res.Err != nil {
			failed++
			fmt.Fprintf(stderr, "interference: %s: %v\n", res.Exp.ID, res.Err)
			continue
		}
		switch {
		case *verify:
			if err := runner.VerifyGolden(goldenDir, *cluster, res); err != nil {
				failed++
				fmt.Fprintln(stdout, err)
			}
		case *update:
			if err := runner.UpdateGolden(goldenDir, *cluster, res); err != nil {
				failed++
				fmt.Fprintf(stderr, "interference: %s: %v\n", res.Exp.ID, err)
			}
		case *outDir != "":
			ext := ".txt"
			if *format == "csv" {
				ext = ".csv"
			}
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintln(stderr, "interference:", err)
				return 1
			}
			path := filepath.Join(*outDir, fmt.Sprintf("%s-%s%s", res.Exp.ID, *cluster, ext))
			if err := os.WriteFile(path, []byte(res.Rendered), 0o644); err != nil {
				fmt.Fprintln(stderr, "interference:", err)
				return 1
			}
		default:
			fmt.Fprint(stdout, res.Rendered)
			fmt.Fprintln(stdout)
		}
		if !*quiet {
			line := fmt.Sprintf("%s on %s done in %v (wall), %.3gs simulated across %d worlds",
				res.Exp.ID, *cluster, res.Metrics.Wall.Round(time.Millisecond),
				res.Metrics.SimSeconds, res.Metrics.Worlds)
			if res.Cached {
				line = fmt.Sprintf("%s on %s replayed from the journal (%.3gs simulated across %d worlds)",
					res.Exp.ID, *cluster, res.Metrics.SimSeconds, res.Metrics.Worlds)
			}
			if ft := res.Metrics.Faults; ft.Any() {
				line += fmt.Sprintf("; faults: %.0f retries, %.0f timeouts, %.0f lost, %.0f corrupted",
					ft.SendRetries, ft.SendTimeouts+ft.RecvTimeouts, ft.MsgsLost, ft.MsgsCorrupted)
				if ft.PeerDeaths > 0 || ft.TasksReexecuted > 0 || ft.RollbackIters > 0 || ft.Checkpoints > 0 {
					line += fmt.Sprintf("; crashes: %.0f deaths seen, %.0f tasks re-executed, %.0f iters rolled back, %.0f checkpoints, %.2fms recovering",
						ft.PeerDeaths, ft.TasksReexecuted, ft.RollbackIters, ft.Checkpoints, ft.RecoverySecs*1e3)
				}
			}
			fmt.Fprintln(stderr, line)
		}
	}
	if localCache != nil {
		// The cache is write-behind: stored points sit in a pending
		// buffer until a pack segment flushes. Close here so this
		// campaign's records survive into the next invocation. A flush
		// failure forfeits future hits, never correctness — warn, keep
		// the exit code.
		if err := localCache.Close(); err != nil {
			fmt.Fprintf(stderr, "interference: cache flush warning: %v\n", err)
		}
	}
	if !*quiet && len(done) > 1 {
		fmt.Fprintln(stderr)
		if err := core.WriteTables(stderr, "ascii", []*trace.Table{runner.Summary(done)}); err != nil {
			fmt.Fprintln(stderr, "interference:", err)
		}
	}
	if !*quiet && stats.Points() > 0 {
		line := fmt.Sprintf("point cache: %d points, %d disk hits, %d memo hits, %d computed (%.0f%% served without executing)",
			stats.Points(), stats.Hits, stats.MemoHits, stats.Misses, stats.HitRate()*100)
		if stats.FlightHits > 0 {
			line += fmt.Sprintf("; %d shared with concurrent clients", stats.FlightHits)
		}
		if stats.Mismatches > 0 || stats.Errors > 0 {
			line += fmt.Sprintf("; %d key mismatches, %d I/O errors", stats.Mismatches, stats.Errors)
		}
		if r := atomic.LoadInt64(&stats.Retries); r > 0 {
			line += fmt.Sprintf("; %d transient failures retried", r)
		}
		if sk := atomic.LoadInt64(&stats.Skipped); sk > 0 {
			line += fmt.Sprintf("; %d cache ops skipped", sk)
		}
		line += " [" + cacheLabel + "]"
		fmt.Fprintln(stderr, line)
	}
	if *cacheTop && localCache != nil {
		// Explicitly requested, so it prints even under -q. Runs after
		// Close: the occupancy shown is what the next invocation finds.
		ds := localCache.DiskStats()
		fmt.Fprintf(stderr, "cache disk: %d pack segment(s) holding %d record(s), %d pending write(s), %d loose JSON file(s) across %d shard dir(s)\n",
			ds.Packs, ds.PackedEntries, ds.PendingEntries, ds.LooseEntries, ds.LooseShards)
		fmt.Fprintf(stderr, "cache hit rate: %.0f%% (%d of %d points served without executing)\n",
			stats.HitRate()*100,
			atomic.LoadInt64(&stats.Hits)+atomic.LoadInt64(&stats.MemoHits), stats.Points())
	}
	if !*quiet && breaker != nil {
		if bs := breaker.Stats(); bs.Trips > 0 {
			fmt.Fprintf(stderr, "cache breaker: %d trip(s), %d recover(ies), %d op(s) suppressed while open (state: %s)\n",
				bs.Trips, bs.Recoveries, bs.Skipped, bs.StateName)
		}
	}
	if !*quiet && replicaSet != nil {
		b := replicaSet.Budget()
		if replicaSet.Failovers() > 0 || replicaSet.Retried() > 0 || b.Denied() > 0 {
			fmt.Fprintf(stderr, "replica set: %d failover(s), %d retried submission(s); retry budget granted %d, refused %d\n",
				replicaSet.Failovers(), replicaSet.Retried(), b.Allowed(), b.Denied())
		}
	}
	if !*quiet && hedged != nil {
		if hedged.Hedges() > 0 || hedged.Failovers() > 0 {
			fmt.Fprintf(stderr, "hedged cache: %d hedged read(s), %d won by the hedge, %d failover(s)\n",
				hedged.Hedges(), hedged.HedgeWins(), hedged.Failovers())
		}
	}
	if atomic.LoadInt64(&stats.Degraded) > 0 || (remoteResp != nil && remoteResp.Degraded) {
		fmt.Fprintln(stderr, "interference: WARNING: campaign degraded to no-cache mode after repeated cache failures (results are correct, recomputed)")
	}
	if remoteResp != nil && remoteResp.TimedOut {
		fmt.Fprintln(stderr, "interference: WARNING: the daemon's campaign deadline expired; failed experiments above were cancelled")
	}
	if failed > 0 {
		// Recap after the summary table, so a long campaign's failures
		// are visible without scrolling back through the stream.
		fmt.Fprintf(stderr, "\ninterference: %d of %d experiments failed:\n", failed, len(done))
		for _, res := range done {
			if res.Err != nil {
				fmt.Fprintf(stderr, "  %-16s %v (after %d attempt(s))\n", res.Exp.ID, res.Err, res.Metrics.Attempts)
			}
		}
		return 1
	}
	return 0
}

// experimentIDs lists every registered experiment ID in order.
func experimentIDs() []string {
	var ids []string
	for _, e := range core.Experiments() {
		ids = append(ids, e.ID)
	}
	return ids
}
