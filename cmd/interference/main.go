// Command interference runs the paper's experiments on the simulated
// clusters and prints the tables/series behind every figure.
//
// Usage:
//
//	interference -list
//	interference -cluster henri -exp fig4
//	interference -cluster billy -exp all -format csv -o results/
//	interference -cluster henri -exp fig7 -runs 5 -seed 42
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/topology"
)

func main() {
	var (
		cluster  = flag.String("cluster", "henri", "cluster preset: henri, bora, billy or pyxis")
		specFile = flag.String("spec", "", "JSON machine spec file (overrides -cluster; see `topo -json`)")
		exp      = flag.String("exp", "", "experiment ID (fig1..fig10, tab1, sec5.2) or \"all\"")
		list     = flag.Bool("list", false, "list available experiments and exit")
		format   = flag.String("format", "ascii", "output format: ascii or csv")
		outDir   = flag.String("o", "", "write one file per experiment into this directory instead of stdout")
		seed     = flag.Int64("seed", 1, "simulation seed")
		runs     = flag.Int("runs", 3, "repetitions per configuration (decile bands)")
		quiet    = flag.Bool("q", false, "suppress progress messages")
	)
	flag.Parse()

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "interference: -exp is required (or -list); e.g. -exp fig4")
		os.Exit(2)
	}
	env, err := core.Env(*cluster, *seed, *runs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "interference:", err)
		os.Exit(2)
	}
	if *specFile != "" {
		spec, err := topology.LoadSpecFile(*specFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "interference:", err)
			os.Exit(2)
		}
		env.Spec = spec
		*cluster = spec.Name
	}

	var todo []core.Experiment
	if *exp == "all" {
		todo = core.Experiments()
	} else {
		e, ok := core.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "interference: unknown experiment %q; use -list\n", *exp)
			os.Exit(2)
		}
		todo = []core.Experiment{e}
	}

	for _, e := range todo {
		if !*quiet {
			fmt.Fprintf(os.Stderr, "running %s on %s ...\n", e.ID, *cluster)
		}
		start := time.Now()
		tables := e.Run(env)
		var w io.Writer = os.Stdout
		if *outDir != "" {
			ext := ".txt"
			if *format == "csv" {
				ext = ".csv"
			}
			path := filepath.Join(*outDir, fmt.Sprintf("%s-%s%s", e.ID, *cluster, ext))
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "interference:", err)
				os.Exit(1)
			}
			w = f
			defer f.Close()
		}
		if err := core.WriteTables(w, *format, tables); err != nil {
			fmt.Fprintln(os.Stderr, "interference:", err)
			os.Exit(1)
		}
		if w == os.Stdout {
			fmt.Println()
		}
		if !*quiet {
			fmt.Fprintf(os.Stderr, "%s done in %v (wall)\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
