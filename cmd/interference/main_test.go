package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/runner"
)

// runCLI drives run() and returns exit code, stdout, stderr. The
// persistent point cache is disabled so tests never create the default
// results/.cache directory relative to the test working directory;
// cache-specific tests call run() themselves with -cache pointing at a
// temp dir.
func runCLI(args ...string) (int, string, string) {
	var stdout, stderr strings.Builder
	code := run(append([]string{"-no-cache"}, args...), &stdout, &stderr)
	return code, stdout.String(), stderr.String()
}

func TestUnknownExperimentListsValidIDs(t *testing.T) {
	code, _, stderr := runCLI("-exp", "zzz")
	if code == 0 {
		t.Fatal("unknown experiment accepted")
	}
	if !strings.Contains(stderr, "valid IDs") {
		t.Fatalf("error does not announce the valid-ID list: %q", stderr)
	}
	for _, id := range []string{"fig1", "fig10", "tab1", "sec5.2", "ext-collectives"} {
		if !strings.Contains(stderr, id) {
			t.Fatalf("valid-ID list missing %s: %q", id, stderr)
		}
	}
}

func TestVerifyUpdateMutuallyExclusive(t *testing.T) {
	code, _, stderr := runCLI("-all", "-verify", "-update")
	if code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(stderr, "mutually exclusive") {
		t.Fatalf("stderr: %q", stderr)
	}
}

func TestGoldenModesRejectCSV(t *testing.T) {
	for _, mode := range []string{"-verify", "-update"} {
		code, _, stderr := runCLI("-all", mode, "-format", "csv")
		if code != 2 || !strings.Contains(stderr, "ascii") {
			t.Fatalf("%s -format csv: exit %d, stderr %q", mode, code, stderr)
		}
	}
}

func TestMissingExperimentFlag(t *testing.T) {
	code, _, stderr := runCLI()
	if code != 2 || !strings.Contains(stderr, "-exp") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestUnknownCluster(t *testing.T) {
	code, _, stderr := runCLI("-cluster", "atlantis", "-exp", "fig3")
	if code != 2 || !strings.Contains(stderr, "atlantis") {
		t.Fatalf("exit %d, stderr %q", code, stderr)
	}
}

func TestUnknownFlag(t *testing.T) {
	if code, _, _ := runCLI("-no-such-flag"); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestListExperiments(t *testing.T) {
	code, stdout, _ := runCLI("-list")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, id := range []string{"fig1", "fig10", "tab1", "ext-tuner"} {
		if !strings.Contains(stdout, id) {
			t.Fatalf("-list missing %s:\n%s", id, stdout)
		}
	}
}

// TestGoldenWorkflow exercises the full loop on one cheap experiment:
// -update writes the golden, -verify passes, corrupting the golden makes
// -verify fail with a unified diff and exit 1.
func TestGoldenWorkflow(t *testing.T) {
	dir := t.TempDir()
	args := []string{"-exp", "fig3", "-runs", "1", "-j", "2", "-q", "-o", dir}

	code, _, stderr := runCLI(append(args, "-update")...)
	if code != 0 {
		t.Fatalf("update failed (%d): %s", code, stderr)
	}
	golden := filepath.Join(dir, "fig3-henri.txt")
	if _, err := os.Stat(golden); err != nil {
		t.Fatal(err)
	}

	if code, _, stderr := runCLI(append(args, "-verify")...); code != 0 {
		t.Fatalf("verify failed (%d): %s", code, stderr)
	}

	data, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(golden, append(data, "tampered\n"...), 0o644); err != nil {
		t.Fatal(err)
	}
	code, stdout, _ := runCLI(append(args, "-verify")...)
	if code != 1 {
		t.Fatalf("verify of tampered golden exited %d, want 1", code)
	}
	if !strings.Contains(stdout, "@@") || !strings.Contains(stdout, "-tampered") {
		t.Fatalf("verify did not print a unified diff:\n%s", stdout)
	}
}

// TestStdoutDeterministicAcrossJobs renders one experiment to stdout at
// -j 1 and -j 4 and demands identical bytes.
func TestStdoutDeterministicAcrossJobs(t *testing.T) {
	_, out1, _ := runCLI("-exp", "sec5.2", "-runs", "1", "-j", "1", "-q")
	code, out4, _ := runCLI("-exp", "sec5.2", "-runs", "1", "-j", "4", "-q")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if out1 == "" || out1 != out4 {
		t.Fatalf("stdout differs between -j 1 and -j 4:\n%q\n%q", out1, out4)
	}
}

// TestCacheWarmRunIdenticalAndRecapped: running the same experiment
// twice against a temp cache dir yields byte-identical stdout, a cache
// recap on stderr, and a fully served second run.
func TestCacheWarmRunIdenticalAndRecapped(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	args := []string{"-exp", "fig3", "-runs", "1", "-cache", cacheDir}
	runCached := func() (int, string, string) {
		var stdout, stderr strings.Builder
		code := run(args, &stdout, &stderr)
		return code, stdout.String(), stderr.String()
	}
	code, cold, coldErr := runCached()
	if code != 0 {
		t.Fatalf("cold run exit %d: %s", code, coldErr)
	}
	if !strings.Contains(coldErr, "point cache:") || !strings.Contains(coldErr, cacheDir) {
		t.Fatalf("no cache recap on stderr:\n%s", coldErr)
	}
	code, warm, warmErr := runCached()
	if code != 0 {
		t.Fatalf("warm run exit %d: %s", code, warmErr)
	}
	if warm != cold {
		t.Fatalf("warm stdout differs from cold:\n%q\n%q", cold, warm)
	}
	if !strings.Contains(warmErr, "0 computed (100% served without executing)") {
		t.Fatalf("warm recap does not show a fully served run:\n%s", warmErr)
	}
}

// TestCacheStatsFlag: -cache-stats prints disk occupancy (pack
// segments, pending writes, loose shards) and the hit rate, even under
// -q. A cold run flushes one pack at exit; a warm run is fully served.
func TestCacheStatsFlag(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	args := []string{"-exp", "fig3", "-runs", "1", "-q", "-cache", cacheDir, "-cache-stats"}
	runCached := func() (int, string) {
		var stdout, stderr strings.Builder
		code := run(args, &stdout, &stderr)
		return code, stderr.String()
	}

	code, cold := runCached()
	if code != 0 {
		t.Fatalf("cold run exit %d: %s", code, cold)
	}
	if !strings.Contains(cold, "cache disk: 1 pack segment(s)") {
		t.Fatalf("cold run did not report the flushed pack:\n%s", cold)
	}
	if !strings.Contains(cold, "0 pending write(s)") {
		t.Fatalf("cold run reports unflushed pending writes:\n%s", cold)
	}

	code, warm := runCached()
	if code != 0 {
		t.Fatalf("warm run exit %d: %s", code, warm)
	}
	if !strings.Contains(warm, "cache hit rate: 100%") {
		t.Fatalf("warm run not fully served:\n%s", warm)
	}
}

// TestCacheStatsNeedsLocalCache: disk occupancy is a local-cache
// concept; -cache-stats with -no-cache or a remote cache URL is a
// usage error.
func TestCacheStatsNeedsLocalCache(t *testing.T) {
	for _, extra := range [][]string{
		{"-no-cache"},
		{"-cache", "http://localhost:1"},
	} {
		var stdout, stderr strings.Builder
		args := append([]string{"-exp", "fig3", "-cache-stats"}, extra...)
		code := run(args, &stdout, &stderr)
		if code != 2 || !strings.Contains(stderr.String(), "-cache-stats") {
			t.Fatalf("%v: exit %d, stderr %q", extra, code, stderr.String())
		}
	}
}

// TestCompactFlag walks the whole legacy-migration loop through the
// CLI: a campaign populates a pack cache, the packs are rewritten as
// legacy loose JSON files (what a pre-pack cache directory looks
// like), a warm campaign serves fully from the loose tier and renders
// the same bytes, -compact migrates the loose files into a pack, and
// a final warm campaign still serves fully and byte-identically.
func TestCompactFlag(t *testing.T) {
	cacheDir := filepath.Join(t.TempDir(), "cache")
	campaign := func(extra ...string) (int, string, string) {
		var stdout, stderr strings.Builder
		args := append([]string{"-exp", "fig3", "-runs", "1", "-cache", cacheDir}, extra...)
		code := run(args, &stdout, &stderr)
		return code, stdout.String(), stderr.String()
	}
	code, cold, stderr := campaign()
	if code != 0 {
		t.Fatalf("cold run exit %d: %s", code, stderr)
	}

	// Downgrade the cache to the legacy layout: every packed record
	// becomes one JSON file under its two-hex shard, and the packs go.
	cache, err := runner.OpenPointCache(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	loose := 0
	err = cache.Entries(func(sum string, data []byte) error {
		var rec bench.PointRecord
		if err := rec.DecodeBinary(data); err != nil {
			return err
		}
		buf, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		loose++
		return os.WriteFile(filepath.Join(cacheDir, sum[:2], sum+".json"), buf, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if loose == 0 {
		t.Fatal("cold run stored no cache entries")
	}
	if err := os.RemoveAll(filepath.Join(cacheDir, "packs")); err != nil {
		t.Fatal(err)
	}

	code, warm, warmErr := campaign()
	if code != 0 {
		t.Fatalf("legacy warm run exit %d: %s", code, warmErr)
	}
	if warm != cold {
		t.Fatalf("legacy warm stdout differs from cold:\n%q\n%q", cold, warm)
	}
	if !strings.Contains(warmErr, "0 computed (100% served without executing)") {
		t.Fatalf("legacy layout not fully served:\n%s", warmErr)
	}

	var stdoutB, stderrB strings.Builder
	code = run([]string{"-compact", "-cache-stats", "-cache", cacheDir}, &stdoutB, &stderrB)
	if code != 0 {
		t.Fatalf("-compact exit %d: %s", code, stderrB.String())
	}
	if !strings.Contains(stdoutB.String(), "compacted") {
		t.Fatalf("-compact did not report a count: %q", stdoutB.String())
	}
	if !strings.Contains(stderrB.String(), "0 loose JSON file(s)") {
		t.Fatalf("loose files survived compaction:\n%s", stderrB.String())
	}

	code, packed, packedErr := campaign()
	if code != 0 {
		t.Fatalf("post-compact warm run exit %d: %s", code, packedErr)
	}
	if packed != cold {
		t.Fatalf("post-compact stdout differs from cold:\n%q\n%q", cold, packed)
	}
	if !strings.Contains(packedErr, "0 computed (100% served without executing)") {
		t.Fatalf("compacted cache not fully served:\n%s", packedErr)
	}
}

// TestNoCacheSuppressesRecap: -no-cache must not print a persistent
// cache directory (runCLI prepends -no-cache).
func TestNoCacheSuppressesRecap(t *testing.T) {
	code, _, stderr := runCLI("-exp", "fig3", "-runs", "1")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	if strings.Contains(stderr, "results/.cache") {
		t.Fatalf("-no-cache run mentions the cache dir:\n%s", stderr)
	}
	if !strings.Contains(stderr, "persistent cache disabled") {
		t.Fatalf("recap does not note the disabled cache:\n%s", stderr)
	}
}

// TestProfilingFlags runs a small experiment with -cpuprofile and
// -memprofile and checks both profiles materialise (whole-process
// profiles, valid at any -j).
func TestProfilingFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.out")
	mem := filepath.Join(dir, "mem.out")
	code, _, stderr := runCLI("-exp", "sec5.2", "-runs", "1", "-j", "2", "-q",
		"-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, stderr)
	}
	for _, p := range []string{cpu, mem} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestCPUProfileUnwritable checks the flag fails cleanly when the
// profile path cannot be created.
func TestCPUProfileUnwritable(t *testing.T) {
	code, _, stderr := runCLI("-exp", "sec5.2", "-cpuprofile", filepath.Join(t.TempDir(), "no", "such", "dir", "cpu.out"))
	if code != 2 {
		t.Fatalf("exit %d, want 2: %s", code, stderr)
	}
}
