package main

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/topology"
)

// Remote mode: instead of executing the campaign in-process, the CLI
// POSTs a campaign spec to an interfd daemon and streams the daemon's
// results through the exact same rendering path as local execution —
// the stdout bytes are identical either way, so goldens, -verify and
// downstream tooling cannot tell where a campaign ran.

// submitRemote sends one campaign through a replica set — health-gated
// failover across every -remote URL, server Retry-After honored,
// retries budget-bounded — and converts the response into the
// runner.Result stream the output loop consumes. The returned stats
// mirror the daemon's per-campaign cache accounting; the raw response
// rides along so the caller can surface campaign-level degradation
// (no-cache mode, expired deadline). deadline > 0 is forwarded as
// X-Deadline so an overloaded daemon refuses infeasible work up front.
func submitRemote(set *replica.Set, spec *topology.NodeSpec, cluster string, todo []core.Experiment,
	seed int64, runs int, format, faults string, deadline time.Duration,
	stats *runner.CacheStats) (<-chan runner.Result, *server.CampaignResponse, error) {

	req := server.CampaignSpec{
		Cluster: cluster,
		Seed:    seed,
		Runs:    runs,
		Format:  format,
		Faults:  faults,
	}
	if spec != nil {
		req.Spec = spec
		req.Cluster = ""
	}
	for _, e := range todo {
		req.Experiments = append(req.Experiments, e.ID)
	}
	cr, err := set.Submit(req, deadline, "")
	if err != nil {
		return nil, nil, err
	}
	if len(cr.Results) != len(todo) {
		return nil, nil, fmt.Errorf("daemon returned %d results for %d experiments", len(cr.Results), len(todo))
	}

	atomic.StoreInt64(&stats.Hits, cr.Cache.Hits)
	atomic.StoreInt64(&stats.Misses, cr.Cache.Misses)
	atomic.StoreInt64(&stats.MemoHits, cr.Cache.MemoHits)
	atomic.StoreInt64(&stats.FlightHits, cr.Cache.FlightHits)
	atomic.StoreInt64(&stats.Mismatches, cr.Cache.Mismatches)
	atomic.StoreInt64(&stats.Errors, cr.Cache.Errors)
	atomic.StoreInt64(&stats.Retries, cr.Cache.Retries)
	atomic.StoreInt64(&stats.Skipped, cr.Cache.Skipped)
	if cr.Degraded {
		atomic.StoreInt64(&stats.Degraded, 1)
	}

	out := make(chan runner.Result)
	go func() {
		defer close(out)
		for i, er := range cr.Results {
			res := runner.Result{
				Exp:      todo[i],
				Index:    i,
				Rendered: er.Rendered,
				Cached:   er.Cached,
				Metrics: runner.Metrics{
					ID:         er.ID,
					Wall:       time.Duration(er.WallMs * float64(time.Millisecond)),
					SimSeconds: er.SimSeconds,
					Worlds:     er.Worlds,
					Tables:     er.Tables,
					Rows:       er.Rows,
					Attempts:   er.Attempts,
					Faults:     er.Faults,
				},
			}
			if er.ID != todo[i].ID {
				res.Err = fmt.Errorf("daemon returned result %q at position %d, want %q", er.ID, i, todo[i].ID)
			} else if er.Error != "" {
				res.Err = errors.New(er.Error)
			}
			if er.DurabilityLost {
				res.DurabilityErr = errors.New("the daemon could not journal this result; it will not survive a daemon crash")
			}
			out <- res
		}
	}()
	return out, cr, nil
}
