// Command pingpong runs the NetPIPE-style ping-pong of §2.1 over a
// sweep of message sizes on a simulated cluster, printing the same
// latency/bandwidth series the paper's communication benchmarks use.
//
// Usage:
//
//	pingpong                       # henri, 4 B .. 64 MB
//	pingpong -cluster bora -runs 5
//	pingpong -min 64 -max 1048576 -near
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/trace"
)

func main() {
	var (
		cluster = flag.String("cluster", "henri", "cluster preset")
		seed    = flag.Int64("seed", 1, "simulation seed")
		runs    = flag.Int("runs", 3, "repetitions")
		minSize = flag.Int64("min", 4, "smallest message size in bytes")
		maxSize = flag.Int64("max", 64<<20, "largest message size in bytes")
		near    = flag.Bool("near", false, "bind the communication thread near the NIC (default: far)")
		csv     = flag.Bool("csv", false, "emit CSV instead of an aligned table")
	)
	flag.Parse()

	env, err := core.Env(*cluster, *seed, *runs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "pingpong:", err)
		os.Exit(2)
	}
	commCore := -1
	if *near {
		commCore = env.Spec.LastCoreOfNUMA(env.Spec.NIC.NUMA)
	}

	t := trace.NewTable(
		fmt.Sprintf("ping-pong on %s (comm thread %s from NIC)", *cluster, farNear(*near)),
		"size_B", "latency_us_median", "latency_us_p10", "latency_us_p90", "bandwidth_MBps")
	for size := *minSize; size <= *maxSize; size *= 4 {
		comm := bench.CommConfig{CommCore: commCore, BufNUMA: -1, Size: size, Iters: 15, Warmup: 3}
		if size >= 1<<20 {
			comm.Iters = 5
		}
		r := bench.Interference(env, comm, bench.ComputeConfig{})
		lat := r.CommAlone
		bw := 0.0
		if lat.Median > 0 {
			bw = float64(size) / lat.Median / 1e6
		}
		t.Add(size, lat.Median*1e6, lat.P10*1e6, lat.P90*1e6, bw)
	}
	if *csv {
		if err := t.WriteCSV(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "pingpong:", err)
			os.Exit(1)
		}
		return
	}
	fmt.Print(t.String())
}

func farNear(near bool) string {
	if near {
		return "near"
	}
	return "far"
}
