// Command topo inspects and validates the simulated cluster presets:
// the machine models of the paper's henri, bora, billy and pyxis nodes.
//
// Usage:
//
//	topo            # summary of all presets
//	topo henri      # detailed view of one preset
package main

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/topology"
)

func main() {
	args := os.Args[1:]
	asJSON := false
	if len(args) > 0 && args[0] == "-json" {
		asJSON = true
		args = args[1:]
	}
	if len(args) > 0 {
		spec := topology.Preset(args[0])
		if spec == nil {
			// Fall back to a JSON spec file, so users can validate and
			// inspect their own machine models.
			loaded, err := topology.LoadSpecFile(args[0])
			if err != nil {
				fmt.Fprintf(os.Stderr, "topo: %q is neither a preset nor a readable spec file (%v)\n", args[0], err)
				os.Exit(2)
			}
			spec = loaded
		}
		if asJSON {
			if err := topology.WriteSpec(os.Stdout, spec); err != nil {
				fmt.Fprintln(os.Stderr, "topo:", err)
				os.Exit(1)
			}
			return
		}
		detail(spec)
		return
	}
	presets := topology.Presets()
	names := make([]string, 0, len(presets))
	for name := range presets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		spec := presets[name]
		status := "ok"
		if err := spec.Validate(); err != nil {
			status = "INVALID: " + err.Error()
		}
		fmt.Printf("%-7s %2d cores, %d NUMA, NIC %v GB/s  [%s]\n",
			name, spec.Cores(), spec.NUMANodes(), spec.NIC.WireGBs, status)
	}
}

func detail(s *topology.NodeSpec) {
	fmt.Printf("preset %s\n", s.Name)
	fmt.Printf("  sockets           %d\n", s.Sockets)
	fmt.Printf("  NUMA per socket   %d\n", s.NUMAPerSocket)
	fmt.Printf("  cores per NUMA    %d  (total %d)\n", s.CoresPerNUMA, s.Cores())
	fmt.Printf("  hyperthreading    %v (not modelled)\n", s.Hyperthreading)
	fmt.Printf("  core frequency    %.2f–%.2f GHz (scalar all-core turbo %.2f)\n",
		s.Freq.CoreMin, s.Freq.CoreBase, s.Freq.Turbo[topology.Scalar].Limit(s.Cores()))
	fmt.Printf("  uncore frequency  %.2f–%.2f GHz\n", s.Freq.UncoreMin, s.Freq.UncoreMax)
	fmt.Printf("  memory ctrl       %v GB/s per NUMA node\n", s.Mem.CtrlGBs)
	fmt.Printf("  cross-socket bus  %v GB/s shared\n", s.Mem.LinkGBs)
	fmt.Printf("  intra-socket mesh %v GB/s per pair\n", s.Mem.MeshGBs)
	fmt.Printf("  per-core stream   %v GB/s\n", s.Mem.StreamPerCoreGBs)
	fmt.Printf("  mem latency       %v ns local / %v ns remote\n",
		s.Mem.LocalLatencyNs, s.Mem.RemoteLatencyNs)
	fmt.Printf("  NIC               NUMA %d, wire %v GB/s, %v ns, PCIe %v GB/s\n",
		s.NIC.NUMA, s.NIC.WireGBs, s.NIC.WireLatencyNs, s.NIC.PCIeGBs)
	fmt.Printf("  eager threshold   %d B\n", s.NIC.EagerMax)
	fmt.Printf("  runtime msg path  %.0f cycles\n", s.RuntimeCyclesPerMsg)
	fmt.Println("  core → NUMA map:")
	for numa := 0; numa < s.NUMANodes(); numa++ {
		first := numa * s.CoresPerNUMA
		last := s.LastCoreOfNUMA(numa)
		tag := ""
		if numa == s.NIC.NUMA {
			tag = "  [NIC]"
		}
		fmt.Printf("    NUMA %d: cores %d–%d (socket %d)%s\n",
			numa, first, last, s.SocketOfNUMA(numa), tag)
	}
	if err := s.Validate(); err != nil {
		fmt.Printf("  VALIDATION FAILED: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("  validation        ok")
}
