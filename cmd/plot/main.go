// Command plot renders an ASCII line chart from a CSV file produced by
// `interference -format csv` (or any CSV with a numeric x column and
// numeric y columns), so a figure's shape can be eyeballed in the
// terminal without leaving the repository.
//
// Usage:
//
//	interference -exp fig4 -format csv -o results/
//	plot -x cores -y latency_us_alone,latency_us_with_compute results/fig4-henri.csv
//	plot -x size_B -logx -y bandwidth_MBps results/fig1-henri.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/trace"
)

func main() {
	var (
		xcol   = flag.String("x", "", "name of the x column")
		ycols  = flag.String("y", "", "comma-separated y column names")
		logx   = flag.Bool("logx", false, "log-scale x axis")
		width  = flag.Int("w", 72, "plot width in characters")
		height = flag.Int("h", 18, "plot height in characters")
	)
	flag.Parse()
	if flag.NArg() != 1 || *xcol == "" || *ycols == "" {
		fmt.Fprintln(os.Stderr, "usage: plot -x <col> -y <col,col,...> [-logx] file.csv")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *xcol, strings.Split(*ycols, ","), *logx, *width, *height); err != nil {
		fmt.Fprintln(os.Stderr, "plot:", err)
		os.Exit(1)
	}
}

func run(path, xcol string, ycols []string, logx bool, width, height int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	// The harness writes `# title` lines between CSV blocks; strip them
	// and parse the first block containing the requested columns.
	var rows [][]string
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	r.Comment = '#'
	records, err := r.ReadAll()
	if err != nil {
		return err
	}
	var header []string
	for _, rec := range records {
		if header == nil {
			if contains(rec, xcol) {
				header = rec
			}
			continue
		}
		if len(rec) != len(header) {
			break // next block
		}
		rows = append(rows, rec)
	}
	if header == nil {
		return fmt.Errorf("no CSV block with column %q in %s", xcol, path)
	}
	idx := func(name string) (int, error) {
		for i, h := range header {
			if h == name {
				return i, nil
			}
		}
		return 0, fmt.Errorf("column %q not found (have %v)", name, header)
	}
	xi, err := idx(xcol)
	if err != nil {
		return err
	}
	var xs []float64
	ys := make([][]float64, len(ycols))
	yi := make([]int, len(ycols))
	for j, name := range ycols {
		if yi[j], err = idx(name); err != nil {
			return err
		}
	}
	for _, rec := range rows {
		x, err := strconv.ParseFloat(rec[xi], 64)
		if err != nil {
			continue // non-numeric row (e.g. labels)
		}
		ok := true
		vals := make([]float64, len(ycols))
		for j := range ycols {
			v, err := strconv.ParseFloat(rec[yi[j]], 64)
			if err != nil {
				ok = false
				break
			}
			vals[j] = v
		}
		if !ok {
			continue
		}
		xs = append(xs, x)
		for j, v := range vals {
			ys[j] = append(ys[j], v)
		}
	}
	if len(xs) == 0 {
		return fmt.Errorf("no numeric rows for x=%q", xcol)
	}
	ch := trace.NewChart(path, xs)
	ch.XLabel, ch.YLabel = xcol, strings.Join(ycols, ", ")
	ch.LogX = logx
	ch.Width, ch.Height = width, height
	for j, name := range ycols {
		ch.AddSeries(name, ys[j])
	}
	return ch.Render(os.Stdout)
}

func contains(rec []string, v string) bool {
	for _, c := range rec {
		if c == v {
			return true
		}
	}
	return false
}
