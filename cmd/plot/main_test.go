package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeCSV(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "series.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunParsesHarnessCSV(t *testing.T) {
	path := writeCSV(t, `# Fig X — demo
cores,latency_us,bandwidth
1,1.5,100
2,1.6,90
4,2.0,70
`)
	if err := run(path, "cores", []string{"latency_us"}, false, 40, 8); err != nil {
		t.Fatal(err)
	}
}

func TestRunSkipsNonNumericRows(t *testing.T) {
	path := writeCSV(t, `a,b
x,1
2,3
`)
	if err := run(path, "a", []string{"b"}, false, 40, 8); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	path := writeCSV(t, "a,b\n1,2\n")
	if err := run(path, "missing", []string{"b"}, false, 40, 8); err == nil {
		t.Fatal("missing x column accepted")
	}
	if err := run(path, "a", []string{"nope"}, false, 40, 8); err == nil {
		t.Fatal("missing y column accepted")
	}
	if err := run("/nonexistent.csv", "a", []string{"b"}, false, 40, 8); err == nil {
		t.Fatal("missing file accepted")
	}
	empty := writeCSV(t, "a,b\nx,y\n")
	if err := run(empty, "a", []string{"b"}, false, 40, 8); err == nil {
		t.Fatal("no numeric rows accepted")
	}
}

func TestRunStopsAtNextBlock(t *testing.T) {
	// The harness concatenates CSV blocks; parsing must stop at the
	// next block's (different-width) header.
	path := writeCSV(t, `cores,v
1,10
2,20
# next block
a,b,c
9,9,9
`)
	if err := run(path, "cores", []string{"v"}, true, 40, 8); err != nil {
		t.Fatal(err)
	}
}
