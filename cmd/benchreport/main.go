// Command benchreport turns `go test -bench` output plus a timed
// full-campaign run into BENCH_sim.json, the repo's committed
// performance trajectory.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./... > bench_output.txt
//	benchreport -in bench_output.txt -out BENCH_sim.json
//	benchreport -totext BENCH_sim.json      # re-emit Go benchmark text for benchstat
//
// The JSON records ns/op, B/op and allocs/op for every benchmark, the
// optimized-vs-reference solver ratios the acceptance bar tracks, and a
// full golden campaign matrix run in-process: cold cache-disabled walls
// at each -jobs worker count, plus a cold and a warm pass over a fresh
// content-addressed point cache (hit rate and points/sec). -totext
// converts a (current or historical) BENCH_sim.json back into the Go
// benchmark text format, so CI can diff trajectories with benchstat.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/replica"
	"repro/internal/runner"
	"repro/internal/server"
	"repro/internal/topology"
)

// Benchmark is one benchmark's measured costs.
type Benchmark struct {
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Campaign is the timed full-golden-campaign matrix: cold cache-disabled
// walls across worker counts, plus a cold+warm pass over a fresh point
// cache.
type Campaign struct {
	Cluster     string `json:"cluster"`
	Experiments int    `json:"experiments"`
	Runs        int    `json:"runs"`
	// WallSecondsByJobs is the cold, cache-disabled campaign wall keyed
	// by worker count ("1", "4", "8"): the parallel-scaling trajectory.
	WallSecondsByJobs map[string]float64 `json:"wall_seconds_by_jobs,omitempty"`
	// Cache is the content-addressed point-cache measurement.
	Cache *CacheRun `json:"cache,omitempty"`
	// Workers/WallSeconds are the schema-1 fields, kept so -totext can
	// re-emit historical reports for benchstat.
	Workers     int     `json:"workers,omitempty"`
	WallSeconds float64 `json:"wall_seconds,omitempty"`
}

// CacheRun times the same campaign against a fresh persistent point
// cache: once cold (populating it, deduplicating shared cells through
// the campaign memo) and once warm (replaying it).
type CacheRun struct {
	Workers int `json:"workers"`
	// Points is how many sweep points the campaign requests.
	Points int64 `json:"points"`
	// Cold run: hit rate counts memo dedup only (the cache starts empty).
	ColdWallSeconds  float64 `json:"cold_wall_seconds"`
	ColdHitRate      float64 `json:"cold_hit_rate"`
	ColdPointsPerSec float64 `json:"cold_points_per_sec"`
	// Warm run: every point replays from disk or memo.
	WarmWallSeconds  float64 `json:"warm_wall_seconds"`
	WarmHitRate      float64 `json:"warm_hit_rate"`
	WarmPointsPerSec float64 `json:"warm_points_per_sec"`
}

// ServerRun is the campaign-daemon measurement: a fleet of in-process
// clients submits the full registry as individual campaigns against a
// warm interfd (cold compute happens on a seeding daemon first, so the
// percentiles measure service overhead, not simulation), then hammers
// the remote cache protocol for a throughput figure.
type ServerRun struct {
	Clients   int `json:"clients"`
	Campaigns int `json:"campaigns"`
	Shards    int `json:"shards"`
	// P50Ms/P99Ms are the daemon-side campaign latency percentiles over
	// the warm storm (queue wait included).
	P50Ms float64 `json:"server_p50_ms"`
	P99Ms float64 `json:"server_p99_ms"`
	// Deduped counts campaigns served by joining an identical in-flight
	// one instead of executing.
	Deduped int64 `json:"deduped_campaigns"`
	// CacheOps/CacheOpsPerSec measure GET /cache/{sum} round trips
	// (sha256-verified) against the daemon.
	CacheOps       int64   `json:"cache_ops"`
	CacheOpsPerSec float64 `json:"cache_ops_per_sec"`
	// Schema-4 robustness figures. ShedRate and OverloadP99Ms come from
	// a storm offered at 2x the admission queue's capacity against a
	// deliberately small daemon: the fraction of submissions shed with
	// 503 + Retry-After, and the p99 of the campaigns that were served.
	ShedRate      float64 `json:"shed_rate"`
	OverloadP99Ms float64 `json:"p99_under_2x_overload_ms"`
	// FailoverCount is the failovers a two-replica client absorbed while
	// one replica was killed mid-measurement (every campaign still
	// completed). HedgeWinFraction is the share of hedged cache reads
	// where the second replica answered first.
	FailoverCount    int64   `json:"failover_count"`
	HedgeWinFraction float64 `json:"hedge_win_fraction"`
}

// FabricRun is the schema-5 switched-fabric measurement: the scale and
// per-step incremental solve cost of the 1k-host fat-tree benchmark
// (the CI fabric job ratchets solve_ns_per_op against the sub-second
// acceptance bar), plus the multi-job interference figure — the mean
// shared/solo slowdown of three striped jobs on the fat-tree k=4 under
// both routing policies, run in-process at the golden configuration.
type FabricRun struct {
	// SolvePreset/Nodes/Links describe the benchmarked fabric
	// (fattree-k16: 1024 hosts, 6144 directed links).
	SolvePreset string `json:"solve_preset"`
	Nodes       int    `json:"nodes"`
	Links       int    `json:"links"`
	// SolveNsPerOp is BenchmarkFabricSolve1k: one start+cancel churn
	// step (two incremental component re-solves) under 512 routed flows.
	SolveNsPerOp float64 `json:"solve_ns_per_op"`
	// SlowdownPreset/SlowdownJobs identify the interference cell;
	// the two ratios are the mean per-job shared/solo slowdowns.
	SlowdownPreset           string  `json:"slowdown_preset"`
	SlowdownJobs             int     `json:"slowdown_jobs"`
	MultiJobSlowdownMinimal  float64 `json:"multi_job_slowdown_minimal"`
	MultiJobSlowdownAdaptive float64 `json:"multi_job_slowdown_adaptive"`
}

// PointRun is the schema-6 per-point cost block the CI ratchet tracks:
// the steady-state cost of executing one sweep point (from
// BenchmarkExecutePoint, which runs the pingpong kernel through the
// pooled-environment path) and the end-to-end cold/warm campaign walls
// against a fresh pack-segment point cache.
type PointRun struct {
	NsPerPoint     float64 `json:"ns_per_point"`
	BytesPerPoint  float64 `json:"bytes_per_point"`
	AllocsPerPoint float64 `json:"allocs_per_point"`
	// ColdCampaignSeconds duplicates campaign.cache.cold_wall_seconds
	// (and warm likewise) under a stable ratchet-friendly name: CI
	// greps these two fields and allocs_per_point.
	ColdCampaignSeconds float64 `json:"cold_campaign_seconds"`
	WarmCampaignSeconds float64 `json:"warm_campaign_seconds"`
}

// Report is the BENCH_sim.json schema. Schema 2 replaced the single
// campaign wall with the per-worker-count matrix and the cache run;
// schema 3 added the campaign-daemon run (server percentiles and remote
// cache throughput); schema 4 added the robustness figures (shed rate
// and p99 under a 2x-capacity storm, failover count under a replica
// kill, hedged-read win fraction); schema 5 added the fabric block
// (1k-host fat-tree solve cost and the multi-job slowdown ratios);
// schema 6 added the point block (per-point execution cost and the
// cold/warm campaign walls, both CI-ratcheted). Older schemas stay
// readable: -totext passes legacy reports through with the missing
// figures simply absent.
type Report struct {
	Schema     int                  `json:"schema"`
	GoVersion  string               `json:"go_version"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
	// Derived holds the solver acceptance ratios: how much faster and
	// how much less allocation-hungry the incremental solver is than
	// the reference solver on the same workload.
	Derived  map[string]float64 `json:"derived"`
	Campaign *Campaign          `json:"campaign,omitempty"`
	Server   *ServerRun         `json:"server,omitempty"`
	Fabric   *FabricRun         `json:"fabric,omitempty"`
	Point    *PointRun          `json:"point,omitempty"`
}

// benchLine matches one `go test -bench` result line, with or without
// the -benchmem columns and the -N GOMAXPROCS suffix.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func main() {
	var (
		in         = flag.String("in", "bench_output.txt", "file with `go test -bench` output")
		out        = flag.String("out", "BENCH_sim.json", "report destination")
		campaign   = flag.Bool("campaign", true, "also run and time the full golden campaign in-process")
		withServer = flag.Bool("server", true, "also boot an in-process campaign daemon and measure service latency and cache-protocol throughput")
		withFabric = flag.Bool("fabric", true, "also record the fabric block: 1k-host solve cost and the in-process multi-job slowdown")
		clients    = flag.Int("clients", 8, "concurrent clients for the daemon measurement")
		cluster    = flag.String("cluster", "henri", "campaign cluster preset")
		jobsList   = flag.String("jobs", "1,4,8", "comma-separated worker counts for the cold cache-disabled walls")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "worker count for the cache cold/warm runs")
		toText     = flag.String("totext", "", "convert this BENCH_sim.json to Go benchmark text on stdout and exit")
	)
	flag.Parse()

	if *toText != "" {
		if err := emitText(*toText); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}

	benches, err := parseBench(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	rep := Report{
		Schema:     6,
		GoVersion:  runtime.Version(),
		Benchmarks: benches,
		Derived:    derive(benches),
	}
	if ep, ok := benches["BenchmarkExecutePoint"]; ok {
		rep.Point = &PointRun{
			NsPerPoint:     ep.NsPerOp,
			BytesPerPoint:  ep.BytesPerOp,
			AllocsPerPoint: ep.AllocsPerOp,
		}
	}
	if *campaign {
		counts, err := parseJobs(*jobsList)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		c, err := timeCampaign(*cluster, counts, *jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		rep.Campaign = c
		if rep.Point != nil && c.Cache != nil {
			rep.Point.ColdCampaignSeconds = c.Cache.ColdWallSeconds
			rep.Point.WarmCampaignSeconds = c.Cache.WarmWallSeconds
		}
	}
	if *withServer {
		sr, err := timeServer(*cluster, *clients)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		rep.Server = sr
	}
	if *withFabric {
		fr, err := timeFabric(*cluster, benches)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		rep.Fabric = fr
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Printf("benchreport: %d benchmarks -> %s\n", len(benches), *out)
	for _, k := range []string{"solve_speedup_vs_reference", "solve_allocs_saved_per_op",
		"churn_speedup_vs_reference", "churn_allocs_ratio"} {
		if v, ok := rep.Derived[k]; ok {
			fmt.Printf("  %s = %.2f\n", k, v)
		}
	}
	if c := rep.Campaign; c != nil {
		keys := make([]string, 0, len(c.WallSecondsByJobs))
		for k := range c.WallSecondsByJobs {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			a, _ := strconv.Atoi(keys[i])
			b, _ := strconv.Atoi(keys[j])
			return a < b
		})
		for _, k := range keys {
			fmt.Printf("  campaign: %d experiments on %s in %.2fs (j=%s, no cache)\n",
				c.Experiments, c.Cluster, c.WallSecondsByJobs[k], k)
		}
		if cr := c.Cache; cr != nil {
			fmt.Printf("  cache: cold %.2fs (%.0f pts/s, %.0f%% served), warm %.2fs (%.0f pts/s, %.0f%% served), %d points, j=%d\n",
				cr.ColdWallSeconds, cr.ColdPointsPerSec, 100*cr.ColdHitRate,
				cr.WarmWallSeconds, cr.WarmPointsPerSec, 100*cr.WarmHitRate,
				cr.Points, cr.Workers)
		}
	}
	if sr := rep.Server; sr != nil {
		fmt.Printf("  server: %d campaigns from %d clients, p50 %.2fms p99 %.2fms (%d deduped), cache protocol %.0f ops/s\n",
			sr.Campaigns, sr.Clients, sr.P50Ms, sr.P99Ms, sr.Deduped, sr.CacheOpsPerSec)
		fmt.Printf("  robustness: 2x-overload shed %.0f%% / p99 %.2fms, %d failover(s) under a replica kill, hedge wins %.0f%%\n",
			100*sr.ShedRate, sr.OverloadP99Ms, sr.FailoverCount, 100*sr.HedgeWinFraction)
	}
	if f := rep.Fabric; f != nil {
		fmt.Printf("  fabric: %s (%d hosts, %d links) solve %.0f ns/step; %s j=%d slowdown minimal %.2fx adaptive %.2fx\n",
			f.SolvePreset, f.Nodes, f.Links, f.SolveNsPerOp,
			f.SlowdownPreset, f.SlowdownJobs, f.MultiJobSlowdownMinimal, f.MultiJobSlowdownAdaptive)
	}
	if p := rep.Point; p != nil {
		fmt.Printf("  point: %.0f ns, %.0f B, %.0f allocs per executed point; campaign cold %.2fs warm %.2fs\n",
			p.NsPerPoint, p.BytesPerPoint, p.AllocsPerPoint,
			p.ColdCampaignSeconds, p.WarmCampaignSeconds)
	}
}

// timeFabric assembles the schema-5 fabric block: shape and solve cost
// of the benchmarked 1k-host fat-tree (the ns/op comes from the parsed
// BenchmarkFabricSolve1k line) plus the in-process multi-job slowdown
// of three striped jobs on the fat-tree k=4, the golden interference
// cell, under both routing policies.
func timeFabric(cluster string, benches map[string]Benchmark) (*FabricRun, error) {
	spec := topology.FabricPreset("fattree-k16")
	if spec == nil {
		return nil, fmt.Errorf("fabric: fattree-k16 preset missing")
	}
	fab, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("fabric: %w", err)
	}
	fr := &FabricRun{
		SolvePreset:    "fattree-k16",
		Nodes:          fab.NHosts,
		Links:          len(fab.Links),
		SolveNsPerOp:   benches["BenchmarkFabricSolve1k"].NsPerOp,
		SlowdownPreset: "fattree-k4",
		SlowdownJobs:   3,
	}
	env, err := core.Env(cluster, 1, 3)
	if err != nil {
		return nil, err
	}
	for _, cell := range bench.FabricInterference(env, fr.SlowdownPreset, []int{fr.SlowdownJobs}) {
		switch cell.Routing {
		case "minimal":
			fr.MultiJobSlowdownMinimal = cell.SlowdownMean
		case "adaptive":
			fr.MultiJobSlowdownAdaptive = cell.SlowdownMean
		}
	}
	return fr, nil
}

// parseJobs parses the -jobs list ("1,4,8") into worker counts.
func parseJobs(s string) ([]int, error) {
	var counts []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("-jobs: bad worker count %q", part)
		}
		counts = append(counts, n)
	}
	if len(counts) == 0 {
		return nil, fmt.Errorf("-jobs: empty list")
	}
	return counts, nil
}

// parseBench extracts every benchmark result line from a `go test
// -bench` output file. Duplicate names (e.g. the same benchmark from
// -count>1) keep the last occurrence.
func parseBench(path string) (map[string]Benchmark, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	benches := map[string]Benchmark{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		mm := benchLine.FindStringSubmatch(sc.Text())
		if mm == nil {
			continue
		}
		var b Benchmark
		b.Iters, _ = strconv.ParseInt(mm[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(mm[3], 64)
		if mm[4] != "" {
			b.BytesPerOp, _ = strconv.ParseFloat(mm[4], 64)
			b.AllocsPerOp, _ = strconv.ParseFloat(mm[5], 64)
		}
		benches[mm[1]] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(benches) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return benches, nil
}

// derive computes the optimized-vs-reference solver ratios tracked by
// the acceptance bar. Alloc comparisons come in two flavours: a plain
// ratio when the optimized side still allocates, and an absolute
// allocs-saved figure when it reaches zero (a ratio against zero is
// meaningless).
func derive(b map[string]Benchmark) map[string]float64 {
	d := map[string]float64{}
	pair := func(prefix, opt, ref string) {
		o, okO := b[opt]
		r, okR := b[ref]
		if !okO || !okR || o.NsPerOp == 0 {
			return
		}
		d[prefix+"_speedup_vs_reference"] = r.NsPerOp / o.NsPerOp
		if o.AllocsPerOp > 0 {
			d[prefix+"_allocs_ratio"] = r.AllocsPerOp / o.AllocsPerOp
		} else {
			d[prefix+"_allocs_saved_per_op"] = r.AllocsPerOp
		}
	}
	pair("solve", "BenchmarkSolve", "BenchmarkSolveReference")
	pair("churn", "BenchmarkFlowChurn", "BenchmarkFlowChurnReference")
	return d
}

// timeCampaign runs the full experiment registry in-process (the same
// configuration the goldens are recorded under: seed 1, 3 runs): once
// per worker count with the cache disabled, then cold+warm against a
// fresh point cache in a temp directory.
func timeCampaign(cluster string, jobsCounts []int, cacheJobs int) (*Campaign, error) {
	env, err := core.Env(cluster, 1, 3)
	if err != nil {
		return nil, err
	}
	todo := core.Experiments()
	c := &Campaign{
		Cluster:           cluster,
		Experiments:       len(todo),
		Runs:              3,
		WallSecondsByJobs: map[string]float64{},
	}
	for _, j := range jobsCounts {
		wall, err := runCampaign(env, todo, runner.Options{Workers: j})
		if err != nil {
			return nil, err
		}
		c.WallSecondsByJobs[strconv.Itoa(j)] = wall
	}

	dir, err := os.MkdirTemp("", "benchreport-cache-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	cache, err := runner.OpenPointCache(dir)
	if err != nil {
		return nil, err
	}
	var cold, warm runner.CacheStats
	coldWall, err := runCampaign(env, todo, runner.Options{Workers: cacheJobs, Cache: cache, CacheStats: &cold})
	if err != nil {
		return nil, err
	}
	warmWall, err := runCampaign(env, todo, runner.Options{Workers: cacheJobs, Cache: cache, CacheStats: &warm})
	if err != nil {
		return nil, err
	}
	c.Cache = &CacheRun{
		Workers:          cacheJobs,
		Points:           warm.Points(),
		ColdWallSeconds:  coldWall,
		ColdHitRate:      cold.HitRate(),
		ColdPointsPerSec: perSec(cold.Points(), coldWall),
		WarmWallSeconds:  warmWall,
		WarmHitRate:      warm.HitRate(),
		WarmPointsPerSec: perSec(warm.Points(), warmWall),
	}
	return c, nil
}

// runCampaign executes the registry once and returns the wall seconds.
func runCampaign(env bench.Env, todo []core.Experiment, opts runner.Options) (float64, error) {
	start := time.Now()
	for res := range runner.Run(env, todo, opts) {
		if res.Err != nil {
			return 0, fmt.Errorf("campaign: %s: %w", res.Exp.ID, res.Err)
		}
	}
	return time.Since(start).Seconds(), nil
}

func perSec(points int64, wall float64) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(points) / wall
}

// timeServer measures the campaign daemon. Two daemons share one cache
// directory: the first absorbs the cold compute (seeding every point),
// the second starts with a warm disk cache and a fresh latency window,
// so its percentiles measure the service itself — admission, dedup,
// cache replay, rendering — rather than first-time simulation. The
// storm submits every registry experiment as its own campaign from
// `clients` concurrent clients, then the same clients hammer the
// GET /cache/{sum} protocol over every stored entry for the throughput
// figure.
func timeServer(cluster string, clients int) (*ServerRun, error) {
	if clients < 1 {
		clients = 1
	}
	dir, err := os.MkdirTemp("", "benchreport-server-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	specs := make([]server.CampaignSpec, 0, len(core.Experiments()))
	for _, e := range core.Experiments() {
		specs = append(specs, server.CampaignSpec{
			Cluster:     cluster,
			Experiments: []string{e.ID},
			Seed:        1,
			Runs:        3,
		})
	}
	total := clients * len(specs)
	cfg := server.Config{
		CacheDir:    dir,
		Shards:      runtime.GOMAXPROCS(0),
		QueueDepth:  total + 8,
		MaxInflight: 4,
	}

	// Seeding pass: compute every point once.
	seedSrv, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	seedHTTP := httptest.NewServer(seedSrv.Handler())
	for _, spec := range specs {
		if err := submitSpec(seedHTTP.URL, spec); err != nil {
			seedHTTP.Close()
			seedSrv.Close()
			return nil, err
		}
	}
	seedHTTP.Close()
	if err := seedSrv.Close(); err != nil {
		return nil, err
	}

	// Measured pass: warm daemon, concurrent clients.
	srv, err := server.New(cfg)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		go func() {
			for k := range specs {
				if err := submitSpec(ts.URL, specs[(c+k)%len(specs)]); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	m := srv.Metrics()

	// Cache-protocol throughput over every stored content address.
	sums, err := cacheSums(dir)
	if err != nil {
		return nil, err
	}
	if len(sums) == 0 {
		return nil, fmt.Errorf("server measurement stored no cache entries")
	}
	const opsPerClient = 400
	start := time.Now()
	for c := 0; c < clients; c++ {
		c := c
		go func() {
			client := &http.Client{}
			for k := 0; k < opsPerClient; k++ {
				resp, err := client.Get(ts.URL + "/cache/" + sums[(c+k)%len(sums)])
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("cache GET %s: %s", sums[(c+k)%len(sums)], resp.Status)
					return
				}
			}
			errs <- nil
		}()
	}
	for c := 0; c < clients; c++ {
		if err := <-errs; err != nil {
			return nil, err
		}
	}
	opsWall := time.Since(start).Seconds()
	ops := int64(clients * opsPerClient)

	sr := &ServerRun{
		Clients:        clients,
		Campaigns:      int(m.Campaigns.Accepted + m.Campaigns.Deduped),
		Shards:         srv.Shards(),
		P50Ms:          m.Latency.P50Ms,
		P99Ms:          m.Latency.P99Ms,
		Deduped:        m.Campaigns.Deduped,
		CacheOps:       ops,
		CacheOpsPerSec: perSec(ops, opsWall),
	}
	if err := measureOverload(dir, specs, clients, sr); err != nil {
		return nil, err
	}
	if err := measureFailoverHedge(dir, specs, sums, sr); err != nil {
		return nil, err
	}
	return sr, nil
}

// measureOverload offers a burst at 2x the admission queue's capacity
// to a deliberately small daemon over the warm cache directory. The
// campaign singleflight collapses duplicate submissions, so capacity
// is measured in *distinct* campaigns: the queue is sized at half the
// distinct spec count, making the burst a genuine 2x overload. Shed
// submissions (503) are part of the design — the figures are how many
// were shed and how fast the served ones finished.
func measureOverload(dir string, specs []server.CampaignSpec, clients int, sr *ServerRun) error {
	offered := clients * len(specs)
	queue := len(specs) / 2
	if queue < 4 {
		queue = 4
	}
	srv, err := server.New(server.Config{
		CacheDir:    dir,
		Shards:      runtime.GOMAXPROCS(0),
		QueueDepth:  queue,
		MaxInflight: 2,
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var shed atomic.Int64
	errs := make(chan error, offered)
	for i := 0; i < offered; i++ {
		i := i
		go func() {
			dropped, err := submitSpecOverload(ts.URL, specs[i%len(specs)])
			if dropped {
				shed.Add(1)
			}
			errs <- err
		}()
	}
	for i := 0; i < offered; i++ {
		if err := <-errs; err != nil {
			return err
		}
	}
	m := srv.Metrics()
	sr.ShedRate = float64(shed.Load()) / float64(offered)
	sr.OverloadP99Ms = m.Latency.P99Ms
	return nil
}

// submitSpecOverload posts one campaign, treating a 503 (shed with
// Retry-After by the overload controller) as a counted outcome rather
// than a failure.
func submitSpecOverload(base string, spec server.CampaignSpec) (shed bool, err error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return false, err
	}
	resp, err := http.Post(base+"/campaign", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return false, nil
	case http.StatusServiceUnavailable:
		return true, nil
	default:
		return false, fmt.Errorf("overload campaign %v: %s: %s", spec.Experiments, resp.Status, payload)
	}
}

// measureFailoverHedge runs the replica-set client against two daemons
// over the warm cache directory: one replica is killed after the first
// submission (counting the failovers the client absorbs while every
// campaign still completes), then both serve a hedged-read pass over
// the stored points for the hedge-win fraction.
func measureFailoverHedge(dir string, specs []server.CampaignSpec, sums []string, sr *ServerRun) error {
	cfg := server.Config{
		CacheDir:    dir,
		Shards:      runtime.GOMAXPROCS(0),
		QueueDepth:  2 * len(specs),
		MaxInflight: 2,
	}
	boot := func() (*server.Server, *httptest.Server, error) {
		s, err := server.New(cfg)
		if err != nil {
			return nil, nil, err
		}
		return s, httptest.NewServer(s.Handler()), nil
	}
	a, aTS, err := boot()
	if err != nil {
		return err
	}
	defer a.Close()
	defer aTS.Close()
	b, bTS, err := boot()
	if err != nil {
		return err
	}
	defer b.Close()
	defer bTS.Close()

	drill := chaos.NewReplicaDrill()
	victim := strings.TrimPrefix(aTS.URL, "http://")
	set := replica.NewSet([]string{aTS.URL, bTS.URL}, replica.Options{Transport: drill, Seed: 1})
	for i, spec := range specs {
		if _, err := set.Submit(spec, 0, ""); err != nil {
			return fmt.Errorf("failover measurement: %w", err)
		}
		if i == 0 {
			drill.Kill(victim)
		}
	}
	sr.FailoverCount = set.Failovers()

	// Hedged reads over both replicas, revived, with a hedge delay short
	// enough that reads actually race — the win fraction is how often
	// the second replica's answer arrived first.
	drill.Revive(victim)
	hedged := replica.NewCache(replica.NewSet([]string{aTS.URL, bTS.URL},
		replica.Options{Transport: drill, Seed: 1}), &runner.CacheStats{})
	hedged.SetHedgeDelay(200 * time.Microsecond)
	reads := sums
	if len(reads) > 256 {
		reads = reads[:256]
	}
	for _, sum := range reads {
		if _, _, _, ioErr := hedged.Load(sum); ioErr {
			return fmt.Errorf("hedged read of %s failed", sum)
		}
	}
	if h := hedged.Hedges(); h > 0 {
		sr.HedgeWinFraction = float64(hedged.HedgeWins()) / float64(h)
	}
	return nil
}

// submitSpec posts one campaign and demands a clean 200 with no
// experiment errors.
func submitSpec(base string, spec server.CampaignSpec) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/campaign", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("campaign %v: %s: %s", spec.Experiments, resp.Status, payload)
	}
	var cr server.CampaignResponse
	if err := json.Unmarshal(payload, &cr); err != nil {
		return err
	}
	if cr.Errors != 0 {
		return fmt.Errorf("campaign %v: %d experiment errors", spec.Experiments, cr.Errors)
	}
	return nil
}

// cacheSums harvests every stored content address from a point-cache
// directory — pack segments and legacy loose files alike — sorted so
// the read storms hit addresses in a deterministic order.
func cacheSums(dir string) ([]string, error) {
	cache, err := runner.OpenPointCache(dir)
	if err != nil {
		return nil, err
	}
	var sums []string
	err = cache.Entries(func(sum string, _ []byte) error {
		sums = append(sums, sum)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(sums)
	return sums, nil
}

// emitText converts a BENCH_sim.json back into Go benchmark text
// format (sorted by name, fixed GOMAXPROCS suffix elided) so two
// trajectories can be compared with benchstat.
func emitText(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	names := make([]string, 0, len(rep.Benchmarks))
	for name := range rep.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := rep.Benchmarks[name]
		fmt.Printf("%s %d %.4g ns/op %.4g B/op %.4g allocs/op\n",
			name, b.Iters, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}
	if c := rep.Campaign; c != nil {
		// Encode campaign wall times as synthetic benchmarks so they ride
		// along in the benchstat comparison.
		if c.WallSeconds > 0 { // schema-1 reports
			fmt.Printf("BenchmarkCampaign%s 1 %.6g ns/op\n", c.Cluster, c.WallSeconds*1e9)
		}
		jkeys := make([]string, 0, len(c.WallSecondsByJobs))
		for k := range c.WallSecondsByJobs {
			jkeys = append(jkeys, k)
		}
		sort.Slice(jkeys, func(i, j int) bool {
			a, _ := strconv.Atoi(jkeys[i])
			b, _ := strconv.Atoi(jkeys[j])
			return a < b
		})
		for _, k := range jkeys {
			fmt.Printf("BenchmarkCampaign%sJ%s 1 %.6g ns/op\n", c.Cluster, k, c.WallSecondsByJobs[k]*1e9)
		}
		if cr := c.Cache; cr != nil {
			fmt.Printf("BenchmarkCampaign%sColdCache 1 %.6g ns/op\n", c.Cluster, cr.ColdWallSeconds*1e9)
			fmt.Printf("BenchmarkCampaign%sWarmCache 1 %.6g ns/op\n", c.Cluster, cr.WarmWallSeconds*1e9)
		}
	}
	if sr := rep.Server; sr != nil {
		fmt.Printf("BenchmarkServerCampaignP50 1 %.6g ns/op\n", sr.P50Ms*1e6)
		fmt.Printf("BenchmarkServerCampaignP99 1 %.6g ns/op\n", sr.P99Ms*1e6)
		if sr.CacheOpsPerSec > 0 {
			fmt.Printf("BenchmarkServerCacheGet %d %.6g ns/op\n", sr.CacheOps, 1e9/sr.CacheOpsPerSec)
		}
		// Schema-4 figure; pre-4 reports simply lack it (legacy
		// passthrough: nothing is printed, benchstat sees no row).
		if sr.OverloadP99Ms > 0 {
			fmt.Printf("BenchmarkServerOverloadP99 1 %.6g ns/op\n", sr.OverloadP99Ms*1e6)
		}
	}
	if f := rep.Fabric; f != nil {
		// Schema-5 figures (BenchmarkFabricSolve1k itself already rides in
		// the benchmarks map). The slowdown rows carry dimensionless
		// ratios in the ns/op column so benchstat tracks them too; pre-5
		// reports simply lack the block and print nothing.
		if f.MultiJobSlowdownMinimal > 0 {
			fmt.Printf("BenchmarkFabricSlowdownMinimalJ%d 1 %.6g ns/op\n", f.SlowdownJobs, f.MultiJobSlowdownMinimal)
		}
		if f.MultiJobSlowdownAdaptive > 0 {
			fmt.Printf("BenchmarkFabricSlowdownAdaptiveJ%d 1 %.6g ns/op\n", f.SlowdownJobs, f.MultiJobSlowdownAdaptive)
		}
	}
	return nil
}
