// Command benchreport turns `go test -bench` output plus a timed
// full-campaign run into BENCH_sim.json, the repo's committed
// performance trajectory.
//
// Usage:
//
//	go test -bench=. -benchmem -run='^$' ./... > bench_output.txt
//	benchreport -in bench_output.txt -out BENCH_sim.json
//	benchreport -totext BENCH_sim.json      # re-emit Go benchmark text for benchstat
//
// The JSON records ns/op, B/op and allocs/op for every benchmark, the
// optimized-vs-reference solver ratios the acceptance bar tracks, and
// the wall time of a full golden campaign run in-process. -totext
// converts a (current or historical) BENCH_sim.json back into the Go
// benchmark text format, so CI can diff trajectories with benchstat.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/runner"
)

// Benchmark is one benchmark's measured costs.
type Benchmark struct {
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// Campaign is the timed full-golden-campaign run.
type Campaign struct {
	Cluster     string  `json:"cluster"`
	Experiments int     `json:"experiments"`
	Runs        int     `json:"runs"`
	Workers     int     `json:"workers"`
	WallSeconds float64 `json:"wall_seconds"`
}

// Report is the BENCH_sim.json schema.
type Report struct {
	Schema     int                  `json:"schema"`
	GoVersion  string               `json:"go_version"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
	// Derived holds the solver acceptance ratios: how much faster and
	// how much less allocation-hungry the incremental solver is than
	// the reference solver on the same workload.
	Derived  map[string]float64 `json:"derived"`
	Campaign *Campaign          `json:"campaign,omitempty"`
}

// benchLine matches one `go test -bench` result line, with or without
// the -benchmem columns and the -N GOMAXPROCS suffix.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op\s+([\d.]+) allocs/op)?`)

func main() {
	var (
		in       = flag.String("in", "bench_output.txt", "file with `go test -bench` output")
		out      = flag.String("out", "BENCH_sim.json", "report destination")
		campaign = flag.Bool("campaign", true, "also run and time the full golden campaign in-process")
		cluster  = flag.String("cluster", "henri", "campaign cluster preset")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "campaign worker count")
		toText   = flag.String("totext", "", "convert this BENCH_sim.json to Go benchmark text on stdout and exit")
	)
	flag.Parse()

	if *toText != "" {
		if err := emitText(*toText); err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		return
	}

	benches, err := parseBench(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	rep := Report{
		Schema:     1,
		GoVersion:  runtime.Version(),
		Benchmarks: benches,
		Derived:    derive(benches),
	}
	if *campaign {
		c, err := timeCampaign(*cluster, *jobs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchreport:", err)
			os.Exit(1)
		}
		rep.Campaign = c
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
	fmt.Printf("benchreport: %d benchmarks -> %s\n", len(benches), *out)
	for _, k := range []string{"solve_speedup_vs_reference", "solve_allocs_saved_per_op",
		"churn_speedup_vs_reference", "churn_allocs_ratio"} {
		if v, ok := rep.Derived[k]; ok {
			fmt.Printf("  %s = %.2f\n", k, v)
		}
	}
	if rep.Campaign != nil {
		fmt.Printf("  campaign: %d experiments on %s in %.2fs (j=%d)\n",
			rep.Campaign.Experiments, rep.Campaign.Cluster, rep.Campaign.WallSeconds, rep.Campaign.Workers)
	}
}

// parseBench extracts every benchmark result line from a `go test
// -bench` output file. Duplicate names (e.g. the same benchmark from
// -count>1) keep the last occurrence.
func parseBench(path string) (map[string]Benchmark, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	benches := map[string]Benchmark{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		mm := benchLine.FindStringSubmatch(sc.Text())
		if mm == nil {
			continue
		}
		var b Benchmark
		b.Iters, _ = strconv.ParseInt(mm[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(mm[3], 64)
		if mm[4] != "" {
			b.BytesPerOp, _ = strconv.ParseFloat(mm[4], 64)
			b.AllocsPerOp, _ = strconv.ParseFloat(mm[5], 64)
		}
		benches[mm[1]] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(benches) == 0 {
		return nil, fmt.Errorf("%s: no benchmark lines found", path)
	}
	return benches, nil
}

// derive computes the optimized-vs-reference solver ratios tracked by
// the acceptance bar. Alloc comparisons come in two flavours: a plain
// ratio when the optimized side still allocates, and an absolute
// allocs-saved figure when it reaches zero (a ratio against zero is
// meaningless).
func derive(b map[string]Benchmark) map[string]float64 {
	d := map[string]float64{}
	pair := func(prefix, opt, ref string) {
		o, okO := b[opt]
		r, okR := b[ref]
		if !okO || !okR || o.NsPerOp == 0 {
			return
		}
		d[prefix+"_speedup_vs_reference"] = r.NsPerOp / o.NsPerOp
		if o.AllocsPerOp > 0 {
			d[prefix+"_allocs_ratio"] = r.AllocsPerOp / o.AllocsPerOp
		} else {
			d[prefix+"_allocs_saved_per_op"] = r.AllocsPerOp
		}
	}
	pair("solve", "BenchmarkSolve", "BenchmarkSolveReference")
	pair("churn", "BenchmarkFlowChurn", "BenchmarkFlowChurnReference")
	return d
}

// timeCampaign runs the full experiment registry in-process (the same
// configuration the goldens are recorded under: seed 1, 3 runs) and
// reports its wall time.
func timeCampaign(cluster string, jobs int) (*Campaign, error) {
	env, err := core.Env(cluster, 1, 3)
	if err != nil {
		return nil, err
	}
	todo := core.Experiments()
	start := time.Now()
	for res := range runner.Run(env, todo, runner.Options{Workers: jobs}) {
		if res.Err != nil {
			return nil, fmt.Errorf("campaign: %s: %w", res.Exp.ID, res.Err)
		}
	}
	return &Campaign{
		Cluster:     cluster,
		Experiments: len(todo),
		Runs:        3,
		Workers:     jobs,
		WallSeconds: time.Since(start).Seconds(),
	}, nil
}

// emitText converts a BENCH_sim.json back into Go benchmark text
// format (sorted by name, fixed GOMAXPROCS suffix elided) so two
// trajectories can be compared with benchstat.
func emitText(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep Report
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	names := make([]string, 0, len(rep.Benchmarks))
	for name := range rep.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		b := rep.Benchmarks[name]
		fmt.Printf("%s %d %.4g ns/op %.4g B/op %.4g allocs/op\n",
			name, b.Iters, b.NsPerOp, b.BytesPerOp, b.AllocsPerOp)
	}
	if rep.Campaign != nil {
		// Encode campaign wall time as a synthetic benchmark so it rides
		// along in the benchstat comparison.
		fmt.Printf("BenchmarkCampaign%s 1 %.6g ns/op\n",
			rep.Campaign.Cluster, rep.Campaign.WallSeconds*1e9)
	}
	return nil
}
