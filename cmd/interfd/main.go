// Command interfd is the campaign daemon: a long-lived HTTP/JSON
// service that executes simulation campaigns for many concurrent
// clients. Clients submit campaign specs with `interference -remote`
// (or raw POSTs to /campaign); a bounded admission queue schedules them
// Slurm-style, sweep points fan out across a server-wide worker-shard
// set, and results are served from a content-addressed cache that
// deduplicates work across clients — identical points are computed once,
// ever, no matter how many clients ask.
//
// Usage:
//
//	interfd                              # listen on :7077, state under interfd-data/
//	interfd -addr :9000 -shards 8
//	interfd -data /var/lib/interfd -queue 128 -inflight 4
//
// The daemon is crash-safe: completed experiments are journaled the
// moment they finish, accepted campaigns are logged before they run,
// and on restart unfinished campaigns re-execute (cached points replay)
// so a re-submitted spec returns byte-identical output. SIGINT/SIGTERM
// drain gracefully within -grace, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("interfd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", ":7077", "listen address")
		data     = fs.String("data", "interfd-data", "data directory (point cache + durability state); \"\" disables persistence")
		shards   = fs.Int("shards", 0, "worker shards executing sweep points; 0 = GOMAXPROCS")
		queue    = fs.Int("queue", 64, "admission queue depth: campaigns waiting beyond this are rejected with 503")
		inflight = fs.Int("inflight", 2, "campaigns executing concurrently (their points share the shard set)")
		maxRuns  = fs.Int("max-runs", 64, "largest per-configuration repetition count a client may request")
		grace    = fs.Duration("grace", 30*time.Second, "shutdown grace period for in-flight requests on SIGINT/SIGTERM")
		quiet    = fs.Bool("q", false, "suppress per-campaign log lines")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *shards < 0 || *queue < 1 || *inflight < 1 || *maxRuns < 1 || *grace < 0 {
		fmt.Fprintln(stderr, "interfd: -shards must be >= 0 and -queue/-inflight/-max-runs >= 1")
		return 2
	}

	cfg := server.Config{
		Shards:      *shards,
		QueueDepth:  *queue,
		MaxInflight: *inflight,
		MaxRuns:     *maxRuns,
	}
	if !*quiet {
		cfg.Log = stderr
	}
	if *data != "" {
		cfg.CacheDir = filepath.Join(*data, "cache")
		cfg.StateDir = filepath.Join(*data, "state")
	}
	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "interfd:", err)
		return 1
	}
	defer s.Close()
	if n := s.Recovering(); n > 0 {
		fmt.Fprintf(stderr, "interfd: resuming %d unfinished campaign(s) from %s\n", n, *data)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(stderr, "interfd: serving on %s (%d shards, queue %d, %d in-flight)\n",
		*addr, s.Shards(), *queue, *inflight)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "interfd:", err)
		return 1
	case sig := <-sigc:
		fmt.Fprintf(stderr, "interfd: %v: draining (grace %v)\n", sig, *grace)
		ctx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(stderr, "interfd:", err)
		}
		// Close flushes nothing (appends are line-atomic) but stops the
		// journal: campaigns that outlive the grace period are re-run on
		// the next start, exactly like a hard kill.
		if err := s.Close(); err != nil {
			fmt.Fprintln(stderr, "interfd:", err)
		}
		return 0
	}
}
