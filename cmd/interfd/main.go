// Command interfd is the campaign daemon: a long-lived HTTP/JSON
// service that executes simulation campaigns for many concurrent
// clients. Clients submit campaign specs with `interference -remote`
// (or raw POSTs to /campaign); a bounded admission queue schedules them
// Slurm-style, sweep points fan out across a server-wide worker-shard
// set, and results are served from a content-addressed cache that
// deduplicates work across clients — identical points are computed once,
// ever, no matter how many clients ask.
//
// Usage:
//
//	interfd                              # listen on :7077, state under interfd-data/
//	interfd -addr :9000 -shards 8
//	interfd -data /var/lib/interfd -queue 128 -inflight 4
//	interfd -cache-dir /mnt/shared/points        # replicas dedupe via shared storage
//	interfd -chaos "enospc:p=0.05" -chaos-seed 7   # fault drill
//
// The daemon is crash-safe: completed experiments are journaled the
// moment they finish, accepted campaigns are logged before they run,
// and on restart unfinished campaigns re-execute (cached points replay)
// so a re-submitted spec returns byte-identical output.
//
// SIGINT/SIGTERM trigger a graceful drain: admission closes (new
// campaigns get 503, /healthz and /readyz report draining), in-flight
// campaigns run to completion within -drain-timeout, durability logs
// are flushed, and the process exits 0. Campaigns that outlive the
// drain window are simply re-run on the next start, exactly like a
// hard kill.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/server"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("interfd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", ":7077", "listen address")
		data      = fs.String("data", "interfd-data", "data directory (point cache + durability state); \"\" disables persistence")
		cacheDir  = fs.String("cache-dir", "", "point-cache directory override (default <data>/cache); point replicas at shared storage so computed points are deduplicated fleet-wide")
		shards    = fs.Int("shards", 0, "worker shards executing sweep points; 0 = GOMAXPROCS")
		queue     = fs.Int("queue", 64, "admission queue depth: campaigns waiting beyond this are rejected with 503")
		inflight  = fs.Int("inflight", 2, "campaigns executing concurrently (their points share the shard set)")
		maxRuns   = fs.Int("max-runs", 64, "largest per-configuration repetition count a client may request")
		drain     = fs.Duration("drain-timeout", 30*time.Second, "graceful-drain window on SIGINT/SIGTERM: in-flight campaigns get this long to finish")
		campTO    = fs.Duration("campaign-timeout", 0, "per-campaign execution deadline; expired campaigns fail their remaining experiments (0 disables)")
		chaosSpec = fs.String("chaos", "", "chaos schedule injected into the daemon's filesystem, e.g. \"enospc:p=0.05;torn:p=0.01\" (fault drills; see internal/chaos)")
		chaosSeed = fs.Int64("chaos-seed", 1, "seed for the deterministic chaos schedule (-chaos)")
		quiet     = fs.Bool("q", false, "suppress per-campaign log lines")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *shards < 0 || *queue < 1 || *inflight < 1 || *maxRuns < 1 || *drain < 0 || *campTO < 0 {
		fmt.Fprintln(stderr, "interfd: -shards must be >= 0, -queue/-inflight/-max-runs >= 1 and timeouts non-negative")
		return 2
	}

	cfg := server.Config{
		Shards:          *shards,
		QueueDepth:      *queue,
		MaxInflight:     *inflight,
		MaxRuns:         *maxRuns,
		CampaignTimeout: *campTO,
	}
	if !*quiet {
		cfg.Log = stderr
	}
	if *data != "" {
		cfg.CacheDir = filepath.Join(*data, "cache")
		cfg.StateDir = filepath.Join(*data, "state")
	}
	if *cacheDir != "" {
		cfg.CacheDir = *cacheDir
	}
	if *chaosSpec != "" {
		sched, err := chaos.ParseSpec(*chaosSpec)
		if err != nil {
			fmt.Fprintln(stderr, "interfd:", err)
			return 2
		}
		cfg.FS = chaos.Flaky(chaos.OS(), chaos.NewInjector(*chaosSeed, sched))
		fmt.Fprintf(stderr, "interfd: CHAOS ACTIVE: injecting %q with seed %d into the filesystem\n",
			sched, *chaosSeed)
	}
	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintln(stderr, "interfd:", err)
		return 1
	}
	defer s.Close()
	if n := s.Recovering(); n > 0 {
		fmt.Fprintf(stderr, "interfd: resuming %d unfinished campaign(s) from %s\n", n, *data)
	}

	// Subscribe to signals before the listener opens so a SIGTERM racing
	// startup still drains instead of killing the process mid-boot.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "interfd:", err)
		return 1
	}
	httpSrv := &http.Server{Handler: s.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	fmt.Fprintf(stderr, "interfd: serving on %s (%d shards, queue %d, %d in-flight)\n",
		ln.Addr(), s.Shards(), *queue, *inflight)

	select {
	case err := <-errc:
		fmt.Fprintln(stderr, "interfd:", err)
		return 1
	case sig := <-sigc:
		fmt.Fprintf(stderr, "interfd: %v: draining (timeout %v)\n", sig, *drain)
		// Order matters: stop admission first so /campaign 503s and the
		// queue can only shrink, then unwind the HTTP server (in-flight
		// request handlers are the campaigns we are waiting for), then
		// wait for the queue itself and flush the durability logs.
		s.BeginDrain()
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			fmt.Fprintln(stderr, "interfd:", err)
		}
		if err := s.Drain(ctx); err != nil {
			fmt.Fprintf(stderr, "interfd: %v; unfinished campaigns resume on next start\n", err)
		}
		if err := s.Close(); err != nil {
			fmt.Fprintln(stderr, "interfd:", err)
		}
		fmt.Fprintln(stderr, "interfd: drained, exiting")
		return 0
	}
}
