package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/server"
)

// syncBuffer is a threadsafe stderr sink: run() writes from its own
// goroutines while the test polls the log for the bound address.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// startDaemon boots run() on an ephemeral port and returns the base URL
// once /healthz answers, plus the exit-code channel and the log.
func startDaemon(t *testing.T, args []string) (string, chan int, *syncBuffer) {
	t.Helper()
	log := &syncBuffer{}
	exit := make(chan int, 1)
	go func() { exit <- run(append([]string{"-addr", "127.0.0.1:0"}, args...), log) }()

	var base string
	deadline := time.Now().Add(10 * time.Second)
	for base == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; log:\n%s", log.String())
		}
		out := log.String()
		if i := strings.Index(out, "serving on "); i >= 0 {
			rest := out[i+len("serving on "):]
			if j := strings.IndexByte(rest, ' '); j >= 0 {
				base = "http://" + rest[:j]
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return base, exit, log
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became healthy; log:\n%s", base, log.String())
	return "", nil, nil
}

// TestDaemonGracefulShutdown: SIGTERM drains the daemon — the served
// campaign completes, durability state is flushed, the process exits 0,
// and a fresh daemon on the same data directory has nothing to recover.
func TestDaemonGracefulShutdown(t *testing.T) {
	dir := t.TempDir()
	base, exit, log := startDaemon(t, []string{"-data", dir, "-shards", "2", "-drain-timeout", "30s"})

	spec, _ := json.Marshal(server.CampaignSpec{Experiments: []string{"ext-sched"}, Seed: 1, Runs: 1})
	resp, err := http.Post(base+"/campaign", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("campaign: %d: %s", resp.StatusCode, body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited %d on SIGTERM; log:\n%s", code, log.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit within the drain window; log:\n%s", log.String())
	}
	if out := log.String(); !strings.Contains(out, "drained, exiting") {
		t.Fatalf("drain never completed:\n%s", out)
	}

	// A clean drain leaves no unfinished campaigns behind.
	s, err := server.New(server.Config{
		CacheDir: filepath.Join(dir, "cache"),
		StateDir: filepath.Join(dir, "state"),
		Shards:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if n := s.Recovering(); n != 0 {
		t.Fatalf("drained daemon left %d campaign(s) to recover", n)
	}
}

// TestDaemonChaosDrill: the -chaos flag arms the filesystem injector
// (announced with its seed for reproduction) and the daemon still
// serves correct results while its journal appends fail.
func TestDaemonChaosDrill(t *testing.T) {
	dir := t.TempDir()
	base, exit, log := startDaemon(t, []string{
		"-data", dir, "-shards", "2",
		"-chaos", "eio-write:match=journal.jsonl", "-chaos-seed", "7",
	})
	if out := log.String(); !strings.Contains(out, "CHAOS ACTIVE") || !strings.Contains(out, "seed 7") {
		t.Fatalf("chaos drill not announced:\n%s", out)
	}
	spec, _ := json.Marshal(server.CampaignSpec{Experiments: []string{"ext-sched"}, Seed: 1, Runs: 1})
	resp, err := http.Post(base+"/campaign", "application/json", bytes.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("campaign under chaos: %d: %s", resp.StatusCode, body)
	}
	var cr server.CampaignResponse
	if err := json.Unmarshal(body, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Errors != 0 {
		t.Fatalf("journal chaos failed the campaign: %s", body)
	}
	if !cr.Results[0].DurabilityLost {
		t.Fatal("journal chaos did not surface as DurabilityLost")
	}
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited %d; log:\n%s", code, log.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon did not exit; log:\n%s", log.String())
	}
}

// TestDaemonFlagValidation: malformed flags are usage errors, not
// half-started daemons.
func TestDaemonFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-drain-timeout", "-1s"},
		{"-campaign-timeout", "-1s"},
		{"-queue", "0"},
		{"-chaos", "bogus-kind:p=0.5"},
		{"-chaos", "torn:p=nope"},
	}
	for _, args := range cases {
		var log syncBuffer
		if code := run(args, &log); code != 2 {
			t.Errorf("run(%v) = %d, want 2; log:\n%s", args, code, log.String())
		}
	}
}
