package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/replica"
	"repro/internal/server"
)

// daemonProc is a real interfd process (not an in-process run()):
// the drill needs an actual SIGKILL, which only a separate pid can
// absorb.
type daemonProc struct {
	cmd *exec.Cmd
	url string
	log *syncBuffer
}

// kill SIGKILLs the daemon — no drain, no flush, the exact failure a
// crashed replica presents to its clients. Safe to call from a client
// goroutine (Errorf, never FailNow).
func (p *daemonProc) kill(t *testing.T) {
	if err := p.cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Errorf("SIGKILL %d: %v", p.cmd.Process.Pid, err)
		return
	}
	p.cmd.Wait() // reap; exit status is the signal, not an assertion
}

// buildInterfd compiles the daemon binary once per test run.
func buildInterfd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "interfd")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./cmd/interfd: %v\n%s", err, out)
	}
	return bin
}

// startDaemonProc execs the binary on an ephemeral port and waits for
// /healthz, mirroring startDaemon for out-of-process replicas.
func startDaemonProc(t *testing.T, bin string, args ...string) *daemonProc {
	t.Helper()
	log := &syncBuffer{}
	cmd := exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	cmd.Stderr = log
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &daemonProc{cmd: cmd, log: log}
	t.Cleanup(func() {
		if cmd.ProcessState == nil { // not yet reaped: still running
			cmd.Process.Signal(syscall.SIGKILL)
			cmd.Wait()
		}
	})

	deadline := time.Now().Add(15 * time.Second)
	for p.url == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; log:\n%s", log.String())
		}
		out := log.String()
		if i := strings.Index(out, "serving on "); i >= 0 {
			rest := out[i+len("serving on "):]
			if j := strings.IndexByte(rest, ' '); j >= 0 {
				p.url = "http://" + rest[:j]
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	for time.Now().Before(deadline) {
		resp, err := http.Get(p.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return p
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became healthy; log:\n%s", p.url, log.String())
	return nil
}

// drillView is the deterministic slice of a campaign response —
// rendered bytes and simulation accounting, never wall-clock fields.
func drillView(cr *server.CampaignResponse) string {
	type row struct {
		ID, Rendered, Error string
		SimSeconds          float64
		Worlds              int
	}
	var out []row
	for _, er := range cr.Results {
		out = append(out, row{er.ID, er.Rendered, er.Error, er.SimSeconds, er.Worlds})
	}
	b, _ := json.Marshal(out)
	return string(b)
}

func drillEnvInt(name string, def int) int {
	if v := os.Getenv(name); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// TestInterfdFailoverDrill is the end-to-end stampede drill with real
// processes: two interfd replicas share one point-cache directory
// (-cache-dir), a fleet of clients submits campaigns through the
// failover Set, and one replica takes a genuine SIGKILL a third of the
// way in — no drain, no goodbye, in-flight campaigns lost. Every
// client must still finish with output byte-identical to a serial run
// against an untouched daemon, and the survivor must reuse the
// victim's already-computed points from the shared cache rather than
// recomputing the world. Size with FAILOVER_DRILL_CLIENTS /
// FAILOVER_DRILL_PER_CLIENT.
func TestInterfdFailoverDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level failover drill; skipped with -short")
	}
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not in PATH; cannot build the daemon binary")
	}
	clients := drillEnvInt("FAILOVER_DRILL_CLIENTS", 6)
	perClient := drillEnvInt("FAILOVER_DRILL_PER_CLIENT", 8)
	total := clients * perClient

	bin := buildInterfd(t)
	queue := strconv.Itoa(total + 8)

	specs := []server.CampaignSpec{
		{Experiments: []string{"fig3"}, Seed: 1, Runs: 1},
		{Experiments: []string{"ext-sched"}, Seed: 1, Runs: 1},
		{Experiments: []string{"fig3", "ext-sched"}, Seed: 1, Runs: 1},
	}

	// Oracle: one pristine daemon, serial submissions.
	oracle := startDaemonProc(t, bin, "-data", filepath.Join(t.TempDir(), "oracle"), "-shards", "2", "-q", "-queue", queue)
	oracleSet := replica.NewSet([]string{oracle.url}, replica.Options{Seed: 1})
	want := make([]string, len(specs))
	for i, spec := range specs {
		cr, err := oracleSet.Submit(spec, 0, "")
		if err != nil {
			t.Fatalf("oracle spec %d: %v", i, err)
		}
		if cr.Errors != 0 {
			t.Fatalf("oracle spec %d: %d experiment errors", i, cr.Errors)
		}
		want[i] = drillView(cr)
	}

	// The fleet: two real processes over one shared point cache.
	shared := filepath.Join(t.TempDir(), "shared-points")
	a := startDaemonProc(t, bin, "-data", filepath.Join(t.TempDir(), "a"), "-cache-dir", shared, "-shards", "2", "-q", "-queue", queue)
	b := startDaemonProc(t, bin, "-data", filepath.Join(t.TempDir(), "b"), "-cache-dir", shared, "-shards", "2", "-q", "-queue", queue)

	budget := replica.NewBudget(64, 16, nil)
	set := replica.NewSet([]string{a.url, b.url}, replica.Options{Budget: budget, Seed: 7})

	killAt := int64(total / 3)
	var submitted atomic.Int64
	var killed atomic.Bool

	type outcome struct {
		spec int
		cmp  string
		err  error
	}
	outcomes := make([]outcome, total)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				if submitted.Add(1) == killAt && killed.CompareAndSwap(false, true) {
					a.kill(t) // a real SIGKILL, mid-storm
				}
				idx := (c + k) % len(specs)
				cr, err := set.Submit(specs[idx], 0, fmt.Sprintf("client-%d", c))
				o := outcome{spec: idx, err: err}
				if err == nil {
					o.cmp = drillView(cr)
				}
				outcomes[c*perClient+k] = o
			}
		}()
	}
	wg.Wait()

	for i, o := range outcomes {
		if o.err != nil {
			t.Fatalf("storm submission %d (spec %d) failed despite failover: %v", i, o.spec, o.err)
		}
		if o.cmp != want[o.spec] {
			t.Fatalf("storm submission %d: spec %d differs from the serial oracle:\n got %s\nwant %s",
				i, o.spec, o.cmp, want[o.spec])
		}
	}
	if set.Failovers() == 0 {
		t.Fatal("replica A was SIGKILLed mid-storm but no submission failed over")
	}
	if budget.Denied() != 0 {
		t.Fatalf("retry budget starved %d retries during a single-replica kill", budget.Denied())
	}

	// Prove the shared directory — not any single replica's in-memory
	// memo — holds the fleet's points: a brand-new replica (cold memo,
	// same -cache-dir) must serve the widest spec entirely from disk.
	fresh := startDaemonProc(t, bin, "-data", filepath.Join(t.TempDir(), "c"), "-cache-dir", shared, "-shards", "2", "-q", "-queue", queue)
	freshSet := replica.NewSet([]string{fresh.url}, replica.Options{Seed: 1})
	cr, err := freshSet.Submit(specs[2], 0, "post-storm")
	if err != nil {
		t.Fatalf("post-storm submission to a fresh replica: %v", err)
	}
	if drillView(cr) != want[2] {
		t.Fatal("post-storm submission differs from the serial oracle")
	}
	if cr.Cache.Misses != 0 || cr.Cache.Hits == 0 {
		t.Fatalf("fresh replica on the shared cache recomputed: %d hits, %d misses (want all hits)",
			cr.Cache.Hits, cr.Cache.Misses)
	}
	t.Logf("drill: %d campaigns, failovers %d, retried %d, budget granted %d, fresh-replica replay %d hits / %d misses",
		total, set.Failovers(), set.Retried(), budget.Allowed(), cr.Cache.Hits, cr.Cache.Misses)
}
