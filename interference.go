package interference

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/topology"
)

// Config selects the simulated cluster and the experiment repetitions.
type Config struct {
	// Cluster names a machine preset: "henri" (default), "bora",
	// "billy" or "pyxis" — the four clusters of the paper (§2.2).
	Cluster string
	// Seed makes the simulation reproducible; 0 means 1.
	Seed int64
	// Runs is the number of repetitions used for median/decile bands;
	// 0 means 3.
	Runs int
	// Noiseless disables the per-cluster measurement jitter, for exact
	// reproducibility of single numbers.
	Noiseless bool
	// SpecFile, when set, loads the machine model from a JSON spec file
	// instead of a named preset (see `topo -json` for the format).
	SpecFile string
}

func (c Config) env() (bench.Env, error) {
	name := c.Cluster
	if name == "" {
		name = "henri"
	}
	seed := c.Seed
	if seed == 0 {
		seed = 1
	}
	runs := c.Runs
	if runs == 0 {
		runs = 3
	}
	env, err := core.Env(name, seed, runs)
	if err != nil {
		return bench.Env{}, err
	}
	if c.SpecFile != "" {
		spec, err := topology.LoadSpecFile(c.SpecFile)
		if err != nil {
			return bench.Env{}, err
		}
		env.Spec = spec
	}
	if c.Noiseless {
		env.Spec.NIC.NoiseFrac = 0
	}
	return env, nil
}

// Clusters lists the available machine presets.
func Clusters() []string { return []string{"henri", "bora", "billy", "pyxis"} }

// PingPongResult is the NetPIPE metric pair of §2.1.
type PingPongResult struct {
	// LatencyMicros is the median half-round-trip time in microseconds.
	LatencyMicros float64
	// P10Micros/P90Micros delimit the first/last decile band.
	P10Micros, P90Micros float64
	// BandwidthMBps is size/latency in MB/s.
	BandwidthMBps float64
}

// PingPong measures a ping-pong of the given message size between two
// nodes of the configured cluster, with no computation running.
func PingPong(cfg Config, size int64) (PingPongResult, error) {
	if size < 0 {
		return PingPongResult{}, fmt.Errorf("interference: negative message size %d", size)
	}
	env, err := cfg.env()
	if err != nil {
		return PingPongResult{}, err
	}
	comm := bench.LatencyConfig()
	comm.Size = size
	if size >= 1<<20 {
		comm.Iters, comm.Warmup = 6, 2
	}
	r := bench.Interference(env, comm, bench.ComputeConfig{})
	lat := r.CommAlone
	res := PingPongResult{
		LatencyMicros: lat.Median * 1e6,
		P10Micros:     lat.P10 * 1e6,
		P90Micros:     lat.P90 * 1e6,
	}
	if lat.Median > 0 {
		res.BandwidthMBps = float64(size) / lat.Median / 1e6
	}
	return res, nil
}

// Workload names a computation kernel for interference studies.
type Workload string

// The workloads of the paper's benchmarks.
const (
	// CPUBound is the naive prime-counting kernel (§3.2): no memory
	// traffic at all.
	CPUBound Workload = "cpu"
	// AVX512Bound is the weak-scaling AVX-512 FMA kernel (§3.3).
	AVX512Bound Workload = "avx512"
	// MemoryBound is STREAM TRIAD (§4): maximal memory pressure.
	MemoryBound Workload = "stream"
	// Copy is STREAM COPY (§4).
	Copy Workload = "copy"
)

// InterferenceOptions configures a side-by-side measurement.
type InterferenceOptions struct {
	// Workload selects the compute kernel; default MemoryBound.
	Workload Workload
	// Cursor sets the TriadX repetition count instead of a named
	// workload when > 0 (arithmetic intensity = Cursor/12 flop/B, §4.5).
	Cursor int
	// Cores is the number of computing cores per node; default 5.
	Cores int
	// MessageSize is the ping-pong size; default 4 (latency benchmark).
	MessageSize int64
	// DataNearNIC places computation and communication memory on the
	// NIC's NUMA node (the paper's Fig 4 setup) or the farthest one.
	DataNearNIC bool
	// CommThreadNearNIC binds the communication thread next to the NIC
	// or to the last core of the farthest NUMA node (the default).
	CommThreadNearNIC bool
}

// InterferenceSummary reports the three-step protocol (§2.1) outcome.
type InterferenceSummary struct {
	// LatencyAloneMicros / LatencyTogetherMicros are median half-RTTs.
	LatencyAloneMicros, LatencyTogetherMicros float64
	// BandwidthAloneMBps / BandwidthTogetherMBps are the NetPIPE
	// bandwidths (only meaningful for large MessageSize).
	BandwidthAloneMBps, BandwidthTogetherMBps float64
	// ComputeAloneGBps / ComputeTogetherGBps are per-core memory
	// bandwidths of the kernel (0 for CPU-bound kernels).
	ComputeAloneGBps, ComputeTogetherGBps float64
	// ComputeAloneMs / ComputeTogetherMs are per-iteration times.
	ComputeAloneMs, ComputeTogetherMs float64
}

// Interfere runs computation and communication side by side per the
// paper's protocol and reports both sides' performance, alone and
// together.
func Interfere(cfg Config, opts InterferenceOptions) (InterferenceSummary, error) {
	env, err := cfg.env()
	if err != nil {
		return InterferenceSummary{}, err
	}
	spec := env.Spec
	dataNUMA := spec.NUMANodes() - 1
	if opts.DataNearNIC {
		dataNUMA = spec.NIC.NUMA
	}
	commNUMA := spec.NUMANodes() - 1
	if opts.CommThreadNearNIC {
		commNUMA = spec.NIC.NUMA
	}
	cores := opts.Cores
	if cores == 0 {
		cores = 5
	}
	if cores < 0 || cores > spec.Cores()-1 {
		return InterferenceSummary{}, fmt.Errorf("interference: %d computing cores out of range [0,%d]", cores, spec.Cores()-1)
	}
	var slice machine.ComputeSpec
	switch {
	case opts.Cursor > 0:
		slice = kernels.TriadX(1<<20, opts.Cursor, dataNUMA)
	case opts.Workload == CPUBound:
		slice = kernels.PrimeCountDefault()
	case opts.Workload == AVX512Bound:
		slice = kernels.AVX512Default()
	case opts.Workload == Copy:
		slice = kernels.StreamCopy(kernels.DefaultStreamElems, dataNUMA)
	case opts.Workload == MemoryBound, opts.Workload == "":
		slice = kernels.StreamTriad(kernels.DefaultStreamElems, dataNUMA)
	default:
		return InterferenceSummary{}, fmt.Errorf("interference: unknown workload %q", opts.Workload)
	}

	size := opts.MessageSize
	if size == 0 {
		size = 4
	}
	comm := bench.CommConfig{
		CommCore: spec.LastCoreOfNUMA(commNUMA),
		BufNUMA:  dataNUMA,
		Size:     size,
		Iters:    20,
		Warmup:   4,
	}
	if size >= 1<<20 {
		comm.Iters, comm.Warmup = 6, 2
	}
	r := bench.Interference(env, comm, bench.ComputeConfig{Slice: slice, Cores: cores})
	return InterferenceSummary{
		LatencyAloneMicros:    r.CommAlone.Median * 1e6,
		LatencyTogetherMicros: r.CommTogether.Median * 1e6,
		BandwidthAloneMBps:    r.BandwidthAlone() / 1e6,
		BandwidthTogetherMBps: r.BandwidthTogether() / 1e6,
		ComputeAloneGBps:      r.ComputeAlone.Median / 1e9,
		ComputeTogetherGBps:   r.ComputeTogether.Median / 1e9,
		ComputeAloneMs:        r.ComputeSecsAlone.Median * 1e3,
		ComputeTogetherMs:     r.ComputeSecsTogether.Median * 1e3,
	}, nil
}

// Experiment identifies one reproducible table/figure of the paper.
type Experiment struct {
	ID    string
	Title string
}

// Experiments lists every reproducible table and figure.
func Experiments() []Experiment {
	var out []Experiment
	for _, e := range core.Experiments() {
		out = append(out, Experiment{ID: e.ID, Title: e.Title})
	}
	return out
}

// Run executes the named experiment and writes its result tables to w
// as aligned ASCII.
func Run(cfg Config, id string, w io.Writer) error { return run(cfg, id, "ascii", w) }

// RunCSV executes the named experiment and writes its result tables to
// w as CSV (one block per table, `# title` comment lines between).
func RunCSV(cfg Config, id string, w io.Writer) error { return run(cfg, id, "csv", w) }

func run(cfg Config, id, format string, w io.Writer) error {
	env, err := cfg.env()
	if err != nil {
		return err
	}
	e, ok := core.ByID(id)
	if !ok {
		return fmt.Errorf("interference: unknown experiment %q (see Experiments())", id)
	}
	return core.WriteTables(w, format, e.Run(env))
}

// ClusterSpec returns a human-readable description of a preset.
func ClusterSpec(name string) (string, error) {
	spec := topology.Preset(name)
	if spec == nil {
		return "", fmt.Errorf("interference: unknown cluster %q", name)
	}
	return fmt.Sprintf(
		"%s: %d sockets × %d NUMA × %d cores (%d total), core %.1f–%.1f GHz, "+
			"uncore %.1f–%.1f GHz, %v GB/s per memory controller, NIC on NUMA %d at %v GB/s",
		spec.Name, spec.Sockets, spec.NUMAPerSocket, spec.CoresPerNUMA, spec.Cores(),
		spec.Freq.CoreMin, spec.Freq.CoreBase, spec.Freq.UncoreMin, spec.Freq.UncoreMax,
		spec.Mem.CtrlGBs, spec.NIC.NUMA, spec.NIC.WireGBs), nil
}
