// Package fault implements deterministic fault injection for the
// simulated cluster: a schedule of events — link bandwidth degradation,
// packet loss/corruption, NIC stalls, communication-thread hangs and
// straggler cores — driven entirely by the simulated clock and a seeded
// RNG, so a campaign under faults is as reproducible as a healthy one
// (same seed + same schedule ⇒ byte-identical results at any worker
// count; see DESIGN.md §7).
//
// The package only provides the schedule and the injector; the layers
// above consume it: internal/net scales wire capacities and gates
// transfers on NIC stalls, internal/mpi draws per-transmission loss and
// corruption outcomes and retries with exponential backoff, and
// internal/machine applies straggler slowdown factors to cores.
package fault

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Kind enumerates the injectable fault event types.
type Kind int

const (
	// LinkDegrade scales the capacity of one (or every) directed wire by
	// Factor while the event is active.
	LinkDegrade Kind = iota
	// PacketLoss drops each wire transmission with probability Prob
	// while active; the sender detects the loss by retransmission
	// timeout and retries with exponential backoff.
	PacketLoss
	// PacketCorrupt corrupts each wire transmission with probability
	// Prob while active; the payload still crosses the wire (wasting
	// bandwidth) before the checksum failure forces a retransmission.
	PacketCorrupt
	// NICStall freezes a node's NIC: transfers and PIO operations that
	// start during the window wait until it closes.
	NICStall
	// CommHang blocks a node's communication thread: send/recv calls
	// entered during the window stall until it closes.
	CommHang
	// Straggler multiplies the execution time of a node's cores by
	// Factor while active (per-core slowdown, e.g. thermal throttling).
	Straggler
	// NodeCrash fail-stops a node at At: its cores stop executing (the
	// next execution primitive a process enters blocks), its NIC drops
	// every in-flight transfer (the flows freeze and crash-aware waiters
	// cancel them), and fault-tolerant MPI operations against it return
	// ErrPeerDead once the failure detector declares it. A For > 0
	// schedules an automatic recovery when the window closes.
	NodeCrash
	// NodeRecover brings a previously crashed node back up at At (its
	// gated processes resume; lost in-flight transfers stay lost).
	NodeRecover
)

var kindNames = map[Kind]string{
	LinkDegrade:   "degrade",
	PacketLoss:    "loss",
	PacketCorrupt: "corrupt",
	NICStall:      "stall",
	CommHang:      "hang",
	Straggler:     "straggler",
	NodeCrash:     "crash",
	NodeRecover:   "recover",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Event is one scheduled fault.
type Event struct {
	Kind Kind
	// At is the activation instant, as an offset from simulation start.
	At sim.Duration
	// For is how long the event stays active; 0 means the rest of the
	// run (not allowed for NICStall/CommHang, which would deadlock the
	// gated operations).
	For sim.Duration
	// Node is the affected node; -1 targets every node. Ignored by
	// LinkDegrade, which addresses wires.
	Node int
	// From/To select the directed wire a LinkDegrade applies to;
	// -1/-1 targets every wire.
	From, To int
	// Factor is the capacity multiplier of a LinkDegrade (in (0,1]) or
	// the slowdown multiplier of a Straggler (≥ 1).
	Factor float64
	// Prob is the per-transmission probability of PacketLoss/Corrupt,
	// in [0,1].
	Prob float64
	// Cores restricts a Straggler to specific cores; empty means every
	// core of the node.
	Cores []int
}

// window reports whether the event is active at instant t.
func (e Event) window(t sim.Time) bool {
	start := sim.Time(0).Add(e.At)
	if t < start {
		return false
	}
	return e.For == 0 || t < start.Add(e.For)
}

// end returns the deactivation instant (valid only when For > 0).
func (e Event) end() sim.Time { return sim.Time(0).Add(e.At + e.For) }

// validate checks one event's fields.
func (e Event) validate() error {
	if e.At < 0 || e.For < 0 {
		return fmt.Errorf("fault: %s event with negative at/for", e.Kind)
	}
	switch e.Kind {
	case LinkDegrade:
		if e.Factor <= 0 || e.Factor > 1 {
			return fmt.Errorf("fault: degrade factor %g outside (0,1]", e.Factor)
		}
		if (e.From < 0) != (e.To < 0) {
			return errors.New("fault: degrade link needs both ends (or neither, for all wires)")
		}
	case PacketLoss, PacketCorrupt:
		if e.Prob < 0 || e.Prob > 1 {
			return fmt.Errorf("fault: %s probability %g outside [0,1]", e.Kind, e.Prob)
		}
	case NICStall, CommHang:
		if e.For <= 0 {
			return fmt.Errorf("fault: %s event needs for>0 (a permanent %s would deadlock)", e.Kind, e.Kind)
		}
	case Straggler:
		if e.Factor < 1 {
			return fmt.Errorf("fault: straggler factor %g below 1", e.Factor)
		}
	case NodeCrash, NodeRecover:
		if e.Node < 0 {
			return fmt.Errorf("fault: %s event needs an explicit node", e.Kind)
		}
		if e.Kind == NodeRecover && e.For != 0 {
			return errors.New("fault: recover is instantaneous (for= not allowed)")
		}
	default:
		return fmt.Errorf("fault: unknown event kind %d", int(e.Kind))
	}
	return nil
}

// Schedule is an immutable set of fault events plus the retry policy the
// MPI layer applies under it. A nil *Schedule means "no faults".
type Schedule struct {
	Events []Event
	// Policy tunes the retransmission behaviour; the zero value selects
	// DefaultPolicy at injection time.
	Policy RetryPolicy
}

// Validate checks every event of the schedule.
func (s *Schedule) Validate() error {
	for i, e := range s.Events {
		if err := e.validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// Lossy reports whether the schedule contains any loss or corruption
// events. The MPI layer only takes its retransmission path in lossy
// schedules, so fault-free worlds follow exactly the healthy code path.
func (s *Schedule) Lossy() bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Kind == PacketLoss || e.Kind == PacketCorrupt {
			return true
		}
	}
	return false
}

// Crashy reports whether the schedule contains node-crash events. Like
// Lossy it is a static, per-world property: only crashy worlds arm the
// heartbeat failure detector and take the crash-aware transfer paths,
// so crash-free worlds keep their exact event sequence.
func (s *Schedule) Crashy() bool {
	if s == nil {
		return false
	}
	for _, e := range s.Events {
		if e.Kind == NodeCrash {
			return true
		}
	}
	return false
}

// String renders the schedule in the ParseSpec syntax.
func (s *Schedule) String() string {
	var parts []string
	for _, e := range s.Events {
		var kv []string
		switch e.Kind {
		case LinkDegrade:
			kv = append(kv, fmt.Sprintf("factor=%g", e.Factor))
			if e.From >= 0 {
				kv = append(kv, fmt.Sprintf("link=%d-%d", e.From, e.To))
			}
		case PacketLoss, PacketCorrupt:
			kv = append(kv, fmt.Sprintf("p=%g", e.Prob))
		case Straggler:
			kv = append(kv, fmt.Sprintf("factor=%g", e.Factor))
		}
		if e.Node >= 0 && e.Kind != LinkDegrade {
			kv = append(kv, fmt.Sprintf("node=%d", e.Node))
		}
		if len(e.Cores) > 0 {
			cs := make([]string, len(e.Cores))
			for i, c := range e.Cores {
				cs[i] = fmt.Sprint(c)
			}
			kv = append(kv, "cores="+strings.Join(cs, "+"))
		}
		if e.At > 0 {
			kv = append(kv, fmt.Sprintf("at=%s", e.At))
		}
		if e.For > 0 {
			kv = append(kv, fmt.Sprintf("for=%s", e.For))
		}
		parts = append(parts, e.Kind.String()+":"+strings.Join(kv, ","))
	}
	return strings.Join(parts, ";")
}

// ParseSpec parses a compact fault-schedule spec: semicolon-separated
// events of the form kind:key=value,key=value. Examples:
//
//	loss:p=0.1                        drop 10% of transmissions, whole run
//	corrupt:p=0.05,at=1ms,for=5ms     corruption window
//	degrade:factor=0.5                every wire at half capacity
//	degrade:factor=0.25,link=0-1      one directed wire
//	stall:node=0,at=100us,for=300us   NIC frozen for 300µs
//	hang:node=1,at=50us,for=200us     comm thread blocked
//	straggler:factor=2,node=1,cores=0+1+2   cores 0-2 run 2× slower
//	crash:node=1,at=1ms                crash node 1 permanently at t=1ms
//	crash:node=0,at=1ms,for=2ms        crash with automatic recovery
//	recover:node=1,at=5ms              explicit recovery of a crashed node
//
// Durations use Go syntax restricted to ns/us/ms/s suffixes.
func ParseSpec(spec string) (*Schedule, error) {
	s := &Schedule{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, args, _ := strings.Cut(part, ":")
		var kind Kind = -1
		for k, name := range kindNames {
			if name == kindStr {
				kind = k
			}
		}
		if kind < 0 {
			return nil, fmt.Errorf("fault: unknown event kind %q (have loss, corrupt, degrade, stall, hang, straggler, crash, recover)", kindStr)
		}
		e := Event{Kind: kind, Node: -1, From: -1, To: -1}
		if args != "" {
			for _, kv := range strings.Split(args, ",") {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("fault: %s: malformed option %q (want key=value)", kindStr, kv)
				}
				if err := e.setOption(key, val); err != nil {
					return nil, err
				}
			}
		}
		if err := e.validate(); err != nil {
			return nil, err
		}
		s.Events = append(s.Events, e)
	}
	if len(s.Events) == 0 {
		return nil, errors.New("fault: empty schedule spec")
	}
	return s, nil
}

// setOption applies one key=value option to the event.
func (e *Event) setOption(key, val string) error {
	switch key {
	case "p":
		return parseFloat(val, &e.Prob)
	case "factor":
		return parseFloat(val, &e.Factor)
	case "node":
		return parseInt(val, &e.Node)
	case "link":
		from, to, ok := strings.Cut(val, "-")
		if !ok {
			return fmt.Errorf("fault: link %q not of the form from-to", val)
		}
		if err := parseInt(from, &e.From); err != nil {
			return err
		}
		return parseInt(to, &e.To)
	case "cores":
		for _, c := range strings.Split(val, "+") {
			var core int
			if err := parseInt(c, &core); err != nil {
				return err
			}
			e.Cores = append(e.Cores, core)
		}
		return nil
	case "at":
		return parseDuration(val, &e.At)
	case "for":
		return parseDuration(val, &e.For)
	}
	return fmt.Errorf("fault: unknown option %q for %s", key, e.Kind)
}

func parseFloat(s string, out *float64) error {
	if _, err := fmt.Sscanf(s, "%g", out); err != nil {
		return fmt.Errorf("fault: bad number %q", s)
	}
	return nil
}

func parseInt(s string, out *int) error {
	if _, err := fmt.Sscanf(s, "%d", out); err != nil {
		return fmt.Errorf("fault: bad integer %q", s)
	}
	return nil
}

// parseDuration accepts ns/us/ms/s suffixed decimal durations.
func parseDuration(s string, out *sim.Duration) error {
	units := []struct {
		suffix string
		unit   sim.Duration
	}{
		// Longest suffixes first, so "1ms" doesn't match "s".
		{"ns", sim.Nanosecond}, {"us", sim.Microsecond}, {"ms", sim.Millisecond}, {"s", sim.Second},
	}
	for _, u := range units {
		if v, ok := strings.CutSuffix(s, u.suffix); ok {
			var f float64
			if err := parseFloat(v, &f); err != nil {
				return err
			}
			if f < 0 {
				return fmt.Errorf("fault: bad duration %q (negative)", s)
			}
			*out = sim.DurationOfSeconds(f * u.unit.Seconds())
			return nil
		}
	}
	return fmt.Errorf("fault: bad duration %q (want ns/us/ms/s suffix)", s)
}

// sortedCores returns the straggler's target cores, deduplicated and in
// ascending order, defaulting to all n cores when unset.
func (e Event) sortedCores(n int) []int {
	if len(e.Cores) == 0 {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	out := append([]int(nil), e.Cores...)
	sort.Ints(out)
	j := 0
	for i, c := range out {
		if i == 0 || c != out[i-1] {
			out[j] = c
			j++
		}
	}
	return out[:j]
}
