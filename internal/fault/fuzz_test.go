package fault

import (
	"testing"
)

// FuzzParseSchedule feeds arbitrary strings through the `-faults` spec
// parsing path and checks that it either rejects the input with an
// error or yields a schedule that validates and survives a
// String() → ParseSpec round-trip. Malformed fault specs must never
// panic the CLI.
func FuzzParseSchedule(f *testing.F) {
	seeds := []string{
		"loss:p=0.1",
		"corrupt:p=0.05,at=1ms,for=5ms",
		"degrade:factor=0.5",
		"degrade:factor=0.25,link=0-1",
		"stall:node=0,at=100us,for=300us",
		"hang:node=1,at=50us,for=200us",
		"straggler:factor=2,node=1,cores=0+1+2",
		"crash:node=1,at=1ms",
		"crash:node=0,at=1ms,for=2ms",
		"recover:node=1,at=5ms",
		"crash:node=1,at=1ms;recover:node=1,at=5ms;loss:p=0.2",
		"",
		";;;",
		"loss",
		"loss:p",
		"loss:p=",
		"crash",
		"crash:node=-5",
		"recover:node=0,for=1ms",
		"degrade:factor=1e309",
		"straggler:cores=0+0+999999999999999999999",
		"loss:p=0.1,at=99999999999999999s",
		"stall:node=0,at=1ms,for=0ns",
		"kind:with=garbage,=,==",
		"crash:node=1,at=1ms,node=2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSpec(spec)
		if err != nil {
			return // rejected cleanly
		}
		// Accepted schedules must validate: ParseSpec applies the same
		// per-event checks the programmatic API does.
		if err := s.Validate(); err != nil {
			t.Fatalf("ParseSpec(%q) accepted a schedule its own Validate rejects: %v", spec, err)
		}
		// The rendering must reparse to an equivalent schedule.
		r1 := s.String()
		s2, err := ParseSpec(r1)
		if err != nil {
			t.Fatalf("reparse of %q (rendered from %q): %v", r1, spec, err)
		}
		if len(s2.Events) != len(s.Events) {
			t.Fatalf("%q: round trip changed event count %d -> %d (rendered %q)",
				spec, len(s.Events), len(s2.Events), r1)
		}
		for i := range s.Events {
			if s2.Events[i].Kind != s.Events[i].Kind {
				t.Fatalf("%q event %d: round trip changed kind %v -> %v",
					spec, i, s.Events[i].Kind, s2.Events[i].Kind)
			}
		}
		if s2.Lossy() != s.Lossy() || s2.Crashy() != s.Crashy() {
			t.Fatalf("%q: round trip changed Lossy/Crashy (%v/%v -> %v/%v)",
				spec, s.Lossy(), s.Crashy(), s2.Lossy(), s2.Crashy())
		}
		// Rendering the reparse must itself parse: String() is a fixed
		// point of the grammar, not just a one-shot debug form.
		if _, err := ParseSpec(s2.String()); err != nil {
			t.Fatalf("second-generation spec %q does not parse: %v", s2.String(), err)
		}
	})
}
