package fault

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"loss:p=0.1",
		"corrupt:p=0.05,at=1ms,for=5ms",
		"degrade:factor=0.5",
		"degrade:factor=0.25,link=0-1",
		"stall:node=0,at=100us,for=300us",
		"hang:node=1,at=50us,for=200us",
		"straggler:factor=2,node=1,cores=0+1+2",
		"loss:p=0.2;degrade:factor=0.5;straggler:factor=1.5",
	}
	for _, spec := range specs {
		s, err := ParseSpec(spec)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		// String() renders back to the same syntax; reparsing it must
		// yield an equivalent schedule.
		s2, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("reparse of %q (rendered %q): %v", spec, s.String(), err)
		}
		if len(s2.Events) != len(s.Events) {
			t.Fatalf("%q: round trip changed event count %d -> %d", spec, len(s.Events), len(s2.Events))
		}
		for i := range s.Events {
			if !reflect.DeepEqual(s.Events[i], s2.Events[i]) {
				t.Fatalf("%q event %d: %+v != %+v", spec, i, s.Events[i], s2.Events[i])
			}
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct{ spec, want string }{
		{"", "empty schedule"},
		{"explode:p=1", "unknown event kind"},
		{"loss:p", "key=value"},
		{"loss:p=1.5", "outside [0,1]"},
		{"degrade:factor=0", "outside (0,1]"},
		{"degrade:factor=2", "outside (0,1]"},
		{"degrade:factor=0.5,link=3", "from-to"},
		{"stall:node=0", "for>0"},
		{"hang:node=0,at=1ms", "for>0"},
		{"straggler:factor=0.5", "below 1"},
		{"loss:p=0.1,at=-1ms", "bad duration"},
		{"loss:p=0.1,at=3m", "bad duration"},
		{"loss:p=0.1,wobble=3", "unknown option"},
	}
	for _, c := range cases {
		_, err := ParseSpec(c.spec)
		if err == nil {
			t.Fatalf("ParseSpec(%q) accepted", c.spec)
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Fatalf("ParseSpec(%q): error %q does not mention %q", c.spec, err, c.want)
		}
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	p := DefaultPolicy()
	p.JitterFrac = 0 // exact values
	want := []sim.Duration{
		20 * sim.Microsecond, 40 * sim.Microsecond, 80 * sim.Microsecond,
		160 * sim.Microsecond, 320 * sim.Microsecond, 640 * sim.Microsecond,
		sim.Millisecond, sim.Millisecond, // capped
	}
	for i, w := range want {
		if got := p.Backoff(i, nil); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
	if got := p.Backoff(1000, nil); got != sim.Millisecond {
		t.Fatalf("Backoff(1000) = %v, want cap %v", got, sim.Millisecond)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := DefaultPolicy() // JitterFrac 0.1
	rng := rand.New(rand.NewSource(7))
	for attempt := 0; attempt < 6; attempt++ {
		base := float64(p.Backoff(attempt, nil))
		seen := map[sim.Duration]bool{}
		for i := 0; i < 200; i++ {
			d := p.Backoff(attempt, rng)
			lo, hi := base*(1-p.JitterFrac), base*(1+p.JitterFrac)
			if float64(d) < lo || float64(d) > hi {
				t.Fatalf("Backoff(%d) = %v outside jitter band [%g, %g]", attempt, d, lo, hi)
			}
			seen[d] = true
		}
		if len(seen) < 10 {
			t.Fatalf("Backoff(%d): only %d distinct jittered values in 200 draws", attempt, len(seen))
		}
	}
}

func TestBackoffAlwaysPositive(t *testing.T) {
	p := RetryPolicy{RTO: 1, MaxRetries: 3, BackoffFactor: 2, BackoffCap: 2, JitterFrac: 0.99}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if d := p.Backoff(0, rng); d <= 0 {
			t.Fatalf("Backoff returned non-positive %v", d)
		}
	}
}

func TestBackoffDeterministicPerSeed(t *testing.T) {
	p := DefaultPolicy()
	draw := func() []sim.Duration {
		rng := rand.New(rand.NewSource(42))
		var out []sim.Duration
		for i := 0; i < 16; i++ {
			out = append(out, p.Backoff(i%8, rng))
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("draw %d differs: %v != %v", i, a[i], b[i])
		}
	}
}

func TestInjectorTxDrawsOnlyInsideWindows(t *testing.T) {
	spec := topology.Henri()
	c := machine.NewCluster(spec, 2, 1)
	s, err := ParseSpec("loss:p=1,at=10us,for=10us")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(c, s, 1)
	if !inj.Lossy() {
		t.Fatal("schedule with loss events reported not lossy")
	}
	// Before the window: every transmission survives.
	if got := inj.Tx(); got != TxOK {
		t.Fatalf("Tx before window = %v, want TxOK", got)
	}
	// Inside the window (p=1): every transmission is lost.
	c.K.Spawn("probe", func(p *sim.Proc) {
		p.Sleep(15 * sim.Microsecond)
		if got := inj.Tx(); got != TxLost {
			t.Errorf("Tx inside window = %v, want TxLost", got)
		}
		p.Sleep(10 * sim.Microsecond) // now at 25us, window closed
		if got := inj.Tx(); got != TxOK {
			t.Errorf("Tx after window = %v, want TxOK", got)
		}
	})
	c.K.Run()
}

func TestStragglerSlowsCoreWithinWindow(t *testing.T) {
	spec := topology.Henri()
	c := machine.NewCluster(spec, 1, 1)
	s, err := ParseSpec("straggler:factor=2,node=0,cores=3,at=10us,for=10us")
	if err != nil {
		t.Fatal(err)
	}
	NewInjector(c, s, 1)
	n := c.Nodes[0]
	var during, after float64
	c.K.Spawn("probe", func(p *sim.Proc) {
		p.Sleep(15 * sim.Microsecond)
		during = n.CoreSlowdown(3)
		if got := n.CoreSlowdown(2); got != 1 {
			t.Errorf("untargeted core slowed by %g", got)
		}
		p.Sleep(10 * sim.Microsecond)
		after = n.CoreSlowdown(3)
	})
	c.K.Run()
	if during != 2 {
		t.Fatalf("slowdown during window %g, want 2", during)
	}
	if after != 1 {
		t.Fatalf("slowdown after window %g, want 1", after)
	}
}

func TestGateBlocksForWindow(t *testing.T) {
	spec := topology.Henri()
	c := machine.NewCluster(spec, 2, 1)
	s, err := ParseSpec("hang:node=0,at=0us,for=30us")
	if err != nil {
		t.Fatal(err)
	}
	inj := NewInjector(c, s, 1)
	var released sim.Time
	c.K.Spawn("gated", func(p *sim.Proc) {
		inj.GateComm(p, 0)
		released = p.Now()
	})
	var other sim.Time
	c.K.Spawn("other-node", func(p *sim.Proc) {
		inj.GateComm(p, 1)
		other = p.Now()
	})
	c.K.Run()
	if released != sim.Time(30*sim.Microsecond) {
		t.Fatalf("gated process released at %v, want 30us", released)
	}
	if other != 0 {
		t.Fatalf("other node gated until %v, want immediate release", other)
	}
}

func TestTransferErrorMessage(t *testing.T) {
	e := &TransferError{Op: "eager", Src: 0, Dst: 1, Attempts: 9}
	msg := e.Error()
	for _, want := range []string{"eager", "n0", "n1", "9"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
}
