package fault

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/machine"
	"repro/internal/sim"
)

// RetryPolicy tunes the MPI layer's retransmission behaviour under lossy
// schedules: a bounded number of retries with exponential backoff and
// multiplicative jitter. The backoff of attempt n is also the timeout
// the sender waits before declaring that attempt lost, so timeouts
// stretch as the fabric misbehaves.
type RetryPolicy struct {
	// RTO is the initial retransmission timeout.
	RTO sim.Duration
	// MaxRetries bounds how many times one message is retransmitted
	// before the transfer fails with a TransferError.
	MaxRetries int
	// BackoffFactor multiplies the timeout on each retry (≥ 1).
	BackoffFactor float64
	// BackoffCap bounds the grown timeout.
	BackoffCap sim.Duration
	// JitterFrac is the relative amplitude of the multiplicative jitter
	// applied to each backoff (decorrelates retry storms); drawn from
	// the injector's seeded RNG, so it is deterministic per seed.
	JitterFrac float64
}

// DefaultPolicy returns the policy used when a schedule does not set
// one: 20µs initial timeout doubling up to 1ms, 8 retries, ±10% jitter.
func DefaultPolicy() RetryPolicy {
	return RetryPolicy{
		RTO:           20 * sim.Microsecond,
		MaxRetries:    8,
		BackoffFactor: 2,
		BackoffCap:    sim.Millisecond,
		JitterFrac:    0.1,
	}
}

// zero reports whether the policy is unset.
func (p RetryPolicy) zero() bool { return p.RTO == 0 && p.MaxRetries == 0 }

// Backoff returns the timeout for retransmission attempt `attempt`
// (0-based): RTO·BackoffFactor^attempt, capped at BackoffCap, then
// jittered by ×(1 ± JitterFrac). The result is always positive.
func (p RetryPolicy) Backoff(attempt int, rng *rand.Rand) sim.Duration {
	d := float64(p.RTO)
	for i := 0; i < attempt; i++ {
		d *= p.BackoffFactor
		if d >= float64(p.BackoffCap) {
			d = float64(p.BackoffCap)
			break
		}
	}
	if d > float64(p.BackoffCap) {
		d = float64(p.BackoffCap)
	}
	if p.JitterFrac > 0 && rng != nil {
		u := rng.Float64()*2 - 1
		d *= 1 + p.JitterFrac*u
	}
	if d < 1 {
		d = 1
	}
	return sim.Duration(d)
}

// TransferError is the error a transfer fails with once its retry budget
// is exhausted. The MPI layer panics with it from the communication
// process; the campaign runner's recovery converts the panic into the
// experiment's Result.Err, so one dead transfer degrades one experiment
// instead of the whole campaign.
type TransferError struct {
	Op       string // "eager", "rendezvous", ...
	Src, Dst int    // node IDs
	Attempts int
}

func (e *TransferError) Error() string {
	return fmt.Sprintf("fault: %s transfer n%d→n%d failed after %d attempts", e.Op, e.Src, e.Dst, e.Attempts)
}

// TxOutcome is the fate of one wire transmission under the injector.
type TxOutcome int

const (
	// TxOK delivers the transmission normally.
	TxOK TxOutcome = iota
	// TxLost drops it; the sender finds out by timeout.
	TxLost
	// TxCorrupt delivers garbage: the payload crosses the wire but the
	// receiver's checksum rejects it, forcing a retransmission.
	TxCorrupt
)

// Injector applies a Schedule to one simulated world. All of its state
// transitions are kernel events and all of its randomness comes from a
// dedicated RNG seeded from the world seed, so injection is fully
// deterministic and independent of the host's worker count.
type Injector struct {
	sched   *Schedule
	policy  RetryPolicy
	k       *sim.Kernel
	rng     *rand.Rand
	cluster *machine.Cluster

	loss, corrupt []Event // static probability windows
	stalls, hangs []Event // static gating windows

	// Degrade bookkeeping: product of active all-wire factors, plus the
	// product of active per-wire factors; push() re-emits the absolute
	// factors through the bound network callback on every transition.
	allFactor  float64
	linkFactor map[[2]int]float64
	scaleWire  func(from, to int, factor float64)

	// Crash bookkeeping: one flag per node, flipped by armed crash and
	// recover transitions. Watched signals are broadcast on every
	// transition so processes blocked on a transfer- or protocol-signal
	// can wake up and re-check liveness; onCrash callbacks run (in event
	// context) when a node goes down.
	crashy  bool
	down    []bool
	watch   []*sim.Signal
	onCrash []func(node int)
}

// frozenWireFactor is the capacity multiplier applied to every wire
// touching a crashed node. The fluid model panics on a zero capacity,
// so a dead NIC is modelled as a wire so slow that even a one-byte
// flow's completion lies beyond the solver's scheduling horizon: the
// in-flight transfer freezes (never completes, generates no events)
// until a crash-aware waiter cancels it.
const frozenWireFactor = 1e-24

// NewInjector builds the injector for a cluster and arms the machine
// -level events (stragglers). Wire-level events are armed when the
// network binds via BindWires. The seed should be the world seed; the
// injector derives an independent RNG stream from it so that fault draws
// never perturb the cluster's measurement-jitter stream.
func NewInjector(c *machine.Cluster, s *Schedule, seed int64) *Injector {
	if err := s.Validate(); err != nil {
		panic(fmt.Sprintf("fault: invalid schedule: %v", err))
	}
	inj := &Injector{
		sched:      s,
		policy:     s.Policy,
		k:          c.K,
		rng:        rand.New(rand.NewSource(seed ^ 0x6661756c74)), // "fault"
		cluster:    c,
		allFactor:  1,
		linkFactor: make(map[[2]int]float64),
		down:       make([]bool, len(c.Nodes)),
	}
	if inj.policy.zero() {
		inj.policy = DefaultPolicy()
	}
	for _, e := range s.Events {
		switch e.Kind {
		case PacketLoss:
			inj.loss = append(inj.loss, e)
		case PacketCorrupt:
			inj.corrupt = append(inj.corrupt, e)
		case NICStall:
			inj.stalls = append(inj.stalls, e)
		case CommHang:
			inj.hangs = append(inj.hangs, e)
		case Straggler:
			inj.armStraggler(e)
		case NodeCrash:
			inj.crashy = true
			inj.armCrash(e)
		case NodeRecover:
			e := e
			inj.k.At(sim.Time(0).Add(e.At), func() { inj.setDown(e.Node, false) })
		}
	}
	return inj
}

// armCrash schedules the fail-stop transition of one event (and the
// automatic recovery when the event carries a window).
func (inj *Injector) armCrash(e Event) {
	inj.targetNodes(e.Node) // range check at arm time
	inj.k.At(sim.Time(0).Add(e.At), func() { inj.setDown(e.Node, true) })
	if e.For > 0 {
		inj.k.At(e.end(), func() { inj.setDown(e.Node, false) })
	}
}

// setDown flips a node's crash state: the machine layer gates its
// execution primitives, every wire touching it freezes, crash callbacks
// fire (on the down transition) and watched signals are broadcast so
// blocked waiters re-check liveness. Runs in event context.
func (inj *Injector) setDown(node int, down bool) {
	if node < 0 || node >= len(inj.down) || inj.down[node] == down {
		return
	}
	inj.down[node] = down
	inj.cluster.Nodes[node].SetDown(down)
	inj.push()
	if down {
		for _, fn := range inj.onCrash {
			fn(node)
		}
	}
	for _, s := range inj.watch {
		s.Broadcast()
	}
}

// Crashy reports whether the schedule contains node-crash events at
// all; a static property like Lossy, so crash-free worlds never take
// the crash-aware code paths.
func (inj *Injector) Crashy() bool { return inj.crashy }

// Crashed reports whether a node is currently down.
func (inj *Injector) Crashed(node int) bool {
	return node >= 0 && node < len(inj.down) && inj.down[node]
}

// OnCrash registers a callback run (in event context) whenever a node
// goes down.
func (inj *Injector) OnCrash(fn func(node int)) {
	inj.onCrash = append(inj.onCrash, fn)
}

// WatchCrash registers a signal to be broadcast on every crash/recover
// transition. A process waiting on a protocol signal that a dead peer
// will never fire registers it here, wakes on the transition, re-checks
// liveness, and unregisters via the returned function.
func (inj *Injector) WatchCrash(s *sim.Signal) (unwatch func()) {
	inj.watch = append(inj.watch, s)
	return func() {
		for i, x := range inj.watch {
			if x == s {
				inj.watch = append(inj.watch[:i], inj.watch[i+1:]...)
				return
			}
		}
	}
}

// Policy returns the effective retry policy.
func (inj *Injector) Policy() RetryPolicy { return inj.policy }

// Rng returns the injector's dedicated deterministic random source.
func (inj *Injector) Rng() *rand.Rand { return inj.rng }

// Lossy reports whether the schedule contains loss/corruption events at
// all. It is a static property: the MPI layer selects its code path per
// world, not per message, so fault-free worlds never touch the
// retransmission machinery.
func (inj *Injector) Lossy() bool { return len(inj.loss)+len(inj.corrupt) > 0 }

// Backoff returns the jittered timeout for retransmission attempt n.
func (inj *Injector) Backoff(attempt int) sim.Duration {
	return inj.policy.Backoff(attempt, inj.rng)
}

// Tx draws the fate of one wire transmission at the current instant.
func (inj *Injector) Tx() TxOutcome {
	now := inj.k.Now()
	if p := activeProb(inj.loss, now); p > 0 && inj.rng.Float64() < p {
		return TxLost
	}
	if p := activeProb(inj.corrupt, now); p > 0 && inj.rng.Float64() < p {
		return TxCorrupt
	}
	return TxOK
}

// activeProb combines the probabilities of every window active at t:
// independent loss processes compose as 1−∏(1−p).
func activeProb(events []Event, t sim.Time) float64 {
	keep := 1.0
	for _, e := range events {
		if e.window(t) {
			keep *= 1 - e.Prob
		}
	}
	return 1 - keep
}

// GateNIC blocks p while node's NIC is stalled (the PIO path and DMA
// programming freeze; in-flight fluid transfers are not interrupted).
func (inj *Injector) GateNIC(p *sim.Proc, node int) { inj.gate(p, inj.stalls, node) }

// GateComm blocks p while node's communication thread is hung.
func (inj *Injector) GateComm(p *sim.Proc, node int) { inj.gate(p, inj.hangs, node) }

func (inj *Injector) gate(p *sim.Proc, events []Event, node int) {
	for {
		var until sim.Time = -1
		now := p.Now()
		for _, e := range events {
			if (e.Node < 0 || e.Node == node) && e.window(now) && e.end() > until {
				until = e.end()
			}
		}
		if until < 0 {
			return
		}
		p.Sleep(until.Sub(now))
	}
}

// armStraggler schedules the slowdown transitions of one event.
func (inj *Injector) armStraggler(e Event) {
	apply := func(mult float64) {
		for _, n := range inj.targetNodes(e.Node) {
			for _, core := range e.sortedCores(n.Spec.Cores()) {
				n.SetCoreSlowdown(core, n.CoreSlowdown(core)*mult)
			}
		}
	}
	inj.k.At(sim.Time(0).Add(e.At), func() { apply(e.Factor) })
	if e.For > 0 {
		inj.k.At(e.end(), func() { apply(1 / e.Factor) })
	}
}

// targetNodes resolves a Node field (-1 = all).
func (inj *Injector) targetNodes(node int) []*machine.Node {
	if node < 0 {
		return inj.cluster.Nodes
	}
	if node >= len(inj.cluster.Nodes) {
		panic(fmt.Sprintf("fault: node %d out of range [0,%d)", node, len(inj.cluster.Nodes)))
	}
	return inj.cluster.Nodes[node : node+1]
}

// BindWires attaches the network's wire-scaling callback and arms the
// LinkDegrade events. scale receives the directed pair (or -1/-1 for
// every wire) and the absolute capacity factor to apply.
func (inj *Injector) BindWires(scale func(from, to int, factor float64)) {
	inj.scaleWire = scale
	for _, e := range inj.sched.Events {
		if e.Kind != LinkDegrade {
			continue
		}
		e := e
		inj.k.At(sim.Time(0).Add(e.At), func() { inj.applyDegrade(e, e.Factor) })
		if e.For > 0 {
			inj.k.At(e.end(), func() { inj.applyDegrade(e, 1/e.Factor) })
		}
	}
}

// applyDegrade folds one transition into the factor bookkeeping and
// re-emits the absolute factors (handles overlapping degrade windows:
// concurrent events compose multiplicatively).
func (inj *Injector) applyDegrade(e Event, mult float64) {
	if e.From < 0 {
		inj.allFactor *= mult
	} else {
		key := [2]int{e.From, e.To}
		f, ok := inj.linkFactor[key]
		if !ok {
			f = 1
		}
		inj.linkFactor[key] = f * mult
	}
	inj.push()
}

// push re-emits every wire's absolute factor through the network, in
// sorted wire order: map iteration order must never leak into the
// kernel's event sequence.
func (inj *Injector) push() {
	if inj.scaleWire == nil {
		return
	}
	inj.scaleWire(-1, -1, inj.allFactor)
	keys := make([][2]int, 0, len(inj.linkFactor))
	for key := range inj.linkFactor {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, key := range keys {
		inj.scaleWire(key[0], key[1], inj.allFactor*inj.linkFactor[key])
	}
	// Freeze every wire touching a crashed node (after the degrade
	// factors above, so recovery restores the degraded — not the full —
	// capacity).
	anyDown := false
	for _, d := range inj.down {
		anyDown = anyDown || d
	}
	if !anyDown {
		return
	}
	for from := range inj.down {
		for to := range inj.down {
			if from == to || (!inj.down[from] && !inj.down[to]) {
				continue
			}
			f, ok := inj.linkFactor[[2]int{from, to}]
			if !ok {
				f = 1
			}
			inj.scaleWire(from, to, inj.allFactor*f*frozenWireFactor)
		}
	}
}
