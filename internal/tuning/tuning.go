// Package tuning implements the paper's §8 future-work proposals as
// working extensions on top of the simulator:
//
//   - WorkerSweep / Autotune: "task-based runtime systems could select
//     (automatically) the optimal number of workers which reduces memory
//     contention and maximizes performances for the whole program
//     execution" — sweep worker counts for an iterative application and
//     pick the fastest whole-program configuration;
//   - the CommThrottle and NUMALocal runtime features it evaluates live
//     in internal/taskrt (Config.CommThrottle, Config.Scheduler).
//
// These go beyond what the paper measures; EXPERIMENTS.md marks the
// corresponding experiments as extensions.
package tuning

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/net"
	"repro/internal/sim"
	"repro/internal/taskrt"
	"repro/internal/topology"
)

// Options configures a worker-count sweep.
type Options struct {
	// Spec is the machine model; Seed the simulation seed.
	Spec *topology.NodeSpec
	Seed int64
	// App builds the iterative application to tune (a fresh value per
	// run; its Slice closures must not retain state across runs).
	App func() *taskrt.App
	// WorkerCounts lists the candidate counts; empty means
	// {1, 2, 4, ..., cores-2}.
	WorkerCounts []int
	// Scheduler and CommThrottle configure the runtime under test.
	Scheduler    taskrt.SchedulerPolicy
	CommThrottle int
	// Track, when non-nil, is called with the kernel of every simulated
	// world the sweep builds (campaign accounting; see bench.Meter).
	Track func(*sim.Kernel)
}

// Point is one sweep measurement.
type Point struct {
	Workers int
	// IterSeconds is the mean whole-iteration time — the quantity the
	// autotuner minimises ("performances for the whole program
	// execution").
	IterSeconds float64
	// SendBandwidth and StallFraction diagnose *why* a configuration
	// wins: fewer workers → less contention → faster communication,
	// more workers → more parallel compute.
	SendBandwidth float64
	StallFraction float64
}

// Result is a sweep outcome.
type Result struct {
	Best   Point
	Series []Point
}

// DefaultCounts yields the default sweep axis — 1, 2, 4, 8, ... up to
// cores−2 — so callers that split the sweep into per-count work units
// (see bench.ExtTuner) enumerate exactly the counts WorkerSweep would.
func DefaultCounts(spec *topology.NodeSpec) []int {
	max := spec.Cores() - 2
	counts := []int{1, 2}
	for n := 4; n < max; n += 4 {
		counts = append(counts, n)
	}
	return append(counts, max)
}

// runOnce executes the application at one worker count and returns the
// measurement.
func runOnce(o Options, nworkers int) Point {
	spec := o.Spec
	c := machine.NewCluster(spec, 2, o.Seed)
	if o.Track != nil {
		o.Track(c.K)
	}
	w := mpi.NewWorld(c, net.New(c))
	commCore := spec.LastCoreOfNUMA(spec.NUMANodes() - 1)
	var workers []int
	for core := 1; core < spec.Cores() && len(workers) < nworkers; core++ {
		if core != commCore {
			workers = append(workers, core)
		}
	}
	var rts [2]*taskrt.Runtime
	for i := 0; i < 2; i++ {
		w.Rank(i).SetCommCore(commCore)
		rts[i] = taskrt.New(taskrt.Config{
			Node:         c.Nodes[i],
			Rank:         w.Rank(i),
			MainCore:     0,
			CommCore:     commCore,
			WorkerCores:  workers,
			Scheduler:    o.Scheduler,
			CommThrottle: o.CommThrottle,
		})
		rts[i].Start()
	}
	stats := o.App().Run(rts)
	return Point{
		Workers:       nworkers,
		IterSeconds:   stats.IterSeconds,
		SendBandwidth: stats.SendBandwidth,
		StallFraction: stats.StallFraction,
	}
}

// WorkerSweep measures the application at every candidate worker count.
func WorkerSweep(o Options) Result {
	if o.Spec == nil || o.App == nil {
		panic("tuning: Options.Spec and Options.App are required")
	}
	counts := o.WorkerCounts
	if len(counts) == 0 {
		counts = DefaultCounts(o.Spec)
	}
	var res Result
	for _, n := range counts {
		if n < 1 || n > o.Spec.Cores()-2 {
			panic(fmt.Sprintf("tuning: worker count %d out of range [1,%d]", n, o.Spec.Cores()-2))
		}
		pt := runOnce(o, n)
		res.Series = append(res.Series, pt)
		if res.Best.Workers == 0 || pt.IterSeconds < res.Best.IterSeconds {
			res.Best = pt
		}
	}
	return res
}

// Autotune is the §8 "select automatically the optimal number of
// workers" entry point: it sweeps and returns the winning worker count.
func Autotune(o Options) int {
	return WorkerSweep(o).Best.Workers
}
