package tuning

import (
	"testing"

	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/taskrt"
	"repro/internal/topology"
)

func quietHenri() *topology.NodeSpec {
	spec := topology.Henri()
	spec.NIC.NoiseFrac = 0
	return spec
}

// cgApp is a communication-heavy, memory-bound iterative app: past the
// controller saturation point, extra workers only add contention.
func cgApp() *taskrt.App {
	return &taskrt.App{
		Name:         "tune-cg",
		Slice:        func(i int) machine.ComputeSpec { return kernels.CGBlock(512, 1024, (i/2)%4) },
		TasksPerIter: 96,
		Iterations:   3,
		MsgSize:      512 << 10,
		MsgsPerIter:  6,
		HandleNUMA:   -1,
	}
}

// cpuApp is compute-bound: more workers always help.
func cpuApp() *taskrt.App {
	return &taskrt.App{
		Name:         "tune-cpu",
		Slice:        func(i int) machine.ComputeSpec { return kernels.PrimeCount(2e8) },
		TasksPerIter: 64,
		Iterations:   2,
		MsgSize:      64 << 10,
		MsgsPerIter:  2,
		HandleNUMA:   -1,
	}
}

func TestSweepSeriesComplete(t *testing.T) {
	res := WorkerSweep(Options{
		Spec: quietHenri(), Seed: 1, App: cgApp,
		WorkerCounts: []int{2, 8, 34},
	})
	if len(res.Series) != 3 {
		t.Fatalf("%d points", len(res.Series))
	}
	for _, pt := range res.Series {
		if pt.IterSeconds <= 0 {
			t.Fatalf("point %+v has no timing", pt)
		}
	}
	if res.Best.Workers == 0 {
		t.Fatal("no best point")
	}
}

func TestAutotuneCPUBoundPrefersAllWorkers(t *testing.T) {
	best := Autotune(Options{
		Spec: quietHenri(), Seed: 1, App: cpuApp,
		WorkerCounts: []int{2, 8, 34},
	})
	if best != 34 {
		t.Fatalf("CPU-bound autotune chose %d workers, want 34 (no contention penalty)", best)
	}
}

func TestAutotuneMemoryBoundAvoidsFullMachine(t *testing.T) {
	// For a memory-bound, communication-heavy app, the whole-program
	// optimum is below the full machine: once the controllers saturate
	// (≈ 4 cores per NUMA node on henri), extra workers add nothing to
	// compute but keep degrading communication (§8's motivation).
	res := WorkerSweep(Options{
		Spec: quietHenri(), Seed: 1, App: cgApp,
		WorkerCounts: []int{2, 8, 16, 24, 34},
	})
	if res.Best.Workers == 34 {
		t.Fatalf("memory-bound autotune chose the full machine:\n%+v", res.Series)
	}
	if res.Best.Workers < 8 {
		t.Fatalf("memory-bound autotune too conservative (%d workers):\n%+v",
			res.Best.Workers, res.Series)
	}
}

func TestSweepValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range worker count accepted")
		}
	}()
	WorkerSweep(Options{Spec: quietHenri(), Seed: 1, App: cgApp, WorkerCounts: []int{99}})
}

func TestThrottleRecoversSendBandwidth(t *testing.T) {
	// §8: pausing workers during communication phases must improve the
	// sending bandwidth of a contention-bound app.
	base := runOnce(Options{Spec: quietHenri(), Seed: 1, App: cgApp}, 30)
	throttled := runOnce(Options{
		Spec: quietHenri(), Seed: 1, App: cgApp, CommThrottle: 24,
	}, 30)
	if throttled.SendBandwidth <= base.SendBandwidth {
		t.Fatalf("throttling did not improve send bandwidth: %.0f → %.0f MB/s",
			base.SendBandwidth/1e6, throttled.SendBandwidth/1e6)
	}
}

func TestNUMALocalSchedulerSpeedsUpCrossNUMAWork(t *testing.T) {
	// The §8 locality scheduler routes blocks to workers on their data's
	// NUMA node. On a task-dominated workload whose data is spread over
	// all NUMA nodes, FIFO executes most tasks with cross-socket
	// streams (bottlenecked by the shared UPI) while NUMA-local keeps
	// every stream on its home controller.
	spread := func() *taskrt.App {
		return &taskrt.App{
			Name:         "tune-spread",
			Slice:        func(i int) machine.ComputeSpec { return kernels.CGBlock(1024, 1024, i%4) },
			TasksPerIter: 90,
			Iterations:   2,
		}
	}
	fifo := runOnce(Options{Spec: quietHenri(), Seed: 1, App: spread}, 30)
	local := runOnce(Options{
		Spec: quietHenri(), Seed: 1, App: spread, Scheduler: taskrt.NUMALocal,
	}, 30)
	if local.IterSeconds >= fifo.IterSeconds*0.95 {
		t.Fatalf("NUMA-local scheduling did not help cross-NUMA work: %.4fs → %.4fs",
			fifo.IterSeconds, local.IterSeconds)
	}
}
