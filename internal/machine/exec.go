package machine

import (
	"fmt"

	"repro/internal/fluid"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Buffer is a block of simulated memory pinned to a NUMA node.
type Buffer struct {
	Node *Node
	NUMA int
	Size int64
	// Registered tracks memory registration for RDMA (pin-down cache,
	// Tezuka et al.): the first rendezvous send of a buffer pays the
	// registration cost, recycled buffers do not.
	Registered bool
}

// Alloc allocates a buffer bound to the given NUMA node (the paper's
// explicit numactl-style allocation).
func (n *Node) Alloc(size int64, numa int) *Buffer {
	if size < 0 {
		panic(fmt.Sprintf("machine: negative buffer size %d", size))
	}
	n.NUMA(numa) // range check
	return &Buffer{Node: n, NUMA: numa, Size: size}
}

// AllocFirstTouch allocates a buffer on the NUMA node of the touching
// core (the default Linux policy, relevant for the StarPU study §5.3).
func (n *Node) AllocFirstTouch(size int64, core int) *Buffer {
	return n.Alloc(size, n.Spec.NUMAOfCore(core))
}

// ExecCycles burns a fixed number of CPU cycles on a core at its
// current frequency (software overheads, runtime costs). The caller is
// responsible for the core's active/idle census.
func (n *Node) ExecCycles(p *sim.Proc, core int, cycles float64) {
	if cycles <= 0 {
		return
	}
	n.gateUp(p)
	d := sim.Duration(float64(n.Freq.Cycles(core, cycles)) * n.CoreSlowdown(core))
	n.Counters.AddExec(core, cycles, 0, 0, 0)
	p.Sleep(d)
}

// MemAccesses blocks p for `count` serialized memory accesses from the
// core's NUMA node to memory on NUMA `to`, at the current load-dependent
// access latency. This is the building block of the small-message (PIO)
// software path.
func (n *Node) MemAccesses(p *sim.Proc, core int, to int, count float64) {
	if count <= 0 {
		return
	}
	n.gateUp(p)
	from := n.Spec.NUMAOfCore(core)
	lat := n.AccessLatency(from, to)
	p.Sleep(sim.Duration(float64(lat) * count))
}

// ComputeSpec describes one execution slice of a compute kernel on a
// core, in roofline terms.
type ComputeSpec struct {
	// Flops to retire and Bytes to move from/to memory. Bytes == 0 means
	// a pure CPU-bound slice (no memory traffic at all).
	Flops, Bytes float64
	// Class selects the vector licence and flops/cycle throughput.
	Class topology.VecClass
	// MemNUMA is where the data lives (ignored when Bytes == 0).
	// A negative value means "local to the executing core's NUMA node"
	// (cache-blocked kernels with locality-aware placement, e.g. GEMM
	// tiles).
	MemNUMA int
	// StallExposure scales how much of the memory-wait time the PMU
	// observes as stall cycles (out-of-order overlap hides some of it);
	// 1 exposes everything, 0 hides everything. Zero value defaults to 1.
	// The effective exposure also grows with the crossed controller's
	// utilization: prefetchers hide latency well on a quiet bus and
	// poorly on a saturated one (this is what makes Fig 10's stall
	// fraction rise with the worker count).
	StallExposure float64
	// BaseStallFrac is the kernel-intrinsic stall floor (compulsory
	// cache misses at tile/block boundaries) observed even on an idle
	// memory bus.
	BaseStallFrac float64
	// Name labels the fluid flow for diagnostics.
	Name string
}

// ExecCompute runs one kernel slice on a core, blocking p until it
// completes. It marks the core active for the frequency model, runs the
// slice as a fluid flow (memory-bound slices share controller/link
// bandwidth; all slices are capped by the core's compute ceiling at its
// live frequency), updates the PMU counters, and idles the core again.
//
// Returns the elapsed duration.
func (n *Node) ExecCompute(p *sim.Proc, core int, spec ComputeSpec) sim.Duration {
	if spec.Flops < 0 || spec.Bytes < 0 {
		panic(fmt.Sprintf("machine: negative work %+v", spec))
	}
	if spec.Flops == 0 && spec.Bytes == 0 {
		return 0
	}
	n.gateUp(p)
	exposure := spec.StallExposure
	if exposure == 0 {
		exposure = 1
	}
	name := spec.Name
	if name == "" {
		name = n.computeName(core)
	}
	coreNUMA := n.Spec.NUMAOfCore(core)
	memNUMA := spec.MemNUMA
	if memNUMA < 0 {
		memNUMA = coreNUMA
	}
	n.Freq.SetActive(core, spec.Class)
	defer n.Freq.SetIdle(core)

	start := p.Now()
	done := n.cluster.K.GetSignal()

	rk := &n.coreFlow[core]
	rk.class = spec.Class
	var flow *fluid.Flow
	if spec.Bytes == 0 {
		// Pure CPU: the flow is denominated in flops, capped by the
		// core's flop ceiling (which tracks frequency changes).
		rk.mem = false
		rk.ai = 0
		flow = n.cluster.Fluid.StartFlow(name, spec.Flops, rk.cap(), nil, done.BroadcastFn())
	} else {
		// Roofline: the flow is denominated in bytes; its rate is capped
		// by the compute ceiling translated through the arithmetic
		// intensity, and it shares the memory path fairly.
		rk.mem = true
		rk.ai = spec.Flops / spec.Bytes
		n.addStream(memNUMA)
		defer n.removeStream(memNUMA)
		flow = n.cluster.Fluid.StartFlow(name, spec.Bytes, rk.cap(),
			n.memPath(coreNUMA, memNUMA), done.BroadcastFn())
	}
	rk.flow = flow
	rhoStart := 0.0
	if spec.Bytes > 0 {
		rhoStart = n.NUMA(memNUMA).Ctrl.Utilization()
	}
	done.Wait(p)
	rk.flow = nil
	n.cluster.K.PutSignal(done)
	// Nothing can reach the finished flow any more (the rescaling hooks
	// check rk.flow), so its storage goes back to the model.
	n.cluster.Fluid.Recycle(flow)

	elapsed := p.Now().Sub(start)
	n.accountExec(core, spec, memNUMA, exposure, rhoStart, elapsed)
	return elapsed
}

// computeName returns the cached default flow name of a core's compute
// slice.
func (n *Node) computeName(core int) string {
	if n.computeNames == nil {
		n.computeNames = make([]string, len(n.coreFlow))
	}
	if n.computeNames[core] == "" {
		n.computeNames[core] = fmt.Sprintf("n%d.c%d.compute", n.ID, core)
	}
	return n.computeNames[core]
}

// accountExec updates the PMU model for a completed slice: total busy
// cycles from wall time at the core's frequency, and stalled cycles
// from the gap between the achieved rate and the compute ceiling. The
// observed fraction is the kernel's intrinsic floor plus the exposed
// memory-wait share, weighted by how loaded the crossed controller is
// (an idle bus lets prefetchers hide most of the wait).
func (n *Node) accountExec(core int, spec ComputeSpec, memNUMA int, exposure, rhoStart float64, elapsed sim.Duration) {
	fgHz := n.Freq.CoreGHz(core)
	secs := elapsed.Seconds()
	cycles := secs * fgHz * 1e9
	frac := spec.BaseStallFrac
	if secs > 0 && spec.Bytes > 0 {
		computeSecs := spec.Flops / n.Freq.FlopsRate(core, spec.Class)
		if computeSecs > secs {
			computeSecs = secs
		}
		raw := (secs - computeSecs) / secs
		// Bus utilization during the slice: the worse of the utilization
		// when the stream started (including itself) and the surviving
		// flows plus this slice's own average rate at the end.
		ctrl := n.NUMA(memNUMA).Ctrl
		rho := ctrl.Utilization() + spec.Bytes/secs/ctrl.Capacity()
		if rhoStart > rho {
			rho = rhoStart
		}
		if rho > 1 {
			rho = 1
		}
		frac += exposure * raw * (0.3 + 0.7*rho)
	}
	if frac > 0.95 {
		frac = 0.95
	}
	n.Counters.AddExec(core, cycles, frac*cycles, spec.Flops, spec.Bytes)
}

// BackgroundStream injects a continuous memory traffic flow (e.g. the
// cacheline traffic of polling workers hammering a shared task queue)
// from NUMA `from` to memory on NUMA `to` at the given rate in bytes/s.
// Stop it with the returned cancel function. Background streams do not
// count in the stream census (they model coherence traffic, not
// streaming reads), but they do consume controller bandwidth and raise
// utilization, which feeds the access-latency model.
func (n *Node) BackgroundStream(name string, from, to int, rate float64) (cancel func()) {
	if rate <= 0 {
		return func() {}
	}
	const forever = 1e18 // effectively unbounded work
	flow := n.cluster.Fluid.StartFlow(name, forever, rate, n.memPath(from, to), nil)
	return func() { n.cluster.Fluid.Cancel(flow) }
}
