// Package machine assembles the simulated hardware of a cluster node:
// the topology spec, the frequency model, the fluid bandwidth-sharing
// model for memory controllers / inter-NUMA links / PCIe, NUMA memory
// allocation, load-dependent memory access latency, and the execution
// primitives (cycle burns, roofline compute flows, memory streams) that
// every higher layer builds on.
package machine

import (
	"fmt"

	"repro/internal/counters"
	"repro/internal/fluid"
	"repro/internal/freq"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Cluster is a set of identical nodes sharing one simulation kernel and
// one fluid model (so network flows can cross resources of both ends).
type Cluster struct {
	K     *sim.Kernel
	Fluid *fluid.Model
	Nodes []*Node
	Spec  *topology.NodeSpec
}

// NewCluster builds n nodes of the given spec on a fresh kernel seeded
// with seed. The spec is validated; an invalid spec panics, since every
// experiment would be meaningless.
func NewCluster(spec *topology.NodeSpec, n int, seed int64) *Cluster {
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("machine: invalid spec %q: %v", spec.Name, err))
	}
	k := sim.NewKernel(seed)
	c := &Cluster{K: k, Fluid: fluid.NewModel(k), Spec: spec}
	for i := 0; i < n; i++ {
		c.Nodes = append(c.Nodes, newNode(c, i, spec))
	}
	return c
}

// Reset rewinds an idle cluster to the state NewCluster(spec, n, seed)
// returns, reusing every piece of simulation storage: the kernel (with
// its parked process goroutines), the fluid model (resources keep their
// dense ids and creation order, so solver arithmetic is bit-identical
// to a fresh cluster's), and the nodes. The spec must be reset-
// compatible with the one the cluster was built from (same core, NUMA
// and socket shape — see ShapeKey); capacities and frequency state are
// rebuilt from the new spec. The caller guarantees the cluster is
// quiescent: kernel idle, no live processes, no active flows.
func (c *Cluster) Reset(spec *topology.NodeSpec, seed int64) {
	if err := spec.Validate(); err != nil {
		panic(fmt.Sprintf("machine: invalid spec %q: %v", spec.Name, err))
	}
	c.K.Reset(seed)
	c.Fluid.Reset()
	c.Spec = spec
	for _, n := range c.Nodes {
		n.reset(spec)
	}
}

// ShapeKey summarises the structural parameters that must match for a
// spec to be reset-compatible with an existing cluster: every resource,
// link and per-core slot is keyed by them.
type ShapeKey struct {
	Sockets, NUMAPerSocket, CoresPerNUMA int
}

// Shape returns the cluster's structural key.
func (c *Cluster) Shape() ShapeKey {
	return ShapeKey{c.Spec.Sockets, c.Spec.NUMAPerSocket, c.Spec.CoresPerNUMA}
}

// ShapeOf returns the structural key of a spec.
func ShapeOf(spec *topology.NodeSpec) ShapeKey {
	return ShapeKey{spec.Sockets, spec.NUMAPerSocket, spec.CoresPerNUMA}
}

// reset rewinds one node against a (possibly different but
// shape-compatible) spec: counters, stream census, straggler and crash
// state are cleared, the frequency model restarts from its defaults,
// and every resource capacity is re-derived from spec.
func (n *Node) reset(spec *topology.NodeSpec) {
	n.Spec = spec
	n.Counters.Reset()
	for _, nm := range n.numa {
		nm.streams = 0
	}
	for i := range n.coreFlow {
		n.coreFlow[i].flow = nil
	}
	n.slow = nil
	n.down = false
	// Freq.Reset notifies the node's listener, which re-derives the
	// controller capacities from the new spec and the cleared census.
	n.Freq.Reset(spec)
	n.updateCtrlCapacities()
	for a := 0; a < spec.NUMANodes(); a++ {
		for b := a + 1; b < spec.NUMANodes(); b++ {
			r := n.links[linkKey{a, b}]
			if spec.SocketOfNUMA(a) == spec.SocketOfNUMA(b) {
				n.cluster.Fluid.SetCapacity(r, spec.Mem.MeshGBs*1e9)
			} else {
				n.cluster.Fluid.SetCapacity(r, spec.Mem.LinkGBs*1e9)
			}
		}
	}
	n.cluster.Fluid.SetCapacity(n.PCIeTx, spec.NIC.PCIeGBs*1e9)
	n.cluster.Fluid.SetCapacity(n.PCIeRx, spec.NIC.PCIeGBs*1e9)
}

// linkKey identifies an unordered NUMA pair.
type linkKey struct{ a, b int }

func mkLinkKey(a, b int) linkKey {
	if a > b {
		a, b = b, a
	}
	return linkKey{a, b}
}

// NUMA is one NUMA node: a memory controller plus stream bookkeeping.
type NUMA struct {
	ID      int
	Ctrl    *fluid.Resource
	streams int // concurrent core streams, drives C_eff and DMA priority
}

// Node is one simulated machine.
type Node struct {
	ID       int
	Spec     *topology.NodeSpec
	Freq     *freq.Model
	Counters *counters.Set
	cluster  *Cluster

	numa  []*NUMA
	links map[linkKey]*fluid.Resource
	// PCIeTx and PCIeRx are the outbound and inbound halves of the
	// full-duplex PCIe link between the NIC and the memory system.
	PCIeTx, PCIeRx *fluid.Resource

	// coreFlow tracks the active compute flow per core so frequency
	// changes can rescale its rate cap. One preallocated slot per core;
	// a slot is live while its flow field is non-nil.
	coreFlow []runningKernel

	// computeNames caches the default per-core compute-flow names
	// ("n0.c3.compute"), built lazily so idle cores cost nothing.
	computeNames []string

	// slow holds per-core slowdown multipliers (straggler model: a
	// throttled or faulty core retires work slower by this factor);
	// nil means every core at its nominal speed.
	slow []float64

	// down marks a fail-stopped node (crash fault): every execution
	// primitive entered while down blocks on upSig until recovery.
	// In-flight fluid flows are the fault injector's concern (frozen
	// wires); this flag stops the node's processes at the next slice
	// boundary — the fail-stop granularity of the crash model.
	down  bool
	upSig *sim.Signal

	// pathBuf is the scratch behind memPath: fluid.Start copies its
	// Uses, so the per-slice execution paths build the memory path in
	// place instead of allocating one.
	pathBuf [2]fluid.Use
}

// runningKernel is the bookkeeping for an in-flight compute flow. The
// node keeps one slot per core (see coreFlow), so running a slice
// allocates neither the bookkeeping nor a cap closure: cap is a method
// over the stored roofline parameters.
type runningKernel struct {
	node  *Node
	core  int
	flow  *fluid.Flow // nil when the core runs no slice
	class topology.VecClass
	// Roofline parameters of the current slice: mem says whether the
	// flow is denominated in bytes (memory-bound) or flops (pure CPU);
	// ai is flops/byte for the memory case.
	mem bool
	ai  float64
}

// cap recomputes the flow's rate cap at the core's current frequency
// and straggler slowdown.
func (rk *runningKernel) cap() float64 {
	n := rk.node
	slow := n.CoreSlowdown(rk.core)
	if !rk.mem {
		return n.Freq.FlopsRate(rk.core, rk.class) / slow
	}
	if rk.ai == 0 {
		return n.Spec.Mem.StreamPerCoreGBs * 1e9 / slow
	}
	byteRate := n.Freq.FlopsRate(rk.core, rk.class) / rk.ai
	if limit := n.Spec.Mem.StreamPerCoreGBs * 1e9; byteRate > limit {
		byteRate = limit
	}
	return byteRate / slow
}

func newNode(c *Cluster, id int, spec *topology.NodeSpec) *Node {
	n := &Node{
		ID:       id,
		Spec:     spec,
		Freq:     freq.NewModel(c.K, spec),
		Counters: counters.NewSet(spec.Cores()),
		cluster:  c,
		links:    make(map[linkKey]*fluid.Resource),
		coreFlow: make([]runningKernel, spec.Cores()),
		upSig:    sim.NewSignal(c.K),
	}
	for i := range n.coreFlow {
		n.coreFlow[i].node = n
		n.coreFlow[i].core = i
	}
	for i := 0; i < spec.NUMANodes(); i++ {
		name := fmt.Sprintf("n%d.ctrl%d", id, i)
		// Capacity at current (idle) uncore; updated by the listener.
		n.numa = append(n.numa, &NUMA{ID: i, Ctrl: c.Fluid.NewResource(name, 1)})
	}
	// Intra-socket NUMA pairs (sub-NUMA clustering halves) get private
	// mesh links; every cross-socket pair shares the single UPI/xGMI
	// resource of the socket pair — that is the physical bus computing
	// cores saturate once they spill onto the far socket (Fig 4a).
	upi := make(map[linkKey]*fluid.Resource)
	for a := 0; a < spec.NUMANodes(); a++ {
		for b := a + 1; b < spec.NUMANodes(); b++ {
			sa, sb := spec.SocketOfNUMA(a), spec.SocketOfNUMA(b)
			if sa == sb {
				name := fmt.Sprintf("n%d.mesh%d-%d", id, a, b)
				n.links[linkKey{a, b}] = c.Fluid.NewResource(name, spec.Mem.MeshGBs*1e9)
				continue
			}
			sk := mkLinkKey(sa, sb)
			if upi[sk] == nil {
				name := fmt.Sprintf("n%d.upi%d-%d", id, sa, sb)
				upi[sk] = c.Fluid.NewResource(name, spec.Mem.LinkGBs*1e9)
			}
			n.links[linkKey{a, b}] = upi[sk]
		}
	}
	n.PCIeTx = c.Fluid.NewResource(fmt.Sprintf("n%d.pcie-tx", id), spec.NIC.PCIeGBs*1e9)
	n.PCIeRx = c.Fluid.NewResource(fmt.Sprintf("n%d.pcie-rx", id), spec.NIC.PCIeGBs*1e9)
	n.Freq.OnChange(n.onFreqChange)
	n.updateCtrlCapacities()
	return n
}

// Cluster returns the cluster the node belongs to.
func (n *Node) Cluster() *Cluster { return n.cluster }

// K returns the simulation kernel.
func (n *Node) K() *sim.Kernel { return n.cluster.K }

// NUMA returns NUMA node i.
func (n *Node) NUMA(i int) *NUMA {
	if i < 0 || i >= len(n.numa) {
		panic(fmt.Sprintf("machine: NUMA %d out of range [0,%d)", i, len(n.numa)))
	}
	return n.numa[i]
}

// Link returns the inter-NUMA link between a and b (a != b).
func (n *Node) Link(a, b int) *fluid.Resource {
	if a == b {
		panic("machine: no self-link")
	}
	return n.links[mkLinkKey(a, b)]
}

// onFreqChange rescales uncore-clocked controller capacities and the
// rate caps of running compute flows.
func (n *Node) onFreqChange() {
	n.updateCtrlCapacities()
	for i := range n.coreFlow {
		rk := &n.coreFlow[i]
		if rk.flow != nil && !rk.flow.Finished() {
			n.cluster.Fluid.SetCap(rk.flow, rk.cap())
		}
	}
}

// updateCtrlCapacities applies uncore scaling and multi-stream
// efficiency loss to every controller.
func (n *Node) updateCtrlCapacities() {
	scale := n.Freq.UncoreScale()
	for _, nm := range n.numa {
		eff := 1.0
		if nm.streams > 1 {
			eff = 1 / (1 + n.Spec.Mem.StreamEfficiency*float64(nm.streams-1))
		}
		n.cluster.Fluid.SetCapacity(nm.Ctrl, n.Spec.Mem.CtrlGBs*1e9*scale*eff)
	}
}

// addStream / removeStream maintain the concurrent-stream census that
// drives controller efficiency and DMA arbitration priority.
func (n *Node) addStream(numa int) {
	n.NUMA(numa).streams++
	n.updateCtrlCapacities()
}

func (n *Node) removeStream(numa int) {
	nm := n.NUMA(numa)
	if nm.streams == 0 {
		panic("machine: stream census underflow")
	}
	nm.streams--
	n.updateCtrlCapacities()
}

// Streams returns the current number of core streams on a NUMA node's
// controller.
func (n *Node) Streams(numa int) int { return n.NUMA(numa).streams }

// DMAPriority returns the NIC DMA engine's arbitration priority against
// the current stream census on the crossed controller (DESIGN.md §4).
func (n *Node) DMAPriority(numa int) float64 {
	return n.Spec.NIC.DMAPriority + n.Spec.NIC.DMAPriorityPerStream*float64(n.NUMA(numa).streams)
}

// MemPath returns the fluid resources a memory stream crosses when a
// core (or the NIC) on NUMA `from` accesses memory on NUMA `to`.
func (n *Node) MemPath(from, to int) []fluid.Use {
	uses := []fluid.Use{{Resource: n.NUMA(to).Ctrl, Weight: 1}}
	if from != to {
		uses = append(uses, fluid.Use{Resource: n.Link(from, to), Weight: 1})
	}
	return uses
}

// memPath is MemPath into the node's scratch buffer — only valid until
// the next memPath call, so it must be consumed immediately by
// fluid.Start (which copies its Uses). The exported MemPath keeps
// allocating because callers may retain its result.
func (n *Node) memPath(from, to int) []fluid.Use {
	uses := append(n.pathBuf[:0], fluid.Use{Resource: n.NUMA(to).Ctrl, Weight: 1})
	if from != to {
		uses = append(uses, fluid.Use{Resource: n.Link(from, to), Weight: 1})
	}
	return uses
}

// contentionFactor is the extra latency multiplier contributed by one
// resource at utilization rho: K·rho²/(1−rho), capped.
func (n *Node) contentionFactor(r *fluid.Resource) float64 {
	rho := r.Utilization()
	maxExtra := n.Spec.Mem.ContentionMaxFactor - 1
	if rho >= 1 {
		return maxExtra
	}
	extra := n.Spec.Mem.ContentionK * rho * rho / (1 - rho)
	if extra > maxExtra {
		extra = maxExtra
	}
	return extra
}

// LinkContention returns the extra-latency factor currently contributed
// by queueing on the inter-NUMA link between a and b (0 when a == b or
// the link is idle). Exposed for the PIO path, which crosses the link
// but not the DRAM controller.
func (n *Node) LinkContention(a, b int) float64 {
	if a == b {
		return 0
	}
	return n.contentionFactor(n.Link(a, b))
}

// CtrlContention returns the extra-latency factor currently contributed
// by queueing on a NUMA node's memory controller.
func (n *Node) CtrlContention(numa int) float64 {
	return n.contentionFactor(n.NUMA(numa).Ctrl)
}

// AccessLatency returns the current latency of one memory access from
// NUMA `from` to memory on NUMA `to`: the uncontended local/remote
// latency, scaled by the uncore frequency, inflated by queueing on each
// crossed resource at its current utilization.
func (n *Node) AccessLatency(from, to int) sim.Duration {
	base := n.Spec.Mem.LocalLatencyNs
	if from != to {
		base = n.Spec.Mem.RemoteLatencyNs
	}
	// Uncore frequency scaling (partial: UncoreLatFactor of the path is
	// uncore-clocked).
	f := n.Freq.UncoreGHz()
	base *= 1 + n.Spec.Mem.UncoreLatFactor*(n.Spec.Freq.UncoreMax/f-1)
	// Contention on each crossed resource.
	extra := n.contentionFactor(n.NUMA(to).Ctrl)
	if from != to {
		extra += n.contentionFactor(n.Link(from, to))
	}
	return sim.Duration(base * (1 + extra))
}

// CoreSlowdown returns the straggler multiplier of a core (1 = nominal
// speed). Cycle burns take CoreSlowdown times longer and compute-flow
// rate caps are divided by it.
func (n *Node) CoreSlowdown(core int) float64 {
	if n.slow == nil {
		return 1
	}
	return n.slow[core]
}

// SetCoreSlowdown sets a core's straggler multiplier (≥ some positive
// value; 1 restores nominal speed) and rescales the core's running
// compute flow, mirroring what a frequency change does.
func (n *Node) SetCoreSlowdown(core int, f float64) {
	if f <= 0 {
		panic(fmt.Sprintf("machine: non-positive slowdown %g", f))
	}
	n.Spec.NUMAOfCore(core) // range check
	if n.slow == nil {
		n.slow = make([]float64, n.Spec.Cores())
		for i := range n.slow {
			n.slow[i] = 1
		}
	}
	n.slow[core] = f
	if rk := &n.coreFlow[core]; rk.flow != nil && !rk.flow.Finished() {
		n.cluster.Fluid.SetCap(rk.flow, rk.cap())
	}
}

// SetDown flips the node's crash state. Bringing the node back up wakes
// every process gated on an execution primitive. Safe to call from
// event context (the fault injector's crash/recover transitions).
func (n *Node) SetDown(down bool) {
	if n.down == down {
		return
	}
	n.down = down
	if !down {
		n.upSig.Broadcast()
	}
}

// Down reports whether the node is currently fail-stopped.
func (n *Node) Down() bool { return n.down }

// gateUp blocks p while the node is down. Called at the top of every
// execution primitive: a crashed node's processes stop at the next
// slice boundary and resume only on recovery.
func (n *Node) gateUp(p *sim.Proc) {
	for n.down {
		n.upSig.Wait(p)
	}
}

// Jitter applies multiplicative measurement noise of relative amplitude
// frac to d, drawn from the cluster's deterministic RNG.
func (n *Node) Jitter(d sim.Duration, frac float64) sim.Duration {
	if frac <= 0 {
		return d
	}
	u := n.cluster.K.Rand().Float64()*2 - 1
	out := float64(d) * (1 + frac*u)
	if out < 0 {
		out = 0
	}
	return sim.Duration(out)
}
