package machine

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func henriCluster(t *testing.T) *Cluster {
	t.Helper()
	return NewCluster(topology.Henri(), 2, 1)
}

func TestNewClusterShape(t *testing.T) {
	c := henriCluster(t)
	if len(c.Nodes) != 2 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	n := c.Nodes[0]
	if got := len(n.numa); got != 4 {
		t.Fatalf("NUMA nodes = %d, want 4", got)
	}
	// 4 NUMA nodes → 6 unordered links.
	if got := len(n.links); got != 6 {
		t.Fatalf("links = %d, want 6", got)
	}
	if n.Link(0, 3) != n.Link(3, 0) {
		t.Fatal("link lookup not symmetric")
	}
}

func TestInvalidSpecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid spec accepted")
		}
	}()
	bad := topology.Henri()
	bad.Sockets = 0
	NewCluster(bad, 1, 1)
}

func TestCtrlCapacityTracksUncore(t *testing.T) {
	c := henriCluster(t)
	n := c.Nodes[0]
	idleCap := n.NUMA(0).Ctrl.Capacity()
	// Idle uncore = 1.2 GHz = half of max → half the controller bandwidth.
	want := 50e9 * 0.5
	if math.Abs(idleCap-want) > 1e6 {
		t.Fatalf("idle ctrl capacity %v, want %v", idleCap, want)
	}
	// Activate cores: uncore ramps to max.
	for i := 0; i < 4; i++ {
		n.Freq.SetActive(i, topology.Scalar)
	}
	if got := n.NUMA(0).Ctrl.Capacity(); math.Abs(got-50e9) > 1e6 {
		t.Fatalf("active ctrl capacity %v, want 50e9", got)
	}
}

func TestStreamCensusDegradesCapacity(t *testing.T) {
	c := henriCluster(t)
	n := c.Nodes[0]
	for i := 0; i < 4; i++ {
		n.Freq.SetActive(i, topology.Scalar) // uncore to max
	}
	full := n.NUMA(0).Ctrl.Capacity()
	for i := 0; i < 10; i++ {
		n.addStream(0)
	}
	reduced := n.NUMA(0).Ctrl.Capacity()
	wantEff := 1 / (1 + 0.008*9)
	if math.Abs(reduced/full-wantEff) > 1e-9 {
		t.Fatalf("10-stream efficiency %v, want %v", reduced/full, wantEff)
	}
	for i := 0; i < 10; i++ {
		n.removeStream(0)
	}
	if n.NUMA(0).Ctrl.Capacity() != full {
		t.Fatal("capacity not restored after streams end")
	}
}

func TestStreamCensusUnderflowPanics(t *testing.T) {
	c := henriCluster(t)
	defer func() {
		if recover() == nil {
			t.Fatal("underflow accepted")
		}
	}()
	c.Nodes[0].removeStream(0)
}

func TestDMAPriorityGrowsWithStreams(t *testing.T) {
	c := henriCluster(t)
	n := c.Nodes[0]
	p0 := n.DMAPriority(0)
	if p0 != 1.0 {
		t.Fatalf("idle DMA priority %v, want 1.0", p0)
	}
	for i := 0; i < 35; i++ {
		n.addStream(0)
	}
	p35 := n.DMAPriority(0)
	if math.Abs(p35-(1.0+0.06*35)) > 1e-12 {
		t.Fatalf("35-stream DMA priority %v", p35)
	}
}

func TestMemPathLocalAndRemote(t *testing.T) {
	c := henriCluster(t)
	n := c.Nodes[0]
	local := n.MemPath(1, 1)
	if len(local) != 1 || local[0].Resource != n.NUMA(1).Ctrl {
		t.Fatalf("local path %v", local)
	}
	remote := n.MemPath(1, 3)
	if len(remote) != 2 || remote[0].Resource != n.NUMA(3).Ctrl || remote[1].Resource != n.Link(1, 3) {
		t.Fatalf("remote path %v", remote)
	}
}

func TestAccessLatencyLocalVsRemote(t *testing.T) {
	c := henriCluster(t)
	n := c.Nodes[0]
	// Pin uncore to max so only the local/remote base differs.
	n.Freq.SetUncoreFixed(2.4)
	local := n.AccessLatency(0, 0)
	remote := n.AccessLatency(0, 2)
	if local != sim.Duration(80) {
		t.Fatalf("uncontended local latency %v, want 80ns", local)
	}
	if remote != sim.Duration(150) {
		t.Fatalf("uncontended remote latency %v, want 150ns", remote)
	}
}

func TestAccessLatencyUncoreScaling(t *testing.T) {
	c := henriCluster(t)
	n := c.Nodes[0]
	n.Freq.SetUncoreFixed(1.2)
	// UncoreLatFactor 0.25, ratio max/f = 2 → base × 1.25.
	if got := n.AccessLatency(0, 0); got != sim.Duration(100) {
		t.Fatalf("low-uncore local latency %v, want 100ns", got)
	}
}

func TestAccessLatencyInflatesUnderContention(t *testing.T) {
	c := henriCluster(t)
	n := c.Nodes[0]
	n.Freq.SetUncoreFixed(2.4)
	quiet := n.AccessLatency(3, 0)
	// Saturate NUMA 0's controller.
	var cancels []func()
	for i := 0; i < 20; i++ {
		cancels = append(cancels, n.BackgroundStream("hog", 0, 0, 5e9))
	}
	loaded := n.AccessLatency(3, 0)
	if loaded <= quiet {
		t.Fatalf("latency under load %v not above quiet %v", loaded, quiet)
	}
	// Capped at ContentionMaxFactor per resource (plus the idle link).
	max := sim.Duration(float64(quiet) * (1 + 2*(3.0-1)))
	if loaded > max {
		t.Fatalf("latency %v beyond cap %v", loaded, max)
	}
	for _, cancel := range cancels {
		cancel()
	}
	if got := n.AccessLatency(3, 0); got != quiet {
		t.Fatalf("latency %v after cancel, want %v", got, quiet)
	}
}

func TestExecCyclesDuration(t *testing.T) {
	c := henriCluster(t)
	n := c.Nodes[0]
	n.Freq.SetUserspace(2.3)
	var d sim.Duration
	c.K.Spawn("t", func(p *sim.Proc) {
		start := p.Now()
		n.ExecCycles(p, 0, 2300)
		d = p.Now().Sub(start)
	})
	c.K.Run()
	if d != sim.Duration(sim.Microsecond) {
		t.Fatalf("2300 cycles at 2.3GHz took %v, want 1us", d)
	}
}

func TestExecComputePureCPUBound(t *testing.T) {
	c := henriCluster(t)
	n := c.Nodes[0]
	var d sim.Duration
	c.K.Spawn("t", func(p *sim.Proc) {
		// 1e9 flops scalar at 2.5 GHz × 4 flops/cycle = 10 Gflop/s → 0.1 s.
		d = n.ExecCompute(p, 0, ComputeSpec{Flops: 1e9, Class: topology.Scalar})
	})
	c.K.Run()
	if math.Abs(d.Seconds()-0.1) > 1e-6 {
		t.Fatalf("CPU-bound slice took %v, want 0.1s", d)
	}
	// No memory traffic → no stalls.
	if st := n.Counters.StallFraction(); st != 0 {
		t.Fatalf("stall fraction %v for pure CPU work", st)
	}
}

func TestExecComputeMemoryBound(t *testing.T) {
	c := henriCluster(t)
	n := c.Nodes[0]
	var d sim.Duration
	c.K.Spawn("t", func(p *sim.Proc) {
		// AI = 0.125 flop/B: deeply memory-bound. Rate = min(12 GB/s
		// per-core cap, ctrl) → 12 GB/s. 1.2e9 bytes → 0.1 s.
		d = n.ExecCompute(p, 0, ComputeSpec{
			Flops: 0.15e9, Bytes: 1.2e9, Class: topology.Scalar, MemNUMA: 0,
		})
	})
	c.K.Run()
	if math.Abs(d.Seconds()-0.1) > 1e-3 {
		t.Fatalf("memory-bound slice took %v, want ~0.1s", d)
	}
	if st := n.Counters.StallFraction(); st < 0.3 {
		t.Fatalf("stall fraction %v, want substantial for memory-bound work", st)
	}
}

func TestExecComputeContendedSharesController(t *testing.T) {
	c := henriCluster(t)
	n := c.Nodes[0]
	const streams = 8
	durs := make([]sim.Duration, streams)
	for i := 0; i < streams; i++ {
		i := i
		c.K.Spawn("stream", func(p *sim.Proc) {
			durs[i] = n.ExecCompute(p, i, ComputeSpec{
				Flops: 1, Bytes: 1.2e9, Class: topology.Scalar, MemNUMA: 0,
			})
		})
	}
	c.K.Run()
	// 8 streams × 12 GB/s demand = 96 > 50 GB/s controller (minus the
	// efficiency loss): each gets ~6 GB/s → ~0.2 s.
	for i, d := range durs {
		if d.Seconds() < 0.15 {
			t.Fatalf("stream %d took %v; contention not applied", i, d)
		}
	}
	if c.K.LiveProcs() != 0 {
		t.Fatal("leaked procs")
	}
}

func TestExecComputeIdlesCoreAfter(t *testing.T) {
	c := henriCluster(t)
	n := c.Nodes[0]
	c.K.Spawn("t", func(p *sim.Proc) {
		n.ExecCompute(p, 0, ComputeSpec{Flops: 1e6, Class: topology.AVX512})
	})
	c.K.Run()
	if n.Freq.ActiveCores() != 0 {
		t.Fatalf("%d cores still active", n.Freq.ActiveCores())
	}
	if n.Freq.CoreGHz(0) != 1.0 {
		t.Fatalf("core 0 at %v after kernel, want idle 1.0", n.Freq.CoreGHz(0))
	}
}

func TestFrequencyChangeRescalesRunningFlow(t *testing.T) {
	c := henriCluster(t)
	n := c.Nodes[0]
	n.Freq.SetUserspace(2.3)
	var d sim.Duration
	c.K.Spawn("t", func(p *sim.Proc) {
		// 0.92e9 flops at 2.3GHz×4 = 9.2 Gflop/s → would take 0.1 s.
		d = n.ExecCompute(p, 0, ComputeSpec{Flops: 0.92e9, Class: topology.Scalar})
	})
	// Halfway through, drop the frequency to 1.0 GHz: remaining 0.46e9
	// flops at 4 Gflop/s take 0.115 s → total 0.165 s.
	c.K.At(sim.Time(50*sim.Millisecond), func() { n.Freq.SetUserspace(1.0) })
	c.K.Run()
	if math.Abs(d.Seconds()-0.165) > 1e-3 {
		t.Fatalf("rescaled kernel took %v, want 0.165s", d)
	}
}

func TestAllocPolicies(t *testing.T) {
	c := henriCluster(t)
	n := c.Nodes[0]
	b := n.Alloc(1<<20, 2)
	if b.NUMA != 2 || b.Size != 1<<20 {
		t.Fatalf("Alloc: %+v", b)
	}
	ft := n.AllocFirstTouch(4096, 17) // core 17 is on NUMA 1
	if ft.NUMA != 1 {
		t.Fatalf("first-touch NUMA %d, want 1", ft.NUMA)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative size accepted")
		}
	}()
	n.Alloc(-1, 0)
}

func TestJitterBoundsAndDeterminism(t *testing.T) {
	c := henriCluster(t)
	n := c.Nodes[0]
	base := sim.Duration(1000)
	for i := 0; i < 100; i++ {
		j := n.Jitter(base, 0.1)
		if j < 900 || j > 1100 {
			t.Fatalf("jitter %v outside ±10%%", j)
		}
	}
	if n.Jitter(base, 0) != base {
		t.Fatal("zero-frac jitter changed value")
	}
}

func TestMemAccessesBlocksProportionally(t *testing.T) {
	c := henriCluster(t)
	n := c.Nodes[0]
	n.Freq.SetUncoreFixed(2.4)
	var d sim.Duration
	c.K.Spawn("t", func(p *sim.Proc) {
		start := p.Now()
		n.MemAccesses(p, 0, 0, 4) // 4 local accesses at 80 ns
		d = p.Now().Sub(start)
	})
	c.K.Run()
	if d != sim.Duration(320) {
		t.Fatalf("4 local accesses took %v, want 320ns", d)
	}
}

func TestExecComputeWorkerLocalData(t *testing.T) {
	// MemNUMA = -1 resolves to the executing core's NUMA node: a core on
	// NUMA 2 must stream through its own controller only.
	c := henriCluster(t)
	n := c.Nodes[0]
	c.K.Spawn("w", func(p *sim.Proc) {
		n.ExecCompute(p, 20, ComputeSpec{ // core 20 is on NUMA 2
			Flops: 1, Bytes: 1e8, Class: topology.AVX2, MemNUMA: -1,
		})
	})
	ran := false
	c.K.At(sim.Time(sim.Millisecond), func() {
		ran = true
		if got := n.Streams(2); got != 1 {
			t.Errorf("stream census on NUMA 2 = %d, want 1", got)
		}
		if got := n.Streams(0); got != 0 {
			t.Errorf("stream census on NUMA 0 = %d, want 0", got)
		}
		if u := n.Link(2, 0).Utilization(); u != 0 {
			t.Errorf("cross link utilization %v, want 0 for local stream", u)
		}
	})
	c.K.Run()
	if !ran {
		t.Fatal("probe did not run")
	}
}
