// Package trace renders experiment series as CSV and aligned ASCII
// tables, the output formats of the benchmark harness (cmd/interference
// writes the same rows the paper's figures plot).
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rectangular result set with named columns.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates an empty table with the given title and columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row, formatting each cell with %v (floats with %.4g).
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case float32:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	if len(row) != len(t.Columns) {
		panic(fmt.Sprintf("trace: row has %d cells, table has %d columns", len(row), len(t.Columns)))
	}
	t.Rows = append(t.Rows, row)
}

// WriteCSV emits the table as CSV (RFC-4180-style quoting for cells
// containing commas or quotes).
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// WriteASCII emits the table with aligned columns and a title rule,
// readable on a terminal.
func (t *Table) WriteASCII(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title + "\n")
		b.WriteString(strings.Repeat("=", len(t.Title)) + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c + strings.Repeat(" ", widths[i]-len(c)))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the ASCII form.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.WriteASCII(&b); err != nil {
		return fmt.Sprintf("trace: %v", err)
	}
	return b.String()
}
