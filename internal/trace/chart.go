package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Chart renders one or more numeric series as an ASCII line chart, so
// the harness can show a figure's *shape* directly in the terminal
// (medians only; the tables carry the full data).
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// Width and Height are the plot area size in characters; zero
	// values default to 64×16.
	Width, Height int
	// LogX plots the x axis in log scale (message-size sweeps).
	LogX bool

	xs     []float64
	series []chartSeries
}

type chartSeries struct {
	name   string
	marker byte
	ys     []float64
}

// markers cycles through per-series point markers.
var markers = []byte{'*', 'o', '+', 'x', '#', '@'}

// NewChart creates a chart over the given x positions.
func NewChart(title string, xs []float64) *Chart {
	return &Chart{Title: title, Width: 64, Height: 16, xs: xs}
}

// AddSeries appends a named series; ys must align with the chart's xs.
func (c *Chart) AddSeries(name string, ys []float64) *Chart {
	if len(ys) != len(c.xs) {
		panic(fmt.Sprintf("trace: series %q has %d points, chart has %d", name, len(ys), len(c.xs)))
	}
	c.series = append(c.series, chartSeries{
		name:   name,
		marker: markers[len(c.series)%len(markers)],
		ys:     ys,
	})
	return c
}

// Render writes the chart to w.
func (c *Chart) Render(w io.Writer) error {
	if len(c.xs) == 0 || len(c.series) == 0 {
		_, err := io.WriteString(w, c.Title+" (no data)\n")
		return err
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 64
	}
	if height <= 0 {
		height = 16
	}

	xpos := make([]float64, len(c.xs))
	copy(xpos, c.xs)
	if c.LogX {
		for i, x := range xpos {
			if x <= 0 {
				x = 1e-12
			}
			xpos[i] = math.Log(x)
		}
	}
	xmin, xmax := minMax(xpos)
	var ymin, ymax = math.Inf(1), math.Inf(-1)
	for _, s := range c.series {
		lo, hi := minMax(s.ys)
		ymin = math.Min(ymin, lo)
		ymax = math.Max(ymax, hi)
	}
	if ymin == ymax {
		ymin, ymax = ymin-1, ymax+1
	}
	if xmin == xmax {
		xmin, xmax = xmin-1, xmax+1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		f := (x - xmin) / (xmax - xmin)
		p := int(f * float64(width-1))
		return clampInt(p, 0, width-1)
	}
	row := func(y float64) int {
		f := (y - ymin) / (ymax - ymin)
		p := int(f * float64(height-1))
		return clampInt(height-1-p, 0, height-1)
	}
	for _, s := range c.series {
		// Connect consecutive points with linear interpolation so the
		// shape reads as a curve, then overlay the point markers.
		for i := 1; i < len(xpos); i++ {
			c0, r0 := col(xpos[i-1]), row(s.ys[i-1])
			c1, r1 := col(xpos[i]), row(s.ys[i])
			steps := absInt(c1-c0) + absInt(r1-r0)
			for t := 0; t <= steps; t++ {
				f := 0.0
				if steps > 0 {
					f = float64(t) / float64(steps)
				}
				cc := c0 + int(f*float64(c1-c0)+0.5)
				rr := r0 + int(f*float64(r1-r0)+0.5)
				if grid[rr][cc] == ' ' {
					grid[rr][cc] = '.'
				}
			}
		}
		for i := range xpos {
			grid[row(s.ys[i])][col(xpos[i])] = s.marker
		}
	}

	var b strings.Builder
	if c.Title != "" {
		b.WriteString(c.Title + "\n")
	}
	yfmt := func(v float64) string { return fmt.Sprintf("%9.3g", v) }
	for r, line := range grid {
		label := strings.Repeat(" ", 9)
		switch r {
		case 0:
			label = yfmt(ymax)
		case height - 1:
			label = yfmt(ymin)
		case (height - 1) / 2:
			label = yfmt((ymin + ymax) / 2)
		}
		b.WriteString(label + " |" + string(line) + "\n")
	}
	b.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", width) + "\n")
	xl, xr := c.xs[0], c.xs[len(c.xs)-1]
	axis := fmt.Sprintf("%-12.4g", xl)
	pad := width - len(axis) + 12 - len(fmt.Sprintf("%.4g", xr))
	if pad < 1 {
		pad = 1
	}
	b.WriteString(strings.Repeat(" ", 10) + axis + strings.Repeat(" ", pad) + fmt.Sprintf("%.4g", xr) + "\n")
	if c.XLabel != "" || c.YLabel != "" {
		b.WriteString(fmt.Sprintf("%12s x: %s   y: %s\n", "", c.XLabel, c.YLabel))
	}
	for _, s := range c.series {
		b.WriteString(fmt.Sprintf("%12s %c %s\n", "", s.marker, s.name))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the chart.
func (c *Chart) String() string {
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		return fmt.Sprintf("trace: %v", err)
	}
	return b.String()
}

func minMax(xs []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	return lo, hi
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
