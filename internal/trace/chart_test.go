package trace

import (
	"strings"
	"testing"
)

func TestChartRendersAllSeriesMarkers(t *testing.T) {
	ch := NewChart("demo", []float64{1, 2, 3, 4})
	ch.AddSeries("up", []float64{1, 2, 3, 4})
	ch.AddSeries("down", []float64{4, 3, 2, 1})
	out := ch.String()
	if !strings.Contains(out, "demo") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("missing series markers:\n%s", out)
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Fatalf("missing legend:\n%s", out)
	}
}

func TestChartShapeTopBottom(t *testing.T) {
	ch := NewChart("", []float64{0, 1})
	ch.Width, ch.Height = 20, 5
	ch.AddSeries("rise", []float64{0, 10})
	lines := strings.Split(strings.TrimRight(ch.String(), "\n"), "\n")
	// First plot row holds the max (right end), last plot row the min
	// (left end).
	if !strings.Contains(lines[0], "*") {
		t.Fatalf("max not on top row:\n%s", ch)
	}
	if !strings.HasPrefix(strings.TrimSpace(lines[0]), "10") {
		t.Fatalf("top label not ymax:\n%s", lines[0])
	}
}

func TestChartLogXHandlesWideRanges(t *testing.T) {
	xs := []float64{4, 4096, 4 << 20}
	ch := NewChart("sizes", xs)
	ch.LogX = true
	ch.AddSeries("lat", []float64{1, 2, 100})
	out := ch.String()
	if len(out) == 0 || !strings.Contains(out, "sizes") {
		t.Fatal("log-x chart failed to render")
	}
}

func TestChartFlatSeriesDoesNotDivideByZero(t *testing.T) {
	ch := NewChart("flat", []float64{1, 2, 3})
	ch.AddSeries("const", []float64{5, 5, 5})
	if out := ch.String(); !strings.Contains(out, "*") {
		t.Fatalf("flat series missing:\n%s", out)
	}
}

func TestChartEmpty(t *testing.T) {
	ch := NewChart("empty", nil)
	if !strings.Contains(ch.String(), "no data") {
		t.Fatal("empty chart should say so")
	}
}

func TestChartMismatchedSeriesPanics(t *testing.T) {
	ch := NewChart("bad", []float64{1, 2})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched series accepted")
		}
	}()
	ch.AddSeries("short", []float64{1})
}
