package trace

import (
	"fmt"
	"strings"
)

// UnifiedDiff compares two rendered outputs line by line and returns a
// unified diff (the `diff -u` format: ---/+++ headers, @@ hunks with
// three lines of context). It returns "" when the inputs are equal.
// The golden-file verification of cmd/interference and the regression
// tests use it to report exactly which table rows drifted.
func UnifiedDiff(wantName, gotName, want, got string) string {
	if want == got {
		return ""
	}
	a := splitLines(want)
	b := splitLines(got)
	ops := diffOps(a, b)

	const context = 3
	var out strings.Builder
	fmt.Fprintf(&out, "--- %s\n+++ %s\n", wantName, gotName)
	for h := 0; h < len(ops); {
		// Skip runs of equal lines between hunks.
		if ops[h].kind == opEqual {
			h++
			continue
		}
		// Grow the hunk: from the first change, extend until `context`
		// equal lines separate it from the next change.
		start := h
		end := h
		for i := h; i < len(ops); i++ {
			if ops[i].kind != opEqual {
				end = i
			} else if i-end > 2*context {
				break
			}
		}
		first := max(0, start-context)
		last := min(len(ops), end+1+context)

		aStart, bStart := ops[first].aLine, ops[first].bLine
		var aCount, bCount int
		var body strings.Builder
		for _, op := range ops[first:last] {
			switch op.kind {
			case opEqual:
				body.WriteString(" " + op.text + "\n")
				aCount++
				bCount++
			case opDelete:
				body.WriteString("-" + op.text + "\n")
				aCount++
			case opInsert:
				body.WriteString("+" + op.text + "\n")
				bCount++
			}
		}
		fmt.Fprintf(&out, "@@ -%d,%d +%d,%d @@\n", aStart+1, aCount, bStart+1, bCount)
		out.WriteString(body.String())
		h = last
	}
	return out.String()
}

type opKind int

const (
	opEqual opKind = iota
	opDelete
	opInsert
)

// diffOp is one line of the edit script, tagged with the 0-based line
// numbers it starts at in each input.
type diffOp struct {
	kind         opKind
	text         string
	aLine, bLine int
}

// diffOps computes a line-level edit script via the classic LCS dynamic
// program. Rendered tables are at most a few thousand lines, so the
// quadratic table is far from being a bottleneck.
func diffOps(a, b []string) []diffOp {
	n, m := len(a), len(b)
	// lcs[i][j] = length of the LCS of a[i:] and b[j:].
	lcs := make([][]int32, n+1)
	for i := range lcs {
		lcs[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if a[i] == b[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}
	var ops []diffOp
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case a[i] == b[j]:
			ops = append(ops, diffOp{opEqual, a[i], i, j})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			ops = append(ops, diffOp{opDelete, a[i], i, j})
			i++
		default:
			ops = append(ops, diffOp{opInsert, b[j], i, j})
			j++
		}
	}
	for ; i < n; i++ {
		ops = append(ops, diffOp{opDelete, a[i], i, j})
	}
	for ; j < m; j++ {
		ops = append(ops, diffOp{opInsert, b[j], i, j})
	}
	return ops
}

// splitLines splits on '\n' without manufacturing a trailing empty
// line for newline-terminated input.
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}
