package trace

import (
	"strings"
	"testing"
)

func TestTableCSV(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Add(1, 2.5)
	tb.Add("x,y", `q"u`)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2.5\n\"x,y\",\"q\"\"u\"\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestTableASCIIAligned(t *testing.T) {
	tb := NewTable("Demo", "col", "value")
	tb.Add("x", 1.0)
	tb.Add("longer", 2.0)
	out := tb.String()
	if !strings.Contains(out, "Demo\n====") {
		t.Fatalf("missing title rule:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + rule + 2 rows + title/rule = 6 lines.
	if len(lines) != 6 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Aligned: all data lines have the same column offset for "value".
	if !strings.HasPrefix(lines[2], "col   ") {
		t.Fatalf("header misaligned: %q", lines[2])
	}
}

func TestAddWrongArityPanics(t *testing.T) {
	tb := NewTable("t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong arity accepted")
		}
	}()
	tb.Add(1)
}

func TestFloatFormatting(t *testing.T) {
	tb := NewTable("", "v")
	tb.Add(10.123456)
	if tb.Rows[0][0] != "10.12" {
		t.Fatalf("float formatted as %q", tb.Rows[0][0])
	}
	tb.Add(float32(2.0))
	if tb.Rows[1][0] != "2" {
		t.Fatalf("float32 formatted as %q", tb.Rows[1][0])
	}
}
