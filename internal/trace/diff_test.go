package trace

import (
	"strings"
	"testing"
)

func TestUnifiedDiffEqual(t *testing.T) {
	s := "a\nb\nc\n"
	if d := UnifiedDiff("want", "got", s, s); d != "" {
		t.Fatalf("diff of equal inputs:\n%s", d)
	}
	if d := UnifiedDiff("want", "got", "", ""); d != "" {
		t.Fatalf("diff of empty inputs:\n%s", d)
	}
}

func TestUnifiedDiffSingleChange(t *testing.T) {
	want := "a\nb\nc\nd\ne\nf\ng\nh\ni\nj\n"
	got := "a\nb\nc\nd\nE\nf\ng\nh\ni\nj\n"
	expect := strings.Join([]string{
		"--- want",
		"+++ got",
		"@@ -2,7 +2,7 @@",
		" b",
		" c",
		" d",
		"-e",
		"+E",
		" f",
		" g",
		" h",
		"",
	}, "\n")
	if d := UnifiedDiff("want", "got", want, got); d != expect {
		t.Fatalf("diff mismatch:\ngot:\n%s\nexpect:\n%s", d, expect)
	}
}

func TestUnifiedDiffInsertDelete(t *testing.T) {
	want := "1\n2\n3\n"
	got := "1\n3\n4\n"
	d := UnifiedDiff("want", "got", want, got)
	for _, line := range []string{"-2", "+4", " 1", " 3"} {
		if !strings.Contains(d, line+"\n") {
			t.Fatalf("diff missing %q:\n%s", line, d)
		}
	}
}

func TestUnifiedDiffSeparateHunks(t *testing.T) {
	// Two changes separated by far more than 2×context must produce two
	// hunks; adjacent changes a single one.
	var a, b []string
	for i := 0; i < 30; i++ {
		a = append(a, "line")
		b = append(b, "line")
	}
	b[0] = "first"
	b[29] = "last"
	d := UnifiedDiff("want", "got", strings.Join(a, "\n")+"\n", strings.Join(b, "\n")+"\n")
	if n := strings.Count(d, "@@ -"); n != 2 {
		t.Fatalf("want 2 hunks, got %d:\n%s", n, d)
	}
	if !strings.Contains(d, "+first\n") || !strings.Contains(d, "+last\n") {
		t.Fatalf("hunks missing changes:\n%s", d)
	}
}

func TestUnifiedDiffNoTrailingNewline(t *testing.T) {
	d := UnifiedDiff("want", "got", "a\nb", "a\nc")
	if !strings.Contains(d, "-b\n") || !strings.Contains(d, "+c\n") {
		t.Fatalf("diff of non-terminated input:\n%s", d)
	}
}
