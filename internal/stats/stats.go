// Package stats provides the summary statistics used throughout the
// paper's plots: medians for the curves and first/last deciles for the
// shaded background areas (§2.1).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary condenses a sample of measurements.
type Summary struct {
	N      int
	Median float64
	P10    float64 // first decile
	P90    float64 // last decile
	Mean   float64
	Min    float64
	Max    float64
}

// Summarize computes the summary of xs. An empty sample yields a zero
// Summary. The input is left untouched (it is copied before sorting);
// hot paths that own their sample and are done with it should call
// SummarizeInPlace instead and skip the copy.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return SummarizeInPlace(append([]float64(nil), xs...))
}

// SummarizeInPlace computes the summary of xs, sorting xs itself
// instead of a copy. The caller must own xs and tolerate its
// reordering — the usual shape is a measurement accumulator that is
// summarised once and discarded, where Summarize's per-call copy is
// pure allocation overhead.
func SummarizeInPlace(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sort.Float64s(xs)
	var sum float64
	for _, v := range xs {
		sum += v
	}
	return Summary{
		N:      len(xs),
		Median: Quantile(xs, 0.5),
		P10:    Quantile(xs, 0.1),
		P90:    Quantile(xs, 0.9),
		Mean:   sum / float64(len(xs)),
		Min:    xs[0],
		Max:    xs[len(xs)-1],
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the *sorted* sample,
// with linear interpolation between order statistics.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	switch {
	case n == 0:
		return math.NaN()
	case n == 1:
		return sorted[0]
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return sorted[n-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median is a convenience over Summarize for a single statistic.
func Median(xs []float64) float64 { return Summarize(xs).Median }

// String renders the summary in "median [p10–p90]" form.
func (s Summary) String() string {
	return fmt.Sprintf("%.4g [%.4g–%.4g] (n=%d)", s.Median, s.P10, s.P90, s.N)
}

// RelSpread returns (P90−P10)/Median, the relative width of the decile
// band — the paper's visual proxy for run-to-run deviation (wide on
// Omni-Path, narrow on InfiniBand). Returns 0 for a zero median.
func (s Summary) RelSpread() float64 {
	if s.Median == 0 {
		return 0
	}
	return (s.P90 - s.P10) / s.Median
}
