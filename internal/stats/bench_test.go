package stats

import (
	"math/rand"
	"testing"
)

// benchSamples builds a deterministic unsorted sample set the size of a
// typical sweep-point accumulator (runs × iterations).
func benchSamples(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	return xs
}

// BenchmarkSummarize measures the copying entry point: one allocation
// per call (the defensive copy of the input).
func BenchmarkSummarize(b *testing.B) {
	xs := benchSamples(90)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Summarize(xs)
	}
}

// BenchmarkSummarizeInPlace measures the zero-copy entry point used by
// the sweep drivers on their preallocated accumulators: it must not
// allocate at all.
func BenchmarkSummarizeInPlace(b *testing.B) {
	xs := benchSamples(90)
	scratch := make([]float64, len(xs))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Re-shuffle cost is just a copy; SummarizeInPlace sorts scratch.
		copy(scratch, xs)
		SummarizeInPlace(scratch)
	}
}
