package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{5, 1, 4, 2, 3})
	if s.N != 5 || s.Median != 3 || s.Min != 1 || s.Max != 5 || s.Mean != 3 {
		t.Fatalf("summary %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Median != 0 {
		t.Fatalf("empty summary %+v", s)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	for _, tc := range []struct{ q, want float64 }{
		{0, 0}, {0.25, 2.5}, {0.5, 5}, {1, 10}, {-1, 0}, {2, 10},
	} {
		if got := Quantile(sorted, tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Fatalf("singleton quantile %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestDecilesOfUniformRamp(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.P10 != 10 || s.P90 != 90 || s.Median != 50 {
		t.Fatalf("ramp deciles %+v", s)
	}
}

func TestRelSpread(t *testing.T) {
	s := Summary{Median: 100, P10: 90, P90: 110}
	if got := s.RelSpread(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("RelSpread %v", got)
	}
	if (Summary{}).RelSpread() != 0 {
		t.Fatal("zero-median RelSpread not 0")
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

// Properties: median is within [min,max]; quantiles are monotone in q.
func TestPropertySummaryInvariants(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		if s.Median < s.Min || s.Median > s.Max {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(sorted, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
