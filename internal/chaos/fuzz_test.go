package chaos

import "testing"

// FuzzChaosParseSpec: ParseSpec never panics, and every schedule it
// accepts renders to a spec that re-parses to the same rendering.
func FuzzChaosParseSpec(f *testing.F) {
	f.Add("refuse:p=0.3")
	f.Add("http:status=502,match=/cache/;latency:p=0.5,delay=50ms")
	f.Add("eio-write:ops=1-4,match=journal;torn:ops=3-3")
	f.Add("enospc:p=0.2,match=.tmp-;fsync")
	f.Add(";;")
	f.Add("truncate:p=")
	f.Fuzz(func(t *testing.T, spec string) {
		s, err := ParseSpec(spec)
		if err != nil {
			return
		}
		rendered := s.String()
		back, err := ParseSpec(rendered)
		if err != nil {
			t.Fatalf("rendering %q of accepted spec %q does not re-parse: %v", rendered, spec, err)
		}
		if back.String() != rendered {
			t.Fatalf("rendering unstable: %q -> %q", rendered, back.String())
		}
	})
}
