package chaos

import (
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
)

// FS is the slice of the filesystem the runner's durability layers use
// (point cache, journal, campaign state log). The production
// implementation passes straight through to the os package; Flaky wraps
// any FS with injected EIO/ENOSPC/torn-write/fsync faults so tests and
// drills can exercise every degradation path deterministically.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
}

// File is the writable-file slice of FS consumers' needs.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
	Name() string
}

// OS returns the pass-through filesystem.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (osFS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }

func (osFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

// Flaky wraps a filesystem with fault injection: reads, writes and
// fsyncs consult the injector (labelled "read:<base>", "write:<label>",
// "sync:<label>") and fail with realistic errors when the schedule says
// so. Torn writes persist half the buffer before failing — the on-disk
// state of a process killed mid-append — so recovery paths see real
// corruption, not just error returns. Rename, remove, mkdir and
// truncate pass through untouched (the cache's atomic-rename protocol
// corrupts through torn temp-file writes, never through rename).
func Flaky(base FS, inj *Injector) FS {
	return &flakyFS{base: base, inj: inj}
}

type flakyFS struct {
	base FS
	inj  *Injector
}

// label names a file stably across temp directories: temp files are
// labelled by their creation pattern (so every ".tmp-*" cache write
// shares one decision sequence), everything else by base name.
func label(name string) string { return filepath.Base(name) }

func (f *flakyFS) MkdirAll(path string, perm fs.FileMode) error { return f.base.MkdirAll(path, perm) }

// ReadDir passes through: directory listings are metadata (the cache's
// segment discovery); content faults are injected on the files.
func (f *flakyFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.base.ReadDir(name) }
func (f *flakyFS) Rename(oldpath, newpath string) error         { return f.base.Rename(oldpath, newpath) }
func (f *flakyFS) Remove(name string) error                     { return f.base.Remove(name) }
func (f *flakyFS) Truncate(name string, size int64) error       { return f.base.Truncate(name, size) }

func (f *flakyFS) ReadFile(name string) ([]byte, error) {
	if ev, ok := f.inj.Decide(OpRead, "read:"+label(name)); ok && ev.Kind == ReadErr {
		return nil, &fs.PathError{Op: "read", Path: name, Err: syscall.EIO}
	}
	return f.base.ReadFile(name)
}

func (f *flakyFS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: file, inj: f.inj, label: label(name)}, nil
}

func (f *flakyFS) CreateTemp(dir, pattern string) (File, error) {
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &flakyFile{File: file, inj: f.inj, label: pattern}, nil
}

// flakyFile injects write/sync faults into one open file.
type flakyFile struct {
	File
	inj   *Injector
	label string
}

func (f *flakyFile) Write(p []byte) (int, error) {
	ev, ok := f.inj.Decide(OpWrite, "write:"+f.label)
	if !ok {
		return f.File.Write(p)
	}
	switch ev.Kind {
	case WriteErr:
		return 0, &fs.PathError{Op: "write", Path: f.Name(), Err: syscall.EIO}
	case NoSpace:
		return 0, &fs.PathError{Op: "write", Path: f.Name(), Err: syscall.ENOSPC}
	case TornWrite:
		// Persist half the buffer, then fail: the caller sees an error,
		// the disk keeps a torn record.
		n, _ := f.File.Write(p[:len(p)/2])
		return n, &fs.PathError{Op: "write", Path: f.Name(), Err: syscall.EIO}
	}
	return f.File.Write(p)
}

func (f *flakyFile) Sync() error {
	if ev, ok := f.inj.Decide(OpSync, "sync:"+f.label); ok && ev.Kind == SyncErr {
		return &fs.PathError{Op: "sync", Path: f.Name(), Err: syscall.EIO}
	}
	return f.File.Sync()
}
