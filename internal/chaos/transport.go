package chaos

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"syscall"
)

// Transport is an instrumented http.RoundTripper: every round trip
// consults the injector (labelled "METHOD host/path") and may be
// refused outright, answered with a synthetic 5xx, delayed, or have its
// response body truncated mid-stream. Wrap any HTTP client's transport
// with it to chaos-test the client's retry, verification and fallback
// paths against a healthy server.
type Transport struct {
	// Base performs the real round trips; nil means
	// http.DefaultTransport.
	Base http.RoundTripper
	// Inj decides the faults; nil injects nothing.
	Inj *Injector
	// Clock sleeps Latency events; nil means the real clock.
	Clock Clock
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	label := req.Method + " " + req.URL.Host + req.URL.Path
	ev, ok := t.Inj.Decide(OpHTTP, label)
	if !ok {
		return t.base().RoundTrip(req)
	}
	switch ev.Kind {
	case Refuse:
		// Shaped like a real dial failure so callers' transient-error
		// classification treats it exactly like a down daemon.
		return nil, &net.OpError{Op: "dial", Net: "tcp", Err: syscall.ECONNREFUSED}
	case HTTPError:
		body := fmt.Sprintf("chaos: injected %d\n", ev.Status)
		resp := &http.Response{
			Status:        strconv.Itoa(ev.Status) + " " + http.StatusText(ev.Status),
			StatusCode:    ev.Status,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}
		if ev.Status == http.StatusServiceUnavailable {
			resp.Header.Set("Retry-After", "1")
		}
		return resp, nil
	case Latency:
		clock := t.Clock
		if clock == nil {
			clock = Real()
		}
		clock.Sleep(ev.Delay)
		return t.base().RoundTrip(req)
	case Truncate:
		resp, err := t.base().RoundTrip(req)
		if err != nil || resp.Body == nil {
			return resp, err
		}
		resp.Body = &truncatedBody{base: resp.Body, remaining: truncateAt(resp.ContentLength)}
		return resp, nil
	}
	return t.base().RoundTrip(req)
}

// truncateAt picks how many bytes of a body to deliver before the cut:
// half of a known length, a small prefix of an unknown one.
func truncateAt(contentLength int64) int64 {
	if contentLength > 1 {
		return contentLength / 2
	}
	return 16
}

// truncatedBody delivers a prefix of the real body and then fails with
// io.ErrUnexpectedEOF — the reader-visible shape of a connection cut
// mid-transfer.
type truncatedBody struct {
	base      io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.base.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		// The real body ended before the cut; keep the EOF honest.
		return n, io.EOF
	}
	if b.remaining <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.base.Close() }
