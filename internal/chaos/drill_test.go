package chaos

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestReplicaDrillKillReviveKillAfter(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer ts.Close()
	host := strings.TrimPrefix(ts.URL, "http://")
	d := NewReplicaDrill()
	client := &http.Client{Transport: d}

	get := func() error {
		resp, err := client.Get(ts.URL + "/x")
		if err != nil {
			return err
		}
		resp.Body.Close()
		return nil
	}

	if err := get(); err != nil {
		t.Fatalf("alive replica refused: %v", err)
	}
	d.Kill(host)
	if err := get(); err == nil {
		t.Fatal("killed replica answered")
	} else if !strings.Contains(err.Error(), "connection refused") {
		t.Fatalf("kill shape = %v, want a refused connection", err)
	}
	if d.Refused() != 1 {
		t.Fatalf("Refused = %d, want 1", d.Refused())
	}
	d.Revive(host)
	if err := get(); err != nil {
		t.Fatalf("revived replica refused: %v", err)
	}

	// KillAfter(2): two more answers, then the host is down.
	d.KillAfter(host, 2)
	for i := 0; i < 2; i++ {
		if err := get(); err != nil {
			t.Fatalf("request %d before the armed kill refused: %v", i+1, err)
		}
	}
	if err := get(); err == nil {
		t.Fatal("armed kill never fired")
	}

	// Other hosts are untouched by a kill.
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer other.Close()
	if resp, err := client.Get(other.URL); err != nil {
		t.Fatalf("surviving replica refused: %v", err)
	} else {
		resp.Body.Close()
	}
}
