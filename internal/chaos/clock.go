package chaos

import (
	"sync"
	"time"
)

// Clock abstracts wall-clock waiting so backoff loops, latency
// injection and drain polling can run against a fake clock in tests:
// a chaos shutdown test advances time explicitly instead of sleeping.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
	After(d time.Duration) <-chan time.Time
}

// Real returns the system clock.
func Real() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) Sleep(d time.Duration)                  { time.Sleep(d) }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// FakeClock is a manually advanced clock. Sleep and After block until
// Advance moves the clock past their deadline; a zero or negative
// duration completes immediately. Safe for concurrent use.
type FakeClock struct {
	mu      sync.Mutex
	now     time.Time
	waiters []*fakeWaiter
}

type fakeWaiter struct {
	deadline time.Time
	ch       chan time.Time
}

// NewFakeClock starts a fake clock at a fixed, arbitrary instant.
func NewFakeClock() *FakeClock {
	return &FakeClock{now: time.Date(2030, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *FakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *FakeClock) Sleep(d time.Duration) { <-f.After(d) }

func (f *FakeClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	f.mu.Lock()
	defer f.mu.Unlock()
	if d <= 0 {
		ch <- f.now
		return ch
	}
	f.waiters = append(f.waiters, &fakeWaiter{deadline: f.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward and releases every waiter whose
// deadline has passed.
func (f *FakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	now := f.now
	var keep []*fakeWaiter
	var fire []*fakeWaiter
	for _, w := range f.waiters {
		if !w.deadline.After(now) {
			fire = append(fire, w)
		} else {
			keep = append(keep, w)
		}
	}
	f.waiters = keep
	f.mu.Unlock()
	for _, w := range fire {
		w.ch <- now
	}
}

// Waiters reports how many Sleep/After calls are currently blocked —
// tests use it to know when the code under test has reached its wait.
func (f *FakeClock) Waiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.waiters)
}
