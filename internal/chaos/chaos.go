// Package chaos implements deterministic fault injection for the
// service's *real* I/O — the mirror image of internal/fault, which
// injects faults into the simulated cluster. A seeded Schedule DSL
// describes transport faults (connection refusals, 5xx bursts, latency
// spikes, truncated bodies) and filesystem faults (EIO, ENOSPC, torn
// writes, fsync failures); an Injector decides, purely as a function of
// (seed, operation label, per-label sequence number), which operations
// fail. The decision stream for any label is therefore reproducible
// from the seed alone, independent of goroutine interleaving across
// labels — exactly the discipline the simulation's fault layer already
// follows, applied to the daemon's disk and network edges.
//
// The package only provides the schedule, the injector and two
// instrumented shims (an http.RoundTripper and a filesystem); the
// layers above consume it: the runner's point cache and journal write
// through a chaos.FS, and the remote-cache client dials through a
// chaos.Transport. Production wiring uses the pass-through OS
// filesystem and a nil injector, which cost nothing.
package chaos

import (
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable real-I/O fault types.
type Kind int

const (
	// Refuse fails an HTTP round trip with a connection-refused error
	// before anything touches the network.
	Refuse Kind = iota
	// HTTPError answers an HTTP round trip with a synthetic error
	// status (default 503) without touching the network.
	HTTPError
	// Latency delays an HTTP round trip by Delay before performing it.
	Latency
	// Truncate performs the HTTP round trip but cuts the response body
	// short (transport corruption a digest check must catch).
	Truncate
	// ReadErr fails a filesystem read with EIO.
	ReadErr
	// WriteErr fails a filesystem write with EIO (nothing is written).
	WriteErr
	// NoSpace fails a filesystem write with ENOSPC (nothing is written).
	NoSpace
	// TornWrite persists only the first half of a filesystem write and
	// then fails — the on-disk signature of a crash mid-append.
	TornWrite
	// SyncErr fails an fsync.
	SyncErr
)

var kindNames = map[Kind]string{
	Refuse:    "refuse",
	HTTPError: "http",
	Latency:   "latency",
	Truncate:  "truncate",
	ReadErr:   "eio-read",
	WriteErr:  "eio-write",
	NoSpace:   "enospc",
	TornWrite: "torn",
	SyncErr:   "fsync",
}

func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Op classifies one instrumented operation; events only apply to their
// own class (an ENOSPC cannot fail an HTTP GET).
type Op int

const (
	OpHTTP Op = iota
	OpRead
	OpWrite
	OpSync
)

func (k Kind) op() Op {
	switch k {
	case Refuse, HTTPError, Latency, Truncate:
		return OpHTTP
	case ReadErr:
		return OpRead
	case WriteErr, NoSpace, TornWrite:
		return OpWrite
	case SyncErr:
		return OpSync
	}
	return OpHTTP
}

// Event is one scheduled fault class.
type Event struct {
	Kind Kind
	// P is the per-operation fault probability in [0,1]; parsed
	// schedules default it to 1 (every matching operation in the
	// window faults).
	P float64
	// From/To restrict the event to a window of per-label operation
	// sequence numbers (1-based, inclusive). 0/0 means every
	// operation; From=0 means "from the first"; To=0 means "forever".
	From, To int64
	// Match restricts the event to operation labels containing this
	// substring ("" matches every label). Transport labels look like
	// "GET host/path"; filesystem labels like "write:journal.jsonl".
	Match string
	// Status is the synthetic response code of an HTTPError event.
	Status int
	// Delay is the injected latency of a Latency event.
	Delay time.Duration
}

// validate checks one event's fields.
func (e Event) validate() error {
	if e.P < 0 || e.P > 1 {
		return fmt.Errorf("chaos: %s probability %g outside [0,1]", e.Kind, e.P)
	}
	if e.From < 0 || e.To < 0 {
		return fmt.Errorf("chaos: %s event with negative ops window", e.Kind)
	}
	if e.From > 0 && e.To > 0 && e.To < e.From {
		return fmt.Errorf("chaos: %s ops window %d-%d is empty", e.Kind, e.From, e.To)
	}
	switch e.Kind {
	case HTTPError:
		if e.Status < 400 || e.Status > 599 {
			return fmt.Errorf("chaos: http status %d outside [400,599]", e.Status)
		}
	case Latency:
		if e.Delay <= 0 {
			return fmt.Errorf("chaos: latency event needs delay>0")
		}
	case Refuse, Truncate, ReadErr, WriteErr, NoSpace, TornWrite, SyncErr:
	default:
		return fmt.Errorf("chaos: unknown event kind %d", int(e.Kind))
	}
	return nil
}

// window reports whether the event covers per-label sequence number n.
func (e Event) window(n int64) bool {
	if e.From > 0 && n < e.From {
		return false
	}
	if e.To > 0 && n > e.To {
		return false
	}
	return true
}

// Schedule is an immutable set of chaos events, matched in order (the
// first applicable event decides an operation's fate). A nil *Schedule
// means "no chaos".
type Schedule struct {
	Events []Event
}

// Validate checks every event of the schedule.
func (s *Schedule) Validate() error {
	for i, e := range s.Events {
		if err := e.validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	return nil
}

// String renders the schedule in the ParseSpec syntax.
func (s *Schedule) String() string {
	var parts []string
	for _, e := range s.Events {
		var kv []string
		if e.P != 1 {
			kv = append(kv, fmt.Sprintf("p=%g", e.P))
		}
		if e.From > 0 || e.To > 0 {
			kv = append(kv, fmt.Sprintf("ops=%d-%d", e.From, e.To))
		}
		if e.Kind == HTTPError && e.Status != 503 {
			kv = append(kv, fmt.Sprintf("status=%d", e.Status))
		}
		if e.Kind == Latency {
			kv = append(kv, fmt.Sprintf("delay=%s", e.Delay))
		}
		if e.Match != "" {
			kv = append(kv, "match="+e.Match)
		}
		part := e.Kind.String()
		if len(kv) > 0 {
			part += ":" + strings.Join(kv, ",")
		}
		parts = append(parts, part)
	}
	return strings.Join(parts, ";")
}

// ParseSpec parses a compact chaos-schedule spec: semicolon-separated
// events of the form kind:key=value,key=value (the same shape as
// fault.ParseSpec, aimed at real I/O instead of the simulation).
// Examples:
//
//	refuse:p=0.3                        refuse 30% of round trips
//	http:status=503,ops=1-20            503 burst on the first 20 requests
//	latency:delay=50ms,p=0.5            half the round trips take 50ms extra
//	truncate:p=0.2,match=/cache/        truncate 20% of cache responses
//	eio-read:p=0.3,match=.json          30% of cache-entry reads fail
//	eio-write:ops=1-4,match=journal     first 4 journal appends fail
//	enospc:p=0.2,match=.tmp-            disk-full on 20% of cache writes
//	torn:ops=3-3,match=journal          the 3rd journal append tears
//	fsync:p=1                           every fsync fails
//
// p defaults to 1; ops windows are 1-based inclusive per operation
// label; match is a substring filter on the label.
func ParseSpec(spec string) (*Schedule, error) {
	s := &Schedule{}
	for _, part := range strings.Split(spec, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kindStr, args, _ := strings.Cut(part, ":")
		var kind Kind = -1
		for k, name := range kindNames {
			if name == kindStr {
				kind = k
			}
		}
		if kind < 0 {
			return nil, fmt.Errorf("chaos: unknown event kind %q (have refuse, http, latency, truncate, eio-read, eio-write, enospc, torn, fsync)", kindStr)
		}
		e := Event{Kind: kind, P: 1, Status: 503}
		if args != "" {
			for _, kv := range strings.Split(args, ",") {
				key, val, ok := strings.Cut(kv, "=")
				if !ok {
					return nil, fmt.Errorf("chaos: %s: malformed option %q (want key=value)", kindStr, kv)
				}
				if err := e.setOption(key, val); err != nil {
					return nil, err
				}
			}
		}
		if err := e.validate(); err != nil {
			return nil, err
		}
		s.Events = append(s.Events, e)
	}
	if len(s.Events) == 0 {
		return nil, errors.New("chaos: empty schedule spec")
	}
	return s, nil
}

// setOption applies one key=value option to the event.
func (e *Event) setOption(key, val string) error {
	switch key {
	case "p":
		if _, err := fmt.Sscanf(val, "%g", &e.P); err != nil {
			return fmt.Errorf("chaos: bad probability %q", val)
		}
		return nil
	case "ops":
		from, to, ok := strings.Cut(val, "-")
		if !ok {
			return fmt.Errorf("chaos: ops %q not of the form from-to", val)
		}
		if _, err := fmt.Sscanf(from, "%d", &e.From); err != nil {
			return fmt.Errorf("chaos: bad ops window %q", val)
		}
		if _, err := fmt.Sscanf(to, "%d", &e.To); err != nil {
			return fmt.Errorf("chaos: bad ops window %q", val)
		}
		return nil
	case "status":
		if _, err := fmt.Sscanf(val, "%d", &e.Status); err != nil {
			return fmt.Errorf("chaos: bad status %q", val)
		}
		return nil
	case "delay":
		d, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("chaos: bad delay %q: %v", val, err)
		}
		e.Delay = d
		return nil
	case "match":
		e.Match = val
		return nil
	}
	return fmt.Errorf("chaos: unknown option %q for %s", key, e.Kind)
}

// Injector decides which instrumented operations fail, deterministically
// from the seed. Each operation label (e.g. "write:journal.jsonl",
// "GET host/cache/ab12…") carries its own sequence counter, and a fault
// decision is a pure function of (seed, event index, label, sequence
// number) — so the outcome stream per label is independent of how
// operations on *different* labels interleave, and a failing run is
// reproducible from its seed.
//
// A nil *Injector injects nothing and is safe to use everywhere.
type Injector struct {
	seed  int64
	sched *Schedule

	mu  sync.Mutex
	seq map[string]int64

	ops      atomic.Int64
	injected atomic.Int64
	byKind   [SyncErr + 1]atomic.Int64
}

// NewInjector binds a schedule to a seed. A nil schedule yields an
// injector that never faults (but still counts operations).
func NewInjector(seed int64, sched *Schedule) *Injector {
	return &Injector{seed: seed, sched: sched, seq: make(map[string]int64)}
}

// Seed returns the injector's seed (printed by harnesses so a failing
// chaos run can be reproduced exactly).
func (in *Injector) Seed() int64 { return in.seed }

// Ops returns how many operations consulted the injector.
func (in *Injector) Ops() int64 {
	if in == nil {
		return 0
	}
	return in.ops.Load()
}

// Injected returns how many faults were injected in total.
func (in *Injector) Injected() int64 {
	if in == nil {
		return 0
	}
	return in.injected.Load()
}

// InjectedKind returns how many faults of one kind were injected.
func (in *Injector) InjectedKind(k Kind) int64 {
	if in == nil || k < 0 || int(k) >= len(in.byKind) {
		return 0
	}
	return in.byKind[k].Load()
}

// next returns the 1-based sequence number of this operation on its
// label.
func (in *Injector) next(label string) int64 {
	in.mu.Lock()
	in.seq[label]++
	n := in.seq[label]
	in.mu.Unlock()
	return n
}

// Decide consults the schedule for one operation: the first event whose
// class, label match, ops window and probability draw all apply wins.
// ok=false means the operation proceeds unharmed.
func (in *Injector) Decide(op Op, label string) (Event, bool) {
	if in == nil || in.sched == nil || len(in.sched.Events) == 0 {
		return Event{}, false
	}
	in.ops.Add(1)
	n := in.next(label)
	for i, e := range in.sched.Events {
		if e.Kind.op() != op {
			continue
		}
		if e.Match != "" && !strings.Contains(label, e.Match) {
			continue
		}
		if !e.window(n) {
			continue
		}
		if e.P < 1 && hash01(in.seed, i, label, n) >= e.P {
			continue
		}
		in.injected.Add(1)
		in.byKind[e.Kind].Add(1)
		return e, true
	}
	return Event{}, false
}

// hash01 maps (seed, event, label, n) to a uniform float64 in [0,1).
func hash01(seed int64, event int, label string, n int64) float64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	put(uint64(seed))
	put(uint64(event))
	h.Write([]byte(label))
	put(uint64(n))
	// 53 mantissa bits of the 64-bit hash → exact float64 in [0,1).
	return float64(h.Sum64()>>11) / float64(uint64(1)<<53)
}
