package chaos

import (
	"errors"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"syscall"
	"testing"
	"time"
)

func mustParse(t *testing.T, spec string) *Schedule {
	t.Helper()
	s, err := ParseSpec(spec)
	if err != nil {
		t.Fatalf("ParseSpec(%q): %v", spec, err)
	}
	return s
}

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"refuse:p=0.3",
		"http:ops=1-20",
		"http:status=502,match=/cache/",
		"latency:p=0.5,delay=50ms",
		"truncate:p=0.2,match=/cache/",
		"eio-read:p=0.3,match=.json",
		"eio-write:ops=1-4,match=journal",
		"enospc:p=0.2,match=.tmp-",
		"torn:ops=3-3,match=journal",
		"fsync",
	}
	for _, spec := range specs {
		s := mustParse(t, spec)
		back, err := ParseSpec(s.String())
		if err != nil {
			t.Fatalf("re-parsing %q (rendered %q): %v", spec, s.String(), err)
		}
		if back.String() != s.String() {
			t.Errorf("%q: render not stable: %q vs %q", spec, s.String(), back.String())
		}
	}
}

func TestParseSpecRejects(t *testing.T) {
	cases := []string{
		"",
		"explode:p=1",
		"refuse:p=2",
		"refuse:p=-0.1",
		"http:status=200",
		"latency",           // needs delay
		"latency:delay=-1s", // not positive
		"torn:ops=5-2",      // empty window
		"torn:ops=x-y",
		"refuse:p",
		"refuse:wat=1",
	}
	for _, spec := range cases {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted", spec)
		}
	}
}

// TestInjectorDeterminism: the decision stream for a label is a pure
// function of the seed — two injectors with the same seed agree
// decision-by-decision; a different seed diverges somewhere.
func TestInjectorDeterminism(t *testing.T) {
	sched := mustParse(t, "eio-write:p=0.4;fsync:p=0.3")
	run := func(seed int64) []bool {
		in := NewInjector(seed, sched)
		var out []bool
		for i := 0; i < 200; i++ {
			_, ok := in.Decide(OpWrite, "write:journal.jsonl")
			out = append(out, ok)
		}
		return out
	}
	a, b, c := run(7), run(7), run(8)
	same := true
	diverged := false
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
		if a[i] != c[i] {
			diverged = true
		}
	}
	if !same {
		t.Fatal("same seed produced different decision streams")
	}
	if !diverged {
		t.Fatal("different seeds produced identical 200-op streams (suspicious hash)")
	}
	in := NewInjector(7, sched)
	for i := 0; i < 200; i++ {
		in.Decide(OpWrite, "write:journal.jsonl")
	}
	if got := in.Injected(); got == 0 || got == 200 {
		t.Fatalf("p=0.4 over 200 ops injected %d faults", got)
	}
	if in.Ops() != 200 {
		t.Fatalf("ops counter %d, want 200", in.Ops())
	}
}

// TestInjectorLabelIndependence: interleaving operations on another
// label must not shift a label's decision stream — that is what makes
// concurrent chaos runs reproducible.
func TestInjectorLabelIndependence(t *testing.T) {
	sched := mustParse(t, "eio-read:p=0.5")
	solo := NewInjector(3, sched)
	var want []bool
	for i := 0; i < 64; i++ {
		_, ok := solo.Decide(OpRead, "read:a")
		want = append(want, ok)
	}
	mixed := NewInjector(3, sched)
	var got []bool
	for i := 0; i < 64; i++ {
		mixed.Decide(OpRead, "read:noise")
		_, ok := mixed.Decide(OpRead, "read:a")
		got = append(got, ok)
		mixed.Decide(OpRead, "read:other-noise")
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("decision %d for read:a changed when other labels interleaved", i)
		}
	}
}

func TestInjectorWindowAndMatch(t *testing.T) {
	sched := mustParse(t, "eio-write:ops=2-3,match=journal")
	in := NewInjector(1, sched)
	var hits []int
	for i := 1; i <= 5; i++ {
		if _, ok := in.Decide(OpWrite, "write:journal.jsonl"); ok {
			hits = append(hits, i)
		}
	}
	if len(hits) != 2 || hits[0] != 2 || hits[1] != 3 {
		t.Fatalf("ops=2-3 window hit %v, want [2 3]", hits)
	}
	if _, ok := in.Decide(OpWrite, "write:other.txt"); ok {
		t.Fatal("match=journal hit an unrelated label")
	}
	if _, ok := in.Decide(OpRead, "read:journal.jsonl"); ok {
		t.Fatal("a write event hit a read operation")
	}
	if got := in.InjectedKind(WriteErr); got != 2 {
		t.Fatalf("InjectedKind(WriteErr) = %d, want 2", got)
	}
}

// TestNilInjector: a nil injector is inert at every call site.
func TestNilInjector(t *testing.T) {
	var in *Injector
	if _, ok := in.Decide(OpHTTP, "GET x"); ok {
		t.Fatal("nil injector injected a fault")
	}
	if in.Ops() != 0 || in.Injected() != 0 || in.InjectedKind(Refuse) != 0 {
		t.Fatal("nil injector counters not zero")
	}
}

// TestFlakyFS: each fault kind surfaces with its realistic errno, and
// torn writes leave real partial bytes on disk.
func TestFlakyFS(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")

	t.Run("eio-read", func(t *testing.T) {
		fsys := Flaky(OS(), NewInjector(1, mustParse(t, "eio-read:ops=1-1")))
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := fsys.ReadFile(path); !errors.Is(err, syscall.EIO) {
			t.Fatalf("first read err = %v, want EIO", err)
		}
		if b, err := fsys.ReadFile(path); err != nil || string(b) != "x" {
			t.Fatalf("second read = %q, %v", b, err)
		}
	})

	t.Run("enospc-then-torn", func(t *testing.T) {
		p2 := filepath.Join(dir, "log2")
		fsys := Flaky(OS(), NewInjector(1, mustParse(t, "enospc:ops=1-1;torn:ops=2-2")))
		f, err := fsys.OpenFile(p2, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if n, err := f.Write([]byte("abcdef")); n != 0 || !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("first write: n=%d err=%v, want 0, ENOSPC", n, err)
		}
		n, err := f.Write([]byte("abcdef"))
		if n != 3 || !errors.Is(err, syscall.EIO) {
			t.Fatalf("torn write: n=%d err=%v, want 3, EIO", n, err)
		}
		if n, err := f.Write([]byte("ghi")); n != 3 || err != nil {
			t.Fatalf("healthy write after faults: n=%d err=%v", n, err)
		}
		b, err := os.ReadFile(p2)
		if err != nil || string(b) != "abcghi" {
			t.Fatalf("on-disk bytes %q, want %q (torn prefix + healthy write)", b, "abcghi")
		}
	})

	t.Run("fsync", func(t *testing.T) {
		p3 := filepath.Join(dir, "log3")
		fsys := Flaky(OS(), NewInjector(1, mustParse(t, "fsync:ops=1-1")))
		f, err := fsys.OpenFile(p3, os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := f.Sync(); !errors.Is(err, syscall.EIO) {
			t.Fatalf("first sync err = %v, want EIO", err)
		}
		if err := f.Sync(); err != nil {
			t.Fatalf("second sync err = %v", err)
		}
	})

	t.Run("temp-label", func(t *testing.T) {
		in := NewInjector(1, mustParse(t, "eio-write:ops=1-1,match=.tmp-"))
		fsys := Flaky(OS(), in)
		f, err := fsys.CreateTemp(dir, ".tmp-*")
		if err != nil {
			t.Fatal(err)
		}
		defer os.Remove(f.Name())
		defer f.Close()
		if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
			t.Fatalf("temp write err = %v, want EIO via the pattern label", err)
		}
	})

	// A PathError everywhere, so os.IsNotExist-style checks stay sane.
	fsys := Flaky(OS(), NewInjector(1, mustParse(t, "eio-read:ops=1-1")))
	_, err := fsys.ReadFile(path)
	var pe *fs.PathError
	if !errors.As(err, &pe) {
		t.Fatalf("injected error %T is not a *fs.PathError", err)
	}
	if os.IsNotExist(err) {
		t.Fatal("EIO must not look like absence")
	}
}

// TestTransportFaults: each transport fault kind behaves like its
// real-world counterpart against a healthy test server.
func TestTransportFaults(t *testing.T) {
	const payload = "0123456789abcdef0123456789abcdef"
	upstream := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer upstream.Close()

	get := func(c *http.Client) (int, string, error) {
		resp, err := c.Get(upstream.URL + "/cache/abc")
		if err != nil {
			return 0, "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b), err
	}

	t.Run("refuse", func(t *testing.T) {
		in := NewInjector(1, mustParse(t, "refuse:ops=1-1"))
		c := &http.Client{Transport: &Transport{Inj: in}}
		if _, _, err := get(c); !errors.Is(err, syscall.ECONNREFUSED) {
			t.Fatalf("first request err = %v, want ECONNREFUSED", err)
		}
		if code, body, err := get(c); err != nil || code != 200 || body != payload {
			t.Fatalf("second request: %d %q %v", code, body, err)
		}
	})

	t.Run("http-status", func(t *testing.T) {
		in := NewInjector(1, mustParse(t, "http:ops=1-2,status=503"))
		c := &http.Client{Transport: &Transport{Inj: in}}
		resp, err := c.Get(upstream.URL + "/cache/abc")
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 503 {
			t.Fatalf("injected 503: got %d", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("injected 503 has no Retry-After")
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if code, _, err := get(c); err != nil || code != 503 {
			t.Fatalf("second op in the 1-2 burst: %d %v", code, err)
		}
		if code, body, err := get(c); err != nil || code != 200 || body != payload {
			t.Fatalf("post-burst request: %d %q %v", code, body, err)
		}
	})

	t.Run("truncate", func(t *testing.T) {
		in := NewInjector(1, mustParse(t, "truncate:ops=1-1"))
		c := &http.Client{Transport: &Transport{Inj: in}}
		_, body, err := get(c)
		if err == nil && len(body) >= len(payload) {
			t.Fatalf("truncated response delivered %d bytes intact", len(body))
		}
		if len(body) >= len(payload) {
			t.Fatalf("truncated body %q not shorter than %d", body, len(payload))
		}
	})

	t.Run("latency", func(t *testing.T) {
		clock := NewFakeClock()
		in := NewInjector(1, mustParse(t, "latency:ops=1-1,delay=1h"))
		c := &http.Client{Transport: &Transport{Inj: in, Clock: clock}}
		done := make(chan error, 1)
		go func() {
			_, _, err := get(c)
			done <- err
		}()
		for clock.Waiters() == 0 {
			time.Sleep(time.Millisecond)
		}
		select {
		case <-done:
			t.Fatal("request completed before the injected hour elapsed")
		default:
		}
		clock.Advance(time.Hour)
		if err := <-done; err != nil {
			t.Fatalf("request after latency: %v", err)
		}
	})
}

func TestFakeClock(t *testing.T) {
	f := NewFakeClock()
	start := f.Now()
	var wg sync.WaitGroup
	woke := make(chan time.Duration, 2)
	for _, d := range []time.Duration{time.Second, time.Minute} {
		d := d
		wg.Add(1)
		go func() {
			defer wg.Done()
			f.Sleep(d)
			woke <- d
		}()
	}
	for f.Waiters() != 2 {
		time.Sleep(time.Millisecond)
	}
	f.Advance(time.Second)
	if d := <-woke; d != time.Second {
		t.Fatalf("first waiter to wake slept %v", d)
	}
	if f.Waiters() != 1 {
		t.Fatalf("%d waiters after advancing 1s", f.Waiters())
	}
	f.Advance(time.Minute)
	wg.Wait()
	if got := f.Now().Sub(start); got != time.Second+time.Minute {
		t.Fatalf("clock advanced %v", got)
	}
	// Zero-duration sleeps return immediately, no Advance needed.
	donec := f.After(0)
	select {
	case <-donec:
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}
