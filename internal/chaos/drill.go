package chaos

import (
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"syscall"
)

// ReplicaDrill is an http.RoundTripper that simulates killing one
// replica of a fleet: every request whose URL host matches a killed
// host fails with ECONNREFUSED — the exact shape a SIGKILLed daemon
// leaves behind — while traffic to the survivors passes through
// untouched. Unlike the probabilistic Injector faults, the drill is a
// switch: Kill drops a replica mid-storm, Revive brings it back, and
// KillAfter arms a delayed kill that fires on the n-th request to the
// host, so a test can take a replica down at a precise point in the
// traffic rather than at a wall-clock instant.
type ReplicaDrill struct {
	// Base performs the real round trips; nil means
	// http.DefaultTransport.
	Base http.RoundTripper

	mu    sync.Mutex
	dead  map[string]bool
	armed map[string]int64 // remaining requests until the kill fires

	refused atomic.Int64 // requests refused against killed hosts
}

// NewReplicaDrill builds a drill with every replica alive.
func NewReplicaDrill() *ReplicaDrill {
	return &ReplicaDrill{dead: map[string]bool{}, armed: map[string]int64{}}
}

// Kill takes a replica down: requests to host (as it appears in the
// URL, e.g. "127.0.0.1:7077") are refused until Revive.
func (d *ReplicaDrill) Kill(host string) {
	d.mu.Lock()
	d.dead[host] = true
	delete(d.armed, host)
	d.mu.Unlock()
}

// Revive brings a replica back.
func (d *ReplicaDrill) Revive(host string) {
	d.mu.Lock()
	delete(d.dead, host)
	delete(d.armed, host)
	d.mu.Unlock()
}

// KillAfter arms a delayed kill: the host dies when it has served n
// more requests through this transport (n <= 0 kills immediately).
// This pins the failure to a position in the request stream — "die
// mid-campaign" — which a timer cannot express deterministically.
func (d *ReplicaDrill) KillAfter(host string, n int) {
	if n <= 0 {
		d.Kill(host)
		return
	}
	d.mu.Lock()
	d.armed[host] = int64(n)
	d.mu.Unlock()
}

// Refused counts requests refused against killed hosts.
func (d *ReplicaDrill) Refused() int64 { return d.refused.Load() }

func (d *ReplicaDrill) base() http.RoundTripper {
	if d.Base != nil {
		return d.Base
	}
	return http.DefaultTransport
}

func (d *ReplicaDrill) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	d.mu.Lock()
	lastBreath := false
	if n, ok := d.armed[host]; ok {
		if n <= 1 {
			delete(d.armed, host)
			d.dead[host] = true
			// This request is the n-th: it still passes, the next is
			// refused — the daemon died right after answering.
			lastBreath = true
		} else {
			d.armed[host] = n - 1
		}
	}
	dead := d.dead[host] && !lastBreath
	d.mu.Unlock()
	if dead {
		d.refused.Add(1)
		return nil, &net.OpError{Op: "dial", Net: "tcp", Addr: nil,
			Err: syscall.ECONNREFUSED}
	}
	return d.base().RoundTrip(req)
}
