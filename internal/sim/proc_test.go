package sim

import "testing"

func TestProcSleepAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	var woke Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(2 * Microsecond)
		woke = p.Now()
	})
	k.Run()
	if woke != Time(2*Microsecond) {
		t.Fatalf("woke at %v, want 2us", woke)
	}
	if k.LiveProcs() != 0 {
		t.Fatalf("%d live procs after Run", k.LiveProcs())
	}
}

func TestProcsInterleaveDeterministically(t *testing.T) {
	k := NewKernel(1)
	var got []string
	for _, name := range []string{"a", "b"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			for i := 0; i < 3; i++ {
				got = append(got, name)
				p.Sleep(10)
			}
		})
	}
	k.Run()
	want := []string{"a", "b", "a", "b", "a", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interleaving %v, want %v", got, want)
		}
	}
}

func TestSignalWakesFIFO(t *testing.T) {
	k := NewKernel(1)
	s := NewSignal(k)
	var got []string
	for _, name := range []string{"first", "second"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			s.Wait(p)
			got = append(got, name)
		})
	}
	k.Spawn("waker", func(p *Proc) {
		p.Sleep(100)
		if s.Waiters() != 2 {
			t.Errorf("waiters = %d, want 2", s.Waiters())
		}
		s.Signal()
		p.Sleep(100)
		s.Signal()
	})
	k.Run()
	if len(got) != 2 || got[0] != "first" || got[1] != "second" {
		t.Fatalf("wake order %v", got)
	}
}

func TestSignalBroadcast(t *testing.T) {
	k := NewKernel(1)
	s := NewSignal(k)
	n := 0
	for i := 0; i < 5; i++ {
		k.Spawn("w", func(p *Proc) {
			s.Wait(p)
			n++
		})
	}
	k.Spawn("b", func(p *Proc) {
		p.Sleep(10)
		s.Broadcast()
	})
	k.Run()
	if n != 5 {
		t.Fatalf("broadcast woke %d of 5", n)
	}
}

func TestDeadlockedProcIsReported(t *testing.T) {
	k := NewKernel(1)
	s := NewSignal(k)
	k.Spawn("stuck", func(p *Proc) { s.Wait(p) })
	k.Run()
	if k.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d, want 1 (deadlocked)", k.LiveProcs())
	}
	// Unstick it so the goroutine exits cleanly.
	s.Broadcast()
	k.Run()
	if k.LiveProcs() != 0 {
		t.Fatal("proc still live after broadcast")
	}
}

func TestProcPanicPropagates(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("boom", func(p *Proc) { panic("boom") })
	defer func() {
		if recover() == nil {
			t.Error("panic in proc did not propagate to Run")
		}
	}()
	k.Run()
}

func TestQueueBlocksUntilPush(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	var got int
	var at Time
	k.Spawn("consumer", func(p *Proc) {
		got = q.Pop(p)
		at = p.Now()
	})
	k.Spawn("producer", func(p *Proc) {
		p.Sleep(500)
		q.Push(7)
	})
	k.Run()
	if got != 7 || at != 500 {
		t.Fatalf("got %d at %v, want 7 at 500", got, at)
	}
}

func TestQueueFIFOAndTryPop(t *testing.T) {
	k := NewKernel(1)
	q := NewQueue[int](k)
	q.Push(1)
	q.Push(2)
	if v, ok := q.TryPop(); !ok || v != 1 {
		t.Fatalf("TryPop = %d,%v", v, ok)
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d", q.Len())
	}
	if v, ok := q.TryPop(); !ok || v != 2 {
		t.Fatalf("TryPop = %d,%v", v, ok)
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue succeeded")
	}
}

func TestSpawnFromProc(t *testing.T) {
	k := NewKernel(1)
	var childAt Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(100)
		k.Spawn("child", func(c *Proc) {
			c.Sleep(50)
			childAt = c.Now()
		})
		p.Sleep(1000)
	})
	k.Run()
	if childAt != 150 {
		t.Fatalf("child finished at %v, want 150", childAt)
	}
}

func TestSleepZeroYields(t *testing.T) {
	k := NewKernel(1)
	var order []string
	k.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Sleep(0)
		order = append(order, "a2")
	})
	k.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	k.Run()
	// a yields at t=0, letting b run before a resumes.
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}
