package sim

import "testing"

// Harness microbenchmarks: event throughput and process switch cost of
// the simulation kernel itself (wall time, not simulated time).

func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel(1)
	for i := 0; i < b.N; i++ {
		k.After(Duration(i%1000), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

// BenchmarkEventChurn measures the steady-state schedule→fire cycle,
// the pattern the fluid model's completion timer and the MPI layer's
// timeouts generate. With event pooling this is allocation-free.
func BenchmarkEventChurn(b *testing.B) {
	k := NewKernel(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.After(1, fn)
		k.Step()
	}
}

// BenchmarkEventCancelPaperScale measures schedule+cancel against a
// paper-scale backlog of pending events (~256: every rank's watchdog
// and retransmission timer in a 16-node × 16-rank campaign world).
func BenchmarkEventCancelPaperScale(b *testing.B) {
	k := NewKernel(1)
	fn := func() {}
	for i := 0; i < 256; i++ {
		k.After(Duration(1e15+i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := k.After(Duration(1e9+i%1000), fn)
		k.Cancel(r)
	}
}

func BenchmarkProcessSwitch(b *testing.B) {
	k := NewKernel(1)
	k.Spawn("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}

func BenchmarkSignalWake(b *testing.B) {
	k := NewKernel(1)
	s := NewSignal(k)
	k.Spawn("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			s.Wait(p)
		}
	})
	k.Spawn("waker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			s.Signal()
			p.Sleep(1)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	k.Run()
}
