package sim

import "testing"

// Harness microbenchmarks: event throughput and process switch cost of
// the simulation kernel itself (wall time, not simulated time).

func BenchmarkEventThroughput(b *testing.B) {
	k := NewKernel(1)
	for i := 0; i < b.N; i++ {
		k.After(Duration(i%1000), func() {})
	}
	b.ResetTimer()
	k.Run()
}

func BenchmarkProcessSwitch(b *testing.B) {
	k := NewKernel(1)
	k.Spawn("switcher", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	k.Run()
}

func BenchmarkSignalWake(b *testing.B) {
	k := NewKernel(1)
	s := NewSignal(k)
	k.Spawn("waiter", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			s.Wait(p)
		}
	})
	k.Spawn("waker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			s.Signal()
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	k.Run()
}
