// Package sim provides a deterministic discrete-event simulation kernel:
// a virtual clock, an event queue, and a cooperative process abstraction.
//
// All simulated activity in this repository (compute kernels, memory
// traffic, network transfers, runtime-system threads) advances on the
// kernel's virtual clock, never on the wall clock. A simulation is fully
// deterministic for a given seed: events scheduled at the same instant run
// in scheduling order, and at most one process executes at any moment.
package sim

import "fmt"

// Time is an instant on the simulated clock, in nanoseconds since the
// start of the simulation.
type Time int64

// Duration spans between two instants, in nanoseconds. It is a distinct
// type from Time so that instants and spans cannot be confused.
type Duration int64

// Common durations.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the span from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Micros returns the duration as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// MaxDuration is the longest representable span; conversions saturate
// at it instead of overflowing.
const MaxDuration = Duration(1<<63 - 1)

// DurationOfSeconds converts a floating-point number of seconds to a
// Duration, rounding up so that a strictly positive time never truncates
// to zero (which could stall fixed-point iterations around completions),
// and saturating at MaxDuration for effectively-infinite spans.
func DurationOfSeconds(s float64) Duration {
	if s <= 0 {
		return 0
	}
	ns := s * 1e9
	if ns >= float64(MaxDuration) {
		return MaxDuration
	}
	d := Duration(ns)
	if float64(d) < ns {
		d++
	}
	return d
}

func (t Time) String() string     { return fmt.Sprintf("%.3fus", float64(t)/1e3) }
func (d Duration) String() string { return fmt.Sprintf("%.3fus", float64(d)/1e3) }
