package sim

import (
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var got []int
	k.At(30, func() { got = append(got, 3) })
	k.At(10, func() { got = append(got, 1) })
	k.At(20, func() { got = append(got, 2) })
	k.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if k.Now() != 30 {
		t.Fatalf("clock = %v, want 30", k.Now())
	}
}

func TestKernelSameInstantFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	k.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestKernelCancel(t *testing.T) {
	k := NewKernel(1)
	ran := false
	e := k.At(10, func() { ran = true })
	k.Cancel(e)
	k.Cancel(e) // double-cancel is a no-op
	k.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestKernelCancelDuringRun(t *testing.T) {
	k := NewKernel(1)
	ran := false
	var e EventRef
	e = k.At(20, func() { ran = true })
	k.At(10, func() { k.Cancel(e) })
	k.Run()
	if ran {
		t.Fatal("event cancelled at t=10 still ran at t=20")
	}
}

func TestKernelAfterAccumulates(t *testing.T) {
	k := NewKernel(1)
	var at Time
	k.After(5, func() {
		k.After(7, func() { at = k.Now() })
	})
	k.Run()
	if at != 12 {
		t.Fatalf("nested After fired at %v, want 12", at)
	}
}

func TestKernelSchedulingInPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	k.Run()
}

func TestRunUntilStopsAndAdvancesClock(t *testing.T) {
	k := NewKernel(1)
	var ran []Time
	for _, tt := range []Time{10, 20, 30} {
		tt := tt
		k.At(tt, func() { ran = append(ran, tt) })
	}
	k.RunUntil(25)
	if len(ran) != 2 {
		t.Fatalf("RunUntil(25) ran %d events, want 2", len(ran))
	}
	if k.Now() != 25 {
		t.Fatalf("clock = %v, want 25", k.Now())
	}
	k.RunUntil(100)
	if len(ran) != 3 || k.Now() != 100 {
		t.Fatalf("after RunUntil(100): ran=%v now=%v", ran, k.Now())
	}
}

func TestRunUntilInclusive(t *testing.T) {
	k := NewKernel(1)
	ran := false
	k.At(25, func() { ran = true })
	k.RunUntil(25)
	if !ran {
		t.Fatal("event at the RunUntil boundary did not run")
	}
}

func TestDeterminismAcrossKernels(t *testing.T) {
	trace := func(seed int64) []int {
		k := NewKernel(seed)
		var got []int
		for i := 0; i < 50; i++ {
			i := i
			d := Duration(k.Rand().Intn(100))
			k.After(d, func() { got = append(got, i) })
		}
		k.Run()
		return got
	}
	a, b := trace(42), trace(42)
	if len(a) != len(b) {
		t.Fatal("traces differ in length")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDurationOfSecondsNeverTruncatesPositive(t *testing.T) {
	f := func(us uint32) bool {
		s := float64(us) / 1e6
		d := DurationOfSeconds(s)
		if us == 0 {
			return d == 0
		}
		return d > 0 && float64(d) >= s*1e9-1 && float64(d) <= s*1e9+2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeArithmetic(t *testing.T) {
	tm := Time(1000)
	if tm.Add(500) != 1500 {
		t.Fatal("Add")
	}
	if Time(1500).Sub(tm) != 500 {
		t.Fatal("Sub")
	}
	if (2 * Microsecond).Seconds() != 2e-6 {
		t.Fatal("Seconds")
	}
	if (1500 * Nanosecond).Micros() != 1.5 {
		t.Fatal("Micros")
	}
}
