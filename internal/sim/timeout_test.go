package sim

import "testing"

func TestWaitTimeoutExpires(t *testing.T) {
	k := NewKernel(1)
	s := NewSignal(k)
	var fired bool
	var woke Time
	k.Spawn("waiter", func(p *Proc) {
		fired = s.WaitTimeout(p, 5*Microsecond)
		woke = p.Now()
	})
	k.Run()
	if fired {
		t.Fatal("WaitTimeout reported signal on a silent signal")
	}
	if woke != Time(5*Microsecond) {
		t.Fatalf("woke at %v, want 5us", woke)
	}
	if s.Waiters() != 0 {
		t.Fatalf("%d waiters left after timeout", s.Waiters())
	}
}

func TestWaitTimeoutSignalWins(t *testing.T) {
	k := NewKernel(1)
	s := NewSignal(k)
	var fired bool
	var woke Time
	k.Spawn("waiter", func(p *Proc) {
		fired = s.WaitTimeout(p, 10*Microsecond)
		woke = p.Now()
	})
	k.Spawn("signaller", func(p *Proc) {
		p.Sleep(3 * Microsecond)
		s.Broadcast()
	})
	k.Run()
	if !fired {
		t.Fatal("WaitTimeout reported timeout despite the signal firing first")
	}
	if woke != Time(3*Microsecond) {
		t.Fatalf("woke at %v, want 3us", woke)
	}
}

func TestWaitTimeoutNonPositiveWaitsForever(t *testing.T) {
	k := NewKernel(1)
	s := NewSignal(k)
	var fired bool
	k.Spawn("waiter", func(p *Proc) { fired = s.WaitTimeout(p, 0) })
	k.Spawn("signaller", func(p *Proc) {
		p.Sleep(Second)
		s.Broadcast()
	})
	k.Run()
	if !fired {
		t.Fatal("WaitTimeout(0) must behave as Wait and report the signal")
	}
}

func TestWaitTimeoutReleasesOnlyTheExpiredWaiter(t *testing.T) {
	k := NewKernel(1)
	s := NewSignal(k)
	var impatient, patient bool
	k.Spawn("impatient", func(p *Proc) { impatient = s.WaitTimeout(p, 2*Microsecond) })
	k.Spawn("patient", func(p *Proc) { patient = s.WaitTimeout(p, Second) })
	k.Spawn("signaller", func(p *Proc) {
		p.Sleep(10 * Microsecond)
		s.Signal() // one wake: must go to the patient waiter
	})
	k.Run()
	if impatient {
		t.Fatal("impatient waiter reported signal after timing out")
	}
	if !patient {
		t.Fatal("patient waiter missed the signal (timed-out waiter still queued?)")
	}
}
