package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// event is a scheduled callback. Events are ordered by time, then by
// scheduling order, which makes simulations deterministic. Event storage
// is pooled inside the kernel: once an event has run (or been
// cancelled) its struct is recycled for the next At/After call, so the
// steady-state event churn of a simulation allocates nothing.
type event struct {
	at    Time
	seq   uint64
	gen   uint64 // bumped on every recycle; EventRef handles go stale
	index int    // heap index, -1 when not queued
	fn    func()
}

// EventRef is a handle to a scheduled event, returned by At and After
// and consumed by Cancel. It is a value (no allocation) and is
// generation-checked: cancelling an event that has already run, was
// already cancelled, or whose storage has since been recycled for a
// newer event is a precise no-op. The zero EventRef is valid and refers
// to nothing.
type EventRef struct {
	e   *event
	gen uint64
}

// Pending reports whether the referenced event is still queued.
func (r EventRef) Pending() bool { return r.e != nil && r.e.gen == r.gen }

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is the simulation engine: it owns the virtual clock and the
// event queue and runs events in deterministic order.
type Kernel struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	procs  int // live (not yet finished) processes
	nsteps uint64
	free   []*event // recycled event storage
	// freeProcs holds finished processes whose goroutines are parked in
	// their run loop, ready for the next Spawn; freeSigs holds recycled
	// signals (see GetSignal). Both make the steady-state churn of a
	// simulation — and of a whole pooled world — allocation-free.
	freeProcs []*Proc
	freeSigs  []*Signal
}

// NewKernel returns a simulation kernel whose random source is seeded
// with seed. The same seed always produces the same simulation.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Reset rewinds an idle kernel to the state NewKernel(seed) returns,
// keeping its recycled event, process and signal storage. Resetting a
// kernel with pending events or live processes panics: their wakeups
// would leak into the next simulation.
func (k *Kernel) Reset(seed int64) {
	if len(k.events) != 0 {
		panic("sim: Reset with pending events")
	}
	if k.procs != 0 {
		panic("sim: Reset with live processes")
	}
	k.now = 0
	k.seq = 0
	k.nsteps = 0
	k.rng.Seed(seed)
}

// Shutdown terminates the goroutines of the kernel's parked (recycled)
// processes. Call it before abandoning a kernel that was used with
// pooled Spawn so its idle goroutines don't outlive it; the kernel
// remains usable, but the next Spawn starts a fresh goroutine.
func (k *Kernel) Shutdown() {
	for i, p := range k.freeProcs {
		p.fn = nil
		p.resumeCh <- struct{}{}
		k.freeProcs[i] = nil
	}
	k.freeProcs = k.freeProcs[:0]
}

// Now returns the current simulated instant.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Steps reports how many events have been executed so far.
func (k *Kernel) Steps() uint64 { return k.nsteps }

// alloc takes an event from the free list, or makes a new one.
func (k *Kernel) alloc() *event {
	if n := len(k.free); n > 0 {
		e := k.free[n-1]
		k.free[n-1] = nil
		k.free = k.free[:n-1]
		return e
	}
	return &event{index: -1}
}

// release recycles an event that has run or been cancelled. The
// generation bump invalidates every outstanding EventRef to it.
func (k *Kernel) release(e *event) {
	e.gen++
	e.fn = nil
	e.index = -1
	k.free = append(k.free, e)
}

// At schedules fn to run at instant t. Scheduling in the past panics:
// it would silently reorder causality.
func (k *Kernel) At(t Time, fn func()) EventRef {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, k.now))
	}
	e := k.alloc()
	e.at = t
	e.seq = k.seq
	e.fn = fn
	k.seq++
	heap.Push(&k.events, e)
	return EventRef{e, e.gen}
}

// After schedules fn to run d from now. Negative d panics.
func (k *Kernel) After(d Duration, fn func()) EventRef {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// Cancel prevents a scheduled event from running. Cancelling an event
// that already ran, was already cancelled, or whose storage was
// recycled is a no-op (the handle's generation no longer matches).
func (k *Kernel) Cancel(r EventRef) {
	if r.e == nil || r.e.gen != r.gen {
		return
	}
	heap.Remove(&k.events, r.e.index)
	k.release(r.e)
}

// Step runs the earliest pending event, advancing the clock to it.
// It reports whether an event was run.
func (k *Kernel) Step() bool {
	if len(k.events) == 0 {
		return false
	}
	e := heap.Pop(&k.events).(*event)
	k.now = e.at
	k.nsteps++
	fn := e.fn
	// Recycle before running: fn may itself schedule, and reusing the
	// hot struct keeps the event working set at the queue's high-water
	// mark.
	k.release(e)
	fn()
	return true
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events up to and including instant t, then sets the
// clock to t.
func (k *Kernel) RunUntil(t Time) {
	for len(k.events) > 0 {
		// Peek without popping: index 0 is the heap minimum.
		e := k.events[0]
		if e.at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// Idle reports whether no events are pending. Processes blocked on a
// Signal do not count; a simulation that goes idle with live processes
// has deadlocked (see LiveProcs).
func (k *Kernel) Idle() bool { return len(k.events) == 0 }

// LiveProcs returns the number of spawned processes that have not
// finished. Useful in tests to detect leaked/deadlocked processes.
func (k *Kernel) LiveProcs() int { return k.procs }

// Timer is a reusable one-shot scheduled callback: the callback is
// bound once at creation and the timer is re-armed with Arm/ArmAfter.
// Re-arming implicitly stops a pending firing, and stopping a timer
// that already fired is a no-op, so the common cancel-and-reschedule
// pattern (e.g. a solver's next-completion event) costs no allocation
// and needs no bookkeeping at the call site.
type Timer struct {
	k   *Kernel
	fn  func()
	ref EventRef
}

// NewTimer returns an unarmed timer on kernel k that runs fn when it
// fires.
func (k *Kernel) NewTimer(fn func()) *Timer {
	return &Timer{k: k, fn: fn}
}

// Arm (re)schedules the timer to fire at instant t.
func (t *Timer) Arm(at Time) {
	t.k.Cancel(t.ref)
	t.ref = t.k.At(at, t.fn)
}

// ArmAfter (re)schedules the timer to fire d from now.
func (t *Timer) ArmAfter(d Duration) {
	t.k.Cancel(t.ref)
	t.ref = t.k.After(d, t.fn)
}

// Stop cancels a pending firing. Stopping an unarmed or already-fired
// timer is a no-op.
func (t *Timer) Stop() {
	t.k.Cancel(t.ref)
	t.ref = EventRef{}
}

// Pending reports whether the timer is armed and has not fired yet.
func (t *Timer) Pending() bool { return t.ref.Pending() }
