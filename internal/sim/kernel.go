package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Event is a scheduled callback. Events are ordered by time, then by
// scheduling order, which makes simulations deterministic.
type Event struct {
	at        Time
	seq       uint64
	index     int // heap index, -1 when not queued
	fn        func()
	cancelled bool
}

// At returns the instant the event is scheduled for.
func (e *Event) At() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Kernel is the simulation engine: it owns the virtual clock and the
// event queue and runs events in deterministic order.
type Kernel struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand
	procs  int // live (not yet finished) processes
	nsteps uint64
}

// NewKernel returns a simulation kernel whose random source is seeded
// with seed. The same seed always produces the same simulation.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current simulated instant.
func (k *Kernel) Now() Time { return k.now }

// Rand returns the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// Steps reports how many events have been executed so far.
func (k *Kernel) Steps() uint64 { return k.nsteps }

// At schedules fn to run at instant t. Scheduling in the past panics:
// it would silently reorder causality.
func (k *Kernel) At(t Time, fn func()) *Event {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling at %v before now %v", t, k.now))
	}
	e := &Event{at: t, seq: k.seq, fn: fn, index: -1}
	k.seq++
	heap.Push(&k.events, e)
	return e
}

// After schedules fn to run d from now. Negative d panics.
func (k *Kernel) After(d Duration, fn func()) *Event {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return k.At(k.now.Add(d), fn)
}

// Cancel prevents a scheduled event from running. Cancelling an event
// that already ran (or was already cancelled) is a no-op.
func (k *Kernel) Cancel(e *Event) {
	if e == nil || e.cancelled {
		return
	}
	e.cancelled = true
	if e.index >= 0 {
		heap.Remove(&k.events, e.index)
	}
}

// Step runs the earliest pending event, advancing the clock to it.
// It reports whether an event was run.
func (k *Kernel) Step() bool {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(*Event)
		if e.cancelled {
			continue
		}
		k.now = e.at
		k.nsteps++
		e.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (k *Kernel) Run() {
	for k.Step() {
	}
}

// RunUntil executes events up to and including instant t, then sets the
// clock to t.
func (k *Kernel) RunUntil(t Time) {
	for len(k.events) > 0 {
		// Peek without popping: index 0 is the heap minimum.
		e := k.events[0]
		if e.at > t {
			break
		}
		k.Step()
	}
	if k.now < t {
		k.now = t
	}
}

// Idle reports whether no events are pending. Processes blocked on a
// Signal do not count; a simulation that goes idle with live processes
// has deadlocked (see LiveProcs).
func (k *Kernel) Idle() bool { return len(k.events) == 0 }

// LiveProcs returns the number of spawned processes that have not
// finished. Useful in tests to detect leaked/deadlocked processes.
func (k *Kernel) LiveProcs() int { return k.procs }
