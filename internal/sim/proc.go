package sim

import "fmt"

// Proc is a simulated thread of control. Each Proc runs in its own
// goroutine, but the kernel guarantees that at most one Proc (or event
// handler) executes at any moment: control passes explicitly between the
// kernel and the process, so simulations are deterministic and shared
// state needs no locking.
//
// A Proc advances the clock only by blocking: Sleep, Signal.Wait, or any
// higher-level operation built on them. Plain Go code inside a Proc takes
// zero simulated time.
type Proc struct {
	k        *Kernel
	name     string
	resumeCh chan struct{}
	yieldCh  chan struct{}
	finished bool
	panicVal any
	blocked  bool // waiting on a Signal (not a timer)
	// runFn is the p.run method value, captured once at Spawn so the
	// hot wake paths (Sleep, Signal) don't allocate a fresh bound-method
	// closure per block.
	runFn func()
}

// Spawn creates a process running fn. The process starts at the current
// instant, after already-scheduled events for this instant.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{
		k:        k,
		name:     name,
		resumeCh: make(chan struct{}),
		yieldCh:  make(chan struct{}),
	}
	p.runFn = p.run
	k.procs++
	go func() {
		defer func() {
			if r := recover(); r != nil {
				p.panicVal = r
			}
			p.finished = true
			p.yieldCh <- struct{}{}
		}()
		<-p.resumeCh
		fn(p)
	}()
	k.At(k.now, p.runFn)
	return p
}

// run transfers control to the process and blocks the kernel until the
// process yields (blocks) or finishes. Only ever called from kernel
// (event handler) context.
func (p *Proc) run() {
	if p.finished {
		return
	}
	p.resumeCh <- struct{}{}
	<-p.yieldCh
	if p.finished {
		p.k.procs--
		if p.panicVal != nil {
			panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, p.panicVal))
		}
	}
}

// yield suspends the process and returns control to the kernel. The
// process must have arranged to be resumed (timer or signal) first.
func (p *Proc) yield() {
	p.yieldCh <- struct{}{}
	<-p.resumeCh
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated instant.
func (p *Proc) Now() Time { return p.k.now }

// Sleep suspends the process for d. Sleeping a non-positive duration
// still yields, letting same-instant events run (a deterministic
// "yield to scheduler").
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.k.After(d, p.runFn)
	p.yield()
}

// Signal is a deterministic condition variable for processes. Waiters
// are woken in FIFO order through the event queue, so wake order is
// reproducible.
type Signal struct {
	k       *Kernel
	waiters []*Proc
}

// NewSignal returns a Signal bound to kernel k.
func NewSignal(k *Kernel) *Signal { return &Signal{k: k} }

// Wait suspends p until another process or event calls Signal or
// Broadcast.
func (s *Signal) Wait(p *Proc) {
	p.blocked = true
	s.waiters = append(s.waiters, p)
	p.yield()
}

// Signal wakes the oldest waiter, if any. The waiter resumes at the
// current instant, after events already scheduled for it.
func (s *Signal) Signal() {
	if len(s.waiters) == 0 {
		return
	}
	p := s.waiters[0]
	s.waiters = s.waiters[1:]
	p.blocked = false
	s.k.At(s.k.now, p.runFn)
}

// WaitTimeout suspends p until the signal fires or d elapses, whichever
// comes first, and reports whether the signal fired (false on timeout).
// A non-positive d degenerates to Wait. When the timer fires first, p is
// removed from the waiter queue, so a later Signal wakes the next waiter
// instead of a process that has already given up — the primitive behind
// the MPI layer's retransmission timeouts.
//
// When the signal and the timer fire at the same instant, the one
// scheduled first wins (the kernel's deterministic event order), so a
// given seed always resolves the tie the same way.
func (s *Signal) WaitTimeout(p *Proc, d Duration) bool {
	if d <= 0 {
		s.Wait(p)
		return true
	}
	timedOut := false
	timer := s.k.After(d, func() {
		for i, w := range s.waiters {
			if w == p {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				timedOut = true
				p.blocked = false
				s.k.At(s.k.now, p.runFn)
				return
			}
		}
	})
	s.Wait(p)
	s.k.Cancel(timer)
	return !timedOut
}

// Broadcast wakes every waiter, oldest first.
func (s *Signal) Broadcast() {
	for len(s.waiters) > 0 {
		s.Signal()
	}
}

// Waiters returns the number of processes blocked on the signal.
func (s *Signal) Waiters() int { return len(s.waiters) }

// Queue is a deterministic FIFO mailbox between processes: Push never
// blocks, Pop blocks until an item is available.
type Queue[T any] struct {
	items []T
	sig   *Signal
}

// NewQueue returns an empty queue bound to kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] {
	return &Queue[T]{sig: NewSignal(k)}
}

// Push appends v and wakes one waiting consumer.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.sig.Signal()
}

// Pop removes and returns the oldest item, blocking p until one exists.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.sig.Wait(p)
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// TryPop removes and returns the oldest item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }
