package sim

import "fmt"

// Proc is a simulated thread of control. Each Proc runs in its own
// goroutine, but the kernel guarantees that at most one Proc (or event
// handler) executes at any moment: control passes explicitly between the
// kernel and the process, so simulations are deterministic and shared
// state needs no locking.
//
// A Proc advances the clock only by blocking: Sleep, Signal.Wait, or any
// higher-level operation built on them. Plain Go code inside a Proc takes
// zero simulated time.
type Proc struct {
	k        *Kernel
	name     string
	resumeCh chan struct{}
	yieldCh  chan struct{}
	finished bool
	panicVal any
	blocked  bool // waiting on a Signal (not a timer)
	// runFn is the p.run method value, captured once at first Spawn so
	// the hot wake paths (Sleep, Signal) don't allocate a fresh
	// bound-method closure per block.
	runFn func()
	// fn is the body of the current incarnation. Finished processes park
	// their goroutine in loop() and are recycled by the next Spawn with a
	// new fn; a nil fn on wake terminates the goroutine (Shutdown).
	fn func(*Proc)
}

// Spawn creates a process running fn. The process starts at the current
// instant, after already-scheduled events for this instant. Process
// storage — including the goroutine and its channels — is recycled
// from previously finished processes of this kernel, so steady-state
// process churn allocates nothing.
func (k *Kernel) Spawn(name string, fn func(*Proc)) *Proc {
	var p *Proc
	if n := len(k.freeProcs); n > 0 {
		p = k.freeProcs[n-1]
		k.freeProcs[n-1] = nil
		k.freeProcs = k.freeProcs[:n-1]
		p.name = name
		p.finished = false
		p.fn = fn
	} else {
		p = &Proc{
			k:        k,
			name:     name,
			resumeCh: make(chan struct{}),
			yieldCh:  make(chan struct{}),
			fn:       fn,
		}
		p.runFn = p.run
		go p.loop()
	}
	k.procs++
	k.At(k.now, p.runFn)
	return p
}

// loop is the body of a process goroutine: it runs one incarnation per
// wake, yields the final time, and parks until Spawn hands it the next
// body (or Shutdown wakes it with none).
func (p *Proc) loop() {
	for {
		<-p.resumeCh
		fn := p.fn
		if fn == nil {
			return
		}
		p.call(fn)
		p.yieldCh <- struct{}{}
	}
}

// call runs one incarnation, capturing a panic so the kernel can
// re-raise it from event context without losing the goroutine.
func (p *Proc) call(fn func(*Proc)) {
	defer func() {
		if r := recover(); r != nil {
			p.panicVal = r
		}
		p.finished = true
	}()
	fn(p)
}

// run transfers control to the process and blocks the kernel until the
// process yields (blocks) or finishes. Only ever called from kernel
// (event handler) context. A finished process is parked for reuse
// before any panic it raised is re-thrown: the goroutine survives
// either way.
func (p *Proc) run() {
	if p.finished {
		return
	}
	p.resumeCh <- struct{}{}
	<-p.yieldCh
	if p.finished {
		p.k.procs--
		p.fn = nil
		p.k.freeProcs = append(p.k.freeProcs, p)
		if pv := p.panicVal; pv != nil {
			p.panicVal = nil
			panic(fmt.Sprintf("sim: process %q panicked: %v", p.name, pv))
		}
	}
}

// yield suspends the process and returns control to the kernel. The
// process must have arranged to be resumed (timer or signal) first.
func (p *Proc) yield() {
	p.yieldCh <- struct{}{}
	<-p.resumeCh
}

// Kernel returns the kernel this process runs on.
func (p *Proc) Kernel() *Kernel { return p.k }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current simulated instant.
func (p *Proc) Now() Time { return p.k.now }

// Sleep suspends the process for d. Sleeping a non-positive duration
// still yields, letting same-instant events run (a deterministic
// "yield to scheduler").
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.k.After(d, p.runFn)
	p.yield()
}

// Signal is a deterministic condition variable for processes. Waiters
// are woken in FIFO order through the event queue, so wake order is
// reproducible.
type Signal struct {
	k       *Kernel
	waiters []*Proc
	// broadcastFn caches the Broadcast method value so completion hooks
	// (e.g. fluid-flow OnDone) don't allocate a bound closure per use.
	broadcastFn func()
}

// NewSignal returns a Signal bound to kernel k.
func NewSignal(k *Kernel) *Signal { return &Signal{k: k} }

// GetSignal returns a signal bound to k, recycled from PutSignal when
// possible. The hot transfer paths acquire their completion signals
// here so steady-state signal churn allocates nothing.
func (k *Kernel) GetSignal() *Signal {
	if n := len(k.freeSigs); n > 0 {
		s := k.freeSigs[n-1]
		k.freeSigs[n-1] = nil
		k.freeSigs = k.freeSigs[:n-1]
		return s
	}
	return &Signal{k: k}
}

// PutSignal recycles a signal for a later GetSignal. A signal that
// still has waiters is silently dropped instead: recycling it would
// strand them.
func (k *Kernel) PutSignal(s *Signal) {
	if s == nil || len(s.waiters) != 0 {
		return
	}
	k.freeSigs = append(k.freeSigs, s)
}

// BroadcastFn returns the signal's Broadcast bound-method value,
// allocated once per signal lifetime (pool recycling included).
func (s *Signal) BroadcastFn() func() {
	if s.broadcastFn == nil {
		s.broadcastFn = s.Broadcast
	}
	return s.broadcastFn
}

// Wait suspends p until another process or event calls Signal or
// Broadcast.
func (s *Signal) Wait(p *Proc) {
	p.blocked = true
	s.waiters = append(s.waiters, p)
	p.yield()
}

// Signal wakes the oldest waiter, if any. The waiter resumes at the
// current instant, after events already scheduled for it. The queue
// shifts in place so the waiter array's capacity is retained across
// wait/wake cycles.
func (s *Signal) Signal() {
	n := len(s.waiters)
	if n == 0 {
		return
	}
	p := s.waiters[0]
	copy(s.waiters, s.waiters[1:])
	s.waiters[n-1] = nil
	s.waiters = s.waiters[:n-1]
	p.blocked = false
	s.k.At(s.k.now, p.runFn)
}

// WaitTimeout suspends p until the signal fires or d elapses, whichever
// comes first, and reports whether the signal fired (false on timeout).
// A non-positive d degenerates to Wait. When the timer fires first, p is
// removed from the waiter queue, so a later Signal wakes the next waiter
// instead of a process that has already given up — the primitive behind
// the MPI layer's retransmission timeouts.
//
// When the signal and the timer fire at the same instant, the one
// scheduled first wins (the kernel's deterministic event order), so a
// given seed always resolves the tie the same way.
func (s *Signal) WaitTimeout(p *Proc, d Duration) bool {
	if d <= 0 {
		s.Wait(p)
		return true
	}
	timedOut := false
	timer := s.k.After(d, func() {
		for i, w := range s.waiters {
			if w == p {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				timedOut = true
				p.blocked = false
				s.k.At(s.k.now, p.runFn)
				return
			}
		}
	})
	s.Wait(p)
	s.k.Cancel(timer)
	return !timedOut
}

// Broadcast wakes every waiter, oldest first.
func (s *Signal) Broadcast() {
	for len(s.waiters) > 0 {
		s.Signal()
	}
}

// Waiters returns the number of processes blocked on the signal.
func (s *Signal) Waiters() int { return len(s.waiters) }

// Queue is a deterministic FIFO mailbox between processes: Push never
// blocks, Pop blocks until an item is available.
type Queue[T any] struct {
	items []T
	sig   *Signal
}

// NewQueue returns an empty queue bound to kernel k.
func NewQueue[T any](k *Kernel) *Queue[T] {
	return &Queue[T]{sig: NewSignal(k)}
}

// Push appends v and wakes one waiting consumer.
func (q *Queue[T]) Push(v T) {
	q.items = append(q.items, v)
	q.sig.Signal()
}

// Pop removes and returns the oldest item, blocking p until one exists.
func (q *Queue[T]) Pop(p *Proc) T {
	for len(q.items) == 0 {
		q.sig.Wait(p)
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// TryPop removes and returns the oldest item without blocking.
func (q *Queue[T]) TryPop() (T, bool) {
	var zero T
	if len(q.items) == 0 {
		return zero, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue[T]) Len() int { return len(q.items) }
