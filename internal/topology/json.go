package topology

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// JSON (de)serialisation of node specs, so users can model their own
// machines without recompiling: `interference -spec mymachine.json`.
// The JSON layout mirrors the Go structs; Validate runs on load.

// specJSON is the serialised form; turbo tables get an explicit
// per-class map for readability.
type specJSON struct {
	Name          string   `json:"name"`
	Sockets       int      `json:"sockets"`
	NUMAPerSocket int      `json:"numaPerSocket"`
	CoresPerNUMA  int      `json:"coresPerNUMA"`
	Freq          freqJSON `json:"freq"`
	Mem           MemSpec  `json:"mem"`
	NIC           NICSpec  `json:"nic"`
	FlopsPerCycle struct {
		Scalar float64 `json:"scalar"`
		AVX2   float64 `json:"avx2"`
		AVX512 float64 `json:"avx512"`
	} `json:"flopsPerCycle"`
	RuntimeCyclesPerMsg float64 `json:"runtimeCyclesPerMsg"`
	Hyperthreading      bool    `json:"hyperthreading"`
}

type freqJSON struct {
	CoreMin   GHz                   `json:"coreMin"`
	CoreBase  GHz                   `json:"coreBase"`
	Turbo     map[string]TurboTable `json:"turbo"`
	UncoreMin GHz                   `json:"uncoreMin"`
	UncoreMax GHz                   `json:"uncoreMax"`
}

var classNames = map[string]VecClass{
	"scalar": Scalar,
	"avx2":   AVX2,
	"avx512": AVX512,
}

// MarshalJSON renders a NodeSpec in the documented JSON layout.
func (s *NodeSpec) MarshalJSON() ([]byte, error) {
	out := specJSON{
		Name:                s.Name,
		Sockets:             s.Sockets,
		NUMAPerSocket:       s.NUMAPerSocket,
		CoresPerNUMA:        s.CoresPerNUMA,
		Mem:                 s.Mem,
		NIC:                 s.NIC,
		RuntimeCyclesPerMsg: s.RuntimeCyclesPerMsg,
		Hyperthreading:      s.Hyperthreading,
	}
	out.Freq = freqJSON{
		CoreMin:   s.Freq.CoreMin,
		CoreBase:  s.Freq.CoreBase,
		UncoreMin: s.Freq.UncoreMin,
		UncoreMax: s.Freq.UncoreMax,
		Turbo:     map[string]TurboTable{},
	}
	for name, class := range classNames {
		out.Freq.Turbo[name] = s.Freq.Turbo[class]
	}
	out.FlopsPerCycle.Scalar = s.FlopsPerCycle[Scalar]
	out.FlopsPerCycle.AVX2 = s.FlopsPerCycle[AVX2]
	out.FlopsPerCycle.AVX512 = s.FlopsPerCycle[AVX512]
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalJSON parses the documented JSON layout (without validating;
// call Validate, or use ReadSpec which does).
func (s *NodeSpec) UnmarshalJSON(data []byte) error {
	var in specJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*s = NodeSpec{
		Name:                in.Name,
		Sockets:             in.Sockets,
		NUMAPerSocket:       in.NUMAPerSocket,
		CoresPerNUMA:        in.CoresPerNUMA,
		Mem:                 in.Mem,
		NIC:                 in.NIC,
		RuntimeCyclesPerMsg: in.RuntimeCyclesPerMsg,
		Hyperthreading:      in.Hyperthreading,
	}
	s.Freq.CoreMin = in.Freq.CoreMin
	s.Freq.CoreBase = in.Freq.CoreBase
	s.Freq.UncoreMin = in.Freq.UncoreMin
	s.Freq.UncoreMax = in.Freq.UncoreMax
	for name, tt := range in.Freq.Turbo {
		class, ok := classNames[name]
		if !ok {
			return fmt.Errorf("topology: unknown vector class %q in turbo table", name)
		}
		s.Freq.Turbo[class] = tt
	}
	s.FlopsPerCycle[Scalar] = in.FlopsPerCycle.Scalar
	s.FlopsPerCycle[AVX2] = in.FlopsPerCycle.AVX2
	s.FlopsPerCycle[AVX512] = in.FlopsPerCycle.AVX512
	return nil
}

// WriteSpec serialises a spec to w.
func WriteSpec(w io.Writer, s *NodeSpec) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// ReadSpec parses and validates a spec from r.
func ReadSpec(r io.Reader) (*NodeSpec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s := new(NodeSpec)
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("topology: parsing spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("topology: invalid spec %q: %w", s.Name, err)
	}
	return s, nil
}

// LoadSpecFile reads a validated spec from a JSON file.
func LoadSpecFile(path string) (*NodeSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadSpec(f)
}
