package topology

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestSpecJSONRoundTrip(t *testing.T) {
	for name, spec := range Presets() {
		var buf bytes.Buffer
		if err := WriteSpec(&buf, spec); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		got, err := ReadSpec(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		if !reflect.DeepEqual(got, spec) {
			t.Fatalf("%s: round trip mismatch:\n got %+v\nwant %+v", name, got, spec)
		}
	}
}

func TestReadSpecValidates(t *testing.T) {
	bad := Henri()
	bad.Sockets = 0
	data, err := json.Marshal(bad)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadSpec(bytes.NewReader(data)); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestReadSpecRejectsGarbage(t *testing.T) {
	if _, err := ReadSpec(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadSpec(strings.NewReader(`{"freq":{"turbo":{"avx1024":[]}}}`)); err == nil {
		t.Fatal("unknown vector class accepted")
	}
}

func TestJSONIsHumanReadable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSpec(&buf, Henri()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"name": "henri"`, `"scalar"`, `"coreMin": 1`, `"wireGBs"`} {
		if !strings.Contains(strings.ToLower(out), strings.ToLower(want)) {
			t.Fatalf("serialised spec missing %q:\n%s", want, out[:400])
		}
	}
}

func TestLoadSpecFileMissing(t *testing.T) {
	if _, err := LoadSpecFile("/nonexistent/spec.json"); err == nil {
		t.Fatal("missing file accepted")
	}
}
