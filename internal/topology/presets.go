package topology

// The preset parameters below are calibrated so that the simulator
// reproduces the absolute numbers the paper reports where it reports
// them (latency, asymptotic bandwidth, STREAM saturation, runtime
// overhead, arithmetic-intensity ridge), and reasonable public figures
// for the rest (memory channel bandwidth, UPI/xGMI throughput, turbo
// tables). See DESIGN.md §4 and EXPERIMENTS.md for the calibration
// audit.

// Henri models the paper's henri nodes: dual Intel Xeon Gold 6140
// (Skylake-SP) at 2.3 GHz, 36 cores over 4 NUMA nodes (sub-NUMA
// clustering), 96 GB RAM, InfiniBand ConnectX-4 EDR. This is the
// machine most figures are measured on.
func Henri() *NodeSpec {
	return &NodeSpec{
		Name:          "henri",
		Sockets:       2,
		NUMAPerSocket: 2,
		CoresPerNUMA:  9,
		Freq: FreqSpec{
			CoreMin:  1.0,
			CoreBase: 2.3,
			Turbo: [numVecClasses]TurboTable{
				// Sustained turbo observed in the paper: scalar cores hold
				// 2.5 GHz regardless of the active-core count (Fig 2, 3).
				Scalar: {{36, 2.5}},
				AVX2:   {{4, 2.5}, {36, 2.3}},
				// AVX-512 licence: few active cores boost to 3.0 GHz,
				// 20 active cores run at 2.3 GHz (Fig 3b, 3c).
				AVX512: {{4, 3.0}, {8, 2.7}, {16, 2.4}, {36, 2.3}},
			},
			UncoreMin: 1.2,
			UncoreMax: 2.4,
		},
		Mem: MemSpec{
			CtrlGBs:             50,
			LinkGBs:             25, // effective UPI throughput between the sockets
			MeshGBs:             60, // SNC halves of one socket
			StreamPerCoreGBs:    12,
			LocalLatencyNs:      80,
			RemoteLatencyNs:     150,
			ContentionK:         1.2,
			ContentionMaxFactor: 3.0,
			StreamEfficiency:    0.008,
			UncoreLatFactor:     0.25,
		},
		NIC: NICSpec{
			NUMA:                 0,
			WireGBs:              10.9, // EDR: 10.5 GB/s observed asymptote incl. overheads
			WireLatencyNs:        320,
			PCIeGBs:              15.75, // PCIe 3.0 x16
			SendCycles:           1150,
			RecvCycles:           1150,
			SendMemAccesses:      2,
			RecvMemAccesses:      2,
			NoiseFrac:            0.02,
			DMAPriority:          1.0,
			DMAPriorityPerStream: 0.06,
			EagerMax:             32 << 10,
			RegisterCyclesPerKB:  40,
		},
		FlopsPerCycle:       [numVecClasses]float64{Scalar: 4, AVX2: 16, AVX512: 32},
		RuntimeCyclesPerMsg: 73000, // +38 µs at 2.5 GHz (§5.2)
		Hyperthreading:      false,
	}
}

// Bora models the bora nodes: dual Intel Xeon Gold 6240 (Cascade Lake)
// at 2.6 GHz, 36 cores over 2 NUMA nodes, 192 GB RAM, Intel Omni-Path
// 100. Omni-Path's onload protocol shows a wide bandwidth deviation and
// computations are impacted once they spill onto the socket driving
// communication (§3.2); the network bandwidth is impacted later than on
// henri (from ~20 computing cores, §4.2) because each of the two big
// NUMA nodes has the full socket's controller bandwidth.
func Bora() *NodeSpec {
	return &NodeSpec{
		Name:          "bora",
		Sockets:       2,
		NUMAPerSocket: 1,
		CoresPerNUMA:  18,
		Freq: FreqSpec{
			CoreMin:  1.0,
			CoreBase: 2.6,
			Turbo: [numVecClasses]TurboTable{
				Scalar: {{36, 2.8}},
				AVX2:   {{4, 2.8}, {36, 2.6}},
				AVX512: {{4, 3.1}, {8, 2.8}, {16, 2.6}, {36, 2.5}},
			},
			UncoreMin: 1.2,
			UncoreMax: 2.4,
		},
		Mem: MemSpec{
			CtrlGBs:             105, // 6 × DDR4-2933 per socket
			LinkGBs:             25,
			MeshGBs:             60,
			StreamPerCoreGBs:    13,
			LocalLatencyNs:      80,
			RemoteLatencyNs:     140,
			ContentionK:         1.2,
			ContentionMaxFactor: 3.0,
			StreamEfficiency:    0.008,
			UncoreLatFactor:     0.25,
		},
		NIC: NICSpec{
			NUMA:          0,
			WireGBs:       10.4, // Omni-Path 100
			WireLatencyNs: 680,
			PCIeGBs:       15.75,
			SendCycles:    1250,
			RecvCycles:    1250,
			// Omni-Path is an onload design: the CPU touches memory more
			// per message, and compute threads on the NIC socket feel it
			// (§3.2's compute slowdown beyond 15 cores).
			SendMemAccesses:      4,
			RecvMemAccesses:      4,
			NoiseFrac:            0.10,
			DMAPriority:          1.0,
			DMAPriorityPerStream: 0.06,
			EagerMax:             32 << 10,
			RegisterCyclesPerKB:  40,
		},
		FlopsPerCycle:       [numVecClasses]float64{Scalar: 4, AVX2: 16, AVX512: 32},
		RuntimeCyclesPerMsg: 73000,
		Hyperthreading:      false,
	}
}

// Billy models the billy nodes: dual AMD EPYC 7502 (Zen2 Rome) at
// 2.5 GHz, 64 cores over 8 NUMA nodes (NPS4), 128 GB RAM, InfiniBand
// ConnectX-6 HDR. The StarPU latency overhead is +23 µs (§5.2); worker
// polling does not measurably disturb communications on this machine
// (§5.4), which we model with cheap, NUMA-local queue polling (see
// taskrt); the compute/memory ridge sits near 20 flop/B (§4.5).
func Billy() *NodeSpec {
	return &NodeSpec{
		Name:          "billy",
		Sockets:       2,
		NUMAPerSocket: 4,
		CoresPerNUMA:  8,
		Freq: FreqSpec{
			CoreMin:  1.5,
			CoreBase: 2.5,
			Turbo: [numVecClasses]TurboTable{
				Scalar: {{64, 3.0}},
				AVX2:   {{64, 2.9}},
				// Zen2 has no AVX-512; 256-bit datapath, no licence drop.
				AVX512: {{64, 2.9}},
			},
			UncoreMin: 1.2,
			UncoreMax: 2.33, // Infinity Fabric clock
		},
		Mem: MemSpec{
			CtrlGBs:             38, // 2 channels DDR4-3200 per NPS4 quadrant
			LinkGBs:             30, // xGMI between the sockets
			MeshGBs:             50, // infinity fabric between NPS4 quadrants
			StreamPerCoreGBs:    21,
			LocalLatencyNs:      90,
			RemoteLatencyNs:     200,
			ContentionK:         1.2,
			ContentionMaxFactor: 3.0,
			StreamEfficiency:    0.008,
			UncoreLatFactor:     0.25,
		},
		NIC: NICSpec{
			NUMA:                 0,
			WireGBs:              24.0, // HDR 200 Gb/s
			WireLatencyNs:        600,
			PCIeGBs:              31.5, // PCIe 4.0 x16
			SendCycles:           1100,
			RecvCycles:           1100,
			SendMemAccesses:      2,
			RecvMemAccesses:      2,
			NoiseFrac:            0.02,
			DMAPriority:          1.0,
			DMAPriorityPerStream: 0.06,
			EagerMax:             32 << 10,
			RegisterCyclesPerKB:  40,
		},
		// Zen2: 2×256-bit FMA pipes.
		FlopsPerCycle:       [numVecClasses]float64{Scalar: 4, AVX2: 16, AVX512: 16},
		RuntimeCyclesPerMsg: 63000, // +23 µs at ~2.7 GHz (§5.2)
		Hyperthreading:      true,
	}
}

// Pyxis models the pyxis nodes: dual Cavium/Marvell ThunderX2 99xx at
// 2.5 GHz, 64 cores over 2 NUMA nodes, 256 GB RAM, InfiniBand
// ConnectX-6 EDR. StarPU latency overhead is +45 µs (§5.2); like billy,
// polling workers do not disturb communications.
func Pyxis() *NodeSpec {
	return &NodeSpec{
		Name:          "pyxis",
		Sockets:       2,
		NUMAPerSocket: 1,
		CoresPerNUMA:  32,
		Freq: FreqSpec{
			CoreMin:  1.0,
			CoreBase: 2.5,
			Turbo: [numVecClasses]TurboTable{
				Scalar: {{64, 2.5}},
				AVX2:   {{64, 2.5}}, // NEON-class, no licence mechanism
				AVX512: {{64, 2.5}},
			},
			UncoreMin: 1.1,
			UncoreMax: 2.2,
		},
		Mem: MemSpec{
			CtrlGBs:             120, // 8 × DDR4-2666 per socket
			LinkGBs:             30,  // CCPI2 between the sockets
			MeshGBs:             60,
			StreamPerCoreGBs:    10,
			LocalLatencyNs:      110,
			RemoteLatencyNs:     220,
			ContentionK:         1.2,
			ContentionMaxFactor: 3.0,
			StreamEfficiency:    0.008,
			UncoreLatFactor:     0.25,
		},
		NIC: NICSpec{
			NUMA:                 0,
			WireGBs:              10.9,
			WireLatencyNs:        620,
			PCIeGBs:              15.75,
			SendCycles:           1900, // weaker single-thread performance
			RecvCycles:           1900,
			SendMemAccesses:      2,
			RecvMemAccesses:      2,
			NoiseFrac:            0.02,
			DMAPriority:          1.0,
			DMAPriorityPerStream: 0.06,
			EagerMax:             32 << 10,
			RegisterCyclesPerKB:  40,
		},
		// 2×128-bit NEON pipes.
		FlopsPerCycle:       [numVecClasses]float64{Scalar: 4, AVX2: 8, AVX512: 8},
		RuntimeCyclesPerMsg: 84000, // +45 µs at 2.5 GHz (§5.2)
		Hyperthreading:      true,
	}
}

// Presets returns all cluster presets keyed by name.
func Presets() map[string]*NodeSpec {
	return map[string]*NodeSpec{
		"henri": Henri(),
		"bora":  Bora(),
		"billy": Billy(),
		"pyxis": Pyxis(),
	}
}

// Preset returns the named preset, or nil if unknown.
func Preset(name string) *NodeSpec { return Presets()[name] }
