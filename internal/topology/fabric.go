package topology

// Fabric topologies. The original model connects every pair of nodes
// with a dedicated full-duplex wire (a "direct" fabric); real machines
// route traffic through a switched interconnect whose links are shared
// between jobs. This file describes such fabrics as data — a FabricSpec
// names a topology family plus its parameters, Build expands it into an
// explicit directed link graph, and Route maps a host pair onto a
// multi-hop link path under minimal or adaptive routing. The network
// layer (internal/net) turns each link into one fluid resource, so
// transfers of different jobs interfere exactly where their routed
// paths overlap.
//
// Two families beyond direct are provided:
//
//   - fat-tree: the k-ary three-level Clos of Al-Fares et al.: k pods
//     of k/2 edge and k/2 aggregation switches, (k/2)² core switches,
//     k³/4 hosts. Minimal routing uses the classic destination-hash
//     ("D-mod-k") up-path; adaptive routing picks the least-loaded
//     up-link at each level, falling back to the minimal choice on
//     ties — so on an idle fabric adaptive and minimal coincide.
//
//   - dragonfly+: groups of leaf and spine routers in a complete
//     bipartite graph (Shpiner et al.; the topology of the Kang et al.
//     inter-job interference study). Spines form per-index global
//     "rails": spine s of every group is all-to-all connected with
//     spine s of every other group. Minimal routing hashes the rail by
//     destination; adaptive picks the rail whose first up-link is
//     least loaded.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Fabric kind names accepted in FabricSpec.Kind.
const (
	// FabricDirect is a dedicated full-duplex wire per host pair — the
	// paper's original two-node model generalised to n hosts.
	FabricDirect = "direct"
	// FabricFatTree is the k-ary three-level fat-tree.
	FabricFatTree = "fat-tree"
	// FabricDragonflyPlus is the leaf/spine dragonfly+ of groups joined
	// by per-spine global rails.
	FabricDragonflyPlus = "dragonfly+"
)

// FabricSpec parameterises a fabric topology. Exactly the fields of
// the chosen Kind are consulted; the rest must be zero (Validate
// enforces this, so a spec file cannot silently carry dead knobs).
type FabricSpec struct {
	Kind string `json:"kind"`
	// Hosts is the host count of a direct fabric.
	Hosts int `json:"hosts,omitempty"`
	// K is the fat-tree arity (even); the fabric has k³/4 hosts.
	K int `json:"k,omitempty"`
	// Groups/RoutersPerGroup/HostsPerRouter shape a dragonfly+: each
	// group has RoutersPerGroup leaves and as many spines, each leaf
	// carries HostsPerRouter hosts.
	Groups          int `json:"groups,omitempty"`
	RoutersPerGroup int `json:"routersPerGroup,omitempty"`
	HostsPerRouter  int `json:"hostsPerRouter,omitempty"`
	// LinkGBs is the per-link capacity in GB/s; 0 inherits the node
	// spec's NIC wire bandwidth (every link tier shares one capacity —
	// tapered fabrics are out of scope).
	LinkGBs float64 `json:"linkGBs,omitempty"`
	// HopLatencyNs is the added one-way latency per switch hop beyond
	// the baseline NIC-to-NIC wire latency; 0 means DefaultHopLatencyNs.
	HopLatencyNs float64 `json:"hopLatencyNs,omitempty"`
}

// DefaultHopLatencyNs is the per-switch-hop latency used when a spec
// leaves HopLatencyNs zero (a port-to-port cut-through traversal).
const DefaultHopLatencyNs = 110

// Sanity ceilings for fabric shapes: generous for the target scale
// (O(1k–10k) hosts) while keeping link counts far from overflowing
// anything downstream. Direct fabrics are quadratic in links, so their
// host ceiling is much lower.
const (
	maxDirectHosts     = 256
	maxFatTreeK        = 32 // k=32 → 8192 hosts
	maxDflyGroups      = 64
	maxDflyRouters     = 32
	maxDflyHostsPerRtr = 64
	maxFabricHosts     = 1 << 14
)

// Validate checks the spec's internal consistency. Like NodeSpec's
// Validate it collects every violation rather than stopping at the
// first.
func (s *FabricSpec) Validate() error {
	var errs []error
	check := func(ok bool, format string, args ...any) {
		if !ok {
			errs = append(errs, fmt.Errorf(format, args...))
		}
	}
	zero := func(field string, v int) {
		check(v == 0, "%s is not a %s parameter (got %d)", field, s.Kind, v)
	}
	switch s.Kind {
	case FabricDirect:
		check(s.Hosts >= 2 && s.Hosts <= maxDirectHosts, "direct hosts = %d (want 2..%d)", s.Hosts, maxDirectHosts)
		zero("k", s.K)
		zero("groups", s.Groups)
		zero("routersPerGroup", s.RoutersPerGroup)
		zero("hostsPerRouter", s.HostsPerRouter)
	case FabricFatTree:
		check(s.K >= 2 && s.K <= maxFatTreeK && s.K%2 == 0, "fat-tree k = %d (want even, 2..%d)", s.K, maxFatTreeK)
		zero("hosts", s.Hosts)
		zero("groups", s.Groups)
		zero("routersPerGroup", s.RoutersPerGroup)
		zero("hostsPerRouter", s.HostsPerRouter)
	case FabricDragonflyPlus:
		check(s.Groups >= 2 && s.Groups <= maxDflyGroups, "dragonfly+ groups = %d (want 2..%d)", s.Groups, maxDflyGroups)
		check(s.RoutersPerGroup >= 1 && s.RoutersPerGroup <= maxDflyRouters,
			"dragonfly+ routers/group = %d (want 1..%d)", s.RoutersPerGroup, maxDflyRouters)
		check(s.HostsPerRouter >= 1 && s.HostsPerRouter <= maxDflyHostsPerRtr,
			"dragonfly+ hosts/router = %d (want 1..%d)", s.HostsPerRouter, maxDflyHostsPerRtr)
		if s.Groups > 0 && s.RoutersPerGroup > 0 && s.HostsPerRouter > 0 {
			check(s.Groups*s.RoutersPerGroup*s.HostsPerRouter <= maxFabricHosts,
				"dragonfly+ has %d hosts (max %d)", s.Groups*s.RoutersPerGroup*s.HostsPerRouter, maxFabricHosts)
		}
		zero("hosts", s.Hosts)
		zero("k", s.K)
	default:
		check(false, "unknown fabric kind %q (have %s, %s, %s)",
			s.Kind, FabricDirect, FabricFatTree, FabricDragonflyPlus)
	}
	check(s.LinkGBs >= 0 && !math.IsNaN(s.LinkGBs) && !math.IsInf(s.LinkGBs, 0), "link bandwidth %v", s.LinkGBs)
	check(s.HopLatencyNs >= 0 && !math.IsNaN(s.HopLatencyNs) && !math.IsInf(s.HopLatencyNs, 0),
		"hop latency %v", s.HopLatencyNs)
	return errors.Join(errs...)
}

// String renders the spec compactly for experiment keys and tables
// ("fat-tree/k=4", "dragonfly+/g=4xr=2xh=2", "direct/hosts=2").
func (s *FabricSpec) String() string {
	switch s.Kind {
	case FabricFatTree:
		return fmt.Sprintf("fat-tree/k=%d", s.K)
	case FabricDragonflyPlus:
		return fmt.Sprintf("dragonfly+/g=%dxr=%dxh=%d", s.Groups, s.RoutersPerGroup, s.HostsPerRouter)
	case FabricDirect:
		return fmt.Sprintf("direct/hosts=%d", s.Hosts)
	}
	return fmt.Sprintf("fabric(%q)", s.Kind)
}

// FabricLink is one directed link of the built graph. From/To are graph
// node ids: hosts occupy [0, NHosts), switches [NHosts, NHosts+NSwitches).
type FabricLink struct {
	From, To int
}

// Fabric is a built fabric: the explicit link graph plus the routing
// tables. It is immutable after Build, so concurrent experiments may
// share one (internal/net keeps its own per-world scratch).
type Fabric struct {
	Spec      FabricSpec
	NHosts    int
	NSwitches int
	Links     []FabricLink

	// linkAt[from] maps a graph node to the indices of its outgoing
	// links in neighbor order (routing tables below index into it).
	linkAt [][]int

	// fat-tree shape (half = k/2; switch layout documented in build).
	half int

	// dragonfly+ shape.
	groups, routers, perLeaf int
}

// Build expands the spec into an explicit fabric. The spec is validated
// first; an invalid spec returns an error, never a panic.
func (s *FabricSpec) Build() (*Fabric, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{Spec: *s}
	switch s.Kind {
	case FabricDirect:
		f.buildDirect(s.Hosts)
	case FabricFatTree:
		f.buildFatTree(s.K)
	case FabricDragonflyPlus:
		f.buildDfly(s.Groups, s.RoutersPerGroup, s.HostsPerRouter)
	}
	return f, nil
}

// MustBuild is Build for specs known statically (presets, tests).
func (s *FabricSpec) MustBuild() *Fabric {
	f, err := s.Build()
	if err != nil {
		panic(fmt.Sprintf("topology: invalid fabric spec: %v", err))
	}
	return f
}

// addLink appends a directed link and registers it with its origin.
func (f *Fabric) addLink(from, to int) int {
	idx := len(f.Links)
	f.Links = append(f.Links, FabricLink{From: from, To: to})
	f.linkAt[from] = append(f.linkAt[from], idx)
	return idx
}

// addPair appends both directions of a full-duplex link.
func (f *Fabric) addPair(a, b int) {
	f.addLink(a, b)
	f.addLink(b, a)
}

// LinkName names a link for fluid-resource debugging ("fl12.3-17").
func (f *Fabric) LinkName(i int) string {
	l := f.Links[i]
	return fmt.Sprintf("fl%d.%d-%d", i, l.From, l.To)
}

// buildDirect wires every ordered host pair, in the same (i, j)
// enumeration order as the legacy full mesh — the two-node preset
// therefore creates its fluid resources in exactly the historical
// order, part of the byte-identity argument (DESIGN.md §12).
func (f *Fabric) buildDirect(hosts int) {
	f.NHosts = hosts
	f.linkAt = make([][]int, hosts)
	for i := 0; i < hosts; i++ {
		for j := 0; j < hosts; j++ {
			if i != j {
				f.addLink(i, j)
			}
		}
	}
}

// Fat-tree layout: half = k/2.
//
//	hosts:  h in [0, k·half²); pod p = h/half², edge e = (h/half)%half,
//	        port = h%half.
//	edges:  NHosts + p·half + e
//	aggs:   NHosts + k·half + p·half + a
//	cores:  NHosts + 2·k·half + c, c in [0, half²); core c attaches to
//	        aggregation switch a = c/half of every pod as that switch's
//	        (c%half)-th up-neighbor.
//
// Up-link ordering in linkAt: a host's single up-link is its first
// link; an edge switch's up-links to aggs 0..half-1 precede its down
// links; likewise for aggs to cores. Build order guarantees this.
func (f *Fabric) buildFatTree(k int) {
	half := k / 2
	f.half = half
	f.NHosts = k * half * half
	f.NSwitches = 2*k*half + half*half
	f.linkAt = make([][]int, f.NHosts+f.NSwitches)
	edge := func(p, e int) int { return f.NHosts + p*half + e }
	agg := func(p, a int) int { return f.NHosts + k*half + p*half + a }
	core := func(c int) int { return f.NHosts + 2*k*half + c }
	// Up-links must be registered first at every switch (Route's up()
	// depends on it): agg→core before edge→agg before host links.
	for p := 0; p < k; p++ {
		for a := 0; a < half; a++ {
			for i := 0; i < half; i++ {
				f.addPair(agg(p, a), core(a*half+i))
			}
		}
	}
	for p := 0; p < k; p++ {
		for e := 0; e < half; e++ {
			for a := 0; a < half; a++ {
				f.addPair(edge(p, e), agg(p, a))
			}
		}
	}
	for h := 0; h < f.NHosts; h++ {
		p, e := h/(half*half), (h/half)%half
		f.addPair(h, edge(p, e))
	}
}

// Dragonfly+ layout:
//
//	hosts:  h in [0, g·r·perLeaf); group gi = h/(r·perLeaf),
//	        leaf li = (h/perLeaf)%r.
//	leaves: NHosts + gi·r + li
//	spines: NHosts + g·r + gi·r + si
//
// Intra-group leaves and spines form a complete bipartite graph; spine
// s of every group is all-to-all connected with spine s of every other
// group (the per-index global rail). linkAt[leaf] begins with the r
// up-links in spine order; linkAt[spine] begins with the r down-links
// in leaf order, followed by the global links in ascending peer-group
// order.
func (f *Fabric) buildDfly(g, r, perLeaf int) {
	f.groups, f.routers, f.perLeaf = g, r, perLeaf
	f.NHosts = g * r * perLeaf
	f.NSwitches = 2 * g * r
	f.linkAt = make([][]int, f.NHosts+f.NSwitches)
	leaf := func(gi, li int) int { return f.NHosts + gi*r + li }
	spine := func(gi, si int) int { return f.NHosts + g*r + gi*r + si }
	for gi := 0; gi < g; gi++ {
		for li := 0; li < r; li++ {
			for si := 0; si < r; si++ {
				f.addPair(leaf(gi, li), spine(gi, si))
			}
		}
	}
	for gi := 0; gi < g; gi++ {
		for si := 0; si < r; si++ {
			for gj := 0; gj < g; gj++ {
				if gj != gi {
					f.addLink(spine(gi, si), spine(gj, si))
				}
			}
		}
	}
	for h := 0; h < f.NHosts; h++ {
		gi, li := h/(r*perLeaf), (h/perLeaf)%r
		f.addPair(h, leaf(gi, li))
	}
}

// Diameter returns the hop count of the longest minimal route (host
// links included): 1 for direct, 6 for a fat-tree, 5 for dragonfly+.
func (f *Fabric) Diameter() int {
	switch f.Spec.Kind {
	case FabricFatTree:
		return 6
	case FabricDragonflyPlus:
		return 5
	}
	return 1
}

// LoadFunc reports the current congestion of a link (any monotone
// measure works; internal/net passes fluid utilization). Adaptive
// routing consults it at each up-path decision; a nil LoadFunc selects
// pure minimal routing.
type LoadFunc func(link int) float64

// pick returns the up-neighbor choice for a routing decision: the
// minimal (destination-hashed) candidate unless load reports a strictly
// less congested one. Candidates are evaluated in ascending order with
// strict improvement required, so ties — an idle fabric in particular —
// always resolve to the minimal choice: a single job on an otherwise
// quiet fabric takes byte-identical paths under both policies.
func pick(n int, minimal int, load LoadFunc, linkOf func(choice int) int) int {
	if load == nil || n <= 1 {
		return minimal
	}
	best, bestLoad := minimal, load(linkOf(minimal))
	for c := 0; c < n; c++ {
		if c == minimal {
			continue
		}
		if l := load(linkOf(c)); l < bestLoad {
			best, bestLoad = c, l
		}
	}
	return best
}

// Route appends the link indices of a path from host src to host dst
// onto buf[:0] and returns it. load drives adaptive up-path choices
// (nil = minimal routing). Down-paths are deterministic in all three
// families, so the chosen up-path fixes the whole route. src and dst
// must be distinct valid hosts.
func (f *Fabric) Route(src, dst int, load LoadFunc, buf []int) []int {
	if src < 0 || src >= f.NHosts || dst < 0 || dst >= f.NHosts || src == dst {
		panic(fmt.Sprintf("topology: bad route %d→%d on %d hosts", src, dst, f.NHosts))
	}
	buf = buf[:0]
	switch f.Spec.Kind {
	case FabricDirect:
		// Link enumeration order: src*(hosts-1) skips the self slot.
		idx := src*(f.NHosts-1) + dst
		if dst > src {
			idx--
		}
		return append(buf, idx)
	case FabricFatTree:
		return f.routeFatTree(src, dst, load, buf)
	case FabricDragonflyPlus:
		return f.routeDfly(src, dst, load, buf)
	}
	panic(fmt.Sprintf("topology: unroutable fabric kind %q", f.Spec.Kind))
}

// up returns node n's i-th up-link (linkAt orders up-links first).
func (f *Fabric) up(n, i int) int { return f.linkAt[n][i] }

// downTo returns the link from switch sw to neighbor `to`, by scanning
// sw's links (switch radix is small and constant per family).
func (f *Fabric) downTo(sw, to int) int {
	for _, li := range f.linkAt[sw] {
		if f.Links[li].To == to {
			return li
		}
	}
	panic(fmt.Sprintf("topology: no link %d→%d", sw, to))
}

func (f *Fabric) routeFatTree(src, dst int, load LoadFunc, buf []int) []int {
	half := f.half
	sp, se := src/(half*half), (src/half)%half
	dp, de := dst/(half*half), (dst/half)%half
	srcEdge := f.NHosts + sp*half + se
	dstEdge := f.NHosts + dp*half + de
	buf = append(buf, f.up(src, 0)) // host → edge
	if srcEdge == dstEdge {
		return append(buf, f.downTo(srcEdge, dst))
	}
	// Up to an aggregation switch: D-mod-k hash, adaptive override.
	a := pick(half, dst%half, load, func(c int) int { return f.up(srcEdge, c) })
	aggUp := f.up(srcEdge, a)
	srcAgg := f.Links[aggUp].To
	buf = append(buf, aggUp)
	if sp == dp {
		return append(buf, f.downTo(srcAgg, dstEdge), f.downTo(dstEdge, dst))
	}
	// Up to a core switch of srcAgg's column; it lands on the same
	// aggregation position a in the destination pod.
	i := pick(half, (dst/half)%half, load, func(c int) int { return f.up(srcAgg, c) })
	coreUp := f.up(srcAgg, i)
	core := f.Links[coreUp].To
	dstAgg := f.NHosts + f.Spec.K*half + dp*half + a
	return append(buf,
		coreUp,
		f.downTo(core, dstAgg),
		f.downTo(dstAgg, dstEdge),
		f.downTo(dstEdge, dst),
	)
}

func (f *Fabric) routeDfly(src, dst int, load LoadFunc, buf []int) []int {
	g, r, perLeaf := f.groups, f.routers, f.perLeaf
	sg, sl := src/(r*perLeaf), (src/perLeaf)%r
	dg, dl := dst/(r*perLeaf), (dst/perLeaf)%r
	srcLeaf := f.NHosts + sg*r + sl
	dstLeaf := f.NHosts + dg*r + dl
	buf = append(buf, f.up(src, 0)) // host → leaf
	if srcLeaf == dstLeaf {
		return append(buf, f.downTo(srcLeaf, dst))
	}
	// Choose a spine rail: destination hash, adaptive override on the
	// leaf's up-link loads.
	s := pick(r, dst%r, load, func(c int) int { return f.up(srcLeaf, c) })
	spineUp := f.up(srcLeaf, s)
	srcSpine := f.Links[spineUp].To
	buf = append(buf, spineUp)
	if sg == dg {
		return append(buf, f.downTo(srcSpine, dstLeaf), f.downTo(dstLeaf, dst))
	}
	dstSpine := f.NHosts + g*r + dg*r + s
	return append(buf,
		f.downTo(srcSpine, dstSpine), // global rail hop
		f.downTo(dstSpine, dstLeaf),
		f.downTo(dstLeaf, dst),
	)
}

// Fabric presets: the shapes the experiments and the fuzz corpus use.

// TwoNodeFabric is the degenerate fabric of the paper's original
// model: two hosts, one full-duplex wire. Running any two-node
// experiment through it must be byte-identical to the legacy network
// (the differential battery in internal/runner enforces this).
func TwoNodeFabric() *FabricSpec { return &FabricSpec{Kind: FabricDirect, Hosts: 2} }

// FatTreeFabric returns the k-ary fat-tree spec (k³/4 hosts).
func FatTreeFabric(k int) *FabricSpec { return &FabricSpec{Kind: FabricFatTree, K: k} }

// DflyFabric returns a dragonfly+ spec of g groups, r leaf and r spine
// routers per group, h hosts per leaf (g·r·h hosts).
func DflyFabric(g, r, h int) *FabricSpec {
	return &FabricSpec{Kind: FabricDragonflyPlus, Groups: g, RoutersPerGroup: r, HostsPerRouter: h}
}

// FabricPreset returns a named fabric spec, or nil if unknown.
func FabricPreset(name string) *FabricSpec {
	switch name {
	case "two-node":
		return TwoNodeFabric()
	case "fattree-k4":
		return FatTreeFabric(4) // 16 hosts — the golden experiments
	case "fattree-k8":
		return FatTreeFabric(8) // 128 hosts
	case "fattree-k16":
		return FatTreeFabric(16) // 1024 hosts — the scale benchmark
	case "dflyplus-small":
		return DflyFabric(4, 2, 2) // 16 hosts — the golden experiments
	case "dflyplus-medium":
		return DflyFabric(8, 4, 4) // 128 hosts
	}
	return nil
}

// FabricPresetNames lists the named fabric presets in a stable order.
func FabricPresetNames() []string {
	return []string{"two-node", "fattree-k4", "fattree-k8", "fattree-k16", "dflyplus-small", "dflyplus-medium"}
}

// ReadFabricSpec parses and validates a fabric spec from JSON.
func ReadFabricSpec(r io.Reader) (*FabricSpec, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	s := new(FabricSpec)
	if err := json.Unmarshal(data, s); err != nil {
		return nil, fmt.Errorf("topology: parsing fabric spec: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("topology: invalid fabric spec: %w", err)
	}
	return s, nil
}

// WriteFabricSpec serialises a fabric spec to w.
func WriteFabricSpec(w io.Writer, s *FabricSpec) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// LoadFabricSpecFile reads a validated fabric spec from a JSON file.
func LoadFabricSpecFile(path string) (*FabricSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFabricSpec(f)
}
