package topology

import (
	"testing"
	"testing/quick"
)

func TestPresetsValidate(t *testing.T) {
	for name, spec := range Presets() {
		if err := spec.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestPresetShapes(t *testing.T) {
	cases := []struct {
		spec  *NodeSpec
		cores int
		numa  int
	}{
		{Henri(), 36, 4},
		{Bora(), 36, 2},
		{Billy(), 64, 8},
		{Pyxis(), 64, 2},
	}
	for _, c := range cases {
		if got := c.spec.Cores(); got != c.cores {
			t.Errorf("%s: cores = %d, want %d", c.spec.Name, got, c.cores)
		}
		if got := c.spec.NUMANodes(); got != c.numa {
			t.Errorf("%s: NUMA nodes = %d, want %d", c.spec.Name, got, c.numa)
		}
	}
}

func TestNUMAOfCoreMapping(t *testing.T) {
	h := Henri()
	// 9 cores per NUMA node, NUMA-major numbering.
	for _, tc := range []struct{ core, numa int }{
		{0, 0}, {8, 0}, {9, 1}, {17, 1}, {18, 2}, {35, 3},
	} {
		if got := h.NUMAOfCore(tc.core); got != tc.numa {
			t.Errorf("NUMAOfCore(%d) = %d, want %d", tc.core, got, tc.numa)
		}
	}
}

func TestNUMAOfCorePanicsOutOfRange(t *testing.T) {
	h := Henri()
	for _, core := range []int{-1, 36, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NUMAOfCore(%d) did not panic", core)
				}
			}()
			h.NUMAOfCore(core)
		}()
	}
}

func TestSocketOfNUMA(t *testing.T) {
	h := Henri() // 2 NUMA per socket
	for _, tc := range []struct{ numa, socket int }{{0, 0}, {1, 0}, {2, 1}, {3, 1}} {
		if got := h.SocketOfNUMA(tc.numa); got != tc.socket {
			t.Errorf("SocketOfNUMA(%d) = %d, want %d", tc.numa, got, tc.socket)
		}
	}
	b := Bora() // 1 NUMA per socket
	if b.SocketOfNUMA(1) != 1 {
		t.Error("bora SocketOfNUMA(1) != 1")
	}
}

func TestLastCoreOfNUMA(t *testing.T) {
	h := Henri()
	if got := h.LastCoreOfNUMA(1); got != 17 {
		t.Errorf("LastCoreOfNUMA(1) = %d, want 17", got)
	}
	if got := h.LastCoreOfNUMA(3); got != 35 {
		t.Errorf("LastCoreOfNUMA(3) = %d, want 35", got)
	}
}

func TestTurboTableLimit(t *testing.T) {
	tt := TurboTable{{4, 3.0}, {8, 2.7}, {16, 2.4}, {36, 2.3}}
	for _, tc := range []struct {
		active int
		want   GHz
	}{
		{1, 3.0}, {4, 3.0}, {5, 2.7}, {8, 2.7}, {9, 2.4}, {16, 2.4}, {17, 2.3}, {36, 2.3}, {40, 2.3},
	} {
		if got := tt.Limit(tc.active); got != tc.want {
			t.Errorf("Limit(%d) = %v, want %v", tc.active, got, tc.want)
		}
	}
	var empty TurboTable
	if empty.Limit(1) != 0 {
		t.Error("empty table should return 0")
	}
}

func TestHenriAVXLicenceMatchesPaper(t *testing.T) {
	// Fig 3: 4 AVX-512 cores run at 3.0 GHz, 20 at 2.3 GHz.
	h := Henri()
	if got := h.Freq.Turbo[AVX512].Limit(4); got != 3.0 {
		t.Errorf("AVX512 limit(4) = %v, want 3.0", got)
	}
	if got := h.Freq.Turbo[AVX512].Limit(20); got != 2.3 {
		t.Errorf("AVX512 limit(20) = %v, want 2.3", got)
	}
	// Scalar comm core holds 2.5 GHz in both cases.
	if got := h.Freq.Turbo[Scalar].Limit(21); got != 2.5 {
		t.Errorf("scalar limit(21) = %v, want 2.5", got)
	}
}

func TestValidateCatchesBadSpecs(t *testing.T) {
	s := Henri()
	s.Sockets = 0
	if s.Validate() == nil {
		t.Error("zero sockets accepted")
	}
	s = Henri()
	s.NIC.NUMA = 99
	if s.Validate() == nil {
		t.Error("out-of-range NIC NUMA accepted")
	}
	s = Henri()
	s.Freq.Turbo[Scalar] = TurboTable{{2, 2.5}} // does not cover 36 cores
	if s.Validate() == nil {
		t.Error("short turbo table accepted")
	}
	s = Henri()
	s.Mem.RemoteLatencyNs = 1 // below local
	if s.Validate() == nil {
		t.Error("remote < local latency accepted")
	}
}

// Property: every core maps to a valid NUMA node and the mapping is
// surjective onto [0, NUMANodes).
func TestPropertyCoreNUMAMapping(t *testing.T) {
	for name, spec := range Presets() {
		seen := make(map[int]bool)
		for c := 0; c < spec.Cores(); c++ {
			n := spec.NUMAOfCore(c)
			if n < 0 || n >= spec.NUMANodes() {
				t.Fatalf("%s: core %d maps to NUMA %d", name, c, n)
			}
			seen[n] = true
		}
		if len(seen) != spec.NUMANodes() {
			t.Errorf("%s: only %d of %d NUMA nodes have cores", name, len(seen), spec.NUMANodes())
		}
	}
}

// Property: turbo limits never increase with more active cores.
func TestPropertyTurboMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		x, y := int(a%64)+1, int(b%64)+1
		if x > y {
			x, y = y, x
		}
		for _, spec := range Presets() {
			for c := Scalar; c < numVecClasses; c++ {
				if spec.Freq.Turbo[c].Limit(x) < spec.Freq.Turbo[c].Limit(y) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
