package topology

import (
	"bytes"
	"testing"
)

// FuzzReadSpec feeds arbitrary bytes through the `-spec` JSON loading
// path and checks that it either rejects the input with an error or
// yields a spec whose basic invariants hold and that survives a
// marshal/parse round-trip. Malformed machine-spec files must never
// panic the CLI.
func FuzzReadSpec(f *testing.F) {
	for _, spec := range Presets() {
		data, err := spec.MarshalJSON()
		if err != nil {
			f.Fatalf("marshal preset %s: %v", spec.Name, err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"name":"x","sockets":-3}`))
	f.Add([]byte(`{"name":"x","sockets":99999999,"numaPerSocket":99999999,"coresPerNUMA":99999999}`))
	f.Add([]byte(`{"name":"x","freq":{"turbo":{"quantum":[{"maxActive":1,"freq":2}]}}}`))
	f.Add([]byte(`{"name":"x","nic":{"numa":1000}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadSpec(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		// Accepted specs must be safe to interrogate.
		if s.Cores() <= 0 {
			t.Fatalf("validated spec has %d cores", s.Cores())
		}
		if n := s.NUMANodes(); n <= 0 {
			t.Fatalf("validated spec has %d NUMA nodes", n)
		}
		for core := 0; core < s.Cores(); core += 1 + s.CoresPerNUMA/2 {
			numa := s.NUMAOfCore(core)
			s.SocketOfNUMA(numa)
			if last := s.LastCoreOfNUMA(numa); last < core {
				t.Fatalf("last core of NUMA %d is %d, before core %d", numa, last, core)
			}
		}
		if s.NIC.NUMA < 0 || s.NIC.NUMA >= s.NUMANodes() {
			t.Fatalf("validated spec has NIC on NUMA %d of %d", s.NIC.NUMA, s.NUMANodes())
		}
		// Round-trip: writing the accepted spec and reading it back must
		// reproduce the same machine shape.
		var buf bytes.Buffer
		if err := WriteSpec(&buf, s); err != nil {
			t.Fatalf("marshal accepted spec: %v", err)
		}
		s2, err := ReadSpec(&buf)
		if err != nil {
			t.Fatalf("re-read own output: %v", err)
		}
		if s2.Name != s.Name || s2.Cores() != s.Cores() || s2.NUMANodes() != s.NUMANodes() {
			t.Fatalf("round-trip changed shape: %q %d/%d → %q %d/%d",
				s.Name, s.Cores(), s.NUMANodes(), s2.Name, s2.Cores(), s2.NUMANodes())
		}
	})
}
