// Package topology describes the hardware of the simulated clusters:
// sockets, NUMA nodes, cores, memory controllers, inter-NUMA links, and
// the NIC, plus the frequency and throughput parameters that calibrate
// the performance models.
//
// Presets reproduce the four clusters of the paper (§2.2): henri (dual
// Xeon Gold 6140, 4 NUMA nodes, InfiniBand EDR), bora (dual Xeon Gold
// 6240, 2 NUMA nodes, Omni-Path), billy (dual EPYC 7502 Zen2, 8 NUMA
// nodes, InfiniBand HDR) and pyxis (dual ThunderX2, 2 NUMA nodes,
// InfiniBand EDR).
package topology

import (
	"errors"
	"fmt"
)

// VecClass is the widest vector instruction class a kernel uses; it
// selects both the flops/cycle throughput and the frequency license.
type VecClass int

const (
	// Scalar covers ordinary integer/FP code (no wide vectors).
	Scalar VecClass = iota
	// AVX2 covers 256-bit vector code (or NEON-class on ARM).
	AVX2
	// AVX512 covers 512-bit vector code, with its heavier licence.
	AVX512
	numVecClasses
)

func (v VecClass) String() string {
	switch v {
	case Scalar:
		return "scalar"
	case AVX2:
		return "avx2"
	case AVX512:
		return "avx512"
	}
	return fmt.Sprintf("VecClass(%d)", int(v))
}

// GHz expresses frequencies in the spec tables.
type GHz = float64

// TurboTable gives the per-core frequency limit as a function of the
// number of active cores running a given vector class. Steps must be
// sorted by ascending MaxActive; the last entry is the all-core limit
// and must have MaxActive ≥ the node's core count.
type TurboTable []TurboStep

// TurboStep is one row of a TurboTable.
type TurboStep struct {
	MaxActive int // applies while active cores ≤ MaxActive
	Freq      GHz
}

// Limit returns the frequency limit for `active` running cores.
func (t TurboTable) Limit(active int) GHz {
	for _, s := range t {
		if active <= s.MaxActive {
			return s.Freq
		}
	}
	if len(t) == 0 {
		return 0
	}
	return t[len(t)-1].Freq
}

// FreqSpec describes a node's frequency domains.
type FreqSpec struct {
	// CoreMin/CoreBase are the lowest (idle/powersave) and nominal core
	// frequencies; userspace governors may pin anywhere in
	// [CoreMin, CoreBase].
	CoreMin, CoreBase GHz
	// Turbo maps active-core count to the frequency ceiling, per vector
	// class, when turbo-boost is enabled.
	Turbo [numVecClasses]TurboTable
	// UncoreMin/UncoreMax bound the uncore (LLC + memory controller)
	// frequency domain.
	UncoreMin, UncoreMax GHz
}

// NICSpec describes the network interface of a node.
type NICSpec struct {
	// NUMA is the NUMA node the NIC's PCIe root port hangs off.
	NUMA int
	// WireGBs is the asymptotic link throughput in GB/s (e.g. EDR ≈ 12.5
	// raw, ~10.5 effective).
	WireGBs float64
	// WireLatencyNs is the one-way hardware latency (switch + cable +
	// NIC-to-NIC), in nanoseconds.
	WireLatencyNs float64
	// PCIeGBs is the PCIe link throughput between NIC and memory system.
	PCIeGBs float64
	// SendCycles/RecvCycles are the CPU cycles of the software send/recv
	// overhead (the LogP "o"), spent on the core driving communication.
	SendCycles, RecvCycles float64
	// SendMemAccesses/RecvMemAccesses are the number of memory/uncore
	// round-trips on the critical path of a small message (doorbells,
	// descriptor reads/writes, CQ polling). Each costs the load-dependent
	// memory access latency, so this term couples small-message latency
	// to memory contention and to thread placement.
	SendMemAccesses, RecvMemAccesses float64
	// NoiseFrac is the relative amplitude of the run-to-run jitter on
	// communication timings (Omni-Path shows a much wider deviation than
	// InfiniBand in the paper).
	NoiseFrac float64
	// DMAPriority is the NIC DMA engine's arbitration advantage over core
	// streams at the memory controller (≥ 1) when uncontended.
	DMAPriority float64
	// DMAPriorityPerStream adds to the DMA arbitration priority per
	// concurrent core stream on the crossed controller. Hardware DMA
	// engines retain a guaranteed service share as core pressure grows,
	// so their effective priority rises with contention; this knob
	// calibrates how much (see DESIGN.md §4).
	DMAPriorityPerStream float64
	// EagerMax is the largest message size (bytes) sent eagerly; larger
	// messages use the rendezvous protocol.
	EagerMax int
	// RegisterCyclesPerKB is the memory-registration (pin-down) cost for
	// rendezvous buffers, amortised by the registration cache.
	RegisterCyclesPerKB float64
}

// MemSpec describes a node's memory system.
type MemSpec struct {
	// CtrlGBs is each NUMA node's memory-controller bandwidth in GB/s at
	// UncoreMax (it scales with uncore frequency).
	CtrlGBs float64
	// LinkGBs is the cross-socket (UPI/xGMI/CCPI) bandwidth, in GB/s.
	// All traffic between two sockets shares this one resource — the
	// physical reality behind Fig 4a's latency jump once computing cores
	// spill onto the communication thread's socket.
	LinkGBs float64
	// MeshGBs is the on-die bandwidth between two NUMA nodes of the
	// same socket (sub-NUMA clustering halves); each intra-socket pair
	// gets its own resource of this capacity.
	MeshGBs float64
	// StreamPerCoreGBs is the maximum bandwidth a single core can draw
	// (limited by its load/store units and MSHRs).
	StreamPerCoreGBs float64
	// LocalLatencyNs / RemoteLatencyNs are uncontended access latencies.
	LocalLatencyNs, RemoteLatencyNs float64
	// ContentionK scales how fast access latency grows with bus
	// utilization: lat = base × (1 + K·ρ²/(1−ρ)), capped.
	ContentionK float64
	// ContentionMaxFactor caps the per-resource latency inflation factor.
	ContentionMaxFactor float64
	// StreamEfficiency is the per-concurrent-stream loss of effective
	// controller capacity (bank conflicts, row-buffer interference):
	// C_eff = CtrlGBs / (1 + StreamEfficiency·(nStreams−1)).
	StreamEfficiency float64
	// UncoreLatFactor is the fraction of the memory access latency that
	// scales with the inverse uncore frequency: lat(f) = base × (1 +
	// UncoreLatFactor·(UncoreMax/f − 1)). The paper finds uncore
	// frequency has only a small (≈5%) effect on small-message latency.
	UncoreLatFactor float64
}

// NodeSpec is the full description of one machine model.
type NodeSpec struct {
	Name          string
	Sockets       int
	NUMAPerSocket int
	CoresPerNUMA  int
	Freq          FreqSpec
	Mem           MemSpec
	NIC           NICSpec
	// FlopsPerCycle gives per-core flops/cycle per vector class
	// (double precision, FMA counted as 2).
	FlopsPerCycle [numVecClasses]float64
	// RuntimeCyclesPerMsg is the CPU cost of the task-based runtime's
	// software path for one message (submission, dependency resolution,
	// scheduler push/pop, worker handoff, communication-thread
	// processing). Calibrated against §5.2: +38 µs on henri, +23 µs on
	// billy, +45 µs on pyxis.
	RuntimeCyclesPerMsg float64
	// Hyperthreading reports whether SMT is enabled (it is disabled on
	// henri and bora; we model one hardware thread per core everywhere,
	// the flag is kept for documentation and validation).
	Hyperthreading bool
}

// Clone returns a deep copy of the spec: mutating the copy (turbo
// tables included) never affects the original, so concurrent
// experiments can each own one spec without synchronisation.
func (s *NodeSpec) Clone() *NodeSpec {
	c := *s
	for i, tt := range s.Freq.Turbo {
		c.Freq.Turbo[i] = append(TurboTable(nil), tt...)
	}
	return &c
}

// Cores returns the total number of cores of the node.
func (s *NodeSpec) Cores() int { return s.Sockets * s.NUMAPerSocket * s.CoresPerNUMA }

// NUMANodes returns the number of NUMA nodes.
func (s *NodeSpec) NUMANodes() int { return s.Sockets * s.NUMAPerSocket }

// NUMAOfCore returns the NUMA node a core belongs to. Cores are numbered
// NUMA-major: cores [0, CoresPerNUMA) are NUMA 0, etc., matching the
// "logical core numbering order" binding used in the paper's benchmarks.
func (s *NodeSpec) NUMAOfCore(core int) int {
	if core < 0 || core >= s.Cores() {
		panic(fmt.Sprintf("topology: core %d out of range [0,%d)", core, s.Cores()))
	}
	return core / s.CoresPerNUMA
}

// SocketOfNUMA returns the socket a NUMA node belongs to.
func (s *NodeSpec) SocketOfNUMA(numa int) int {
	if numa < 0 || numa >= s.NUMANodes() {
		panic(fmt.Sprintf("topology: NUMA %d out of range [0,%d)", numa, s.NUMANodes()))
	}
	return numa / s.NUMAPerSocket
}

// LastCoreOfNUMA returns the highest-numbered core of a NUMA node; the
// paper binds the communication thread to "the last core of the other
// NUMA node".
func (s *NodeSpec) LastCoreOfNUMA(numa int) int {
	return (numa+1)*s.CoresPerNUMA - 1
}

// Sanity ceilings for machine shapes; generous for any real node, tight
// enough that Sockets×NUMAPerSocket×CoresPerNUMA cannot overflow.
const (
	maxSockets       = 64
	maxNUMAPerSocket = 64
	maxCoresPerNUMA  = 1 << 12
)

// Validate checks internal consistency of the spec.
func (s *NodeSpec) Validate() error {
	var errs []error
	check := func(ok bool, format string, args ...any) {
		if !ok {
			errs = append(errs, fmt.Errorf(format, args...))
		}
	}
	check(s.Name != "", "missing name")
	// Upper bounds keep Cores() far from integer overflow and reject
	// absurd machine-spec files before they can stall or panic anything
	// downstream (specs arrive unchecked from `-spec` JSON files).
	check(s.Sockets > 0 && s.Sockets <= maxSockets, "sockets = %d", s.Sockets)
	check(s.NUMAPerSocket > 0 && s.NUMAPerSocket <= maxNUMAPerSocket, "NUMA/socket = %d", s.NUMAPerSocket)
	check(s.CoresPerNUMA > 0 && s.CoresPerNUMA <= maxCoresPerNUMA, "cores/NUMA = %d", s.CoresPerNUMA)
	check(s.Freq.CoreMin > 0 && s.Freq.CoreMin <= s.Freq.CoreBase,
		"core freq range [%v,%v]", s.Freq.CoreMin, s.Freq.CoreBase)
	check(s.Freq.UncoreMin > 0 && s.Freq.UncoreMin <= s.Freq.UncoreMax,
		"uncore freq range [%v,%v]", s.Freq.UncoreMin, s.Freq.UncoreMax)
	for c := Scalar; c < numVecClasses; c++ {
		tt := s.Freq.Turbo[c]
		check(len(tt) > 0, "missing %v turbo table", c)
		prev := 0
		for i, step := range tt {
			check(step.MaxActive > prev, "%v turbo table step %d not ascending", c, i)
			check(step.Freq > 0, "%v turbo table step %d freq %v", c, i, step.Freq)
			prev = step.MaxActive
		}
		if len(tt) > 0 {
			check(tt[len(tt)-1].MaxActive >= s.Cores(),
				"%v turbo table does not cover %d cores", c, s.Cores())
		}
		check(s.FlopsPerCycle[c] > 0, "flops/cycle for %v", c)
	}
	check(s.Mem.CtrlGBs > 0, "controller bandwidth %v", s.Mem.CtrlGBs)
	check(s.Mem.LinkGBs > 0, "cross-socket bandwidth %v", s.Mem.LinkGBs)
	check(s.Mem.MeshGBs > 0, "intra-socket mesh bandwidth %v", s.Mem.MeshGBs)
	check(s.Mem.StreamPerCoreGBs > 0, "per-core stream bandwidth %v", s.Mem.StreamPerCoreGBs)
	check(s.Mem.LocalLatencyNs > 0 && s.Mem.RemoteLatencyNs >= s.Mem.LocalLatencyNs,
		"memory latencies local %v remote %v", s.Mem.LocalLatencyNs, s.Mem.RemoteLatencyNs)
	check(s.Mem.ContentionMaxFactor >= 1, "contention cap %v", s.Mem.ContentionMaxFactor)
	check(s.NIC.NUMA >= 0 && s.NIC.NUMA < s.NUMANodes(), "NIC NUMA %d", s.NIC.NUMA)
	check(s.NIC.WireGBs > 0, "wire bandwidth %v", s.NIC.WireGBs)
	check(s.NIC.PCIeGBs > 0, "PCIe bandwidth %v", s.NIC.PCIeGBs)
	check(s.NIC.WireLatencyNs > 0, "wire latency %v", s.NIC.WireLatencyNs)
	check(s.NIC.SendCycles > 0 && s.NIC.RecvCycles > 0,
		"software overheads send %v recv %v", s.NIC.SendCycles, s.NIC.RecvCycles)
	check(s.NIC.DMAPriority >= 1, "DMA priority %v", s.NIC.DMAPriority)
	return errors.Join(errs...)
}
