package topology

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

func TestFabricShapes(t *testing.T) {
	cases := []struct {
		name  string
		spec  *FabricSpec
		hosts int
		sw    int
		links int
		diam  int
	}{
		// direct n: n(n-1) directed links.
		{"two-node", TwoNodeFabric(), 2, 0, 2, 1},
		{"direct-4", &FabricSpec{Kind: FabricDirect, Hosts: 4}, 4, 0, 12, 1},
		// fat-tree k: k³/4 hosts, 5k²/4 switches, full-duplex links:
		// hosts (k³/4) + edge-agg (k·(k/2)²) + agg-core (k·(k/2)²),
		// each counted twice for both directions.
		{"fattree-k4", FatTreeFabric(4), 16, 20, 2 * (16 + 16 + 16), 6},
		{"fattree-k8", FatTreeFabric(8), 128, 80, 2 * (128 + 128 + 128), 6},
		{"fattree-k16", FatTreeFabric(16), 1024, 320, 2 * (1024 + 1024 + 1024), 6},
		// dfly+ g·r·h hosts, 2gr switches; links: hosts + leaf-spine
		// (g·r²) full-duplex, plus g·r·(g-1) directed globals.
		{"dflyplus-small", DflyFabric(4, 2, 2), 16, 16, 2*(16+4*4) + 4*2*3, 5},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f, err := c.spec.Build()
			if err != nil {
				t.Fatalf("Build: %v", err)
			}
			if f.NHosts != c.hosts || f.NSwitches != c.sw || len(f.Links) != c.links {
				t.Fatalf("shape = %d hosts, %d switches, %d links; want %d, %d, %d",
					f.NHosts, f.NSwitches, len(f.Links), c.hosts, c.sw, c.links)
			}
			if d := f.Diameter(); d != c.diam {
				t.Fatalf("Diameter = %d, want %d", d, c.diam)
			}
			for i, l := range f.Links {
				if l.From < 0 || l.From >= f.NHosts+f.NSwitches || l.To < 0 || l.To >= f.NHosts+f.NSwitches || l.From == l.To {
					t.Fatalf("link %d = %+v out of range", i, l)
				}
			}
		})
	}
}

// checkRoute verifies a returned path is a connected host-to-host walk.
func checkRoute(t *testing.T, f *Fabric, src, dst int, path []int) {
	t.Helper()
	if len(path) == 0 {
		t.Fatalf("route %d→%d: empty path", src, dst)
	}
	at := src
	for _, li := range path {
		if li < 0 || li >= len(f.Links) {
			t.Fatalf("route %d→%d: link index %d out of range", src, dst, li)
		}
		l := f.Links[li]
		if l.From != at {
			t.Fatalf("route %d→%d: link %d starts at %d, cursor at %d", src, dst, li, l.From, at)
		}
		at = l.To
	}
	if at != dst {
		t.Fatalf("route %d→%d: ends at %d", src, dst, at)
	}
	if len(path) > f.Diameter() {
		t.Fatalf("route %d→%d: %d hops exceeds diameter %d", src, dst, len(path), f.Diameter())
	}
}

func TestFabricRoutesAllPairs(t *testing.T) {
	for _, name := range []string{"two-node", "fattree-k4", "fattree-k8", "dflyplus-small", "dflyplus-medium"} {
		t.Run(name, func(t *testing.T) {
			f := FabricPreset(name).MustBuild()
			var buf []int
			for s := 0; s < f.NHosts; s++ {
				for d := 0; d < f.NHosts; d++ {
					if s == d {
						continue
					}
					buf = f.Route(s, d, nil, buf)
					checkRoute(t, f, s, d, buf)
				}
			}
		})
	}
}

// Minimal routing is a pure function of (src, dst); and with every link
// equally loaded, adaptive must agree with it (ties resolve minimal).
func TestFabricRoutingDeterministicAndTieBreak(t *testing.T) {
	flat := func(int) float64 { return 0.5 }
	for _, name := range []string{"fattree-k4", "dflyplus-small"} {
		t.Run(name, func(t *testing.T) {
			f := FabricPreset(name).MustBuild()
			for s := 0; s < f.NHosts; s++ {
				for d := 0; d < f.NHosts; d++ {
					if s == d {
						continue
					}
					a := f.Route(s, d, nil, nil)
					b := f.Route(s, d, nil, nil)
					c := f.Route(s, d, flat, nil)
					if fmt.Sprint(a) != fmt.Sprint(b) {
						t.Fatalf("minimal route %d→%d unstable: %v vs %v", s, d, a, b)
					}
					if fmt.Sprint(a) != fmt.Sprint(c) {
						t.Fatalf("uniform-load adaptive route %d→%d = %v, minimal %v", s, d, c, a)
					}
				}
			}
		})
	}
}

// Adaptive routing must steer around a loaded link when an idle
// alternative exists, and the detour must still be a valid route.
func TestFabricAdaptiveAvoidsLoad(t *testing.T) {
	f := FabricPreset("fattree-k4").MustBuild()
	src, dst := 0, 15 // cross-pod: two adaptive decisions (agg, core)
	min := f.Route(src, dst, nil, nil)
	loaded := map[int]float64{min[1]: 0.9} // congest the minimal edge→agg up-link
	load := func(li int) float64 { return loaded[li] }
	adaptive := f.Route(src, dst, load, nil)
	checkRoute(t, f, src, dst, adaptive)
	for _, li := range adaptive {
		if li == min[1] {
			t.Fatalf("adaptive route %v kept the congested link %d (minimal %v)", adaptive, min[1], min)
		}
	}
}

// Direct fabrics must enumerate links in the legacy full-mesh order:
// (0,1), (0,2), ..., (1,0), ... — the two-node byte-identity argument
// leans on this.
func TestDirectFabricLinkOrder(t *testing.T) {
	f := (&FabricSpec{Kind: FabricDirect, Hosts: 3}).MustBuild()
	want := []FabricLink{{0, 1}, {0, 2}, {1, 0}, {1, 2}, {2, 0}, {2, 1}}
	for i, l := range f.Links {
		if l != want[i] {
			t.Fatalf("link %d = %+v, want %+v", i, l, want[i])
		}
	}
	for s := 0; s < 3; s++ {
		for d := 0; d < 3; d++ {
			if s == d {
				continue
			}
			path := f.Route(s, d, nil, nil)
			if len(path) != 1 || f.Links[path[0]] != (FabricLink{s, d}) {
				t.Fatalf("direct route %d→%d = %v", s, d, path)
			}
		}
	}
}

func TestFabricSpecValidateRejects(t *testing.T) {
	bad := []*FabricSpec{
		{Kind: "mesh"},
		{Kind: FabricDirect, Hosts: 1},
		{Kind: FabricDirect, Hosts: maxDirectHosts + 1},
		{Kind: FabricDirect, Hosts: 2, K: 4},
		{Kind: FabricFatTree, K: 3},
		{Kind: FabricFatTree, K: 0},
		{Kind: FabricFatTree, K: maxFatTreeK + 2},
		{Kind: FabricFatTree, K: 4, Groups: 2},
		{Kind: FabricDragonflyPlus, Groups: 1, RoutersPerGroup: 2, HostsPerRouter: 2},
		{Kind: FabricDragonflyPlus, Groups: 64, RoutersPerGroup: 32, HostsPerRouter: 64},
		{Kind: FabricDragonflyPlus, Groups: 4, RoutersPerGroup: 2, HostsPerRouter: 2, Hosts: 2},
		{Kind: FabricFatTree, K: 4, LinkGBs: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d (%+v): Validate accepted", i, *s)
		}
		if _, err := s.Build(); err == nil {
			t.Errorf("case %d (%+v): Build accepted", i, *s)
		}
	}
}

func TestFabricPresetsValid(t *testing.T) {
	for _, name := range FabricPresetNames() {
		s := FabricPreset(name)
		if s == nil {
			t.Fatalf("preset %q missing", name)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("preset %q invalid: %v", name, err)
		}
		if _, err := s.Build(); err != nil {
			t.Fatalf("preset %q failed to build: %v", name, err)
		}
	}
	if FabricPreset("no-such-fabric") != nil {
		t.Fatal("unknown preset did not return nil")
	}
}

func TestFabricSpecJSONRoundTrip(t *testing.T) {
	for _, name := range FabricPresetNames() {
		s := FabricPreset(name)
		var buf bytes.Buffer
		if err := WriteFabricSpec(&buf, s); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		got, err := ReadFabricSpec(&buf)
		if err != nil {
			t.Fatalf("%s: read back: %v", name, err)
		}
		if *got != *s {
			t.Fatalf("%s: round trip %+v != %+v", name, *got, *s)
		}
	}
}

// Random valid specs all build routable fabrics — a light in-process
// complement to FuzzFabricSpec.
func TestFabricRandomSpecsRoutable(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 40; i++ {
		var s *FabricSpec
		switch rng.Intn(3) {
		case 0:
			s = &FabricSpec{Kind: FabricDirect, Hosts: 2 + rng.Intn(14)}
		case 1:
			s = FatTreeFabric(2 * (1 + rng.Intn(4)))
		default:
			s = DflyFabric(2+rng.Intn(4), 1+rng.Intn(3), 1+rng.Intn(3))
		}
		f, err := s.Build()
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		var buf []int
		for trial := 0; trial < 50; trial++ {
			src := rng.Intn(f.NHosts)
			dst := rng.Intn(f.NHosts)
			if src == dst {
				continue
			}
			buf = f.Route(src, dst, nil, buf)
			checkRoute(t, f, src, dst, buf)
		}
	}
}
