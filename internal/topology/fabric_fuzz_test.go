package topology

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzFabricSpec feeds arbitrary bytes through the fabric-spec JSON
// loading path. Malformed specs must be rejected with an error — never
// a panic — and every accepted spec must satisfy the Validate bounds,
// build a routable fabric, and survive a marshal/parse round-trip
// unchanged.
func FuzzFabricSpec(f *testing.F) {
	for _, name := range FabricPresetNames() {
		data, err := json.Marshal(FabricPreset(name))
		if err != nil {
			f.Fatalf("marshal preset %s: %v", name, err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"kind":"direct","hosts":-2}`))
	f.Add([]byte(`{"kind":"direct","hosts":99999999}`))
	f.Add([]byte(`{"kind":"fat-tree","k":3}`))
	f.Add([]byte(`{"kind":"fat-tree","k":4,"groups":7}`))
	f.Add([]byte(`{"kind":"dragonfly+","groups":64,"routersPerGroup":32,"hostsPerRouter":64}`))
	f.Add([]byte(`{"kind":"fat-tree","k":4,"linkGBs":-5}`))
	f.Add([]byte(`{"kind":"fat-tree","k":4,"hopLatencyNs":1e308}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ReadFabricSpec(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		// Accepted specs must be inside the Validate bounds and build a
		// fabric with a sane shape.
		fab, err := s.Build()
		if err != nil {
			t.Fatalf("validated spec %+v failed to build: %v", *s, err)
		}
		if fab.NHosts < 2 || fab.NHosts > maxFabricHosts {
			t.Fatalf("spec %+v built %d hosts", *s, fab.NHosts)
		}
		if len(fab.Links) == 0 {
			t.Fatalf("spec %+v built no links", *s)
		}
		total := fab.NHosts + fab.NSwitches
		for i, l := range fab.Links {
			if l.From < 0 || l.From >= total || l.To < 0 || l.To >= total || l.From == l.To {
				t.Fatalf("spec %+v link %d = %+v out of range", *s, i, l)
			}
		}
		// Spot-check routability: corner pair plus a mid pair.
		var buf []int
		for _, pair := range [][2]int{{0, fab.NHosts - 1}, {fab.NHosts / 2, 0}} {
			src, dst := pair[0], pair[1]
			if src == dst {
				continue
			}
			buf = fab.Route(src, dst, nil, buf)
			at := src
			for _, li := range buf {
				if fab.Links[li].From != at {
					t.Fatalf("spec %+v: disconnected route %d→%d: %v", *s, src, dst, buf)
				}
				at = fab.Links[li].To
			}
			if at != dst || len(buf) > fab.Diameter() {
				t.Fatalf("spec %+v: bad route %d→%d: %v", *s, src, dst, buf)
			}
		}
		// Round-trip stability.
		var out bytes.Buffer
		if err := WriteFabricSpec(&out, s); err != nil {
			t.Fatalf("marshal accepted spec: %v", err)
		}
		s2, err := ReadFabricSpec(&out)
		if err != nil {
			t.Fatalf("re-read own output: %v", err)
		}
		if *s2 != *s {
			t.Fatalf("round trip changed spec: %+v → %+v", *s, *s2)
		}
	})
}
