package mpi

import (
	"math"
	"sort"
	"testing"

	"repro/internal/machine"
	"repro/internal/net"
	"repro/internal/sim"
	"repro/internal/topology"
)

// testWorld builds a 2-node henri world with noise disabled for exact
// assertions.
func testWorld(t *testing.T) (*machine.Cluster, *World) {
	t.Helper()
	spec := topology.Henri()
	spec.NIC.NoiseFrac = 0
	c := machine.NewCluster(spec, 2, 1)
	return c, NewWorld(c, net.New(c))
}

func TestWorldShapeAndDefaults(t *testing.T) {
	c, w := testWorld(t)
	if w.Size() != 2 {
		t.Fatalf("size %d", w.Size())
	}
	// Default comm core: last core of last NUMA node (far from NIC).
	if got := w.Rank(0).CommCore; got != 35 {
		t.Fatalf("default comm core %d, want 35", got)
	}
	if got := w.Rank(0).CommNUMA(); got != 3 {
		t.Fatalf("default comm NUMA %d, want 3", got)
	}
	_ = c
}

func TestEagerSendRecv(t *testing.T) {
	c, w := testWorld(t)
	a, b := w.Rank(0), w.Rank(1)
	bufA := a.Node.Alloc(4096, 0)
	bufB := b.Node.Alloc(4096, 0)
	var recvAt sim.Time
	c.K.Spawn("send", func(p *sim.Proc) { a.Send(p, 1, 5, bufA, 4096) })
	c.K.Spawn("recv", func(p *sim.Proc) {
		b.Recv(p, 0, 5, bufB, 4096)
		recvAt = p.Now()
	})
	c.K.Run()
	if recvAt == 0 {
		t.Fatal("receive never completed")
	}
	// Sanity: a 4 KB eager message completes in microseconds.
	if recvAt > sim.Time(50*sim.Microsecond) {
		t.Fatalf("eager recv at %v, way too slow", recvAt)
	}
	if got := b.Node.Counters.BytesReceived; got != 4096 {
		t.Fatalf("BytesReceived %v", got)
	}
	if got := a.Node.Counters.BytesSent; got != 4096 {
		t.Fatalf("BytesSent %v", got)
	}
}

func TestRecvBeforeSendMatches(t *testing.T) {
	c, w := testWorld(t)
	a, b := w.Rank(0), w.Rank(1)
	done := false
	c.K.Spawn("recv", func(p *sim.Proc) {
		b.Recv(p, 0, 9, nil, 0)
		done = true
	})
	c.K.Spawn("send", func(p *sim.Proc) {
		p.Sleep(sim.Duration(10 * sim.Microsecond))
		a.Send(p, 1, 9, nil, 0)
	})
	c.K.Run()
	if !done {
		t.Fatal("posted receive never matched")
	}
}

func TestUnexpectedMessageQueueFIFO(t *testing.T) {
	c, w := testWorld(t)
	a, b := w.Rank(0), w.Rank(1)
	sizes := []int64{100, 200, 300}
	c.K.Spawn("send", func(p *sim.Proc) {
		for _, s := range sizes {
			a.Send(p, 1, 3, a.Node.Alloc(s, 0), s)
		}
	})
	var got []int64
	c.K.Spawn("recv", func(p *sim.Proc) {
		p.Sleep(sim.Duration(100 * sim.Microsecond)) // all three unexpected
		buf := b.Node.Alloc(1000, 0)
		for range sizes {
			before := b.Node.Counters.BytesReceived
			b.Recv(p, 0, 3, buf, 1000)
			got = append(got, int64(b.Node.Counters.BytesReceived-before))
		}
	})
	c.K.Run()
	for i, s := range sizes {
		if got[i] != s {
			t.Fatalf("unexpected queue order %v, want %v", got, sizes)
		}
	}
}

func TestTagsDoNotCrossMatch(t *testing.T) {
	c, w := testWorld(t)
	a, b := w.Rank(0), w.Rank(1)
	var order []int
	c.K.Spawn("send", func(p *sim.Proc) {
		a.Send(p, 1, 1, nil, 0)
		a.Send(p, 1, 2, nil, 0)
	})
	c.K.Spawn("recv", func(p *sim.Proc) {
		p.Sleep(sim.Duration(50 * sim.Microsecond))
		b.Recv(p, 0, 2, nil, 0)
		order = append(order, 2)
		b.Recv(p, 0, 1, nil, 0)
		order = append(order, 1)
	})
	c.K.Run()
	if len(order) != 2 || order[0] != 2 {
		t.Fatalf("tag matching broken: %v", order)
	}
}

func TestRendezvousLargeMessage(t *testing.T) {
	c, w := testWorld(t)
	a, b := w.Rank(0), w.Rank(1)
	const size = 64 << 20
	bufA := a.Node.Alloc(size, 0)
	bufB := b.Node.Alloc(size, 0)
	// Warm registration cache: the timing assertion targets the steady
	// state (recycled buffers, as in the paper's ping-pongs).
	bufA.Registered = true
	bufB.Registered = true
	var sendDone, recvDone sim.Time
	c.K.Spawn("send", func(p *sim.Proc) {
		a.Send(p, 1, 1, bufA, size)
		sendDone = p.Now()
	})
	c.K.Spawn("recv", func(p *sim.Proc) {
		b.Recv(p, 0, 1, bufB, size)
		recvDone = p.Now()
	})
	c.K.Run()
	if sendDone == 0 || recvDone == 0 {
		t.Fatal("rendezvous did not complete")
	}
	// 64 MB at 10.9 GB/s ≈ 6.16 ms; allow overheads.
	wire := float64(size) / 10.9e9
	if math.Abs(recvDone.Sub(0).Seconds()-wire) > 0.3e-3 {
		t.Fatalf("rendezvous took %v, want ≈%.2fms", recvDone, wire*1e3)
	}
	if !bufA.Registered || !bufB.Registered {
		t.Fatal("buffers not registered after rendezvous")
	}
}

func TestRegistrationCacheAmortised(t *testing.T) {
	c, w := testWorld(t)
	a, b := w.Rank(0), w.Rank(1)
	const size = 1 << 20
	bufA := a.Node.Alloc(size, 0)
	bufB := b.Node.Alloc(size, 0)
	var first, second sim.Duration
	c.K.Spawn("send", func(p *sim.Proc) {
		t0 := p.Now()
		a.Send(p, 1, 1, bufA, size)
		first = p.Now().Sub(t0)
		t1 := p.Now()
		a.Send(p, 1, 2, bufA, size)
		second = p.Now().Sub(t1)
	})
	c.K.Spawn("recv", func(p *sim.Proc) {
		b.Recv(p, 0, 1, bufB, size)
		b.Recv(p, 0, 2, bufB, size)
	})
	c.K.Run()
	if first <= second {
		t.Fatalf("first send %v not slower than cached second %v", first, second)
	}
	// The gap should be about the two ends' registration costs: 2 × 40
	// cycles/KB × 1024 KB at the idle-core frequency (1 GHz) ≈ 82 µs.
	gap := (first - second).Seconds()
	if gap < 40e-6 || gap > 160e-6 {
		t.Fatalf("registration gap %.1fus outside expected range", gap*1e6)
	}
}

func TestIsendIrecvWaitAll(t *testing.T) {
	c, w := testWorld(t)
	a, b := w.Rank(0), w.Rank(1)
	ok := false
	c.K.Spawn("driver", func(p *sim.Proc) {
		q1 := a.Isend(1, 4, nil, 0)
		q2 := b.Irecv(0, 4, nil, 0)
		WaitAll(p, q1, q2)
		ok = q1.Done() && q2.Done()
	})
	c.K.Run()
	if !ok {
		t.Fatal("WaitAll did not complete")
	}
	if c.K.LiveProcs() != 0 {
		t.Fatalf("%d leaked procs", c.K.LiveProcs())
	}
}

func TestBarrierSynchronises(t *testing.T) {
	c, w := testWorld(t)
	var t0, t1 sim.Time
	c.K.Spawn("r0", func(p *sim.Proc) {
		w.Rank(0).Barrier(p)
		t0 = p.Now()
	})
	c.K.Spawn("r1", func(p *sim.Proc) {
		p.Sleep(sim.Duration(2 * sim.Millisecond)) // straggler
		w.Rank(1).Barrier(p)
		t1 = p.Now()
	})
	c.K.Run()
	if t0 < sim.Time(2*sim.Millisecond) {
		t.Fatalf("rank 0 left barrier at %v before rank 1 arrived", t0)
	}
	if d := t1.Sub(t0); d < 0 {
		t.Fatalf("exit order inverted: %v", d)
	}
}

func TestPingPongLatencySmallMessage(t *testing.T) {
	c, w := testWorld(t)
	// Paper §2.1 defaults: latency on 4 bytes; comm thread near the NIC,
	// fixed frequencies as in Fig 1a's 2300/2400 point.
	for _, r := range []*Rank{w.Rank(0), w.Rank(1)} {
		r.SetCommCore(r.Node.Spec.LastCoreOfNUMA(0))
		r.Node.Freq.SetUserspace(2.3)
		r.Node.Freq.SetUncoreFixed(2.4)
	}
	pp := &PingPong{Size: 4, Iters: 20, Warmup: 5}
	var lats []sim.Duration
	c.K.Spawn("init", func(p *sim.Proc) { lats = pp.Initiate(p, w.Rank(0), 1) })
	c.K.Spawn("resp", func(p *sim.Proc) { pp.Respond(p, w.Rank(1), 0) })
	c.K.Run()
	if len(lats) != 20 {
		t.Fatalf("%d latencies", len(lats))
	}
	med := median(lats)
	// Fig 1a: ~1.8 µs at 2300 MHz core / 2400 MHz uncore. Accept ±25%.
	if med.Micros() < 1.3 || med.Micros() > 2.3 {
		t.Fatalf("4B latency %v, want ≈1.8µs", med)
	}
}

func TestPingPongLatencyFrequencyShape(t *testing.T) {
	// Fig 1a shape: latency at 1.0 GHz ≈ 1.7× latency at 2.3 GHz.
	measure := func(ghz float64) float64 {
		c, w := testWorld(t)
		for i := 0; i < 2; i++ {
			r := w.Rank(i)
			r.SetCommCore(r.Node.Spec.LastCoreOfNUMA(0))
			r.Node.Freq.SetUserspace(ghz)
			r.Node.Freq.SetUncoreFixed(2.4)
		}
		pp := &PingPong{Size: 4, Iters: 20, Warmup: 5}
		var lats []sim.Duration
		c.K.Spawn("init", func(p *sim.Proc) { lats = pp.Initiate(p, w.Rank(0), 1) })
		c.K.Spawn("resp", func(p *sim.Proc) { pp.Respond(p, w.Rank(1), 0) })
		c.K.Run()
		return median(lats).Micros()
	}
	slow, fast := measure(1.0), measure(2.3)
	ratio := slow / fast
	if ratio < 1.4 || ratio > 2.1 {
		t.Fatalf("latency ratio 1.0GHz/2.3GHz = %.2f, want ≈1.7 (paper: 3.1/1.8)", ratio)
	}
}

func TestPingPongBandwidthAsymptote(t *testing.T) {
	c, w := testWorld(t)
	pp := &PingPong{Size: 64 << 20, Iters: 3, Warmup: 1}
	var lats []sim.Duration
	c.K.Spawn("init", func(p *sim.Proc) { lats = pp.Initiate(p, w.Rank(0), 1) })
	c.K.Spawn("resp", func(p *sim.Proc) { pp.Respond(p, w.Rank(1), 0) })
	c.K.Run()
	bw := Bandwidth(pp.Size, median(lats)) / 1e9
	// Paper: ~10.5 GB/s asymptotic on EDR.
	if bw < 10.0 || bw > 11.0 {
		t.Fatalf("asymptotic bandwidth %.2f GB/s, want ≈10.5", bw)
	}
}

func TestSendBeyondBufferPanics(t *testing.T) {
	c, w := testWorld(t)
	buf := w.Rank(0).Node.Alloc(16, 0)
	c.K.Spawn("bad", func(p *sim.Proc) {
		defer func() {
			if recover() == nil {
				t.Error("oversized send did not panic")
			}
			panic("unwind") // keep the proc accounting consistent
		}()
		w.Rank(0).Send(p, 1, 0, buf, 1024)
	})
	func() {
		defer func() { recover() }()
		c.K.Run()
	}()
}

func median(ds []sim.Duration) sim.Duration {
	s := append([]sim.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

func TestEagerRendezvousThresholdBoundary(t *testing.T) {
	// Exactly EagerMax goes eager (no registration); one byte more goes
	// rendezvous (buffers get registered).
	c, w := testWorld(t)
	a, b := w.Rank(0), w.Rank(1)
	max := int64(a.Node.Spec.NIC.EagerMax)

	bufA := a.Node.Alloc(max+1, 0)
	bufB := b.Node.Alloc(max+1, 0)
	c.K.Spawn("send", func(p *sim.Proc) {
		a.Send(p, 1, 1, bufA, max) // eager
	})
	c.K.Spawn("recv", func(p *sim.Proc) {
		b.Recv(p, 0, 1, bufB, max)
	})
	c.K.Run()
	if bufA.Registered || bufB.Registered {
		t.Fatal("eager-path buffers were registered")
	}
	c.K.Spawn("send2", func(p *sim.Proc) {
		a.Send(p, 1, 2, bufA, max+1) // rendezvous
	})
	c.K.Spawn("recv2", func(p *sim.Proc) {
		b.Recv(p, 0, 2, bufB, max+1)
	})
	c.K.Run()
	if !bufA.Registered || !bufB.Registered {
		t.Fatal("rendezvous-path buffers not registered")
	}
}

func TestLatencyBandwidthMonotoneInSize(t *testing.T) {
	// NetPIPE sanity: latency grows with message size and bandwidth
	// approaches the asymptote. Real MPI curves show a bounded notch at
	// the eager/rendezvous protocol switch (the copies paid by eager vs
	// the handshake paid by rendezvous almost cancel there); we allow
	// ≤20% non-monotonicity at the switch and none elsewhere.
	c, w := testWorld(t)
	for i := 0; i < 2; i++ {
		w.Rank(i).Node.Freq.SetUserspace(2.3)
	}
	var lats []sim.Duration
	sizes := []int64{4, 1024, 32 << 10, 33 << 10, 1 << 20, 16 << 20}
	c.K.Spawn("init", func(p *sim.Proc) {
		for _, size := range sizes {
			pp := &PingPong{Size: size, Iters: 4, Warmup: 1}
			ls := pp.Initiate(p, w.Rank(0), 1)
			lats = append(lats, median(ls))
		}
	})
	c.K.Spawn("resp", func(p *sim.Proc) {
		for _, size := range sizes {
			pp := &PingPong{Size: size, Iters: 4, Warmup: 1}
			pp.Respond(p, w.Rank(1), 0)
		}
	})
	c.K.Run()
	for i := 1; i < len(lats); i++ {
		allowed := 1.0
		if sizes[i-1] <= 32<<10 && sizes[i] > 32<<10 {
			allowed = 0.8 // protocol-switch notch
		}
		if float64(lats[i]) < allowed*float64(lats[i-1]) {
			t.Fatalf("latency not monotone at %d B: %v < %v", sizes[i], lats[i], lats[i-1])
		}
	}
	bwSmall := Bandwidth(sizes[1], lats[1])
	bwBig := Bandwidth(sizes[len(sizes)-1], lats[len(lats)-1])
	if bwBig < 5*bwSmall {
		t.Fatalf("bandwidth not rising toward asymptote: %v vs %v", bwSmall, bwBig)
	}
}
