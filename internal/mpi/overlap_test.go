package mpi

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

func runOverlap(t *testing.T, size int64, flops float64) OverlapResult {
	t.Helper()
	c, w := collWorld(t, 2)
	ov := &Overlap{
		Size:        size,
		Compute:     machine.ComputeSpec{Flops: flops, Class: topology.Scalar},
		ComputeCore: 1,
		Iters:       3,
	}
	var res OverlapResult
	c.K.Spawn("bench", func(p *sim.Proc) { res = ov.Run(p, w.Rank(0), 1) })
	c.K.Spawn("peer", func(p *sim.Proc) { ov.RunPeer(p, w.Rank(1), 0) })
	c.K.Run()
	if c.K.LiveProcs() != 0 {
		t.Fatal("overlap benchmark deadlocked")
	}
	return res
}

func TestOverlapRendezvousHidesComputation(t *testing.T) {
	// A 16 MB rendezvous transfer is pure DMA: computation of a similar
	// duration on another core overlaps almost entirely.
	size := int64(16 << 20)
	transferSecs := float64(size) / 10.9e9
	flops := transferSecs * 0.8 * 2.5e9 * 4 // ≈80% of the transfer time
	res := runOverlap(t, size, flops)
	if res.Ratio < 0.8 {
		t.Fatalf("rendezvous overlap ratio %.2f, want ≈1 (comm %v, comp %v, both %v)",
			res.Ratio, res.CommAlone, res.ComputeAlone, res.Together)
	}
	// Together must be close to the longer phase, not the sum.
	long := res.CommAlone
	if res.ComputeAlone > long {
		long = res.ComputeAlone
	}
	if float64(res.Together) > 1.25*float64(long) {
		t.Fatalf("together %v far above max(phases) %v", res.Together, long)
	}
}

func TestOverlapPhasesAreConsistent(t *testing.T) {
	res := runOverlap(t, 1<<20, 1e6)
	if res.CommAlone <= 0 || res.ComputeAlone <= 0 || res.Together <= 0 {
		t.Fatalf("non-positive phase timings: %+v", res)
	}
	if res.Ratio < 0 || res.Ratio > 1 {
		t.Fatalf("ratio %v out of [0,1]", res.Ratio)
	}
	// The together phase can never beat the longest single phase by
	// more than scheduling noise.
	long := res.CommAlone
	if res.ComputeAlone > long {
		long = res.ComputeAlone
	}
	if float64(res.Together) < 0.5*float64(long) {
		t.Fatalf("together %v impossibly below max(phases) %v", res.Together, long)
	}
}
