package mpi

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/machine"
	"repro/internal/net"
	"repro/internal/sim"
	"repro/internal/topology"
)

// TestRandomTrafficConservation drives random point-to-point traffic
// between several ranks — random sizes straddling the eager/rendezvous
// threshold, random tags, random posting order (receives before or
// after their sends) — and checks global invariants: everything posted
// is delivered, byte counts match exactly, and nothing deadlocks.
func TestRandomTrafficConservation(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			spec := topology.Henri()
			spec.NIC.NoiseFrac = 0
			const nodes = 3
			c := machine.NewCluster(spec, nodes, seed)
			w := NewWorld(c, net.New(c))
			rng := rand.New(rand.NewSource(seed * 977))

			// Build a random traffic plan: per (src,dst) ordered pair, a
			// list of (tag, size) messages. Matching is FIFO per
			// (src,tag), so tags may repeat freely.
			type msg struct {
				tag  int
				size int64
			}
			plan := map[[2]int][]msg{}
			var totalBytes float64
			const msgsPerPair = 12
			for src := 0; src < nodes; src++ {
				for dst := 0; dst < nodes; dst++ {
					if src == dst {
						continue
					}
					for i := 0; i < msgsPerPair; i++ {
						size := int64(rng.Intn(200 << 10)) // 0..200KB: both protocols
						plan[[2]int{src, dst}] = append(plan[[2]int{src, dst}],
							msg{tag: rng.Intn(3), size: size})
						totalBytes += float64(size)
					}
				}
			}

			// Each rank runs one sender proc (its messages in plan order,
			// with random pauses) and one receiver proc per peer (posting
			// in plan order — FIFO matching makes this deterministic even
			// when messages arrive unexpected).
			for src := 0; src < nodes; src++ {
				src := src
				r := w.Rank(src)
				c.K.Spawn(fmt.Sprintf("tx%d", src), func(p *sim.Proc) {
					for dst := 0; dst < nodes; dst++ {
						if dst == src {
							continue
						}
						for _, m := range plan[[2]int{src, dst}] {
							if rng.Intn(3) == 0 {
								p.Sleep(sim.Duration(rng.Intn(20)) * sim.Duration(sim.Microsecond))
							}
							buf := r.Node.Alloc(maxNonZero(m.size), 0)
							r.Send(p, dst, m.tag, buf, m.size)
						}
					}
				})
			}
			for dst := 0; dst < nodes; dst++ {
				for src := 0; src < nodes; src++ {
					if src == dst {
						continue
					}
					src, dst := src, dst
					r := w.Rank(dst)
					c.K.Spawn(fmt.Sprintf("rx%d<-%d", dst, src), func(p *sim.Proc) {
						// Receives post in the sender's order: blocking
						// rendezvous sends make any coarser reordering
						// (e.g. draining one tag before another) invalid
						// MPI usage — the sender would block on an
						// unposted receive. Eager messages still arrive
						// unexpected thanks to the random sender pauses.
						for _, m := range plan[[2]int{src, dst}] {
							buf := r.Node.Alloc(maxNonZero(m.size), 0)
							r.Recv(p, src, m.tag, buf, m.size)
						}
					})
				}
			}
			c.K.Run()
			if c.K.LiveProcs() != 0 {
				t.Fatalf("deadlock: %d procs still live", c.K.LiveProcs())
			}
			var sent, received float64
			for i := 0; i < nodes; i++ {
				sent += w.Rank(i).Node.Counters.BytesSent
				received += w.Rank(i).Node.Counters.BytesReceived
			}
			if sent != totalBytes || received != totalBytes {
				t.Fatalf("byte conservation violated: plan=%v sent=%v received=%v",
					totalBytes, sent, received)
			}
		})
	}
}

func maxNonZero(v int64) int64 {
	if v < 1 {
		return 1
	}
	return v
}
