package mpi

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Fault-tolerant point-to-point operations. SendFT and RecvFT mirror
// Send and Recv but return ErrPeerDead instead of hanging when the
// failure detector declares the peer dead mid-operation: every blocking
// wait registers the protocol signal with the detector (Detector.Watch)
// so a death declaration wakes the waiter, which re-checks the
// completion flag (arrived / ctsOK / dmaOK) and the peer's liveness in
// a loop. Without a detector (StartHeartbeat never called) they degrade
// to the plain operations, so crash-free worlds keep their exact event
// sequence.

// ErrPeerDead reports that the failure detector declared the peer rank
// dead before the operation could complete.
var ErrPeerDead = errors.New("mpi: peer rank is dead")

// SendFT is the fault-tolerant Send: it returns ErrPeerDead once the
// detector declares dst dead (before or during the operation), and
// wraps the lossy retransmission panic into an error return. A nil
// detector falls back to plain Send.
func (r *Rank) SendFT(p *sim.Proc, dst, tag int, buf *machine.Buffer, size int64) error {
	det := r.world.det
	if det == nil {
		r.Send(p, dst, tag, buf, size)
		return nil
	}
	if size < 0 || (buf != nil && size > buf.Size) {
		panic(fmt.Sprintf("mpi: send size %d out of buffer bounds", size))
	}
	if det.Dead(dst) {
		return ErrPeerDead
	}
	r.gateComm(p)
	start := p.Now()
	peer := r.world.Rank(dst)
	k := r.world.cluster.K
	nw := r.world.nw
	node := r.Node
	inj := r.world.inj

	bufNUMA := node.Spec.NIC.NUMA
	if buf != nil {
		bufNUMA = buf.NUMA
	}
	nw.SendOverhead(p, node, r.CommCore, bufNUMA)

	if size <= r.eagerMax() {
		dataNUMA := node.Spec.NIC.NUMA
		if buf != nil {
			dataNUMA = buf.NUMA
		}
		if inj != nil && inj.Lossy() {
			for attempt := 0; ; attempt++ {
				if det.Dead(dst) {
					return ErrPeerDead
				}
				switch inj.Tx() {
				case fault.TxOK:
					r.injectEager(p, peer, tag, size, dataNUMA)
					r.accountSend(size, p.Now().Sub(start))
					return nil
				case fault.TxCorrupt:
					node.Counters.MsgsCorrupted++
					if size > 0 {
						nw.Memcpy(p, node, r.CommCore, dataNUMA, node.Spec.NIC.NUMA, size)
						nw.TransferEager(p, node, peer.Node, size)
					}
				default: // TxLost
					node.Counters.MsgsLost++
				}
				node.Counters.SendTimeouts++
				if attempt >= inj.Policy().MaxRetries {
					return &fault.TransferError{Op: "eager", Src: node.ID, Dst: peer.Node.ID, Attempts: attempt + 1}
				}
				node.Counters.SendRetries++
				p.Sleep(inj.Backoff(attempt))
			}
		}
		// An eager send to a dead (not yet declared) peer completes
		// locally like real MPI: the payload is dropped on the crashed
		// node's NIC and the error surfaces on a later operation.
		r.injectEager(p, peer, tag, size, dataNUMA)
		r.accountSend(size, p.Now().Sub(start))
		return nil
	}

	// Rendezvous: the CTS wait is the blocking point a dead receiver
	// would never release, so it is detector-watched.
	r.register(p, buf)
	m := &message{
		src: r.ID, tag: tag, size: size,
		srcRank: r, srcBuf: buf,
		cts:     sim.NewSignal(k),
		dmaDone: sim.NewSignal(k),
	}
	sendRTS := func() {
		lat := node.Jitter(nw.WireLatency(), node.Spec.NIC.NoiseFrac)
		k.After(lat, func() {
			// A crashed node's NIC drops incoming control messages.
			if inj != nil && inj.Crashed(peer.Node.ID) {
				return
			}
			peer.deliverRTS(m)
		})
	}
	if inj != nil && inj.Lossy() {
		for attempt := 0; ; attempt++ {
			if det.Dead(dst) {
				return ErrPeerDead
			}
			switch inj.Tx() {
			case fault.TxOK:
				sendRTS()
			case fault.TxCorrupt:
				node.Counters.MsgsCorrupted++
			default: // TxLost
				node.Counters.MsgsLost++
			}
			if m.cts.WaitTimeout(p, inj.Backoff(attempt)) && m.ctsOK {
				break
			}
			node.Counters.SendTimeouts++
			if attempt >= inj.Policy().MaxRetries {
				return &fault.TransferError{Op: "rendezvous", Src: node.ID, Dst: peer.Node.ID, Attempts: attempt + 1}
			}
			node.Counters.SendRetries++
		}
	} else {
		sendRTS()
		unwatch := det.Watch(m.cts)
		for !m.ctsOK {
			if det.Dead(dst) {
				unwatch()
				return ErrPeerDead
			}
			m.cts.Wait(p)
		}
		unwatch()
	}
	node.ExecCycles(p, r.CommCore, node.Spec.NIC.RecvCycles/2)
	if !nw.TransferDMA(p, node, buf, peer.Node, m.recvBuf(), size) {
		// The RDMA write was cut by a node crash; the detector will
		// declare the death shortly, report it now.
		return ErrPeerDead
	}
	m.dmaOK = true
	m.dmaDone.Broadcast()
	r.accountSend(size, p.Now().Sub(start))
	return nil
}

// RecvFT is the fault-tolerant Recv: it returns ErrPeerDead when src is
// (or is declared while waiting) dead and no matching message is
// already queued. A nil detector falls back to plain Recv.
func (r *Rank) RecvFT(p *sim.Proc, src, tag int, buf *machine.Buffer, size int64) error {
	det := r.world.det
	if det == nil {
		r.Recv(p, src, tag, buf, size)
		return nil
	}
	if size < 0 || (buf != nil && size > buf.Size) {
		panic(fmt.Sprintf("mpi: recv size %d out of buffer bounds", size))
	}
	r.gateComm(p)
	key := matchKey{src, tag}
	var m *message
	for m == nil {
		if q := r.unexp[key]; len(q) > 0 {
			m = q[0]
			r.unexp[key] = q[1:]
			break
		}
		if det.Dead(src) {
			return ErrPeerDead
		}
		pr := &pendingRecv{sig: sim.NewSignal(r.world.cluster.K)}
		r.pending[key] = append(r.pending[key], pr)
		unwatch := det.Watch(pr.sig)
		pr.sig.Wait(p)
		unwatch()
		if pr.msg != nil {
			m = pr.msg
			break
		}
		// Woken by a death broadcast, not a delivery: withdraw the
		// posted receive and re-check liveness.
		q := r.pending[key]
		for i, x := range q {
			if x == pr {
				r.pending[key] = append(q[:i], q[i+1:]...)
				break
			}
		}
	}
	return r.completeFT(p, det, m, buf, size)
}

// completeFT finishes a matched receive like complete, but every wait on
// the sender is detector-watched so a sender dying mid-protocol turns
// into ErrPeerDead instead of a hang.
func (r *Rank) completeFT(p *sim.Proc, det *Detector, m *message, buf *machine.Buffer, size int64) error {
	nw := r.world.nw
	node := r.Node
	k := r.world.cluster.K
	inj := r.world.inj

	if m.size > size {
		panic(fmt.Sprintf("mpi: message of %d bytes into %d-byte receive", m.size, size))
	}
	if m.eager {
		unwatch := det.Watch(m.arrivedSig)
		for !m.arrived {
			if det.Dead(m.src) {
				unwatch()
				return ErrPeerDead
			}
			m.arrivedSig.Wait(p)
		}
		unwatch()
		dNUMA := node.Spec.NIC.NUMA
		if buf != nil {
			dNUMA = buf.NUMA
		}
		nw.RecvOverhead(p, node, r.CommCore, dNUMA)
		nw.Memcpy(p, node, r.CommCore, node.Spec.NIC.NUMA, dNUMA, m.size)
		r.Node.Counters.BytesReceived += float64(m.size)
		return nil
	}

	// Rendezvous.
	node.ExecCycles(p, r.CommCore, (node.Spec.NIC.RecvCycles+node.Spec.NIC.SendCycles)/2)
	r.register(p, buf)
	m.rbuf = buf
	sendCTS := func() {
		if inj != nil && inj.Lossy() {
			switch inj.Tx() {
			case fault.TxCorrupt:
				node.Counters.MsgsCorrupted++
				return
			case fault.TxLost:
				node.Counters.MsgsLost++
				return
			}
		}
		lat := node.Jitter(nw.WireLatency(), node.Spec.NIC.NoiseFrac)
		k.After(lat, func() { m.ctsOK = true; m.cts.Broadcast() })
	}
	if inj != nil && inj.Lossy() {
		m.resendCTS = sendCTS
	}
	sendCTS()
	unwatch := det.Watch(m.dmaDone)
	for !m.dmaOK {
		if det.Dead(m.src) {
			unwatch()
			return ErrPeerDead
		}
		m.dmaDone.Wait(p)
	}
	unwatch()
	rNUMA := node.Spec.NIC.NUMA
	if buf != nil {
		rNUMA = buf.NUMA
	}
	nw.RecvOverhead(p, node, r.CommCore, rNUMA)
	r.Node.Counters.BytesReceived += float64(m.size)
	return nil
}
