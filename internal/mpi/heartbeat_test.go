package mpi

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestHeartbeatDetectsCrashDeterministically(t *testing.T) {
	deadAt := make([]sim.Time, 2)
	for trial := 0; trial < 2; trial++ {
		cl, w := faultWorld(t, 7, "crash:node=1,at=1ms")
		det := w.StartHeartbeat(DefaultHeartbeat())
		cl.K.Spawn("stop", func(p *sim.Proc) {
			p.Sleep(5 * sim.Millisecond)
			det.Stop()
		})
		cl.K.Run()
		if !det.Dead(1) {
			t.Fatal("crash never detected")
		}
		if det.Dead(0) {
			t.Fatal("healthy node declared dead")
		}
		at := det.DeadAt(1)
		crash := sim.Time(0).Add(sim.Millisecond)
		cfg := DefaultHeartbeat()
		// Suspicion runs from the last probe that saw the peer up — up to
		// one period before the crash — and fires on a probe tick, up to
		// one period after the deadline.
		lo, hi := crash.Add(cfg.Timeout-cfg.Period), crash.Add(cfg.Timeout+cfg.Period)
		if at < lo || at > hi {
			t.Fatalf("detected at %v, want within [%v, %v]", at, lo, hi)
		}
		deadAt[trial] = at
		got := det.AliveRanks()
		if len(got) != 1 || got[0] != 0 {
			t.Fatalf("AliveRanks after crash: %v, want [0]", got)
		}
	}
	if deadAt[0] != deadAt[1] {
		t.Fatalf("detection instant not deterministic: %v vs %v", deadAt[0], deadAt[1])
	}
}

func TestHeartbeatHealthyWorldSeesNoDeaths(t *testing.T) {
	cl, w := faultWorld(t, 1, "")
	det := w.StartHeartbeat(DefaultHeartbeat())
	cl.K.Spawn("stop", func(p *sim.Proc) {
		p.Sleep(3 * sim.Millisecond)
		det.Stop()
	})
	cl.K.Run()
	if got := det.AliveRanks(); len(got) != 2 {
		t.Fatalf("AliveRanks in a healthy world: %v", got)
	}
	if det.DeadAt(0) != -1 || det.DeadAt(1) != -1 {
		t.Fatal("DeadAt of a live rank must be -1")
	}
	if cl.Nodes[0].Counters.PeerDeaths != 0 {
		t.Fatal("PeerDeaths counted in a healthy world")
	}
}

func TestStartHeartbeatIdempotent(t *testing.T) {
	cl, w := faultWorld(t, 1, "")
	d1 := w.StartHeartbeat(DefaultHeartbeat())
	d2 := w.StartHeartbeat(HeartbeatConfig{Period: sim.Millisecond})
	if d1 != d2 || w.Detector() != d1 {
		t.Fatal("StartHeartbeat must return the one detector per world")
	}
	d1.Stop()
	cl.K.Run()
}

func TestSendFTSurfacesPeerDeath(t *testing.T) {
	cl, w := faultWorld(t, 2, "crash:node=1,at=500us")
	det := w.StartHeartbeat(DefaultHeartbeat())
	a := w.Rank(0)
	buf := a.Node.Alloc(4, a.Node.Spec.NIC.NUMA)
	var got error
	sends := 0
	cl.K.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 100000; i++ {
			if err := a.SendFT(p, 1, 9, buf, 4); err != nil {
				got = err
				break
			}
			sends++
		}
		det.Stop()
	})
	cl.K.Spawn("recv", func(p *sim.Proc) {
		b := w.Rank(1)
		rbuf := b.Node.Alloc(4, b.Node.Spec.NIC.NUMA)
		for {
			if b.RecvFT(p, 0, 9, rbuf, 4) != nil {
				return
			}
		}
	})
	cl.K.Run()
	if !errors.Is(got, ErrPeerDead) {
		t.Fatalf("SendFT to a crashed peer returned %v, want ErrPeerDead", got)
	}
	if sends == 0 {
		t.Fatal("no sends completed before the crash")
	}
	if cl.Nodes[0].Counters.PeerDeaths == 0 {
		t.Fatal("survivor did not count the peer death")
	}
}

func TestRecvFTSurfacesPeerDeath(t *testing.T) {
	// Large messages force the rendezvous path: the receiver posts, the
	// sender dies before the transfer, RecvFT must not hang.
	cl, w := faultWorld(t, 3, "crash:node=1,at=200us")
	det := w.StartHeartbeat(DefaultHeartbeat())
	a := w.Rank(0)
	buf := a.Node.Alloc(256<<10, a.Node.Spec.NIC.NUMA)
	var got error
	cl.K.Spawn("recv", func(p *sim.Proc) {
		p.Sleep(300 * sim.Microsecond) // post after the crash, before detection
		got = a.RecvFT(p, 1, 11, buf, 256<<10)
		det.Stop()
	})
	cl.K.Run()
	if !errors.Is(got, ErrPeerDead) {
		t.Fatalf("RecvFT from a crashed peer returned %v, want ErrPeerDead", got)
	}
}

func TestFTDegradesToPlainOpsWithoutDetector(t *testing.T) {
	// No heartbeat armed: SendFT/RecvFT are byte-for-byte the plain
	// operations and never error in a healthy world.
	cl, w := faultWorld(t, 1, "")
	a, b := w.Rank(0), w.Rank(1)
	sbuf := a.Node.Alloc(4096, 0)
	rbuf := b.Node.Alloc(4096, 0)
	var serr, rerr error
	cl.K.Spawn("send", func(p *sim.Proc) { serr = a.SendFT(p, 1, 5, sbuf, 4096) })
	cl.K.Spawn("recv", func(p *sim.Proc) { rerr = b.RecvFT(p, 0, 5, rbuf, 4096) })
	cl.K.Run()
	if serr != nil || rerr != nil {
		t.Fatalf("FT ops errored without a detector: %v / %v", serr, rerr)
	}
	if got := b.Node.Counters.BytesReceived; got != 4096 {
		t.Fatalf("BytesReceived %v, want 4096", got)
	}
}
