package mpi

import (
	"repro/internal/machine"
	"repro/internal/sim"
)

// Overlap measures how well non-blocking communication overlaps with
// computation, after the methodology of Denis & Trahay's MPI overlap
// benchmark (the paper's reference [7]): measure the computation alone,
// the communication alone, then Isend + computation + Wait, and report
// how much of the shorter phase was hidden inside the longer one.
type Overlap struct {
	// Size is the transferred message size.
	Size int64
	// Compute is the per-iteration computation slice, run on ComputeCore
	// while the transfer progresses.
	Compute     machine.ComputeSpec
	ComputeCore int
	// Iters averages over several measurements.
	Iters int
}

// OverlapResult reports the three phase timings and the overlap ratio:
// 0 means fully serialized (t_both = t_comm + t_comp), 1 means the
// shorter phase was completely hidden (t_both = max(t_comm, t_comp)).
type OverlapResult struct {
	CommAlone, ComputeAlone, Together sim.Duration
	Ratio                             float64
}

// Run executes the overlap benchmark from rank r (the sender) against
// the peer, whose process must be executing RunPeer concurrently.
func (o *Overlap) Run(p *sim.Proc, r *Rank, peer int) OverlapResult {
	iters := o.Iters
	if iters <= 0 {
		iters = 3
	}
	buf := r.Node.Alloc(max64(o.Size, 1), r.Node.Spec.NIC.NUMA)
	node := r.Node

	var res OverlapResult
	// Phase 1: communication alone.
	start := p.Now()
	for i := 0; i < iters; i++ {
		r.Send(p, peer, overlapTag, buf, o.Size)
		r.Recv(p, peer, overlapTag+1, nil, 0) // ack keeps phases in lockstep
	}
	res.CommAlone = p.Now().Sub(start) / sim.Duration(iters)

	// Phase 2: computation alone.
	start = p.Now()
	for i := 0; i < iters; i++ {
		node.ExecCompute(p, o.ComputeCore, o.Compute)
	}
	res.ComputeAlone = p.Now().Sub(start) / sim.Duration(iters)

	// Phase 3: Isend + computation + Wait.
	start = p.Now()
	for i := 0; i < iters; i++ {
		req := r.Isend(peer, overlapTag, buf, o.Size)
		node.ExecCompute(p, o.ComputeCore, o.Compute)
		req.Wait(p)
		r.Recv(p, peer, overlapTag+1, nil, 0)
	}
	res.Together = p.Now().Sub(start) / sim.Duration(iters)

	// Ratio per [7]: fraction of the shorter phase hidden by the longer.
	long := res.CommAlone
	short := res.ComputeAlone
	if short > long {
		long, short = short, long
	}
	if short > 0 {
		res.Ratio = float64(res.CommAlone+res.ComputeAlone-res.Together) / float64(short)
	}
	if res.Ratio < 0 {
		res.Ratio = 0
	}
	if res.Ratio > 1 {
		res.Ratio = 1
	}
	return res
}

// RunPeer executes the passive side: it sinks the messages and returns
// the lockstep acks. Must run for the same Overlap configuration.
func (o *Overlap) RunPeer(p *sim.Proc, r *Rank, peer int) {
	iters := o.Iters
	if iters <= 0 {
		iters = 3
	}
	buf := r.Node.Alloc(max64(o.Size, 1), r.Node.Spec.NIC.NUMA)
	// Phases 1 and 3 each perform iters receive+ack rounds.
	for phase := 0; phase < 2; phase++ {
		for i := 0; i < iters; i++ {
			r.Recv(p, peer, overlapTag, buf, o.Size)
			r.Send(p, peer, overlapTag+1, nil, 0)
		}
	}
}

const overlapTag = 8600
