package mpi

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Request is the handle of a non-blocking operation.
type Request struct {
	done bool
	sig  *sim.Signal
}

// Done reports whether the operation has completed.
func (q *Request) Done() bool { return q.done }

// Wait blocks p until the operation completes.
func (q *Request) Wait(p *sim.Proc) {
	for !q.done {
		q.sig.Wait(p)
	}
}

// WaitAll blocks p until every request completes.
func WaitAll(p *sim.Proc, reqs ...*Request) {
	for _, q := range reqs {
		q.Wait(p)
	}
}

// Isend starts a non-blocking send. Progression is modelled by an
// internal helper process (the library's progression thread); the
// software overheads still run on this rank's communication core.
func (r *Rank) Isend(dst, tag int, buf *machine.Buffer, size int64) *Request {
	q := &Request{sig: sim.NewSignal(r.world.cluster.K)}
	r.world.cluster.K.Spawn(fmt.Sprintf("isend.r%d", r.ID), func(p *sim.Proc) {
		r.Send(p, dst, tag, buf, size)
		q.done = true
		q.sig.Broadcast()
	})
	return q
}

// Irecv starts a non-blocking receive.
func (r *Rank) Irecv(src, tag int, buf *machine.Buffer, size int64) *Request {
	q := &Request{sig: sim.NewSignal(r.world.cluster.K)}
	r.world.cluster.K.Spawn(fmt.Sprintf("irecv.r%d", r.ID), func(p *sim.Proc) {
		r.Recv(p, src, tag, buf, size)
		q.done = true
		q.sig.Broadcast()
	})
	return q
}

// barrierTag is reserved for Barrier control messages.
const barrierTag = -1

// Barrier synchronises this rank with every other rank through a naive
// all-to-one/one-to-all exchange of empty messages; sufficient for the
// two-node setups of the paper. Every rank must call Barrier from its
// own process.
func (r *Rank) Barrier(p *sim.Proc) {
	w := r.world
	if w.Size() == 1 {
		return
	}
	if r.ID == 0 {
		for i := 1; i < w.Size(); i++ {
			r.Recv(p, i, barrierTag, nil, 0)
		}
		for i := 1; i < w.Size(); i++ {
			r.Send(p, i, barrierTag, nil, 0)
		}
		return
	}
	r.Send(p, 0, barrierTag, nil, 0)
	r.Recv(p, 0, barrierTag, nil, 0)
}
