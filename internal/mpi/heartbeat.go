package mpi

import (
	"fmt"

	"repro/internal/sim"
)

// This file implements the sim-time heartbeat failure detector: every
// rank runs a monitor process that probes its peers' liveness each
// Period and declares a peer dead once it has been unresponsive for
// Timeout (the suspicion timeout). Semantics follow ULFM: survivors
// observe the failure, the active communicator shrinks (AliveRanks),
// and the fault-tolerant point-to-point operations (SendFT/RecvFT)
// surface ErrPeerDead instead of hanging forever. Once declared dead a
// rank stays dead even if its node later recovers — rejoining a
// shrunken communicator is out of scope, as in ULFM.
//
// The probe itself is modelled out of band: a monitor reads the fault
// injector's crash ground truth instead of exchanging real heartbeat
// messages (which would perturb the measured traffic). The probe's
// round-trip time is considered folded into the suspicion timeout, so
// detection latency is Timeout plus up to one Period — deterministic in
// sim time and identical at any host worker count.

// HeartbeatConfig tunes the failure detector.
type HeartbeatConfig struct {
	// Period is the interval between liveness probes.
	Period sim.Duration
	// Timeout is the suspicion timeout: a peer unresponsive for this
	// long is declared dead.
	Timeout sim.Duration
}

// DefaultHeartbeat returns the configuration used by the harness:
// 50µs probes, 200µs suspicion timeout.
func DefaultHeartbeat() HeartbeatConfig {
	return HeartbeatConfig{Period: 50 * sim.Microsecond, Timeout: 200 * sim.Microsecond}
}

// Detector is the world-wide failure detector state: which ranks are
// still members of the (shrinking) communicator, and when each death
// was declared.
type Detector struct {
	w       *World
	cfg     HeartbeatConfig
	alive   []bool
	deadAt  []sim.Time
	stopped bool
	watch   []*sim.Signal
	onDeath []func(rank int)
}

// StartHeartbeat arms the failure detector: one monitor process per
// rank, probing every cfg.Period. Idempotent — a second call returns
// the existing detector. Call Stop when the application work is done so
// the monitors stop generating events.
func (w *World) StartHeartbeat(cfg HeartbeatConfig) *Detector {
	if w.det != nil {
		return w.det
	}
	if cfg.Period <= 0 {
		cfg.Period = DefaultHeartbeat().Period
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultHeartbeat().Timeout
	}
	d := &Detector{
		w:      w,
		cfg:    cfg,
		alive:  make([]bool, len(w.ranks)),
		deadAt: make([]sim.Time, len(w.ranks)),
	}
	for i := range d.alive {
		d.alive[i] = true
		d.deadAt[i] = -1
	}
	w.det = d
	for i := range w.ranks {
		i := i
		w.cluster.K.Spawn(fmt.Sprintf("hb.n%d", i), func(p *sim.Proc) {
			d.monitor(p, i)
		})
	}
	return d
}

// Detector returns the world's failure detector, or nil when
// StartHeartbeat was never called (crash-free worlds).
func (w *World) Detector() *Detector { return w.det }

// monitor is rank self's probe loop.
func (d *Detector) monitor(p *sim.Proc, self int) {
	inj := d.w.inj
	lastSeen := make([]sim.Time, len(d.alive))
	for {
		if d.stopped {
			return
		}
		// A crashed node's own monitor dies with it.
		if inj != nil && inj.Crashed(d.w.ranks[self].Node.ID) {
			return
		}
		now := p.Now()
		for peer := range d.alive {
			if peer == self || !d.alive[peer] {
				continue
			}
			peerDown := inj != nil && inj.Crashed(d.w.ranks[peer].Node.ID)
			if !peerDown {
				lastSeen[peer] = now
			} else if now.Sub(lastSeen[peer]) >= d.cfg.Timeout {
				d.declareDead(peer)
			}
		}
		p.Sleep(d.cfg.Period)
	}
}

// declareDead marks a rank dead exactly once: survivors' PeerDeaths
// counters bump, registered death callbacks fire, and watched signals
// are broadcast so blocked fault-tolerant operations re-check liveness.
// Runs in the first detecting monitor's process context.
func (d *Detector) declareDead(rank int) {
	if d.stopped || !d.alive[rank] {
		return
	}
	d.alive[rank] = false
	d.deadAt[rank] = d.w.cluster.K.Now()
	inj := d.w.inj
	for i, a := range d.alive {
		if a && !(inj != nil && inj.Crashed(d.w.ranks[i].Node.ID)) {
			d.w.ranks[i].Node.Counters.PeerDeaths++
		}
	}
	for _, fn := range d.onDeath {
		fn(rank)
	}
	for _, s := range d.watch {
		s.Broadcast()
	}
}

// Dead reports whether a rank has been declared dead.
func (d *Detector) Dead(rank int) bool {
	return rank >= 0 && rank < len(d.alive) && !d.alive[rank]
}

// DeadAt returns the declaration instant of a dead rank, -1 otherwise.
func (d *Detector) DeadAt(rank int) sim.Time {
	if !d.Dead(rank) {
		return -1
	}
	return d.deadAt[rank]
}

// AliveRanks returns the current members of the shrunken communicator,
// in rank order.
func (d *Detector) AliveRanks() []int {
	var out []int
	for i, a := range d.alive {
		if a {
			out = append(out, i)
		}
	}
	return out
}

// OnDeath registers a callback run (once, in event context) when a rank
// is declared dead. Callbacks must not block.
func (d *Detector) OnDeath(fn func(rank int)) {
	d.onDeath = append(d.onDeath, fn)
}

// Watch registers a signal to be broadcast on every death declaration,
// so a process blocked on a protocol signal a dead peer will never fire
// wakes up and re-checks Dead. Unregister with the returned function.
func (d *Detector) Watch(s *sim.Signal) (unwatch func()) {
	d.watch = append(d.watch, s)
	return func() {
		for i, x := range d.watch {
			if x == s {
				d.watch = append(d.watch[:i], d.watch[i+1:]...)
				return
			}
		}
	}
}

// Stop shuts the detector down: monitors exit at their next tick and no
// further deaths are declared. Call it when the application work is
// complete so the simulation drains.
func (d *Detector) Stop() { d.stopped = true }
