// Package mpi implements the message-passing layer of the simulation:
// point-to-point sends and receives with eager and rendezvous protocols
// over the net layer, tag matching with an unexpected-message queue, a
// registration (pin-down) cache for rendezvous buffers, and the
// NetPIPE-style ping-pong benchmark the paper builds everything on.
//
// Semantics follow the paper's MadMPI setup: one rank per node, one
// communication thread per rank driving all communication, messages up
// to EagerMax bytes sent eagerly through pre-registered internal buffers
// (one staging copy on each side), larger messages through a
// RTS/CTS rendezvous followed by zero-copy RDMA.
package mpi

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/net"
	"repro/internal/sim"
)

// World is a communicator spanning one rank per cluster node.
type World struct {
	cluster *machine.Cluster
	nw      *net.Network
	ranks   []*Rank
}

// NewWorld creates one rank per node of the cluster. Each rank's
// communication thread is initially bound to the last core of the last
// NUMA node (the paper's default placement: far from the NIC).
func NewWorld(c *machine.Cluster, nw *net.Network) *World {
	w := &World{cluster: c, nw: nw}
	for i, n := range c.Nodes {
		w.ranks = append(w.ranks, &Rank{
			world:    w,
			ID:       i,
			Node:     n,
			CommCore: n.Spec.LastCoreOfNUMA(n.Spec.NUMANodes() - 1),
			pending:  make(map[matchKey][]*pendingRecv),
			unexp:    make(map[matchKey][]*message),
		})
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank {
	if i < 0 || i >= len(w.ranks) {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", i, len(w.ranks)))
	}
	return w.ranks[i]
}

// Network returns the underlying interconnect.
func (w *World) Network() *net.Network { return w.nw }

// matchKey matches messages by source rank and tag.
type matchKey struct{ src, tag int }

// message is an in-flight message as seen by the receiver side.
type message struct {
	src, tag int
	size     int64
	eager    bool

	// Eager: arrived flips when the payload has landed in the
	// receiver's internal buffers.
	arrived    bool
	arrivedSig *sim.Signal

	// Rendezvous: the receiver broadcasts cts once its buffer is ready
	// and the CTS control message has crossed the wire; the sender
	// broadcasts dmaDone when the RDMA write has fully landed.
	srcRank *Rank
	srcBuf  *machine.Buffer
	rbuf    *machine.Buffer // receiver's landing buffer, set before CTS
	cts     *sim.Signal
	dmaDone *sim.Signal
}

// pendingRecv is a posted receive awaiting its message.
type pendingRecv struct {
	sig *sim.Signal
	msg *message
}

// Rank is one MPI process, pinned to one node.
type Rank struct {
	world *World
	ID    int
	Node  *machine.Node
	// CommCore is the core executing the communication thread; all
	// software overheads of this rank's communication run there.
	CommCore int

	pending map[matchKey][]*pendingRecv
	unexp   map[matchKey][]*message
}

// SetCommCore rebinds the communication thread to a core.
func (r *Rank) SetCommCore(core int) {
	r.Node.Spec.NUMAOfCore(core) // range check
	r.CommCore = core
}

// CommNUMA returns the NUMA node of the communication thread.
func (r *Rank) CommNUMA() int { return r.Node.Spec.NUMAOfCore(r.CommCore) }

// eagerMax returns the eager/rendezvous protocol switch size.
func (r *Rank) eagerMax() int64 { return int64(r.Node.Spec.NIC.EagerMax) }

// deliver routes an arriving message to a posted receive or the
// unexpected queue. Runs in event context.
func (r *Rank) deliver(m *message) {
	key := matchKey{m.src, m.tag}
	if q := r.pending[key]; len(q) > 0 {
		pr := q[0]
		r.pending[key] = q[1:]
		pr.msg = m
		pr.sig.Broadcast()
		return
	}
	r.unexp[key] = append(r.unexp[key], m)
}

// match returns the oldest unexpected message for key, or registers a
// pending receive and blocks p until one arrives.
func (r *Rank) match(p *sim.Proc, key matchKey) *message {
	if q := r.unexp[key]; len(q) > 0 {
		m := q[0]
		r.unexp[key] = q[1:]
		return m
	}
	pr := &pendingRecv{sig: sim.NewSignal(r.world.cluster.K)}
	r.pending[key] = append(r.pending[key], pr)
	pr.sig.Wait(p)
	return pr.msg
}

// Send transmits size bytes of buf to rank dst with the given tag,
// blocking p (the communication thread) until the send completes
// locally: for eager messages, once the payload has been handed to the
// NIC; for rendezvous messages, once the RDMA transfer has finished.
func (r *Rank) Send(p *sim.Proc, dst, tag int, buf *machine.Buffer, size int64) {
	if size < 0 || (buf != nil && size > buf.Size) {
		panic(fmt.Sprintf("mpi: send size %d out of buffer bounds", size))
	}
	start := p.Now()
	peer := r.world.Rank(dst)
	k := r.world.cluster.K
	nw := r.world.nw
	node := r.Node

	bufNUMA := node.Spec.NIC.NUMA
	if buf != nil {
		bufNUMA = buf.NUMA
	}
	nw.SendOverhead(p, node, r.CommCore, bufNUMA)

	if size <= r.eagerMax() {
		// Eager: stage the payload into pre-registered NIC-NUMA buffers
		// while the NIC already streams it out (staging and injection
		// pipeline packet by packet); Send completes locally once the
		// staging copy is done. The payload lands in the receiver's
		// internal buffers.
		dataNUMA := node.Spec.NIC.NUMA
		if buf != nil {
			dataNUMA = buf.NUMA
		}
		m := &message{
			src: r.ID, tag: tag, size: size, eager: true,
			arrivedSig: sim.NewSignal(k),
		}
		lat := node.Jitter(nw.WireLatency(), node.Spec.NIC.NoiseFrac)
		k.After(lat, func() {
			if size == 0 {
				m.arrived = true
				m.arrivedSig.Broadcast()
				peer.deliver(m)
				return
			}
			k.Spawn("eager-payload", func(tp *sim.Proc) {
				nw.TransferEager(tp, node, peer.Node, size)
				m.arrived = true
				m.arrivedSig.Broadcast()
			})
			peer.deliver(m)
		})
		nw.Memcpy(p, node, r.CommCore, dataNUMA, node.Spec.NIC.NUMA, size)
		r.accountSend(size, p.Now().Sub(start))
		return
	}

	// Rendezvous: register the buffer (pin-down cache), send RTS, wait
	// for CTS, then RDMA straight from the user buffer.
	r.register(p, buf)
	m := &message{
		src: r.ID, tag: tag, size: size,
		srcRank: r, srcBuf: buf,
		cts:     sim.NewSignal(k),
		dmaDone: sim.NewSignal(k),
	}
	lat := node.Jitter(nw.WireLatency(), node.Spec.NIC.NoiseFrac)
	k.After(lat, func() { peer.deliver(m) })
	m.cts.Wait(p)
	// Process the CTS before programming the RDMA engine.
	node.ExecCycles(p, r.CommCore, node.Spec.NIC.RecvCycles/2)
	nw.TransferDMA(p, node, buf, peer.Node, m.recvBuf(), size)
	m.dmaDone.Broadcast()
	r.accountSend(size, p.Now().Sub(start))
}

// recvBuf is set by the receiver before broadcasting CTS.
func (m *message) recvBuf() *machine.Buffer { return m.rbuf }

// Recv receives a message from rank src with the given tag into buf,
// blocking p until the payload is fully in place.
func (r *Rank) Recv(p *sim.Proc, src, tag int, buf *machine.Buffer, size int64) {
	if size < 0 || (buf != nil && size > buf.Size) {
		panic(fmt.Sprintf("mpi: recv size %d out of buffer bounds", size))
	}
	nw := r.world.nw
	node := r.Node
	k := r.world.cluster.K

	m := r.match(p, matchKey{src, tag})
	if m.size > size {
		panic(fmt.Sprintf("mpi: message of %d bytes into %d-byte receive", m.size, size))
	}
	if m.eager {
		if !m.arrived {
			m.arrivedSig.Wait(p)
		}
		dNUMA := node.Spec.NIC.NUMA
		if buf != nil {
			dNUMA = buf.NUMA
		}
		nw.RecvOverhead(p, node, r.CommCore, dNUMA)
		// Deliver from the internal NIC-NUMA buffers to the user buffer.
		dstNUMA := node.Spec.NIC.NUMA
		if buf != nil {
			dstNUMA = buf.NUMA
		}
		nw.Memcpy(p, node, r.CommCore, node.Spec.NIC.NUMA, dstNUMA, m.size)
		r.Node.Counters.BytesReceived += float64(m.size)
		return
	}

	// Rendezvous: process the RTS, prepare (register) the landing
	// buffer, return CTS, wait for the RDMA write to land, complete.
	// The control messages cost real software time at both ends — part
	// of why MPI libraries only switch to rendezvous past a threshold.
	node.ExecCycles(p, r.CommCore, (node.Spec.NIC.RecvCycles+node.Spec.NIC.SendCycles)/2)
	r.register(p, buf)
	m.rbuf = buf
	lat := node.Jitter(nw.WireLatency(), node.Spec.NIC.NoiseFrac)
	k.After(lat, func() { m.cts.Broadcast() })
	m.dmaDone.Wait(p)
	rNUMA := node.Spec.NIC.NUMA
	if buf != nil {
		rNUMA = buf.NUMA
	}
	nw.RecvOverhead(p, node, r.CommCore, rNUMA)
	r.Node.Counters.BytesReceived += float64(m.size)
}

// register pays the memory-registration cost for a rendezvous buffer
// unless the pin-down cache already holds it (recycled ping-pong
// buffers register once, per Tezuka et al. [20]).
func (r *Rank) register(p *sim.Proc, buf *machine.Buffer) {
	if buf == nil || buf.Registered {
		return
	}
	cycles := r.Node.Spec.NIC.RegisterCyclesPerKB * float64(buf.Size) / 1024
	r.Node.ExecCycles(p, r.CommCore, cycles)
	buf.Registered = true
}

// accountSend feeds the §6 sending-bandwidth profiling counters.
func (r *Rank) accountSend(size int64, busy sim.Duration) {
	r.Node.Counters.BytesSent += float64(size)
	r.Node.Counters.SendBusySecs += busy.Seconds()
}
