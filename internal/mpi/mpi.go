// Package mpi implements the message-passing layer of the simulation:
// point-to-point sends and receives with eager and rendezvous protocols
// over the net layer, tag matching with an unexpected-message queue, a
// registration (pin-down) cache for rendezvous buffers, and the
// NetPIPE-style ping-pong benchmark the paper builds everything on.
//
// Semantics follow the paper's MadMPI setup: one rank per node, one
// communication thread per rank driving all communication, messages up
// to EagerMax bytes sent eagerly through pre-registered internal buffers
// (one staging copy on each side), larger messages through a
// RTS/CTS rendezvous followed by zero-copy RDMA.
package mpi

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/net"
	"repro/internal/sim"
)

// World is a communicator spanning one rank per cluster node.
type World struct {
	cluster *machine.Cluster
	nw      *net.Network
	ranks   []*Rank
	// inj is the fault injector installed on the network, nil on
	// healthy worlds. Under a lossy schedule the point-to-point
	// protocols switch to their recovery paths: bounded retransmission
	// with exponential backoff + jitter for eager messages, RTS/CTS
	// retransmission for rendezvous handshakes. Healthy worlds never
	// enter those paths, so their event sequence is unchanged.
	inj *fault.Injector
	// det is the heartbeat failure detector, armed by StartHeartbeat on
	// worlds whose fault schedule contains node crashes; nil otherwise.
	det *Detector
	// freeMsgs recycles message structs (with their embedded signals and
	// bound-method callbacks) on healthy worlds. Lossy/crashy worlds
	// never pool: retransmission timers and detector watchers can hold a
	// message past its normal release point.
	freeMsgs []*message
}

// NewWorld creates one rank per node of the cluster. Each rank's
// communication thread is initially bound to the last core of the last
// NUMA node (the paper's default placement: far from the NIC).
func NewWorld(c *machine.Cluster, nw *net.Network) *World {
	w := &World{cluster: c, nw: nw, inj: nw.Faults()}
	for i, n := range c.Nodes {
		w.ranks = append(w.ranks, &Rank{
			world:    w,
			ID:       i,
			Node:     n,
			CommCore: n.Spec.LastCoreOfNUMA(n.Spec.NUMANodes() - 1),
			pending:  make(map[matchKey][]*pendingRecv),
			unexp:    make(map[matchKey][]*message),
		})
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return len(w.ranks) }

// Rank returns rank i.
func (w *World) Rank(i int) *Rank {
	if i < 0 || i >= len(w.ranks) {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", i, len(w.ranks)))
	}
	return w.ranks[i]
}

// Network returns the underlying interconnect.
func (w *World) Network() *net.Network { return w.nw }

// Reset rewinds the communicator for reuse after the underlying cluster
// and network have been reset: it re-reads the (cleared) fault injector,
// disarms the failure detector, and restores every rank's default
// comm-thread placement. It panics if any rank still has queued or
// posted messages — a world must be drained before it is recycled.
func (w *World) Reset() {
	w.inj = w.nw.Faults()
	w.det = nil
	for _, r := range w.ranks {
		for key, q := range r.pending {
			if len(q) != 0 {
				panic(fmt.Sprintf("mpi: Reset with %d pending receives on rank %d key %+v", len(q), r.ID, key))
			}
		}
		for key, q := range r.unexp {
			if len(q) != 0 {
				panic(fmt.Sprintf("mpi: Reset with %d unexpected messages on rank %d key %+v", len(q), r.ID, key))
			}
		}
		r.CommCore = r.Node.Spec.LastCoreOfNUMA(r.Node.Spec.NUMANodes() - 1)
	}
}

// matchKey matches messages by source rank and tag.
type matchKey struct{ src, tag int }

// message is an in-flight message as seen by the receiver side.
type message struct {
	src, tag int
	size     int64
	eager    bool

	// Eager: arrived flips when the payload has landed in the
	// receiver's internal buffers.
	arrived    bool
	arrivedSig *sim.Signal

	// Rendezvous: the receiver broadcasts cts once its buffer is ready
	// and the CTS control message has crossed the wire; the sender
	// broadcasts dmaDone when the RDMA write has fully landed. The ctsOK
	// and dmaOK flags record those completions as state, so a
	// fault-tolerant waiter woken by a crash broadcast (not by the
	// protocol signal itself) can distinguish "done" from "peer died".
	srcRank *Rank
	srcBuf  *machine.Buffer
	rbuf    *machine.Buffer // receiver's landing buffer, set before CTS
	cts     *sim.Signal
	ctsOK   bool
	dmaDone *sim.Signal
	dmaOK   bool

	// Fault recovery: delivered dedups retransmitted RTS (the sender
	// reuses the same message object per attempt), and resendCTS, set by
	// the receiver once it has answered, re-sends the CTS when a
	// duplicate RTS reveals the previous CTS was lost.
	delivered bool
	resendCTS func()

	// peer is the destination rank, read by the cached wire-arrival
	// callbacks below. They are bound once per message lifetime so the
	// healthy hot paths schedule arrivals without per-send closures.
	peer      *Rank
	deliverFn func()          // eagerWireArrival
	payloadFn func(*sim.Proc) // eagerPayload
	rtsFn     func()          // rtsArrive
	ctsFn     func()          // ctsArrive
}

// eagerWireArrival runs when an eager message's first packet crosses
// the wire: the payload streams in on its own process while the
// envelope is delivered for matching.
func (m *message) eagerWireArrival() {
	if m.size == 0 {
		m.arrived = true
		m.arrivedSig.Broadcast()
		m.peer.deliver(m)
		return
	}
	m.srcRank.world.cluster.K.Spawn("eager-payload", m.payloadFn)
	m.peer.deliver(m)
}

// eagerPayload streams the eager payload into the receiver's internal
// buffers.
func (m *message) eagerPayload(tp *sim.Proc) {
	// A payload dropped by a node crash never arrives; the
	// fault-tolerant receive path detects the dead sender instead.
	if !m.srcRank.world.nw.TransferEager(tp, m.srcRank.Node, m.peer.Node, m.size) {
		return
	}
	m.arrived = true
	m.arrivedSig.Broadcast()
}

// rtsArrive delivers a rendezvous RTS on the healthy path.
func (m *message) rtsArrive() { m.peer.deliver(m) }

// ctsArrive completes the receiver's CTS control message.
func (m *message) ctsArrive() { m.ctsOK = true; m.cts.Broadcast() }

// getMsg returns a message with fresh protocol state, recycled from the
// world's free list when possible.
func (w *World) getMsg() *message {
	if n := len(w.freeMsgs); n > 0 {
		m := w.freeMsgs[n-1]
		w.freeMsgs[n-1] = nil
		w.freeMsgs = w.freeMsgs[:n-1]
		m.eager = false
		m.arrived = false
		m.srcRank = nil
		m.srcBuf = nil
		m.rbuf = nil
		m.ctsOK = false
		m.dmaOK = false
		m.delivered = false
		m.resendCTS = nil
		m.peer = nil
		return m
	}
	k := w.cluster.K
	m := &message{
		arrivedSig: sim.NewSignal(k),
		cts:        sim.NewSignal(k),
		dmaDone:    sim.NewSignal(k),
	}
	m.deliverFn = m.eagerWireArrival
	m.payloadFn = m.eagerPayload
	m.rtsFn = m.rtsArrive
	m.ctsFn = m.ctsArrive
	return m
}

// putMsg recycles a fully completed message. Only the healthy paths
// call it: under fault injection a message can outlive its receive
// through retransmission timers and crash watchers.
func (w *World) putMsg(m *message) {
	w.freeMsgs = append(w.freeMsgs, m)
}

// pendingRecv is a posted receive awaiting its message.
type pendingRecv struct {
	sig *sim.Signal
	msg *message
}

// Rank is one MPI process, pinned to one node.
type Rank struct {
	world *World
	ID    int
	Node  *machine.Node
	// CommCore is the core executing the communication thread; all
	// software overheads of this rank's communication run there.
	CommCore int

	pending map[matchKey][]*pendingRecv
	unexp   map[matchKey][]*message

	// freePRs recycles posted-receive slots. A pendingRecv is only ever
	// referenced by its waiter and the pending queue, and WaitTimeout
	// cancels its timer on wake, so recycling is safe on every world.
	freePRs []*pendingRecv
}

// getPR returns an empty posted-receive slot, recycled when possible.
func (r *Rank) getPR() *pendingRecv {
	if n := len(r.freePRs); n > 0 {
		pr := r.freePRs[n-1]
		r.freePRs[n-1] = nil
		r.freePRs = r.freePRs[:n-1]
		return pr
	}
	return &pendingRecv{sig: sim.NewSignal(r.world.cluster.K)}
}

// putPR recycles a posted-receive slot once its waiter has read msg.
func (r *Rank) putPR(pr *pendingRecv) {
	pr.msg = nil
	r.freePRs = append(r.freePRs, pr)
}

// SetCommCore rebinds the communication thread to a core.
func (r *Rank) SetCommCore(core int) {
	r.Node.Spec.NUMAOfCore(core) // range check
	r.CommCore = core
}

// CommNUMA returns the NUMA node of the communication thread.
func (r *Rank) CommNUMA() int { return r.Node.Spec.NUMAOfCore(r.CommCore) }

// eagerMax returns the eager/rendezvous protocol switch size.
func (r *Rank) eagerMax() int64 { return int64(r.Node.Spec.NIC.EagerMax) }

// deliver routes an arriving message to a posted receive or the
// unexpected queue. Runs in event context.
func (r *Rank) deliver(m *message) {
	key := matchKey{m.src, m.tag}
	if q := r.pending[key]; len(q) > 0 {
		pr := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		r.pending[key] = q[:len(q)-1]
		pr.msg = m
		pr.sig.Broadcast()
		return
	}
	r.unexp[key] = append(r.unexp[key], m)
}

// deliverRTS routes a (possibly retransmitted) rendezvous RTS: the
// first copy goes through normal matching; a duplicate — the sender
// retransmits when no CTS arrived within its timeout — re-triggers the
// CTS if the receiver has already answered (the CTS was lost on the
// wire), and is ignored otherwise (the receiver simply has not posted
// its receive yet). Runs in event context.
func (r *Rank) deliverRTS(m *message) {
	if m.delivered {
		if m.resendCTS != nil {
			m.resendCTS()
		}
		return
	}
	m.delivered = true
	r.deliver(m)
}

// match returns the oldest unexpected message for key, or registers a
// pending receive and blocks p until one arrives.
func (r *Rank) match(p *sim.Proc, key matchKey) *message {
	m, _ := r.matchTimeout(p, key, 0)
	return m
}

// matchTimeout is match with a deadline: it reports false when no
// message arrived within d (a non-positive d waits forever). On timeout
// the pending receive is withdrawn, so a message arriving later is
// queued as unexpected instead of completing a receive nobody waits on.
func (r *Rank) matchTimeout(p *sim.Proc, key matchKey, d sim.Duration) (*message, bool) {
	if q := r.unexp[key]; len(q) > 0 {
		m := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		r.unexp[key] = q[:len(q)-1]
		return m, true
	}
	pr := r.getPR()
	r.pending[key] = append(r.pending[key], pr)
	if !pr.sig.WaitTimeout(p, d) {
		q := r.pending[key]
		for i, x := range q {
			if x == pr {
				r.pending[key] = append(q[:i], q[i+1:]...)
				break
			}
		}
		r.putPR(pr)
		return nil, false
	}
	m := pr.msg
	r.putPR(pr)
	return m, true
}

// gateComm blocks p while a comm-thread hang fault is active on this
// rank's node.
func (r *Rank) gateComm(p *sim.Proc) {
	if inj := r.world.inj; inj != nil {
		inj.GateComm(p, r.Node.ID)
	}
}

// Send transmits size bytes of buf to rank dst with the given tag,
// blocking p (the communication thread) until the send completes
// locally: for eager messages, once the payload has been handed to the
// NIC; for rendezvous messages, once the RDMA transfer has finished.
func (r *Rank) Send(p *sim.Proc, dst, tag int, buf *machine.Buffer, size int64) {
	if size < 0 || (buf != nil && size > buf.Size) {
		panic(fmt.Sprintf("mpi: send size %d out of buffer bounds", size))
	}
	r.gateComm(p)
	start := p.Now()
	peer := r.world.Rank(dst)
	k := r.world.cluster.K
	nw := r.world.nw
	node := r.Node
	inj := r.world.inj

	bufNUMA := node.Spec.NIC.NUMA
	if buf != nil {
		bufNUMA = buf.NUMA
	}
	nw.SendOverhead(p, node, r.CommCore, bufNUMA)

	if size <= r.eagerMax() {
		// Eager: stage the payload into pre-registered NIC-NUMA buffers
		// while the NIC already streams it out (staging and injection
		// pipeline packet by packet); Send completes locally once the
		// staging copy is done. The payload lands in the receiver's
		// internal buffers.
		dataNUMA := node.Spec.NIC.NUMA
		if buf != nil {
			dataNUMA = buf.NUMA
		}
		if inj != nil && inj.Lossy() {
			// Each transmission attempt can be dropped or corrupted;
			// losses are detected by retransmission timeout, corruptions
			// by the receiver's checksum after the wasted transfer.
			for attempt := 0; ; attempt++ {
				switch inj.Tx() {
				case fault.TxOK:
					r.injectEager(p, peer, tag, size, dataNUMA)
					r.accountSend(size, p.Now().Sub(start))
					return
				case fault.TxCorrupt:
					node.Counters.MsgsCorrupted++
					// The doomed payload still crosses the wire before
					// the receiver discards it.
					if size > 0 {
						nw.Memcpy(p, node, r.CommCore, dataNUMA, node.Spec.NIC.NUMA, size)
						nw.TransferEager(p, node, peer.Node, size)
					}
				default: // TxLost
					node.Counters.MsgsLost++
				}
				node.Counters.SendTimeouts++
				if attempt >= inj.Policy().MaxRetries {
					panic(&fault.TransferError{Op: "eager", Src: node.ID, Dst: peer.Node.ID, Attempts: attempt + 1})
				}
				node.Counters.SendRetries++
				p.Sleep(inj.Backoff(attempt))
			}
		}
		r.injectEager(p, peer, tag, size, dataNUMA)
		r.accountSend(size, p.Now().Sub(start))
		return
	}

	// Rendezvous: register the buffer (pin-down cache), send RTS, wait
	// for CTS, then RDMA straight from the user buffer.
	r.register(p, buf)
	m := r.world.getMsg()
	m.src, m.tag, m.size = r.ID, tag, size
	m.srcRank, m.srcBuf = r, buf
	m.peer = peer
	if inj != nil && inj.Lossy() {
		// RTS/CTS recovery: retransmit the RTS with exponential backoff
		// until the CTS arrives. The receiver dedups duplicate RTS (see
		// deliverRTS) and re-sends a lost CTS when a duplicate shows the
		// handshake stalled on its side.
		for attempt := 0; ; attempt++ {
			switch inj.Tx() {
			case fault.TxOK:
				lat := node.Jitter(nw.WireLatency(), node.Spec.NIC.NoiseFrac)
				k.After(lat, func() { peer.deliverRTS(m) })
			case fault.TxCorrupt:
				node.Counters.MsgsCorrupted++
			default: // TxLost
				node.Counters.MsgsLost++
			}
			if m.cts.WaitTimeout(p, inj.Backoff(attempt)) {
				break
			}
			node.Counters.SendTimeouts++
			if attempt >= inj.Policy().MaxRetries {
				panic(&fault.TransferError{Op: "rendezvous", Src: node.ID, Dst: peer.Node.ID, Attempts: attempt + 1})
			}
			node.Counters.SendRetries++
		}
	} else {
		lat := node.Jitter(nw.WireLatency(), node.Spec.NIC.NoiseFrac)
		k.After(lat, m.rtsFn)
		m.cts.Wait(p)
	}
	// Process the CTS before programming the RDMA engine.
	node.ExecCycles(p, r.CommCore, node.Spec.NIC.RecvCycles/2)
	nw.TransferDMA(p, node, buf, peer.Node, m.recvBuf(), size)
	m.dmaOK = true
	m.dmaDone.Broadcast()
	r.accountSend(size, p.Now().Sub(start))
}

// injectEager performs one successful eager transmission: schedule the
// wire delivery and pay the staging copy. Shared by the healthy path and
// the winning attempt of the lossy retransmission loop.
func (r *Rank) injectEager(p *sim.Proc, peer *Rank, tag int, size int64, dataNUMA int) {
	node := r.Node
	nw := r.world.nw
	k := r.world.cluster.K
	m := r.world.getMsg()
	m.src, m.tag, m.size = r.ID, tag, size
	m.eager = true
	m.srcRank = r
	m.peer = peer
	lat := node.Jitter(nw.WireLatency(), node.Spec.NIC.NoiseFrac)
	k.After(lat, m.deliverFn)
	nw.Memcpy(p, node, r.CommCore, dataNUMA, node.Spec.NIC.NUMA, size)
}

// recvBuf is set by the receiver before broadcasting CTS.
func (m *message) recvBuf() *machine.Buffer { return m.rbuf }

// ErrTimeout reports that a timed receive expired before a matching
// message arrived.
var ErrTimeout = errors.New("mpi: receive timed out")

// Recv receives a message from rank src with the given tag into buf,
// blocking p until the payload is fully in place.
func (r *Rank) Recv(p *sim.Proc, src, tag int, buf *machine.Buffer, size int64) {
	if size < 0 || (buf != nil && size > buf.Size) {
		panic(fmt.Sprintf("mpi: recv size %d out of buffer bounds", size))
	}
	r.gateComm(p)
	m := r.match(p, matchKey{src, tag})
	r.complete(p, m, buf, size)
}

// RecvTimeout is Recv with a deadline on the matching phase: if no
// message from src with the given tag arrives within d, the posted
// receive is withdrawn, the node's receive-timeout counter is bumped,
// and ErrTimeout is returned (a non-positive d waits forever). Once a
// message has matched, completion proceeds without further deadline —
// the payload is already committed to the wire.
func (r *Rank) RecvTimeout(p *sim.Proc, src, tag int, buf *machine.Buffer, size int64, d sim.Duration) error {
	if size < 0 || (buf != nil && size > buf.Size) {
		panic(fmt.Sprintf("mpi: recv size %d out of buffer bounds", size))
	}
	r.gateComm(p)
	m, ok := r.matchTimeout(p, matchKey{src, tag}, d)
	if !ok {
		r.Node.Counters.RecvTimeouts++
		return ErrTimeout
	}
	r.complete(p, m, buf, size)
	return nil
}

// complete finishes a matched receive: drain the eager payload into the
// user buffer, or answer the rendezvous RTS with a CTS and wait for the
// RDMA write to land.
func (r *Rank) complete(p *sim.Proc, m *message, buf *machine.Buffer, size int64) {
	nw := r.world.nw
	node := r.Node
	k := r.world.cluster.K
	inj := r.world.inj

	if m.size > size {
		panic(fmt.Sprintf("mpi: message of %d bytes into %d-byte receive", m.size, size))
	}
	if m.eager {
		if !m.arrived {
			m.arrivedSig.Wait(p)
		}
		dNUMA := node.Spec.NIC.NUMA
		if buf != nil {
			dNUMA = buf.NUMA
		}
		nw.RecvOverhead(p, node, r.CommCore, dNUMA)
		// Deliver from the internal NIC-NUMA buffers to the user buffer.
		dstNUMA := node.Spec.NIC.NUMA
		if buf != nil {
			dstNUMA = buf.NUMA
		}
		nw.Memcpy(p, node, r.CommCore, node.Spec.NIC.NUMA, dstNUMA, m.size)
		r.Node.Counters.BytesReceived += float64(m.size)
		if inj == nil {
			// The receiver is the last toucher on the healthy path: the
			// payload process has broadcast and exited before the wait
			// above returned.
			r.world.putMsg(m)
		}
		return
	}

	// Rendezvous: process the RTS, prepare (register) the landing
	// buffer, return CTS, wait for the RDMA write to land, complete.
	// The control messages cost real software time at both ends — part
	// of why MPI libraries only switch to rendezvous past a threshold.
	node.ExecCycles(p, r.CommCore, (node.Spec.NIC.RecvCycles+node.Spec.NIC.SendCycles)/2)
	r.register(p, buf)
	m.rbuf = buf
	if inj != nil && inj.Lossy() {
		// The CTS itself can be lost or corrupted; the sender's RTS
		// retransmission re-triggers it via resendCTS (deliverRTS).
		sendCTS := func() {
			switch inj.Tx() {
			case fault.TxCorrupt:
				node.Counters.MsgsCorrupted++
				return
			case fault.TxLost:
				node.Counters.MsgsLost++
				return
			}
			lat := node.Jitter(nw.WireLatency(), node.Spec.NIC.NoiseFrac)
			k.After(lat, func() { m.ctsOK = true; m.cts.Broadcast() })
		}
		m.resendCTS = sendCTS
		sendCTS()
	} else {
		lat := node.Jitter(nw.WireLatency(), node.Spec.NIC.NoiseFrac)
		k.After(lat, m.ctsFn)
	}
	m.dmaDone.Wait(p)
	rNUMA := node.Spec.NIC.NUMA
	if buf != nil {
		rNUMA = buf.NUMA
	}
	nw.RecvOverhead(p, node, r.CommCore, rNUMA)
	r.Node.Counters.BytesReceived += float64(m.size)
	if inj == nil {
		// The sender's last touch is the dmaDone broadcast that released
		// the wait above; from here only the receiver sees m.
		r.world.putMsg(m)
	}
}

// register pays the memory-registration cost for a rendezvous buffer
// unless the pin-down cache already holds it (recycled ping-pong
// buffers register once, per Tezuka et al. [20]).
func (r *Rank) register(p *sim.Proc, buf *machine.Buffer) {
	if buf == nil || buf.Registered {
		return
	}
	cycles := r.Node.Spec.NIC.RegisterCyclesPerKB * float64(buf.Size) / 1024
	r.Node.ExecCycles(p, r.CommCore, cycles)
	buf.Registered = true
}

// accountSend feeds the §6 sending-bandwidth profiling counters.
func (r *Rank) accountSend(size int64, busy sim.Duration) {
	r.Node.Counters.BytesSent += float64(size)
	r.Node.Counters.SendBusySecs += busy.Seconds()
}
