package mpi

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/net"
	"repro/internal/sim"
	"repro/internal/topology"
)

// collWorld builds an n-node noiseless henri world.
func collWorld(t *testing.T, n int) (*machine.Cluster, *World) {
	t.Helper()
	spec := topology.Henri()
	spec.NIC.NoiseFrac = 0
	c := machine.NewCluster(spec, n, 1)
	return c, NewWorld(c, net.New(c))
}

// runAllRanks spawns fn on every rank and runs the simulation to
// completion, failing the test if any rank deadlocked.
func runAllRanks(t *testing.T, c *machine.Cluster, w *World, fn func(p *sim.Proc, r *Rank)) {
	t.Helper()
	for i := 0; i < w.Size(); i++ {
		r := w.Rank(i)
		c.K.Spawn("rank", func(p *sim.Proc) { fn(p, r) })
	}
	c.K.Run()
	if c.K.LiveProcs() != 0 {
		t.Fatalf("%d ranks deadlocked", c.K.LiveProcs())
	}
}

func TestBcastReachesAllRanks(t *testing.T) {
	for _, nodes := range []int{2, 3, 4, 5, 8} {
		c, w := collWorld(t, nodes)
		before := make([]float64, nodes)
		runAllRanks(t, c, w, func(p *sim.Proc, r *Rank) {
			buf := r.Node.Alloc(4096, 0)
			r.Bcast(p, 0, 1, buf, 4096)
		})
		// Every non-root rank received exactly one 4096-byte payload.
		for i := 1; i < nodes; i++ {
			got := w.Rank(i).Node.Counters.BytesReceived - before[i]
			if got != 4096 {
				t.Fatalf("nodes=%d: rank %d received %v bytes, want 4096", nodes, i, got)
			}
		}
	}
}

func TestBcastNonZeroRoot(t *testing.T) {
	c, w := collWorld(t, 4)
	runAllRanks(t, c, w, func(p *sim.Proc, r *Rank) {
		r.Bcast(p, 2, 1, r.Node.Alloc(64, 0), 64)
	})
	if got := w.Rank(2).Node.Counters.BytesReceived; got != 0 {
		t.Fatalf("root received %v bytes", got)
	}
	for _, i := range []int{0, 1, 3} {
		if got := w.Rank(i).Node.Counters.BytesReceived; got != 64 {
			t.Fatalf("rank %d received %v bytes", i, got)
		}
	}
}

func TestReduceCollectsAtRoot(t *testing.T) {
	for _, nodes := range []int{2, 4, 7} {
		c, w := collWorld(t, nodes)
		runAllRanks(t, c, w, func(p *sim.Proc, r *Rank) {
			r.Reduce(p, 0, 1, r.Node.Alloc(128, 0), 128)
		})
		// Every rank except the root sends exactly one contribution up
		// the tree; total traffic is (n−1) messages.
		var sent float64
		for i := 0; i < nodes; i++ {
			sent += w.Rank(i).Node.Counters.BytesSent
		}
		if want := float64((nodes - 1) * 128); sent != want {
			t.Fatalf("nodes=%d: total sent %v, want %v", nodes, sent, want)
		}
	}
}

func TestAllreduceLeavesNoStragglers(t *testing.T) {
	c, w := collWorld(t, 6)
	done := 0
	runAllRanks(t, c, w, func(p *sim.Proc, r *Rank) {
		r.Allreduce(p, 1, r.Node.Alloc(8, 0), 8)
		done++
	})
	if done != 6 {
		t.Fatalf("%d of 6 ranks finished Allreduce", done)
	}
	// Everyone but the final root received the result broadcast.
	for i := 1; i < 6; i++ {
		if got := w.Rank(i).Node.Counters.BytesReceived; got < 8 {
			t.Fatalf("rank %d received %v bytes", i, got)
		}
	}
}

func TestGatherRootReceivesAll(t *testing.T) {
	c, w := collWorld(t, 5)
	runAllRanks(t, c, w, func(p *sim.Proc, r *Rank) {
		r.Gather(p, 0, 1, r.Node.Alloc(256, 0), 256)
	})
	if got := w.Rank(0).Node.Counters.BytesReceived; got != 4*256 {
		t.Fatalf("root gathered %v bytes, want 1024", got)
	}
}

func TestCollectivesSingleRankNoOp(t *testing.T) {
	c, w := collWorld(t, 1)
	ok := false
	c.K.Spawn("solo", func(p *sim.Proc) {
		r := w.Rank(0)
		buf := r.Node.Alloc(8, 0)
		r.Bcast(p, 0, 1, buf, 8)
		r.Reduce(p, 0, 2, buf, 8)
		r.Allreduce(p, 3, buf, 8)
		r.Gather(p, 0, 5, buf, 8)
		ok = true
	})
	c.K.Run()
	if !ok {
		t.Fatal("single-rank collectives blocked")
	}
}

func TestBcastLargePayloadUsesRendezvous(t *testing.T) {
	c, w := collWorld(t, 4)
	const size = 4 << 20
	var finish sim.Time
	runAllRanks(t, c, w, func(p *sim.Proc, r *Rank) {
		r.Bcast(p, 0, 1, r.Node.Alloc(size, 0), size)
		if p.Now() > finish {
			finish = p.Now()
		}
	})
	// Binomial depth 2 for 4 ranks: ≥ 2 serialized 4 MB transfers
	// (≈0.37 ms each), well under 4 serial ones.
	lo := 2 * float64(size) / 10.9e9
	hi := 4 * float64(size) / 10.9e9
	if finish.Sub(0).Seconds() < lo*0.9 || finish.Sub(0).Seconds() > hi {
		t.Fatalf("4-rank binomial bcast of 4MB took %v, want in [%.2fms, %.2fms]",
			finish, lo*1e3, hi*1e3)
	}
}

func TestBitLen(t *testing.T) {
	for _, tc := range []struct{ v, want int }{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
	} {
		if got := bitLen(tc.v); got != tc.want {
			t.Fatalf("bitLen(%d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestCollTagValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative opTag accepted")
		}
	}()
	collTag(-1, 0)
}
