package mpi

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/net"
	"repro/internal/sim"
	"repro/internal/topology"
)

// faultWorld builds a noise-free 2-node henri world with the given fault
// schedule installed.
func faultWorld(t *testing.T, seed int64, spec string) (*machine.Cluster, *World) {
	t.Helper()
	ts := topology.Henri()
	ts.NIC.NoiseFrac = 0
	c := machine.NewCluster(ts, 2, seed)
	nw := net.New(c)
	if spec != "" {
		s, err := fault.ParseSpec(spec)
		if err != nil {
			t.Fatal(err)
		}
		nw.InstallFaults(fault.NewInjector(c, s, seed))
	}
	return c, NewWorld(c, nw)
}

func TestLossyEagerRetransmitsAndCompletes(t *testing.T) {
	c, w := faultWorld(t, 1, "loss:p=0.5")
	a, b := w.Rank(0), w.Rank(1)
	buf := a.Node.Alloc(4096, 0)
	rbuf := b.Node.Alloc(4096, 0)
	done := false
	c.K.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			a.Send(p, 1, 5, buf, 4096)
		}
	})
	c.K.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			b.Recv(p, 0, 5, rbuf, 4096)
		}
		done = true
	})
	c.K.Run()
	if !done {
		t.Fatal("receives never completed under 50% loss")
	}
	cnt := a.Node.Counters
	if cnt.SendRetries == 0 || cnt.MsgsLost == 0 {
		t.Fatalf("no recovery recorded: retries=%v lost=%v", cnt.SendRetries, cnt.MsgsLost)
	}
	if cnt.SendTimeouts != cnt.SendRetries {
		t.Fatalf("every completed send's timeouts should equal retries: timeouts=%v retries=%v",
			cnt.SendTimeouts, cnt.SendRetries)
	}
	if got := b.Node.Counters.BytesReceived; got != 20*4096 {
		t.Fatalf("BytesReceived %v, want %v", got, 20*4096)
	}
}

func TestLossyRendezvousRecoversHandshake(t *testing.T) {
	const size = 256 << 10 // > EagerMax: rendezvous
	c, w := faultWorld(t, 3, "loss:p=0.4;corrupt:p=0.1")
	a, b := w.Rank(0), w.Rank(1)
	buf := a.Node.Alloc(size, 0)
	rbuf := b.Node.Alloc(size, 0)
	done := false
	c.K.Spawn("send", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			a.Send(p, 1, 9, buf, size)
		}
	})
	c.K.Spawn("recv", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			b.Recv(p, 0, 9, rbuf, size)
		}
		done = true
	})
	c.K.Run()
	if !done {
		t.Fatal("rendezvous receives never completed under RTS/CTS loss")
	}
	total := a.Node.Counters.MsgsLost + a.Node.Counters.MsgsCorrupted +
		b.Node.Counters.MsgsLost + b.Node.Counters.MsgsCorrupted
	if total == 0 {
		t.Fatal("no control-message faults recorded at p=0.5 combined")
	}
	if got := b.Node.Counters.BytesReceived; got != 10*size {
		t.Fatalf("BytesReceived %v, want %v", got, 10*size)
	}
}

func TestRetryExhaustionFailsTransfer(t *testing.T) {
	for _, tc := range []struct {
		name string
		size int64
		op   string
	}{
		{"eager", 4096, "eager"},
		{"rendezvous", 256 << 10, "rendezvous"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, w := faultWorld(t, 1, "loss:p=1")
			a, b := w.Rank(0), w.Rank(1)
			buf := a.Node.Alloc(tc.size, 0)
			rbuf := b.Node.Alloc(tc.size, 0)
			c.K.Spawn("send", func(p *sim.Proc) { a.Send(p, 1, 5, buf, tc.size) })
			c.K.Spawn("recv", func(p *sim.Proc) { b.Recv(p, 0, 5, rbuf, tc.size) })
			defer func() {
				msg, _ := recover().(string)
				if !strings.Contains(msg, "failed after 9 attempts") || !strings.Contains(msg, tc.op) {
					t.Fatalf("panic %q, want %s TransferError after 9 attempts", msg, tc.op)
				}
			}()
			c.K.Run()
			t.Fatal("total loss did not fail the transfer")
		})
	}
}

func TestRecvTimeout(t *testing.T) {
	c, w := faultWorld(t, 1, "")
	b := w.Rank(1)
	rbuf := b.Node.Alloc(4096, 0)
	var err error
	var at sim.Time
	c.K.Spawn("recv", func(p *sim.Proc) {
		err = b.RecvTimeout(p, 0, 5, rbuf, 4096, 50*sim.Microsecond)
		at = p.Now()
	})
	c.K.Run()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if at != sim.Time(50*sim.Microsecond) {
		t.Fatalf("timed out at %v, want 50us", at)
	}
	if got := b.Node.Counters.RecvTimeouts; got != 1 {
		t.Fatalf("RecvTimeouts %v, want 1", got)
	}
}

func TestRecvTimeoutWithdrawsPendingReceive(t *testing.T) {
	c, w := faultWorld(t, 1, "")
	a, b := w.Rank(0), w.Rank(1)
	buf := a.Node.Alloc(4096, 0)
	rbuf := b.Node.Alloc(4096, 0)
	var timedOut, late error
	c.K.Spawn("recv", func(p *sim.Proc) {
		// First receive gives up before the message is sent; the message
		// must then land in the unexpected queue and complete a later
		// receive instead of waking the abandoned one.
		timedOut = b.RecvTimeout(p, 0, 5, rbuf, 4096, 10*sim.Microsecond)
		late = b.RecvTimeout(p, 0, 5, rbuf, 4096, sim.Second)
	})
	c.K.Spawn("send", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond)
		a.Send(p, 1, 5, buf, 4096)
	})
	c.K.Run()
	if !errors.Is(timedOut, ErrTimeout) {
		t.Fatalf("first receive: %v, want ErrTimeout", timedOut)
	}
	if late != nil {
		t.Fatalf("second receive failed: %v", late)
	}
	if got := b.Node.Counters.BytesReceived; got != 4096 {
		t.Fatalf("BytesReceived %v, want 4096", got)
	}
}

func TestRecvTimeoutCompletesWhenMessageArrives(t *testing.T) {
	c, w := faultWorld(t, 1, "")
	a, b := w.Rank(0), w.Rank(1)
	buf := a.Node.Alloc(4096, 0)
	rbuf := b.Node.Alloc(4096, 0)
	var err error
	c.K.Spawn("send", func(p *sim.Proc) { a.Send(p, 1, 5, buf, 4096) })
	c.K.Spawn("recv", func(p *sim.Proc) { err = b.RecvTimeout(p, 0, 5, rbuf, 4096, sim.Second) })
	c.K.Run()
	if err != nil {
		t.Fatalf("RecvTimeout with an in-flight message: %v", err)
	}
	if got := b.Node.Counters.RecvTimeouts; got != 0 {
		t.Fatalf("RecvTimeouts %v, want 0", got)
	}
}

// TestLossyPingPongDeterministic runs the same lossy ping-pong twice
// with one seed and demands identical latencies and counters, and runs
// a third time with another seed expecting different recovery activity:
// fault injection is deterministic per seed without being constant.
func TestLossyPingPongDeterministic(t *testing.T) {
	run := func(seed int64) ([]sim.Duration, float64) {
		c, w := faultWorld(t, seed, "loss:p=0.3")
		pp := &PingPong{Size: 4096, Iters: 20, Warmup: 2}
		var lats []sim.Duration
		c.K.Spawn("init", func(p *sim.Proc) { lats = pp.Initiate(p, w.Rank(0), 1) })
		c.K.Spawn("resp", func(p *sim.Proc) { pp.Respond(p, w.Rank(1), 0) })
		c.K.Run()
		return lats, w.Rank(0).Node.Counters.SendRetries + w.Rank(1).Node.Counters.SendRetries
	}
	lats1, retries1 := run(1)
	lats2, retries2 := run(1)
	if retries1 == 0 {
		t.Fatal("no retries at p=0.3; faults not injected?")
	}
	if retries1 != retries2 {
		t.Fatalf("same seed, different retry counts: %v != %v", retries1, retries2)
	}
	for i := range lats1 {
		if lats1[i] != lats2[i] {
			t.Fatalf("same seed, latency %d differs: %v != %v", i, lats1[i], lats2[i])
		}
	}
	lats3, _ := run(2)
	same := true
	for i := range lats1 {
		if lats1[i] != lats3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical lossy latencies")
	}
}

// TestDegradeSlowsTransfersWithoutLossPath checks that a pure-degrade
// schedule stretches bandwidth-bound transfers while leaving the MPI
// layer on its healthy (no-retransmission) code path.
func TestDegradeSlowsTransfersWithoutLossPath(t *testing.T) {
	run := func(spec string) (sim.Time, float64) {
		c, w := faultWorld(t, 1, spec)
		a, b := w.Rank(0), w.Rank(1)
		const size = 4 << 20
		buf := a.Node.Alloc(size, 0)
		rbuf := b.Node.Alloc(size, 0)
		var end sim.Time
		c.K.Spawn("send", func(p *sim.Proc) { a.Send(p, 1, 5, buf, size) })
		c.K.Spawn("recv", func(p *sim.Proc) {
			b.Recv(p, 0, 5, rbuf, size)
			end = p.Now()
		})
		c.K.Run()
		return end, a.Node.Counters.SendRetries
	}
	healthy, _ := run("")
	degraded, retries := run("degrade:factor=0.25")
	if retries != 0 {
		t.Fatalf("degrade-only schedule took the retransmission path (%v retries)", retries)
	}
	if float64(degraded) < 2*float64(healthy) {
		t.Fatalf("quarter-capacity wire only stretched the transfer %v -> %v", healthy, degraded)
	}
}

// TestNoOpScheduleMatchesHealthyWorld pins the invariance contract: an
// installed injector whose events do nothing (degrade factor 1) must
// reproduce the healthy world's timings exactly, because fault draws
// come from a dedicated RNG and the MPI layer only switches code paths
// for lossy schedules.
func TestNoOpScheduleMatchesHealthyWorld(t *testing.T) {
	run := func(spec string) []sim.Duration {
		c, w := faultWorld(t, 1, spec)
		pp := &PingPong{Size: 64 << 10, Iters: 10, Warmup: 2}
		var lats []sim.Duration
		c.K.Spawn("init", func(p *sim.Proc) { lats = pp.Initiate(p, w.Rank(0), 1) })
		c.K.Spawn("resp", func(p *sim.Proc) { pp.Respond(p, w.Rank(1), 0) })
		c.K.Run()
		return lats
	}
	healthy := run("")
	noop := run("degrade:factor=1")
	for i := range healthy {
		if healthy[i] != noop[i] {
			t.Fatalf("latency %d: healthy %v != no-op schedule %v", i, healthy[i], noop[i])
		}
	}
}

func TestCommHangStallsPingPong(t *testing.T) {
	run := func(spec string) sim.Time {
		c, w := faultWorld(t, 1, spec)
		pp := &PingPong{Size: 4096, Iters: 5, Warmup: 0}
		var end sim.Time
		c.K.Spawn("init", func(p *sim.Proc) {
			pp.Initiate(p, w.Rank(0), 1)
			end = p.Now()
		})
		c.K.Spawn("resp", func(p *sim.Proc) { pp.Respond(p, w.Rank(1), 0) })
		c.K.Run()
		return end
	}
	healthy := run("")
	hung := run("hang:node=0,at=5us,for=500us")
	if hung < healthy+sim.Time(400*sim.Microsecond) {
		t.Fatalf("comm hang barely delayed the ping-pong: %v -> %v", healthy, hung)
	}
}
