package mpi

// Collective operations. The paper's study deliberately sticks to
// point-to-point ping-pongs (§2.1: "analyzing also collective
// communications would be beyond the scope of this article"), but a
// usable message-passing library needs them; they are built strictly on
// the studied point-to-point primitives, so all interference mechanisms
// apply to them transparently.

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// collTagBase separates collective traffic from application tags; each
// collective call on a communicator must use a distinct opTag.
const collTagBase = 1 << 20

// collTag builds a wire tag unique to (operation instance, stage).
func collTag(opTag, stage int) int {
	if opTag < 0 {
		panic(fmt.Sprintf("mpi: negative collective tag %d", opTag))
	}
	return collTagBase + opTag*64 + stage
}

// Bcast broadcasts `size` bytes of root's buffer to every rank along a
// binomial tree. Every rank must call Bcast from its own process with
// the same opTag and root; buf is the local (landing or source) buffer.
func (r *Rank) Bcast(p *sim.Proc, root, opTag int, buf *machine.Buffer, size int64) {
	n := r.world.Size()
	if n == 1 {
		return
	}
	// Rotate ranks so the root is virtual rank 0.
	vrank := (r.ID - root + n) % n
	// Receive from the parent (highest set bit), except at the root.
	if vrank != 0 {
		parent := vrank &^ (1 << (bitLen(vrank) - 1))
		src := (parent + root) % n
		r.Recv(p, src, collTag(opTag, 0), buf, size)
	}
	// Forward to children: vrank + 2^k for growing k while valid and
	// while vrank's low bits allow (standard binomial schedule).
	for k := bitLen(vrank); ; k++ {
		child := vrank | 1<<k
		if child == vrank || child >= n {
			break
		}
		dst := (child + root) % n
		r.Send(p, dst, collTag(opTag, 0), buf, size)
	}
}

// bitLen returns the number of bits needed to represent v (0 for 0).
func bitLen(v int) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// Reduce combines `size` bytes from every rank at the root along a
// binomial tree (the arithmetic itself is modelled as part of the
// receive processing; payload sizes dominate). Every rank calls Reduce
// with the same opTag and root.
func (r *Rank) Reduce(p *sim.Proc, root, opTag int, buf *machine.Buffer, size int64) {
	n := r.world.Size()
	if n == 1 {
		return
	}
	vrank := (r.ID - root + n) % n
	// Reduce tree: a rank's children are vrank|1<<k for every k below
	// its lowest set bit; its parent clears that lowest set bit. Receive
	// from all children, combine, then send up.
	for k := 0; vrank&(1<<k) == 0; k++ {
		child := vrank | 1<<k
		if child >= n {
			break
		}
		src := (child + root) % n
		r.Recv(p, src, collTag(opTag, 1), buf, size)
	}
	if vrank != 0 {
		parent := vrank & (vrank - 1)
		dst := (parent + root) % n
		r.Send(p, dst, collTag(opTag, 1), buf, size)
	}
}

// Allreduce is Reduce to rank 0 followed by Bcast from rank 0 — the
// simple implementation small task runtimes use for scalar reductions
// (e.g. CG's dot products).
func (r *Rank) Allreduce(p *sim.Proc, opTag int, buf *machine.Buffer, size int64) {
	r.Reduce(p, 0, opTag, buf, size)
	r.Bcast(p, 0, opTag+1, buf, size)
}

// Gather collects `size` bytes from every rank at the root (linear
// scheme: fine for the small rank counts of this simulator).
func (r *Rank) Gather(p *sim.Proc, root, opTag int, buf *machine.Buffer, size int64) {
	if r.world.Size() == 1 {
		return
	}
	if r.ID == root {
		for src := 0; src < r.world.Size(); src++ {
			if src == root {
				continue
			}
			r.Recv(p, src, collTag(opTag, 2), buf, size)
		}
		return
	}
	r.Send(p, root, collTag(opTag, 2), buf, size)
}
