package mpi

import (
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

// PingPong holds the configuration of a NetPIPE-style ping-pong between
// two ranks (§2.1 of the paper): the initiator sends `Size` bytes and
// waits for the echo; latency is half the round-trip, bandwidth is
// Size/latency. Buffers are recycled across iterations, so rendezvous
// registration is paid once (registration cache).
type PingPong struct {
	Size   int64
	Iters  int
	Warmup int
	// InitBuf/RespBuf are the (recycled) buffers at each end; their NUMA
	// placement is part of the experiment. Nil buffers allocate on each
	// rank's NIC NUMA node.
	InitBuf, RespBuf *machine.Buffer
}

// pingTagBase separates concurrent ping-pong streams from other traffic.
const pingTag = 7000

// Initiate runs the initiator side on rank r against peer, returning
// one half-round-trip latency per measured iteration. It must run in
// r's communication-thread process while Respond runs in peer's. The
// communication core is marked active (the thread busy-polls the
// library) for the duration.
func (pp *PingPong) Initiate(p *sim.Proc, r *Rank, peer int) []sim.Duration {
	buf := pp.InitBuf
	if buf == nil {
		buf = r.Node.Alloc(max64(pp.Size, 1), r.Node.Spec.NIC.NUMA)
	}
	r.Node.Freq.SetActive(r.CommCore, topology.Scalar)
	defer r.Node.Freq.SetIdle(r.CommCore)

	lats := make([]sim.Duration, 0, pp.Iters)
	for i := 0; i < pp.Warmup+pp.Iters; i++ {
		start := p.Now()
		r.Send(p, peer, pingTag, buf, pp.Size)
		r.Recv(p, peer, pingTag+1, buf, pp.Size)
		if i >= pp.Warmup {
			lats = append(lats, p.Now().Sub(start)/2)
		}
	}
	return lats
}

// Respond runs the responder side on rank r against peer.
func (pp *PingPong) Respond(p *sim.Proc, r *Rank, peer int) {
	buf := pp.RespBuf
	if buf == nil {
		buf = r.Node.Alloc(max64(pp.Size, 1), r.Node.Spec.NIC.NUMA)
	}
	r.Node.Freq.SetActive(r.CommCore, topology.Scalar)
	defer r.Node.Freq.SetIdle(r.CommCore)

	for i := 0; i < pp.Warmup+pp.Iters; i++ {
		r.Recv(p, peer, pingTag, buf, pp.Size)
		r.Send(p, peer, pingTag+1, buf, pp.Size)
	}
}

// Bandwidth converts a half-round-trip latency into the NetPIPE
// bandwidth metric for the given message size, in bytes/second.
func Bandwidth(size int64, latency sim.Duration) float64 {
	if latency <= 0 {
		return 0
	}
	return float64(size) / latency.Seconds()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
