package kernels

import (
	"math"
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

func cluster(t *testing.T) *machine.Cluster {
	t.Helper()
	return machine.NewCluster(topology.Henri(), 1, 1)
}

func TestPrimeCountDurationMatchesPaper(t *testing.T) {
	c := cluster(t)
	n := c.Nodes[0]
	var d sim.Duration
	c.K.Spawn("p", func(p *sim.Proc) {
		d = n.ExecCompute(p, 0, PrimeCountDefault())
	})
	c.K.Run()
	// §3.2: ≈183 ms per iteration at sustained turbo.
	if math.Abs(d.Seconds()-0.183) > 0.01 {
		t.Fatalf("prime iteration %v, want ≈183ms", d)
	}
}

func TestPrimeCountScaleInvariantAcrossCores(t *testing.T) {
	// §3.2 footnote: performance is constant regardless of the number of
	// computing cores (no shared resource is touched).
	c := cluster(t)
	n := c.Nodes[0]
	durs := make([]sim.Duration, 20)
	for i := 0; i < 20; i++ {
		i := i
		c.K.Spawn("p", func(p *sim.Proc) {
			durs[i] = n.ExecCompute(p, i, PrimeCountDefault())
		})
	}
	c.K.Run()
	for i, d := range durs {
		if math.Abs(d.Seconds()-durs[0].Seconds()) > 1e-9 {
			t.Fatalf("core %d iteration %v differs from core 0's %v", i, d, durs[0])
		}
	}
}

func TestAVX512WeakScalingMatchesFig3(t *testing.T) {
	run := func(cores int) sim.Duration {
		c := cluster(t)
		n := c.Nodes[0]
		durs := make([]sim.Duration, cores)
		for i := 0; i < cores; i++ {
			i := i
			c.K.Spawn("avx", func(p *sim.Proc) {
				durs[i] = n.ExecCompute(p, i, AVX512Default())
			})
		}
		c.K.Run()
		return durs[0]
	}
	four := run(4)
	twenty := run(20)
	// Fig 3: ≈135 ms at 4 cores (3.0 GHz), ≈210 ms at 20 cores (2.3 GHz
	// AVX-512 licence). Tolerances generous: the shape matters.
	if math.Abs(four.Seconds()-0.135) > 0.015 {
		t.Fatalf("4-core AVX512 iteration %v, want ≈135ms", four)
	}
	if twenty.Seconds() < four.Seconds()*1.2 {
		t.Fatalf("20-core AVX512 iteration %v not slower than 4-core %v (licence)", twenty, four)
	}
	if math.Abs(twenty.Seconds()-0.176) > 0.03 {
		t.Fatalf("20-core AVX512 iteration %v, want ≈176ms (13e9 flops at 2.3GHz×32)", twenty)
	}
}

func TestStreamCopySingleCoreHitsPerCoreCap(t *testing.T) {
	c := cluster(t)
	n := c.Nodes[0]
	// Activate cores elsewhere to raise the uncore to max first.
	var res LoopResult
	c.K.Spawn("s", func(p *sim.Proc) {
		res = LoopN(p, n, 0, StreamCopy(DefaultStreamElems, 0), 5)
	})
	c.K.Run()
	// One stream: limited by the per-core cap, 12 GB/s (uncore ramps up
	// once the core activates).
	if res.BytesPerSec < 10e9 || res.BytesPerSec > 12.5e9 {
		t.Fatalf("single-core COPY at %.2f GB/s, want ≈12", res.BytesPerSec/1e9)
	}
}

func TestStreamSaturationCurve(t *testing.T) {
	// STREAM per-core bandwidth must fall once the controller saturates
	// (Fig 4: beyond ≈4 cores on henri).
	perCore := func(cores int) float64 {
		c := cluster(t)
		n := c.Nodes[0]
		res := make([]LoopResult, cores)
		for i := 0; i < cores; i++ {
			i := i
			c.K.Spawn("s", func(p *sim.Proc) {
				res[i] = LoopN(p, n, i, StreamTriad(DefaultStreamElems, 0), 3)
			})
		}
		c.K.Run()
		return res[0].BytesPerSec
	}
	one := perCore(1)
	ten := perCore(10)
	thirty := perCore(30)
	if !(one > ten && ten > thirty) {
		t.Fatalf("per-core STREAM bandwidth not decreasing: 1:%.1f 10:%.1f 30:%.1f GB/s",
			one/1e9, ten/1e9, thirty/1e9)
	}
	// 30 streams on a ~50 GB/s controller: ≈1.4–1.8 GB/s each.
	if thirty > 2.5e9 {
		t.Fatalf("30-core per-core bandwidth %.2f GB/s, contention too weak", thirty/1e9)
	}
}

func TestTriadXIntensityLadder(t *testing.T) {
	for _, tc := range []struct {
		cursor int
		wantAI float64
	}{{1, 1.0 / 12}, {12, 1.0}, {72, 6.0}, {1200, 100.0}} {
		ai := Intensity(TriadX(1000, tc.cursor, 0))
		if math.Abs(ai-tc.wantAI) > 1e-12 {
			t.Fatalf("cursor %d: AI %v, want %v", tc.cursor, ai, tc.wantAI)
		}
	}
	if Intensity(PrimeCount(100)) != 0 {
		t.Fatal("pure-compute intensity should report 0 sentinel")
	}
}

func TestTriadXRooflineTransition(t *testing.T) {
	// Under no contention, a single TriadX core transitions from
	// memory-bound (duration flat in cursor) to CPU-bound (duration
	// linear in cursor) around AI = peak/percore-bw = 10/12 ≈ 0.83
	// flop/B... with 35 cores sharing the controller, the ridge moves to
	// ≈6 flop/B (tested at the bench level). Here: single core, the
	// kernel must get strictly slower past the single-core ridge.
	run := func(cursor int) sim.Duration {
		c := cluster(t)
		n := c.Nodes[0]
		var d sim.Duration
		c.K.Spawn("tx", func(p *sim.Proc) {
			d = n.ExecCompute(p, 0, TriadX(1<<20, cursor, 0))
		})
		c.K.Run()
		return d
	}
	low := run(1)    // AI 0.083: memory-bound
	mid := run(10)   // AI 0.83: near the single-core ridge
	high := run(100) // AI 8.3: CPU-bound, 10x the flops of mid
	if float64(mid) > float64(low)*2 {
		t.Fatalf("memory-bound region not flat: cursor1=%v cursor10=%v", low, mid)
	}
	if float64(high) < float64(mid)*5 {
		t.Fatalf("CPU-bound region not linear in cursor: cursor10=%v cursor100=%v", mid, high)
	}
}

func TestGEMMvsCGIntensity(t *testing.T) {
	gemm := GEMMTile(512, 0)
	cg := CGBlock(2048, 2048, 0)
	if ai := Intensity(gemm); math.Abs(ai-512.0/12) > 1e-9 {
		t.Fatalf("GEMM tile AI %v, want %v", ai, 512.0/12)
	}
	if ai := Intensity(cg); math.Abs(ai-0.25) > 1e-12 {
		t.Fatalf("CG block AI %v, want 0.25", ai)
	}
}

func TestGEMMLowStallCGHighStall(t *testing.T) {
	// Fig 10: with the node full of workers, CG shows ≈70% memory
	// stalls, GEMM ≈20%.
	stalls := func(spec machine.ComputeSpec) float64 {
		c := cluster(t)
		n := c.Nodes[0]
		const workers = 34
		for i := 0; i < workers; i++ {
			i := i
			c.K.Spawn("w", func(p *sim.Proc) {
				s := spec
				s.MemNUMA = i / 9 // spread data across NUMA nodes
				LoopN(p, n, i, s, 2)
			})
		}
		c.K.Run()
		return n.Counters.StallFraction()
	}
	cg := stalls(CGBlock(2048, 2048, 0))
	gemm := stalls(GEMMTile(512, 0))
	if cg < 0.55 || cg > 0.9 {
		t.Fatalf("CG stall fraction %.2f, want ≈0.7", cg)
	}
	if gemm > 0.4 {
		t.Fatalf("GEMM stall fraction %.2f, want ≈0.2", gemm)
	}
	if cg <= gemm {
		t.Fatal("CG not more memory-stalled than GEMM")
	}
}

func TestLoopUntilFinishesInFlightIteration(t *testing.T) {
	c := cluster(t)
	n := c.Nodes[0]
	var res LoopResult
	c.K.Spawn("l", func(p *sim.Proc) {
		res = LoopUntil(p, n, 0, PrimeCount(2.5e9), sim.Time(500*sim.Millisecond))
	})
	c.K.Run()
	if res.Iters < 1 {
		t.Fatal("no iterations completed")
	}
	// Each iteration is 0.25 s at 2.5GHz×4; until=0.5 s → 2 iterations.
	if res.Iters != 2 {
		t.Fatalf("iters = %d, want 2", res.Iters)
	}
	if res.PerIter.Seconds() < 0.2 {
		t.Fatalf("per-iter %v", res.PerIter)
	}
}
