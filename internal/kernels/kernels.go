// Package kernels defines the compute workloads of the paper's
// benchmarks as roofline slices (flops, bytes, vector class) executed on
// the machine model:
//
//   - PrimeCount — the naive CPU-bound prime counter of §3.2 (no memory
//     traffic at all);
//   - AVX512 — the weak-scaling AVX-512 FMA kernel of §3.3;
//   - STREAM COPY and TRIAD — the memory-bound kernels of §4 (McCalpin);
//   - TriadX — §4.5's modified TRIAD with a tunable "cursor" (repetitions
//     per element) that moves the kernel continuously from memory-bound
//     to CPU-bound;
//   - GEMM tiles and CG blocks — the §6 use-case kernels, parameterised
//     to match MKL-like arithmetic intensity.
package kernels

import (
	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

// PrimeCount returns one iteration of the naive prime-counting
// benchmark: pure integer compute, zero memory traffic ("the algorithm
// uses only few integer variables", §3.2). ops is the number of
// trial-division operations per iteration; the paper's henri runs last
// ≈183 ms regardless of the computing-core count.
func PrimeCount(ops float64) machine.ComputeSpec {
	return machine.ComputeSpec{
		Name:  "prime",
		Flops: ops,
		Class: topology.Scalar,
	}
}

// PrimeCountDefault is calibrated to ≈183 ms per iteration on an henri
// core at its 2.5 GHz sustained turbo (§3.2).
func PrimeCountDefault() machine.ComputeSpec {
	// 183 ms × 2.5 GHz × 4 ops/cycle.
	return PrimeCount(0.183 * 2.5e9 * 4)
}

// AVX512 returns one iteration of §3.3's weak-scaling AVX-512 FMA
// kernel: flops of 512-bit FMA work per core, no memory traffic.
func AVX512(flops float64) machine.ComputeSpec {
	return machine.ComputeSpec{
		Name:  "avx512",
		Flops: flops,
		Class: topology.AVX512,
	}
}

// AVX512Default is calibrated to the paper's Fig 3: ≈135 ms with 4
// computing cores (3.0 GHz) and ≈210 ms with 20 (2.3 GHz licence).
func AVX512Default() machine.ComputeSpec {
	// 135 ms × 3.0 GHz × 32 flops/cycle ≈ 13e9 flops.
	return AVX512(13e9)
}

// StreamCopy returns one iteration of STREAM COPY over `elems` float64
// elements on memory bound to NUMA node `numa`: b[i] ← a[i], 16 bytes
// moved per element, no arithmetic.
func StreamCopy(elems int64, numa int) machine.ComputeSpec {
	return machine.ComputeSpec{
		Name:    "stream-copy",
		Bytes:   float64(16 * elems),
		Class:   topology.AVX2,
		MemNUMA: numa,
	}
}

// StreamTriad returns one iteration of STREAM TRIAD over `elems`
// float64 elements on NUMA node `numa`: c[i] ← a[i] + C·b[i], 24 bytes
// and 2 flops per element (AI = 1/12 flop/B).
func StreamTriad(elems int64, numa int) machine.ComputeSpec {
	return machine.ComputeSpec{
		Name:    "stream-triad",
		Flops:   float64(2 * elems),
		Bytes:   float64(24 * elems),
		Class:   topology.AVX2,
		MemNUMA: numa,
	}
}

// DefaultStreamElems is the per-core STREAM array length: large enough
// to defeat caches, small enough for fast iterations (the paper uses
// the standard STREAM sizing rule).
const DefaultStreamElems = 5 << 20 // 5 Mi elements ≈ 40 MB/array

// TriadX returns one iteration of §4.5's tunable-intensity TRIAD: the
// inner operation is repeated `cursor` times on each element before
// moving to the next, so the slice performs 2·cursor flops per 24 bytes
// moved — arithmetic intensity AI = cursor/12 flop/B. Small cursors are
// memory-bound, large cursors CPU-bound; on henri the roofline ridge
// falls at ≈6 flop/B (§4.5), i.e. cursor ≈ 72.
//
// The paper's loop is scalar compiled code; we model it with the scalar
// flops/cycle throughput.
func TriadX(elems int64, cursor int, numa int) machine.ComputeSpec {
	if cursor < 1 {
		cursor = 1
	}
	return machine.ComputeSpec{
		Name:    "triadx",
		Flops:   float64(2 * int64(cursor) * elems),
		Bytes:   float64(24 * elems),
		Class:   topology.Scalar,
		MemNUMA: numa,
	}
}

// Intensity returns the arithmetic intensity of a slice in flop/B
// (+Inf-free: returns 0 for pure-compute slices with no traffic, which
// callers treat as "beyond the ridge").
func Intensity(s machine.ComputeSpec) float64 {
	if s.Bytes == 0 {
		return 0
	}
	return s.Flops / s.Bytes
}

// GEMMTile returns one b×b×b tile multiply-accumulate of §6's dense
// GEMM: 2b³ flops against 3b² doubles of traffic (AI = b/12 flop/B).
// MKL GEMM runs AVX-512 with near-perfect latency hiding.
func GEMMTile(b int64, numa int) machine.ComputeSpec {
	return machine.ComputeSpec{
		Name:          "gemm-tile",
		Flops:         float64(2 * b * b * b),
		Bytes:         float64(3 * 8 * b * b),
		Class:         topology.AVX512,
		MemNUMA:       numa,
		StallExposure: 1.0,
		BaseStallFrac: 0.15,
	}
}

// CGBlock returns one block of §6's dense conjugate gradient: dominated
// by the dense matrix-vector product, 2 flops per 8-byte matrix element
// (AI = 0.25 flop/B), deeply memory-bound. rows×cols is the block of
// the matrix streamed. Hardware prefetchers overlap part of the wait,
// so the PMU sees only part of it as memory stalls; the exposure and
// the intrinsic floor are calibrated to Fig 10 (≈70% stalls at full
// workers, ≈35–40% with few workers).
func CGBlock(rows, cols int64, numa int) machine.ComputeSpec {
	return machine.ComputeSpec{
		Name:          "cg-block",
		Flops:         float64(2 * rows * cols),
		Bytes:         float64(8 * rows * cols),
		Class:         topology.AVX2,
		MemNUMA:       numa,
		StallExposure: 0.7,
		BaseStallFrac: 0.1,
	}
}

// LoopResult summarises a compute loop ran side by side with (or
// without) communications.
type LoopResult struct {
	Iters int
	Total sim.Duration
	// PerIter is the mean duration of one iteration.
	PerIter sim.Duration
	// BytesPerSec is the per-core memory bandwidth achieved (the metric
	// Fig 4–6 report for STREAM), 0 for pure-compute kernels.
	BytesPerSec float64
}

// LoopUntil executes spec repeatedly on the given core until the
// simulated clock reaches `until` (it finishes the in-flight iteration,
// like a real OpenMP loop would), then reports iteration statistics.
func LoopUntil(p *sim.Proc, n *machine.Node, core int, spec machine.ComputeSpec, until sim.Time) LoopResult {
	start := p.Now()
	var res LoopResult
	for p.Now() < until {
		n.ExecCompute(p, core, spec)
		res.Iters++
	}
	res.Total = p.Now().Sub(start)
	if res.Iters > 0 {
		res.PerIter = res.Total / sim.Duration(res.Iters)
	}
	if res.Total > 0 {
		res.BytesPerSec = float64(res.Iters) * spec.Bytes / res.Total.Seconds()
	}
	return res
}

// LoopWhile executes spec repeatedly while cont() returns true,
// checking between iterations (the in-flight iteration always
// completes). Used to run computation "side by side" with a
// communication benchmark of unknown duration (§2.1 step 3).
func LoopWhile(p *sim.Proc, n *machine.Node, core int, spec machine.ComputeSpec, cont func() bool) LoopResult {
	start := p.Now()
	var res LoopResult
	for cont() {
		n.ExecCompute(p, core, spec)
		res.Iters++
	}
	res.Total = p.Now().Sub(start)
	if res.Iters > 0 {
		res.PerIter = res.Total / sim.Duration(res.Iters)
	}
	if res.Total > 0 {
		res.BytesPerSec = float64(res.Iters) * spec.Bytes / res.Total.Seconds()
	}
	return res
}

// LoopN executes spec `iters` times and reports statistics.
func LoopN(p *sim.Proc, n *machine.Node, core int, spec machine.ComputeSpec, iters int) LoopResult {
	start := p.Now()
	for i := 0; i < iters; i++ {
		n.ExecCompute(p, core, spec)
	}
	res := LoopResult{Iters: iters, Total: p.Now().Sub(start)}
	if iters > 0 {
		res.PerIter = res.Total / sim.Duration(iters)
	}
	if res.Total > 0 {
		res.BytesPerSec = float64(iters) * spec.Bytes / res.Total.Seconds()
	}
	return res
}
