package taskrt

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

// submitAndTrack submits tasks via SubmitData on a fresh single-node
// runtime and returns their completion order by name.
func submitAndTrack(t *testing.T, build func(n *machine.Node) []*Task) []string {
	t.Helper()
	c := machine.NewCluster(noNoise(), 1, 1)
	rt := New(Config{
		Node: c.Nodes[0], MainCore: 0, CommCore: 35,
		WorkerCores: []int{1, 2, 3, 4},
	})
	rt.Start()
	var order []string
	tasks := build(c.Nodes[0])
	for _, task := range tasks {
		task := task
		name := task.Spec.Name
		prev := task.OnDone
		task.OnDone = func() {
			if prev != nil {
				prev()
			}
			order = append(order, name)
		}
	}
	c.K.Spawn("main", func(p *sim.Proc) {
		rt.SubmitData(p, tasks...)
		rt.WaitAll(p)
		rt.Shutdown()
	})
	c.K.RunUntil(sim.Time(10 * sim.Second))
	if len(order) != len(tasks) {
		t.Fatalf("only %d of %d tasks completed", len(order), len(tasks))
	}
	return order
}

func namedTask(name string, flops float64) *Task {
	return NewTask(machine.ComputeSpec{Name: name, Flops: flops, Class: topology.Scalar})
}

func indexOf(order []string, name string) int {
	for i, n := range order {
		if n == name {
			return i
		}
	}
	return -1
}

func TestHandleRAWDependency(t *testing.T) {
	order := submitAndTrack(t, func(n *machine.Node) []*Task {
		h := NewHandle(n.Alloc(1<<20, 0))
		producer := namedTask("producer", 5e7).Accessing(Access{h, W})
		consumer := namedTask("consumer", 1e6).Accessing(Access{h, R})
		return []*Task{producer, consumer}
	})
	if indexOf(order, "producer") > indexOf(order, "consumer") {
		t.Fatalf("RAW violated: %v", order)
	}
}

func TestHandleWARDependency(t *testing.T) {
	order := submitAndTrack(t, func(n *machine.Node) []*Task {
		h := NewHandle(n.Alloc(1<<20, 0))
		// Two long readers, then a short writer: the writer must wait.
		r1 := namedTask("reader1", 5e7).Accessing(Access{h, R})
		r2 := namedTask("reader2", 5e7).Accessing(Access{h, R})
		w := namedTask("writer", 1e5).Accessing(Access{h, W})
		return []*Task{r1, r2, w}
	})
	if indexOf(order, "writer") != 2 {
		t.Fatalf("WAR violated: %v", order)
	}
}

func TestHandleWAWDependency(t *testing.T) {
	order := submitAndTrack(t, func(n *machine.Node) []*Task {
		h := NewHandle(n.Alloc(1<<20, 0))
		w1 := namedTask("w1", 5e7).Accessing(Access{h, W})
		w2 := namedTask("w2", 1e5).Accessing(Access{h, W})
		return []*Task{w1, w2}
	})
	if indexOf(order, "w1") > indexOf(order, "w2") {
		t.Fatalf("WAW violated: %v", order)
	}
}

func TestHandleConcurrentReaders(t *testing.T) {
	// Readers of the same handle run in parallel: with 4 workers, two
	// equal readers finish in about one task time, not two.
	c := machine.NewCluster(noNoise(), 1, 1)
	rt := New(Config{
		Node: c.Nodes[0], MainCore: 0, CommCore: 35,
		WorkerCores: []int{1, 2, 3, 4},
	})
	rt.Start()
	h := NewHandle(c.Nodes[0].Alloc(1<<20, 0))
	// 1e9 flops at 10 Gflop/s = 100 ms each.
	r1 := namedTask("r1", 1e9).Accessing(Access{h, R})
	r2 := namedTask("r2", 1e9).Accessing(Access{h, R})
	var finish sim.Time
	c.K.Spawn("main", func(p *sim.Proc) {
		rt.SubmitData(p, r1, r2)
		rt.WaitAll(p)
		finish = p.Now()
		rt.Shutdown()
	})
	c.K.RunUntil(sim.Time(10 * sim.Second))
	if finish.Sub(0).Seconds() > 0.15 {
		t.Fatalf("two readers took %v; not concurrent", finish)
	}
}

func TestHandleChainAcrossHandles(t *testing.T) {
	// A diamond built purely from data accesses:
	// init writes A; left reads A writes B; right reads A writes C;
	// join reads B and C.
	order := submitAndTrack(t, func(n *machine.Node) []*Task {
		a := NewHandle(n.Alloc(4096, 0))
		b := NewHandle(n.Alloc(4096, 1))
		cH := NewHandle(n.Alloc(4096, 2))
		init := namedTask("init", 1e6).Accessing(Access{a, W})
		left := namedTask("left", 1e7).Accessing(Access{a, R}, Access{b, W})
		right := namedTask("right", 1e7).Accessing(Access{a, R}, Access{cH, W})
		join := namedTask("join", 1e6).Accessing(Access{b, R}, Access{cH, R})
		return []*Task{init, left, right, join}
	})
	if indexOf(order, "init") != 0 || indexOf(order, "join") != 3 {
		t.Fatalf("diamond order violated: %v", order)
	}
}

func TestHandleSetsTaskDataPlacement(t *testing.T) {
	c := machine.NewCluster(noNoise(), 1, 1)
	rt := New(Config{
		Node: c.Nodes[0], MainCore: 0, CommCore: 35, WorkerCores: []int{1},
	})
	rt.Start()
	h := NewHandle(c.Nodes[0].Alloc(1<<20, 3))
	task := NewTask(machine.ComputeSpec{
		Name: "stream", Flops: 1e5, Bytes: 1e6, Class: topology.AVX2,
	}).Accessing(Access{h, R})
	c.K.Spawn("main", func(p *sim.Proc) {
		rt.SubmitData(p, task)
		rt.WaitAll(p)
		rt.Shutdown()
	})
	c.K.RunUntil(sim.Time(sim.Second))
	if task.Spec.MemNUMA != 3 {
		t.Fatalf("task data placement %d, want handle's NUMA 3", task.Spec.MemNUMA)
	}
}

func TestNilHandlePanics(t *testing.T) {
	c := machine.NewCluster(noNoise(), 1, 1)
	rt := New(Config{Node: c.Nodes[0], MainCore: 0, CommCore: 35, WorkerCores: []int{1}})
	rt.Start()
	defer rt.Shutdown()
	defer func() {
		if recover() == nil {
			t.Fatal("nil buffer accepted")
		}
	}()
	NewHandle(nil)
}
