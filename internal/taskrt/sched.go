package taskrt

// Scheduler policies. EagerFIFO is StarPU's default central list — the
// configuration the paper studies (§5). NUMALocal implements the
// paper's §8 future-work proposal: "the task scheduler could try to
// give tasks to workers in a way to minimize data movements between
// NUMA nodes" — per-NUMA ready queues with work stealing; a task whose
// data lives on NUMA node d is preferentially executed by a worker of
// that node, and idle workers poll their *local* queue, removing the
// cross-NUMA polling traffic of Fig 9.
type SchedulerPolicy int

const (
	// EagerFIFO is a single central ready list on QueueNUMA.
	EagerFIFO SchedulerPolicy = iota
	// NUMALocal keeps one ready list per NUMA node (tasks routed by
	// their data's home node) plus a central list for unpinned tasks;
	// workers pop local first, then central, then steal.
	NUMALocal
)

func (s SchedulerPolicy) String() string {
	if s == NUMALocal {
		return "numa-local"
	}
	return "eager-fifo"
}

// queueFor returns the ready-list index a task is routed to: per-NUMA
// lists are 0..NUMANodes−1, the central list is the last slot.
func (rt *Runtime) queueFor(t *Task) int {
	if rt.cfg.Scheduler == NUMALocal && t.Spec.Bytes > 0 && t.Spec.MemNUMA >= 0 {
		return t.Spec.MemNUMA
	}
	return rt.centralQueue()
}

// centralQueue is the index of the central ready list.
func (rt *Runtime) centralQueue() int { return rt.node.Spec.NUMANodes() }

// queueHomeNUMA is where a ready list's cachelines live: per-NUMA lists
// are local to their node, the central list lives on QueueNUMA.
func (rt *Runtime) queueHomeNUMA(q int) int {
	if q < rt.node.Spec.NUMANodes() {
		return q
	}
	return rt.cfg.QueueNUMA
}

// popOrder returns the ready lists a worker on `numa` inspects, in
// order: local, central, then the other NUMA lists (stealing).
func (rt *Runtime) popOrder(numa int) []int {
	if rt.cfg.Scheduler == EagerFIFO {
		return []int{rt.centralQueue()}
	}
	order := []int{numa, rt.centralQueue()}
	for n := 0; n < rt.node.Spec.NUMANodes(); n++ {
		if n != numa {
			order = append(order, n)
		}
	}
	return order
}

// tryPop scans the worker's pop order and returns a task plus the list
// it came from. With steal=false only the local and central lists are
// inspected; workers try that first and steal from remote lists only
// after an extra poll period, giving local workers priority on their
// own tasks (standard work-stealing etiquette).
func (rt *Runtime) tryPop(numa int, steal bool) (*Task, int, bool) {
	order := rt.popOrder(numa)
	if !steal && rt.cfg.Scheduler == NUMALocal {
		order = order[:2] // local + central
	}
	for _, q := range order {
		if t, ok := rt.queues[q].TryPop(); ok {
			return t, q, true
		}
	}
	return nil, 0, false
}
