package taskrt

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Execution tracing, the equivalent of StarPU's FxT traces: who ran
// what, when, on which core. Enable before Start; dump as CSV for
// timeline inspection (`plot` or any spreadsheet reads it).

// ExecEvent is one traced interval.
type ExecEvent struct {
	Core  int
	Kind  string // "task" or "comm"
	Label string
	Start sim.Time
	End   sim.Time
}

// EnableTrace starts recording execution events.
func (rt *Runtime) EnableTrace() { rt.tracing = true }

// TraceEvents returns the recorded events in completion order.
func (rt *Runtime) TraceEvents() []ExecEvent { return rt.events }

// traceEvent appends one interval when tracing is on.
func (rt *Runtime) traceEvent(core int, kind, label string, start, end sim.Time) {
	if !rt.tracing {
		return
	}
	rt.events = append(rt.events, ExecEvent{
		Core: core, Kind: kind, Label: label, Start: start, End: end,
	})
}

// WriteTraceCSV dumps the trace as CSV: core, kind, label, start_us,
// end_us, duration_us.
func (rt *Runtime) WriteTraceCSV(w io.Writer) error {
	if _, err := io.WriteString(w, "core,kind,label,start_us,end_us,duration_us\n"); err != nil {
		return err
	}
	for _, e := range rt.events {
		_, err := fmt.Fprintf(w, "%d,%s,%s,%.3f,%.3f,%.3f\n",
			e.Core, e.Kind, e.Label,
			float64(e.Start)/1e3, float64(e.End)/1e3,
			float64(e.End.Sub(e.Start))/1e3)
		if err != nil {
			return err
		}
	}
	return nil
}

// Utilization summarises the traced busy time per core over [0, until].
func (rt *Runtime) Utilization(until sim.Time) map[int]float64 {
	out := map[int]float64{}
	if until <= 0 {
		return out
	}
	for _, e := range rt.events {
		end := e.End
		if end > until {
			end = until
		}
		if end > e.Start {
			out[e.Core] += end.Sub(e.Start).Seconds()
		}
	}
	for core := range out {
		out[core] /= sim.Duration(until).Seconds()
	}
	return out
}
