// Package taskrt implements a StarPU-like task-based runtime system on
// the simulated machine (§5 of the paper):
//
//   - a main thread (reserved core) submits tasks to a central scheduler
//     queue;
//   - worker threads, one per remaining core, busy-wait ("poll") on the
//     queue with an exponential-backoff nop loop, execute ready tasks,
//     and release their successors;
//   - a communication thread (reserved core) drains a request list and
//     performs MPI transfers for distributed data (the starpu_mpi
//     layer), adding the software-path overhead the paper measures as
//     +38 µs latency on henri (§5.2);
//   - polling workers inject coherence/queue traffic on the memory
//     system, which is what degrades communication latency in Fig 9.
package taskrt

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/topology"
)

// Backoff configures the worker polling loop: the number of nop
// instructions between two polls starts at Min, doubles after every
// unsuccessful poll, and saturates at Max. StarPU's default maximum is
// 32; the paper also measures 2 (very frequent polling), 10000 (rare)
// and paused workers (§5.4).
type Backoff struct {
	Min, Max int
}

// DefaultBackoff mirrors StarPU's defaults.
var DefaultBackoff = Backoff{Min: 1, Max: 32}

// Config describes a runtime instance on one node.
type Config struct {
	Node *machine.Node
	// Rank connects the runtime to MPI; nil for single-node runtimes.
	Rank *mpi.Rank
	// MainCore and CommCore are the two reserved cores (§5.1). CommCore
	// defaults to the rank's communication core when a rank is given.
	MainCore, CommCore int
	// WorkerCores lists the cores running workers; defaults to every
	// core except MainCore and CommCore.
	WorkerCores []int
	// Backoff tunes worker polling; zero value means DefaultBackoff.
	Backoff Backoff
	// QueueNUMA is the NUMA node holding the shared task queue and its
	// lock; defaults to the main core's NUMA node (first touch by the
	// thread that initialises the runtime).
	QueueNUMA int
	// QueueNUMASet records whether QueueNUMA was set explicitly.
	QueueNUMASet bool
	// Scheduler selects the ready-list organisation; default EagerFIFO
	// (StarPU's central list, the paper's configuration). NUMALocal is
	// the §8 future-work locality scheduler.
	Scheduler SchedulerPolicy
	// CommThrottle, when > 0, pauses up to that many workers while
	// communication requests are in flight — the paper's §8 proposal to
	// "change dynamically the number of workers if there are
	// identifiable communication phases". Throttled workers poll
	// nothing and run no tasks until the communication queue drains.
	CommThrottle int
}

// Task is one schedulable codelet with dependencies.
type Task struct {
	Spec machine.ComputeSpec
	// OnDone, if non-nil, runs (in event context) when the task
	// completes.
	OnDone func()

	ndeps     int
	children  []*Task
	done      bool
	submitted bool
	doneSig   *sim.Signal
	accesses  []Access
}

// NewTask wraps a compute slice into a task.
func NewTask(spec machine.ComputeSpec) *Task {
	return &Task{Spec: spec}
}

// DependsOn declares that t cannot start before u completes. Must be
// called before either task is submitted.
func (t *Task) DependsOn(u *Task) {
	if u.done {
		return
	}
	t.ndeps++
	u.children = append(u.children, t)
}

// Done reports whether the task has completed.
func (t *Task) Done() bool { return t.done }

// Hold adds a manual dependency to the task: it will not become ready
// until a matching Release. Used to make tasks wait on events outside
// the task graph (e.g. an incoming starpu_mpi transfer). Must be called
// before the task is submitted.
func (t *Task) Hold() { t.ndeps++ }

// Release resolves one manual dependency (the counterpart of Hold);
// when the last dependency resolves on a submitted task, it becomes
// ready. Safe to call from event context.
func (rt *Runtime) Release(t *Task) {
	t.ndeps--
	if t.ndeps == 0 && t.submitted && !t.done {
		rt.push(t)
	}
}

// commReq is a starpu_mpi request processed by the communication
// thread.
type commReq struct {
	send     bool
	peer     int
	tag      int
	buf      *machine.Buffer
	size     int64
	onDone   func()
	doneSig  *sim.Signal
	complete bool
	sentinel bool
	// ft routes the request through the fault-tolerant MPI operations
	// (SendFT/RecvFT); err records their outcome (nil, ErrPeerDead, or a
	// retransmission-budget failure) for CommHandle.Wait.
	ft  bool
	err error
}

// Runtime is one node's runtime instance.
type Runtime struct {
	cfg  Config
	node *machine.Node
	k    *sim.Kernel

	queues   []*sim.Queue[*Task] // per-NUMA ready lists + central list
	readySig *sim.Signal         // wakes polling workers
	inflight int                 // submitted but not completed tasks
	idleSig  *sim.Signal         // broadcast when inflight returns to 0
	commQ    *sim.Queue[*commReq]
	paused   bool
	pauseSig *sim.Signal
	shutdown bool
	started  bool

	// commInflight counts posted-but-incomplete communication requests;
	// the CommThrottle feature parks workers while it is non-zero.
	commInflight int
	commIdleSig  *sim.Signal

	// tracing/events implement the FxT-style execution trace.
	tracing bool
	events  []ExecEvent
}

// Fractions of the per-message runtime software path
// (NodeSpec.RuntimeCyclesPerMsg) spent in each stage.
const (
	submitFrac   = 0.25 // task/request submission on the main thread
	commSendFrac = 0.30 // request processing on the comm thread (send)
	commRecvFrac = 0.30 // request processing on the comm thread (recv)
	deliverFrac  = 0.15 // completion callback and handle release
	// handleAccesses is how many times the comm thread touches the data
	// handle's metadata per request; placing data and comm thread on
	// different NUMA nodes makes each touch a remote access (Fig 8).
	handleAccesses = 24
	// submitCycles is the scheduler push/pop cost for plain compute
	// tasks (no MPI involved).
	submitCycles = 3000
)

// New builds (but does not start) a runtime.
func New(cfg Config) *Runtime {
	if cfg.Node == nil {
		panic("taskrt: Config.Node is required")
	}
	if cfg.Backoff == (Backoff{}) {
		cfg.Backoff = DefaultBackoff
	}
	if cfg.Rank != nil && cfg.CommCore == 0 {
		cfg.CommCore = cfg.Rank.CommCore
	}
	if !cfg.QueueNUMASet {
		cfg.QueueNUMA = cfg.Node.Spec.NUMAOfCore(cfg.MainCore)
	}
	if len(cfg.WorkerCores) == 0 {
		for c := 0; c < cfg.Node.Spec.Cores(); c++ {
			if c != cfg.MainCore && c != cfg.CommCore {
				cfg.WorkerCores = append(cfg.WorkerCores, c)
			}
		}
	}
	k := cfg.Node.K()
	rt := &Runtime{
		cfg:         cfg,
		node:        cfg.Node,
		k:           k,
		readySig:    sim.NewSignal(k),
		idleSig:     sim.NewSignal(k),
		commQ:       sim.NewQueue[*commReq](k),
		pauseSig:    sim.NewSignal(k),
		commIdleSig: sim.NewSignal(k),
	}
	for i := 0; i <= cfg.Node.Spec.NUMANodes(); i++ {
		rt.queues = append(rt.queues, sim.NewQueue[*Task](k))
	}
	return rt
}

// Node returns the node the runtime runs on.
func (rt *Runtime) Node() *machine.Node { return rt.node }

// Config returns the runtime's configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// Start spawns the worker and communication-thread processes.
func (rt *Runtime) Start() {
	if rt.started {
		panic("taskrt: Start called twice")
	}
	rt.started = true
	for i, core := range rt.cfg.WorkerCores {
		i, core := i, core
		rt.k.Spawn(fmt.Sprintf("worker.n%d.c%d", rt.node.ID, core), func(p *sim.Proc) {
			rt.workerLoop(p, i, core)
		})
	}
	if rt.cfg.Rank != nil {
		rt.k.Spawn(fmt.Sprintf("commthread.n%d", rt.node.ID), func(p *sim.Proc) {
			rt.commLoop(p)
		})
	}
}

// Shutdown stops workers and the communication thread. Any process may
// call it; running tasks finish first (inflight must be zero).
func (rt *Runtime) Shutdown() {
	rt.shutdown = true
	rt.readySig.Broadcast()
	rt.pauseSig.Broadcast()
	rt.commIdleSig.Broadcast()
	rt.commQ.Push(&commReq{sentinel: true}) // unblock the comm thread
}

// PauseWorkers stops worker polling entirely (starpu_pause); paused
// workers generate no queue traffic (Fig 9's "paused" series).
func (rt *Runtime) PauseWorkers() {
	rt.paused = true
	rt.readySig.Broadcast() // kick pollers into the paused state
}

// ResumeWorkers restarts polling.
func (rt *Runtime) ResumeWorkers() {
	rt.paused = false
	rt.pauseSig.Broadcast()
}

// Submit hands a task graph root to the scheduler from process p
// running the application's main thread (on MainCore). Tasks with
// unresolved dependencies are held until their predecessors finish.
func (rt *Runtime) Submit(p *sim.Proc, tasks ...*Task) {
	for _, t := range tasks {
		if t.doneSig == nil {
			t.doneSig = sim.NewSignal(rt.k)
		}
		rt.node.ExecCycles(p, rt.cfg.MainCore, submitCycles)
		// Push touches the shared queue on its home NUMA node.
		rt.node.MemAccesses(p, rt.cfg.MainCore, rt.cfg.QueueNUMA, 2)
		rt.inflight++
		t.submitted = true
		if t.ndeps == 0 {
			rt.push(t)
		}
	}
}

// push marks a task ready. Runs in any context.
func (rt *Runtime) push(t *Task) {
	rt.queues[rt.queueFor(t)].Push(t)
	rt.readySig.Broadcast()
}

// WaitAll blocks p until every submitted task has completed.
func (rt *Runtime) WaitAll(p *sim.Proc) {
	for rt.inflight > 0 {
		rt.idleSig.Wait(p)
	}
}

// WaitTask blocks p until t completes.
func (rt *Runtime) WaitTask(p *sim.Proc, t *Task) {
	if t.doneSig == nil {
		t.doneSig = sim.NewSignal(rt.k)
	}
	for !t.done {
		t.doneSig.Wait(p)
	}
}

// pollTarget is the NUMA node an idle worker's polling hammers: the
// central queue's home under EagerFIFO, the worker's own node under
// NUMALocal (its local list is checked most often).
func (rt *Runtime) pollTarget(core int) int {
	if rt.cfg.Scheduler == NUMALocal {
		return rt.node.Spec.NUMAOfCore(core)
	}
	return rt.cfg.QueueNUMA
}

// pollPeriod returns the steady-state interval between two queue polls
// of an idle worker: the saturated backoff nop loop at the core's
// current frequency plus one queue access.
func (rt *Runtime) pollPeriod(core int) sim.Duration {
	f := rt.node.Freq.CoreGHz(core)
	nops := sim.DurationOfSeconds(float64(rt.cfg.Backoff.Max) / (f * 1e9))
	access := rt.node.AccessLatency(rt.node.Spec.NUMAOfCore(core), rt.pollTarget(core))
	return nops + access
}

// pollTrafficRate converts the poll period into sustained coherence
// traffic on the polled queue's home controller: each poll moves the
// queue head's cacheline and the lock's cacheline.
func (rt *Runtime) pollTrafficRate(core int) float64 {
	period := rt.pollPeriod(core)
	if period <= 0 {
		return 0
	}
	return 2 * 64 / period.Seconds()
}

// throttled reports whether a worker (by its index in WorkerCores)
// must park because communication requests are in flight.
func (rt *Runtime) throttled(workerIdx int) bool {
	return rt.cfg.CommThrottle > workerIdx && rt.commInflight > 0
}

// commStarted/commFinished maintain the communication-phase census.
func (rt *Runtime) commStarted() { rt.commInflight++ }

func (rt *Runtime) commFinished() {
	rt.commInflight--
	if rt.commInflight == 0 {
		rt.commIdleSig.Broadcast()
	}
}

// workerLoop is the life of one worker (§5.4): poll, execute, repeat.
func (rt *Runtime) workerLoop(p *sim.Proc, workerIdx, core int) {
	node := rt.node
	workerNUMA := node.Spec.NUMAOfCore(core)
	for !rt.shutdown {
		if rt.paused {
			node.Freq.SetIdle(core)
			rt.pauseSig.Wait(p)
			continue
		}
		if rt.throttled(workerIdx) {
			// Communication phase: park until the request list drains
			// (§8 future work; disabled unless Config.CommThrottle > 0).
			node.Freq.SetIdle(core)
			rt.commIdleSig.Wait(p)
			continue
		}
		// Busy-waiting burns the core at full speed.
		node.Freq.SetActive(core, topology.Scalar)
		t, fromQ, ok := rt.tryPop(workerNUMA, true)
		if !ok {
			// Idle: install the polling traffic flow and wait for work.
			stop := node.BackgroundStream(
				fmt.Sprintf("poll.n%d.c%d", node.ID, core),
				workerNUMA, rt.pollTarget(core), rt.pollTrafficRate(core))
			rt.readySig.Wait(p)
			stop()
			if rt.shutdown || rt.paused || rt.throttled(workerIdx) {
				continue
			}
			// The worker notices the push only at its next poll:
			// half a period on average, plus the contended pop. Local and
			// central tasks first; stealing waits one more period so the
			// data-local worker wins its own tasks.
			p.Sleep(rt.pollPeriod(core) / 2)
			t, fromQ, ok = rt.tryPop(workerNUMA, false)
			if !ok {
				p.Sleep(rt.pollPeriod(core))
				t, fromQ, ok = rt.tryPop(workerNUMA, true)
			}
			if !ok {
				continue // another worker won the race
			}
		}
		// Pop: lock + head update on the ready list's home NUMA node.
		node.MemAccesses(p, core, rt.queueHomeNUMA(fromQ), 2)
		start := p.Now()
		node.ExecCompute(p, core, t.Spec)
		rt.traceEvent(core, "task", t.Spec.Name, start, p.Now())
		rt.complete(t)
	}
	node.Freq.SetIdle(core)
}

// complete marks t done, releases dependants, and fires callbacks.
func (rt *Runtime) complete(t *Task) {
	t.done = true
	rt.inflight--
	for _, child := range t.children {
		child.ndeps--
		// Children declared but not yet submitted stay parked until
		// their own Submit (which pushes ready tasks itself).
		if child.ndeps == 0 && child.submitted && !child.done {
			rt.push(child)
		}
	}
	if t.OnDone != nil {
		t.OnDone()
	}
	if t.doneSig != nil {
		t.doneSig.Broadcast()
	}
	if rt.inflight == 0 {
		rt.idleSig.Broadcast()
	}
}
