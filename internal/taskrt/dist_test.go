package taskrt

import (
	"fmt"
	"testing"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/net"
	"repro/internal/sim"
	"repro/internal/topology"
)

// distPair builds n nodes with a started runtime + DistRuntime each.
func distPair(t *testing.T, n int, workers []int) (*machine.Cluster, []*DistRuntime) {
	t.Helper()
	spec := topology.Henri()
	spec.NIC.NoiseFrac = 0
	c := machine.NewCluster(spec, n, 1)
	w := mpi.NewWorld(c, net.New(c))
	var ds []*DistRuntime
	for i := 0; i < n; i++ {
		rt := New(Config{
			Node:        c.Nodes[i],
			Rank:        w.Rank(i),
			MainCore:    0,
			CommCore:    w.Rank(i).CommCore,
			WorkerCores: workers,
		})
		rt.Start()
		ds = append(ds, NewDistRuntime(rt, n))
	}
	return c, ds
}

// runProgram executes the same insertion stream on every rank.
func runProgram(t *testing.T, c *machine.Cluster, ds []*DistRuntime,
	program func(d *DistRuntime, p *sim.Proc)) {
	t.Helper()
	for _, d := range ds {
		d := d
		c.K.Spawn(fmt.Sprintf("prog.r%d", d.Rank()), func(p *sim.Proc) {
			program(d, p)
			d.WaitAllDist(p)
			d.Runtime().Shutdown()
		})
	}
	c.K.RunUntil(sim.Time(60 * sim.Second))
	for _, d := range ds {
		if d.Runtime().inflight != 0 {
			t.Fatalf("rank %d still has %d tasks in flight", d.Rank(), d.Runtime().inflight)
		}
	}
}

func TestDistLocalTaskNoTransfer(t *testing.T) {
	c, ds := distPair(t, 2, []int{1, 2})
	runProgram(t, c, ds, func(d *DistRuntime, p *sim.Proc) {
		h := d.RegisterData(0, 1<<20, 0)
		d.Insert(p, &DistTask{
			Spec:     machine.ComputeSpec{Name: "local", Flops: 1e6, Class: topology.Scalar},
			Accesses: []DistAccess{{h, W}},
		})
	})
	// The task ran on the owner (rank 0); nothing crossed the wire.
	if sent := c.Nodes[0].Counters.BytesSent + c.Nodes[1].Counters.BytesSent; sent != 0 {
		t.Fatalf("local task moved %v bytes", sent)
	}
}

func TestDistRemoteReadTransfersOnce(t *testing.T) {
	c, ds := distPair(t, 2, []int{1, 2})
	runProgram(t, c, ds, func(d *DistRuntime, p *sim.Proc) {
		h := d.RegisterData(0, 1<<20, 0)
		// Two remote readers on rank 1: the value moves once, then the
		// replica is valid there.
		for i := 0; i < 2; i++ {
			d.Insert(p, &DistTask{
				Spec:     machine.ComputeSpec{Name: "remote-read", Flops: 1e6, Class: topology.Scalar},
				ExecRank: 1,
				Accesses: []DistAccess{{h, R}},
			})
		}
	})
	if sent := c.Nodes[0].Counters.BytesSent; sent != 1<<20 {
		t.Fatalf("rank 0 sent %v bytes, want one 1MB transfer", sent)
	}
	if got := c.Nodes[1].Counters.BytesReceived; got != 1<<20 {
		t.Fatalf("rank 1 received %v bytes", got)
	}
}

func TestDistPingPongOwnershipMigrates(t *testing.T) {
	c, ds := distPair(t, 2, []int{1, 2})
	var hs [2]*DistHandle
	runProgram(t, c, ds, func(d *DistRuntime, p *sim.Proc) {
		h := d.RegisterData(0, 512<<10, 0)
		hs[d.Rank()] = h
		// Alternate writers: the valid copy must bounce between ranks.
		for i := 0; i < 4; i++ {
			d.Insert(p, &DistTask{
				Spec:     machine.ComputeSpec{Name: "bounce", Flops: 1e6, Class: topology.Scalar},
				ExecRank: i % 2,
				Accesses: []DistAccess{{h, W}},
			})
		}
	})
	// 3 migrations (0→1, 1→0, 0→1): both coherence views agree.
	for r, h := range hs {
		if h.Owner() != 1 {
			t.Fatalf("rank %d sees valid copy on %d, want 1", r, h.Owner())
		}
	}
	total := c.Nodes[0].Counters.BytesSent + c.Nodes[1].Counters.BytesSent
	if total != 3*(512<<10) {
		t.Fatalf("moved %v bytes, want 3 transfers of 512KB", total)
	}
}

func TestDistReduction(t *testing.T) {
	// A distributed reduction: rank 1 produces a partial, rank 0 combines
	// it into the result it owns. Orders strictly: produce → transfer →
	// combine.
	c, ds := distPair(t, 2, []int{1, 2, 3})
	var combinedAt sim.Time
	runProgram(t, c, ds, func(d *DistRuntime, p *sim.Proc) {
		acc := d.RegisterData(0, 256<<10, 0)
		part := d.RegisterData(1, 256<<10, 0)
		d.Insert(p, &DistTask{
			Spec:     machine.ComputeSpec{Name: "produce", Flops: 5e7, Class: topology.Scalar},
			Accesses: []DistAccess{{part, W}},
		})
		combine := d.Insert(p, &DistTask{
			Spec:     machine.ComputeSpec{Name: "combine", Flops: 1e6, Class: topology.Scalar},
			Accesses: []DistAccess{{acc, W}, {part, R}},
		})
		if combine != nil {
			combine.OnDone = func() { combinedAt = c.K.Now() }
		}
	})
	if combinedAt == 0 {
		t.Fatal("combine never ran")
	}
	// produce takes 5e7/10e9 = 5 ms on rank 1; combine cannot have run
	// before the partial was produced and transferred.
	if combinedAt < sim.Time(5*sim.Millisecond) {
		t.Fatalf("combine at %v, before the partial could exist", combinedAt)
	}
	if got := c.Nodes[1].Counters.BytesSent; got != 256<<10 {
		t.Fatalf("rank 1 sent %v bytes, want the partial (256KB)", got)
	}
}

func TestDistThreeRanksChain(t *testing.T) {
	// h starts on rank 0, is transformed on rank 1, consumed on rank 2.
	c, ds := distPair(t, 3, []int{1, 2})
	runProgram(t, c, ds, func(d *DistRuntime, p *sim.Proc) {
		h := d.RegisterData(0, 128<<10, 0)
		d.Insert(p, &DistTask{
			Spec:     machine.ComputeSpec{Name: "init", Flops: 1e6, Class: topology.Scalar},
			Accesses: []DistAccess{{h, W}},
		})
		d.Insert(p, &DistTask{
			Spec:     machine.ComputeSpec{Name: "transform", Flops: 1e6, Class: topology.Scalar},
			ExecRank: 1,
			Accesses: []DistAccess{{h, W}},
		})
		d.Insert(p, &DistTask{
			Spec:     machine.ComputeSpec{Name: "consume", Flops: 1e6, Class: topology.Scalar},
			ExecRank: 2,
			Accesses: []DistAccess{{h, R}},
		})
	})
	// Transfers: 0→1 (for the transform's RMW), 1→2 (for the read).
	if got := c.Nodes[0].Counters.BytesSent; got != 128<<10 {
		t.Fatalf("rank 0 sent %v", got)
	}
	if got := c.Nodes[1].Counters.BytesSent; got != 128<<10 {
		t.Fatalf("rank 1 sent %v", got)
	}
	if got := c.Nodes[2].Counters.BytesReceived; got != 128<<10 {
		t.Fatalf("rank 2 received %v", got)
	}
}

func TestDistValidation(t *testing.T) {
	c, ds := distPair(t, 2, []int{1})
	defer func() {
		ds[0].Runtime().Shutdown()
		ds[1].Runtime().Shutdown()
		c.K.Run()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad owner accepted")
			}
		}()
		ds[0].RegisterData(9, 1024, 0)
	}()
}
