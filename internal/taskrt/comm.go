package taskrt

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

// PostSend enqueues a starpu_mpi send of a data handle to the peer
// rank. It runs the submission stage on the caller's core (the main
// thread), then the communication thread picks the request up, touches
// the handle metadata (NUMA-sensitive, Fig 8), and performs the MPI
// send. onDone, if non-nil, runs when the send completes locally.
func (rt *Runtime) PostSend(p *sim.Proc, peer, tag int, buf *machine.Buffer, size int64, onDone func()) *sim.Signal {
	return rt.post(p, &commReq{send: true, peer: peer, tag: tag, buf: buf, size: size, onDone: onDone})
}

// PostRecv enqueues a starpu_mpi receive of a data handle from the
// peer rank.
func (rt *Runtime) PostRecv(p *sim.Proc, peer, tag int, buf *machine.Buffer, size int64, onDone func()) *sim.Signal {
	return rt.post(p, &commReq{send: false, peer: peer, tag: tag, buf: buf, size: size, onDone: onDone})
}

// CommHandle tracks a fault-tolerant communication request posted with
// PostSendFT/PostRecvFT.
type CommHandle struct {
	req *commReq
}

// Done reports whether the request has completed (successfully or not).
func (h *CommHandle) Done() bool { return h.req.complete }

// Err returns the request's outcome; only meaningful once Done.
func (h *CommHandle) Err() error { return h.req.err }

// Wait blocks p until the request completes and returns its outcome:
// nil on success, mpi.ErrPeerDead when the peer died mid-transfer.
func (h *CommHandle) Wait(p *sim.Proc) error {
	for !h.req.complete {
		h.req.doneSig.Wait(p)
	}
	return h.req.err
}

// PostSendFT is PostSend routed through the fault-tolerant MPI send:
// instead of hanging on a dead peer, the request completes with
// mpi.ErrPeerDead (surfaced by the returned handle's Wait).
func (rt *Runtime) PostSendFT(p *sim.Proc, peer, tag int, buf *machine.Buffer, size int64) *CommHandle {
	req := &commReq{send: true, peer: peer, tag: tag, buf: buf, size: size, ft: true}
	rt.post(p, req)
	return &CommHandle{req: req}
}

// PostRecvFT is PostRecv routed through the fault-tolerant MPI receive.
func (rt *Runtime) PostRecvFT(p *sim.Proc, peer, tag int, buf *machine.Buffer, size int64) *CommHandle {
	req := &commReq{send: false, peer: peer, tag: tag, buf: buf, size: size, ft: true}
	rt.post(p, req)
	return &CommHandle{req: req}
}

func (rt *Runtime) post(p *sim.Proc, req *commReq) *sim.Signal {
	if rt.cfg.Rank == nil {
		panic("taskrt: runtime has no MPI rank")
	}
	req.doneSig = sim.NewSignal(rt.k)
	// Submission: request allocation, handle lookup, list insertion.
	rt.node.ExecCycles(p, rt.cfg.MainCore, submitFrac*rt.node.Spec.RuntimeCyclesPerMsg)
	rt.commStarted()
	rt.commQ.Push(req)
	return req.doneSig
}

// commLoop is the communication thread: it busy-drains the request
// list, pays the runtime's per-request software path, and drives the
// MPI library. The MPI operation itself runs asynchronously (the
// library's internal progression), so posting a receive never blocks
// the processing of a queued send — without this, two ranks exchanging
// rendezvous messages symmetrically would deadlock.
func (rt *Runtime) commLoop(p *sim.Proc) {
	node := rt.node
	core := rt.cfg.CommCore
	rank := rt.cfg.Rank
	node.Freq.SetActive(core, topology.Scalar)
	defer node.Freq.SetIdle(core)
	for {
		req := rt.commQ.Pop(p)
		if rt.shutdown || req.sentinel {
			return
		}

		commNUMA := node.Spec.NUMAOfCore(core)
		dataNUMA := commNUMA
		if req.buf != nil {
			dataNUMA = req.buf.NUMA
		}
		// Request processing runs serially on the communication core.
		if req.send {
			node.ExecCycles(p, core, commSendFrac*node.Spec.RuntimeCyclesPerMsg)
			node.MemAccesses(p, core, dataNUMA, handleAccesses)
		} else {
			node.ExecCycles(p, core, commRecvFrac*node.Spec.RuntimeCyclesPerMsg)
		}
		// The transfer and its completion callback progress concurrently
		// with the next requests.
		rt.k.Spawn(fmt.Sprintf("mpireq.n%d", node.ID), func(hp *sim.Proc) {
			start := hp.Now()
			label := "recv"
			if req.send {
				label = "send"
			}
			switch {
			case req.ft && req.send:
				req.err = rank.SendFT(hp, req.peer, req.tag, req.buf, req.size)
			case req.ft:
				req.err = rank.RecvFT(hp, req.peer, req.tag, req.buf, req.size)
				if req.err == nil {
					node.MemAccesses(hp, core, dataNUMA, handleAccesses)
				}
			case req.send:
				rank.Send(hp, req.peer, req.tag, req.buf, req.size)
			default:
				rank.Recv(hp, req.peer, req.tag, req.buf, req.size)
				node.MemAccesses(hp, core, dataNUMA, handleAccesses)
			}
			node.ExecCycles(hp, core, deliverFrac*node.Spec.RuntimeCyclesPerMsg)
			rt.traceEvent(core, "comm", label, start, hp.Now())
			req.complete = true
			if req.onDone != nil {
				req.onDone()
			}
			rt.commFinished()
			req.doneSig.Broadcast()
		})
	}
}

// PingPong runs the §5.2/Fig 8 benchmark: a ping-pong written against
// the runtime API instead of plain MPI, so every message crosses the
// full software path (submission → request list → communication thread
// → MPI). Buffers are placed by the caller; Size bytes per message.
type PingPong struct {
	Size   int64
	Iters  int
	Warmup int
	// Buf is the (recycled) data handle at this end; nil allocates on
	// the NIC NUMA node.
	Buf *machine.Buffer
}

// Initiate runs the initiator side on rt against peer from the main
// thread's process, returning half-round-trip latencies.
func (pp *PingPong) Initiate(p *sim.Proc, rt *Runtime, peer int) []sim.Duration {
	buf := pp.Buf
	if buf == nil {
		buf = rt.node.Alloc(max64(pp.Size, 1), rt.node.Spec.NIC.NUMA)
	}
	lats := make([]sim.Duration, 0, pp.Iters)
	for i := 0; i < pp.Warmup+pp.Iters; i++ {
		start := p.Now()
		rt.PostSend(p, peer, starpuTag, buf, pp.Size, nil)
		var rdone bool
		rreq := rt.PostRecv(p, peer, starpuTag+1, buf, pp.Size, func() { rdone = true })
		for !rdone {
			rreq.Wait(p)
		}
		if i >= pp.Warmup {
			lats = append(lats, p.Now().Sub(start)/2)
		}
	}
	return lats
}

// Respond runs the responder side on rt against peer.
func (pp *PingPong) Respond(p *sim.Proc, rt *Runtime, peer int) {
	buf := pp.Buf
	if buf == nil {
		buf = rt.node.Alloc(max64(pp.Size, 1), rt.node.Spec.NIC.NUMA)
	}
	for i := 0; i < pp.Warmup+pp.Iters; i++ {
		var rdone bool
		rreq := rt.PostRecv(p, peer, starpuTag, buf, pp.Size, func() { rdone = true })
		for !rdone {
			rreq.Wait(p)
		}
		var sdone bool
		sreq := rt.PostSend(p, peer, starpuTag+1, buf, pp.Size, func() { sdone = true })
		for !sdone {
			sreq.Wait(p)
		}
	}
}

const starpuTag = 9000

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// String implements fmt.Stringer for diagnostics.
func (rt *Runtime) String() string {
	return fmt.Sprintf("taskrt{node=%d workers=%d backoff=%d..%d queueNUMA=%d}",
		rt.node.ID, len(rt.cfg.WorkerCores), rt.cfg.Backoff.Min, rt.cfg.Backoff.Max, rt.cfg.QueueNUMA)
}
