package taskrt

import (
	"sort"
	"testing"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/net"
	"repro/internal/sim"
	"repro/internal/topology"
)

func noNoise() *topology.NodeSpec {
	spec := topology.Henri()
	spec.NIC.NoiseFrac = 0
	return spec
}

// singleNode builds one node + runtime with a limited worker set for
// fast tests.
func singleNode(t *testing.T, workers []int) (*machine.Cluster, *Runtime) {
	t.Helper()
	c := machine.NewCluster(noNoise(), 1, 1)
	rt := New(Config{
		Node:        c.Nodes[0],
		MainCore:    0,
		CommCore:    35,
		WorkerCores: workers,
	})
	rt.Start()
	return c, rt
}

func TestSingleTaskExecutes(t *testing.T) {
	c, rt := singleNode(t, []int{1})
	ran := false
	task := NewTask(machine.ComputeSpec{Flops: 1e6, Class: topology.Scalar})
	task.OnDone = func() { ran = true }
	c.K.Spawn("main", func(p *sim.Proc) {
		rt.Submit(p, task)
		rt.WaitAll(p)
		rt.Shutdown()
	})
	c.K.RunUntil(sim.Time(sim.Second))
	if !ran || !task.Done() {
		t.Fatal("task did not execute")
	}
}

func TestDependenciesRespectOrder(t *testing.T) {
	c, rt := singleNode(t, []int{1, 2, 3})
	var order []string
	mk := func(name string) *Task {
		task := NewTask(machine.ComputeSpec{Flops: 1e6, Class: topology.Scalar})
		task.OnDone = func() { order = append(order, name) }
		return task
	}
	a, b, d := mk("a"), mk("b"), mk("d")
	b.DependsOn(a)
	d.DependsOn(b)
	c.K.Spawn("main", func(p *sim.Proc) {
		rt.Submit(p, d, b, a) // submit in reverse
		rt.WaitAll(p)
		rt.Shutdown()
	})
	c.K.RunUntil(sim.Time(sim.Second))
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "d" {
		t.Fatalf("execution order %v", order)
	}
}

func TestDiamondDependency(t *testing.T) {
	c, rt := singleNode(t, []int{1, 2})
	done := map[string]sim.Time{}
	mk := func(name string) *Task {
		task := NewTask(machine.ComputeSpec{Flops: 5e6, Class: topology.Scalar})
		task.OnDone = func() { done[name] = c.K.Now() }
		return task
	}
	root, left, right, join := mk("root"), mk("left"), mk("right"), mk("join")
	left.DependsOn(root)
	right.DependsOn(root)
	join.DependsOn(left)
	join.DependsOn(right)
	c.K.Spawn("main", func(p *sim.Proc) {
		rt.Submit(p, join, left, right, root)
		rt.WaitAll(p)
		rt.Shutdown()
	})
	c.K.RunUntil(sim.Time(sim.Second))
	if done["join"] <= done["left"] || done["join"] <= done["right"] {
		t.Fatalf("join ran before its parents: %v", done)
	}
	if done["left"] <= done["root"] || done["right"] <= done["root"] {
		t.Fatalf("branches ran before root: %v", done)
	}
}

func TestTasksRunInParallelAcrossWorkers(t *testing.T) {
	c, rt := singleNode(t, []int{1, 2, 3, 4})
	var finish sim.Time
	var tasks []*Task
	for i := 0; i < 4; i++ {
		tasks = append(tasks, NewTask(machine.ComputeSpec{Flops: 1e9, Class: topology.Scalar}))
	}
	c.K.Spawn("main", func(p *sim.Proc) {
		rt.Submit(p, tasks...)
		rt.WaitAll(p)
		finish = p.Now()
		rt.Shutdown()
	})
	c.K.RunUntil(sim.Time(sim.Second))
	// 4 × 1e9 flops at 10 Gflop/s each: serial would be 0.4 s; parallel
	// on 4 workers ≈ 0.1 s (plus wake latencies).
	if finish.Sub(0).Seconds() > 0.2 {
		t.Fatalf("4 tasks on 4 workers took %v; not parallel", finish)
	}
}

func TestPauseStopsExecutionResumeRestarts(t *testing.T) {
	c, rt := singleNode(t, []int{1})
	rt.PauseWorkers()
	task := NewTask(machine.ComputeSpec{Flops: 1e6, Class: topology.Scalar})
	var doneAt sim.Time
	task.OnDone = func() { doneAt = c.K.Now() }
	c.K.Spawn("main", func(p *sim.Proc) {
		rt.Submit(p, task)
		p.Sleep(sim.Duration(10 * sim.Millisecond))
		if task.Done() {
			t.Error("task ran while workers paused")
		}
		rt.ResumeWorkers()
		rt.WaitAll(p)
		rt.Shutdown()
	})
	c.K.RunUntil(sim.Time(sim.Second))
	if doneAt < sim.Time(10*sim.Millisecond) {
		t.Fatalf("task completed at %v, before resume", doneAt)
	}
}

func TestPollingTrafficScalesWithBackoff(t *testing.T) {
	// An idle worker with a small backoff hammers the queue cacheline
	// harder than one with a huge backoff.
	rate := func(backoff int) float64 {
		c := machine.NewCluster(noNoise(), 1, 1)
		rt := New(Config{
			Node: c.Nodes[0], MainCore: 0, CommCore: 35,
			WorkerCores: []int{1},
			Backoff:     Backoff{Min: 1, Max: backoff},
		})
		c.Nodes[0].Freq.SetActive(1, topology.Scalar)
		defer c.Nodes[0].Freq.SetIdle(1)
		return rt.pollTrafficRate(1)
	}
	fast := rate(2)
	def := rate(32)
	slow := rate(10000)
	if !(fast > def && def > slow) {
		t.Fatalf("poll traffic not monotone in backoff: %v %v %v", fast, def, slow)
	}
	if slow > 100e6 {
		t.Fatalf("backoff-10000 traffic %v B/s; should be negligible", slow)
	}
	if fast < 500e6 {
		t.Fatalf("backoff-2 traffic %v B/s; should be heavy", fast)
	}
}

// starpuPair builds a 2-node cluster with a runtime + MPI rank per node.
func starpuPair(t *testing.T, spec *topology.NodeSpec, backoff Backoff, workers []int) (*machine.Cluster, *mpi.World, [2]*Runtime) {
	t.Helper()
	c := machine.NewCluster(spec, 2, 1)
	w := mpi.NewWorld(c, net.New(c))
	var rts [2]*Runtime
	for i := 0; i < 2; i++ {
		rts[i] = New(Config{
			Node:        c.Nodes[i],
			Rank:        w.Rank(i),
			MainCore:    0,
			CommCore:    w.Rank(i).CommCore,
			WorkerCores: workers,
			Backoff:     backoff,
		})
		rts[i].Start()
	}
	return c, w, rts
}

func runtimeLatency(t *testing.T, spec *topology.NodeSpec, backoff Backoff, workers []int, pause bool) sim.Duration {
	t.Helper()
	c, _, rts := starpuPair(t, spec, backoff, workers)
	if pause {
		rts[0].PauseWorkers()
		rts[1].PauseWorkers()
	}
	pp := &PingPong{Size: 4, Iters: 10, Warmup: 3}
	var lats []sim.Duration
	c.K.Spawn("init", func(p *sim.Proc) {
		lats = pp.Initiate(p, rts[0], 1)
		rts[0].Shutdown()
		rts[1].Shutdown()
	})
	c.K.Spawn("resp", func(p *sim.Proc) { pp.Respond(p, rts[1], 0) })
	c.K.RunUntil(sim.Time(10 * sim.Second))
	if len(lats) != 10 {
		t.Fatalf("%d latencies", len(lats))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[len(lats)/2]
}

func TestRuntimeOverheadMatchesSec52(t *testing.T) {
	// §5.2: StarPU adds ≈+38 µs to the ping-pong latency on henri.
	// Measure with paused workers to isolate the software-path overhead.
	lat := runtimeLatency(t, noNoise(), DefaultBackoff, []int{1, 2}, true)
	if lat.Micros() < 25 || lat.Micros() > 55 {
		t.Fatalf("StarPU ping-pong latency %v, want ≈40µs (raw ≈1.7 + 38)", lat)
	}
}

func TestPollingWorkersDegradeLatency(t *testing.T) {
	// Fig 9: polling workers raise communication latency; rare polling
	// (backoff 10000) is equivalent to paused workers.
	allWorkers := func() []int {
		var ws []int
		for i := 1; i < 35; i++ {
			ws = append(ws, i)
		}
		return ws
	}()
	paused := runtimeLatency(t, noNoise(), DefaultBackoff, allWorkers, true)
	def := runtimeLatency(t, noNoise(), DefaultBackoff, allWorkers, false)
	rare := runtimeLatency(t, noNoise(), Backoff{1, 10000}, allWorkers, false)
	frequent := runtimeLatency(t, noNoise(), Backoff{1, 2}, allWorkers, false)
	if def <= paused {
		t.Fatalf("default polling (%v) not slower than paused (%v)", def, paused)
	}
	if frequent < def {
		t.Fatalf("frequent polling (%v) faster than default (%v)", frequent, def)
	}
	// Rare polling ≈ paused (within 15%).
	if float64(rare) > float64(paused)*1.15 {
		t.Fatalf("rare polling (%v) not close to paused (%v)", rare, paused)
	}
}

func TestFig8PlacementShape(t *testing.T) {
	// Fig 8: what matters most for StarPU latency is that the data and
	// the communication thread are on the same NUMA node.
	measure := func(dataNUMA, commNUMA int) sim.Duration {
		spec := noNoise()
		c := machine.NewCluster(spec, 2, 1)
		w := mpi.NewWorld(c, net.New(c))
		var rts [2]*Runtime
		var pps [2]*PingPong
		for i := 0; i < 2; i++ {
			w.Rank(i).SetCommCore(spec.LastCoreOfNUMA(commNUMA))
			rts[i] = New(Config{
				Node: c.Nodes[i], Rank: w.Rank(i),
				MainCore: 0, CommCore: w.Rank(i).CommCore,
				WorkerCores: []int{1, 2},
			})
			rts[i].Start()
			rts[i].PauseWorkers()
			pps[i] = &PingPong{
				Size: 4, Iters: 10, Warmup: 3,
				Buf: c.Nodes[i].Alloc(64, dataNUMA),
			}
		}
		var lats []sim.Duration
		c.K.Spawn("init", func(p *sim.Proc) {
			lats = pps[0].Initiate(p, rts[0], 1)
			rts[0].Shutdown()
			rts[1].Shutdown()
		})
		c.K.Spawn("resp", func(p *sim.Proc) { pps[1].Respond(p, rts[1], 0) })
		c.K.RunUntil(sim.Time(10 * sim.Second))
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[len(lats)/2]
	}
	sameNUMA := measure(0, 0) // data close, thread close
	split := measure(0, 3)    // data close to NIC, thread far
	sameFar := measure(3, 3)  // both far from the NIC, but together
	if split <= sameNUMA {
		t.Fatalf("split placement (%v) not slower than co-located (%v)", split, sameNUMA)
	}
	// Co-location matters more than being near the NIC: both-far beats
	// split.
	if sameFar >= split {
		t.Fatalf("co-located-far (%v) not faster than split (%v)", sameFar, split)
	}
}

func TestShutdownLeavesNoLiveProcs(t *testing.T) {
	c, rt := singleNode(t, []int{1, 2})
	c.K.Spawn("main", func(p *sim.Proc) {
		task := NewTask(machine.ComputeSpec{Flops: 1e6, Class: topology.Scalar})
		rt.Submit(p, task)
		rt.WaitAll(p)
		rt.Shutdown()
	})
	c.K.RunUntil(sim.Time(sim.Second))
	c.K.Run()
	if c.K.LiveProcs() != 0 {
		t.Fatalf("%d live procs after shutdown", c.K.LiveProcs())
	}
}

func TestDoubleStartPanics(t *testing.T) {
	c, rt := singleNode(t, []int{1})
	_ = c
	defer func() {
		if recover() == nil {
			t.Fatal("double Start accepted")
		}
		rt.Shutdown()
	}()
	rt.Start()
}
