package taskrt

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// App is an iterative distributed application in the style of §6's use
// cases: every iteration, each rank submits a batch of tasks to its
// runtime and exchanges boundary data with its peer, then waits for the
// batch to drain. The problem shape (tasks and communication volume per
// iteration) is fixed regardless of the worker count, as in the paper.
type App struct {
	// Name labels the spawned processes.
	Name string
	// Slice builds task i's compute slice (i in [0, TasksPerIter)).
	Slice func(i int) machine.ComputeSpec
	// TasksPerIter and Iterations define the task workload.
	TasksPerIter, Iterations int
	// MsgSize and MsgsPerIter define the per-iteration symmetric
	// exchange with the peer rank.
	MsgSize     int64
	MsgsPerIter int
	// HandleNUMA places the exchanged data handles (first-touch by
	// workers in StarPU, typically far from the NIC); -1 means the last
	// NUMA node.
	HandleNUMA int
}

// AppStats reports one rank's execution.
type AppStats struct {
	// Elapsed is the total execution time; IterSeconds the mean
	// iteration time.
	Elapsed     sim.Duration
	IterSeconds float64
	// SendBandwidth is the §6 sending-bandwidth metric (bytes/s).
	SendBandwidth float64
	// StallFraction is the node-wide memory-stall fraction.
	StallFraction float64
}

// Run executes the app on both runtimes of a two-node setup, blocking
// until both sides finish all iterations, and returns rank 0's stats.
// The runtimes must already be started; Run shuts them down.
func (a *App) Run(rts [2]*Runtime) AppStats {
	if a.TasksPerIter <= 0 || a.Iterations <= 0 {
		panic("taskrt: App needs tasks and iterations")
	}
	k := rts[0].k
	var done [2]bool
	var start, end sim.Time
	start = k.Now()
	for side := 0; side < 2; side++ {
		side := side
		rt := rts[side]
		peer := 1 - side
		k.Spawn(fmt.Sprintf("app.%s.n%d", a.Name, side), func(p *sim.Proc) {
			handleNUMA := a.HandleNUMA
			if handleNUMA < 0 {
				handleNUMA = rt.node.Spec.NUMANodes() - 1
			}
			var sendBuf, recvBuf *machine.Buffer
			if a.MsgsPerIter > 0 {
				sendBuf = rt.node.Alloc(a.MsgSize, handleNUMA)
				recvBuf = rt.node.Alloc(a.MsgSize, handleNUMA)
			}
			for it := 0; it < a.Iterations; it++ {
				var tasks []*Task
				for i := 0; i < a.TasksPerIter; i++ {
					tasks = append(tasks, NewTask(a.Slice(i)))
				}
				rt.Submit(p, tasks...)
				for m := 0; m < a.MsgsPerIter; m++ {
					tag := it*1000 + m
					var rdone bool
					rreq := rt.PostRecv(p, peer, tag, recvBuf, a.MsgSize, func() { rdone = true })
					var sdone bool
					sreq := rt.PostSend(p, peer, tag, sendBuf, a.MsgSize, func() { sdone = true })
					for !sdone {
						sreq.Wait(p)
					}
					for !rdone {
						rreq.Wait(p)
					}
				}
				rt.WaitAll(p)
			}
			done[side] = true
			if done[0] && done[1] {
				end = p.Now()
				rts[0].Shutdown()
				rts[1].Shutdown()
			}
		})
	}
	k.RunUntil(k.Now().Add(sim.Duration(3600 * sim.Second)))
	if !done[0] || !done[1] {
		panic(fmt.Sprintf("taskrt: app %q did not finish within the horizon", a.Name))
	}
	node := rts[0].node
	elapsed := end.Sub(start)
	return AppStats{
		Elapsed:       elapsed,
		IterSeconds:   elapsed.Seconds() / float64(a.Iterations),
		SendBandwidth: node.Counters.SendBandwidth(),
		StallFraction: node.Counters.StallFraction(),
	}
}
