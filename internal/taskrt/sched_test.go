package taskrt

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestSchedulerPolicyStrings(t *testing.T) {
	if EagerFIFO.String() != "eager-fifo" || NUMALocal.String() != "numa-local" {
		t.Fatal("policy names")
	}
}

func TestQueueRouting(t *testing.T) {
	c := machine.NewCluster(noNoise(), 1, 1)
	rt := New(Config{
		Node: c.Nodes[0], MainCore: 0, CommCore: 35,
		WorkerCores: []int{1}, Scheduler: NUMALocal,
	})
	memTask := NewTask(machine.ComputeSpec{Bytes: 100, MemNUMA: 2, Class: topology.AVX2})
	if got := rt.queueFor(memTask); got != 2 {
		t.Fatalf("memory task routed to %d, want NUMA list 2", got)
	}
	cpuTask := NewTask(machine.ComputeSpec{Flops: 100, Class: topology.Scalar})
	if got := rt.queueFor(cpuTask); got != rt.centralQueue() {
		t.Fatalf("CPU task routed to %d, want central %d", got, rt.centralQueue())
	}
	localTask := NewTask(machine.ComputeSpec{Bytes: 100, MemNUMA: -1, Class: topology.AVX2})
	if got := rt.queueFor(localTask); got != rt.centralQueue() {
		t.Fatalf("worker-local task routed to %d, want central", got)
	}
}

func TestQueueRoutingFIFOAlwaysCentral(t *testing.T) {
	c := machine.NewCluster(noNoise(), 1, 1)
	rt := New(Config{Node: c.Nodes[0], MainCore: 0, CommCore: 35, WorkerCores: []int{1}})
	memTask := NewTask(machine.ComputeSpec{Bytes: 100, MemNUMA: 2, Class: topology.AVX2})
	if got := rt.queueFor(memTask); got != rt.centralQueue() {
		t.Fatalf("FIFO routed to %d, want central", got)
	}
}

func TestPopOrderPrefersLocalThenCentral(t *testing.T) {
	c := machine.NewCluster(noNoise(), 1, 1)
	rt := New(Config{
		Node: c.Nodes[0], MainCore: 0, CommCore: 35,
		WorkerCores: []int{1}, Scheduler: NUMALocal,
	})
	order := rt.popOrder(2)
	if order[0] != 2 || order[1] != rt.centralQueue() {
		t.Fatalf("pop order %v", order)
	}
	if len(order) != 5 { // local + central + 3 steal targets
		t.Fatalf("pop order %v incomplete", order)
	}
}

func TestNUMALocalExecutesOnDataNode(t *testing.T) {
	// Workers on NUMA 0 (core 1) and NUMA 2 (core 20); a task with data
	// on NUMA 2 must be run by core 20.
	c := machine.NewCluster(noNoise(), 1, 1)
	rt := New(Config{
		Node: c.Nodes[0], MainCore: 0, CommCore: 35,
		WorkerCores: []int{1, 20}, Scheduler: NUMALocal,
	})
	rt.Start()
	task := NewTask(machine.ComputeSpec{
		Flops: 1e6, Bytes: 1e6, MemNUMA: 2, Class: topology.AVX2,
	})
	c.K.Spawn("main", func(p *sim.Proc) {
		rt.Submit(p, task)
		rt.WaitAll(p)
		rt.Shutdown()
	})
	c.K.RunUntil(sim.Time(sim.Second))
	if !task.Done() {
		t.Fatal("task did not run")
	}
	// Core 20 (NUMA 2) must have executed it: its counters show the
	// memory traffic.
	if got := c.Nodes[0].Counters.Core(20).MemBytes; got != 1e6 {
		t.Fatalf("core 20 moved %v bytes, want 1e6 (locality violated)", got)
	}
	if got := c.Nodes[0].Counters.Core(1).MemBytes; got != 0 {
		t.Fatalf("core 1 moved %v bytes, want 0", got)
	}
}

func TestNUMALocalStealsWhenNoLocalWorker(t *testing.T) {
	// Only a NUMA-0 worker exists; a NUMA-3 task must still run
	// (stolen from the remote list).
	c := machine.NewCluster(noNoise(), 1, 1)
	rt := New(Config{
		Node: c.Nodes[0], MainCore: 0, CommCore: 35,
		WorkerCores: []int{1}, Scheduler: NUMALocal,
	})
	rt.Start()
	task := NewTask(machine.ComputeSpec{
		Flops: 1e6, Bytes: 1e6, MemNUMA: 3, Class: topology.AVX2,
	})
	c.K.Spawn("main", func(p *sim.Proc) {
		rt.Submit(p, task)
		rt.WaitAll(p)
		rt.Shutdown()
	})
	c.K.RunUntil(sim.Time(sim.Second))
	if !task.Done() {
		t.Fatal("remote task never stolen")
	}
}

func TestCommThrottleParksWorkersDuringComm(t *testing.T) {
	c, _, rts := starpuPair(t, noNoise(), DefaultBackoff, []int{1, 2})
	for i := 0; i < 2; i++ {
		cfg := rts[i].cfg
		cfg.CommThrottle = 2
		rts[i].cfg = cfg
	}
	// Post a large transfer; while it is in flight, submit a task: the
	// throttled workers must not run it until the transfer completes.
	var taskAt, commAt sim.Time
	task := NewTask(machine.ComputeSpec{Flops: 1e6, Class: topology.Scalar})
	task.OnDone = func() { taskAt = c.K.Now() }
	c.K.Spawn("main0", func(p *sim.Proc) {
		buf := rts[0].Node().Alloc(16<<20, 0)
		var done bool
		req := rts[0].PostSend(p, 1, 5, buf, 16<<20, func() {
			done = true
			commAt = p.Now()
		})
		rts[0].Submit(p, task)
		for !done {
			req.Wait(p)
		}
		rts[0].WaitAll(p)
		rts[0].Shutdown()
		rts[1].Shutdown()
	})
	c.K.Spawn("main1", func(p *sim.Proc) {
		buf := rts[1].Node().Alloc(16<<20, 0)
		var done bool
		req := rts[1].PostRecv(p, 0, 5, buf, 16<<20, func() { done = true })
		for !done {
			req.Wait(p)
		}
	})
	c.K.RunUntil(sim.Time(10 * sim.Second))
	if taskAt == 0 || commAt == 0 {
		t.Fatalf("incomplete: task=%v comm=%v", taskAt, commAt)
	}
	if taskAt < commAt {
		t.Fatalf("throttled worker ran the task at %v before comm finished at %v", taskAt, commAt)
	}
}

func TestCommThrottleZeroDoesNotPark(t *testing.T) {
	c, _, rts := starpuPair(t, noNoise(), DefaultBackoff, []int{1})
	var taskAt, commAt sim.Time
	task := NewTask(machine.ComputeSpec{Flops: 1e6, Class: topology.Scalar})
	task.OnDone = func() { taskAt = c.K.Now() }
	c.K.Spawn("main0", func(p *sim.Proc) {
		buf := rts[0].Node().Alloc(16<<20, 0)
		var done bool
		req := rts[0].PostSend(p, 1, 5, buf, 16<<20, func() {
			done = true
			commAt = p.Now()
		})
		rts[0].Submit(p, task)
		for !done {
			req.Wait(p)
		}
		rts[0].WaitAll(p)
		rts[0].Shutdown()
		rts[1].Shutdown()
	})
	c.K.Spawn("main1", func(p *sim.Proc) {
		buf := rts[1].Node().Alloc(16<<20, 0)
		var done bool
		req := rts[1].PostRecv(p, 0, 5, buf, 16<<20, func() { done = true })
		for !done {
			req.Wait(p)
		}
	})
	c.K.RunUntil(sim.Time(10 * sim.Second))
	if taskAt == 0 || commAt == 0 {
		t.Fatal("incomplete")
	}
	if taskAt >= commAt {
		t.Fatalf("unthrottled worker waited for comm: task=%v comm=%v", taskAt, commAt)
	}
}
