package taskrt

import (
	"math"
	"strings"
	"testing"

	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/sim"
)

func appPair(t *testing.T, workers []int) (*machine.Cluster, [2]*Runtime) {
	t.Helper()
	c, _, rts := starpuPair(t, noNoise(), DefaultBackoff, workers)
	return c, rts
}

func TestAppRunsAllIterations(t *testing.T) {
	c, rts := appPair(t, []int{1, 2, 3})
	app := &App{
		Name:         "t",
		Slice:        func(i int) machine.ComputeSpec { return kernels.PrimeCount(1e7) },
		TasksPerIter: 6,
		Iterations:   3,
		MsgSize:      4096,
		MsgsPerIter:  2,
		HandleNUMA:   -1,
	}
	stats := app.Run(rts)
	if stats.Elapsed <= 0 || stats.IterSeconds <= 0 {
		t.Fatalf("stats %+v", stats)
	}
	// 3 iterations × 2 messages × 4096 bytes were sent by rank 0.
	if got := c.Nodes[0].Counters.BytesSent; got != 3*2*4096 {
		t.Fatalf("rank 0 sent %v bytes, want %v", got, 3*2*4096)
	}
	c.K.Run()
	if c.K.LiveProcs() != 0 {
		t.Fatalf("%d procs leaked after app", c.K.LiveProcs())
	}
}

func TestAppNoCommunication(t *testing.T) {
	_, rts := appPair(t, []int{1, 2})
	app := &App{
		Name:         "nocomm",
		Slice:        func(i int) machine.ComputeSpec { return kernels.PrimeCount(1e7) },
		TasksPerIter: 4,
		Iterations:   2,
	}
	stats := app.Run(rts)
	if stats.SendBandwidth != 0 {
		t.Fatalf("no-comm app reported send bandwidth %v", stats.SendBandwidth)
	}
	if stats.IterSeconds <= 0 {
		t.Fatal("no timing")
	}
}

func TestAppValidation(t *testing.T) {
	_, rts := appPair(t, []int{1})
	defer func() {
		if recover() == nil {
			t.Fatal("empty app accepted")
		}
		rts[0].Shutdown()
		rts[1].Shutdown()
	}()
	(&App{Name: "bad"}).Run(rts)
}

func TestAppDeterministicAcrossRuns(t *testing.T) {
	run := func() AppStats {
		_, rts := appPair(t, []int{1, 2, 3, 4})
		app := &App{
			Name: "det",
			Slice: func(i int) machine.ComputeSpec {
				return kernels.CGBlock(256, 256, i%4)
			},
			TasksPerIter: 12,
			Iterations:   2,
			MsgSize:      64 << 10,
			MsgsPerIter:  2,
			HandleNUMA:   -1,
		}
		return app.Run(rts)
	}
	a, b := run(), run()
	if a.Elapsed != b.Elapsed || math.Abs(a.SendBandwidth-b.SendBandwidth) > 1e-9 {
		t.Fatalf("nondeterministic app: %+v vs %+v", a, b)
	}
}

func TestAppMoreWorkersFasterWhenCPUBound(t *testing.T) {
	measure := func(workers []int) sim.Duration {
		_, rts := appPair(t, workers)
		app := &App{
			Name:         "scale",
			Slice:        func(i int) machine.ComputeSpec { return kernels.PrimeCount(5e7) },
			TasksPerIter: 8,
			Iterations:   1,
		}
		return app.Run(rts).Elapsed
	}
	two := measure([]int{1, 2})
	eight := measure([]int{1, 2, 3, 4, 5, 6, 7, 8})
	if eight >= two {
		t.Fatalf("8 workers (%v) not faster than 2 (%v) on CPU-bound tasks", eight, two)
	}
}

func TestExecutionTrace(t *testing.T) {
	c, rts := appPair(t, []int{1, 2})
	rts[0].EnableTrace()
	app := &App{
		Name:         "traced",
		Slice:        func(i int) machine.ComputeSpec { return kernels.PrimeCount(1e7) },
		TasksPerIter: 4,
		Iterations:   2,
		MsgSize:      4096,
		MsgsPerIter:  1,
		HandleNUMA:   -1,
	}
	app.Run(rts)
	events := rts[0].TraceEvents()
	var tasks, comms int
	for _, e := range events {
		if e.End <= e.Start {
			t.Fatalf("empty interval %+v", e)
		}
		switch e.Kind {
		case "task":
			tasks++
		case "comm":
			comms++
		}
	}
	if tasks != 8 { // 2 iterations × 4 tasks
		t.Fatalf("%d task events, want 8", tasks)
	}
	if comms != 4 { // 2 iterations × (1 send + 1 recv)
		t.Fatalf("%d comm events, want 4", comms)
	}
	var buf strings.Builder
	if err := rts[0].WriteTraceCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "core,kind,label") || !strings.Contains(buf.String(), "prime") {
		t.Fatalf("trace CSV malformed:\n%s", buf.String()[:200])
	}
	util := rts[0].Utilization(c.K.Now())
	if len(util) == 0 {
		t.Fatal("no utilization data")
	}
	for core, u := range util {
		if u < 0 || u > 1 {
			t.Fatalf("core %d utilization %v", core, u)
		}
	}
}
