package taskrt

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Data handles with implicit dependency inference — StarPU's core
// programming model (§5.1: the runtime executes the task graph
// "respecting the dependencies of the graph" and "transmitting the data
// between tasks"). Tasks declare which handles they access and how; the
// runtime derives the sequential-consistency dependencies (read-after-
// write, write-after-read, write-after-write) in submission order, so
// the application never wires explicit edges.

// AccessMode declares how a task uses a handle.
type AccessMode int

const (
	// Read-only access: concurrent with other reads.
	R AccessMode = iota
	// Write access (includes read-write): exclusive.
	W
)

func (m AccessMode) String() string {
	if m == W {
		return "W"
	}
	return "R"
}

// Handle is a registered piece of application data.
type Handle struct {
	Buf *machine.Buffer
	// lastWriter is the most recent submitted writer task.
	lastWriter *Task
	// readersSinceWrite are submitted readers newer than lastWriter.
	readersSinceWrite []*Task
}

// NewHandle registers a buffer as a data handle.
func NewHandle(buf *machine.Buffer) *Handle {
	if buf == nil {
		panic("taskrt: nil buffer handle")
	}
	return &Handle{Buf: buf}
}

// NUMA returns the handle data's home NUMA node.
func (h *Handle) NUMA() int { return h.Buf.NUMA }

// Access pairs a handle with its access mode.
type Access struct {
	Handle *Handle
	Mode   AccessMode
}

// Accesses attaches data accesses to the task (builder style):
//
//	task := taskrt.NewTask(spec).Accessing(taskrt.Access{h, taskrt.W})
func (t *Task) Accessing(accesses ...Access) *Task {
	t.accesses = append(t.accesses, accesses...)
	return t
}

// SubmitData submits tasks with dependencies inferred from their data
// accesses, in submission order (sequential consistency):
//
//   - a reader depends on the handle's last writer (RAW);
//   - a writer depends on the last writer (WAW) and on every reader
//     submitted since (WAR).
//
// Tasks whose compute slice has no explicit data placement inherit the
// NUMA node of their first accessed handle, so locality scheduling and
// the contention model see the real data home.
func (rt *Runtime) SubmitData(p *sim.Proc, tasks ...*Task) {
	for _, t := range tasks {
		for _, a := range t.accesses {
			if a.Handle == nil {
				panic(fmt.Sprintf("taskrt: task %q accesses a nil handle", t.Spec.Name))
			}
			switch a.Mode {
			case R:
				if a.Handle.lastWriter != nil {
					t.DependsOn(a.Handle.lastWriter)
				}
				a.Handle.readersSinceWrite = append(a.Handle.readersSinceWrite, t)
			case W:
				if a.Handle.lastWriter != nil {
					t.DependsOn(a.Handle.lastWriter)
				}
				for _, reader := range a.Handle.readersSinceWrite {
					t.DependsOn(reader)
				}
				a.Handle.lastWriter = t
				a.Handle.readersSinceWrite = nil
			default:
				panic(fmt.Sprintf("taskrt: unknown access mode %d", a.Mode))
			}
		}
		// The first accessed handle is where the task's traffic goes:
		// handles are authoritative over the slice's default placement.
		if len(t.accesses) > 0 && t.Spec.Bytes > 0 {
			t.Spec.MemNUMA = t.accesses[0].Handle.NUMA()
		}
		rt.Submit(p, t)
	}
}
