package taskrt

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/sim"
)

// Distributed task insertion — the starpu_mpi_insert_task model the
// paper's §6 applications are written in. Every rank executes the
// *same* Insert sequence; each task runs on one rank (by default the
// owner of the data it writes); the runtimes automatically exchange
// the data handles the task needs, and the coherence bookkeeping stays
// consistent across ranks because every rank replays the identical
// insertion stream.
//
// Transfers enter the local dependency graphs through proxy tasks:
//
//   - on the sending rank, a zero-work task reading the handle posts
//     the send when it completes (so the current value is sent, after
//     every local producer);
//   - on the executing rank, a zero-work task writing the handle is
//     held until the message lands (so consumers order after the
//     transfer, and local readers/writers serialize correctly).

// DistRuntime drives one rank's runtime in a distributed program.
type DistRuntime struct {
	rt      *Runtime
	rank    int
	nranks  int
	nextTag int
}

// NewDistRuntime wraps a started runtime (which must have an MPI rank)
// for distributed task insertion over nranks ranks.
func NewDistRuntime(rt *Runtime, nranks int) *DistRuntime {
	if rt.cfg.Rank == nil {
		panic("taskrt: distributed runtime needs an MPI rank")
	}
	return &DistRuntime{rt: rt, rank: rt.cfg.Rank.ID, nranks: nranks}
}

// Runtime returns the wrapped per-node runtime.
func (d *DistRuntime) Runtime() *Runtime { return d.rt }

// Rank returns this instance's MPI rank.
func (d *DistRuntime) Rank() int { return d.rank }

// DistHandle is a data handle with a home rank. All ranks must register
// the same handles in the same order (sizes and owners must agree).
type DistHandle struct {
	Size  int64
	owner int
	// local is this rank's local replica handle (lazily the data may be
	// stale; validOn tracks the unique rank holding the current value
	// in this simplified MSI-style protocol).
	local   *Handle
	validOn int
}

// RegisterData declares a distributed handle owned by `owner`, backed
// on this rank by a local allocation on NUMA node `numa`.
func (d *DistRuntime) RegisterData(owner int, size int64, numa int) *DistHandle {
	if owner < 0 || owner >= d.nranks {
		panic(fmt.Sprintf("taskrt: handle owner %d out of range [0,%d)", owner, d.nranks))
	}
	buf := d.rt.node.Alloc(size, numa)
	return &DistHandle{
		Size:    size,
		owner:   owner,
		local:   NewHandle(buf),
		validOn: owner,
	}
}

// Owner returns the rank currently holding the valid copy.
func (h *DistHandle) Owner() int { return h.validOn }

// DistAccess pairs a distributed handle with an access mode.
type DistAccess struct {
	Handle *DistHandle
	Mode   AccessMode
}

// DistTask describes one logical task of the distributed program.
type DistTask struct {
	Spec machine.ComputeSpec
	// ExecRank selects where the task runs; -1 means the rank holding
	// the first written handle (StarPU's default placement).
	ExecRank int
	Accesses []DistAccess
}

// execRank resolves the execution rank of a task.
func (d *DistRuntime) execRank(t *DistTask) int {
	if t.ExecRank >= 0 {
		if t.ExecRank >= d.nranks {
			panic(fmt.Sprintf("taskrt: exec rank %d out of range [0,%d)", t.ExecRank, d.nranks))
		}
		return t.ExecRank
	}
	for _, a := range t.Accesses {
		if a.Mode == W {
			return a.Handle.validOn
		}
	}
	if len(t.Accesses) > 0 {
		return t.Accesses[0].Handle.validOn
	}
	return 0
}

// Insert adds one task to the distributed program. EVERY rank must call
// Insert with an identical task stream; each call returns the local
// proxy whose completion marks this rank's part of the task (nil when
// this rank contributes nothing). Blocking: runs submission costs on
// the local main thread.
func (d *DistRuntime) Insert(p *sim.Proc, t *DistTask) *Task {
	exec := d.execRank(t)
	var result *Task

	// Move every handle the task reads to the executing rank.
	for _, a := range t.Accesses {
		h := a.Handle
		needsValue := a.Mode == R || a.Mode == W // W is read-modify-write here
		if needsValue && h.validOn != exec {
			tag := d.transferTag(h)
			src := h.validOn
			switch d.rank {
			case src:
				// Send proxy: reads the local replica, posts the send on
				// completion (after every local producer finished).
				send := NewTask(machine.ComputeSpec{Name: "dist-send"}).
					Accessing(Access{h.local, R})
				h := h
				send.OnDone = func() {
					d.rt.postAsync(&commReq{
						send: true, peer: exec, tag: tag,
						buf: h.local.Buf, size: h.Size,
					})
				}
				d.rt.SubmitData(p, send)
			case exec:
				// Recv proxy: writes the local replica, held until the
				// message lands.
				recv := NewTask(machine.ComputeSpec{Name: "dist-recv"}).
					Accessing(Access{h.local, W})
				recv.Hold()
				d.rt.SubmitData(p, recv)
				d.rt.postAsync(&commReq{
					send: false, peer: src, tag: tag,
					buf: h.local.Buf, size: h.Size,
					onDone: func() { d.rt.Release(recv) },
				})
			}
			h.validOn = exec // replayed identically on every rank
		}
	}

	// Execute locally on the chosen rank, with local data dependencies
	// inferred from the replica handles.
	if d.rank == exec {
		task := NewTask(t.Spec)
		for _, a := range t.Accesses {
			task.Accessing(Access{a.Handle.local, a.Mode})
		}
		d.rt.SubmitData(p, task)
		result = task
	}
	// A write leaves the only valid copy on the executing rank.
	for _, a := range t.Accesses {
		if a.Mode == W {
			a.Handle.validOn = exec
		}
	}
	return result
}

// transferTag derives a fresh, rank-agreed message tag for a handle
// movement (all ranks replay the same stream, so the counters agree).
func (d *DistRuntime) transferTag(h *DistHandle) int {
	d.nextTag++
	return distTagBase + d.nextTag
}

const distTagBase = 5 << 20

// WaitAllDist drains the local runtime (tasks and posted transfers).
func (d *DistRuntime) WaitAllDist(p *sim.Proc) {
	d.rt.WaitAll(p)
	for d.rt.commInflight > 0 {
		d.rt.commIdleSig.Wait(p)
	}
}

// postAsync enqueues a communication request from event/worker context:
// the main-thread submission stage is skipped (its cost is part of the
// proxy task's scheduling), the communication thread still pays its
// processing share.
func (rt *Runtime) postAsync(req *commReq) {
	req.doneSig = sim.NewSignal(rt.k)
	rt.commStarted()
	rt.commQ.Push(req)
}
