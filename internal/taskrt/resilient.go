package taskrt

import (
	"fmt"

	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/topology"
)

// ResilientApp is an iterative distributed application written against
// the runtime that survives node crashes: every rank executes its share
// of an iteration's tasks, exchanges halos with its ring neighbours
// through the fault-tolerant MPI path, and periodically takes a
// coordinated checkpoint. When the failure detector declares a rank
// dead, the survivors shrink the ring, roll back to the last completed
// checkpoint, and re-execute the lost work — including every task whose
// execution (and output handle) lived on the crashed node. Lineage is
// tracked per task (ranBy), so the re-execution and rollback accounting
// lands in the hardware counters (TasksReexecuted, RollbackIters,
// Checkpoints, RecoverySecs) alongside the detector's PeerDeaths.
type ResilientApp struct {
	// Name labels the application's tasks and processes.
	Name string
	// Slice builds the compute spec of task i of one iteration.
	Slice func(i int) machine.ComputeSpec
	// TasksPerIter tasks per iteration are dealt round-robin over the
	// live ranks; Iterations is the total iteration count.
	TasksPerIter int
	Iterations   int
	// MsgSize is the per-neighbour halo exchanged after each iteration's
	// tasks complete (0 skips the exchange).
	MsgSize int64
	// HandleNUMA places the halo buffers; negative means the NIC's NUMA
	// node.
	HandleNUMA int
	// CheckpointEvery takes a coordinated checkpoint after every that
	// many completed iterations; 0 disables checkpointing, so recovery
	// replays from iteration 0.
	CheckpointEvery int
	// CheckpointBytes is the state each rank writes per checkpoint.
	CheckpointBytes int64
	// Horizon bounds the simulated duration of one Run (default 30 s):
	// exceeding it panics instead of letting a coordination bug spin the
	// heartbeat monitors forever.
	Horizon sim.Duration

	// Progress hooks, all optional, called in simulation context on the
	// coordinating rank: OnIteration when iteration it completes on all
	// live ranks (called again when a rollback replays it), OnCheckpoint
	// when the checkpoint of iteration it commits, OnRollback when
	// recovery rewinds to checkpoint ckpt (-1 = initial state). A host
	// application mirrors its numeric state through these hooks to get
	// bit-identical recovery semantics (see bench.CrashCG).
	OnIteration  func(it int)
	OnCheckpoint func(it int)
	OnRollback   func(ckpt int)
}

// ResilientStats summarises one resilient run.
type ResilientStats struct {
	Elapsed        sim.Duration
	CompletedIters int
	Survivors      int
	Crashes        int
	TasksReexec    float64
	RollbackIters  float64
	Checkpoints    float64
	RecoverySecs   float64
}

func (app *ResilientApp) name() string {
	if app.Name == "" {
		return "resilient"
	}
	return app.Name
}

func (app *ResilientApp) horizon() sim.Duration {
	if app.Horizon > 0 {
		return app.Horizon
	}
	return 30 * sim.Second
}

// resilientRun is the shared coordination state of one Run. All access
// happens inside the (single-threaded, deterministic) event loop.
type resilientRun struct {
	app *ResilientApp
	rts []*Runtime
	det *mpi.Detector
	k   *sim.Kernel
	sig *sim.Signal // progress signal: barrier arrivals, deaths, finish

	epoch      int   // bumped on every death; invalidates in-flight work
	alive      []int // current communicator members, sorted
	ckptIter   int   // last checkpointed iteration (-1 = none)
	completed  int   // iterations completed by all live ranks
	maxStarted int   // highest iteration whose tasks started
	ranBy      [][]int

	preArrive  map[[2]int]int // {epoch, it} → ranks committed to exchange
	endArrive  map[[2]int]int // {epoch, it} → ranks done with iteration
	ckptArrive map[[2]int]int // {epoch, it} → ranks done checkpointing

	recovering   bool
	recoverStart sim.Time
	replayTarget int

	crashes      int
	reexec       float64
	rollback     float64
	checkpoints  float64
	recoverySecs float64

	finished int
	done     bool
	endTime  sim.Time
	watchdog sim.EventRef
}

// Run executes the application over the given per-rank runtimes (all
// Started, one per cluster node, in rank order) with an armed failure
// detector, drives the simulation to completion, and returns the run's
// statistics. It owns the kernel: it spawns the rank drivers, runs the
// event loop, stops the detector and shuts the runtimes down once every
// live rank has finished.
func (app *ResilientApp) Run(rts []*Runtime, det *mpi.Detector) ResilientStats {
	if len(rts) < 2 {
		panic("taskrt: ResilientApp needs at least two runtimes")
	}
	if app.Slice == nil || app.TasksPerIter <= 0 || app.Iterations <= 0 {
		panic("taskrt: ResilientApp needs Slice, TasksPerIter and Iterations")
	}
	if det == nil {
		panic("taskrt: ResilientApp needs an armed failure detector")
	}
	k := rts[0].k
	st := &resilientRun{
		app: app, rts: rts, det: det, k: k,
		sig:        sim.NewSignal(k),
		ckptIter:   -1,
		preArrive:  make(map[[2]int]int),
		endArrive:  make(map[[2]int]int),
		ckptArrive: make(map[[2]int]int),
	}
	for i := range rts {
		st.alive = append(st.alive, i)
	}
	st.ranBy = make([][]int, app.Iterations)
	for i := range st.ranBy {
		row := make([]int, app.TasksPerIter)
		for j := range row {
			row[j] = -1
		}
		st.ranBy[i] = row
	}
	det.OnDeath(st.onDeath)
	start := k.Now()
	for i := range rts {
		i := i
		k.Spawn(fmt.Sprintf("app.%s.n%d", app.name(), i), func(p *sim.Proc) {
			st.drive(p, i)
		})
	}
	st.watchdog = k.At(start.Add(app.horizon()), func() {
		panic(fmt.Sprintf("taskrt: resilient app %q exceeded its %v horizon (completed %d/%d iterations)",
			app.name(), app.horizon(), st.completed, app.Iterations))
	})
	k.Run()
	if !st.done {
		panic(fmt.Sprintf("taskrt: resilient app %q deadlocked (completed %d/%d iterations)",
			app.name(), st.completed, app.Iterations))
	}
	return ResilientStats{
		Elapsed:        st.endTime.Sub(start),
		CompletedIters: st.completed,
		Survivors:      len(st.alive),
		Crashes:        st.crashes,
		TasksReexec:    st.reexec,
		RollbackIters:  st.rollback,
		Checkpoints:    st.checkpoints,
		RecoverySecs:   st.recoverySecs,
	}
}

// onDeath is the recovery protocol, run in event context at the instant
// the detector declares a rank dead: shrink the communicator, count the
// lost lineage (tasks executed since the last checkpoint on the dead
// rank, whose outputs died with it), roll progress back to the last
// checkpoint, and bump the epoch so every in-flight iteration restarts.
func (st *resilientRun) onDeath(dead int) {
	idx := -1
	for i, r := range st.alive {
		if r == dead {
			idx = i
		}
	}
	if idx < 0 {
		return
	}
	st.alive = append(st.alive[:idx], st.alive[idx+1:]...)
	st.crashes++
	if st.done || len(st.alive) == 0 || st.completed >= st.app.Iterations {
		// Nothing left to recover: the work is finished (or nobody
		// survives to do it).
		st.epoch++
		st.sig.Broadcast()
		st.maybeFinish()
		return
	}
	node := st.rts[st.alive[0]].node
	reexec := 0
	for it := st.ckptIter + 1; it <= st.maxStarted && it < st.app.Iterations; it++ {
		for _, who := range st.ranBy[it] {
			if who == dead {
				reexec++
			}
		}
	}
	rollback := st.completed - (st.ckptIter + 1)
	if rollback < 0 {
		rollback = 0
	}
	st.reexec += float64(reexec)
	st.rollback += float64(rollback)
	node.Counters.TasksReexecuted += float64(reexec)
	node.Counters.RollbackIters += float64(rollback)
	if st.app.OnRollback != nil {
		st.app.OnRollback(st.ckptIter)
	}
	prev := st.completed
	st.completed = st.ckptIter + 1
	st.maxStarted = st.ckptIter
	if st.recovering {
		if prev > st.replayTarget {
			st.replayTarget = prev
		}
	} else if prev > st.completed {
		st.recovering = true
		st.recoverStart = st.k.Now()
		st.replayTarget = prev
	}
	st.epoch++
	st.sig.Broadcast()
}

// drive is one rank's application loop.
func (st *resilientRun) drive(p *sim.Proc, id int) {
	app := st.app
	rt := st.rts[id]
	node := rt.node
	numa := app.HandleNUMA
	if numa < 0 {
		numa = node.Spec.NIC.NUMA
	}
	sendBuf := node.Alloc(max64(app.MsgSize, 1), numa)
	recvBuf := node.Alloc(max64(app.MsgSize, 1), numa)

	myEpoch := st.epoch
	members := append([]int(nil), st.alive...)

	it := 0
	for it < app.Iterations {
		if st.epoch != myEpoch {
			// A death was declared: resynchronise on the shrunken
			// communicator and replay from the checkpoint.
			myEpoch = st.epoch
			it = st.ckptIter + 1
			members = append([]int(nil), st.alive...)
			if memberIndex(members, id) < 0 {
				return // declared dead (e.g. a recovered node): stand down
			}
			continue
		}

		// 1. Task phase: execute this rank's share of the iteration,
		// recording lineage for crash recovery.
		if it > st.maxStarted {
			st.maxStarted = it
		}
		var tasks []*Task
		for t := 0; t < app.TasksPerIter; t++ {
			if members[t%len(members)] != id {
				continue
			}
			st.ranBy[it][t] = id
			spec := app.Slice(t)
			if spec.Name == "" {
				spec.Name = fmt.Sprintf("%s.i%d.t%d", app.name(), it, t)
			}
			tasks = append(tasks, NewTask(spec))
		}
		rt.Submit(p, tasks...)
		rt.WaitAll(p)
		if st.epoch != myEpoch {
			continue
		}

		// 2. Commitment barrier: once every member arrives, all of them
		// post the exchange below — so between two live ranks every send
		// has its matching receive, and only operations involving the
		// dead rank can error out. Restarting before this barrier is
		// always safe because nothing has been posted yet.
		key := [2]int{myEpoch, it}
		st.preArrive[key]++
		if st.preArrive[key] == len(members) {
			st.sig.Broadcast()
		}
		for st.preArrive[key] < len(members) && st.epoch == myEpoch {
			st.sig.Wait(p)
		}
		if st.epoch != myEpoch {
			continue
		}

		// 3. Halo exchange over the member ring, tags scoped by
		// (epoch, iteration) so replayed iterations never match stale
		// messages. Errors (a peer died mid-exchange) are resolved by
		// the epoch check: a dead-peer error always comes with a bumped
		// epoch.
		if len(members) > 1 && app.MsgSize > 0 {
			my := memberIndex(members, id)
			next := members[(my+1)%len(members)]
			prev := members[(my-1+len(members))%len(members)]
			tagBase := 1_000_000 + (myEpoch*app.Iterations+it)*64
			sh := rt.PostSendFT(p, next, tagBase+id, sendBuf, app.MsgSize)
			rh := rt.PostRecvFT(p, prev, tagBase+prev, recvBuf, app.MsgSize)
			sh.Wait(p)
			rh.Wait(p)
		}
		if st.epoch != myEpoch {
			continue
		}

		// 4. Completion barrier: the last member to arrive commits the
		// iteration and closes the recovery window once the pre-crash
		// progress has been regained.
		st.endArrive[key]++
		if st.endArrive[key] == len(members) {
			st.completed = it + 1
			if app.OnIteration != nil {
				app.OnIteration(it)
			}
			if st.recovering && st.completed >= st.replayTarget {
				st.recovering = false
				secs := p.Now().Sub(st.recoverStart).Seconds()
				st.recoverySecs += secs
				st.rts[st.alive[0]].node.Counters.RecoverySecs += secs
			}
			st.sig.Broadcast()
		}
		for st.completed <= it && st.epoch == myEpoch {
			st.sig.Wait(p)
		}
		if st.epoch != myEpoch {
			continue
		}

		// 5. Coordinated checkpoint: each member writes its state, the
		// last one commits the checkpoint.
		if app.CheckpointEvery > 0 && (it+1)%app.CheckpointEvery == 0 && it > st.ckptIter {
			if app.CheckpointBytes > 0 {
				node.ExecCompute(p, rt.cfg.MainCore, machine.ComputeSpec{
					Bytes:   float64(app.CheckpointBytes),
					Class:   topology.Scalar,
					MemNUMA: -1,
					Name:    fmt.Sprintf("%s.ckpt.n%d", app.name(), id),
				})
			}
			if st.epoch == myEpoch {
				st.ckptArrive[key]++
				if st.ckptArrive[key] == len(members) {
					st.ckptIter = it
					st.checkpoints++
					st.rts[st.alive[0]].node.Counters.Checkpoints++
					if app.OnCheckpoint != nil {
						app.OnCheckpoint(it)
					}
					st.sig.Broadcast()
				}
				for st.ckptIter < it && st.epoch == myEpoch {
					st.sig.Wait(p)
				}
			}
			if st.epoch != myEpoch {
				continue
			}
		}
		it++
	}
	st.finished++
	st.maybeFinish()
}

// maybeFinish ends the run once every live rank's driver has completed
// the full iteration count: stop the detector (so its monitors drain),
// cancel the horizon watchdog, and shut every runtime down.
func (st *resilientRun) maybeFinish() {
	if st.done || st.completed < st.app.Iterations || st.finished < len(st.alive) {
		return
	}
	st.done = true
	st.endTime = st.k.Now()
	st.det.Stop()
	st.k.Cancel(st.watchdog)
	for _, rt := range st.rts {
		if rt.started && !rt.shutdown {
			rt.Shutdown()
		}
	}
	st.sig.Broadcast()
}

func memberIndex(s []int, v int) int {
	for i, x := range s {
		if x == v {
			return i
		}
	}
	return -1
}
