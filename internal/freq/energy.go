package freq

import "repro/internal/sim"

// Energy accounting. The paper's related work (§7: Lim et al.,
// Sundriyal et al., Liu et al.) frames frequency scaling as an
// energy/communication-performance tradeoff; this model integrates
// per-core power over simulated time so the tradeoff can be quantified
// on the same machine models (see the ext-energy experiment).
//
// The power model is the standard decomposition: an idle (C-state)
// floor, per-active-core static leakage, a dynamic term cubic in the
// core frequency (P ∝ C·V²·f with V roughly ∝ f), and an uncore term
// linear in the uncore frequency.

// EnergyParams parameterises the node power model, in watts.
type EnergyParams struct {
	// CoreIdleW is drawn by a core parked in a C-state.
	CoreIdleW float64
	// CoreStaticW is the leakage of an active core, frequency-independent.
	CoreStaticW float64
	// CoreDynWPerGHz3 scales the dynamic term: P_dyn = k · f³ (f in GHz).
	CoreDynWPerGHz3 float64
	// UncoreWPerGHz scales the uncore domain's power.
	UncoreWPerGHz float64
}

// DefaultEnergyParams roughly matches a 140 W TDP dual-socket Xeon:
// 36 active cores at 2.5 GHz ≈ 36×(2 + 0.35·15.6) ≈ 270 W plus uncore.
func DefaultEnergyParams() EnergyParams {
	return EnergyParams{
		CoreIdleW:       1.0,
		CoreStaticW:     2.0,
		CoreDynWPerGHz3: 0.35,
		UncoreWPerGHz:   10,
	}
}

// EnableEnergy starts energy integration with the given parameters.
// Must be called before the simulation advances.
func (m *Model) EnableEnergy(params EnergyParams) {
	m.energy = &energyState{params: params, last: m.k.Now()}
}

// energyState accumulates joules between frequency transitions.
type energyState struct {
	params EnergyParams
	last   sim.Time
	joules float64
}

// EnergyJoules returns the node's accumulated energy up to the current
// instant. Returns 0 when EnableEnergy was never called.
func (m *Model) EnergyJoules() float64 {
	if m.energy == nil {
		return 0
	}
	m.accrueEnergy()
	return m.energy.joules
}

// PowerWatts returns the node's instantaneous power draw under the
// current frequency/activity state (0 without EnableEnergy).
func (m *Model) PowerWatts() float64 {
	if m.energy == nil {
		return 0
	}
	p := m.energy.params
	watts := p.UncoreWPerGHz * m.uncoreGHz
	for c := range m.coreGHz {
		if m.active[c] {
			f := m.coreGHz[c]
			watts += p.CoreStaticW + p.CoreDynWPerGHz3*f*f*f
		} else {
			watts += p.CoreIdleW
		}
	}
	return watts
}

// accrueEnergy integrates power since the last accrual. Called before
// every state change and on reads.
func (m *Model) accrueEnergy() {
	if m.energy == nil {
		return
	}
	now := m.k.Now()
	if now == m.energy.last {
		return
	}
	dt := now.Sub(m.energy.last).Seconds()
	m.energy.joules += m.PowerWatts() * dt
	m.energy.last = now
}
