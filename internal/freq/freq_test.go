package freq

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/topology"
)

func henriModel() (*sim.Kernel, *Model) {
	k := sim.NewKernel(1)
	return k, NewModel(k, topology.Henri())
}

func TestIdleCoresAtMinimum(t *testing.T) {
	_, m := henriModel()
	for c := 0; c < m.Spec().Cores(); c++ {
		if got := m.CoreGHz(c); got != 1.0 {
			t.Fatalf("idle core %d at %v GHz, want 1.0", c, got)
		}
	}
}

func TestActiveScalarCoreTurbo(t *testing.T) {
	_, m := henriModel()
	m.SetActive(0, topology.Scalar)
	if got := m.CoreGHz(0); got != 2.5 {
		t.Fatalf("active scalar core at %v, want 2.5 (henri sustained turbo)", got)
	}
	if got := m.CoreGHz(1); got != 1.0 {
		t.Fatalf("idle neighbour at %v, want 1.0", got)
	}
}

func TestTurboDisabledGivesBase(t *testing.T) {
	_, m := henriModel()
	m.SetTurbo(false)
	m.SetActive(0, topology.Scalar)
	if got := m.CoreGHz(0); got != 2.3 {
		t.Fatalf("no-turbo active core at %v, want base 2.3", got)
	}
}

func TestAVX512LicenceMatchesPaperFig3(t *testing.T) {
	_, m := henriModel()
	// 4 AVX-512 cores at 3.0 GHz (Fig 3b).
	for c := 0; c < 4; c++ {
		m.SetActive(c, topology.AVX512)
	}
	if got := m.CoreGHz(0); got != 3.0 {
		t.Fatalf("4 AVX512 cores: %v GHz, want 3.0", got)
	}
	// 20 AVX-512 cores at 2.3 GHz (Fig 3c); the scalar communication
	// core stays at 2.5 GHz.
	for c := 4; c < 20; c++ {
		m.SetActive(c, topology.AVX512)
	}
	m.SetActive(35, topology.Scalar)
	if got := m.CoreGHz(0); got != 2.3 {
		t.Fatalf("20 AVX512 cores: %v GHz, want 2.3", got)
	}
	if got := m.CoreGHz(35); got != 2.5 {
		t.Fatalf("comm core with 20 AVX512 neighbours: %v GHz, want 2.5", got)
	}
}

func TestUserspacePinsAllCores(t *testing.T) {
	_, m := henriModel()
	m.SetUserspace(1.0)
	m.SetActive(3, topology.AVX512)
	if m.CoreGHz(3) != 1.0 || m.CoreGHz(0) != 1.0 {
		t.Fatalf("userspace 1.0: active=%v idle=%v", m.CoreGHz(3), m.CoreGHz(0))
	}
	m.SetUserspace(2.3)
	if m.CoreGHz(3) != 2.3 {
		t.Fatalf("userspace 2.3: %v", m.CoreGHz(3))
	}
	// Clamped to the permitted range.
	m.SetUserspace(9.9)
	if m.CoreGHz(0) != 2.3 {
		t.Fatalf("clamp high: %v, want CoreBase 2.3", m.CoreGHz(0))
	}
	m.SetUserspace(0.1)
	if m.CoreGHz(0) != 1.0 {
		t.Fatalf("clamp low: %v, want CoreMin 1.0", m.CoreGHz(0))
	}
}

func TestPowersave(t *testing.T) {
	_, m := henriModel()
	m.SetGovernor(Powersave)
	m.SetActive(0, topology.Scalar)
	if m.CoreGHz(0) != 1.0 {
		t.Fatalf("powersave active core at %v", m.CoreGHz(0))
	}
}

func TestUncoreDynamicRampsWithActivity(t *testing.T) {
	_, m := henriModel()
	if got := m.UncoreGHz(); got != 1.2 {
		t.Fatalf("idle uncore %v, want 1.2", got)
	}
	m.SetActive(0, topology.Scalar)
	mid := m.UncoreGHz()
	if mid <= 1.2 || mid >= 2.4 {
		t.Fatalf("1 active core: uncore %v, want in (1.2,2.4)", mid)
	}
	for c := 1; c < 8; c++ {
		m.SetActive(c, topology.Scalar)
	}
	if got := m.UncoreGHz(); got != 2.4 {
		t.Fatalf("8 active cores: uncore %v, want max 2.4", got)
	}
}

func TestUncoreFixed(t *testing.T) {
	_, m := henriModel()
	m.SetUncoreFixed(1.2)
	for c := 0; c < 10; c++ {
		m.SetActive(c, topology.Scalar)
	}
	if got := m.UncoreGHz(); got != 1.2 {
		t.Fatalf("fixed uncore drifted to %v", got)
	}
	if got := m.UncoreScale(); got != 0.5 {
		t.Fatalf("UncoreScale = %v, want 0.5", got)
	}
	m.SetUncoreDynamic()
	if got := m.UncoreGHz(); got != 2.4 {
		t.Fatalf("dynamic uncore with 10 active = %v, want 2.4", got)
	}
}

func TestSetIdleRestoresMinimumAndCensus(t *testing.T) {
	_, m := henriModel()
	m.SetActive(5, topology.AVX2)
	m.SetIdle(5)
	m.SetIdle(5) // idempotent
	if m.CoreGHz(5) != 1.0 || m.ActiveCores() != 0 {
		t.Fatalf("after idle: f=%v active=%d", m.CoreGHz(5), m.ActiveCores())
	}
}

func TestReclassifyActiveCore(t *testing.T) {
	_, m := henriModel()
	m.SetActive(0, topology.Scalar)
	m.SetActive(0, topology.AVX512) // same core switches licence
	if m.ActiveCores() != 1 {
		t.Fatalf("census %d after reclassify, want 1", m.ActiveCores())
	}
	if got := m.CoreGHz(0); got != 3.0 {
		t.Fatalf("reclassified core at %v, want AVX512 single-core 3.0", got)
	}
}

func TestListenersFireOnChangeOnly(t *testing.T) {
	_, m := henriModel()
	n := 0
	m.OnChange(func() { n++ })
	m.SetActive(0, topology.Scalar)
	if n == 0 {
		t.Fatal("listener did not fire on activation")
	}
	before := n
	m.SetActive(0, topology.Scalar) // no-op: same state
	if n != before {
		t.Fatalf("listener fired on no-op (%d → %d)", before, n)
	}
}

func TestCyclesDuration(t *testing.T) {
	_, m := henriModel()
	m.SetActive(0, topology.Scalar) // 2.5 GHz
	d := m.Cycles(0, 2500)
	if d != sim.Duration(1000) { // 2500 cycles at 2.5 GHz = 1 µs? No: 1000 ns
		t.Fatalf("2500 cycles at 2.5GHz = %v, want 1000ns", d)
	}
}

func TestFlopsRate(t *testing.T) {
	_, m := henriModel()
	m.SetActive(0, topology.AVX512)
	// 4 AVX512-active? only one: 3.0 GHz × 32 flops/cycle.
	want := 3.0e9 * 32
	if got := m.FlopsRate(0, topology.AVX512); got != want {
		t.Fatalf("FlopsRate = %v, want %v", got, want)
	}
}

func TestTraceRecordsTransitions(t *testing.T) {
	k, m := henriModel()
	m.StartTrace()
	k.After(1000, func() { m.SetActive(0, topology.Scalar) })
	k.After(2000, func() { m.SetIdle(0) })
	k.Run()
	samples := m.StopTrace()
	if len(samples) == 0 {
		t.Fatal("empty trace")
	}
	// Find core 0's samples: must show 1.0 → 2.5 → 1.0.
	var f0 []float64
	for _, s := range samples {
		if s.Core == 0 {
			f0 = append(f0, s.GHz)
		}
	}
	if len(f0) != 3 || f0[0] != 1.0 || f0[1] != 2.5 || f0[2] != 1.0 {
		t.Fatalf("core 0 trace %v, want [1.0 2.5 1.0]", f0)
	}
}

func TestBillyHasNoAVXLicenceDrop(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k, topology.Billy())
	for c := 0; c < 32; c++ {
		m.SetActive(c, topology.AVX2)
	}
	if got := m.CoreGHz(0); got != 2.9 {
		t.Fatalf("billy AVX2 32 cores at %v, want 2.9 (no licence mechanism)", got)
	}
}

func TestEnergyIntegration(t *testing.T) {
	k, m := henriModel()
	m.EnableEnergy(DefaultEnergyParams())
	// 36 idle cores at 1 W + uncore 1.2 GHz × 10 W = 48 W for 1 s.
	k.RunUntil(sim.Time(sim.Second))
	idleJ := m.EnergyJoules()
	if math.Abs(idleJ-48) > 0.5 {
		t.Fatalf("idle energy %.1f J over 1s, want ≈48", idleJ)
	}
	// Activate 4 scalar cores (2.5 GHz) for 1 more second: power rises by
	// 4×(2+0.35×15.625−1) + uncore to 2.4 (Δ12 W).
	m.SetActive(0, topology.Scalar)
	m.SetActive(1, topology.Scalar)
	m.SetActive(2, topology.Scalar)
	m.SetActive(3, topology.Scalar)
	k.RunUntil(sim.Time(2 * sim.Second))
	activeJ := m.EnergyJoules() - idleJ
	wantActive := 48.0 + 4*(2+0.35*2.5*2.5*2.5-1) + (2.4-1.2)*10
	if math.Abs(activeJ-wantActive) > 1 {
		t.Fatalf("active second used %.1f J, want ≈%.1f", activeJ, wantActive)
	}
}

func TestEnergyDisabledReportsZero(t *testing.T) {
	k, m := henriModel()
	k.RunUntil(sim.Time(sim.Second))
	if m.EnergyJoules() != 0 || m.PowerWatts() != 0 {
		t.Fatal("energy reported without EnableEnergy")
	}
}

func TestPowerScalesCubicallyWithFrequency(t *testing.T) {
	_, m := henriModel()
	m.EnableEnergy(DefaultEnergyParams())
	m.SetUserspace(1.0)
	m.SetActive(0, topology.Scalar)
	low := m.PowerWatts()
	m.SetUserspace(2.3)
	high := m.PowerWatts()
	// Dynamic term: 0.35×(2.3³−1³) ≈ 3.9 W, plus nothing else changes.
	if d := high - low; math.Abs(d-0.35*(2.3*2.3*2.3-1)) > 1e-9 {
		t.Fatalf("frequency power delta %.2f W", d)
	}
}
