// Package freq models the frequency behaviour of a node: per-core DVFS
// with governors and turbo-boost, AVX frequency licences, and the
// uncore (LLC + memory controller) frequency domain.
//
// The model is intentionally mechanistic, following §3 of the paper:
//   - an idle core drops to its minimum frequency;
//   - an active core runs at the turbo limit for the number of active
//     cores in its vector-licence class (or at base frequency with
//     turbo disabled, or at a pinned frequency with the userspace
//     governor);
//   - the uncore frequency either follows demand (more active cores →
//     higher uncore) or is pinned, as the paper does through the BIOS.
//
// Every transition is visible: listeners are notified (the machine layer
// rescales compute-flow caps and memory-controller capacities) and an
// optional trace records per-core frequency steps for Figure 2/3-style
// plots.
package freq

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/topology"
)

// Governor selects the core frequency policy, mirroring Linux cpufreq.
type Governor int

const (
	// Performance runs active cores as fast as allowed (turbo limit when
	// turbo is enabled, base frequency otherwise); idle cores drop to
	// the minimum frequency (C-states).
	Performance Governor = iota
	// Powersave pins every core to the minimum frequency.
	Powersave
	// Userspace pins every core to the frequency set with SetUserspace,
	// as the paper does with the cpupower tool (§3).
	Userspace
)

func (g Governor) String() string {
	switch g {
	case Performance:
		return "performance"
	case Powersave:
		return "powersave"
	case Userspace:
		return "userspace"
	}
	return fmt.Sprintf("Governor(%d)", int(g))
}

// Sample is one point of a frequency trace.
type Sample struct {
	At   sim.Time
	Core int // -1 for the uncore domain
	GHz  float64
}

// Model tracks the frequency state of one node.
type Model struct {
	k    *sim.Kernel
	spec *topology.NodeSpec

	governor      Governor
	userspaceGHz  float64
	turboEnabled  bool
	uncoreFixed   bool
	uncoreFixedV  float64
	active        []bool
	class         []topology.VecClass
	coreGHz       []float64
	uncoreGHz     float64
	activeByClass [3]int

	listeners []func()
	trace     []Sample
	tracing   bool
	energy    *energyState
}

// NewModel returns the frequency model for spec, with the performance
// governor, turbo enabled, and dynamic uncore — the defaults the paper
// measures under unless stated otherwise.
func NewModel(k *sim.Kernel, spec *topology.NodeSpec) *Model {
	m := &Model{
		k:            k,
		spec:         spec,
		governor:     Performance,
		turboEnabled: true,
		active:       make([]bool, spec.Cores()),
		class:        make([]topology.VecClass, spec.Cores()),
		coreGHz:      make([]float64, spec.Cores()),
	}
	m.recompute()
	return m
}

// Spec returns the node spec the model was built from.
func (m *Model) Spec() *topology.NodeSpec { return m.spec }

// Reset rewinds the model to the state NewModel(k, spec) returns,
// rebinding it to spec — which must have the same core count —
// while keeping its registered listeners. The final recompute notifies
// them, so capacity bookkeeping downstream is rebuilt against spec.
func (m *Model) Reset(spec *topology.NodeSpec) {
	if spec.Cores() != len(m.active) {
		panic(fmt.Sprintf("freq: Reset with %d cores, model has %d", spec.Cores(), len(m.active)))
	}
	m.spec = spec
	m.governor = Performance
	m.userspaceGHz = 0
	m.turboEnabled = true
	m.uncoreFixed = false
	m.uncoreFixedV = 0
	for i := range m.active {
		m.active[i] = false
		m.class[i] = 0
		m.coreGHz[i] = 0
	}
	m.uncoreGHz = 0
	m.activeByClass = [3]int{}
	m.trace = m.trace[:0]
	m.tracing = false
	m.energy = nil
	m.recompute()
}

// OnChange registers fn to run after any frequency changes. Listeners
// must not mutate the model.
func (m *Model) OnChange(fn func()) { m.listeners = append(m.listeners, fn) }

// SetGovernor selects the frequency policy for all cores.
func (m *Model) SetGovernor(g Governor) {
	m.governor = g
	m.recompute()
}

// Governor returns the current policy.
func (m *Model) Governor() Governor { return m.governor }

// SetUserspace pins all cores to f GHz under the userspace governor.
// f is clamped to [CoreMin, CoreBase], the range cpupower accepts.
func (m *Model) SetUserspace(f float64) {
	if f < m.spec.Freq.CoreMin {
		f = m.spec.Freq.CoreMin
	}
	if f > m.spec.Freq.CoreBase {
		f = m.spec.Freq.CoreBase
	}
	m.governor = Userspace
	m.userspaceGHz = f
	m.recompute()
}

// SetTurbo enables or disables turbo-boost.
func (m *Model) SetTurbo(on bool) {
	m.turboEnabled = on
	m.recompute()
}

// SetUncoreFixed pins the uncore domain to f GHz (BIOS/Likwid setting),
// clamped to the permitted range.
func (m *Model) SetUncoreFixed(f float64) {
	if f < m.spec.Freq.UncoreMin {
		f = m.spec.Freq.UncoreMin
	}
	if f > m.spec.Freq.UncoreMax {
		f = m.spec.Freq.UncoreMax
	}
	m.uncoreFixed = true
	m.uncoreFixedV = f
	m.recompute()
}

// SetUncoreDynamic restores demand-driven uncore frequency scaling.
func (m *Model) SetUncoreDynamic() {
	m.uncoreFixed = false
	m.recompute()
}

// SetActive marks a core as running code of the given vector class.
func (m *Model) SetActive(core int, class topology.VecClass) {
	m.checkCore(core)
	if m.active[core] {
		if m.class[core] == class {
			return
		}
		m.accrueEnergy() // charge the elapsed interval at the old state
		m.activeByClass[m.class[core]]--
	} else {
		m.accrueEnergy()
	}
	m.active[core] = true
	m.class[core] = class
	m.activeByClass[class]++
	m.recompute()
}

// SetIdle marks a core as idle.
func (m *Model) SetIdle(core int) {
	m.checkCore(core)
	if !m.active[core] {
		return
	}
	m.accrueEnergy() // charge the elapsed interval at the old state
	m.active[core] = false
	m.activeByClass[m.class[core]]--
	m.recompute()
}

func (m *Model) checkCore(core int) {
	if core < 0 || core >= len(m.active) {
		panic(fmt.Sprintf("freq: core %d out of range [0,%d)", core, len(m.active)))
	}
}

// CoreGHz returns the current frequency of a core.
func (m *Model) CoreGHz(core int) float64 {
	m.checkCore(core)
	return m.coreGHz[core]
}

// UncoreGHz returns the current uncore frequency.
func (m *Model) UncoreGHz() float64 { return m.uncoreGHz }

// UncoreIsFixed reports whether the uncore domain is pinned (BIOS/
// Likwid setting) rather than demand-driven.
func (m *Model) UncoreIsFixed() bool { return m.uncoreFixed }

// ActiveCores returns the number of currently active cores.
func (m *Model) ActiveCores() int {
	return m.activeByClass[0] + m.activeByClass[1] + m.activeByClass[2]
}

// Cycles converts a cycle count on a core to a duration at its current
// frequency.
func (m *Model) Cycles(core int, cycles float64) sim.Duration {
	f := m.CoreGHz(core)
	return sim.DurationOfSeconds(cycles / (f * 1e9))
}

// FlopsRate returns the peak flop rate (flops/s) of a core running the
// given vector class at its current frequency.
func (m *Model) FlopsRate(core int, class topology.VecClass) float64 {
	return m.CoreGHz(core) * 1e9 * m.spec.FlopsPerCycle[class]
}

// UncoreScale returns uncore/UncoreMax in (0,1], the factor by which
// uncore-clocked throughput (memory controllers) scales.
func (m *Model) UncoreScale() float64 {
	return m.uncoreGHz / m.spec.Freq.UncoreMax
}

// StartTrace begins recording frequency transitions.
func (m *Model) StartTrace() {
	m.tracing = true
	m.trace = m.trace[:0]
	m.record()
}

// StopTrace stops recording and returns the samples.
func (m *Model) StopTrace() []Sample {
	m.tracing = false
	return m.trace
}

// recompute recalculates all domain frequencies from the governor,
// turbo state and active-core census, then notifies listeners if
// anything moved. Energy is accrued at the old state first.
func (m *Model) recompute() {
	m.accrueEnergy()
	changed := false
	for c := range m.coreGHz {
		f := m.targetFreq(c)
		if f != m.coreGHz[c] {
			m.coreGHz[c] = f
			changed = true
		}
	}
	u := m.targetUncore()
	if u != m.uncoreGHz {
		m.uncoreGHz = u
		changed = true
	}
	if changed {
		if m.tracing {
			m.record()
		}
		for _, fn := range m.listeners {
			fn()
		}
	}
}

func (m *Model) targetFreq(core int) float64 {
	fs := m.spec.Freq
	switch m.governor {
	case Powersave:
		return fs.CoreMin
	case Userspace:
		return m.userspaceGHz
	}
	// Performance governor.
	if !m.active[core] {
		return fs.CoreMin
	}
	if !m.turboEnabled {
		return fs.CoreBase
	}
	class := m.class[core]
	limit := fs.Turbo[class].Limit(m.activeByClass[class])
	if limit < fs.CoreMin {
		return fs.CoreMin
	}
	return limit
}

func (m *Model) targetUncore() float64 {
	fs := m.spec.Freq
	if m.uncoreFixed {
		return m.uncoreFixedV
	}
	// Demand-driven: ramps from min to max as cores activate; four
	// active cores saturate the domain.
	active := m.ActiveCores()
	frac := float64(active) / 4
	if frac > 1 {
		frac = 1
	}
	return fs.UncoreMin + (fs.UncoreMax-fs.UncoreMin)*frac
}

// record snapshots every domain into the trace.
func (m *Model) record() {
	now := m.k.Now()
	for c, f := range m.coreGHz {
		m.trace = append(m.trace, Sample{At: now, Core: c, GHz: f})
	}
	m.trace = append(m.trace, Sample{At: now, Core: -1, GHz: m.uncoreGHz})
}
