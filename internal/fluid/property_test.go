package fluid

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// Property-based tests for the incremental solver: random topologies
// and flow populations checked against the defining properties of
// weighted max-min fairness, plus differential equality against the
// reference solver. Seeds are fixed, so failures replay exactly.

// randomWorld builds nRes resources and nFlows flows with random
// subsets, weights, priorities and caps on a fresh model.
func randomWorld(rng *rand.Rand, m *Model, nRes, nFlows int) ([]*Resource, []*Flow) {
	res := make([]*Resource, nRes)
	for i := range res {
		res[i] = m.NewResource("r", 1+rng.Float64()*99)
	}
	flows := make([]*Flow, 0, nFlows)
	for i := 0; i < nFlows; i++ {
		flows = append(flows, startRandomFlow(rng, m, res))
	}
	return res, flows
}

// startRandomFlow starts one flow over a random subset of res.
func startRandomFlow(rng *rand.Rand, m *Model, res []*Resource) *Flow {
	spec := FlowSpec{
		Name:     "f",
		Work:     1e3 + rng.Float64()*1e6,
		Priority: 0.5 + rng.Float64()*3,
	}
	n := 1 + rng.Intn(4)
	for _, ri := range rng.Perm(len(res))[:min(n, len(res))] {
		spec.Uses = append(spec.Uses, Use{res[ri], 0.25 + rng.Float64()*3.75})
	}
	if rng.Intn(3) == 0 {
		spec.Cap = 1 + rng.Float64()*50
	}
	return m.Start(spec)
}

// mutate applies one random mutation to the world and reports whether
// it did anything.
func mutate(rng *rand.Rand, k *sim.Kernel, m *Model, res []*Resource, flows *[]*Flow) {
	switch rng.Intn(5) {
	case 0:
		*flows = append(*flows, startRandomFlow(rng, m, res))
	case 1:
		if len(*flows) > 0 {
			m.Cancel((*flows)[rng.Intn(len(*flows))])
		}
	case 2:
		if len(*flows) > 0 {
			f := (*flows)[rng.Intn(len(*flows))]
			if !f.finished && len(f.uses) > 0 {
				m.SetCap(f, 1+rng.Float64()*50)
			}
		}
	case 3:
		m.SetCapacity(res[rng.Intn(len(res))], 1+rng.Float64()*99)
	case 4:
		k.RunUntil(k.Now().Add(sim.Duration(rng.Intn(int(5 * sim.Second)))))
	}
}

// checkMaxMin asserts the two defining invariants of the allocation:
// feasibility (no resource over capacity) and max-min optimality
// (every flow not running at its private cap is bottlenecked on a
// saturated resource — nobody's rate can grow without shrinking a
// competitor's).
func checkMaxMin(t *testing.T, m *Model) {
	t.Helper()
	for _, r := range m.resources {
		if r.load > r.capacity*(1+1e-6) {
			t.Fatalf("resource %q over capacity: load %v > %v", r.name, r.load, r.capacity)
		}
	}
	for _, f := range m.flows {
		if f.remaining <= 0 {
			continue // done, awaiting collection
		}
		if f.rate < 0 || math.IsNaN(f.rate) {
			t.Fatalf("flow %q has invalid rate %v", f.name, f.rate)
		}
		if f.cap > 0 && f.rate > f.cap*(1+1e-6) {
			t.Fatalf("flow %q rate %v above its cap %v", f.name, f.rate, f.cap)
		}
		if f.cap > 0 && f.rate >= f.cap*(1-1e-6) {
			continue // cap-limited
		}
		saturated := false
		for _, u := range f.uses {
			if r := u.Resource; r.load >= r.capacity*(1-1e-6) {
				saturated = true
				break
			}
		}
		if !saturated {
			t.Fatalf("flow %q (rate %v, cap %v) is neither cap-limited nor bottlenecked on a saturated resource",
				f.name, f.rate, f.cap)
		}
	}
}

// checkDifferential asserts every rate and load matches a fresh
// reference solve within one ulp.
func checkDifferential(t *testing.T, m *Model) {
	t.Helper()
	rates, loads := m.referenceRates()
	for i, f := range m.flows {
		if !ulpEq(f.rate, rates[i]) {
			t.Fatalf("flow %q: incremental rate %x, reference %x", f.name, f.rate, rates[i])
		}
	}
	for i, r := range m.resources {
		if !ulpEq(r.load, loads[i]) {
			t.Fatalf("resource %q: incremental load %x, reference %x", r.name, r.load, loads[i])
		}
	}
}

// TestPropertyMaxMinInvariants storms random worlds with mutations and
// checks feasibility + bottleneck optimality after every step.
func TestPropertyMaxMinInvariants(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := sim.NewKernel(seed)
		m := NewModel(k)
		m.differential = false
		res, flows := randomWorld(rng, m, 1+rng.Intn(12), 1+rng.Intn(25))
		checkMaxMin(t, m)
		for step := 0; step < 30; step++ {
			mutate(rng, k, m, res, &flows)
			checkMaxMin(t, m)
		}
	}
}

// TestPropertyDifferential storms random worlds and checks the
// incremental allocation against the reference solver — both through
// the oracle armed on every resolve and explicitly after every step.
func TestPropertyDifferential(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := sim.NewKernel(seed)
		m := NewModel(k)
		m.differential = true // oracle panics mid-resolve on divergence
		res, flows := randomWorld(rng, m, 1+rng.Intn(12), 1+rng.Intn(25))
		for step := 0; step < 30; step++ {
			mutate(rng, k, m, res, &flows)
			checkDifferential(t, m)
		}
		// Drain so pending completions resolve under the oracle too.
		k.RunUntil(k.Now().Add(sim.Duration(30 * sim.Second)))
		checkDifferential(t, m)
	}
}

// TestPropertySymmetricFlows checks the fairness axiom directly: two
// flows with identical uses, priority and cap must get bitwise-equal
// rates (they are fixed in the same progressive-filling round from the
// same threshold).
func TestPropertySymmetricFlows(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := sim.NewKernel(seed)
		m := NewModel(k)
		m.differential = false
		res, _ := randomWorld(rng, m, 1+rng.Intn(8), rng.Intn(15))
		spec := FlowSpec{Name: "twin", Work: 1e6, Priority: 0.5 + rng.Float64()*3}
		for _, ri := range rng.Perm(len(res))[:1+rng.Intn(min(3, len(res)))] {
			spec.Uses = append(spec.Uses, Use{res[ri], 0.25 + rng.Float64()*3.75})
		}
		if rng.Intn(2) == 0 {
			spec.Cap = 1 + rng.Float64()*50
		}
		a := m.Start(spec)
		b := m.Start(spec)
		if a.rate != b.rate {
			t.Fatalf("seed %d: symmetric flows diverge: %x vs %x", seed, a.rate, b.rate)
		}
		// Still symmetric after unrelated churn in the same component.
		m.Start(spec)
		if a.rate != b.rate {
			t.Fatalf("seed %d: symmetry broken by churn: %x vs %x", seed, a.rate, b.rate)
		}
	}
}

// TestDifferentialTransientCompletion replays the scenario that once
// tripped the oracle mid-resolve: a flow completes in one component
// while a mutation re-solves a different component at the same
// instant. The incremental solver leaves the completed flow's
// component untouched until collection; the final states must agree.
func TestDifferentialTransientCompletion(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	m.differential = true
	busA := m.NewResource("busA", 10)
	busB := m.NewResource("busB", 10)
	short := m.Start(FlowSpec{Name: "short", Work: 5, Uses: []Use{{busA, 1}}})
	m.Start(FlowSpec{Name: "longA", Work: 1e6, Uses: []Use{{busA, 1}}})
	other := m.Start(FlowSpec{Name: "longB", Work: 1e6, Uses: []Use{{busB, 1}}})

	// Run to the exact completion instant of `short`, then immediately
	// mutate busB's component: the resolve triggered by SetCap sees
	// `short` done-but-uncollected in busA's component.
	k.RunUntil(k.Now().Add(sim.Duration(1 * sim.Second)))
	if !short.finished {
		t.Fatal("short flow should have completed")
	}
	m.SetCap(other, 3)
	checkDifferential(t, m)

	// longA must now own all of busA (short's share redistributed).
	if got := busA.load; !ulpEq(got, 10) {
		t.Fatalf("busA load = %v, want saturated at 10", got)
	}
}

// TestSwapRemoveExactness pins the subtle half of the equivalence
// argument: cancelling a flow swap-moves the last flow earlier in the
// global order, which permutes progressive filling's fix order inside
// that flow's component — the remover must re-solve the moved flow's
// component too, or rates drift by ulps. A dedicated test because only
// unlucky arithmetic exposes it.
func TestSwapRemoveExactness(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		k := sim.NewKernel(seed)
		m := NewModel(k)
		m.differential = true
		_, flows := randomWorld(rng, m, 2+rng.Intn(6), 8+rng.Intn(12))
		// Cancel from the front, so every removal moves a later flow
		// (usually from another component) into the vacated slot.
		for i := 0; i < len(flows)/2; i++ {
			m.Cancel(flows[i])
			checkDifferential(t, m)
		}
	}
}
