package fluid

import (
	"fmt"
	"math"
)

// This file keeps the original whole-model, map-based progressive
// filling solver. It is not used on the simulation hot path; it exists
// as the ground truth the incremental solver is checked against:
//
//   - Model.UseReference(true) swaps it in for every re-solve, giving
//     benchmarks and tests an apples-to-apples baseline.
//   - SetDifferential(true) shadows every incremental solve with this
//     solver and panics if any rate or load disagrees by more than one
//     ulp (the oracle behind `cmd/interference -verify` and the
//     property suite).
//
// The arithmetic here — iteration orders, clamp thresholds, the order
// of additions and subtractions — is a line-for-line copy of the
// pre-incremental solver, so its results define what "byte-identical
// goldens" means.

// solveReferenceInPlace recomputes every flow rate and resource load
// from scratch with the original algorithm, writing the results into
// the model (rates into flows, loads into resources).
func (m *Model) solveReferenceInPlace() {
	m.solves++
	n := len(m.flows)
	for _, r := range m.resources {
		r.load = 0
	}
	if n == 0 {
		return
	}
	avail := make(map[*Resource]float64, len(m.resources))
	wsum := make(map[*Resource]float64, len(m.resources))
	for _, r := range m.resources {
		avail[r] = r.capacity
	}
	fixed := make([]bool, n)
	for i, f := range m.flows {
		f.rate = 0
		if f.remaining <= 0 {
			// Already-done flows (awaiting collection) consume nothing.
			fixed[i] = true
			continue
		}
		for _, u := range f.uses {
			wsum[u.Resource] += u.Weight * f.priority
		}
	}
	remaining := 0
	for i := range fixed {
		if !fixed[i] {
			remaining++
		}
	}
	for remaining > 0 {
		// Candidate fair normalised rate: the tightest bottleneck.
		bottleneck := (*Resource)(nil)
		fair := math.Inf(1)
		for _, r := range m.resources {
			if wsum[r] <= 0 {
				continue
			}
			c := avail[r] / wsum[r]
			if c < fair {
				fair = c
				bottleneck = r
			}
		}
		// Candidate: the smallest normalised cap among unfixed flows.
		capMin := math.Inf(1)
		for i, f := range m.flows {
			if !fixed[i] && f.cap > 0 {
				if c := f.cap / f.priority; c < capMin {
					capMin = c
				}
			}
		}
		switch {
		case capMin < fair:
			// Fix every unfixed flow whose normalised cap is the minimum.
			for i, f := range m.flows {
				if fixed[i] || f.cap <= 0 || f.cap/f.priority > capMin {
					continue
				}
				m.fixReference(f, capMin, avail, wsum)
				fixed[i] = true
				remaining--
			}
		case bottleneck != nil:
			// Fix every unfixed flow using the bottleneck at the fair rate.
			for i, f := range m.flows {
				if fixed[i] {
					continue
				}
				uses := false
				for _, u := range f.uses {
					if u.Resource == bottleneck {
						uses = true
						break
					}
				}
				if !uses {
					continue
				}
				m.fixReference(f, fair, avail, wsum)
				fixed[i] = true
				remaining--
			}
		default:
			// No bottleneck and no cap below it: flows whose every
			// resource already drained to zero availability. Their fair
			// share is zero.
			for i, f := range m.flows {
				if !fixed[i] {
					f.rate = 0
					fixed[i] = true
					remaining--
				}
			}
		}
	}
	for _, f := range m.flows {
		for _, u := range f.uses {
			u.Resource.load += u.Weight * f.rate
		}
	}
}

// fixReference is the original fix: assign the normalised rate (scaled
// by priority) and withdraw the flow's consumption from the maps.
func (m *Model) fixReference(f *Flow, normRate float64, avail, wsum map[*Resource]float64) {
	f.rate = normRate * f.priority
	if f.cap > 0 && f.rate > f.cap {
		f.rate = f.cap
	}
	for _, u := range f.uses {
		avail[u.Resource] -= u.Weight * f.rate
		if avail[u.Resource] < 0 {
			avail[u.Resource] = 0
		}
		wsum[u.Resource] -= u.Weight * f.priority
		if wsum[u.Resource] < 1e-12 {
			wsum[u.Resource] = 0
		}
	}
}

// referenceRates runs the reference solver without touching model
// state and returns the rate of each flow (indexed like m.flows) and
// the load of each resource (indexed by Resource.id).
func (m *Model) referenceRates() (rates []float64, loads []float64) {
	// Save, solve in place, harvest, restore. The model is
	// single-threaded (driven by one sim kernel), so this is safe.
	savedRates := make([]float64, len(m.flows))
	for i, f := range m.flows {
		savedRates[i] = f.rate
	}
	savedLoads := make([]float64, len(m.resources))
	for i, r := range m.resources {
		savedLoads[i] = r.load
	}
	savedSolves := m.solves

	m.solveReferenceInPlace()

	rates = make([]float64, len(m.flows))
	for i, f := range m.flows {
		rates[i] = f.rate
	}
	loads = make([]float64, len(m.resources))
	for i, r := range m.resources {
		loads[i] = r.load
	}

	for i, f := range m.flows {
		f.rate = savedRates[i]
	}
	for i, r := range m.resources {
		r.load = savedLoads[i]
	}
	m.solves = savedSolves
	return rates, loads
}

// ulpEq reports whether a and b are equal or adjacent floating-point
// values (within one ulp).
func ulpEq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Nextafter(a, b) == b
}

// checkOracle compares the incremental solver's current allocation
// against a fresh reference solve and panics on any disagreement
// beyond one ulp. (In practice the two are bit-identical — see the
// equivalence argument in DESIGN.md §4 — the ulp slack only exists so
// a hypothetical future divergence produces a clear message instead of
// a golden-file diff.)
func (m *Model) checkOracle() {
	rates, loads := m.referenceRates()
	for i, f := range m.flows {
		if !ulpEq(f.rate, rates[i]) {
			panic(errOracle("flow", f.name, f.rate, rates[i]))
		}
	}
	for i, r := range m.resources {
		if !ulpEq(r.load, loads[i]) {
			panic(errOracle("resource", r.name, r.load, loads[i]))
		}
	}
}

func errOracle(kind, name string, got, want float64) string {
	// %x prints the exact hex-float value, so a report pins down the
	// bit pattern, not a rounded decimal.
	return fmt.Sprintf("fluid: differential oracle: %s %q incremental=%x reference=%x",
		kind, name, got, want)
}
