package fluid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSingleFlowSingleResource(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	r := m.NewResource("bus", 100) // 100 units/s
	var doneAt sim.Time
	m.StartFlow("f", 50, 0, []Use{{r, 1}}, func() { doneAt = k.Now() })
	k.Run()
	// 50 units at 100/s = 0.5 s.
	if doneAt != sim.Time(500*sim.Millisecond) {
		t.Fatalf("done at %v, want 0.5s", doneAt)
	}
}

func TestEqualSharing(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	r := m.NewResource("bus", 100)
	f1 := m.StartFlow("a", 100, 0, []Use{{r, 1}}, nil)
	f2 := m.StartFlow("b", 100, 0, []Use{{r, 1}}, nil)
	if !almost(f1.Rate(), 50, 1e-9) || !almost(f2.Rate(), 50, 1e-9) {
		t.Fatalf("rates %v %v, want 50 each", f1.Rate(), f2.Rate())
	}
	if !almost(r.Utilization(), 1.0, 1e-9) {
		t.Fatalf("utilization %v, want 1", r.Utilization())
	}
}

func TestWeightedSharing(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	r := m.NewResource("bus", 90)
	// Weight-2 flow consumes twice the capacity per unit of progress.
	f1 := m.StartFlow("heavy", 100, 0, []Use{{r, 2}}, nil)
	f2 := m.StartFlow("light", 100, 0, []Use{{r, 1}}, nil)
	// fair = 90/3 = 30 for both; heavy consumes 60, light 30.
	if !almost(f1.Rate(), 30, 1e-9) || !almost(f2.Rate(), 30, 1e-9) {
		t.Fatalf("rates %v %v, want 30 each", f1.Rate(), f2.Rate())
	}
}

func TestRateCapFreesCapacityForOthers(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	r := m.NewResource("bus", 100)
	capped := m.StartFlow("capped", 1000, 10, []Use{{r, 1}}, nil)
	free := m.StartFlow("free", 1000, 0, []Use{{r, 1}}, nil)
	if !almost(capped.Rate(), 10, 1e-9) {
		t.Fatalf("capped rate %v, want 10", capped.Rate())
	}
	if !almost(free.Rate(), 90, 1e-9) {
		t.Fatalf("free rate %v, want 90 (leftover)", free.Rate())
	}
}

func TestTwoResourceBottleneck(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	wide := m.NewResource("wide", 100)
	narrow := m.NewResource("narrow", 10)
	// Flow crossing both is limited by the narrow one.
	f := m.StartFlow("cross", 100, 0, []Use{{wide, 1}, {narrow, 1}}, nil)
	other := m.StartFlow("wide-only", 100, 0, []Use{{wide, 1}}, nil)
	if !almost(f.Rate(), 10, 1e-9) {
		t.Fatalf("crossing rate %v, want 10", f.Rate())
	}
	if !almost(other.Rate(), 90, 1e-9) {
		t.Fatalf("wide-only rate %v, want 90", other.Rate())
	}
}

func TestCompletionRedistributesBandwidth(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	r := m.NewResource("bus", 100)
	var shortDone, longDone sim.Time
	m.StartFlow("short", 50, 0, []Use{{r, 1}}, func() { shortDone = k.Now() })
	m.StartFlow("long", 100, 0, []Use{{r, 1}}, func() { longDone = k.Now() })
	k.Run()
	// Both run at 50/s. short finishes at t=1s with long having 50 left;
	// long then runs at 100/s, finishing 0.5s later at t=1.5s.
	if !almost(shortDone.Sub(0).Seconds(), 1.0, 1e-6) {
		t.Fatalf("short done at %v, want 1s", shortDone)
	}
	if !almost(longDone.Sub(0).Seconds(), 1.5, 1e-6) {
		t.Fatalf("long done at %v, want 1.5s", longDone)
	}
}

func TestCancelRedistributes(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	r := m.NewResource("bus", 100)
	f1 := m.StartFlow("a", 1e9, 0, []Use{{r, 1}}, nil)
	f2 := m.StartFlow("b", 1e9, 0, []Use{{r, 1}}, nil)
	m.Cancel(f1)
	if !f1.Finished() {
		t.Fatal("cancelled flow not finished")
	}
	if !almost(f2.Rate(), 100, 1e-9) {
		t.Fatalf("survivor rate %v, want 100", f2.Rate())
	}
}

func TestSetCapacityMidFlight(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	r := m.NewResource("bus", 100)
	var doneAt sim.Time
	m.StartFlow("f", 100, 0, []Use{{r, 1}}, func() { doneAt = k.Now() })
	// After 0.5s (50 units done), halve the capacity: the remaining 50
	// units take 1s more → total 1.5s.
	k.After(sim.Duration(500*sim.Millisecond), func() { m.SetCapacity(r, 50) })
	k.Run()
	if !almost(doneAt.Sub(0).Seconds(), 1.5, 1e-6) {
		t.Fatalf("done at %v, want 1.5s", doneAt)
	}
}

func TestSetCapMidFlight(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	var doneAt sim.Time
	f := m.StartFlow("cpu", 100, 100, nil, func() { doneAt = k.Now() })
	// Frequency drop halfway: cap 100 → 25. 50 done at 0.5s, remaining 50
	// at 25/s = 2s → total 2.5s.
	k.After(sim.Duration(500*sim.Millisecond), func() { m.SetCap(f, 25) })
	k.Run()
	if !almost(doneAt.Sub(0).Seconds(), 2.5, 1e-6) {
		t.Fatalf("done at %v, want 2.5s", doneAt)
	}
}

func TestZeroWorkCompletesImmediately(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	r := m.NewResource("bus", 100)
	done := false
	m.StartFlow("zero", 0, 0, []Use{{r, 1}}, func() { done = true })
	k.Run()
	if !done || k.Now() != 0 {
		t.Fatalf("zero-work flow: done=%v at %v", done, k.Now())
	}
}

func TestExecBlocksProcess(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	r := m.NewResource("bus", 100)
	var d sim.Duration
	k.Spawn("worker", func(p *sim.Proc) {
		d = m.Exec(p, "work", 200, 0, []Use{{r, 1}})
	})
	k.Run()
	if !almost(d.Seconds(), 2.0, 1e-6) {
		t.Fatalf("Exec took %v, want 2s", d)
	}
	if k.LiveProcs() != 0 {
		t.Fatal("leaked process")
	}
}

func TestManyFlowsFairShare(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	r := m.NewResource("ctrl", 64e9) // 64 GB/s controller
	const n = 35
	flows := make([]*Flow, n)
	for i := range flows {
		flows[i] = m.StartFlow("stream", 1e12, 7e9, []Use{{r, 1}}, nil)
	}
	// 35 streams capped at 7 GB/s share 64 GB/s: fair = 64/35 ≈ 1.83 GB/s.
	want := 64e9 / n
	for i, f := range flows {
		if !almost(f.Rate(), want, 1) {
			t.Fatalf("flow %d rate %v, want %v", i, f.Rate(), want)
		}
	}
	// A DMA flow with arbitration priority 4 gets a 4x larger share of the
	// contended controller than each core stream.
	dma := m.Start(FlowSpec{Name: "dma", Work: 1e12, Cap: 12.5e9, Priority: 4, Uses: []Use{{r, 1}}})
	if dma.Rate() <= want*3 {
		t.Fatalf("prioritised DMA rate %v not ~4x fair share %v", dma.Rate(), want)
	}
}

// Property: total consumption never exceeds capacity, and no flow with a
// cap exceeds it.
func TestPropertyConservation(t *testing.T) {
	f := func(seed int64, nf uint8, nr uint8) bool {
		k := sim.NewKernel(seed)
		m := NewModel(k)
		rng := k.Rand()
		nres := int(nr%4) + 1
		res := make([]*Resource, nres)
		for i := range res {
			res[i] = m.NewResource("r", 10+rng.Float64()*90)
		}
		nflows := int(nf%12) + 1
		for i := 0; i < nflows; i++ {
			var uses []Use
			for _, r := range res {
				if rng.Intn(2) == 0 {
					uses = append(uses, Use{r, 0.5 + rng.Float64()*2})
				}
			}
			cap := 0.0
			if rng.Intn(3) == 0 || len(uses) == 0 {
				cap = 1 + rng.Float64()*50
			}
			m.StartFlow("f", 1e6, cap, uses, nil)
		}
		// Check feasibility of the solved allocation.
		for _, r := range res {
			if r.load > r.capacity*(1+1e-9) {
				return false
			}
		}
		for _, fl := range m.flows {
			if fl.cap > 0 && fl.rate > fl.cap*(1+1e-9) {
				return false
			}
			if fl.rate < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: max-min fairness — a flow's rate can only be below another's
// if some resource it uses is saturated.
func TestPropertyMaxMinFair(t *testing.T) {
	k := sim.NewKernel(7)
	m := NewModel(k)
	r1 := m.NewResource("r1", 100)
	r2 := m.NewResource("r2", 30)
	fa := m.StartFlow("a", 1e9, 0, []Use{{r1, 1}}, nil)
	fb := m.StartFlow("b", 1e9, 0, []Use{{r1, 1}, {r2, 1}}, nil)
	fc := m.StartFlow("c", 1e9, 0, []Use{{r2, 1}}, nil)
	// b and c share r2: 15 each. a then gets 100-15=85 on r1.
	if !almost(fb.Rate(), 15, 1e-9) || !almost(fc.Rate(), 15, 1e-9) {
		t.Fatalf("rates b=%v c=%v, want 15", fb.Rate(), fc.Rate())
	}
	if !almost(fa.Rate(), 85, 1e-9) {
		t.Fatalf("rate a=%v, want 85", fa.Rate())
	}
	if !almost(r2.Utilization(), 1, 1e-9) {
		t.Fatalf("r2 utilization %v, want 1 (saturated)", r2.Utilization())
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	expectPanic("zero capacity", func() { m.NewResource("bad", 0) })
	expectPanic("no uses no cap", func() { m.StartFlow("bad", 1, 0, nil, nil) })
	r := m.NewResource("ok", 1)
	expectPanic("bad weight", func() { m.StartFlow("bad", 1, 0, []Use{{r, 0}}, nil) })
	expectPanic("negative work", func() { m.StartFlow("bad", -1, 1, nil, nil) })
}

func TestUtilizationPartial(t *testing.T) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	r := m.NewResource("bus", 100)
	m.StartFlow("f", 1e9, 25, []Use{{r, 1}}, nil)
	if !almost(r.Utilization(), 0.25, 1e-9) {
		t.Fatalf("utilization %v, want 0.25", r.Utilization())
	}
}
