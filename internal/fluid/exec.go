package fluid

import "repro/internal/sim"

// Exec runs a flow to completion on behalf of process p, blocking p
// until the work is done. It returns the elapsed simulated duration.
func (m *Model) Exec(p *sim.Proc, name string, work, cap float64, uses []Use) sim.Duration {
	start := p.Now()
	done := sim.NewSignal(m.k)
	m.StartFlow(name, work, cap, uses, done.Broadcast)
	done.Wait(p)
	return p.Now().Sub(start)
}
