package fluid

import (
	"testing"

	"repro/internal/sim"
)

// Solver benchmarks, in incremental/reference pairs so BENCH_sim.json
// can report the speedup and allocation ratios directly. The
// *PaperScale variants use the shape of the paper's experiments: a
// henri-node-sized resource graph (2 NUMA nodes: controllers, inter-die
// link, per-core ports) with 35 concurrent flows — the largest flow
// count any figure drives through one node.

// benchTopology builds ~20 resources with 40 flows spread across them,
// the scale of a loaded node.
func benchTopology(b *testing.B) *Model {
	b.Helper()
	k := sim.NewKernel(1)
	m := NewModel(k)
	m.differential = false
	var res []*Resource
	for i := 0; i < 20; i++ {
		res = append(res, m.NewResource("r", 50e9))
	}
	for i := 0; i < 40; i++ {
		uses := []Use{{res[i%20], 1}}
		if i%3 == 0 {
			uses = append(uses, Use{res[(i+7)%20], 1})
		}
		m.StartFlow("f", 1e18, 12e9, uses, nil)
	}
	return m
}

// paperTopology models a henri node at paper scale: 2 NUMA domains,
// each with a memory controller and 8 core ports, plus the UPI link —
// 19 resources — loaded with 35 flows (compute kernels pinned to a
// port+controller, memory streams crossing the link).
func paperTopology(b *testing.B) *Model {
	b.Helper()
	k := sim.NewKernel(1)
	m := NewModel(k)
	m.differential = false
	ctrl := []*Resource{m.NewResource("numa0.mc", 45e9), m.NewResource("numa1.mc", 45e9)}
	upi := m.NewResource("upi", 20e9)
	var ports []*Resource
	for i := 0; i < 16; i++ {
		ports = append(ports, m.NewResource("port", 15e9))
	}
	for i := 0; i < 35; i++ {
		port := ports[i%16]
		local := ctrl[(i%16)/8]
		uses := []Use{{port, 1}, {local, 1}}
		if i%4 == 0 { // remote accesses cross the inter-die link
			uses = append(uses, Use{upi, 1}, Use{ctrl[1-(i%16)/8], 1})
		}
		m.StartFlow("k", 1e18, 14e9, uses, nil)
	}
	return m
}

// BenchmarkSolve measures one full progressive-filling pass of the
// incremental solver (all components dirty) at loaded-node scale.
func BenchmarkSolve(b *testing.B) {
	m := benchTopology(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.solveAll()
	}
}

// BenchmarkSolveReference is the same pass through the original
// map-based whole-model solver.
func BenchmarkSolveReference(b *testing.B) {
	m := benchTopology(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.solveReferenceInPlace()
	}
}

// BenchmarkSolvePaperScale is a full pass over the henri-sized graph
// with 35 flows.
func BenchmarkSolvePaperScale(b *testing.B) {
	m := paperTopology(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.solveAll()
	}
}

// churn runs start+cancel cycles (each triggers a re-solve) against a
// loaded-node model — the dominant cost of fine-grained kernels. The
// uses slice lives outside the loop: Start copies it, so steady-state
// churn allocates only the Flow struct itself.
func churn(b *testing.B, m *Model) {
	b.Helper()
	uses := []Use{{m.resources[0], 1}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := m.StartFlow("churn", 1e12, 12e9, uses, nil)
		m.Cancel(f)
	}
}

func BenchmarkFlowChurn(b *testing.B) {
	churn(b, benchTopology(b))
}

func BenchmarkFlowChurnReference(b *testing.B) {
	m := benchTopology(b)
	m.UseReference(true)
	churn(b, m)
}

// BenchmarkFlowChurnPaperScale starts and cancels a memory-stream flow
// against the loaded henri-sized graph.
func BenchmarkFlowChurnPaperScale(b *testing.B) {
	churn(b, paperTopology(b))
}
