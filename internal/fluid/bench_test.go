package fluid

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkSolve measures one progressive-filling pass at the scale of
// a loaded henri node: ~20 resources, ~40 flows.
func BenchmarkSolve(b *testing.B) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	var res []*Resource
	for i := 0; i < 20; i++ {
		res = append(res, m.NewResource("r", 50e9))
	}
	for i := 0; i < 40; i++ {
		uses := []Use{{res[i%20], 1}}
		if i%3 == 0 {
			uses = append(uses, Use{res[(i+7)%20], 1})
		}
		m.StartFlow("f", 1e18, 12e9, uses, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.solve()
	}
}

// BenchmarkFlowChurn measures start+cancel cycles (each triggers a
// re-solve), the dominant cost of fine-grained kernels.
func BenchmarkFlowChurn(b *testing.B) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	r := m.NewResource("bus", 50e9)
	for i := 0; i < 30; i++ {
		m.StartFlow("bg", 1e18, 2e9, []Use{{r, 1}}, nil)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := m.StartFlow("churn", 1e12, 12e9, []Use{{r, 1}}, nil)
		m.Cancel(f)
	}
}
