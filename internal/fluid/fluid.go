// Package fluid implements a weighted max-min fair bandwidth-sharing
// model over a set of resources (memory controllers, inter-NUMA links,
// PCIe lanes, network wires) and flows (compute kernels, memory streams,
// DMA transfers).
//
// This is the classic fluid model used by network and platform simulators
// (e.g. SimGrid): each flow f gets a single rate r_f; for every resource
// R with capacity C_R, the constraint sum over flows on R of w_{f,R}·r_f
// ≤ C_R must hold; the solver maximises the allocation in max-min order
// using progressive filling. A flow may additionally carry a private rate
// cap (e.g. a core's peak flop rate at its current frequency).
//
// The model is driven by a sim.Kernel: whenever the flow set or a
// capacity changes, rates are re-solved and the next flow completion is
// (re)scheduled as a simulation event.
//
// # Solver implementation
//
// The solver is incremental: resources and flows carry dense integer
// indices into preallocated scratch arrays, every resource keeps an
// adjacency list of the flows crossing it, and a mutation (flow
// add/remove, cap or capacity change) re-solves only the connected
// component of the resource/flow bipartite graph that the mutation
// touched — flows in unrelated components keep their rates. The
// restriction is exact, not approximate: progressive filling fixes
// flows in ascending threshold order and a fix only mutates the
// availability/weight bookkeeping of the resources that flow crosses,
// so the sequence of floating-point operations applied to a component
// is bit-for-bit the one a full re-solve would apply (see
// reference.go for the original whole-model solver, kept as the
// differential oracle, and DESIGN.md §4 for the equivalence argument).
package fluid

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Resource is a shared capacity (units/second, typically bytes/s or
// flops/s). Capacity may change during the simulation (e.g. uncore
// frequency scaling a memory controller).
type Resource struct {
	name     string
	capacity float64
	model    *Model
	// load is the sum of w·r over current flows, maintained by solve.
	load float64
	// id is the dense index into the model's scratch arrays.
	id int
	// flows lists the active flows crossing this resource (the
	// adjacency the incremental solver walks to find the touched
	// connected component).
	flows []resUse
	// mark is the epoch stamp of the last component traversal that
	// visited this resource.
	mark uint64
}

// resUse is one edge of the resource→flow adjacency: the flow and the
// position of this resource in the flow's uses list (so removal can fix
// up the back-pointers of the entry swapped into the hole).
type resUse struct {
	f   *Flow
	idx int
}

// Name returns the resource name given at creation.
func (r *Resource) Name() string { return r.name }

// Capacity returns the current capacity in units/second.
func (r *Resource) Capacity() float64 { return r.capacity }

// Utilization returns load/capacity in [0,1] under the current
// allocation. It is the quantity the latency model reads: a memory
// access crossing a bus at utilization ρ sees queueing delay growing
// with ρ.
func (r *Resource) Utilization() float64 {
	if r.capacity <= 0 {
		if r.load > 0 {
			return 1
		}
		return 0
	}
	u := r.load / r.capacity
	if u > 1 {
		u = 1
	}
	return u
}

// Use couples a flow to a resource: the flow consumes weight·rate of the
// resource's capacity. Weight 1 is the common case; weights >1 model
// flows that stress a resource more per unit of progress (e.g. a COPY
// stream reads and writes), weights <1 model flows that get hardware
// arbitration preference (e.g. NIC DMA engines).
type Use struct {
	Resource *Resource
	Weight   float64
}

// Flow is an ongoing activity with a fixed amount of remaining work.
type Flow struct {
	model     *Model
	name      string
	remaining float64
	total     float64
	rate      float64
	cap       float64 // private rate bound; 0 means unbounded
	priority  float64 // rate multiplier in the fair allocation; ≥ default 1
	uses      []Use   // model-owned copy of the spec's uses (pooled)
	usePos    []int   // position of this flow in each use's resource list
	onDone    func()
	started   sim.Time
	finished  bool
	pooled    bool   // parked on the model's flow free list
	index     int    // position in model.flows, -1 when removed
	mark      uint64 // component-traversal epoch stamp
}

// FlowSpec describes a flow to start.
type FlowSpec struct {
	Name string
	// Work is the amount to transfer/compute, in resource units.
	Work float64
	// Cap bounds the flow's rate; 0 means unbounded by the flow itself.
	Cap float64
	// Priority scales the flow's share of a contended resource: under
	// max-min fairness the flow's rate is Priority times the fair unit.
	// Hardware DMA engines, which win memory-controller arbitration
	// against core streams, get Priority > 1. Zero means 1.
	Priority float64
	// Uses lists the resources crossed, with consumption weights. The
	// slice is copied into model-owned (pooled) storage at Start, so
	// callers may reuse a scratch buffer across starts.
	Uses []Use
	// OnDone, if non-nil, runs as a simulation event at completion.
	OnDone func()
}

// Name returns the flow name.
func (f *Flow) Name() string { return f.name }

// Rate returns the currently allocated rate (units/second).
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the work left, after accounting progress up to the
// current instant.
func (f *Flow) Remaining() float64 {
	f.model.advance()
	return f.remaining
}

// Total returns the work the flow started with.
func (f *Flow) Total() float64 { return f.total }

// Finished reports whether the flow has completed (or was cancelled).
func (f *Flow) Finished() bool { return f.finished }

// Started returns the instant the flow was started.
func (f *Flow) Started() sim.Time { return f.started }

// Model owns resources and flows and keeps the piecewise-constant rate
// allocation in sync with the simulation clock.
type Model struct {
	k          *sim.Kernel
	resources  []*Resource
	flows      []*Flow
	lastUpdate sim.Time
	next       *sim.Timer // reusable next-completion event
	solves     uint64
	epoch      uint64 // component-traversal epoch

	// reference forces the original whole-model map-based solver on
	// every re-solve (benchmarks and differential tests).
	reference bool
	// differential re-runs the reference solver after every incremental
	// solve and panics if any rate or load disagrees by more than one
	// ulp — the oracle guarding golden verification runs.
	differential bool

	// dirty seeds accumulated since the last solve: the incremental
	// solver re-solves the union of the connected components reachable
	// from them.
	dirtyFlows []*Flow
	dirtyRes   []*Resource

	// Scratch buffers, reused across solves so the steady state
	// allocates nothing. avail/wsum are indexed by Resource.id.
	avail     []float64
	wsum      []float64
	fixed     []bool
	compFlows []*Flow
	compRes   []*Resource
	resQ      []*Resource
	done      []*Flow

	// Free lists for the model-owned per-flow bookkeeping arrays,
	// recycled when a flow is removed, and for Flow structs explicitly
	// returned with Recycle.
	freeUses  [][]Use
	freePos   [][]int
	freeFlows []*Flow
}

// NewModel returns an empty fluid model driven by kernel k.
func NewModel(k *sim.Kernel) *Model {
	m := &Model{k: k, differential: differentialDefault}
	m.next = k.NewTimer(func() {
		m.advance()
		m.resolve()
	})
	return m
}

// Solves reports how many times an allocation was recomputed (full or
// component-scoped; for performance diagnostics).
func (m *Model) Solves() uint64 { return m.solves }

// Version tags the solver's numerical behaviour. Bump it whenever a
// change can alter any computed rate or completion time by even an ulp:
// it is folded into content-addressed result-cache keys (see
// internal/runner), so stale cached measurements are recomputed instead
// of replayed against a different solver.
const Version = 1

// differentialDefault seeds the differential flag of newly created
// models; set it with SetDifferential before building any world.
var differentialDefault bool

// SetDifferential toggles the differential oracle for models created
// afterwards: every incremental solve is shadowed by the reference
// solver and any disagreement beyond one ulp panics. Roughly doubles
// solver cost; meant for golden-verification runs and tests. Not safe
// to call concurrently with model creation.
func SetDifferential(on bool) { differentialDefault = on }

// UseReference forces the original whole-model map-based solver for
// every subsequent re-solve of this model. Benchmarks and equivalence
// tests only.
func (m *Model) UseReference(on bool) { m.reference = on }

// NewResource registers a resource with the given capacity in
// units/second. Capacity must be positive.
func (m *Model) NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("fluid: resource %q capacity %v must be positive", name, capacity))
	}
	r := &Resource{name: name, capacity: capacity, model: m, id: len(m.resources)}
	m.resources = append(m.resources, r)
	m.avail = append(m.avail, 0)
	m.wsum = append(m.wsum, 0)
	return r
}

// SetCapacity changes a resource's capacity and re-solves the
// allocation of the component it belongs to. Used for frequency
// scaling.
func (m *Model) SetCapacity(r *Resource, capacity float64) {
	if capacity <= 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("fluid: resource %q capacity %v must be positive", r.name, capacity))
	}
	if r.capacity == capacity {
		return
	}
	m.advance()
	r.capacity = capacity
	m.dirtyRes = append(m.dirtyRes, r)
	m.resolve()
}

// StartFlow begins an activity of `work` units using the given
// resources, with default priority. cap bounds the flow's rate (0 =
// unbounded; a flow with no uses must have cap > 0 or it would finish
// instantly — such flows are rejected). onDone, if non-nil, runs as a
// simulation event when the flow completes.
func (m *Model) StartFlow(name string, work float64, cap float64, uses []Use, onDone func()) *Flow {
	return m.Start(FlowSpec{Name: name, Work: work, Cap: cap, Uses: uses, OnDone: onDone})
}

// Start begins the flow described by spec.
func (m *Model) Start(spec FlowSpec) *Flow {
	if spec.Work < 0 || math.IsNaN(spec.Work) {
		panic(fmt.Sprintf("fluid: flow %q work %v must be non-negative", spec.Name, spec.Work))
	}
	if len(spec.Uses) == 0 && spec.Cap <= 0 {
		panic(fmt.Sprintf("fluid: flow %q has no resources and no rate cap", spec.Name))
	}
	if spec.Priority < 0 {
		panic(fmt.Sprintf("fluid: flow %q has negative priority", spec.Name))
	}
	for _, u := range spec.Uses {
		if u.Weight <= 0 {
			panic(fmt.Sprintf("fluid: flow %q has non-positive weight on %q", spec.Name, u.Resource.name))
		}
		if u.Resource.model != m {
			panic(fmt.Sprintf("fluid: flow %q uses resource %q from another model", spec.Name, u.Resource.name))
		}
	}
	pri := spec.Priority
	if pri == 0 {
		pri = 1
	}
	m.advance()
	var f *Flow
	if n := len(m.freeFlows); n > 0 {
		f = m.freeFlows[n-1]
		m.freeFlows[n-1] = nil
		m.freeFlows = m.freeFlows[:n-1]
	} else {
		f = &Flow{model: m}
	}
	f.name = spec.Name
	f.remaining = spec.Work
	f.total = spec.Work
	f.rate = 0
	f.cap = spec.Cap
	f.priority = pri
	f.onDone = spec.OnDone
	f.started = m.k.Now()
	f.finished = false
	f.pooled = false
	f.index = len(m.flows)
	f.mark = 0
	f.uses, f.usePos = m.newFlowArrays(spec.Uses)
	for i, u := range f.uses {
		r := u.Resource
		f.usePos[i] = len(r.flows)
		r.flows = append(r.flows, resUse{f, i})
	}
	m.flows = append(m.flows, f)
	m.dirtyFlows = append(m.dirtyFlows, f)
	m.resolve()
	return f
}

// newFlowArrays takes a pooled uses/usePos pair (or makes fresh ones)
// and copies spec uses into it.
func (m *Model) newFlowArrays(uses []Use) ([]Use, []int) {
	var u []Use
	var p []int
	if n := len(m.freeUses); n > 0 {
		u = m.freeUses[n-1]
		m.freeUses = m.freeUses[:n-1]
		p = m.freePos[len(m.freePos)-1]
		m.freePos = m.freePos[:len(m.freePos)-1]
	}
	u = append(u[:0], uses...)
	for len(p) < len(uses) {
		p = append(p, 0)
	}
	return u, p[:len(uses)]
}

// SetCap changes a flow's private rate bound and re-solves its
// component. A running compute kernel's cap changes when its core's
// frequency changes.
func (m *Model) SetCap(f *Flow, cap float64) {
	if f.finished {
		return
	}
	if len(f.uses) == 0 && cap <= 0 {
		panic(fmt.Sprintf("fluid: flow %q would have no resources and no cap", f.name))
	}
	if f.cap == cap {
		return
	}
	m.advance()
	f.cap = cap
	m.dirtyFlows = append(m.dirtyFlows, f)
	m.resolve()
}

// Recycle returns a finished (completed or cancelled) flow's storage to
// the model, to be handed out again by a later Start. Only the flow's
// owner may recycle it, and only once nothing else — completion hooks,
// frequency-rescaling bookkeeping, a crash-path waiter — can still
// reach it: the next Start reincarnates the struct as a different flow.
// Recycling an unfinished or already-recycled flow is a no-op.
func (m *Model) Recycle(f *Flow) {
	if f == nil || f.model != m || !f.finished || f.index >= 0 || f.pooled {
		return
	}
	f.pooled = true
	f.onDone = nil
	f.name = ""
	m.freeFlows = append(m.freeFlows, f)
}

// Reset rewinds an idle model (no active flows) to its initial clock
// state, keeping its resources — with their dense ids and creation
// order, which the solver's arithmetic order depends on — and all
// recycled storage. Resource capacities are NOT restored: the caller
// re-applies them from its spec (frequency scaling may have moved
// them). Must be called before the (reset) kernel schedules anything.
func (m *Model) Reset() {
	if len(m.flows) != 0 {
		panic("fluid: Reset with active flows")
	}
	m.next.Stop()
	m.lastUpdate = 0
	m.dirtyFlows = m.dirtyFlows[:0]
	m.dirtyRes = m.dirtyRes[:0]
	m.done = m.done[:0]
	m.solves = 0
}

// Cancel removes a flow without running its completion callback.
func (m *Model) Cancel(f *Flow) {
	if f.finished {
		return
	}
	m.advance()
	for _, u := range f.uses {
		m.dirtyRes = append(m.dirtyRes, u.Resource)
	}
	m.remove(f)
	f.finished = true
	m.resolve()
}

// remove unlinks f from the flow list and from its resources'
// adjacency lists, recycling its bookkeeping arrays.
//
// The global list uses swap-with-last, exactly like the original
// solver: solve order (and therefore the last-ulp floating-point
// behaviour the golden files record) depends on the relative order of
// the surviving flows. A swap moves the last flow earlier, which can
// permute the order *within* that flow's component — so the moved flow
// is marked dirty and its component re-solved, keeping every cached
// component bit-identical to what a full re-solve would compute.
func (m *Model) remove(f *Flow) {
	for i, u := range f.uses {
		r := u.Resource
		pos := f.usePos[i]
		last := len(r.flows) - 1
		moved := r.flows[last]
		r.flows[pos] = moved
		moved.f.usePos[moved.idx] = pos
		r.flows[last] = resUse{}
		r.flows = r.flows[:last]
	}
	m.freeUses = append(m.freeUses, f.uses[:0])
	m.freePos = append(m.freePos, f.usePos[:0])
	f.uses, f.usePos = nil, nil

	lastIdx := len(m.flows) - 1
	g := m.flows[lastIdx]
	m.flows[f.index] = g
	g.index = f.index
	m.flows[lastIdx] = nil
	m.flows = m.flows[:lastIdx]
	f.index = -1
	f.rate = 0
	if g != f {
		m.dirtyFlows = append(m.dirtyFlows, g)
	}
}

// advance accrues progress from lastUpdate to now at the current rates.
func (m *Model) advance() {
	now := m.k.Now()
	if now == m.lastUpdate {
		return
	}
	dt := now.Sub(m.lastUpdate).Seconds()
	m.lastUpdate = now
	for _, f := range m.flows {
		f.remaining -= f.rate * dt
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
}

// epsilon below which remaining work counts as done, relative to the
// flow's rate: anything that would complete within a fraction of a
// nanosecond is complete.
const completeEps = 1e-10 // seconds

// resolve recomputes the rates of every dirty component, fires
// completions due now, and schedules the next completion event.
func (m *Model) resolve() {
	// Completions may themselves add/remove flows from callbacks that run
	// as separate events, so here we only: solve, complete-now, schedule.
	for {
		m.solveDirty()
		done := m.collectDone()
		if len(done) == 0 {
			break
		}
		for _, f := range done {
			// The freed bandwidth redistributes inside f's component(s).
			for _, u := range f.uses {
				m.dirtyRes = append(m.dirtyRes, u.Resource)
			}
			m.remove(f)
			f.finished = true
			if f.onDone != nil {
				// Run as an event so callbacks observe a consistent model
				// and cannot recurse into resolve mid-loop.
				m.k.At(m.k.Now(), f.onDone)
			}
		}
	}
	if m.differential && !m.reference {
		// Check at quiescence, not after each scoped solve: mid-loop, a
		// done-but-uncollected flow in an untouched component transiently
		// keeps its old rate (the reference zeroes it a loop iteration
		// early), and both states converge once the flow is removed.
		m.checkOracle()
	}
	m.schedule()
}

// collectDone returns flows whose remaining work is (numerically) zero,
// in a scratch slice reused across calls.
func (m *Model) collectDone() []*Flow {
	m.done = m.done[:0]
	for _, f := range m.flows {
		if f.remaining <= 0 || (f.rate > 0 && f.remaining/f.rate < completeEps) {
			m.done = append(m.done, f)
		}
	}
	return m.done
}

// schedule arms the next-completion event.
func (m *Model) schedule() {
	m.next.Stop()
	best := math.Inf(1)
	for _, f := range m.flows {
		if f.rate > 0 {
			if t := f.remaining / f.rate; t < best {
				best = t
			}
		}
	}
	// Effectively-never completions (e.g. quasi-infinite background
	// flows) are not scheduled at all; they are cancelled explicitly.
	const horizon = 1e8 // seconds of simulated time, ≈3 years
	if math.IsInf(best, 1) || best > horizon {
		return
	}
	m.next.ArmAfter(sim.DurationOfSeconds(best))
}

// solveDirty re-solves the union of the connected components reachable
// from the dirty seeds accumulated since the last solve. With no seeds
// it is a no-op: a completion event, for example, changes no
// constraint until the finished flow is removed.
func (m *Model) solveDirty() {
	if m.reference {
		m.dirtyFlows = m.dirtyFlows[:0]
		m.dirtyRes = m.dirtyRes[:0]
		m.solveReferenceInPlace()
		return
	}
	if len(m.dirtyFlows) == 0 && len(m.dirtyRes) == 0 {
		return
	}
	m.collectComponent()
	m.solveScoped()
}

// collectComponent walks the resource/flow bipartite graph from the
// dirty seeds and fills compFlows/compRes with the touched component(s)
// in canonical order: flows in global flow-list order, resources in
// creation order — the orders the whole-model solver iterates in, so
// the scoped solve below replays its exact arithmetic.
//
// Flows with no remaining work are members (their rate must drop to
// zero like a full solve would) but do not propagate connectivity:
// they contribute nothing to any resource constraint.
func (m *Model) collectComponent() {
	m.epoch++
	epoch := m.epoch
	q := m.resQ[:0]
	nFlows, nRes := 0, 0

	for _, r := range m.dirtyRes {
		if r.mark != epoch {
			r.mark = epoch
			nRes++
			q = append(q, r)
		}
	}
	for _, f := range m.dirtyFlows {
		if f.index < 0 || f.mark == epoch {
			continue // removed after being marked dirty, or seen
		}
		f.mark = epoch
		nFlows++
		if f.remaining > 0 {
			for _, u := range f.uses {
				if r := u.Resource; r.mark != epoch {
					r.mark = epoch
					nRes++
					q = append(q, r)
				}
			}
		}
	}
	m.dirtyFlows = m.dirtyFlows[:0]
	m.dirtyRes = m.dirtyRes[:0]

	for len(q) > 0 {
		r := q[len(q)-1]
		q = q[:len(q)-1]
		for _, ru := range r.flows {
			f := ru.f
			if f.mark == epoch {
				continue
			}
			f.mark = epoch
			nFlows++
			if f.remaining > 0 {
				for _, u := range f.uses {
					if rr := u.Resource; rr.mark != epoch {
						rr.mark = epoch
						nRes++
						q = append(q, rr)
					}
				}
			}
		}
	}
	m.resQ = q[:0]

	// Canonical ordering comes from scanning the global slices for the
	// marks rather than sorting what the traversal found: the scans are
	// linear (with an early exit once everything marked has been seen)
	// and advance() already walks the full flow list on every mutation,
	// so they add no new asymptotic cost — and the whole-component case,
	// which a sort makes the most expensive, becomes the cheapest.
	m.compFlows = m.compFlows[:0]
	for _, f := range m.flows {
		if f.mark == epoch {
			m.compFlows = append(m.compFlows, f)
			if len(m.compFlows) == nFlows {
				break
			}
		}
	}
	m.compRes = m.compRes[:0]
	for _, r := range m.resources {
		if r.mark == epoch {
			m.compRes = append(m.compRes, r)
			if len(m.compRes) == nRes {
				break
			}
		}
	}
}

// solveScoped runs weighted progressive filling over the collected
// component. After it, every component flow has its max-min fair rate
// and every component resource has its load recomputed; the rest of
// the model is untouched.
//
// Priorities are handled by normalisation: for each flow define the
// normalised rate ρ_f = rate_f / priority_f. Every resource constraint
// becomes Σ (w·priority)·ρ ≤ C and every cap becomes ρ ≤ cap/priority,
// so plain max-min progressive filling over ρ yields the weighted,
// prioritised allocation.
func (m *Model) solveScoped() {
	m.solves++
	for _, r := range m.compRes {
		r.load = 0
		m.avail[r.id] = r.capacity
		m.wsum[r.id] = 0
	}
	nf := len(m.compFlows)
	if nf == 0 {
		return
	}
	if cap(m.fixed) < nf {
		m.fixed = make([]bool, nf)
	}
	fixed := m.fixed[:nf]
	remaining := 0
	for i, f := range m.compFlows {
		f.rate = 0
		if f.remaining <= 0 {
			// Already-done flows (awaiting collection) consume nothing.
			fixed[i] = true
			continue
		}
		fixed[i] = false
		for _, u := range f.uses {
			m.wsum[u.Resource.id] += u.Weight * f.priority
		}
		remaining++
	}
	for remaining > 0 {
		// Candidate fair normalised rate: the tightest bottleneck.
		bottleneck := (*Resource)(nil)
		fair := math.Inf(1)
		for _, r := range m.compRes {
			w := m.wsum[r.id]
			if w <= 0 {
				continue
			}
			c := m.avail[r.id] / w
			if c < fair {
				fair = c
				bottleneck = r
			}
		}
		// Candidate: the smallest normalised cap among unfixed flows.
		capMin := math.Inf(1)
		for i, f := range m.compFlows {
			if !fixed[i] && f.cap > 0 {
				if c := f.cap / f.priority; c < capMin {
					capMin = c
				}
			}
		}
		switch {
		case capMin < fair:
			// Fix every unfixed flow whose normalised cap is the minimum.
			for i, f := range m.compFlows {
				if fixed[i] || f.cap <= 0 || f.cap/f.priority > capMin {
					continue
				}
				m.fix(f, capMin)
				fixed[i] = true
				remaining--
			}
		case bottleneck != nil:
			// Fix every unfixed flow using the bottleneck at the fair rate.
			for i, f := range m.compFlows {
				if fixed[i] {
					continue
				}
				uses := false
				for _, u := range f.uses {
					if u.Resource == bottleneck {
						uses = true
						break
					}
				}
				if !uses {
					continue
				}
				m.fix(f, fair)
				fixed[i] = true
				remaining--
			}
		default:
			// No bottleneck and no cap below it: flows whose every
			// resource already drained to zero availability. Their fair
			// share is zero. (Flows with neither resources nor caps were
			// rejected at Start.)
			for i, f := range m.compFlows {
				if !fixed[i] {
					f.rate = 0
					fixed[i] = true
					remaining--
				}
			}
		}
	}
	for _, f := range m.compFlows {
		for _, u := range f.uses {
			u.Resource.load += u.Weight * f.rate
		}
	}
}

// fix assigns the normalised rate to f (scaled by its priority) and
// withdraws its consumption from the progressive-filling bookkeeping.
func (m *Model) fix(f *Flow, normRate float64) {
	f.rate = normRate * f.priority
	if f.cap > 0 && f.rate > f.cap {
		f.rate = f.cap
	}
	for _, u := range f.uses {
		id := u.Resource.id
		m.avail[id] -= u.Weight * f.rate
		if m.avail[id] < 0 {
			m.avail[id] = 0
		}
		m.wsum[id] -= u.Weight * f.priority
		if m.wsum[id] < 1e-12 {
			m.wsum[id] = 0
		}
	}
}

// solveAll marks every flow and resource dirty and re-solves from
// scratch. Benchmarks and equivalence tests; the simulation path never
// needs it.
func (m *Model) solveAll() {
	m.dirtyFlows = append(m.dirtyFlows[:0], m.flows...)
	m.dirtyRes = append(m.dirtyRes[:0], m.resources...)
	m.collectComponent()
	m.solveScoped()
}

// FlowCount returns the number of active flows (diagnostics).
func (m *Model) FlowCount() int { return len(m.flows) }

// Kernel returns the driving simulation kernel.
func (m *Model) Kernel() *sim.Kernel { return m.k }
