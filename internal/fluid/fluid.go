// Package fluid implements a weighted max-min fair bandwidth-sharing
// model over a set of resources (memory controllers, inter-NUMA links,
// PCIe lanes, network wires) and flows (compute kernels, memory streams,
// DMA transfers).
//
// This is the classic fluid model used by network and platform simulators
// (e.g. SimGrid): each flow f gets a single rate r_f; for every resource
// R with capacity C_R, the constraint sum over flows on R of w_{f,R}·r_f
// ≤ C_R must hold; the solver maximises the allocation in max-min order
// using progressive filling. A flow may additionally carry a private rate
// cap (e.g. a core's peak flop rate at its current frequency).
//
// The model is driven by a sim.Kernel: whenever the flow set or a
// capacity changes, rates are re-solved and the next flow completion is
// (re)scheduled as a simulation event.
package fluid

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Resource is a shared capacity (units/second, typically bytes/s or
// flops/s). Capacity may change during the simulation (e.g. uncore
// frequency scaling a memory controller).
type Resource struct {
	name     string
	capacity float64
	model    *Model
	// load is the sum of w·r over current flows, maintained by solve.
	load float64
}

// Name returns the resource name given at creation.
func (r *Resource) Name() string { return r.name }

// Capacity returns the current capacity in units/second.
func (r *Resource) Capacity() float64 { return r.capacity }

// Utilization returns load/capacity in [0,1] under the current
// allocation. It is the quantity the latency model reads: a memory
// access crossing a bus at utilization ρ sees queueing delay growing
// with ρ.
func (r *Resource) Utilization() float64 {
	if r.capacity <= 0 {
		if r.load > 0 {
			return 1
		}
		return 0
	}
	u := r.load / r.capacity
	if u > 1 {
		u = 1
	}
	return u
}

// Use couples a flow to a resource: the flow consumes weight·rate of the
// resource's capacity. Weight 1 is the common case; weights >1 model
// flows that stress a resource more per unit of progress (e.g. a COPY
// stream reads and writes), weights <1 model flows that get hardware
// arbitration preference (e.g. NIC DMA engines).
type Use struct {
	Resource *Resource
	Weight   float64
}

// Flow is an ongoing activity with a fixed amount of remaining work.
type Flow struct {
	model     *Model
	name      string
	remaining float64
	total     float64
	rate      float64
	cap       float64 // private rate bound; 0 means unbounded
	priority  float64 // rate multiplier in the fair allocation; ≥ default 1
	uses      []Use
	onDone    func()
	started   sim.Time
	finished  bool
	index     int // position in model.flows, -1 when removed
}

// FlowSpec describes a flow to start.
type FlowSpec struct {
	Name string
	// Work is the amount to transfer/compute, in resource units.
	Work float64
	// Cap bounds the flow's rate; 0 means unbounded by the flow itself.
	Cap float64
	// Priority scales the flow's share of a contended resource: under
	// max-min fairness the flow's rate is Priority times the fair unit.
	// Hardware DMA engines, which win memory-controller arbitration
	// against core streams, get Priority > 1. Zero means 1.
	Priority float64
	// Uses lists the resources crossed, with consumption weights.
	Uses []Use
	// OnDone, if non-nil, runs as a simulation event at completion.
	OnDone func()
}

// Name returns the flow name.
func (f *Flow) Name() string { return f.name }

// Rate returns the currently allocated rate (units/second).
func (f *Flow) Rate() float64 { return f.rate }

// Remaining returns the work left, after accounting progress up to the
// current instant.
func (f *Flow) Remaining() float64 {
	f.model.advance()
	return f.remaining
}

// Total returns the work the flow started with.
func (f *Flow) Total() float64 { return f.total }

// Finished reports whether the flow has completed (or was cancelled).
func (f *Flow) Finished() bool { return f.finished }

// Started returns the instant the flow was started.
func (f *Flow) Started() sim.Time { return f.started }

// Model owns resources and flows and keeps the piecewise-constant rate
// allocation in sync with the simulation clock.
type Model struct {
	k          *sim.Kernel
	resources  []*Resource
	flows      []*Flow
	lastUpdate sim.Time
	next       *sim.Event
	solves     uint64
}

// NewModel returns an empty fluid model driven by kernel k.
func NewModel(k *sim.Kernel) *Model {
	return &Model{k: k}
}

// Solves reports how many times the allocation was recomputed (for
// performance diagnostics).
func (m *Model) Solves() uint64 { return m.solves }

// NewResource registers a resource with the given capacity in
// units/second. Capacity must be positive.
func (m *Model) NewResource(name string, capacity float64) *Resource {
	if capacity <= 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("fluid: resource %q capacity %v must be positive", name, capacity))
	}
	r := &Resource{name: name, capacity: capacity, model: m}
	m.resources = append(m.resources, r)
	return r
}

// SetCapacity changes a resource's capacity and re-solves the
// allocation. Used for frequency scaling.
func (m *Model) SetCapacity(r *Resource, capacity float64) {
	if capacity <= 0 || math.IsNaN(capacity) {
		panic(fmt.Sprintf("fluid: resource %q capacity %v must be positive", r.name, capacity))
	}
	if r.capacity == capacity {
		return
	}
	m.advance()
	r.capacity = capacity
	m.resolve()
}

// StartFlow begins an activity of `work` units using the given
// resources, with default priority. cap bounds the flow's rate (0 =
// unbounded; a flow with no uses must have cap > 0 or it would finish
// instantly — such flows are rejected). onDone, if non-nil, runs as a
// simulation event when the flow completes.
func (m *Model) StartFlow(name string, work float64, cap float64, uses []Use, onDone func()) *Flow {
	return m.Start(FlowSpec{Name: name, Work: work, Cap: cap, Uses: uses, OnDone: onDone})
}

// Start begins the flow described by spec.
func (m *Model) Start(spec FlowSpec) *Flow {
	if spec.Work < 0 || math.IsNaN(spec.Work) {
		panic(fmt.Sprintf("fluid: flow %q work %v must be non-negative", spec.Name, spec.Work))
	}
	if len(spec.Uses) == 0 && spec.Cap <= 0 {
		panic(fmt.Sprintf("fluid: flow %q has no resources and no rate cap", spec.Name))
	}
	if spec.Priority < 0 {
		panic(fmt.Sprintf("fluid: flow %q has negative priority", spec.Name))
	}
	for _, u := range spec.Uses {
		if u.Weight <= 0 {
			panic(fmt.Sprintf("fluid: flow %q has non-positive weight on %q", spec.Name, u.Resource.name))
		}
		if u.Resource.model != m {
			panic(fmt.Sprintf("fluid: flow %q uses resource %q from another model", spec.Name, u.Resource.name))
		}
	}
	pri := spec.Priority
	if pri == 0 {
		pri = 1
	}
	m.advance()
	f := &Flow{
		model:     m,
		name:      spec.Name,
		remaining: spec.Work,
		total:     spec.Work,
		cap:       spec.Cap,
		priority:  pri,
		uses:      spec.Uses,
		onDone:    spec.OnDone,
		started:   m.k.Now(),
		index:     len(m.flows),
	}
	m.flows = append(m.flows, f)
	m.resolve()
	return f
}

// SetCap changes a flow's private rate bound and re-solves. A running
// compute kernel's cap changes when its core's frequency changes.
func (m *Model) SetCap(f *Flow, cap float64) {
	if f.finished {
		return
	}
	if len(f.uses) == 0 && cap <= 0 {
		panic(fmt.Sprintf("fluid: flow %q would have no resources and no cap", f.name))
	}
	if f.cap == cap {
		return
	}
	m.advance()
	f.cap = cap
	m.resolve()
}

// Cancel removes a flow without running its completion callback.
func (m *Model) Cancel(f *Flow) {
	if f.finished {
		return
	}
	m.advance()
	m.remove(f)
	f.finished = true
	m.resolve()
}

// remove unlinks f from the flow list (swap-with-last, order not
// significant for the solver; determinism comes from solve's stable
// iteration of the remaining slice contents, which is itself
// deterministic given a deterministic sequence of operations).
func (m *Model) remove(f *Flow) {
	last := len(m.flows) - 1
	m.flows[f.index] = m.flows[last]
	m.flows[f.index].index = f.index
	m.flows[last] = nil
	m.flows = m.flows[:last]
	f.index = -1
	f.rate = 0
}

// advance accrues progress from lastUpdate to now at the current rates.
func (m *Model) advance() {
	now := m.k.Now()
	if now == m.lastUpdate {
		return
	}
	dt := now.Sub(m.lastUpdate).Seconds()
	m.lastUpdate = now
	for _, f := range m.flows {
		f.remaining -= f.rate * dt
		if f.remaining < 0 {
			f.remaining = 0
		}
	}
}

// epsilon below which remaining work counts as done, relative to the
// flow's rate: anything that would complete within a fraction of a
// nanosecond is complete.
const completeEps = 1e-10 // seconds

// resolve recomputes rates, fires completions due now, and schedules the
// next completion event.
func (m *Model) resolve() {
	// Completions may themselves add/remove flows from callbacks that run
	// as separate events, so here we only: solve, complete-now, schedule.
	for {
		m.solve()
		done := m.collectDone()
		if len(done) == 0 {
			break
		}
		for _, f := range done {
			m.remove(f)
			f.finished = true
			if f.onDone != nil {
				// Run as an event so callbacks observe a consistent model
				// and cannot recurse into resolve mid-loop.
				m.k.At(m.k.Now(), f.onDone)
			}
		}
	}
	m.schedule()
}

// collectDone returns flows whose remaining work is (numerically) zero.
func (m *Model) collectDone() []*Flow {
	var done []*Flow
	for _, f := range m.flows {
		if f.remaining <= 0 || (f.rate > 0 && f.remaining/f.rate < completeEps) {
			done = append(done, f)
		}
	}
	return done
}

// schedule arms the next-completion event.
func (m *Model) schedule() {
	if m.next != nil {
		m.k.Cancel(m.next)
		m.next = nil
	}
	best := math.Inf(1)
	for _, f := range m.flows {
		if f.rate > 0 {
			if t := f.remaining / f.rate; t < best {
				best = t
			}
		}
	}
	// Effectively-never completions (e.g. quasi-infinite background
	// flows) are not scheduled at all; they are cancelled explicitly.
	const horizon = 1e8 // seconds of simulated time, ≈3 years
	if math.IsInf(best, 1) || best > horizon {
		return
	}
	d := sim.DurationOfSeconds(best)
	m.next = m.k.After(d, func() {
		m.next = nil
		m.advance()
		m.resolve()
	})
}

// solve runs weighted progressive filling. After solve, every flow has
// its max-min fair rate and every resource has its load recomputed.
//
// Priorities are handled by normalisation: for each flow define the
// normalised rate ρ_f = rate_f / priority_f. Every resource constraint
// becomes Σ (w·priority)·ρ ≤ C and every cap becomes ρ ≤ cap/priority,
// so plain max-min progressive filling over ρ yields the weighted,
// prioritised allocation.
func (m *Model) solve() {
	m.solves++
	n := len(m.flows)
	for _, r := range m.resources {
		r.load = 0
	}
	if n == 0 {
		return
	}
	avail := make(map[*Resource]float64, len(m.resources))
	wsum := make(map[*Resource]float64, len(m.resources))
	for _, r := range m.resources {
		avail[r] = r.capacity
	}
	fixed := make([]bool, n)
	for i, f := range m.flows {
		f.rate = 0
		if f.remaining <= 0 {
			// Already-done flows (awaiting collection) consume nothing.
			fixed[i] = true
			continue
		}
		for _, u := range f.uses {
			wsum[u.Resource] += u.Weight * f.priority
		}
	}
	remaining := 0
	for i := range fixed {
		if !fixed[i] {
			remaining++
		}
	}
	for remaining > 0 {
		// Candidate fair normalised rate: the tightest bottleneck.
		bottleneck := (*Resource)(nil)
		fair := math.Inf(1)
		for _, r := range m.resources {
			if wsum[r] <= 0 {
				continue
			}
			c := avail[r] / wsum[r]
			if c < fair {
				fair = c
				bottleneck = r
			}
		}
		// Candidate: the smallest normalised cap among unfixed flows.
		capMin := math.Inf(1)
		for i, f := range m.flows {
			if !fixed[i] && f.cap > 0 {
				if c := f.cap / f.priority; c < capMin {
					capMin = c
				}
			}
		}
		switch {
		case capMin < fair:
			// Fix every unfixed flow whose normalised cap is the minimum.
			for i, f := range m.flows {
				if fixed[i] || f.cap <= 0 || f.cap/f.priority > capMin {
					continue
				}
				m.fix(f, capMin, avail, wsum)
				fixed[i] = true
				remaining--
			}
		case bottleneck != nil:
			// Fix every unfixed flow using the bottleneck at the fair rate.
			for i, f := range m.flows {
				if fixed[i] {
					continue
				}
				uses := false
				for _, u := range f.uses {
					if u.Resource == bottleneck {
						uses = true
						break
					}
				}
				if !uses {
					continue
				}
				m.fix(f, fair, avail, wsum)
				fixed[i] = true
				remaining--
			}
		default:
			// No bottleneck and no cap below it: flows whose every
			// resource already drained to zero availability. Their fair
			// share is zero. (Flows with neither resources nor caps were
			// rejected at Start.)
			for i, f := range m.flows {
				if !fixed[i] {
					f.rate = 0
					fixed[i] = true
					remaining--
				}
			}
		}
	}
	for _, f := range m.flows {
		for _, u := range f.uses {
			u.Resource.load += u.Weight * f.rate
		}
	}
}

// fix assigns the normalised rate to f (scaled by its priority) and
// withdraws its consumption from the progressive-filling bookkeeping.
func (m *Model) fix(f *Flow, normRate float64, avail, wsum map[*Resource]float64) {
	f.rate = normRate * f.priority
	if f.cap > 0 && f.rate > f.cap {
		f.rate = f.cap
	}
	for _, u := range f.uses {
		avail[u.Resource] -= u.Weight * f.rate
		if avail[u.Resource] < 0 {
			avail[u.Resource] = 0
		}
		wsum[u.Resource] -= u.Weight * f.priority
		if wsum[u.Resource] < 1e-12 {
			wsum[u.Resource] = 0
		}
	}
}

// FlowCount returns the number of active flows (diagnostics).
func (m *Model) FlowCount() int { return len(m.flows) }

// Kernel returns the driving simulation kernel.
func (m *Model) Kernel() *sim.Kernel { return m.k }
