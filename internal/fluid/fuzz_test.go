package fluid

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// FuzzSolverInvariants drives the solver with an arbitrary byte-encoded
// sequence of operations (add resources, start/cancel flows, change
// capacities, advance time) and checks the core invariants after every
// step: feasibility (no resource over capacity), cap respect, and
// non-negative rates/remaining work.
func FuzzSolverInvariants(f *testing.F) {
	f.Add([]byte{1, 10, 2, 30, 2, 60, 3, 0, 4, 5})
	f.Add([]byte{1, 200, 2, 10, 2, 10, 2, 10, 5, 0, 4, 50, 3, 1})
	f.Add([]byte{1, 1, 1, 255, 2, 0, 2, 128, 6, 77, 3, 0, 3, 1, 4, 255})
	f.Fuzz(func(t *testing.T, program []byte) {
		k := sim.NewKernel(1)
		m := NewModel(k)
		var resources []*Resource
		var flows []*Flow
		rng := k.Rand()

		check := func() {
			for _, r := range resources {
				if r.load > r.capacity*(1+1e-6) {
					t.Fatalf("resource %q over capacity: %v > %v", r.name, r.load, r.capacity)
				}
			}
			for _, fl := range flows {
				if fl.finished {
					continue
				}
				if fl.rate < 0 || math.IsNaN(fl.rate) {
					t.Fatalf("flow %q rate %v", fl.name, fl.rate)
				}
				if fl.cap > 0 && fl.rate > fl.cap*(1+1e-6) {
					t.Fatalf("flow %q rate %v above cap %v", fl.name, fl.rate, fl.cap)
				}
				if fl.remaining < 0 {
					t.Fatalf("flow %q negative remaining %v", fl.name, fl.remaining)
				}
			}
		}

		for i := 0; i+1 < len(program); i += 2 {
			op, arg := program[i]%7, float64(program[i+1])
			switch op {
			case 0, 1: // add resource
				resources = append(resources, m.NewResource("r", 1+arg))
			case 2: // start flow on random subset
				if len(resources) == 0 {
					continue
				}
				var uses []Use
				for _, r := range resources {
					if rng.Intn(2) == 0 {
						uses = append(uses, Use{r, 0.5 + rng.Float64()})
					}
				}
				spec := FlowSpec{Name: "f", Work: 1 + arg*1e3, Priority: 0.5 + rng.Float64()*3}
				if len(uses) == 0 || rng.Intn(3) == 0 {
					spec.Cap = 1 + arg
				}
				spec.Uses = uses
				flows = append(flows, m.Start(spec))
			case 3: // cancel a flow
				if len(flows) > 0 {
					m.Cancel(flows[int(arg)%len(flows)])
				}
			case 4: // advance time
				k.RunUntil(k.Now().Add(sim.Duration(1+arg) * sim.Millisecond))
			case 5: // change a capacity
				if len(resources) > 0 {
					m.SetCapacity(resources[int(arg)%len(resources)], 1+arg*2)
				}
			case 6: // change a cap
				if len(flows) > 0 {
					fl := flows[int(arg)%len(flows)]
					if !fl.finished && len(fl.uses) > 0 {
						m.SetCap(fl, 1+arg)
					}
				}
			}
			check()
		}
		// Drain: every remaining event must fire without panicking.
		k.RunUntil(k.Now().Add(sim.Duration(10 * sim.Second)))
		check()
	})
}
