package fluid

import (
	"math"
	"testing"

	"repro/internal/sim"
)

// runProgram drives the solver with an arbitrary byte-encoded sequence
// of operations (add resources, start/cancel flows, change
// capacities/caps, advance time), checking the core invariants after
// every step: feasibility (no resource over capacity), cap respect,
// and non-negative rates/remaining work. With differential set, every
// re-solve is additionally shadowed by the reference solver (the
// oracle panics on any disagreement beyond one ulp).
func runProgram(t *testing.T, program []byte, differential bool) {
	k := sim.NewKernel(1)
	m := NewModel(k)
	m.differential = differential
	var resources []*Resource
	var flows []*Flow
	rng := k.Rand()

	check := func() {
		for _, r := range resources {
			if r.load > r.capacity*(1+1e-6) {
				t.Fatalf("resource %q over capacity: %v > %v", r.name, r.load, r.capacity)
			}
		}
		for _, fl := range flows {
			if fl.finished {
				continue
			}
			if fl.rate < 0 || math.IsNaN(fl.rate) {
				t.Fatalf("flow %q rate %v", fl.name, fl.rate)
			}
			if fl.cap > 0 && fl.rate > fl.cap*(1+1e-6) {
				t.Fatalf("flow %q rate %v above cap %v", fl.name, fl.rate, fl.cap)
			}
			if fl.remaining < 0 {
				t.Fatalf("flow %q negative remaining %v", fl.name, fl.remaining)
			}
		}
	}

	for i := 0; i+1 < len(program); i += 2 {
		op, arg := program[i]%7, float64(program[i+1])
		switch op {
		case 0, 1: // add resource
			resources = append(resources, m.NewResource("r", 1+arg))
		case 2: // start flow on random subset
			if len(resources) == 0 {
				continue
			}
			var uses []Use
			for _, r := range resources {
				if rng.Intn(2) == 0 {
					uses = append(uses, Use{r, 0.5 + rng.Float64()})
				}
			}
			spec := FlowSpec{Name: "f", Work: 1 + arg*1e3, Priority: 0.5 + rng.Float64()*3}
			if len(uses) == 0 || rng.Intn(3) == 0 {
				spec.Cap = 1 + arg
			}
			spec.Uses = uses
			flows = append(flows, m.Start(spec))
		case 3: // cancel a flow
			if len(flows) > 0 {
				m.Cancel(flows[int(arg)%len(flows)])
			}
		case 4: // advance time
			k.RunUntil(k.Now().Add(sim.Duration(1+arg) * sim.Millisecond))
		case 5: // change a capacity
			if len(resources) > 0 {
				m.SetCapacity(resources[int(arg)%len(resources)], 1+arg*2)
			}
		case 6: // change a cap
			if len(flows) > 0 {
				fl := flows[int(arg)%len(flows)]
				if !fl.finished && len(fl.uses) > 0 {
					m.SetCap(fl, 1+arg)
				}
			}
		}
		check()
	}
	// Drain: every remaining event must fire without panicking.
	k.RunUntil(k.Now().Add(sim.Duration(10 * sim.Second)))
	check()
}

// FuzzSolverInvariants checks the allocation invariants under
// arbitrary operation sequences.
func FuzzSolverInvariants(f *testing.F) {
	f.Add([]byte{1, 10, 2, 30, 2, 60, 3, 0, 4, 5})
	f.Add([]byte{1, 200, 2, 10, 2, 10, 2, 10, 5, 0, 4, 50, 3, 1})
	f.Add([]byte{1, 1, 1, 255, 2, 0, 2, 128, 6, 77, 3, 0, 3, 1, 4, 255})
	f.Fuzz(func(t *testing.T, program []byte) {
		runProgram(t, program, false)
	})
}

// FuzzFluid is the differential fuzzer: the same operation programs,
// but with the reference-solver oracle armed on every re-solve, so any
// divergence between the incremental and the original solver is a
// crash. Seeds are promoted from the cases that mattered during
// development and from the property suite's interesting shapes.
func FuzzFluid(f *testing.F) {
	// Two components, cancel the first flow: the swap-remove moves the
	// last flow into slot 0, permuting fix order inside its component.
	f.Add([]byte{1, 50, 1, 50, 2, 10, 2, 10, 2, 10, 3, 0, 4, 20, 5, 1, 6, 0})
	// Short flow completes while a different component is mutated at
	// the same instant (the done-but-uncollected transient that once
	// tripped a mid-resolve oracle check).
	f.Add([]byte{1, 10, 1, 10, 2, 0, 2, 200, 2, 200, 4, 255, 6, 1, 4, 255})
	// Capacity churn on a shared resource: repeated SetCapacity
	// re-solves of a loaded component, interleaved with completions.
	f.Add([]byte{1, 100, 2, 5, 2, 5, 2, 5, 5, 0, 4, 100, 5, 0, 4, 100, 5, 0})
	// Cap-tie round: several flows whose normalised caps coincide are
	// fixed in one round; then one is cancelled.
	f.Add([]byte{1, 255, 2, 7, 2, 7, 2, 7, 2, 7, 6, 0, 6, 1, 3, 2, 4, 50})
	// Deep churn: starts and cancels alternating, stressing the
	// free-list and adjacency swap-removal bookkeeping.
	f.Add([]byte{1, 30, 1, 60, 2, 3, 3, 0, 2, 3, 3, 0, 2, 3, 3, 0, 2, 3, 4, 90})
	f.Fuzz(func(t *testing.T, program []byte) {
		runProgram(t, program, true)
	})
}
