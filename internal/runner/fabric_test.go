package runner

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/trace"
)

// fabricEnv is testEnv with the two-node direct fabric installed: the
// degenerate fabric that must be indistinguishable from the legacy
// network.
func twoNodeEnv(t *testing.T) bench.Env {
	env := testEnv(t)
	env.Fabric = topology.TwoNodeFabric()
	return env
}

// TestTwoNodeFabricDifferential is the refactor guard of the fabric
// generalisation: the solver-hostile campaigns (fig4's full
// interference sweep, faults-crash-cg's mid-solve flow cancellations)
// run on the legacy network and on the two-node fabric, at -j 1 and
// -j 8, and every rendered byte must be identical — the fabric code
// path creates the same fluid resources in the same order, so the
// whole event history degenerates exactly.
func TestTwoNodeFabricDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-campaign differential sweep; skipped with -short")
	}
	var exps []core.Experiment
	for _, id := range []string{"fig4", "faults-crash-cg"} {
		e, ok := core.ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	legacy := Collect(Run(testEnv(t), exps, Options{Workers: 1}))
	for _, workers := range []int{1, 8} {
		fabric := Collect(Run(twoNodeEnv(t), exps, Options{Workers: workers}))
		for i, r := range fabric {
			if r.Err != nil {
				t.Fatalf("j%d: %s on two-node fabric failed: %v", workers, exps[i].ID, r.Err)
			}
			if legacy[i].Err != nil {
				t.Fatalf("%s on legacy network failed: %v", exps[i].ID, legacy[i].Err)
			}
			if r.Rendered != legacy[i].Rendered {
				t.Errorf("%s differs between legacy network and two-node fabric at j%d:\n%s",
					exps[i].ID, workers,
					trace.UnifiedDiff("legacy", "two-node-fabric", legacy[i].Rendered, r.Rendered))
			}
		}
	}
}

// TestFabricGoldenLock verifies the fabric experiments against their
// committed goldens (same lock the core golden test provides for the
// paper experiments; kept here so a runner-level change that bends
// fabric output fails close to home). Uses runs=3, the golden
// convention.
func TestFabricGoldenLock(t *testing.T) {
	if testing.Short() {
		t.Skip("golden campaigns; skipped with -short")
	}
	env, err := core.Env("henri", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var exps []core.Experiment
	for _, id := range []string{"fabric-pingpong", "fabric-interference", "fabric-dfly"} {
		e, ok := core.ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	for _, r := range Collect(Run(env, exps, Options{Workers: 2})) {
		if err := VerifyGolden("../../results", "henri", r); err != nil {
			t.Error(err)
		}
	}
}

// TestFabricCampaignDeterministic is the multi-job determinism lock:
// the fabric-interference campaign (3 concurrent jobs on one shared
// fat-tree) must render byte-identically across worker counts and
// cache states (cold run populating a point cache, then a warm run
// replayed entirely from it).
func TestFabricCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fabric campaign determinism sweep; skipped with -short")
	}
	e, ok := core.ByID("fabric-interference")
	if !ok {
		t.Fatal("fabric-interference not registered")
	}
	exps := []core.Experiment{e}
	base := Collect(Run(testEnv(t), exps, Options{Workers: 1}))[0]
	if base.Err != nil {
		t.Fatalf("baseline run failed: %v", base.Err)
	}
	cache, err := OpenPointCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name    string
		workers int
		cached  bool
	}{
		{"j8", 8, false},
		{"j1-cold-cache", 1, true}, // populates the cache
		{"j8-warm-cache", 8, true}, // fully replayed from it
		{"j1-warm-cache", 1, true},
	} {
		opts := Options{Workers: c.workers}
		var stats CacheStats
		if c.cached {
			opts.Cache = cache
			opts.CacheStats = &stats
		}
		r := Collect(Run(testEnv(t), exps, opts))[0]
		if r.Err != nil {
			t.Fatalf("%s: run failed: %v", c.name, r.Err)
		}
		if r.Rendered != base.Rendered {
			t.Errorf("%s diverged from the j1 baseline:\n%s", c.name,
				trace.UnifiedDiff("baseline", c.name, base.Rendered, r.Rendered))
		}
	}
}
