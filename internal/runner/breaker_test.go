package runner

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/trace"
)

// faultyStore is a CacheStore whose failure mode is flipped at will.
type faultyStore struct {
	mu      sync.Mutex
	failing bool
	loads   int
	stores  int
	recs    map[string]bench.PointRecord
}

func newFaultyStore() *faultyStore {
	return &faultyStore{recs: make(map[string]bench.PointRecord)}
}

func (s *faultyStore) setFailing(v bool) {
	s.mu.Lock()
	s.failing = v
	s.mu.Unlock()
}

func (s *faultyStore) Load(fullKey string) (bench.PointRecord, bool, bool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loads++
	if s.failing {
		return bench.PointRecord{}, false, false, true
	}
	rec, ok := s.recs[fullKey]
	return rec, ok, false, false
}

func (s *faultyStore) Store(fullKey string, rec bench.PointRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stores++
	if s.failing {
		return errors.New("store down")
	}
	s.recs[fullKey] = rec
	return nil
}

func (s *faultyStore) ops() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.loads + s.stores
}

// TestBreakerTripProbeRecover walks the full state machine: consecutive
// failures trip the circuit, suppressed operations are answered locally
// (clean miss / dropped write), the probe window sends real operations
// through, and a successful probe closes the circuit again.
func TestBreakerTripProbeRecover(t *testing.T) {
	store := newFaultyStore()
	store.setFailing(true)
	b := NewBreaker(store, 3, 7)

	for i := 0; i < 3; i++ {
		if _, _, _, ioErr := b.Load("k"); !ioErr {
			t.Fatalf("failure %d not surfaced while closed", i)
		}
	}
	st := b.Stats()
	if st.State != BreakerOpen || st.Trips != 1 {
		t.Fatalf("after 3 failures: %+v, want open with 1 trip", st)
	}

	// Open: ops 1-6 after the trip are suppressed, op 7 is the probe.
	before := store.ops()
	for i := 0; i < 3; i++ {
		if _, ok, _, ioErr := b.Load("k"); ok || ioErr {
			t.Fatalf("suppressed load %d not a clean miss", i)
		}
		if err := b.Store("k", bench.PointRecord{}); err != nil {
			t.Fatalf("suppressed store %d errored: %v", i, err)
		}
	}
	if store.ops() != before {
		t.Fatalf("suppressed ops reached the store (%d -> %d)", before, store.ops())
	}
	store.setFailing(false)
	b.Load("k") // 7th op since trip: half-open probe, succeeds
	st = b.Stats()
	if st.State != BreakerClosed || st.Recoveries != 1 || st.Probes != 1 || st.Skipped != 6 {
		t.Fatalf("after successful probe: %+v", st)
	}
	// Closed again: traffic flows.
	before = store.ops()
	b.Load("k")
	if store.ops() != before+1 {
		t.Fatal("recovered breaker still suppressing")
	}
}

// TestBreakerFailedProbeStaysOpen: a probe that fails leaves the
// circuit open and does not count as a trip.
func TestBreakerFailedProbeStaysOpen(t *testing.T) {
	store := newFaultyStore()
	store.setFailing(true)
	b := NewBreaker(store, 1, 2)
	b.Load("k") // trips
	b.Load("k") // suppressed (1st since open)
	b.Load("k") // probe, fails
	st := b.Stats()
	if st.State != BreakerOpen || st.Trips != 1 || st.Probes != 1 {
		t.Fatalf("after failed probe: %+v", st)
	}
}

// TestBreakerCampaignFallsBackToRecompute: a campaign over a dead cache
// behind a breaker completes with byte-identical output — the breaker
// converts cache failures into recomputation, and stops hammering the
// store after the trip.
func TestBreakerCampaignFallsBackToRecompute(t *testing.T) {
	exps := []core.Experiment{sweepExp("a", 6, nil), sweepExp("b", 11, nil)}
	plain := Collect(Run(testEnv(t), exps, Options{Workers: 2}))

	store := newFaultyStore()
	store.setFailing(true)
	b := NewBreaker(store, 3, 1000) // probe window longer than the campaign
	var stats CacheStats
	res := Collect(Run(testEnv(t), exps, Options{Workers: 2, Cache: b, CacheStats: &stats}))
	for i := range exps {
		if res[i].Err != nil {
			t.Fatalf("%s failed: %v", exps[i].ID, res[i].Err)
		}
		if res[i].Rendered != plain[i].Rendered {
			t.Errorf("%s: output drifted under a dead cache:\n%s", exps[i].ID,
				trace.UnifiedDiff("plain", "breaker", plain[i].Rendered, res[i].Rendered))
		}
	}
	if stats.Misses != 17 {
		t.Fatalf("misses = %d, want 17 (every point recomputed)", stats.Misses)
	}
	st := b.Stats()
	if st.Trips != 1 || st.Skipped == 0 {
		t.Fatalf("breaker stats %+v, want 1 trip and suppressed traffic", st)
	}
	if store.ops() > 6 {
		t.Fatalf("dead store saw %d ops; breaker should have capped it near failLimit", store.ops())
	}
}

// TestCampaignDegradesToNoCache: repeated cache I/O errors flip the
// campaign to no-cache mode — later points skip the cache entirely,
// the degradation is flagged in the stats, and output is unharmed.
func TestCampaignDegradesToNoCache(t *testing.T) {
	exps := []core.Experiment{sweepExp("a", 24, nil)}
	plain := Collect(Run(testEnv(t), exps, Options{Workers: 1}))

	store := newFaultyStore()
	store.setFailing(true)
	var stats CacheStats
	res := Collect(Run(testEnv(t), exps, Options{
		Workers: 1, Cache: store, CacheStats: &stats, DegradeAfter: 4,
	}))
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if res[0].Rendered != plain[0].Rendered {
		t.Errorf("degraded campaign output drifted:\n%s",
			trace.UnifiedDiff("plain", "degraded", plain[0].Rendered, res[0].Rendered))
	}
	if atomic.LoadInt64(&stats.Degraded) != 1 {
		t.Fatalf("stats.Degraded = %d, want 1", stats.Degraded)
	}
	if stats.Skipped == 0 {
		t.Fatal("no cache ops skipped after degradation")
	}
	if stats.Misses != 24 {
		t.Fatalf("misses = %d, want 24", stats.Misses)
	}
	if stats.Errors < 4 {
		t.Fatalf("errors = %d, want >= DegradeAfter", stats.Errors)
	}
	// Serial campaign: after the 4th error (during load+store of early
	// points) no further ops may reach the store.
	if store.ops() >= 24 {
		t.Fatalf("degraded campaign still sent %d ops to the store", store.ops())
	}
}

// TestCampaignDegradeViaFlakyFS: same degradation, but driven through a
// real on-disk cache wrapped in the chaos filesystem — the path the
// soak test and drills exercise.
func TestCampaignDegradeViaFlakyFS(t *testing.T) {
	exps := []core.Experiment{sweepExp("a", 16, nil)}
	plain := Collect(Run(testEnv(t), exps, Options{Workers: 1}))

	inj := chaos.NewInjector(1, mustChaos(t, "enospc:match=.tmp-"))
	cache, err := OpenPointCacheFS(t.TempDir(), chaos.Flaky(chaos.OS(), inj))
	if err != nil {
		t.Fatal(err)
	}
	// Force a pack flush per Store so every write hits the full disk;
	// at the default batching a 16-point campaign never flushes.
	cache.flushEvery = 1
	var stats CacheStats
	res := Collect(Run(testEnv(t), exps, Options{
		Workers: 1, Cache: cache, CacheStats: &stats, DegradeAfter: 3,
	}))
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if res[0].Rendered != plain[0].Rendered {
		t.Error("output drifted under a full disk")
	}
	if atomic.LoadInt64(&stats.Degraded) != 1 || stats.Skipped == 0 {
		t.Fatalf("full disk did not degrade the campaign: %+v", stats)
	}
}

// TestCampaignContextCancellation: a campaign whose context is already
// expired fails fast — every experiment reports the cancellation
// instead of executing its points.
func TestCampaignContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := int64(0)
	exps := []core.Experiment{sweepExp("a", 4, func(int) { atomic.AddInt64(&calls, 1) })}
	res := Collect(Run(testEnv(t), exps, Options{Workers: 2, Ctx: ctx}))
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "cancelled") {
		t.Fatalf("cancelled campaign err = %v", res[0].Err)
	}
	if atomic.LoadInt64(&calls) != 0 {
		t.Fatalf("%d points executed after cancellation", calls)
	}
}

// TestSharedPoolShardRestart: a task that panics past the executor's
// recovery kills only its shard's drain loop, which restarts — the
// pool keeps executing later work at full strength.
func TestSharedPoolShardRestart(t *testing.T) {
	sp := NewSharedPool(2)
	defer sp.Close()

	// Enqueue the bomb directly (not via runUntil, which would execute
	// it on this goroutine): an idle shard picks it up and panics.
	sp.pool.enqueue([]func(){func() { panic("poisoned point") }})

	deadline := time.After(2 * time.Second)
	for sp.Restarts() == 0 {
		select {
		case <-deadline:
			t.Fatal("shard never restarted after the panic")
		default:
			time.Sleep(time.Millisecond)
		}
	}

	// The pool still runs a full campaign afterwards.
	exps := []core.Experiment{sweepExp("after", 12, nil)}
	res := Collect(Run(testEnv(t), exps, Options{Workers: 2, SharedPool: sp}))
	if res[0].Err != nil {
		t.Fatalf("campaign after shard restart failed: %v", res[0].Err)
	}
}

// TestBreakerHalfOpenProbeRace drives an open breaker from two
// goroutines at once and asserts the probe admission stays exact: per
// probeEvery-window of operations, exactly one touches the store, no
// matter how the goroutines interleave. Run under -race this also
// proves the half-open bookkeeping is free of data races.
func TestBreakerHalfOpenProbeRace(t *testing.T) {
	store := newFaultyStore()
	store.setFailing(true)
	const probeEvery = 16
	b := NewBreaker(store, 1, probeEvery)
	// Trip the circuit, then freeze the store in failure so every probe
	// fails and the breaker stays open for the whole race.
	b.Load("trip")
	if b.Stats().State != BreakerOpen {
		t.Fatal("breaker did not trip")
	}
	opsBefore := store.ops()

	const goroutines = 2
	const perG = 8 * probeEvery // 2×8×16 = 16 windows in total
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				b.Load("race")
			}
		}()
	}
	wg.Wait()

	wantProbes := goroutines * perG / probeEvery
	if got := store.ops() - opsBefore; got != wantProbes {
		t.Fatalf("store saw %d probes for %d ops, want exactly %d",
			got, goroutines*perG, wantProbes)
	}
	st := b.Stats()
	if st.Probes != int64(wantProbes) { // the tripping Load ran closed, so it is not a probe
		t.Fatalf("Probes = %d, want %d", st.Probes, wantProbes)
	}
	if st.Skipped != int64(goroutines*perG-wantProbes) {
		t.Fatalf("Skipped = %d, want %d", st.Skipped, goroutines*perG-wantProbes)
	}
	if st.State != BreakerOpen {
		t.Fatal("failed probes must leave the circuit open")
	}
}
