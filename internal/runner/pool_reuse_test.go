package runner

import (
	"testing"

	"repro/internal/core"
	"repro/internal/trace"
)

// TestCampaignPooledWorldsMatchFreshSerial is the reuse-storm property
// test for the world arena: the full experiment registry runs once with
// world pooling disabled (every simulated world built from scratch,
// serial), then twice through one shared 8-worker pool with pooling on
// — so the second pass executes almost entirely on rewound worlds
// recycled by racing workers. Every rendered byte must match the fresh
// serial baseline. Run under -race this is also the arena's
// thread-safety lock.
func TestCampaignPooledWorldsMatchFreshSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry triple campaign; skipped with -short")
	}
	exps := core.Experiments()

	freshEnv := testEnv(t)
	freshEnv.NoPool = true
	fresh := Collect(Run(freshEnv, exps, Options{Workers: 1}))
	if len(fresh) != len(exps) {
		t.Fatalf("fresh run: got %d results, want %d", len(fresh), len(exps))
	}

	sp := NewSharedPool(8)
	defer sp.Close()
	for iter := 0; iter < 2; iter++ {
		res := Collect(Run(testEnv(t), exps, Options{Workers: 8, SharedPool: sp}))
		if len(res) != len(exps) {
			t.Fatalf("pooled iter %d: got %d results, want %d", iter, len(res), len(exps))
		}
		for i, r := range res {
			if r.Err != nil {
				t.Fatalf("pooled iter %d: %s failed: %v", iter, exps[i].ID, r.Err)
			}
			if fresh[i].Err != nil {
				t.Fatalf("fresh run: %s failed: %v", exps[i].ID, fresh[i].Err)
			}
			if r.Rendered != fresh[i].Rendered {
				t.Errorf("%s: pooled iter %d differs from fresh serial:\n%s", exps[i].ID, iter,
					trace.UnifiedDiff("fresh-j1", "pooled-j8", fresh[i].Rendered, r.Rendered))
			}
		}
	}
}
