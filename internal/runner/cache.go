package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/fluid"
)

// The point cache stores computed sweep points content-addressed by
// everything that determines their value: the solver version, the sweep
// drivers' measurement-logic version, the record schema, the full
// cluster spec, the campaign seed/run-count/fault-schedule, and the
// point's own parameter key. A -verify campaign or a repeated `make
// bench` therefore replays unchanged points byte-identically and only
// recomputes what a code or configuration change actually invalidated.

// CacheStats counts point-level cache traffic for one campaign. All
// fields are updated atomically; read them after the campaign drains.
type CacheStats struct {
	// Hits were served from the persistent cache; Misses were executed
	// (including recomputations after a mismatch). MemoHits were served
	// from the in-memory campaign memo: a second request for a point
	// another experiment already computed this campaign (e.g. fig4,
	// fig5 and tab1 sharing contention cells).
	Hits, Misses, MemoHits int64
	// FlightHits were served by joining another campaign's in-flight
	// computation of the same key through a PointFlight (cross-client
	// singleflight; zero unless Options.Flight is set).
	FlightHits int64
	// Mismatches counts poisoned entries: a file whose stored key did
	// not match the requested one (hash collision or tampering). Such
	// entries are recomputed, never served.
	Mismatches int64
	// Errors counts failed cache reads/writes (best-effort: the point
	// is computed as if uncached).
	Errors int64
	// Retries counts transient cache-transport failures that were
	// retried (remote cache only; a retry that ultimately succeeds adds
	// here but not to Errors).
	Retries int64
	// Skipped counts cache operations not attempted because the
	// campaign degraded to no-cache mode or a circuit breaker was open.
	Skipped int64
	// Degraded is 1 once the campaign has permanently switched to
	// no-cache mode after repeated cache failures (Add sums it, so a
	// server-wide total counts degraded campaigns).
	Degraded int64
}

// Points returns the total number of points requested.
func (s *CacheStats) Points() int64 {
	return atomic.LoadInt64(&s.Hits) + atomic.LoadInt64(&s.Misses) +
		atomic.LoadInt64(&s.MemoHits) + atomic.LoadInt64(&s.FlightHits)
}

// HitRate returns the fraction of requested points served without
// executing (persistent hits + memo hits), in [0,1]; 0 for an empty
// campaign.
func (s *CacheStats) HitRate() float64 {
	total := s.Points()
	if total == 0 {
		return 0
	}
	served := atomic.LoadInt64(&s.Hits) + atomic.LoadInt64(&s.MemoHits) + atomic.LoadInt64(&s.FlightHits)
	return float64(served) / float64(total)
}

// Add folds another campaign's counters into the receiver (atomically on
// both sides), so a long-lived service can aggregate per-campaign stats
// into a server-wide total.
func (s *CacheStats) Add(o *CacheStats) {
	atomic.AddInt64(&s.Hits, atomic.LoadInt64(&o.Hits))
	atomic.AddInt64(&s.Misses, atomic.LoadInt64(&o.Misses))
	atomic.AddInt64(&s.MemoHits, atomic.LoadInt64(&o.MemoHits))
	atomic.AddInt64(&s.FlightHits, atomic.LoadInt64(&o.FlightHits))
	atomic.AddInt64(&s.Mismatches, atomic.LoadInt64(&o.Mismatches))
	atomic.AddInt64(&s.Errors, atomic.LoadInt64(&o.Errors))
	atomic.AddInt64(&s.Retries, atomic.LoadInt64(&o.Retries))
	atomic.AddInt64(&s.Skipped, atomic.LoadInt64(&o.Skipped))
	atomic.AddInt64(&s.Degraded, atomic.LoadInt64(&o.Degraded))
}

// CacheStore is the persistence layer of the point cache: the on-disk
// PointCache implements it, and a service can substitute a remote
// content-addressed store speaking the same load/store contract. Both
// methods must be safe for concurrent use.
type CacheStore interface {
	// Load retrieves the record stored under fullKey. ok is false on any
	// miss; mismatch marks a poisoned entry (stored key differs from the
	// requested one — never served); ioErr marks transport/read failures
	// distinct from ordinary absence.
	Load(fullKey string) (rec bench.PointRecord, ok, mismatch, ioErr bool)
	// Store persists the record under fullKey.
	Store(fullKey string, rec bench.PointRecord) error
}

// CacheKeySum returns the content address of a full point key: the hex
// sha256 under which both the on-disk cache and the remote cache
// protocol file the record.
func CacheKeySum(fullKey string) string {
	sum := sha256.Sum256([]byte(fullKey))
	return hex.EncodeToString(sum[:])
}

// PointCache is a persistent, content-addressed store of computed sweep
// points, safe for concurrent use (entries are written atomically via
// rename; concurrent campaigns over the same directory at worst
// recompute a point both could have shared).
type PointCache struct {
	dir string
	fs  chaos.FS
}

// OpenPointCache opens (creating if needed) a cache rooted at dir.
func OpenPointCache(dir string) (*PointCache, error) {
	return OpenPointCacheFS(dir, chaos.OS())
}

// OpenPointCacheFS opens a cache whose I/O goes through fsys — the
// production filesystem, or a chaos.Flaky wrapper in fault drills.
func OpenPointCacheFS(dir string, fsys chaos.FS) (*PointCache, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: creating point cache: %w", err)
	}
	return &PointCache{dir: dir, fs: fsys}, nil
}

// Dir returns the cache root.
func (c *PointCache) Dir() string { return c.dir }

// path maps a full point key to its file: two-level fan-out on the
// key's sha256 keeps directories small on big campaigns.
func (c *PointCache) path(fullKey string) string {
	return c.sumPath(CacheKeySum(fullKey))
}

// sumPath maps an already-hashed key (see CacheKeySum) to its file.
func (c *PointCache) sumPath(sum string) string {
	return filepath.Join(c.dir, sum[:2], sum+".json")
}

// LoadSum returns the raw stored bytes for a content address, as the
// remote cache protocol serves them; os.IsNotExist(err) distinguishes
// absence from read failures. No validation happens here — callers must
// verify the decoded record's key hashes back to sum before trusting it.
func (c *PointCache) LoadSum(sum string) ([]byte, error) {
	if len(sum) < 2 {
		return nil, os.ErrNotExist
	}
	return c.fs.ReadFile(c.sumPath(sum))
}

// Load retrieves the record stored under fullKey. ok is false on any
// miss: absent file, unreadable entry, schema drift, or a stored key
// that does not match the requested one (mismatch=true; a poisoned
// entry is never served). ioErr marks read failures distinct from
// ordinary absence.
func (c *PointCache) Load(fullKey string) (rec bench.PointRecord, ok, mismatch, ioErr bool) {
	data, err := c.fs.ReadFile(c.path(fullKey))
	if err != nil {
		return bench.PointRecord{}, false, false, !os.IsNotExist(err)
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return bench.PointRecord{}, false, false, true
	}
	if rec.Schema != bench.PointSchema {
		return bench.PointRecord{}, false, false, false
	}
	if rec.Key != fullKey {
		return bench.PointRecord{}, false, true, false
	}
	return rec, true, false, false
}

// Store writes the record under fullKey, atomically (temp + rename) so
// readers never observe a torn entry.
func (c *PointCache) Store(fullKey string, rec bench.PointRecord) error {
	rec.Key = fullKey
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	path := c.path(fullKey)
	if err := c.fs.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := c.fs.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		c.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		c.fs.Remove(tmp.Name())
		return err
	}
	return c.fs.Rename(tmp.Name(), path)
}

// pointBaseKey fingerprints everything outside the point's own key that
// determines its value. Unlike ConfigHash it excludes the output format
// (point payloads are structured data, rendered later) and includes the
// solver and sweep-logic versions.
func pointBaseKey(env bench.Env) string {
	spec, err := json.Marshal(env.Spec)
	if err != nil {
		spec = []byte(err.Error())
	}
	faults := ""
	if env.Faults != nil {
		faults = env.Faults.String()
	}
	fabric := ""
	if env.Fabric != nil {
		if b, err := json.Marshal(env.Fabric); err == nil {
			fabric = string(b)
		} else {
			fabric = err.Error()
		}
	}
	h := sha256.New()
	fmt.Fprintf(h, "schema=%d|sweep=%d|fluid=%d|%s|seed=%d|runs=%d|faults=%s|fabric=%s",
		bench.PointSchema, bench.SweepVersion, fluid.Version, spec, env.Seed, env.Runs, faults, fabric)
	return hex.EncodeToString(h.Sum(nil))
}

// memoEntry is one in-flight or completed point in the campaign memo.
type memoEntry struct {
	done chan struct{}
	rec  bench.PointRecord
}

// PointFlight deduplicates concurrent computations of the same point
// *across* campaigns: the per-campaign memo only sees one client's
// requests, so a long-lived service shares one PointFlight between every
// campaign it runs, and two clients racing on the same cell compute it
// once. Unlike the memo, entries are dropped the moment the leader
// finishes — completed points are the persistent cache's job; the flight
// only covers the window where the cache has no entry yet.
type PointFlight struct {
	mu       sync.Mutex
	inflight map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	rec  bench.PointRecord
}

// NewPointFlight returns an empty singleflight group.
func NewPointFlight() *PointFlight {
	return &PointFlight{inflight: make(map[string]*flightCall)}
}

// do runs fn for fullKey exactly once among concurrent callers: the
// first caller (leader=true) computes; the rest block until the leader
// finishes and receive its record (panic records included — each owner
// re-raises on its own experiment). The entry is removed on completion,
// so a later, non-overlapping request computes (or cache-hits) afresh.
func (f *PointFlight) do(fullKey string, fn func() bench.PointRecord) (rec bench.PointRecord, leader bool) {
	f.mu.Lock()
	if c, ok := f.inflight[fullKey]; ok {
		f.mu.Unlock()
		<-c.done
		return c.rec, false
	}
	c := &flightCall{done: make(chan struct{})}
	f.inflight[fullKey] = c
	f.mu.Unlock()

	c.rec = fn()
	f.mu.Lock()
	delete(f.inflight, fullKey)
	f.mu.Unlock()
	close(c.done)
	return c.rec, true
}

// pointScheduler implements bench.PointRunner for a campaign: points
// from every experiment run on the shared pool, deduplicated through an
// in-memory memo (two experiments requesting the same cell compute it
// once) and optionally replayed from / stored to a persistent cache.
type pointScheduler struct {
	pool   *pointPool
	cache  CacheStore      // nil disables the persistent layer
	flight *PointFlight    // nil disables cross-campaign singleflight
	stats  *CacheStats     // nil disables counting
	ctx    context.Context // nil means never cancelled
	base   string

	// degradeAfter is the consecutive-ish cache-error budget: once
	// errCount reaches it the campaign flips to no-cache mode for good
	// (degraded=1, stats.Degraded=1) and every later cache op is
	// skipped instead of attempted. Keeps a campaign from paying a
	// timeout or EIO per point when the cache layer is sick.
	degradeAfter int64
	errCount     atomic.Int64
	degraded     atomic.Bool

	mu   sync.Mutex
	memo map[string]*memoEntry
}

// DefaultDegradeAfter is the cache-error budget before a campaign
// degrades to no-cache mode, when Options.DegradeAfter is unset.
const DefaultDegradeAfter = 8

func newPointScheduler(pool *pointPool, cache CacheStore, flight *PointFlight, stats *CacheStats, env bench.Env) *pointScheduler {
	if stats == nil {
		stats = &CacheStats{}
	}
	return &pointScheduler{
		pool:         pool,
		cache:        cache,
		flight:       flight,
		stats:        stats,
		base:         pointBaseKey(env),
		degradeAfter: DefaultDegradeAfter,
		memo:         make(map[string]*memoEntry),
	}
}

// noteCacheError counts a cache failure toward the degradation budget
// and flips the campaign to no-cache mode when it is spent.
func (s *pointScheduler) noteCacheError() {
	if s.errCount.Add(1) >= s.degradeAfter && s.degraded.CompareAndSwap(false, true) {
		atomic.StoreInt64(&s.stats.Degraded, 1)
	}
}

// cancelled reports whether the campaign's context has expired.
func (s *pointScheduler) cancelled() bool {
	if s.ctx == nil {
		return false
	}
	select {
	case <-s.ctx.Done():
		return true
	default:
		return false
	}
}

// RunPoints schedules the batch on the pool and participates until it
// completes, then returns records index-aligned with pts.
func (s *pointScheduler) RunPoints(env bench.Env, pts []bench.Point) []bench.PointRecord {
	recs := make([]bench.PointRecord, len(pts))
	if len(pts) == 0 {
		return recs
	}
	if s.pool == nil {
		for i, p := range pts {
			recs[i] = s.point(env, p)
		}
		return recs
	}
	b := s.pool.newBatch(len(pts))
	tasks := make([]func(), len(pts))
	for i := range pts {
		i, p := i, pts[i]
		tasks[i] = func() {
			// done must run even if the point panics past ExecutePoint's
			// recover (worker restart path) — a hung batch would wedge
			// every campaign sharing the pool.
			defer b.done()
			recs[i] = s.point(env, p)
		}
	}
	s.pool.enqueue(tasks)
	s.pool.runUntil(b)
	return recs
}

// point resolves one point: campaign memo, then persistent cache, then
// execution. Exactly one goroutine computes each distinct key; the
// others wait for its record.
func (s *pointScheduler) point(env bench.Env, p bench.Point) bench.PointRecord {
	fullKey := s.base + "/" + p.Key
	s.mu.Lock()
	if e, ok := s.memo[fullKey]; ok {
		s.mu.Unlock()
		<-e.done
		atomic.AddInt64(&s.stats.MemoHits, 1)
		return e.rec
	}
	e := &memoEntry{done: make(chan struct{})}
	s.memo[fullKey] = e
	s.mu.Unlock()

	e.rec = s.resolve(env, p, fullKey)
	if e.rec.Panic != nil {
		// A panicked point must not satisfy later requests for the key:
		// each owner re-executes and observes the panic itself.
		s.mu.Lock()
		delete(s.memo, fullKey)
		s.mu.Unlock()
	}
	close(e.done)
	return e.rec
}

// resolve loads the point from the persistent cache or executes it
// (storing the fresh record on success). With a PointFlight installed,
// concurrent campaigns resolving the same key elect one leader: it runs
// the cache-then-execute path once and the others adopt its record.
func (s *pointScheduler) resolve(env bench.Env, p bench.Point, fullKey string) bench.PointRecord {
	if s.flight == nil {
		return s.resolveLocal(env, p, fullKey)
	}
	rec, leader := s.flight.do(fullKey, func() bench.PointRecord {
		return s.resolveLocal(env, p, fullKey)
	})
	if !leader {
		atomic.AddInt64(&s.stats.FlightHits, 1)
	}
	return rec
}

func (s *pointScheduler) resolveLocal(env bench.Env, p bench.Point, fullKey string) bench.PointRecord {
	if s.cancelled() {
		return bench.PointRecord{
			Schema: bench.PointSchema,
			Key:    fullKey,
			Panic:  fmt.Errorf("runner: campaign cancelled: %w", s.ctx.Err()),
		}
	}
	useCache := s.cache != nil && !s.degraded.Load()
	if s.cache != nil && !useCache {
		atomic.AddInt64(&s.stats.Skipped, 1)
	}
	if useCache {
		rec, ok, mismatch, ioErr := s.cache.Load(fullKey)
		if ok {
			atomic.AddInt64(&s.stats.Hits, 1)
			return rec
		}
		if mismatch {
			atomic.AddInt64(&s.stats.Mismatches, 1)
		}
		if ioErr {
			atomic.AddInt64(&s.stats.Errors, 1)
			s.noteCacheError()
		}
	}
	atomic.AddInt64(&s.stats.Misses, 1)
	rec := bench.ExecutePoint(env, p)
	if useCache && rec.Panic == nil && !s.degraded.Load() {
		if err := s.cache.Store(fullKey, rec); err != nil {
			atomic.AddInt64(&s.stats.Errors, 1)
			s.noteCacheError()
		}
	}
	return rec
}
