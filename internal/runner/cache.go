package runner

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/fluid"
)

// The point cache stores computed sweep points content-addressed by
// everything that determines their value: the solver version, the sweep
// drivers' measurement-logic version, the record schema, the full
// cluster spec, the campaign seed/run-count/fault-schedule, and the
// point's own parameter key. A -verify campaign or a repeated `make
// bench` therefore replays unchanged points byte-identically and only
// recomputes what a code or configuration change actually invalidated.

// CacheStats counts point-level cache traffic for one campaign. All
// fields are updated atomically; read them after the campaign drains.
type CacheStats struct {
	// Hits were served from the persistent cache; Misses were executed
	// (including recomputations after a mismatch). MemoHits were served
	// from the in-memory campaign memo: a second request for a point
	// another experiment already computed this campaign (e.g. fig4,
	// fig5 and tab1 sharing contention cells).
	Hits, Misses, MemoHits int64
	// FlightHits were served by joining another campaign's in-flight
	// computation of the same key through a PointFlight (cross-client
	// singleflight; zero unless Options.Flight is set).
	FlightHits int64
	// Mismatches counts poisoned entries: a file whose stored key did
	// not match the requested one (hash collision or tampering). Such
	// entries are recomputed, never served.
	Mismatches int64
	// Errors counts failed cache reads/writes (best-effort: the point
	// is computed as if uncached).
	Errors int64
	// Retries counts transient cache-transport failures that were
	// retried (remote cache only; a retry that ultimately succeeds adds
	// here but not to Errors).
	Retries int64
	// Skipped counts cache operations not attempted because the
	// campaign degraded to no-cache mode or a circuit breaker was open.
	Skipped int64
	// Degraded is 1 once the campaign has permanently switched to
	// no-cache mode after repeated cache failures (Add sums it, so a
	// server-wide total counts degraded campaigns).
	Degraded int64
}

// Points returns the total number of points requested.
func (s *CacheStats) Points() int64 {
	return atomic.LoadInt64(&s.Hits) + atomic.LoadInt64(&s.Misses) +
		atomic.LoadInt64(&s.MemoHits) + atomic.LoadInt64(&s.FlightHits)
}

// HitRate returns the fraction of requested points served without
// executing (persistent hits + memo hits), in [0,1]; 0 for an empty
// campaign.
func (s *CacheStats) HitRate() float64 {
	total := s.Points()
	if total == 0 {
		return 0
	}
	served := atomic.LoadInt64(&s.Hits) + atomic.LoadInt64(&s.MemoHits) + atomic.LoadInt64(&s.FlightHits)
	return float64(served) / float64(total)
}

// Add folds another campaign's counters into the receiver (atomically on
// both sides), so a long-lived service can aggregate per-campaign stats
// into a server-wide total.
func (s *CacheStats) Add(o *CacheStats) {
	atomic.AddInt64(&s.Hits, atomic.LoadInt64(&o.Hits))
	atomic.AddInt64(&s.Misses, atomic.LoadInt64(&o.Misses))
	atomic.AddInt64(&s.MemoHits, atomic.LoadInt64(&o.MemoHits))
	atomic.AddInt64(&s.FlightHits, atomic.LoadInt64(&o.FlightHits))
	atomic.AddInt64(&s.Mismatches, atomic.LoadInt64(&o.Mismatches))
	atomic.AddInt64(&s.Errors, atomic.LoadInt64(&o.Errors))
	atomic.AddInt64(&s.Retries, atomic.LoadInt64(&o.Retries))
	atomic.AddInt64(&s.Skipped, atomic.LoadInt64(&o.Skipped))
	atomic.AddInt64(&s.Degraded, atomic.LoadInt64(&o.Degraded))
}

// CacheStore is the persistence layer of the point cache: the on-disk
// PointCache implements it, and a service can substitute a remote
// content-addressed store speaking the same load/store contract. Both
// methods must be safe for concurrent use.
type CacheStore interface {
	// Load retrieves the record stored under fullKey. ok is false on any
	// miss; mismatch marks a poisoned entry (stored key differs from the
	// requested one — never served); ioErr marks transport/read failures
	// distinct from ordinary absence.
	Load(fullKey string) (rec bench.PointRecord, ok, mismatch, ioErr bool)
	// Store persists the record under fullKey.
	Store(fullKey string, rec bench.PointRecord) error
}

// CacheKeySum returns the content address of a full point key: the hex
// sha256 under which both the on-disk cache and the remote cache
// protocol file the record.
func CacheKeySum(fullKey string) string {
	sum := sha256.Sum256([]byte(fullKey))
	return hex.EncodeToString(sum[:])
}

// PointCache is a persistent, content-addressed store of computed sweep
// points, safe for concurrent use. Writes are batched: Store appends to
// an in-memory write-behind buffer (visible immediately to this
// process's Loads) and the buffer is flushed as one immutable pack
// segment — written atomically via temp + rename — once it reaches the
// entry or byte threshold, or on Flush/Close. Reads resolve pending →
// pack index → legacy loose files, with a throttled rescan of the packs
// directory so concurrent processes sharing a cache directory pick up
// each other's flushed segments. Callers that want durability before
// process exit must Flush (cmd/interference and the cache daemon do).
type PointCache struct {
	dir   string
	packs string
	fs    chaos.FS

	mu           sync.Mutex
	pending      map[string][]byte // sum → binary record awaiting a flush
	pendingBytes int
	index        map[string]packRef // sum → extent in a pack segment
	packData     map[string][]byte  // pack path → bytes (lazy page-in)
	scanned      map[string]bool    // pack paths already indexed
	lastScan     time.Time

	// flushEvery/flushBytes are the write-behind thresholds; tests
	// shrink them to force per-Store flushes.
	flushEvery int
	flushBytes int
}

const (
	defaultFlushEvery = 64
	defaultFlushBytes = 1 << 20
	// packRescanEvery throttles packs-directory rescans on misses, so a
	// cold campaign pounding an empty shared cache doesn't pay a
	// directory listing per point.
	packRescanEvery = 100 * time.Millisecond
	// cacheShards is the loose-layout fan-out: one directory per first
	// address byte, all precreated at open so no write path ever stats
	// or creates a directory.
	cacheShards = 256
)

// OpenPointCache opens (creating if needed) a cache rooted at dir.
func OpenPointCache(dir string) (*PointCache, error) {
	return OpenPointCacheFS(dir, chaos.OS())
}

// OpenPointCacheFS opens a cache whose I/O goes through fsys — the
// production filesystem, or a chaos.Flaky wrapper in fault drills.
func OpenPointCacheFS(dir string, fsys chaos.FS) (*PointCache, error) {
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: creating point cache: %w", err)
	}
	packs := filepath.Join(dir, "packs")
	if err := fsys.MkdirAll(packs, 0o755); err != nil {
		return nil, fmt.Errorf("runner: creating point cache: %w", err)
	}
	// Precreate every shard directory once; the last shard's existence
	// marks a fully-initialised layout, so reopening is two stats.
	if _, err := fsys.ReadDir(filepath.Join(dir, "ff")); err != nil {
		for i := 0; i < cacheShards; i++ {
			if err := fsys.MkdirAll(filepath.Join(dir, fmt.Sprintf("%02x", i)), 0o755); err != nil {
				return nil, fmt.Errorf("runner: creating point cache shards: %w", err)
			}
		}
	}
	c := &PointCache{
		dir:        dir,
		packs:      packs,
		fs:         fsys,
		pending:    make(map[string][]byte),
		index:      make(map[string]packRef),
		packData:   make(map[string][]byte),
		scanned:    make(map[string]bool),
		flushEvery: defaultFlushEvery,
		flushBytes: defaultFlushBytes,
	}
	c.mu.Lock()
	c.rescanLocked() // index segments left by earlier processes
	c.mu.Unlock()
	return c, nil
}

// Dir returns the cache root.
func (c *PointCache) Dir() string { return c.dir }

// path maps a full point key to its legacy loose file: two-level
// fan-out on the key's sha256 keeps directories small on big campaigns.
func (c *PointCache) path(fullKey string) string {
	return c.sumPath(CacheKeySum(fullKey))
}

// sumPath maps an already-hashed key (see CacheKeySum) to its loose file.
func (c *PointCache) sumPath(sum string) string {
	return filepath.Join(c.dir, sum[:2], sum+".json")
}

// LoadSum returns the raw stored bytes for a content address, as the
// remote cache protocol serves them — binary records from the pending
// buffer or a pack, legacy JSON from a loose file. os.IsNotExist(err)
// distinguishes absence from read failures. No validation happens here —
// callers must verify the decoded record's key hashes back to sum
// before trusting it.
func (c *PointCache) LoadSum(sum string) ([]byte, error) {
	if len(sum) < 2 {
		return nil, os.ErrNotExist
	}
	data, found, err := c.lookup(sum)
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, os.ErrNotExist
	}
	return data, nil
}

// lookup resolves a content address to its raw stored bytes: pending
// buffer, then pack index, then legacy loose file, then (on a clean
// miss) a throttled rescan of the packs directory for segments flushed
// by other processes.
func (c *PointCache) lookup(sum string) (data []byte, found bool, err error) {
	c.mu.Lock()
	if data, ok := c.pending[sum]; ok {
		c.mu.Unlock()
		return data, true, nil
	}
	if ref, ok := c.index[sum]; ok {
		data, err := c.packSliceLocked(ref)
		c.mu.Unlock()
		return data, err == nil, err
	}
	c.mu.Unlock()

	data, err = c.fs.ReadFile(c.sumPath(sum))
	if err == nil {
		return data, true, nil
	}
	if !os.IsNotExist(err) {
		return nil, false, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if time.Since(c.lastScan) >= packRescanEvery {
		c.rescanLocked()
		if ref, ok := c.index[sum]; ok {
			data, err := c.packSliceLocked(ref)
			return data, err == nil, err
		}
	}
	return nil, false, nil
}

// packSliceLocked returns the record bytes a ref points at, paging the
// pack file into memory on first touch.
func (c *PointCache) packSliceLocked(ref packRef) ([]byte, error) {
	data, ok := c.packData[ref.path]
	if !ok {
		var err error
		data, err = c.fs.ReadFile(ref.path)
		if err != nil {
			return nil, err
		}
		c.packData[ref.path] = data
	}
	if ref.off < 0 || ref.n < 0 || ref.off+ref.n > len(data) {
		return nil, fmt.Errorf("runner: pack ref %s@%d+%d out of range (%d bytes)",
			filepath.Base(ref.path), ref.off, ref.n, len(data))
	}
	return data[ref.off : ref.off+ref.n], nil
}

// rescanLocked indexes pack segments not yet seen. Best-effort: a
// segment whose read fails is retried on the next rescan; a segment
// that parses as garbage is skipped for good.
func (c *PointCache) rescanLocked() {
	c.lastScan = time.Now()
	ents, err := c.fs.ReadDir(c.packs)
	if err != nil {
		return
	}
	for _, de := range ents {
		name := de.Name()
		if !strings.HasSuffix(name, ".pack") {
			continue
		}
		path := filepath.Join(c.packs, name)
		if c.scanned[path] {
			continue
		}
		c.scanPackLocked(path)
	}
}

// scanPackLocked indexes one segment, preferring its sidecar index and
// falling back to scanning the pack bytes.
func (c *PointCache) scanPackLocked(path string) {
	var refs []idxEntry
	if data, err := c.fs.ReadFile(strings.TrimSuffix(path, ".pack") + ".idx"); err == nil {
		refs, _ = parseIdx(data)
	}
	if refs == nil {
		data, err := c.fs.ReadFile(path)
		if err != nil {
			return // transient: retry on the next rescan
		}
		refs, err = scanPackRefs(data)
		if err != nil {
			c.scanned[path] = true // not a pack: never rescan it
			return
		}
		c.packData[path] = data
	}
	for _, e := range refs {
		if _, dup := c.index[e.sum]; !dup {
			c.index[e.sum] = packRef{path: path, off: e.off, n: e.n}
		}
	}
	c.scanned[path] = true
}

// Load retrieves the record stored under fullKey. ok is false on any
// miss: absent entry, unreadable bytes, schema drift, or a stored key
// that does not match the requested one (mismatch=true; a poisoned
// entry is never served). ioErr marks read failures distinct from
// ordinary absence.
func (c *PointCache) Load(fullKey string) (rec bench.PointRecord, ok, mismatch, ioErr bool) {
	data, found, err := c.lookup(CacheKeySum(fullKey))
	if err != nil {
		return bench.PointRecord{}, false, false, true
	}
	if !found {
		return bench.PointRecord{}, false, false, false
	}
	return decodeStored(data, fullKey)
}

// decodeStored parses raw cache bytes — binary record or legacy JSON —
// and applies the cache's trust checks.
func decodeStored(data []byte, fullKey string) (rec bench.PointRecord, ok, mismatch, ioErr bool) {
	if bench.IsBinaryRecord(data) {
		if err := rec.DecodeBinary(data); err != nil {
			return bench.PointRecord{}, false, false, true
		}
	} else if err := json.Unmarshal(data, &rec); err != nil {
		return bench.PointRecord{}, false, false, true
	}
	if rec.Schema != bench.PointSchema {
		return bench.PointRecord{}, false, false, false
	}
	if rec.Key != fullKey {
		return bench.PointRecord{}, false, true, false
	}
	return rec, true, false, false
}

// Store records the point under fullKey in the write-behind buffer; the
// buffer is flushed as a pack segment when it reaches the entry or byte
// threshold. A failed flush is reported to the Store that triggered it,
// but the batch is *retained*: the records stay readable in the pending
// buffer and the next threshold crossing (or explicit Flush) retries,
// so a transient disk fault costs one error per attempt, never a
// silently lost batch. Only process exit loses an unflushable buffer —
// and that surfaces on Close.
func (c *PointCache) Store(fullKey string, rec bench.PointRecord) error {
	rec.Key = fullKey
	data := rec.EncodeBinary()
	sum := CacheKeySum(fullKey)
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, dup := c.pending[sum]; dup {
		c.pendingBytes -= len(old)
	}
	c.pending[sum] = data
	c.pendingBytes += len(data)
	if len(c.pending) >= c.flushEvery || c.pendingBytes >= c.flushBytes {
		return c.flushLocked()
	}
	return nil
}

// Flush writes the pending buffer out as a pack segment.
func (c *PointCache) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

// Close flushes the pending buffer; the cache remains usable after.
func (c *PointCache) Close() error { return c.Flush() }

func (c *PointCache) flushLocked() error {
	if len(c.pending) == 0 {
		return nil
	}
	if err := c.writePackLocked(c.pending); err != nil {
		return err
	}
	c.pending = make(map[string][]byte)
	c.pendingBytes = 0
	return nil
}

// writePackLocked persists one batch as an immutable segment pair
// (seg-*.pack + seg-*.idx) and indexes it. The pack write is atomic
// (temp + rename); the sidecar index is best-effort — a pack without
// one is re-indexed by scanning.
func (c *PointCache) writePackLocked(batch map[string][]byte) error {
	pack, refs, err := buildPack(batch)
	if err != nil {
		return err
	}
	tmp, err := c.fs.CreateTemp(c.packs, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(pack); err != nil {
		tmp.Close()
		c.fs.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		c.fs.Remove(tmp.Name())
		return err
	}
	seg := "seg-" + strings.TrimPrefix(filepath.Base(tmp.Name()), ".tmp-")
	path := filepath.Join(c.packs, seg+".pack")
	if err := c.fs.Rename(tmp.Name(), path); err != nil {
		c.fs.Remove(tmp.Name())
		return err
	}
	for _, e := range refs {
		c.index[e.sum] = packRef{path: path, off: e.off, n: e.n}
	}
	c.packData[path] = pack
	c.scanned[path] = true
	c.writeIdx(seg, refs)
	return nil
}

// writeIdx writes a segment's sidecar index; failures are swallowed
// (the pack is self-describing).
func (c *PointCache) writeIdx(seg string, refs []idxEntry) {
	tmp, err := c.fs.CreateTemp(c.packs, ".tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(encodeIdx(refs)); err != nil {
		tmp.Close()
		c.fs.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		c.fs.Remove(tmp.Name())
		return
	}
	if err := c.fs.Rename(tmp.Name(), filepath.Join(c.packs, seg+".idx")); err != nil {
		c.fs.Remove(tmp.Name())
	}
}

// Compact migrates legacy loose entries (one JSON file per point) into
// a single pack segment and removes the loose files, returning how many
// entries moved. Entries that fail validation — unparseable, stale
// schema, or filed under the wrong address — are left in place.
func (c *PointCache) Compact() (int, error) {
	migrated := make(map[string][]byte)
	var loose []string
	for i := 0; i < cacheShards; i++ {
		shard := filepath.Join(c.dir, fmt.Sprintf("%02x", i))
		ents, err := c.fs.ReadDir(shard)
		if err != nil {
			continue
		}
		for _, de := range ents {
			name := de.Name()
			if !strings.HasSuffix(name, ".json") {
				continue
			}
			path := filepath.Join(shard, name)
			data, err := c.fs.ReadFile(path)
			if err != nil {
				continue
			}
			var rec bench.PointRecord
			if err := json.Unmarshal(data, &rec); err != nil || rec.Schema != bench.PointSchema {
				continue
			}
			sum := CacheKeySum(rec.Key)
			if sum+".json" != name {
				continue // misfiled: migrating would launder a poisoned entry
			}
			migrated[sum] = rec.EncodeBinary()
			loose = append(loose, path)
		}
	}
	if len(migrated) == 0 {
		return 0, nil
	}
	c.mu.Lock()
	err := c.writePackLocked(migrated)
	c.mu.Unlock()
	if err != nil {
		return 0, err
	}
	for _, path := range loose {
		c.fs.Remove(path)
	}
	return len(migrated), nil
}

// Entries invokes fn for every record the cache can serve, passing the
// content address and the raw stored bytes (binary records from the
// pending buffer and packs, legacy JSON from loose files). Pending
// entries shadow packed ones, which shadow loose ones. Iteration order
// is unspecified. fn's first error aborts the walk.
func (c *PointCache) Entries(fn func(sum string, data []byte) error) error {
	c.mu.Lock()
	c.rescanLocked()
	snap := make(map[string][]byte, len(c.pending)+len(c.index))
	for sum, data := range c.pending {
		snap[sum] = data
	}
	for sum, ref := range c.index {
		if _, dup := snap[sum]; dup {
			continue
		}
		if data, err := c.packSliceLocked(ref); err == nil {
			snap[sum] = data
		}
	}
	c.mu.Unlock()
	for sum, data := range snap {
		if err := fn(sum, data); err != nil {
			return err
		}
	}
	for i := 0; i < cacheShards; i++ {
		shard := filepath.Join(c.dir, fmt.Sprintf("%02x", i))
		ents, err := c.fs.ReadDir(shard)
		if err != nil {
			continue
		}
		for _, de := range ents {
			name := de.Name()
			if !strings.HasSuffix(name, ".json") {
				continue
			}
			sum := strings.TrimSuffix(name, ".json")
			if _, dup := snap[sum]; dup {
				continue
			}
			data, err := c.fs.ReadFile(filepath.Join(shard, name))
			if err != nil {
				continue
			}
			if err := fn(sum, data); err != nil {
				return err
			}
		}
	}
	return nil
}

// DiskStats describes the cache's on-disk occupancy for -cache-stats.
type DiskStats struct {
	// Packs / PackedEntries count indexed segments and the records they
	// hold; PendingEntries are buffered writes not yet flushed.
	Packs, PackedEntries, PendingEntries int
	// LooseEntries / LooseShards count legacy one-file-per-point
	// records and the shard directories occupied by them (Compact
	// drains both to zero).
	LooseEntries, LooseShards int
}

// DiskStats scans the cache layout and reports its occupancy.
func (c *PointCache) DiskStats() DiskStats {
	var st DiskStats
	c.mu.Lock()
	c.rescanLocked()
	st.PendingEntries = len(c.pending)
	st.PackedEntries = len(c.index)
	packs := make(map[string]bool)
	for _, ref := range c.index {
		packs[ref.path] = true
	}
	st.Packs = len(packs)
	c.mu.Unlock()
	for i := 0; i < cacheShards; i++ {
		ents, err := c.fs.ReadDir(filepath.Join(c.dir, fmt.Sprintf("%02x", i)))
		if err != nil {
			continue
		}
		n := 0
		for _, de := range ents {
			if strings.HasSuffix(de.Name(), ".json") {
				n++
			}
		}
		if n > 0 {
			st.LooseShards++
			st.LooseEntries += n
		}
	}
	return st
}

// pointBaseKey fingerprints everything outside the point's own key that
// determines its value. Unlike ConfigHash it excludes the output format
// (point payloads are structured data, rendered later) and includes the
// solver and sweep-logic versions.
func pointBaseKey(env bench.Env) string {
	spec, err := json.Marshal(env.Spec)
	if err != nil {
		spec = []byte(err.Error())
	}
	faults := ""
	if env.Faults != nil {
		faults = env.Faults.String()
	}
	fabric := ""
	if env.Fabric != nil {
		if b, err := json.Marshal(env.Fabric); err == nil {
			fabric = string(b)
		} else {
			fabric = err.Error()
		}
	}
	h := sha256.New()
	fmt.Fprintf(h, "schema=%d|sweep=%d|fluid=%d|%s|seed=%d|runs=%d|faults=%s|fabric=%s",
		bench.PointSchema, bench.SweepVersion, fluid.Version, spec, env.Seed, env.Runs, faults, fabric)
	return hex.EncodeToString(h.Sum(nil))
}

// memoEntry is one in-flight or completed point in the campaign memo.
type memoEntry struct {
	done chan struct{}
	rec  bench.PointRecord
}

// PointFlight deduplicates concurrent computations of the same point
// *across* campaigns: the per-campaign memo only sees one client's
// requests, so a long-lived service shares one PointFlight between every
// campaign it runs, and two clients racing on the same cell compute it
// once. Unlike the memo, entries are dropped the moment the leader
// finishes — completed points are the persistent cache's job; the flight
// only covers the window where the cache has no entry yet.
type PointFlight struct {
	mu       sync.Mutex
	inflight map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	rec  bench.PointRecord
}

// NewPointFlight returns an empty singleflight group.
func NewPointFlight() *PointFlight {
	return &PointFlight{inflight: make(map[string]*flightCall)}
}

// do runs fn for fullKey exactly once among concurrent callers: the
// first caller (leader=true) computes; the rest block until the leader
// finishes and receive its record (panic records included — each owner
// re-raises on its own experiment). The entry is removed on completion,
// so a later, non-overlapping request computes (or cache-hits) afresh.
func (f *PointFlight) do(fullKey string, fn func() bench.PointRecord) (rec bench.PointRecord, leader bool) {
	f.mu.Lock()
	if c, ok := f.inflight[fullKey]; ok {
		f.mu.Unlock()
		<-c.done
		return c.rec, false
	}
	c := &flightCall{done: make(chan struct{})}
	f.inflight[fullKey] = c
	f.mu.Unlock()

	c.rec = fn()
	f.mu.Lock()
	delete(f.inflight, fullKey)
	f.mu.Unlock()
	close(c.done)
	return c.rec, true
}

// pointScheduler implements bench.PointRunner for a campaign: points
// from every experiment run on the shared pool, deduplicated through an
// in-memory memo (two experiments requesting the same cell compute it
// once) and optionally replayed from / stored to a persistent cache.
type pointScheduler struct {
	pool   *pointPool
	cache  CacheStore      // nil disables the persistent layer
	flight *PointFlight    // nil disables cross-campaign singleflight
	stats  *CacheStats     // nil disables counting
	ctx    context.Context // nil means never cancelled
	base   string

	// degradeAfter is the consecutive-ish cache-error budget: once
	// errCount reaches it the campaign flips to no-cache mode for good
	// (degraded=1, stats.Degraded=1) and every later cache op is
	// skipped instead of attempted. Keeps a campaign from paying a
	// timeout or EIO per point when the cache layer is sick.
	degradeAfter int64
	errCount     atomic.Int64
	degraded     atomic.Bool

	mu   sync.Mutex
	memo map[string]*memoEntry
}

// DefaultDegradeAfter is the cache-error budget before a campaign
// degrades to no-cache mode, when Options.DegradeAfter is unset.
const DefaultDegradeAfter = 8

func newPointScheduler(pool *pointPool, cache CacheStore, flight *PointFlight, stats *CacheStats, env bench.Env) *pointScheduler {
	if stats == nil {
		stats = &CacheStats{}
	}
	return &pointScheduler{
		pool:         pool,
		cache:        cache,
		flight:       flight,
		stats:        stats,
		base:         pointBaseKey(env),
		degradeAfter: DefaultDegradeAfter,
		memo:         make(map[string]*memoEntry),
	}
}

// noteCacheError counts a cache failure toward the degradation budget
// and flips the campaign to no-cache mode when it is spent.
func (s *pointScheduler) noteCacheError() {
	if s.errCount.Add(1) >= s.degradeAfter && s.degraded.CompareAndSwap(false, true) {
		atomic.StoreInt64(&s.stats.Degraded, 1)
	}
}

// cancelled reports whether the campaign's context has expired.
func (s *pointScheduler) cancelled() bool {
	if s.ctx == nil {
		return false
	}
	select {
	case <-s.ctx.Done():
		return true
	default:
		return false
	}
}

// RunPoints schedules the batch on the pool and participates until it
// completes, then returns records index-aligned with pts.
func (s *pointScheduler) RunPoints(env bench.Env, pts []bench.Point) []bench.PointRecord {
	recs := make([]bench.PointRecord, len(pts))
	if len(pts) == 0 {
		return recs
	}
	if s.pool == nil {
		for i, p := range pts {
			recs[i] = s.point(env, p)
		}
		return recs
	}
	b := s.pool.newBatch(len(pts))
	tasks := make([]func(), len(pts))
	for i := range pts {
		i, p := i, pts[i]
		tasks[i] = func() {
			// done must run even if the point panics past ExecutePoint's
			// recover (worker restart path) — a hung batch would wedge
			// every campaign sharing the pool.
			defer b.done()
			recs[i] = s.point(env, p)
		}
	}
	s.pool.enqueue(tasks)
	s.pool.runUntil(b)
	return recs
}

// point resolves one point: campaign memo, then persistent cache, then
// execution. Exactly one goroutine computes each distinct key; the
// others wait for its record.
func (s *pointScheduler) point(env bench.Env, p bench.Point) bench.PointRecord {
	fullKey := s.base + "/" + p.Key
	s.mu.Lock()
	if e, ok := s.memo[fullKey]; ok {
		s.mu.Unlock()
		<-e.done
		atomic.AddInt64(&s.stats.MemoHits, 1)
		return e.rec
	}
	e := &memoEntry{done: make(chan struct{})}
	s.memo[fullKey] = e
	s.mu.Unlock()

	e.rec = s.resolve(env, p, fullKey)
	if e.rec.Panic != nil {
		// A panicked point must not satisfy later requests for the key:
		// each owner re-executes and observes the panic itself.
		s.mu.Lock()
		delete(s.memo, fullKey)
		s.mu.Unlock()
	}
	close(e.done)
	return e.rec
}

// resolve loads the point from the persistent cache or executes it
// (storing the fresh record on success). With a PointFlight installed,
// concurrent campaigns resolving the same key elect one leader: it runs
// the cache-then-execute path once and the others adopt its record.
func (s *pointScheduler) resolve(env bench.Env, p bench.Point, fullKey string) bench.PointRecord {
	if s.flight == nil {
		return s.resolveLocal(env, p, fullKey)
	}
	rec, leader := s.flight.do(fullKey, func() bench.PointRecord {
		return s.resolveLocal(env, p, fullKey)
	})
	if !leader {
		atomic.AddInt64(&s.stats.FlightHits, 1)
	}
	return rec
}

func (s *pointScheduler) resolveLocal(env bench.Env, p bench.Point, fullKey string) bench.PointRecord {
	if s.cancelled() {
		return bench.PointRecord{
			Schema: bench.PointSchema,
			Key:    fullKey,
			Panic:  fmt.Errorf("runner: campaign cancelled: %w", s.ctx.Err()),
		}
	}
	useCache := s.cache != nil && !s.degraded.Load()
	if s.cache != nil && !useCache {
		atomic.AddInt64(&s.stats.Skipped, 1)
	}
	if useCache {
		rec, ok, mismatch, ioErr := s.cache.Load(fullKey)
		if ok {
			atomic.AddInt64(&s.stats.Hits, 1)
			return rec
		}
		if mismatch {
			atomic.AddInt64(&s.stats.Mismatches, 1)
		}
		if ioErr {
			atomic.AddInt64(&s.stats.Errors, 1)
			s.noteCacheError()
		}
	}
	atomic.AddInt64(&s.stats.Misses, 1)
	rec := bench.ExecutePoint(env, p)
	if useCache && rec.Panic == nil && !s.degraded.Load() {
		if err := s.cache.Store(fullKey, rec); err != nil {
			atomic.AddInt64(&s.stats.Errors, 1)
			s.noteCacheError()
		}
	}
	return rec
}
