package runner

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"repro/internal/bench"
	"repro/internal/fluid"
)

// The point cache stores computed sweep points content-addressed by
// everything that determines their value: the solver version, the sweep
// drivers' measurement-logic version, the record schema, the full
// cluster spec, the campaign seed/run-count/fault-schedule, and the
// point's own parameter key. A -verify campaign or a repeated `make
// bench` therefore replays unchanged points byte-identically and only
// recomputes what a code or configuration change actually invalidated.

// CacheStats counts point-level cache traffic for one campaign. All
// fields are updated atomically; read them after the campaign drains.
type CacheStats struct {
	// Hits were served from the persistent cache; Misses were executed
	// (including recomputations after a mismatch). MemoHits were served
	// from the in-memory campaign memo: a second request for a point
	// another experiment already computed this campaign (e.g. fig4,
	// fig5 and tab1 sharing contention cells).
	Hits, Misses, MemoHits int64
	// Mismatches counts poisoned entries: a file whose stored key did
	// not match the requested one (hash collision or tampering). Such
	// entries are recomputed, never served.
	Mismatches int64
	// Errors counts failed cache reads/writes (best-effort: the point
	// is computed as if uncached).
	Errors int64
}

// Points returns the total number of points requested.
func (s *CacheStats) Points() int64 {
	return atomic.LoadInt64(&s.Hits) + atomic.LoadInt64(&s.Misses) + atomic.LoadInt64(&s.MemoHits)
}

// HitRate returns the fraction of requested points served without
// executing (persistent hits + memo hits), in [0,1]; 0 for an empty
// campaign.
func (s *CacheStats) HitRate() float64 {
	total := s.Points()
	if total == 0 {
		return 0
	}
	return float64(atomic.LoadInt64(&s.Hits)+atomic.LoadInt64(&s.MemoHits)) / float64(total)
}

// PointCache is a persistent, content-addressed store of computed sweep
// points, safe for concurrent use (entries are written atomically via
// rename; concurrent campaigns over the same directory at worst
// recompute a point both could have shared).
type PointCache struct {
	dir string
}

// OpenPointCache opens (creating if needed) a cache rooted at dir.
func OpenPointCache(dir string) (*PointCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: creating point cache: %w", err)
	}
	return &PointCache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *PointCache) Dir() string { return c.dir }

// path maps a full point key to its file: two-level fan-out on the
// key's sha256 keeps directories small on big campaigns.
func (c *PointCache) path(fullKey string) string {
	sum := sha256.Sum256([]byte(fullKey))
	name := hex.EncodeToString(sum[:])
	return filepath.Join(c.dir, name[:2], name+".json")
}

// load retrieves the record stored under fullKey. ok is false on any
// miss: absent file, unreadable entry, schema drift, or a stored key
// that does not match the requested one (mismatch=true; a poisoned
// entry is never served). ioErr marks read failures distinct from
// ordinary absence.
func (c *PointCache) load(fullKey string) (rec bench.PointRecord, ok, mismatch, ioErr bool) {
	data, err := os.ReadFile(c.path(fullKey))
	if err != nil {
		return bench.PointRecord{}, false, false, !os.IsNotExist(err)
	}
	if err := json.Unmarshal(data, &rec); err != nil {
		return bench.PointRecord{}, false, false, true
	}
	if rec.Schema != bench.PointSchema {
		return bench.PointRecord{}, false, false, false
	}
	if rec.Key != fullKey {
		return bench.PointRecord{}, false, true, false
	}
	return rec, true, false, false
}

// store writes the record under fullKey, atomically (temp + rename) so
// readers never observe a torn entry.
func (c *PointCache) store(fullKey string, rec bench.PointRecord) error {
	rec.Key = fullKey
	data, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	path := c.path(fullKey)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// pointBaseKey fingerprints everything outside the point's own key that
// determines its value. Unlike ConfigHash it excludes the output format
// (point payloads are structured data, rendered later) and includes the
// solver and sweep-logic versions.
func pointBaseKey(env bench.Env) string {
	spec, err := json.Marshal(env.Spec)
	if err != nil {
		spec = []byte(err.Error())
	}
	faults := ""
	if env.Faults != nil {
		faults = env.Faults.String()
	}
	h := sha256.New()
	fmt.Fprintf(h, "schema=%d|sweep=%d|fluid=%d|%s|seed=%d|runs=%d|faults=%s",
		bench.PointSchema, bench.SweepVersion, fluid.Version, spec, env.Seed, env.Runs, faults)
	return hex.EncodeToString(h.Sum(nil))
}

// memoEntry is one in-flight or completed point in the campaign memo.
type memoEntry struct {
	done chan struct{}
	rec  bench.PointRecord
}

// pointScheduler implements bench.PointRunner for a campaign: points
// from every experiment run on the shared pool, deduplicated through an
// in-memory memo (two experiments requesting the same cell compute it
// once) and optionally replayed from / stored to a persistent cache.
type pointScheduler struct {
	pool  *pointPool
	cache *PointCache // nil disables the persistent layer
	stats *CacheStats // nil disables counting
	base  string

	mu   sync.Mutex
	memo map[string]*memoEntry
}

func newPointScheduler(pool *pointPool, cache *PointCache, stats *CacheStats, env bench.Env) *pointScheduler {
	if stats == nil {
		stats = &CacheStats{}
	}
	return &pointScheduler{
		pool:  pool,
		cache: cache,
		stats: stats,
		base:  pointBaseKey(env),
		memo:  make(map[string]*memoEntry),
	}
}

// RunPoints schedules the batch on the pool and participates until it
// completes, then returns records index-aligned with pts.
func (s *pointScheduler) RunPoints(env bench.Env, pts []bench.Point) []bench.PointRecord {
	recs := make([]bench.PointRecord, len(pts))
	if len(pts) == 0 {
		return recs
	}
	if s.pool == nil {
		for i, p := range pts {
			recs[i] = s.point(env, p)
		}
		return recs
	}
	b := s.pool.newBatch(len(pts))
	tasks := make([]func(), len(pts))
	for i := range pts {
		i, p := i, pts[i]
		tasks[i] = func() {
			recs[i] = s.point(env, p)
			b.done()
		}
	}
	s.pool.enqueue(tasks)
	s.pool.runUntil(b)
	return recs
}

// point resolves one point: campaign memo, then persistent cache, then
// execution. Exactly one goroutine computes each distinct key; the
// others wait for its record.
func (s *pointScheduler) point(env bench.Env, p bench.Point) bench.PointRecord {
	fullKey := s.base + "/" + p.Key
	s.mu.Lock()
	if e, ok := s.memo[fullKey]; ok {
		s.mu.Unlock()
		<-e.done
		atomic.AddInt64(&s.stats.MemoHits, 1)
		return e.rec
	}
	e := &memoEntry{done: make(chan struct{})}
	s.memo[fullKey] = e
	s.mu.Unlock()

	e.rec = s.resolve(env, p, fullKey)
	if e.rec.Panic != nil {
		// A panicked point must not satisfy later requests for the key:
		// each owner re-executes and observes the panic itself.
		s.mu.Lock()
		delete(s.memo, fullKey)
		s.mu.Unlock()
	}
	close(e.done)
	return e.rec
}

// resolve loads the point from the persistent cache or executes it
// (storing the fresh record on success).
func (s *pointScheduler) resolve(env bench.Env, p bench.Point, fullKey string) bench.PointRecord {
	if s.cache != nil {
		rec, ok, mismatch, ioErr := s.cache.load(fullKey)
		if ok {
			atomic.AddInt64(&s.stats.Hits, 1)
			return rec
		}
		if mismatch {
			atomic.AddInt64(&s.stats.Mismatches, 1)
		}
		if ioErr {
			atomic.AddInt64(&s.stats.Errors, 1)
		}
	}
	atomic.AddInt64(&s.stats.Misses, 1)
	rec := bench.ExecutePoint(env, p)
	if s.cache != nil && rec.Panic == nil {
		if err := s.cache.store(fullKey, rec); err != nil {
			atomic.AddInt64(&s.stats.Errors, 1)
		}
	}
	return rec
}
