package runner

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/trace"
)

// testEnv is a noise-free single-run henri environment: cheap enough to
// sweep the whole registry, deterministic down to the last byte.
func testEnv(t *testing.T) bench.Env {
	t.Helper()
	env, err := core.Env("henri", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// TestCampaignDeterministic runs the full registry twice with the same
// seed — once serially (-j 1) and once on eight workers — and demands
// identical ordering and byte-identical rendered tables: concurrency
// must never leak into the numbers, and a same-seed re-run must be a
// fixed point.
func TestCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry campaign; skipped with -short")
	}
	exps := core.Experiments()
	serial := Collect(Run(testEnv(t), exps, Options{Workers: 1}))
	parallel := Collect(Run(testEnv(t), exps, Options{Workers: 8}))
	if len(serial) != len(exps) || len(parallel) != len(exps) {
		t.Fatalf("got %d serial / %d parallel results, want %d", len(serial), len(parallel), len(exps))
	}
	for i, e := range exps {
		s, p := serial[i], parallel[i]
		if s.Exp.ID != e.ID || p.Exp.ID != e.ID {
			t.Fatalf("result %d is %q/%q, want %q (registry order)", i, s.Exp.ID, p.Exp.ID, e.ID)
		}
		if s.Err != nil || p.Err != nil {
			t.Fatalf("%s failed: serial %v, parallel %v", e.ID, s.Err, p.Err)
		}
		if s.Rendered == "" {
			t.Fatalf("%s rendered empty output", e.ID)
		}
		if s.Rendered != p.Rendered {
			t.Errorf("%s differs between -j 1 and -j 8:\n%s", e.ID,
				trace.UnifiedDiff("j1", "j8", s.Rendered, p.Rendered))
		}
		if s.Metrics.Worlds == 0 || s.Metrics.SimSeconds <= 0 {
			t.Errorf("%s metrics empty: %+v", e.ID, s.Metrics)
		}
		if s.Metrics.Rows == 0 || s.Metrics.Tables != len(s.Tables) {
			t.Errorf("%s result accounting wrong: %+v vs %d tables", e.ID, s.Metrics, len(s.Tables))
		}
	}
}

// TestOptimizedSolverCampaigns is the determinism lock on the
// incremental fluid solver at campaign scale: the two most
// solver-hostile campaigns — fig4 (the full interference sweep) and
// faults-crash-cg (node crashes cancel in-flight flows mid-solve) —
// run twice each (a same-seed re-run must be a fixed point, the
// equivalent of -count=2) at both -j 1 and -j 8, and every rendered
// byte must be identical across all four runs.
func TestOptimizedSolverCampaigns(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-campaign determinism sweep; skipped with -short")
	}
	var exps []core.Experiment
	for _, id := range []string{"fig4", "faults-crash-cg"} {
		e, ok := core.ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	type runKey struct {
		workers int
		iter    int
	}
	rendered := map[runKey][]string{}
	for _, workers := range []int{1, 8} {
		for iter := 0; iter < 2; iter++ {
			res := Collect(Run(testEnv(t), exps, Options{Workers: workers}))
			if len(res) != len(exps) {
				t.Fatalf("j%d iter %d: got %d results, want %d", workers, iter, len(res), len(exps))
			}
			for i, r := range res {
				if r.Err != nil {
					t.Fatalf("j%d iter %d: %s failed: %v", workers, iter, exps[i].ID, r.Err)
				}
				rendered[runKey{workers, iter}] = append(rendered[runKey{workers, iter}], r.Rendered)
			}
		}
	}
	base := rendered[runKey{1, 0}]
	for key, outs := range rendered {
		for i, out := range outs {
			if out != base[i] {
				t.Errorf("%s differs between j1 iter0 and j%d iter%d:\n%s", exps[i].ID, key.workers, key.iter,
					trace.UnifiedDiff("j1-iter0", "other", base[i], out))
			}
		}
	}
}

// TestRunnerIsolatesEnv checks that an experiment mutating its spec
// cannot affect the caller's environment or a sibling experiment.
func TestRunnerIsolatesEnv(t *testing.T) {
	env := testEnv(t)
	orig := env.Spec.NIC.NoiseFrac
	mutate := core.Experiment{ID: "mutate", Title: "t", Run: func(e bench.Env) []*trace.Table {
		e.Spec.NIC.NoiseFrac = orig + 42
		e.Spec.Freq.Turbo[0][0].Freq = 99
		tb := trace.NewTable("x", "noise")
		tb.Add(e.Spec.NIC.NoiseFrac)
		return []*trace.Table{tb}
	}}
	res := Collect(Run(env, []core.Experiment{mutate, mutate}, Options{Workers: 2}))
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if env.Spec.NIC.NoiseFrac != orig {
		t.Fatalf("caller spec mutated: noise %v, want %v", env.Spec.NIC.NoiseFrac, orig)
	}
	if env.Spec.Freq.Turbo[0][0].Freq == 99 {
		t.Fatal("caller turbo table mutated through shared slice")
	}
	if env.Meter != nil {
		t.Fatal("caller env acquired a meter")
	}
}

// TestRunnerPanicIsolation: a panicking experiment is reported as an
// error in its slot; the rest of the campaign completes.
func TestRunnerPanicIsolation(t *testing.T) {
	boom := core.Experiment{ID: "boom", Title: "t", Run: func(bench.Env) []*trace.Table {
		panic("kaboom")
	}}
	ok := core.Experiment{ID: "ok", Title: "t", Run: func(bench.Env) []*trace.Table {
		tb := trace.NewTable("x", "v")
		tb.Add(1)
		return []*trace.Table{tb}
	}}
	res := Collect(Run(testEnv(t), []core.Experiment{boom, ok}, Options{Workers: 2}))
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "kaboom") {
		t.Fatalf("panic not captured: %v", res[0].Err)
	}
	if res[1].Err != nil || res[1].Rendered == "" {
		t.Fatalf("sibling experiment damaged: %+v", res[1])
	}
}

func TestSummary(t *testing.T) {
	ok := core.Experiment{ID: "ok", Title: "t", Run: func(bench.Env) []*trace.Table {
		tb := trace.NewTable("x", "v")
		tb.Add(1)
		tb.Add(2)
		return []*trace.Table{tb}
	}}
	res := Collect(Run(testEnv(t), []core.Experiment{ok, ok}, Options{}))
	sum := Summary(res)
	if len(sum.Rows) != 3 {
		t.Fatalf("summary has %d rows, want 2 experiments + TOTAL", len(sum.Rows))
	}
	last := sum.Rows[len(sum.Rows)-1]
	if last[0] != "TOTAL" {
		t.Fatalf("last summary row %v", last)
	}
	if last[len(last)-1] != "4" { // 2 experiments × 2 rows
		t.Fatalf("TOTAL rows = %s, want 4", last[len(last)-1])
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	ok := core.Experiment{ID: "ok", Title: "t", Run: func(bench.Env) []*trace.Table {
		tb := trace.NewTable("x", "v")
		tb.Add(12345)
		return []*trace.Table{tb}
	}}
	dir := t.TempDir()
	res := Collect(Run(testEnv(t), []core.Experiment{ok}, Options{}))[0]

	if err := VerifyGolden(dir, "henri", res); err == nil {
		t.Fatal("verify passed with no golden file")
	} else if !strings.Contains(err.Error(), "-update") {
		t.Fatalf("missing-golden error does not point at -update: %v", err)
	}
	if err := UpdateGolden(dir, "henri", res); err != nil {
		t.Fatal(err)
	}
	if err := VerifyGolden(dir, "henri", res); err != nil {
		t.Fatalf("verify after update: %v", err)
	}
	// Corrupt the golden: verify must fail with a unified diff.
	stale := res
	stale.Rendered = strings.Replace(res.Rendered, "12345", "54321", 1)
	if err := UpdateGolden(dir, "henri", stale); err != nil {
		t.Fatal(err)
	}
	err := VerifyGolden(dir, "henri", res)
	if err == nil {
		t.Fatal("verify passed against corrupted golden")
	}
	if !strings.Contains(err.Error(), "@@") || !strings.Contains(err.Error(), "+12345") {
		t.Fatalf("error lacks unified diff: %v", err)
	}
}
