package runner

import (
	"sync"

	"repro/internal/bench"
)

// BreakerState names the circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed: operations flow to the wrapped store.
	BreakerClosed BreakerState = iota
	// BreakerOpen: operations are skipped (Load reports a clean miss,
	// Store drops the write) except for periodic half-open probes.
	BreakerOpen
)

func (s BreakerState) String() string {
	if s == BreakerOpen {
		return "open"
	}
	return "closed"
}

// BreakerStats is a point-in-time snapshot of a breaker's counters.
type BreakerStats struct {
	State BreakerState `json:"-"`
	// StateName is the JSON-friendly rendering of State.
	StateName string `json:"state"`
	// Trips counts closed→open transitions; Recoveries open→closed.
	Trips      int64 `json:"trips"`
	Recoveries int64 `json:"recoveries"`
	// Probes counts half-open operations let through while open;
	// Skipped counts operations answered without touching the store.
	Probes  int64 `json:"probes"`
	Skipped int64 `json:"skipped"`
}

// Breaker is a circuit breaker over a CacheStore: failLimit consecutive
// I/O failures open the circuit, after which operations are answered
// locally (Load → clean miss, Store → dropped) so a sick or unreachable
// cache costs the campaign nothing beyond recomputation. While open,
// every probeEvery-th operation is sent through as a half-open probe; a
// probe that succeeds closes the circuit again. Probing is op-count
// based rather than wall-clock based, so behaviour is deterministic
// under test and recovery latency scales with actual traffic.
//
// Cache semantics make this safe: a suppressed Load is
// indistinguishable from a miss (the point is recomputed), and a
// dropped Store only forfeits future hits.
//
// Only Load outcomes and Store *failures* move the state machine. A
// successful Store against a write-behind cache is just a buffer
// append — it proves nothing about the disk — so counting it as
// health would let alternating failed-read/buffered-write traffic
// reset the failure streak forever and keep a dead cache's circuit
// closed. Recovery therefore rides on load probes, which every point
// issues before it would store anything.
type Breaker struct {
	store CacheStore

	mu         sync.Mutex
	state      BreakerState
	failures   int64 // consecutive failures while closed
	sinceOpen  int64 // operations seen since the circuit opened
	failLimit  int64
	probeEvery int64
	trips      int64
	recoveries int64
	probes     int64
	skipped    int64
}

// NewBreaker wraps store. failLimit <= 0 defaults to 5 consecutive
// failures; probeEvery <= 0 defaults to probing every 16th operation.
func NewBreaker(store CacheStore, failLimit, probeEvery int) *Breaker {
	if failLimit <= 0 {
		failLimit = 5
	}
	if probeEvery <= 0 {
		probeEvery = 16
	}
	return &Breaker{store: store, failLimit: int64(failLimit), probeEvery: int64(probeEvery)}
}

// Stats returns a snapshot of the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:      b.state,
		StateName:  b.state.String(),
		Trips:      b.trips,
		Recoveries: b.recoveries,
		Probes:     b.probes,
		Skipped:    b.skipped,
	}
}

// admit decides whether the next operation may touch the store.
func (b *Breaker) admit() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerClosed {
		return true
	}
	b.sinceOpen++
	if b.sinceOpen%b.probeEvery == 0 {
		b.probes++
		return true
	}
	b.skipped++
	return false
}

// observe records an operation's outcome and moves the state machine.
func (b *Breaker) observe(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if failed {
		if b.state == BreakerClosed {
			b.failures++
			if b.failures >= b.failLimit {
				b.state = BreakerOpen
				b.trips++
				b.sinceOpen = 0
			}
		}
		// A failed probe leaves the circuit open; the op counter keeps
		// running so the next probe window arrives on schedule.
		return
	}
	if b.state == BreakerOpen {
		b.state = BreakerClosed
		b.recoveries++
	}
	b.failures = 0
}

// Load implements CacheStore. While open (and not probing) it reports a
// clean miss so the caller recomputes without waiting on a sick store.
func (b *Breaker) Load(fullKey string) (rec bench.PointRecord, ok, mismatch, ioErr bool) {
	if !b.admit() {
		return bench.PointRecord{}, false, false, false
	}
	rec, ok, mismatch, ioErr = b.store.Load(fullKey)
	b.observe(ioErr)
	return rec, ok, mismatch, ioErr
}

// Store implements CacheStore. While open (and not probing) the write
// is dropped without error — the record simply won't be a future hit.
// Only a failure is observed (see the type comment).
func (b *Breaker) Store(fullKey string, rec bench.PointRecord) error {
	if !b.admit() {
		return nil
	}
	err := b.store.Store(fullKey, rec)
	if err != nil {
		b.observe(true)
	}
	return err
}
