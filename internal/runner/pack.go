package runner

import (
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"
)

// Pack segments are the point cache's batched storage unit: one flush of
// the write-behind buffer becomes one immutable append-only file holding
// every record of the batch, written once via temp+rename. Compared to
// the legacy one-file-per-point layout this turns N
// create/write/rename syscall triples per campaign into one, and lets a
// warm campaign page a whole batch of records in with a single read.
//
// Pack layout (integers are unsigned varints):
//
//	magic   "IPK1"                       (4 bytes)
//	count   uvarint
//	entries count × { sum [32]byte | len uvarint | record bytes }
//
// Entries are sorted by content address. Each record is the binary
// PointRecord encoding (see bench.PointRecord.EncodeBinary), which
// carries its own framing and schema — a pack of stale records degrades
// to misses, never to corrupt output.
//
// Each pack gets a sidecar index so discovery never reads record bytes:
//
//	magic   "IPX1"                       (4 bytes)
//	count   uvarint
//	entries count × { sum [32]byte | off uvarint | len uvarint }
//
// off/len locate the record bytes inside the pack file. The index is an
// optimisation only: a pack with a missing or corrupt sidecar is
// re-indexed by scanning the pack itself.

const (
	packMagic = "IPK1"
	idxMagic  = "IPX1"
	// sumBytes is the raw length of a content address (sha256).
	sumBytes = 32
)

// packRef locates one record inside a flushed pack segment.
type packRef struct {
	path string
	off  int
	n    int
}

// idxEntry is one (content address, extent) pair of a pack's index.
type idxEntry struct {
	sum string // hex
	off int
	n   int
}

// buildPack serialises a batch of encoded records (keyed by hex content
// address) into a pack image and its index entries, sorted by address.
func buildPack(entries map[string][]byte) (pack []byte, refs []idxEntry, err error) {
	sums := make([]string, 0, len(entries))
	size := len(packMagic) + binary.MaxVarintLen64
	for s, data := range entries {
		if len(s) != 2*sumBytes {
			return nil, nil, fmt.Errorf("runner: pack entry address %q is not a sha256", s)
		}
		sums = append(sums, s)
		size += sumBytes + binary.MaxVarintLen64 + len(data)
	}
	sort.Strings(sums)
	pack = make([]byte, 0, size)
	pack = append(pack, packMagic...)
	pack = binary.AppendUvarint(pack, uint64(len(sums)))
	refs = make([]idxEntry, 0, len(sums))
	for _, s := range sums {
		raw, err := hex.DecodeString(s)
		if err != nil {
			return nil, nil, fmt.Errorf("runner: pack entry address %q: %w", s, err)
		}
		data := entries[s]
		pack = append(pack, raw...)
		pack = binary.AppendUvarint(pack, uint64(len(data)))
		refs = append(refs, idxEntry{sum: s, off: len(pack), n: len(data)})
		pack = append(pack, data...)
	}
	return pack, refs, nil
}

// encodeIdx serialises index entries into the sidecar format.
func encodeIdx(refs []idxEntry) []byte {
	idx := make([]byte, 0, len(idxMagic)+binary.MaxVarintLen64+len(refs)*(sumBytes+2*binary.MaxVarintLen64))
	idx = append(idx, idxMagic...)
	idx = binary.AppendUvarint(idx, uint64(len(refs)))
	for _, e := range refs {
		raw, err := hex.DecodeString(e.sum)
		if err != nil || len(raw) != sumBytes {
			continue // unreachable for refs built by buildPack
		}
		idx = append(idx, raw...)
		idx = binary.AppendUvarint(idx, uint64(e.off))
		idx = binary.AppendUvarint(idx, uint64(e.n))
	}
	return idx
}

// packCursor walks a serialised pack or index, latching the first error.
type packCursor struct {
	data []byte
	err  error
}

func (c *packCursor) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

func (c *packCursor) take(n int) []byte {
	if c.err != nil || n < 0 || n > len(c.data) {
		c.fail("runner: truncated pack data")
		return nil
	}
	b := c.data[:n]
	c.data = c.data[n:]
	return b
}

func (c *packCursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.data)
	if n <= 0 {
		c.fail("runner: truncated pack varint")
		return 0
	}
	c.data = c.data[n:]
	return v
}

// parseIdx decodes a sidecar index into entries.
func parseIdx(data []byte) ([]idxEntry, error) {
	c := &packCursor{data: data}
	if string(c.take(len(idxMagic))) != idxMagic {
		return nil, fmt.Errorf("runner: bad pack index magic")
	}
	count := c.uvarint()
	refs := make([]idxEntry, 0, count)
	for i := uint64(0); i < count && c.err == nil; i++ {
		sum := hex.EncodeToString(c.take(sumBytes))
		off := c.uvarint()
		n := c.uvarint()
		refs = append(refs, idxEntry{sum: sum, off: int(off), n: int(n)})
	}
	if c.err != nil {
		return nil, c.err
	}
	return refs, nil
}

// scanPackRefs re-derives a pack's index entries from the pack bytes
// themselves — the recovery path when the sidecar is missing or corrupt.
func scanPackRefs(data []byte) ([]idxEntry, error) {
	total := len(data)
	c := &packCursor{data: data}
	if string(c.take(len(packMagic))) != packMagic {
		return nil, fmt.Errorf("runner: bad pack magic")
	}
	count := c.uvarint()
	refs := make([]idxEntry, 0, count)
	for i := uint64(0); i < count && c.err == nil; i++ {
		sum := hex.EncodeToString(c.take(sumBytes))
		n := int(c.uvarint())
		off := total - len(c.data)
		if c.take(n) == nil {
			break
		}
		refs = append(refs, idxEntry{sum: sum, off: off, n: n})
	}
	if c.err != nil {
		return nil, c.err
	}
	if len(c.data) != 0 {
		return nil, fmt.Errorf("runner: %d trailing bytes after pack entries", len(c.data))
	}
	return refs, nil
}

// parsePackEntries scans a pack into its raw records keyed by address.
func parsePackEntries(data []byte) (map[string][]byte, error) {
	refs, err := scanPackRefs(data)
	if err != nil {
		return nil, err
	}
	entries := make(map[string][]byte, len(refs))
	for _, e := range refs {
		entries[e.sum] = append([]byte(nil), data[e.off:e.off+e.n]...)
	}
	return entries, nil
}
