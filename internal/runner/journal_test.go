package runner

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/trace"
)

// fakeExp builds a cheap deterministic experiment that renders one row;
// calls, when non-nil, counts executions (shared across workers only in
// single-worker tests).
func fakeExp(id string, calls *int) core.Experiment {
	return core.Experiment{ID: id, Title: id, Run: func(bench.Env) []*trace.Table {
		if calls != nil {
			*calls++
		}
		tb := trace.NewTable("t:"+id, "v")
		tb.Add(id)
		return []*trace.Table{tb}
	}}
}

func tmpJournal(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "j.jsonl")
}

func TestJournalAppendLookupReload(t *testing.T) {
	path := tmpJournal(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	e := JournalEntry{ID: "fig3", Cluster: "henri", Hash: "abc", Rendered: "table\n", Worlds: 2, Rows: 5}
	if err := j.Append(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := j.Lookup("fig3", "other"); ok {
		t.Fatal("Lookup matched a different hash")
	}
	got, ok := j.Lookup("fig3", "abc")
	if !ok || got.Rendered != "table\n" || got.Worlds != 2 {
		t.Fatalf("Lookup after Append: %+v, ok=%v", got, ok)
	}
	j.Close()

	// Reload from disk: the entry persists.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got, ok := j2.Lookup("fig3", "abc"); !ok || got.Rendered != "table\n" {
		t.Fatalf("Lookup after reload: %+v, ok=%v", got, ok)
	}
	if j2.Len() != 1 {
		t.Fatalf("reloaded journal holds %d entries, want 1", j2.Len())
	}
}

// TestJournalToleratesTruncatedTail: a campaign killed mid-append
// leaves a partial final line; opening the journal drops it and keeps
// every complete entry.
func TestJournalToleratesTruncatedTail(t *testing.T) {
	path := tmpJournal(t)
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalEntry{ID: "a", Hash: "h", Rendered: "A\n"}); err != nil {
		t.Fatal(err)
	}
	j.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprint(f, `{"schema":1,"id":"b","hash":"h","rend`) // torn write, no newline
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("truncated tail not tolerated: %v", err)
	}
	defer j2.Close()
	if _, ok := j2.Lookup("a", "h"); !ok {
		t.Fatal("complete entry lost")
	}
	if _, ok := j2.Lookup("b", "h"); ok {
		t.Fatal("torn entry resurrected")
	}
	// Appending after recovery starts a fresh valid line.
	if err := j2.Append(JournalEntry{ID: "c", Hash: "h", Rendered: "C\n"}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after recovery append: %v", err)
	}
	defer j3.Close()
	if _, ok := j3.Lookup("c", "h"); !ok {
		t.Fatal("post-recovery append lost")
	}
}

// TestJournalSkipsMidFileCorruption: a record damaged mid-file (torn
// write isolated on its own line, stray garbage) is skipped, counted
// and logged; every intact record before AND after it still loads. One
// bad record must never cost the rest of the journal.
func TestJournalSkipsMidFileCorruption(t *testing.T) {
	path := tmpJournal(t)
	body := `{"schema":1,"id":"before","hash":"h"}
garbage not json
{"schema":1,"id":"after","hash":"h"}
`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	var logged []string
	j, err := OpenJournalFS(path, chaos.OS(), func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatalf("mid-file corruption aborted recovery: %v", err)
	}
	defer j.Close()
	if _, ok := j.Lookup("before", "h"); !ok {
		t.Fatal("entry before the corrupt record lost")
	}
	if _, ok := j.Lookup("after", "h"); !ok {
		t.Fatal("entry after the corrupt record lost")
	}
	if j.Skipped() != 1 {
		t.Fatalf("Skipped() = %d, want 1", j.Skipped())
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "line 2") {
		t.Fatalf("corrupt record not reported: %v", logged)
	}
}

// TestJournalSkipsTornMidRecord: a record torn *inside* the file — a
// half-written JSON line terminated by a later append's leading newline
// — is skipped without losing its neighbours.
func TestJournalSkipsTornMidRecord(t *testing.T) {
	path := tmpJournal(t)
	body := `{"schema":1,"id":"a","hash":"h","rendered":"A\n"}
{"schema":1,"id":"torn","hash":"h","rend
{"schema":1,"id":"b","hash":"h","rendered":"B\n"}
`
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("torn mid-record aborted recovery: %v", err)
	}
	defer j.Close()
	for _, id := range []string{"a", "b"} {
		if _, ok := j.Lookup(id, "h"); !ok {
			t.Fatalf("entry %q lost to a neighbouring torn record", id)
		}
	}
	if _, ok := j.Lookup("torn", "h"); ok {
		t.Fatal("torn record resurrected")
	}
	if j.Skipped() != 1 {
		t.Fatalf("Skipped() = %d, want 1", j.Skipped())
	}
}

// TestJournalTornAppendIsolated: when an append fails half-written, the
// journal marks itself dirty and the NEXT append leads with a newline,
// so the torn bytes stay on their own line and both the pre-tear and
// post-tear entries survive a reload.
func TestJournalTornAppendIsolated(t *testing.T) {
	path := tmpJournal(t)
	// Tear the 2nd write to the journal file (the 1st is entry "a").
	inj := chaos.NewInjector(1, mustChaos(t, "torn:ops=2-2,match=j.jsonl"))
	fsys := chaos.Flaky(chaos.OS(), inj)
	j, err := OpenJournalFS(path, fsys, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalEntry{ID: "a", Hash: "h", Rendered: "A\n"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalEntry{ID: "b", Hash: "h", Rendered: "B\n"}); err == nil {
		t.Fatal("torn append reported success")
	}
	// The failed entry is retried (or a different one lands) afterwards.
	if err := j.Append(JournalEntry{ID: "c", Hash: "h", Rendered: "C\n"}); err != nil {
		t.Fatalf("append after torn write: %v", err)
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen after torn append: %v", err)
	}
	defer j2.Close()
	for _, id := range []string{"a", "c"} {
		if _, ok := j2.Lookup(id, "h"); !ok {
			t.Fatalf("entry %q lost to the torn append", id)
		}
	}
	if _, ok := j2.Lookup("b", "h"); ok {
		t.Fatal("torn entry resurrected")
	}
	if j2.Skipped() != 1 {
		t.Fatalf("Skipped() = %d, want 1 (the torn half-record)", j2.Skipped())
	}
}

func mustChaos(t *testing.T, spec string) *chaos.Schedule {
	t.Helper()
	s, err := chaos.ParseSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigHashSensitivity(t *testing.T) {
	env := testEnv(t)
	base := ConfigHash(env, "ascii")
	if base != ConfigHash(env, "ascii") {
		t.Fatal("hash not deterministic")
	}
	seed := env
	seed.Seed++
	runs := env
	runs.Runs++
	faulty := env
	faulty.Faults = &fault.Schedule{Events: []fault.Event{{Kind: fault.PacketLoss, Prob: 0.5, Node: -1, From: -1, To: -1}}}
	for name, h := range map[string]string{
		"format": ConfigHash(env, "csv"),
		"seed":   ConfigHash(seed, "ascii"),
		"runs":   ConfigHash(runs, "ascii"),
		"faults": ConfigHash(faulty, "ascii"),
	} {
		if h == base {
			t.Errorf("changing %s does not change the config hash", name)
		}
	}
}

// TestRunResumableSkipsJournaled: with resume on, journaled experiments
// replay without executing, fresh ones run and are appended, and the
// merged stream stays in submission order.
func TestRunResumableSkipsJournaled(t *testing.T) {
	env := testEnv(t)
	j, err := OpenJournal(tmpJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var aCalls, bCalls, cCalls int
	exps := []core.Experiment{fakeExp("a", &aCalls), fakeExp("b", &bCalls), fakeExp("c", &cCalls)}
	opts := Options{Workers: 1}

	// Seed the journal with a completed run of "b" under this config.
	hash := ConfigHash(env, "ascii")
	pre := Collect(Run(env, exps[1:2], opts))
	if err := j.Append(entryFor(pre[0], "henri", hash)); err != nil {
		t.Fatal(err)
	}
	bRendered := pre[0].Rendered

	res := Collect(RunResumable(env, exps, opts, j, "henri", true))
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	for i, want := range []string{"a", "b", "c"} {
		if res[i].Exp.ID != want || res[i].Index != i {
			t.Fatalf("result %d is %s (index %d), want %s (submission order)", i, res[i].Exp.ID, res[i].Index, want)
		}
		if res[i].Err != nil {
			t.Fatalf("%s: %v", want, res[i].Err)
		}
	}
	if aCalls != 1 || cCalls != 1 {
		t.Fatalf("fresh experiments ran %d/%d times, want 1/1", aCalls, cCalls)
	}
	if bCalls != 1 {
		t.Fatalf("journaled experiment executed again (%d runs total, want the 1 seeding run)", bCalls)
	}
	if !res[1].Cached || res[1].Rendered != bRendered {
		t.Fatalf("cached result wrong: cached=%v rendered=%q", res[1].Cached, res[1].Rendered)
	}
	if res[0].Cached || res[2].Cached {
		t.Fatal("fresh results marked cached")
	}
	// The fresh completions were journaled: a second resume is all-cached.
	res2 := Collect(RunResumable(env, exps, opts, j, "henri", true))
	for i, r := range res2 {
		if !r.Cached {
			t.Fatalf("result %d not cached on second resume", i)
		}
		if r.Rendered != res[i].Rendered {
			t.Fatalf("result %d rendering drifted across resume", i)
		}
	}
	if aCalls != 1 || bCalls != 1 || cCalls != 1 {
		t.Fatalf("second resume executed experiments: %d/%d/%d", aCalls, bCalls, cCalls)
	}
}

// TestRunResumableNeverJournalsFailures: a failing experiment yields an
// error result and stays out of the journal, so a resume retries it.
func TestRunResumableNeverJournalsFailures(t *testing.T) {
	env := testEnv(t)
	j, err := OpenJournal(tmpJournal(t))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	boom := core.Experiment{ID: "boom", Title: "boom", Run: func(bench.Env) []*trace.Table {
		panic("kaboom")
	}}
	exps := []core.Experiment{fakeExp("ok", nil), boom}
	res := Collect(RunResumable(env, exps, Options{Workers: 1}, j, "henri", false))
	if res[0].Err != nil || res[1].Err == nil {
		t.Fatalf("unexpected outcomes: %v / %v", res[0].Err, res[1].Err)
	}
	if j.Len() != 1 {
		t.Fatalf("journal holds %d entries, want 1 (failures must not be recorded)", j.Len())
	}
	if _, ok := j.Lookup("boom", ConfigHash(env, "ascii")); ok {
		t.Fatal("failed experiment journaled")
	}
}
