package runner

import (
	"sync"
	"sync/atomic"
)

// The point pool is the campaign's shared work queue for sweep points.
// Every experiment that compiles a sweep enqueues its points here and
// then *participates*: the experiment's own goroutine executes queued
// tasks — its own or any other experiment's — until its batch is
// complete. Workers that have run out of experiments drain the pool
// until the campaign shuts it down. This work-sharing shape cannot
// deadlock on nested parallelism: a goroutine waiting for its batch is
// never idle while runnable work exists, and a batch's tasks are
// executed by whichever goroutines are free, so progress never depends
// on a particular worker being available.
type pointPool struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []func()
	closed bool
}

func newPointPool() *pointPool {
	p := &pointPool{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// batch tracks the completion of one RunPoints call's tasks.
type batch struct {
	pool    *pointPool
	pending int // guarded by pool.mu
}

func (p *pointPool) newBatch(n int) *batch {
	return &batch{pool: p, pending: n}
}

// done marks one task of the batch complete and wakes waiters.
func (b *batch) done() {
	b.pool.mu.Lock()
	b.pending--
	b.pool.mu.Unlock()
	b.pool.cond.Broadcast()
}

// enqueue appends tasks and wakes any waiting executors.
func (p *pointPool) enqueue(fns []func()) {
	p.mu.Lock()
	p.queue = append(p.queue, fns...)
	p.mu.Unlock()
	p.cond.Broadcast()
}

// pop removes the next task, or returns nil if the queue is empty.
func (p *pointPool) pop() func() {
	if len(p.queue) == 0 {
		return nil
	}
	fn := p.queue[0]
	p.queue[0] = nil
	p.queue = p.queue[1:]
	return fn
}

// runUntil executes queued tasks (anyone's) until the batch completes.
// When the queue is empty but the batch is still pending — its tasks
// are running on other goroutines — it blocks until woken by a task
// completion or a new enqueue.
func (p *pointPool) runUntil(b *batch) {
	p.mu.Lock()
	for b.pending > 0 {
		if fn := p.pop(); fn != nil {
			p.mu.Unlock()
			fn()
			p.mu.Lock()
			continue
		}
		p.cond.Wait()
	}
	p.mu.Unlock()
}

// drain executes queued tasks until the pool is closed; idle campaign
// workers call this so finished experiments' goroutines keep helping
// with the remaining experiments' points.
func (p *pointPool) drain() {
	p.mu.Lock()
	for {
		if fn := p.pop(); fn != nil {
			p.mu.Unlock()
			fn()
			p.mu.Lock()
			continue
		}
		if p.closed {
			p.mu.Unlock()
			return
		}
		p.cond.Wait()
	}
}

// close releases drained workers once the campaign is over. Any still
// queued tasks keep executing via their owners' runUntil loops.
func (p *pointPool) close() {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	p.cond.Broadcast()
}

// SharedPool is a long-lived point pool with its own worker-shard set,
// shared by every campaign of a service: campaigns enqueue their points
// here (Options.SharedPool) and the shard goroutines execute them, while
// each campaign's own experiment goroutines still participate through
// runUntil. Work from concurrent campaigns interleaves freely — the
// index-ordered merge in bench.RunPointsAs keeps every campaign's output
// deterministic regardless of who executed which point.
type SharedPool struct {
	pool     *pointPool
	workers  int
	restarts atomic.Int64
	wg       sync.WaitGroup
}

// NewSharedPool starts a pool with n dedicated worker shards (n <= 0
// panics: a service must size its shard set explicitly). Close releases
// the shards. Shards are self-healing: a task that panics past the
// executor's own recovery takes down only its shard's current drain
// loop, which is restarted immediately (counted by Restarts) — one
// poisoned point never shrinks the service's worker set.
func NewSharedPool(n int) *SharedPool {
	if n <= 0 {
		panic("runner: SharedPool needs at least one worker shard")
	}
	sp := &SharedPool{pool: newPointPool(), workers: n}
	sp.wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer sp.wg.Done()
			for !sp.runShard() {
				sp.restarts.Add(1)
			}
		}()
	}
	return sp
}

// runShard drains the pool once, converting a task panic into a clean
// return. It reports true when the pool closed (the shard should exit)
// and false when it survived a panic (the shard should restart).
func (sp *SharedPool) runShard() (closed bool) {
	defer func() {
		if p := recover(); p != nil {
			closed = false
		}
	}()
	sp.pool.drain()
	return true
}

// Workers reports the shard count.
func (sp *SharedPool) Workers() int { return sp.workers }

// Restarts reports how many times a shard was restarted after a task
// panic.
func (sp *SharedPool) Restarts() int64 { return sp.restarts.Load() }

// Close shuts the pool down and waits for the shards to exit. Queued
// tasks still complete via their owning campaigns' runUntil loops.
func (sp *SharedPool) Close() {
	sp.pool.close()
	sp.wg.Wait()
}
