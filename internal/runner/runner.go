// Package runner is the concurrent campaign engine: it fans a list of
// experiments out over a bounded worker pool while keeping the output
// deterministic. Each experiment runs against an isolated environment
// (deep-copied spec, fresh meter, the same seed — see bench.Env.Isolated),
// so workers share no mutable state, and results are streamed back in
// the order the experiments were submitted regardless of completion
// order: the rendering of a campaign is byte-identical at every worker
// count.
package runner

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/trace"
)

// Options configures one campaign.
type Options struct {
	// Workers bounds how many experiments run concurrently; <= 0 means
	// runtime.GOMAXPROCS(0).
	Workers int
	// Format selects the rendering ("ascii" or "csv"); "" means ascii.
	Format string
	// Deadline bounds each experiment attempt's wall-clock time; an
	// attempt that overruns is abandoned and reported as a failure
	// (possibly retried, see Retries). 0 disables the deadline.
	Deadline time.Duration
	// Retries re-runs a failed attempt (panic, render error or blown
	// deadline) up to this many extra times before the experiment is
	// reported as failed. 0 means one attempt only.
	Retries int
	// Cache, when non-nil, persists computed sweep points
	// content-addressed by configuration (local PointCache or a remote
	// store): repeated campaigns replay unchanged points instead of
	// recomputing them.
	Cache CacheStore
	// CacheStats, when non-nil, receives the campaign's point-level
	// cache accounting (hits, misses, memo hits).
	CacheStats *CacheStats
	// Flight, when non-nil, deduplicates point computations against
	// other campaigns sharing the same PointFlight: a service passes one
	// flight to every campaign so concurrent clients racing on a cell
	// compute it exactly once.
	Flight *PointFlight
	// SharedPool, when non-nil, executes this campaign's points on a
	// service-wide worker-shard set instead of a private per-campaign
	// pool; the pool outlives the campaign and is never closed by Run.
	SharedPool *SharedPool
	// Ctx, when non-nil, cancels the campaign: once it expires, points
	// not yet started fail immediately (their experiments report the
	// cancellation) instead of executing. Points already executing run
	// to completion — the simulator cannot be interrupted mid-world.
	Ctx context.Context
	// DegradeAfter is the cache-error budget before the campaign
	// permanently switches to no-cache mode (see CacheStats.Degraded);
	// <= 0 means DefaultDegradeAfter.
	DegradeAfter int
}

// Result is the outcome of one experiment.
type Result struct {
	// Exp is the experiment that ran; Index its position in the
	// submitted slice (results arrive in ascending Index order).
	Exp   core.Experiment
	Index int
	// Tables are the experiment's result tables; Rendered is their
	// Options.Format rendering.
	Tables   []*trace.Table
	Rendered string
	// Err is non-nil when the experiment panicked or failed to render;
	// the other workers keep running.
	Err error
	// Cached marks a result replayed from a campaign journal instead of
	// executed (see RunResumable); Tables is nil for cached results but
	// Rendered and Metrics carry the journaled values.
	Cached bool
	// DurabilityErr is non-nil when the experiment SUCCEEDED but its
	// journal append failed: the result is correct and usable, it just
	// will not survive a crash. Callers should warn, not fail.
	DurabilityErr error
	// Metrics is the per-experiment accounting.
	Metrics Metrics
}

// Metrics summarises one experiment's execution.
type Metrics struct {
	ID string
	// Wall is the host time the experiment took.
	Wall time.Duration
	// SimSeconds is the total simulated time across the experiment's
	// worlds; Worlds how many worlds it built.
	SimSeconds float64
	Worlds     int
	// Tables and Rows count the result set.
	Tables, Rows int
	// Attempts is how many times the experiment ran (1 + retries used).
	Attempts int
	// Faults aggregates the fault/recovery counters over every world
	// the experiment built; all zero for healthy runs.
	Faults bench.FaultTotals
}

// Run executes exps over a bounded worker pool and returns a channel
// that yields one Result per experiment, in the order of exps. The
// channel is closed after the last result. Each experiment gets its own
// isolated copy of env, so env itself is never mutated.
func Run(env bench.Env, exps []core.Experiment, opts Options) <-chan Result {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	format := opts.Format
	if format == "" {
		format = "ascii"
	}

	// The scheduling unit is the sweep *point*, not the experiment: every
	// experiment compiles its parameter grids into points (see
	// bench.RunPointsAs) and submits them to this campaign-wide pool.
	// Workers beyond the experiment count are therefore not wasted — they
	// drain the pool directly — and a single huge experiment still
	// spreads across all -j workers. With a SharedPool the points go to
	// the service-wide shard set instead: campaign workers then only run
	// experiments (the shards and each experiment's own runUntil
	// participation execute the points), so finished campaigns never
	// park goroutines in a pool they do not own.
	pool := newPointPool()
	shared := opts.SharedPool != nil
	if shared {
		pool = opts.SharedPool.pool
	}
	sched := newPointScheduler(pool, opts.Cache, opts.Flight, opts.CacheStats, env)
	sched.ctx = opts.Ctx
	if opts.DegradeAfter > 0 {
		sched.degradeAfter = int64(opts.DegradeAfter)
	}
	env.Sched = sched

	// One buffered slot per experiment lets workers finish out of order
	// while the collector drains strictly in submission order.
	slots := make([]chan Result, len(exps))
	for i := range slots {
		slots[i] = make(chan Result, 1)
	}
	jobs := make(chan int)
	go func() {
		for i := range exps {
			jobs <- i
		}
		close(jobs)
	}()
	for w := 0; w < workers; w++ {
		go func() {
			for i := range jobs {
				slots[i] <- runOne(env, exps[i], i, format, opts)
			}
			// Out of experiments: keep executing other experiments'
			// points until the campaign ends. On a shared pool the
			// worker exits instead — draining would park it until the
			// *service* shuts down.
			if !shared {
				pool.drain()
			}
		}()
	}
	out := make(chan Result)
	go func() {
		for _, slot := range slots {
			out <- <-slot
		}
		if !shared {
			pool.close()
		}
		close(out)
	}()
	return out
}

// Collect drains a Run channel into a slice (convenience for callers
// that do not need streaming).
func Collect(results <-chan Result) []Result {
	var out []Result
	for r := range results {
		out = append(out, r)
	}
	return out
}

// runOne executes a single experiment, retrying failed attempts up to
// Options.Retries times, so a campaign degrades gracefully: one broken
// experiment yields one failed Result while every other experiment
// completes.
func runOne(env bench.Env, e core.Experiment, index int, format string, opts Options) Result {
	for attempt := 0; ; attempt++ {
		res := attemptOne(env, e, index, format, opts.Deadline)
		res.Metrics.Attempts = attempt + 1
		if res.Err == nil || attempt >= opts.Retries {
			return res
		}
	}
}

// attemptOne runs one attempt of an experiment against an isolated
// environment, converting panics into errors and enforcing the
// wall-clock deadline. A blown deadline abandons the attempt's
// goroutine (a simulated experiment cannot be interrupted; the
// goroutine finishes on its own and its result is discarded).
func attemptOne(env bench.Env, e core.Experiment, index int, format string, deadline time.Duration) Result {
	start := time.Now()
	done := make(chan Result, 1)
	go func() { done <- execute(env, e, index, format) }()
	if deadline <= 0 {
		return <-done
	}
	select {
	case res := <-done:
		return res
	case <-time.After(deadline):
		return Result{
			Exp: e, Index: index,
			Err:     fmt.Errorf("runner: experiment %s exceeded the %v deadline", e.ID, deadline),
			Metrics: Metrics{ID: e.ID, Wall: time.Since(start)},
		}
	}
}

// execute performs the experiment body and accounting of one attempt.
func execute(env bench.Env, e core.Experiment, index int, format string) Result {
	res := Result{Exp: e, Index: index}
	iso := env.Isolated()
	start := time.Now()
	func() {
		defer func() {
			if p := recover(); p != nil {
				res.Err = fmt.Errorf("runner: experiment %s panicked: %v", e.ID, p)
			}
		}()
		res.Tables = e.Run(iso)
		res.Rendered, res.Err = core.RenderTables(format, res.Tables)
	}()
	res.Metrics = Metrics{
		ID:         e.ID,
		Wall:       time.Since(start),
		SimSeconds: iso.Meter.SimSeconds(),
		Worlds:     iso.Meter.Worlds(),
		Tables:     len(res.Tables),
		Faults:     iso.Meter.FaultTotals(),
	}
	for _, t := range res.Tables {
		res.Metrics.Rows += len(t.Rows)
	}
	return res
}

// Summary renders the per-experiment metrics of a campaign as a table:
// wall-clock, simulated time, world count, and result-set size, plus a
// totals row.
func Summary(results []Result) *trace.Table {
	t := trace.NewTable("Runner summary (per experiment)",
		"experiment", "status", "wall_ms", "sim_s", "worlds", "tables", "rows")
	var wall time.Duration
	var sim float64
	var worlds, tables, rows int
	for _, r := range results {
		status := "ok"
		switch {
		case r.Err != nil:
			status = "error"
		case r.Cached:
			status = "cached"
		}
		m := r.Metrics
		t.Add(m.ID, status, float64(m.Wall.Milliseconds()), m.SimSeconds, m.Worlds, m.Tables, m.Rows)
		wall += m.Wall
		sim += m.SimSeconds
		worlds += m.Worlds
		tables += m.Tables
		rows += m.Rows
	}
	t.Add("TOTAL", "-", float64(wall.Milliseconds()), sim, worlds, tables, rows)
	return t
}
