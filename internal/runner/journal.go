package runner

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/bench"
	"repro/internal/core"
)

// The campaign journal makes long campaigns crash-safe: every
// completed experiment's result is appended to a JSON-lines file the
// moment it finishes, keyed by experiment ID and a hash of the full
// configuration (spec, seed, runs, format, fault schedule). A campaign
// that is killed after experiment k can be re-run with -resume: results
// already in the journal are replayed byte-identically and only the
// missing experiments execute. Failed experiments are never journaled,
// so a resume retries them.

// journalSchema versions the entry format; entries with a different
// schema are ignored on load (a stale journal degrades to a fresh
// campaign, never to corrupt output).
const journalSchema = 1

// JournalEntry is one completed experiment as recorded on disk.
type JournalEntry struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	// Cluster names the spec the experiment ran on; Hash fingerprints
	// the full configuration (see ConfigHash) so a journal recorded
	// under different settings is never replayed.
	Cluster string `json:"cluster"`
	Hash    string `json:"hash"`
	// Rendered is the experiment's formatted output, replayed verbatim
	// on resume.
	Rendered string `json:"rendered"`
	// The per-experiment accounting, preserved so the resumed
	// campaign's summary still covers the cached rows.
	SimSeconds float64           `json:"sim_seconds"`
	Worlds     int               `json:"worlds"`
	Tables     int               `json:"tables"`
	Rows       int               `json:"rows"`
	Attempts   int               `json:"attempts"`
	WallMs     float64           `json:"wall_ms"`
	Faults     bench.FaultTotals `json:"faults"`
}

// Journal is an append-only record of completed experiments, safe for
// concurrent use: a service runs many campaigns against one journal, so
// lookups and appends from different campaigns may interleave freely
// (each append is a single written line).
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	closed  bool
	entries map[string]JournalEntry // keyed by ID + "\x00" + Hash
}

// OpenJournal opens (creating if needed) the journal at path and loads
// its entries. A corrupt trailing line — the signature of a campaign
// killed mid-append — is tolerated: it is truncated away so later
// appends start a clean line. Corruption anywhere else is an error.
func OpenJournal(path string) (*Journal, error) {
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("runner: reading journal: %w", err)
	}
	j := &Journal{entries: make(map[string]JournalEntry)}
	offset, truncateAt := 0, -1
	for line := 1; offset < len(data); line++ {
		end := bytes.IndexByte(data[offset:], '\n')
		text := data[offset:]
		next := len(data)
		if end >= 0 {
			text = data[offset : offset+end]
			next = offset + end + 1
		}
		if len(bytes.TrimSpace(text)) == 0 {
			offset = next
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal(text, &e); err != nil {
			if truncateAt >= 0 {
				return nil, fmt.Errorf("runner: journal %s corrupt before line %d", path, line)
			}
			truncateAt = offset
			offset = next
			continue
		}
		if truncateAt >= 0 {
			// A valid entry after a corrupt line means the damage was
			// not a truncated tail.
			return nil, fmt.Errorf("runner: journal %s corrupt before line %d", path, line)
		}
		if e.Schema == journalSchema {
			j.entries[e.ID+"\x00"+e.Hash] = e
		}
		offset = next
	}
	if truncateAt >= 0 {
		if err := os.Truncate(path, int64(truncateAt)); err != nil {
			return nil, fmt.Errorf("runner: dropping journal %s torn tail: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: opening journal: %w", err)
	}
	j.f = f
	return j, nil
}

// Lookup returns the journaled entry for an experiment under the given
// configuration hash, if one exists.
func (j *Journal) Lookup(id, hash string) (JournalEntry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[id+"\x00"+hash]
	return e, ok
}

// Len reports how many entries the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Append records a completed experiment. The write is a single
// appended line, so concurrent campaigns against one journal and kills
// between experiments never corrupt earlier entries. Appending to a
// closed journal fails (the campaign's result is then reported as no
// longer crash-safe, exactly as if the process had died).
func (j *Journal) Append(e JournalEntry) error {
	e.Schema = journalSchema
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("runner: encoding journal entry: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("runner: journal is closed")
	}
	if _, err := j.f.Write(b); err != nil {
		return fmt.Errorf("runner: appending to journal: %w", err)
	}
	j.entries[e.ID+"\x00"+e.Hash] = e
	return nil
}

// Close releases the journal file; later appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	return j.f.Close()
}

// ConfigHash fingerprints everything that determines an experiment's
// output: the cluster spec, seed, run count, output format and fault
// schedule. Two campaigns share journal entries exactly when their
// outputs would be byte-identical.
func ConfigHash(env bench.Env, format string) string {
	spec, err := json.Marshal(env.Spec)
	if err != nil {
		spec = []byte(err.Error())
	}
	faults := ""
	if env.Faults != nil {
		faults = env.Faults.String()
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s|seed=%d|runs=%d|format=%s|faults=%s", spec, env.Seed, env.Runs, format, faults)
	return hex.EncodeToString(h.Sum(nil))
}

// entryFor converts a successful Result into its journal record.
func entryFor(res Result, cluster, hash string) JournalEntry {
	m := res.Metrics
	return JournalEntry{
		Schema:     journalSchema,
		ID:         res.Exp.ID,
		Cluster:    cluster,
		Hash:       hash,
		Rendered:   res.Rendered,
		SimSeconds: m.SimSeconds,
		Worlds:     m.Worlds,
		Tables:     m.Tables,
		Rows:       m.Rows,
		Attempts:   m.Attempts,
		WallMs:     float64(m.Wall.Milliseconds()),
		Faults:     m.Faults,
	}
}

// resultFor converts a journaled entry back into a (cached) Result.
func resultFor(e JournalEntry, exp core.Experiment, index int) Result {
	return Result{
		Exp:      exp,
		Index:    index,
		Rendered: e.Rendered,
		Cached:   true,
		Metrics: Metrics{
			ID:         e.ID,
			SimSeconds: e.SimSeconds,
			Worlds:     e.Worlds,
			Tables:     e.Tables,
			Rows:       e.Rows,
			Attempts:   e.Attempts,
			Faults:     e.Faults,
		},
	}
}

// RunResumable is Run with a crash-safe journal: freshly completed
// experiments are appended to j as they finish, and when resume is
// true, experiments already journaled under the same configuration are
// replayed from the journal instead of executing. Results still arrive
// in the order of exps — cached and fresh interleaved — so the
// campaign output stays byte-identical to an uninterrupted run.
// Failed experiments are never journaled. Journal append errors are
// reported through the result's Err (the experiment itself succeeded,
// but the campaign is no longer crash-safe, which the caller must see).
func RunResumable(env bench.Env, exps []core.Experiment, opts Options, j *Journal, cluster string, resume bool) <-chan Result {
	format := opts.Format
	if format == "" {
		format = "ascii"
	}
	hash := ConfigHash(env, format)

	cached := make(map[int]JournalEntry)
	var pending []core.Experiment
	pendingIndex := make(map[string]int) // experiment ID -> index in exps
	for i, e := range exps {
		if resume {
			if entry, ok := j.Lookup(e.ID, hash); ok {
				cached[i] = entry
				continue
			}
		}
		pending = append(pending, e)
		pendingIndex[e.ID] = i
	}

	fresh := Run(env, pending, opts)
	out := make(chan Result)
	go func() {
		defer close(out)
		for i, e := range exps {
			if entry, ok := cached[i]; ok {
				out <- resultFor(entry, e, i)
				continue
			}
			res, ok := <-fresh
			if !ok {
				return
			}
			res.Index = pendingIndex[res.Exp.ID]
			if res.Err == nil {
				if err := j.Append(entryFor(res, cluster, hash)); err != nil {
					res.Err = err
				}
			}
			out <- res
		}
	}()
	return out
}
