package runner

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/core"
)

// The campaign journal makes long campaigns crash-safe: every
// completed experiment's result is appended to a JSON-lines file the
// moment it finishes, keyed by experiment ID and a hash of the full
// configuration (spec, seed, runs, format, fault schedule). A campaign
// that is killed after experiment k can be re-run with -resume: results
// already in the journal are replayed byte-identically and only the
// missing experiments execute. Failed experiments are never journaled,
// so a resume retries them.

// journalSchema versions the entry format; entries with a different
// schema are ignored on load (a stale journal degrades to a fresh
// campaign, never to corrupt output).
const journalSchema = 1

// JournalEntry is one completed experiment as recorded on disk.
type JournalEntry struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	// Cluster names the spec the experiment ran on; Hash fingerprints
	// the full configuration (see ConfigHash) so a journal recorded
	// under different settings is never replayed.
	Cluster string `json:"cluster"`
	Hash    string `json:"hash"`
	// Rendered is the experiment's formatted output, replayed verbatim
	// on resume.
	Rendered string `json:"rendered"`
	// The per-experiment accounting, preserved so the resumed
	// campaign's summary still covers the cached rows.
	SimSeconds float64           `json:"sim_seconds"`
	Worlds     int               `json:"worlds"`
	Tables     int               `json:"tables"`
	Rows       int               `json:"rows"`
	Attempts   int               `json:"attempts"`
	WallMs     float64           `json:"wall_ms"`
	Faults     bench.FaultTotals `json:"faults"`
}

// Journal is an append-only record of completed experiments, safe for
// concurrent use: a service runs many campaigns against one journal, so
// lookups and appends from different campaigns may interleave freely
// (each append is a single written line).
type Journal struct {
	mu     sync.Mutex
	f      chaos.File
	closed bool
	// dirty means the file may end mid-line (a failed or torn append,
	// or a file recovered without a trailing newline): the next append
	// leads with a newline so the damaged record stays isolated on its
	// own line instead of corrupting the new one.
	dirty   bool
	skipped int
	entries map[string]JournalEntry // keyed by ID + "\x00" + Hash
}

// OpenJournal opens (creating if needed) the journal at path and loads
// its entries, tolerating corruption: see OpenJournalFS.
func OpenJournal(path string) (*Journal, error) {
	return OpenJournalFS(path, chaos.OS(), nil)
}

// OpenJournalFS opens the journal at path through fsys. Recovery is
// tolerant by design — a journal exists to save work, so one damaged
// record must never cost the rest: a corrupt line anywhere (torn tail
// from a mid-append kill, a record mangled by a torn write, stray
// garbage) is skipped, counted (see Skipped) and reported through logf,
// and every intact record before and after it still loads. An
// unterminated final line is truncated away so later appends start
// clean. logf may be nil to discard the reports.
func OpenJournalFS(path string, fsys chaos.FS, logf func(format string, args ...any)) (*Journal, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	data, err := fsys.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("runner: reading journal: %w", err)
	}
	j := &Journal{entries: make(map[string]JournalEntry)}
	offset := 0
	truncateAt := -1 // offset of an unterminated, unparsable tail
	for line := 1; offset < len(data); line++ {
		end := bytes.IndexByte(data[offset:], '\n')
		text := data[offset:]
		next := len(data)
		terminated := end >= 0
		if terminated {
			text = data[offset : offset+end]
			next = offset + end + 1
		}
		if len(bytes.TrimSpace(text)) == 0 {
			offset = next
			continue
		}
		var e JournalEntry
		if err := json.Unmarshal(text, &e); err != nil {
			if !terminated {
				truncateAt = offset
			} else {
				j.skipped++
				logf("journal %s: skipping corrupt record at line %d (%d bytes)", path, line, len(text))
			}
			offset = next
			continue
		}
		if e.Schema == journalSchema {
			j.entries[e.ID+"\x00"+e.Hash] = e
		}
		offset = next
	}
	if truncateAt >= 0 {
		j.skipped++
		logf("journal %s: dropping torn tail record at byte %d", path, truncateAt)
		if err := fsys.Truncate(path, int64(truncateAt)); err != nil {
			// Can't repair in place; isolate the tail on its own line at
			// the next append instead.
			logf("journal %s: could not truncate torn tail: %v", path, err)
			j.dirty = true
		}
	} else if len(data) > 0 && data[len(data)-1] != '\n' {
		// Final line parsed but was never terminated: lead the next
		// append with a newline rather than gluing onto it.
		j.dirty = true
	}
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runner: opening journal: %w", err)
	}
	j.f = f
	return j, nil
}

// Lookup returns the journaled entry for an experiment under the given
// configuration hash, if one exists.
func (j *Journal) Lookup(id, hash string) (JournalEntry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[id+"\x00"+hash]
	return e, ok
}

// Len reports how many entries the journal holds.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// Skipped reports how many corrupt records were skipped during
// recovery.
func (j *Journal) Skipped() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.skipped
}

// Append records a completed experiment. The write is a single
// appended line, so concurrent campaigns against one journal and kills
// between experiments never corrupt earlier entries; after a failed or
// torn write the next append leads with a newline to keep the damage
// on its own (recoverable-by-skipping) line. Appending to a closed
// journal fails. An append failure costs only durability — the result
// is still correct, the campaign is just no longer crash-safe — and is
// reported as Result.DurabilityErr by RunResumable.
func (j *Journal) Append(e JournalEntry) error {
	e.Schema = journalSchema
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("runner: encoding journal entry: %w", err)
	}
	b = append(b, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return fmt.Errorf("runner: journal is closed")
	}
	if j.dirty {
		b = append([]byte{'\n'}, b...)
	}
	n, err := j.f.Write(b)
	if err != nil || n < len(b) {
		// The line may be half on disk; isolate it before the next one.
		j.dirty = true
		if err == nil {
			err = fmt.Errorf("short write (%d of %d bytes)", n, len(b))
		}
		return fmt.Errorf("runner: appending to journal: %w", err)
	}
	j.dirty = false
	j.entries[e.ID+"\x00"+e.Hash] = e
	return nil
}

// Sync flushes the journal file to stable storage (best-effort
// durability checkpoint, e.g. before a drain completes).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	return j.f.Sync()
}

// Close syncs (best-effort) and releases the journal file; later
// appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	j.f.Sync()
	return j.f.Close()
}

// ConfigHash fingerprints everything that determines an experiment's
// output: the cluster spec, seed, run count, output format and fault
// schedule. Two campaigns share journal entries exactly when their
// outputs would be byte-identical.
func ConfigHash(env bench.Env, format string) string {
	spec, err := json.Marshal(env.Spec)
	if err != nil {
		spec = []byte(err.Error())
	}
	faults := ""
	if env.Faults != nil {
		faults = env.Faults.String()
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s|seed=%d|runs=%d|format=%s|faults=%s", spec, env.Seed, env.Runs, format, faults)
	return hex.EncodeToString(h.Sum(nil))
}

// entryFor converts a successful Result into its journal record.
func entryFor(res Result, cluster, hash string) JournalEntry {
	m := res.Metrics
	return JournalEntry{
		Schema:     journalSchema,
		ID:         res.Exp.ID,
		Cluster:    cluster,
		Hash:       hash,
		Rendered:   res.Rendered,
		SimSeconds: m.SimSeconds,
		Worlds:     m.Worlds,
		Tables:     m.Tables,
		Rows:       m.Rows,
		Attempts:   m.Attempts,
		WallMs:     float64(m.Wall.Milliseconds()),
		Faults:     m.Faults,
	}
}

// resultFor converts a journaled entry back into a (cached) Result.
func resultFor(e JournalEntry, exp core.Experiment, index int) Result {
	return Result{
		Exp:      exp,
		Index:    index,
		Rendered: e.Rendered,
		Cached:   true,
		Metrics: Metrics{
			ID:         e.ID,
			SimSeconds: e.SimSeconds,
			Worlds:     e.Worlds,
			Tables:     e.Tables,
			Rows:       e.Rows,
			Attempts:   e.Attempts,
			Faults:     e.Faults,
		},
	}
}

// RunResumable is Run with a crash-safe journal: freshly completed
// experiments are appended to j as they finish, and when resume is
// true, experiments already journaled under the same configuration are
// replayed from the journal instead of executing. Results still arrive
// in the order of exps — cached and fresh interleaved — so the
// campaign output stays byte-identical to an uninterrupted run.
// Failed experiments are never journaled. A journal append failure
// does NOT fail the experiment — its result is correct and is still
// delivered — but the loss of crash-safety is reported through the
// result's DurabilityErr so callers can warn.
func RunResumable(env bench.Env, exps []core.Experiment, opts Options, j *Journal, cluster string, resume bool) <-chan Result {
	format := opts.Format
	if format == "" {
		format = "ascii"
	}
	hash := ConfigHash(env, format)

	cached := make(map[int]JournalEntry)
	var pending []core.Experiment
	pendingIndex := make(map[string]int) // experiment ID -> index in exps
	for i, e := range exps {
		if resume {
			if entry, ok := j.Lookup(e.ID, hash); ok {
				cached[i] = entry
				continue
			}
		}
		pending = append(pending, e)
		pendingIndex[e.ID] = i
	}

	fresh := Run(env, pending, opts)
	out := make(chan Result)
	go func() {
		defer close(out)
		for i, e := range exps {
			if entry, ok := cached[i]; ok {
				out <- resultFor(entry, e, i)
				continue
			}
			res, ok := <-fresh
			if !ok {
				return
			}
			res.Index = pendingIndex[res.Exp.ID]
			if res.Err == nil {
				if err := j.Append(entryFor(res, cluster, hash)); err != nil {
					res.DurabilityErr = err
				}
			}
			out <- res
		}
	}()
	return out
}
