package runner

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
)

func testRecord(key string) bench.PointRecord {
	return bench.PointRecord{
		Schema:     bench.PointSchema,
		Key:        key,
		Payload:    []byte(`{"v":42}`),
		SimSeconds: 1.25,
		Worlds:     3,
	}
}

func mustOpen(t *testing.T, dir string) *PointCache {
	t.Helper()
	c, err := OpenPointCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestCacheWriteBehindReadYourWrites: a stored record is visible to
// Load and LoadSum before any flush, served from the pending buffer in
// the binary encoding.
func TestCacheWriteBehindReadYourWrites(t *testing.T) {
	c := mustOpen(t, t.TempDir())
	rec := testRecord("wb/k")
	if err := c.Store("wb/k", rec); err != nil {
		t.Fatal(err)
	}
	got, ok, mismatch, ioErr := c.Load("wb/k")
	if !ok || mismatch || ioErr {
		t.Fatalf("pending entry: ok=%v mismatch=%v ioErr=%v", ok, mismatch, ioErr)
	}
	if got.SimSeconds != rec.SimSeconds || !bytes.Equal(got.Payload, rec.Payload) {
		t.Fatalf("pending round-trip drift: %+v vs %+v", got, rec)
	}
	raw, err := c.LoadSum(CacheKeySum("wb/k"))
	if err != nil {
		t.Fatal(err)
	}
	if !bench.IsBinaryRecord(raw) {
		t.Fatal("LoadSum of a pending entry did not serve the binary encoding")
	}
}

// TestCacheFlushReopenWarm: records flushed to a pack are served by a
// fresh cache on the same directory — the cross-process warm path.
func TestCacheFlushReopenWarm(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir)
	keys := []string{"fl/a", "fl/b", "fl/c"}
	for _, k := range keys {
		if err := c.Store(k, testRecord(k)); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	reopened := mustOpen(t, dir)
	for _, k := range keys {
		got, ok, mismatch, ioErr := reopened.Load(k)
		if !ok || mismatch || ioErr {
			t.Fatalf("%s after reopen: ok=%v mismatch=%v ioErr=%v", k, ok, mismatch, ioErr)
		}
		if got.Key != k {
			t.Fatalf("%s decoded key %q", k, got.Key)
		}
	}
	st := reopened.DiskStats()
	if st.Packs != 1 || st.PackedEntries != len(keys) || st.PendingEntries != 0 {
		t.Fatalf("disk stats after flush+reopen: %+v", st)
	}
}

// TestCachePackWithoutIdxIsScanned: deleting a segment's sidecar index
// only costs a pack scan on reopen — every record is still served.
func TestCachePackWithoutIdxIsScanned(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir)
	if err := c.Store("noidx/k", testRecord("noidx/k")); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(filepath.Join(dir, "packs"))
	if err != nil {
		t.Fatal(err)
	}
	removed := false
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), ".idx") {
			if err := os.Remove(filepath.Join(dir, "packs", de.Name())); err != nil {
				t.Fatal(err)
			}
			removed = true
		}
	}
	if !removed {
		t.Fatal("flush wrote no sidecar index")
	}
	reopened := mustOpen(t, dir)
	if _, ok, _, _ := reopened.Load("noidx/k"); !ok {
		t.Fatal("record lost with its sidecar index")
	}
}

// TestCacheBatchFlushThreshold: the write-behind buffer flushes itself
// once it holds flushEvery entries, without an explicit Flush.
func TestCacheBatchFlushThreshold(t *testing.T) {
	dir := t.TempDir()
	c := mustOpen(t, dir)
	c.flushEvery = 4
	for i, k := range []string{"th/a", "th/b", "th/c", "th/d"} {
		if err := c.Store(k, testRecord(k)); err != nil {
			t.Fatal(err)
		}
		ents, err := os.ReadDir(filepath.Join(dir, "packs"))
		if err != nil {
			t.Fatal(err)
		}
		packs := 0
		for _, de := range ents {
			if strings.HasSuffix(de.Name(), ".pack") {
				packs++
			}
		}
		if want := map[bool]int{false: 0, true: 1}[i == 3]; packs != want {
			t.Fatalf("after %d stores: %d packs on disk, want %d", i+1, packs, want)
		}
	}
	c.mu.Lock()
	pending := len(c.pending)
	c.mu.Unlock()
	if pending != 0 {
		t.Fatalf("%d entries still pending after threshold flush", pending)
	}
}

// TestCacheLegacyLooseMigration: loose one-file-per-point JSON entries
// from the previous layout are served as-is, and Compact folds them
// into a pack and removes the files.
func TestCacheLegacyLooseMigration(t *testing.T) {
	dir := t.TempDir()
	// Lay the legacy files down with a first cache (precreates shards).
	c := mustOpen(t, dir)
	keys := []string{"mig/a", "mig/b"}
	for _, k := range keys {
		rec := testRecord(k)
		data, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(c.path(k), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	for _, k := range keys {
		if _, ok, _, _ := c.Load(k); !ok {
			t.Fatalf("legacy loose entry %s not served", k)
		}
	}
	if st := c.DiskStats(); st.LooseEntries != len(keys) {
		t.Fatalf("before compact: %+v, want %d loose", st, len(keys))
	}

	n, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if n != len(keys) {
		t.Fatalf("compacted %d entries, want %d", n, len(keys))
	}
	st := c.DiskStats()
	if st.LooseEntries != 0 || st.LooseShards != 0 {
		t.Fatalf("loose entries survived compaction: %+v", st)
	}
	// A fresh open (no legacy files left) still serves every record.
	reopened := mustOpen(t, dir)
	for _, k := range keys {
		got, ok, mismatch, ioErr := reopened.Load(k)
		if !ok || mismatch || ioErr {
			t.Fatalf("%s after compaction: ok=%v mismatch=%v ioErr=%v", k, ok, mismatch, ioErr)
		}
		if got.Key != k || got.SimSeconds != 1.25 {
			t.Fatalf("%s decoded wrong: %+v", k, got)
		}
	}
}

// TestCompactLeavesPoisonedEntriesBehind: a loose file filed under an
// address its key does not hash to must not be laundered into a pack.
func TestCompactLeavesPoisonedEntriesBehind(t *testing.T) {
	c := mustOpen(t, t.TempDir())
	rec := testRecord("someone-elses-key")
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	// Filed where "poisoned/k" would live, but carrying another key.
	if err := os.WriteFile(c.path("poisoned/k"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("compacted %d poisoned entries, want 0", n)
	}
	if st := c.DiskStats(); st.LooseEntries != 1 {
		t.Fatalf("poisoned entry removed without migration: %+v", st)
	}
}

// TestPackRoundTrip exercises the pack/idx serialisation directly,
// including the scan fallback agreeing with the sidecar index.
func TestPackRoundTrip(t *testing.T) {
	entries := map[string][]byte{
		CacheKeySum("a"): []byte("record-a"),
		CacheKeySum("b"): []byte("rb"),
		CacheKeySum("c"): {},
	}
	pack, refs, err := buildPack(entries)
	if err != nil {
		t.Fatal(err)
	}
	scanned, err := scanPackRefs(pack)
	if err != nil {
		t.Fatal(err)
	}
	if len(scanned) != len(refs) {
		t.Fatalf("scan found %d entries, idx has %d", len(scanned), len(refs))
	}
	for i := range refs {
		if refs[i] != scanned[i] {
			t.Fatalf("ref %d: idx %+v vs scan %+v", i, refs[i], scanned[i])
		}
	}
	parsed, err := parseIdx(encodeIdx(refs))
	if err != nil {
		t.Fatal(err)
	}
	for i := range refs {
		if parsed[i] != refs[i] {
			t.Fatalf("idx round-trip drift at %d: %+v vs %+v", i, parsed[i], refs[i])
		}
	}
	back, err := parsePackEntries(pack)
	if err != nil {
		t.Fatal(err)
	}
	for sum, want := range entries {
		if !bytes.Equal(back[sum], want) {
			t.Fatalf("entry %s: %q, want %q", sum[:8], back[sum], want)
		}
	}
	if _, err := scanPackRefs([]byte("XXXX")); err == nil {
		t.Fatal("garbage accepted as a pack")
	}
	if _, err := scanPackRefs(pack[:len(pack)-1]); err == nil {
		t.Fatal("truncated pack accepted")
	}
	if _, err := parseIdx([]byte("IPX1")); err == nil {
		t.Fatal("truncated idx accepted")
	}
}
