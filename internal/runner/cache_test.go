package runner

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/trace"
)

// sweepExp builds an experiment whose Run compiles n points and renders
// their decoded values in index order; perPoint, when non-nil, runs
// inside each point (e.g. a random jitter sleep).
func sweepExp(id string, n int, perPoint func(i int)) core.Experiment {
	return core.Experiment{ID: id, Title: id, Run: func(env bench.Env) []*trace.Table {
		pts := make([]bench.Point, n)
		for i := range pts {
			i := i
			pts[i] = bench.Point{
				Key: fmt.Sprintf("%s/cell=%d", id, i),
				Fn: func(bench.Env) any {
					if perPoint != nil {
						perPoint(i)
					}
					return struct{ V int }{i * i}
				},
			}
		}
		cells := bench.RunPointsAs[struct{ V int }](env, pts)
		tb := trace.NewTable(id, "i", "v")
		for i, c := range cells {
			tb.Add(i, c.V)
		}
		return []*trace.Table{tb}
	}}
}

// TestPointPoolMergeOrderProperty: many experiments race their points
// through the shared pool with randomized per-point delays, at several
// worker counts, and every rendered table must come back index-ordered
// and byte-identical to the serial run. This is the determinism property
// the whole sweep layer rests on: completion order must never leak.
func TestPointPoolMergeOrderProperty(t *testing.T) {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(7))
	jitter := func(int) {
		mu.Lock()
		d := time.Duration(rng.Intn(300)) * time.Microsecond
		mu.Unlock()
		time.Sleep(d)
	}
	exps := []core.Experiment{
		sweepExp("alpha", 17, jitter),
		sweepExp("beta", 5, jitter),
		sweepExp("gamma", 29, jitter),
		sweepExp("delta", 1, jitter),
	}
	want := Collect(Run(testEnv(t), exps, Options{Workers: 1}))
	for _, workers := range []int{2, 4, 13} {
		got := Collect(Run(testEnv(t), exps, Options{Workers: workers}))
		for i := range exps {
			if got[i].Err != nil {
				t.Fatalf("j=%d: %s failed: %v", workers, exps[i].ID, got[i].Err)
			}
			if got[i].Rendered != want[i].Rendered {
				t.Errorf("j=%d: %s differs from serial:\n%s", workers, exps[i].ID,
					trace.UnifiedDiff("serial", fmt.Sprintf("j%d", workers), want[i].Rendered, got[i].Rendered))
			}
		}
	}
}

// TestPointPanicFailsOwningExperiment: a panicking point must fail the
// experiment that owns it — not whichever worker happened to execute it
// — while sibling experiments complete.
func TestPointPanicFailsOwningExperiment(t *testing.T) {
	boom := core.Experiment{ID: "boom", Title: "boom", Run: func(env bench.Env) []*trace.Table {
		bench.RunPointsAs[struct{}](env, []bench.Point{
			{Key: "boom/cell", Fn: func(bench.Env) any { panic("kaboom") }},
		})
		return okTable()
	}}
	exps := []core.Experiment{sweepExp("healthy", 8, nil), boom, sweepExp("also-healthy", 8, nil)}
	res := Collect(Run(testEnv(t), exps, Options{Workers: 4}))
	if res[0].Err != nil || res[2].Err != nil {
		t.Fatalf("healthy experiments damaged: %v / %v", res[0].Err, res[2].Err)
	}
	if res[1].Err == nil || !strings.Contains(res[1].Err.Error(), "kaboom") {
		t.Fatalf("panicking point did not fail its owner: %v", res[1].Err)
	}
}

// TestCampaignColdWarmByteIdentical: the same campaign rendered with no
// cache, a cold cache, and a warm cache must be byte-identical, with the
// cache stats reflecting each phase (cold: all misses; warm: all hits).
func TestCampaignColdWarmByteIdentical(t *testing.T) {
	exps := []core.Experiment{sweepExp("a", 6, nil), sweepExp("b", 11, nil)}
	plain := Collect(Run(testEnv(t), exps, Options{Workers: 2}))

	cache, err := OpenPointCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var cold, warm CacheStats
	coldRes := Collect(Run(testEnv(t), exps, Options{Workers: 2, Cache: cache, CacheStats: &cold}))
	warmRes := Collect(Run(testEnv(t), exps, Options{Workers: 2, Cache: cache, CacheStats: &warm}))

	for i := range exps {
		if coldRes[i].Rendered != plain[i].Rendered {
			t.Errorf("%s: cold cached differs from uncached:\n%s", exps[i].ID,
				trace.UnifiedDiff("plain", "cold", plain[i].Rendered, coldRes[i].Rendered))
		}
		if warmRes[i].Rendered != plain[i].Rendered {
			t.Errorf("%s: warm cached differs from uncached:\n%s", exps[i].ID,
				trace.UnifiedDiff("plain", "warm", plain[i].Rendered, warmRes[i].Rendered))
		}
	}
	if cold.Hits != 0 || cold.Misses != 17 {
		t.Fatalf("cold stats: %+v, want 17 misses, 0 hits", cold)
	}
	if warm.Misses != 0 || warm.Hits != 17 || warm.HitRate() != 1 {
		t.Fatalf("warm stats: %+v, want 17 hits, 0 misses", warm)
	}
	// Meter accounting must replay identically from cache.
	for i := range exps {
		if warmRes[i].Metrics.SimSeconds != plain[i].Metrics.SimSeconds ||
			warmRes[i].Metrics.Worlds != plain[i].Metrics.Worlds {
			t.Fatalf("%s: cached metrics drifted: %+v vs %+v",
				exps[i].ID, warmRes[i].Metrics, plain[i].Metrics)
		}
	}
}

// TestCampaignMemoDedupsSharedPoints: two experiments requesting the
// same keys compute each cell once; the second request is a memo hit
// even with no persistent cache.
func TestCampaignMemoDedupsSharedPoints(t *testing.T) {
	twin1 := sweepExp("twin", 9, nil)
	twin2 := twin1
	twin2.ID = "twin2" // distinct experiment, same point keys
	var stats CacheStats
	res := Collect(Run(testEnv(t), []core.Experiment{twin1, twin2},
		Options{Workers: 2, CacheStats: &stats}))
	for _, r := range res {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
	if stats.Misses != 9 || stats.MemoHits != 9 {
		t.Fatalf("stats %+v, want 9 misses + 9 memo hits", stats)
	}
}

// TestPoisonedCacheEntryDetected: an entry whose stored key does not
// match the requested one (misfiled or tampered) is never served — the
// point is recomputed and the mismatch counted. The tampering happens
// inside a flushed pack segment and the cache is reopened afterwards,
// so this also locks the cross-process warm path (scan → index → load).
func TestPoisonedCacheEntryDetected(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenPointCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(t)
	exps := []core.Experiment{sweepExp("p", 3, nil)}

	var cold CacheStats
	Collect(Run(env, exps, Options{Workers: 1, Cache: cache, CacheStats: &cold}))
	if cold.Misses != 3 {
		t.Fatalf("cold misses %d, want 3", cold.Misses)
	}
	if err := cache.Flush(); err != nil {
		t.Fatal(err)
	}

	// Poison one entry: rewrite its stored key inside the pack segment.
	fullKey := pointBaseKey(env) + "/p/cell=1"
	sum := CacheKeySum(fullKey)
	packs, err := os.ReadDir(filepath.Join(dir, "packs"))
	if err != nil {
		t.Fatal(err)
	}
	var packPath string
	for _, de := range packs {
		if strings.HasSuffix(de.Name(), ".pack") {
			packPath = filepath.Join(dir, "packs", de.Name())
		}
	}
	if packPath == "" {
		t.Fatal("flush produced no pack segment")
	}
	packBytes, err := os.ReadFile(packPath)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := parsePackEntries(packBytes)
	if err != nil {
		t.Fatal(err)
	}
	var rec bench.PointRecord
	if err := rec.DecodeBinary(entries[sum]); err != nil {
		t.Fatalf("cache entry not where the key maps it: %v", err)
	}
	rec.Key = "someone-elses-key"
	entries[sum] = rec.EncodeBinary()
	poisoned, refs, err := buildPack(entries)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(packPath, poisoned, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(strings.TrimSuffix(packPath, ".pack")+".idx", encodeIdx(refs), 0o644); err != nil {
		t.Fatal(err)
	}

	reopened, err := OpenPointCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, mismatch, _ := reopened.Load(fullKey); ok || !mismatch {
		t.Fatalf("poisoned entry: ok=%v mismatch=%v, want miss+mismatch", ok, mismatch)
	}

	want := Collect(Run(env, exps, Options{Workers: 1}))
	var warm CacheStats
	got := Collect(Run(env, exps, Options{Workers: 1, Cache: reopened, CacheStats: &warm}))
	if got[0].Rendered != want[0].Rendered {
		t.Errorf("output corrupted by poisoned cache:\n%s",
			trace.UnifiedDiff("want", "got", want[0].Rendered, got[0].Rendered))
	}
	if warm.Mismatches != 1 || warm.Misses != 1 || warm.Hits != 2 {
		t.Fatalf("stats %+v, want 1 mismatch → 1 recompute, 2 hits", warm)
	}
}

// TestCacheSchemaDriftIsMiss: an entry recorded under a different
// PointSchema is ignored (plain miss), not an error.
func TestCacheSchemaDriftIsMiss(t *testing.T) {
	cache, err := OpenPointCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	rec := bench.PointRecord{Schema: bench.PointSchema + 1, Payload: []byte(`{}`)}
	if err := cache.Store("k", rec); err != nil {
		t.Fatal(err)
	}
	if _, ok, mismatch, ioErr := cache.Load("k"); ok || mismatch || ioErr {
		t.Fatalf("schema drift: ok=%v mismatch=%v ioErr=%v, want plain miss", ok, mismatch, ioErr)
	}
}

// TestCacheCorruptEntryIsIOError: unparseable bytes are reported as an
// I/O-level error and the point recomputed. The corrupt bytes sit in a
// legacy loose file — the shard directories are precreated at open, so
// the write needs no mkdir.
func TestCacheCorruptEntryIsIOError(t *testing.T) {
	cache, err := OpenPointCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(cache.path("k"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, _, ioErr := cache.Load("k"); ok || !ioErr {
		t.Fatalf("corrupt entry: ok=%v ioErr=%v, want miss+ioErr", ok, ioErr)
	}
}

// TestPointBaseKeySensitivity: every knob that changes point values must
// change the base key (else the cache would serve stale results), and
// equal configurations must agree on it.
func TestPointBaseKeySensitivity(t *testing.T) {
	base := testEnv(t)
	if pointBaseKey(base) != pointBaseKey(testEnv(t)) {
		t.Fatal("base key not stable across equal envs")
	}
	seen := map[string]string{pointBaseKey(base): "base"}
	mutations := map[string]bench.Env{}
	seedEnv := base
	seedEnv.Seed++
	mutations["seed"] = seedEnv
	runsEnv := base
	runsEnv.Runs++
	mutations["runs"] = runsEnv
	specEnv := base
	specEnv.Spec = base.Spec.Clone()
	specEnv.Spec.CoresPerNUMA++
	mutations["spec"] = specEnv
	for name, env := range mutations {
		k := pointBaseKey(env)
		if prev, dup := seen[k]; dup {
			t.Errorf("mutating %s collides with %s", name, prev)
		}
		seen[k] = name
	}
}
