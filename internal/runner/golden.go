package runner

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/trace"
)

// Golden files pin every experiment's rendered output so that model or
// harness changes cannot drift silently: `interference -verify` and the
// regression tests re-run the experiments and diff against these files,
// and `interference -update` regenerates them.

// GoldenPath returns the golden file for an experiment on a cluster,
// e.g. results/fig4-henri.txt.
func GoldenPath(dir, id, cluster string) string {
	return filepath.Join(dir, fmt.Sprintf("%s-%s.txt", id, cluster))
}

// VerifyGolden compares a result's rendering against its golden file.
// On mismatch the error carries a unified diff (golden on the - side,
// regenerated output on the + side). A missing golden file is an error
// too: every experiment of a campaign must be pinned.
func VerifyGolden(dir, cluster string, r Result) error {
	if r.Err != nil {
		return r.Err
	}
	path := GoldenPath(dir, r.Exp.ID, cluster)
	want, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("runner: %s has no golden file (run with -update to create it): %w", r.Exp.ID, err)
	}
	if d := trace.UnifiedDiff(path, r.Exp.ID+" (regenerated)", string(want), r.Rendered); d != "" {
		return fmt.Errorf("runner: %s output drifted from %s:\n%s", r.Exp.ID, path, d)
	}
	return nil
}

// UpdateGolden (re)writes a result's golden file.
func UpdateGolden(dir, cluster string, r Result) error {
	if r.Err != nil {
		return r.Err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return os.WriteFile(GoldenPath(dir, r.Exp.ID, cluster), []byte(r.Rendered), 0o644)
}
