package runner

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/trace"
)

func okTable() []*trace.Table {
	tb := trace.NewTable("x", "v")
	tb.Add(1)
	return []*trace.Table{tb}
}

// TestDeadlineAbandonsSlowExperiment: an experiment that overruns the
// per-attempt deadline is reported as failed while its siblings
// complete.
func TestDeadlineAbandonsSlowExperiment(t *testing.T) {
	slow := core.Experiment{ID: "slow", Title: "t", Run: func(bench.Env) []*trace.Table {
		time.Sleep(5 * time.Second)
		return okTable()
	}}
	ok := core.Experiment{ID: "ok", Title: "t", Run: func(bench.Env) []*trace.Table { return okTable() }}
	res := Collect(Run(testEnv(t), []core.Experiment{slow, ok},
		Options{Workers: 2, Deadline: 50 * time.Millisecond}))
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "deadline") {
		t.Fatalf("slow experiment not deadlined: %v", res[0].Err)
	}
	if res[1].Err != nil {
		t.Fatalf("sibling damaged by deadline: %v", res[1].Err)
	}
}

// TestRetriesRecoverFlakyExperiment: a transiently failing experiment
// succeeds within its retry budget and reports how many attempts it
// took; without a budget it fails.
func TestRetriesRecoverFlakyExperiment(t *testing.T) {
	var calls atomic.Int64
	flaky := core.Experiment{ID: "flaky", Title: "t", Run: func(bench.Env) []*trace.Table {
		if calls.Add(1) < 3 {
			panic("transient")
		}
		return okTable()
	}}
	res := Collect(Run(testEnv(t), []core.Experiment{flaky}, Options{Retries: 2}))
	if res[0].Err != nil {
		t.Fatalf("flaky experiment failed despite retry budget: %v", res[0].Err)
	}
	if got := res[0].Metrics.Attempts; got != 3 {
		t.Fatalf("Attempts = %d, want 3", got)
	}

	calls.Store(0)
	res = Collect(Run(testEnv(t), []core.Experiment{flaky}, Options{}))
	if res[0].Err == nil {
		t.Fatal("flaky experiment succeeded without retries")
	}
	if got := res[0].Metrics.Attempts; got != 1 {
		t.Fatalf("Attempts = %d, want 1", got)
	}
}

// TestRetryExhaustionReportsLastError: a permanently failing experiment
// burns the whole budget and surfaces the error.
func TestRetryExhaustionReportsLastError(t *testing.T) {
	boom := core.Experiment{ID: "boom", Title: "t", Run: func(bench.Env) []*trace.Table {
		panic("kaboom")
	}}
	res := Collect(Run(testEnv(t), []core.Experiment{boom}, Options{Retries: 2}))
	if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "kaboom") {
		t.Fatalf("err = %v", res[0].Err)
	}
	if got := res[0].Metrics.Attempts; got != 3 {
		t.Fatalf("Attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

// TestFaultCampaignDeterministicAcrossWorkers runs the faults family at
// 1 and 8 workers under a custom schedule and demands byte-identical
// renderings — the tentpole's determinism contract.
func TestFaultCampaignDeterministicAcrossWorkers(t *testing.T) {
	sched, err := fault.ParseSpec("loss:p=0.2;degrade:factor=0.8")
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(t)
	env.Faults = sched
	var exps []core.Experiment
	for _, id := range core.FaultFamily() {
		e, ok := core.ByID(id)
		if !ok {
			t.Fatalf("faults family lists unknown experiment %q", id)
		}
		exps = append(exps, e)
	}
	if len(exps) < 2 {
		t.Fatalf("faults family has %d experiments, want >= 2", len(exps))
	}
	render := func(workers int) string {
		var b strings.Builder
		for _, r := range Collect(Run(env, exps, Options{Workers: workers})) {
			if r.Err != nil {
				t.Fatalf("%s: %v", r.Exp.ID, r.Err)
			}
			b.WriteString(r.Rendered)
		}
		return b.String()
	}
	serial := render(1)
	parallel := render(8)
	if serial != parallel {
		t.Fatalf("fault campaign differs across worker counts:\n-j1:\n%s\n-j8:\n%s", serial, parallel)
	}
	if !strings.Contains(serial, "custom") {
		t.Fatalf("custom schedule did not reach the drivers:\n%s", serial)
	}
}

// TestFaultTotalsReachMetrics: the runner surfaces the MPI layer's
// recovery counters through the per-experiment metrics.
func TestFaultTotalsReachMetrics(t *testing.T) {
	sched, err := fault.ParseSpec("loss:p=0.3")
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv(t)
	env.Faults = sched
	e, ok := core.ByID("faults-pingpong")
	if !ok {
		t.Fatal("faults-pingpong not registered")
	}
	res := Collect(Run(env, []core.Experiment{e}, Options{}))
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	ft := res[0].Metrics.Faults
	if !ft.Any() || ft.SendRetries == 0 || ft.MsgsLost == 0 {
		t.Fatalf("fault totals missing from metrics: %+v", ft)
	}
}
