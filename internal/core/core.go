// Package core ties the substrates together: it registers one runnable
// experiment per table/figure of the paper and renders their results as
// tables. The root package and cmd/interference are thin wrappers over
// this registry.
package core

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/bench"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Experiment is one reproducible unit of the paper's evaluation.
type Experiment struct {
	// ID is the short handle ("fig4", "tab1", "sec5.2").
	ID string
	// Title describes what the experiment reproduces.
	Title string
	// Sweep describes the experiment's parameter grid as compiled into
	// independently schedulable points (see bench.Point); empty for
	// experiments that run as a single unit.
	Sweep string
	// Run executes the experiment and returns the result tables.
	Run func(env bench.Env) []*trace.Table
}

// registry holds all experiments, keyed by ID.
var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("core: duplicate experiment %q", e.ID))
	}
	registry[e.ID] = e
}

// Experiments returns all registered experiments sorted by ID.
func Experiments() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// FaultFamily returns the IDs of the fault-injection experiments, the
// default set when the harness is invoked with -faults but no -exp.
func FaultFamily() []string {
	var ids []string
	for _, e := range Experiments() {
		if strings.HasPrefix(e.ID, "faults-") {
			ids = append(ids, e.ID)
		}
	}
	return ids
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Env builds a benchmark environment for a named cluster preset.
func Env(cluster string, seed int64, runs int) (bench.Env, error) {
	spec := topology.Preset(cluster)
	if spec == nil {
		return bench.Env{}, fmt.Errorf("core: unknown cluster %q (have henri, bora, billy, pyxis)", cluster)
	}
	return bench.Env{Spec: spec, Seed: seed, Runs: runs}, nil
}

// RenderTables renders tables to a string in the chosen format ("ascii"
// or "csv"). The string is exactly what WriteTables would emit, which
// is also the byte-for-byte content of the golden files in results/.
func RenderTables(format string, tables []*trace.Table) (string, error) {
	var b strings.Builder
	if err := WriteTables(&b, format, tables); err != nil {
		return "", err
	}
	return b.String(), nil
}

// WriteTables renders tables to w in the chosen format ("ascii" or
// "csv").
func WriteTables(w io.Writer, format string, tables []*trace.Table) error {
	for i, t := range tables {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		var err error
		switch format {
		case "csv":
			if t.Title != "" {
				if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
					return err
				}
			}
			err = t.WriteCSV(w)
		default:
			err = t.WriteASCII(w)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Impact of constant core/uncore frequencies on network latency and bandwidth (§3.1)",
		Sweep: "points: 2 core-freqs x 2 uncore-freqs x 5 sizes",
		Run: func(env bench.Env) []*trace.Table {
			sizes := []int64{4, 64 << 10, 1 << 20, 16 << 20, 64 << 20}
			return []*trace.Table{bench.Fig1Table(bench.Fig1Frequencies(env, sizes))}
		},
	})
	register(Experiment{
		ID:    "fig2",
		Title: "Frequency traces: communications only, idle, communications + 20 computing cores (§3.2)",
		Run: func(env bench.Env) []*trace.Table {
			r := bench.Fig2FrequencyTrace(env)
			summary := trace.NewTable("Fig 2 — communication performance with CPU-bound computation",
				"metric", "alone", "with_computation")
			summary.Add("latency_us", r.LatencyAlone.Median*1e6, r.LatencyTogether.Median*1e6)
			summary.Add("bandwidth_MBps", r.BandwidthAlone/1e6, r.BandwidthTogether/1e6)
			summary.Add("compute_ms_per_iter", "-", r.ComputeSecs.Median*1e3)
			tt := trace.NewTable("Fig 2 — frequency trace samples (case, time_us, core, GHz)",
				"case", "time_us", "core", "GHz")
			for _, tc := range []struct {
				name    string
				samples []freqSample
			}{
				{"A-comm-only", toFreqSamples(r.TraceA)},
				{"B-idle", toFreqSamples(r.TraceB)},
				{"C-comm+compute", toFreqSamples(r.TraceC)},
			} {
				for _, s := range condense(tc.samples) {
					tt.Add(tc.name, float64(s.at)/1e3, s.core, s.ghz)
				}
			}
			return []*trace.Table{summary, tt}
		},
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Impact of AVX-512 computations on network latency with turbo-boost (§3.3)",
		Sweep: "points: 2 core counts",
		Run: func(env bench.Env) []*trace.Table {
			return []*trace.Table{bench.Fig3Table(bench.Fig3AVX(env, []int{4, 20}))}
		},
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Memory-bound computations vs network performance by computing-core count (§4.2)",
		Sweep: "points: 1 per computing-core count",
		Run: func(env bench.Env) []*trace.Table {
			pts := bench.Fig4Contention(env, bench.ContentionConfig{
				Data: bench.Near, CommThread: bench.Far, CoreCounts: defaultCoreSweep(env),
			})
			return []*trace.Table{bench.ContentionTable(
				"Fig 4 — STREAM TRIAD vs ping-pongs (data near NIC, comm thread far)", pts)}
		},
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Impact of communication-thread placement and data locality (§4.3)",
		Sweep: "points: 4 placements x core counts (one shared batch)",
		Run: func(env bench.Env) []*trace.Table {
			series := bench.Fig5Placement(env, defaultCoreSweep(env))
			var tables []*trace.Table
			for _, key := range []string{"near/near", "near/far", "far/near", "far/far"} {
				tables = append(tables, bench.ContentionTable(
					fmt.Sprintf("Fig 5 — data %s, comm thread %s", split(key, 0), split(key, 1)),
					series[key]))
			}
			tables = append(tables, bench.Table1Render(bench.Table1(series)))
			return tables
		},
	})
	register(Experiment{
		ID:    "tab1",
		Title: "Summary of placement impact (Table 1, derived from Fig 5 sweeps)",
		Sweep: "points: 4 placements x 5 core counts (cells shared with fig5)",
		Run: func(env bench.Env) []*trace.Table {
			series := bench.Fig5Placement(env, []int{1, 5, 15, 25, fullCores(env)})
			return []*trace.Table{bench.Table1Render(bench.Table1(series))}
		},
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Impact of transmitted data size on memory contention (§4.4)",
		Sweep: "points: 2 core counts x 13 message sizes",
		Run: func(env bench.Env) []*trace.Table {
			var tables []*trace.Table
			for _, cores := range []int{5, fullCores(env)} {
				pts := bench.Fig6MessageSize(env, cores, nil)
				tables = append(tables, bench.Fig6Table(cores, pts))
			}
			return tables
		},
	})
	register(Experiment{
		ID:    "fig7",
		Title: "From CPU- to memory-bound: tunable arithmetic intensity (§4.5)",
		Sweep: "points: 14 intensity cursors",
		Run: func(env bench.Env) []*trace.Table {
			pts := bench.Fig7Intensity(env, fullCores(env), nil)
			return []*trace.Table{bench.Fig7Table(pts)}
		},
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Impact of data locality and thread placement on StarPU latency (§5.3)",
		Sweep: "points: 4 placements",
		Run: func(env bench.Env) []*trace.Table {
			return []*trace.Table{bench.Fig8Table(bench.Fig8Runtime(env))}
		},
	})
	register(Experiment{
		ID:    "fig9",
		Title: "Impact of polling workers on network latency (§5.4)",
		Sweep: "points: 4 polling configs",
		Run: func(env bench.Env) []*trace.Table {
			return []*trace.Table{bench.Fig9Table(bench.Fig9Polling(env))}
		},
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Network sends and memory stalls of CG and GEMM executions (§6)",
		Sweep: "points: 2 kernels x worker counts",
		Run: func(env bench.Env) []*trace.Table {
			return []*trace.Table{bench.Fig10Table(bench.Fig10Kernels(env, nil))}
		},
	})
	register(Experiment{
		ID:    "ablation",
		Title: "Ablation: which model mechanism carries which Fig 4 result",
		Sweep: "points: 5 model variants",
		Run: func(env bench.Env) []*trace.Table {
			return []*trace.Table{bench.Ablation(env)}
		},
	})
	register(Experiment{
		ID:    "ext-collectives",
		Title: "EXTENSION: collectives under memory contention (beyond the paper's p2p scope)",
		Sweep: "points: 2 ops x 3 node counts",
		Run: func(env bench.Env) []*trace.Table {
			return []*trace.Table{bench.ExtCollectives(env)}
		},
	})
	register(Experiment{
		ID:    "ext-energy",
		Title: "EXTENSION [14]: energy vs performance of frequency scaling in communication phases",
		Sweep: "points: 2 phases x 2 frequencies",
		Run: func(env bench.Env) []*trace.Table {
			return []*trace.Table{bench.ExtEnergy(env)}
		},
	})
	register(Experiment{
		ID:    "ext-tuner",
		Title: "EXTENSION §8: automatic worker-count selection for whole-program performance",
		Sweep: "points: 1 per worker count",
		Run: func(env bench.Env) []*trace.Table {
			return []*trace.Table{bench.ExtTuner(env)}
		},
	})
	register(Experiment{
		ID:    "ext-throttle",
		Title: "EXTENSION §8: pausing workers during communication phases",
		Sweep: "points: 4 throttle levels",
		Run: func(env bench.Env) []*trace.Table {
			return []*trace.Table{bench.ExtThrottle(env)}
		},
	})
	register(Experiment{
		ID:    "ext-sched",
		Title: "EXTENSION §8: NUMA-local task scheduling vs central FIFO",
		Sweep: "points: 2 scheduler policies",
		Run: func(env bench.Env) []*trace.Table {
			return []*trace.Table{bench.ExtScheduler(env)}
		},
	})
	register(Experiment{
		ID:    "ext-overlap",
		Title: "EXTENSION [7]: communication/computation overlap benchmark",
		Sweep: "points: 4 message sizes",
		Run: func(env bench.Env) []*trace.Table {
			return []*trace.Table{bench.ExtOverlap(env)}
		},
	})
	register(Experiment{
		ID:    "faults-pingpong",
		Title: "FAULTS: ping-pong latency and bandwidth degradation vs fault intensity",
		Sweep: "points: 1 per fault scenario",
		Run: func(env bench.Env) []*trace.Table {
			return []*trace.Table{bench.FaultsPingPong(env)}
		},
	})
	register(Experiment{
		ID:    "faults-overlap",
		Title: "FAULTS: communication/computation overlap under fault scenarios",
		Sweep: "points: 1 per fault scenario",
		Run: func(env bench.Env) []*trace.Table {
			return []*trace.Table{bench.FaultsOverlap(env)}
		},
	})
	register(Experiment{
		ID:    "faults-crash-pingpong",
		Title: "FAULTS: ping-pong under peer node crash (heartbeat detection, ErrPeerDead)",
		Run: func(env bench.Env) []*trace.Table {
			return []*trace.Table{bench.CrashPingPong(env)}
		},
	})
	register(Experiment{
		ID:    "faults-crash-cg",
		Title: "FAULTS: resilient CG surviving a node crash (checkpoint rollback + task re-execution)",
		Run: func(env bench.Env) []*trace.Table {
			return []*trace.Table{bench.CrashCG(env)}
		},
	})
	register(Experiment{
		ID:    "fabric-pingpong",
		Title: "FABRIC: diameter ping on idle fat-tree and dragonfly+ (minimal ≡ adaptive routing)",
		Sweep: "points: 2 presets x 2 routing policies",
		Run: func(env bench.Env) []*trace.Table {
			cells := bench.FabricPingPong(env, []string{"fattree-k4", "dflyplus-small"})
			return []*trace.Table{bench.FabricPingTable(cells)}
		},
	})
	register(Experiment{
		ID:    "fabric-interference",
		Title: "FABRIC: inter-job slowdown of striped jobs sharing a fat-tree (Kang-style)",
		Sweep: "points: 3 job counts x 2 routing policies",
		Run: func(env bench.Env) []*trace.Table {
			cells := bench.FabricInterference(env, "fattree-k4", []int{1, 2, 3})
			return []*trace.Table{bench.FabricInterferenceTable(
				"Fabric — inter-job interference on fat-tree k=4 (16 hosts, striped placement)", cells)}
		},
	})
	register(Experiment{
		ID:    "fabric-dfly",
		Title: "FABRIC: inter-job slowdown of striped jobs sharing a dragonfly+",
		Sweep: "points: 3 job counts x 2 routing policies",
		Run: func(env bench.Env) []*trace.Table {
			cells := bench.FabricInterference(env, "dflyplus-small", []int{1, 2, 3})
			return []*trace.Table{bench.FabricInterferenceTable(
				"Fabric — inter-job interference on dragonfly+ 4x2x2 (16 hosts, striped placement)", cells)}
		},
	})
	register(Experiment{
		ID:    "sec5.2",
		Title: "Latency overhead of the task-based runtime (§5.2)",
		Run: func(env bench.Env) []*trace.Table {
			r := bench.RuntimeOverhead(env)
			t := trace.NewTable("§5.2 — runtime system latency overhead",
				"cluster", "raw_MPI_us", "runtime_us", "overhead_us")
			t.Add(r.Cluster, r.RawLatency.Median*1e6, r.RuntimeLatency.Median*1e6,
				r.OverheadSeconds*1e6)
			return []*trace.Table{t}
		},
	})
}

// defaultCoreSweep returns the x-axis of the contention figures: every
// core count from 1 to cores−1 on small machines, a thinned sweep on
// 64-core ones.
func defaultCoreSweep(env bench.Env) []int {
	full := fullCores(env)
	var out []int
	step := 1
	if full > 40 {
		step = 2
	}
	for n := 1; n <= full; n += step {
		out = append(out, n)
	}
	if out[len(out)-1] != full {
		out = append(out, full)
	}
	return out
}

// fullCores is the maximum computing-core count: every core except the
// communication one.
func fullCores(env bench.Env) int { return env.Spec.Cores() - 1 }

func split(s string, i int) string {
	parts := [2]string{}
	j := 0
	for _, r := range s {
		if r == '/' {
			j = 1
			continue
		}
		parts[j] += string(r)
	}
	return parts[i]
}
