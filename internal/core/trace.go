package core

import (
	"repro/internal/freq"
	"repro/internal/sim"
)

// freqSample is the condensed trace sample used by the fig2 table.
type freqSample struct {
	at   sim.Time
	core int
	ghz  float64
}

// toFreqSamples converts the freq package's samples.
func toFreqSamples(in []freq.Sample) []freqSample {
	out := make([]freqSample, len(in))
	for i, s := range in {
		out[i] = freqSample{at: s.At, core: s.Core, ghz: s.GHz}
	}
	return out
}

// condense drops consecutive samples where a core's frequency did not
// change, keeping traces readable: the output contains, per core, only
// the transition points (plus the initial value).
func condense(in []freqSample) []freqSample {
	last := map[int]float64{}
	seen := map[int]bool{}
	var out []freqSample
	for _, s := range in {
		if seen[s.core] && last[s.core] == s.ghz {
			continue
		}
		seen[s.core] = true
		last[s.core] = s.ghz
		out = append(out, s)
	}
	return out
}
