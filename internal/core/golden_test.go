package core_test

import (
	"flag"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/runner"
)

// -update regenerates the golden files instead of diffing against them:
//
//	go test ./internal/core -run TestGoldenFiles -update
var updateGolden = flag.Bool("update", false, "rewrite the golden files in results/ from this run")

// TestGoldenFiles is the regression lock on the reproduction: it re-runs
// every registered experiment on the henri preset with the same seed and
// repetition count that produced the checked-in results/ files and
// demands byte-identical rendered tables. Any model, kernel, or
// rendering change that moves a number shows up here as a unified diff.
func TestGoldenFiles(t *testing.T) {
	if testing.Short() {
		t.Skip("full campaign against results/; skipped with -short")
	}
	// Seed 1, 3 runs: the parameters of `make results`.
	env, err := core.Env("henri", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join("..", "..", "results")
	n := 0
	for res := range runner.Run(env, core.Experiments(), runner.Options{}) {
		res := res
		n++
		t.Run(res.Exp.ID, func(t *testing.T) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if *updateGolden {
				if err := runner.UpdateGolden(dir, "henri", res); err != nil {
					t.Fatal(err)
				}
				return
			}
			if err := runner.VerifyGolden(dir, "henri", res); err != nil {
				t.Error(err)
			}
		})
	}
	if want := len(core.Experiments()); n != want {
		t.Fatalf("campaign yielded %d results, want %d", n, want)
	}
}

// TestGoldenFilesBilly locks the four experiments whose billy-cluster
// outputs are also checked in (the paper reports them on both machines).
func TestGoldenFilesBilly(t *testing.T) {
	if testing.Short() {
		t.Skip("billy campaign against results/; skipped with -short")
	}
	env, err := core.Env("billy", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var exps []core.Experiment
	for _, id := range []string{"fig4", "fig7", "fig10", "sec5.2"} {
		e, ok := core.ByID(id)
		if !ok {
			t.Fatalf("%s missing from registry", id)
		}
		exps = append(exps, e)
	}
	dir := filepath.Join("..", "..", "results")
	for res := range runner.Run(env, exps, runner.Options{}) {
		res := res
		t.Run(res.Exp.ID, func(t *testing.T) {
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			if *updateGolden {
				if err := runner.UpdateGolden(dir, "billy", res); err != nil {
					t.Fatal(err)
				}
				return
			}
			if err := runner.VerifyGolden(dir, "billy", res); err != nil {
				t.Error(err)
			}
		})
	}
}
