package core

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/sim"
	"repro/internal/topology"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"ablation", "ext-collectives", "ext-energy", "ext-overlap", "ext-sched", "ext-throttle", "ext-tuner",
		"fabric-dfly", "fabric-interference", "fabric-pingpong",
		"faults-crash-cg", "faults-crash-pingpong", "faults-overlap", "faults-pingpong",
		"fig1", "fig10", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
		"fig8", "fig9", "sec5.2", "tab1"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("%d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Fatalf("experiment[%d] = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %q incomplete", e.ID)
		}
	}
}

func TestFaultFamily(t *testing.T) {
	got := FaultFamily()
	want := []string{"faults-crash-cg", "faults-crash-pingpong", "faults-overlap", "faults-pingpong"}
	if len(got) != len(want) {
		t.Fatalf("FaultFamily() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FaultFamily() = %v, want %v", got, want)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig4"); !ok {
		t.Fatal("fig4 missing")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("bogus ID found")
	}
}

func TestEnvPresets(t *testing.T) {
	for _, name := range []string{"henri", "bora", "billy", "pyxis"} {
		env, err := Env(name, 1, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if env.Spec.Name != name || env.Runs != 2 {
			t.Fatalf("%s: env %+v", name, env)
		}
	}
	if _, err := Env("atlantis", 1, 1); err == nil {
		t.Fatal("unknown cluster accepted")
	}
}

// fastEnv: tiny noise-free environment for smoke-running experiments.
func fastEnv() bench.Env {
	spec := topology.Henri()
	spec.NIC.NoiseFrac = 0
	return bench.Env{Spec: spec, Seed: 1, Runs: 1}
}

func TestExperimentsSmokeAndFormats(t *testing.T) {
	// Run the cheap experiments end to end and render both formats.
	for _, id := range []string{"fig3", "fig8", "sec5.2"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("%s missing", id)
		}
		tables := e.Run(fastEnv())
		if len(tables) == 0 {
			t.Fatalf("%s produced no tables", id)
		}
		var ascii, csv strings.Builder
		if err := WriteTables(&ascii, "ascii", tables); err != nil {
			t.Fatalf("%s ascii: %v", id, err)
		}
		if err := WriteTables(&csv, "csv", tables); err != nil {
			t.Fatalf("%s csv: %v", id, err)
		}
		if !strings.Contains(csv.String(), ",") || ascii.Len() == 0 {
			t.Fatalf("%s rendered empty output", id)
		}
	}
}

func TestDefaultCoreSweepShape(t *testing.T) {
	envH := fastEnv()
	sweep := defaultCoreSweep(envH)
	if sweep[0] != 1 || sweep[len(sweep)-1] != 35 {
		t.Fatalf("henri sweep %v", sweep)
	}
	envB, _ := Env("billy", 1, 1)
	sweepB := defaultCoreSweep(envB)
	if sweepB[len(sweepB)-1] != 63 {
		t.Fatalf("billy sweep ends at %d", sweepB[len(sweepB)-1])
	}
	if len(sweepB) >= 63 {
		t.Fatalf("billy sweep not thinned: %d points", len(sweepB))
	}
}

func TestCondense(t *testing.T) {
	in := []freqSample{
		{0, 0, 1.0}, {0, 1, 1.0},
		{sim.Time(10), 0, 1.0}, // unchanged → dropped
		{sim.Time(20), 0, 2.5}, // transition → kept
		{sim.Time(30), 1, 1.0}, // unchanged → dropped
	}
	out := condense(in)
	if len(out) != 3 {
		t.Fatalf("condensed to %d samples, want 3: %v", len(out), out)
	}
}
