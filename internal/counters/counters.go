// Package counters emulates the hardware performance counters the paper
// reads with pmu-tools/perf: per-core cycle counts and cycles stalled on
// memory accesses, plus byte counters for traffic accounting.
//
// Compute kernels report, for every execution slice, how many cycles
// they spent retiring work and how many they spent stalled waiting for
// memory (the simulator knows ground truth: a roofline kernel running at
// rate r below its compute ceiling c is stalled a fraction 1−r/c of the
// time). Figure 10 plots exactly this stall fraction.
package counters

import "fmt"

// Core accumulates counters for one core.
type Core struct {
	Cycles      float64 // total busy cycles
	StallCycles float64 // cycles stalled on memory
	Flops       float64
	MemBytes    float64
}

// Set holds the counters of one node.
type Set struct {
	cores []Core
	// BytesSent/BytesReceived count NIC traffic, with the time spent
	// sending (for the "sending bandwidth" metric of §6).
	BytesSent     float64
	BytesReceived float64
	SendBusySecs  float64
	// Fault/recovery accounting, fed by the MPI layer under fault
	// injection (all zero on healthy runs): retransmissions performed,
	// retransmission-timeout expiries, receive-timeout expiries, and
	// transmissions the injector dropped or corrupted.
	SendRetries   float64
	SendTimeouts  float64
	RecvTimeouts  float64
	MsgsLost      float64
	MsgsCorrupted float64
	// Crash-recovery accounting, fed by the failure detector and the
	// resilient task runtime (all zero without node crashes): peer death
	// declarations observed by this node, tasks re-executed because their
	// original execution (or its output) was lost with a crashed node,
	// iterations rolled back to the last checkpoint, checkpoints taken,
	// and the sim-time spent re-doing lost progress.
	PeerDeaths      float64
	TasksReexecuted float64
	RollbackIters   float64
	Checkpoints     float64
	RecoverySecs    float64
}

// NewSet returns counters for n cores.
func NewSet(n int) *Set { return &Set{cores: make([]Core, n)} }

// Reset zeroes every counter.
func (s *Set) Reset() {
	for i := range s.cores {
		s.cores[i] = Core{}
	}
	s.BytesSent = 0
	s.BytesReceived = 0
	s.SendBusySecs = 0
	s.SendRetries = 0
	s.SendTimeouts = 0
	s.RecvTimeouts = 0
	s.MsgsLost = 0
	s.MsgsCorrupted = 0
	s.PeerDeaths = 0
	s.TasksReexecuted = 0
	s.RollbackIters = 0
	s.Checkpoints = 0
	s.RecoverySecs = 0
}

// Core returns a pointer to core i's counters.
func (s *Set) Core(i int) *Core {
	if i < 0 || i >= len(s.cores) {
		panic(fmt.Sprintf("counters: core %d out of range [0,%d)", i, len(s.cores)))
	}
	return &s.cores[i]
}

// AddExec accrues one execution slice on core i: busy cycles, the
// subset stalled on memory, and the work retired.
func (s *Set) AddExec(i int, cycles, stallCycles, flops, memBytes float64) {
	c := s.Core(i)
	c.Cycles += cycles
	c.StallCycles += stallCycles
	c.Flops += flops
	c.MemBytes += memBytes
}

// StallFraction returns the node-wide fraction of busy cycles stalled
// on memory, the quantity Figure 10's bottom plot reports. Returns 0
// when no cycles were recorded.
func (s *Set) StallFraction() float64 {
	var cyc, stall float64
	for i := range s.cores {
		cyc += s.cores[i].Cycles
		stall += s.cores[i].StallCycles
	}
	if cyc == 0 {
		return 0
	}
	return stall / cyc
}

// TotalFlops sums retired flops over all cores.
func (s *Set) TotalFlops() float64 {
	var f float64
	for i := range s.cores {
		f += s.cores[i].Flops
	}
	return f
}

// TotalMemBytes sums memory traffic over all cores.
func (s *Set) TotalMemBytes() float64 {
	var b float64
	for i := range s.cores {
		b += s.cores[i].MemBytes
	}
	return b
}

// SendBandwidth returns the paper's §6 "sending network bandwidth": the
// bytes sent divided by the time the sender spent in send operations
// (as measured by the communication library's profiling, not by the
// receiver). Returns 0 when nothing was sent.
func (s *Set) SendBandwidth() float64 {
	if s.SendBusySecs == 0 {
		return 0
	}
	return s.BytesSent / s.SendBusySecs
}
