package counters

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAddExecAccumulates(t *testing.T) {
	s := NewSet(4)
	s.AddExec(0, 1000, 300, 5000, 2000)
	s.AddExec(0, 1000, 200, 5000, 2000)
	c := s.Core(0)
	if c.Cycles != 2000 || c.StallCycles != 500 || c.Flops != 10000 || c.MemBytes != 4000 {
		t.Fatalf("core 0 counters %+v", c)
	}
}

func TestStallFractionAggregatesAcrossCores(t *testing.T) {
	s := NewSet(2)
	s.AddExec(0, 100, 50, 0, 0)
	s.AddExec(1, 300, 30, 0, 0)
	// (50+30)/(100+300) = 0.2
	if got := s.StallFraction(); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("stall fraction %v, want 0.2", got)
	}
}

func TestStallFractionEmpty(t *testing.T) {
	if got := NewSet(3).StallFraction(); got != 0 {
		t.Fatalf("empty stall fraction %v", got)
	}
}

func TestSendBandwidth(t *testing.T) {
	s := NewSet(1)
	s.BytesSent = 1e9
	s.SendBusySecs = 0.5
	if got := s.SendBandwidth(); got != 2e9 {
		t.Fatalf("send bandwidth %v", got)
	}
	s2 := NewSet(1)
	if s2.SendBandwidth() != 0 {
		t.Fatal("zero busy time should report 0")
	}
}

func TestTotals(t *testing.T) {
	s := NewSet(3)
	s.AddExec(0, 1, 0, 10, 100)
	s.AddExec(1, 1, 0, 20, 200)
	s.AddExec(2, 1, 0, 30, 300)
	if s.TotalFlops() != 60 || s.TotalMemBytes() != 600 {
		t.Fatalf("totals %v %v", s.TotalFlops(), s.TotalMemBytes())
	}
}

func TestResetZeroesEverything(t *testing.T) {
	s := NewSet(2)
	s.AddExec(1, 5, 2, 3, 4)
	s.BytesSent = 9
	s.BytesReceived = 9
	s.SendBusySecs = 9
	s.Reset()
	if s.StallFraction() != 0 || s.TotalFlops() != 0 || s.BytesSent != 0 ||
		s.BytesReceived != 0 || s.SendBusySecs != 0 {
		t.Fatal("Reset left residue")
	}
}

func TestCoreOutOfRangePanics(t *testing.T) {
	s := NewSet(2)
	for _, i := range []int{-1, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Core(%d) did not panic", i)
				}
			}()
			s.Core(i)
		}()
	}
}

// Property: stall fraction is always within [0, 1] when stall cycles
// never exceed total cycles per exec.
func TestPropertyStallFractionBounded(t *testing.T) {
	f := func(execs []uint16) bool {
		s := NewSet(1)
		for _, e := range execs {
			cycles := float64(e) + 1
			stall := cycles * float64(e%101) / 100
			if stall > cycles {
				stall = cycles
			}
			s.AddExec(0, cycles, stall, 0, 0)
		}
		sf := s.StallFraction()
		return sf >= 0 && sf <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
