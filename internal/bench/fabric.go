package bench

// Fabric experiments: multi-job campaigns on switched fabrics. Jobs
// are placed on disjoint host sets of one shared fat-tree or
// dragonfly+ and exchange messages only within themselves, so any
// slowdown against a solo run of the same job is inter-job
// interference through shared fabric links — the Kang et al.
// phenomenology on top of the paper's intra-node model. Placement is
// striped (job j owns the hosts ≡ j mod J), which makes the collision
// structure a function of the job count: parity-striped jobs on a
// fat-tree are perfectly separated by the destination-hash routing
// (slowdown ≈ 1), while three striped jobs mix destination classes and
// collide on up-links (slowdown > 1, reduced by adaptive routing).

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/net"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
)

// fabricWorld builds a cluster sized to the fabric plus its routed
// network for one run.
func fabricWorld(env Env, spec *topology.FabricSpec, adaptive bool, seed int64) (*machine.Cluster, *net.Network) {
	fab := spec.MustBuild()
	c := machine.NewCluster(env.Spec, fab.NHosts, seed)
	env.track(c.K)
	nw := net.NewFabric(c, spec, adaptive)
	if env.Faults != nil {
		nw.InstallFaults(fault.NewInjector(c, env.Faults, seed))
	}
	if env.Meter != nil {
		for _, n := range c.Nodes {
			env.Meter.TrackCounters(n.Counters)
		}
	}
	return c, nw
}

// FabricConfig parameterises one fabric campaign cell.
type FabricConfig struct {
	// Preset names the fabric (topology.FabricPreset).
	Preset string
	// Adaptive selects the routing policy.
	Adaptive bool
	// Jobs is the number of concurrent jobs, striped over the hosts.
	Jobs int
	// Rounds and Bytes shape each job's traffic: every round, every
	// host sends Bytes to its successor in the job's host list, with a
	// per-job barrier between rounds.
	Rounds int
	Bytes  int64
	// Shift rotates each job's ring by one extra position per round
	// (neighbor-exchange pattern); keeps link collisions varied.
	Shift bool
}

func (cfg FabricConfig) routing() string {
	if cfg.Adaptive {
		return "adaptive"
	}
	return "minimal"
}

// stripedJobs partitions hosts into j striped sets: job i owns the
// hosts ≡ i mod j, in ascending order.
func stripedJobs(hosts, j int) [][]int {
	out := make([][]int, j)
	for h := 0; h < hosts; h++ {
		out[h%j] = append(out[h%j], h)
	}
	return out
}

// runFabricJobs runs the jobs' exchange rounds concurrently on one
// world and returns each job's makespan (the instant its last round
// completed). A nil entry in jobs runs nothing and reports zero — used
// for the solo baselines.
func runFabricJobs(c *machine.Cluster, nw *net.Network, jobs [][]int, cfg FabricConfig) []sim.Duration {
	makespans := make([]sim.Duration, len(jobs))
	for j := range jobs {
		j := j
		hosts := jobs[j]
		if len(hosts) < 2 {
			continue
		}
		barrier := sim.NewSignal(c.K)
		arrived, finished := 0, 0
		for idx := range hosts {
			idx := idx
			src := c.Nodes[hosts[idx]]
			srcBuf := src.Alloc(cfg.Bytes, src.Spec.NIC.NUMA)
			c.K.Spawn(fmt.Sprintf("job%d.h%d", j, hosts[idx]), func(p *sim.Proc) {
				for r := 0; r < cfg.Rounds; r++ {
					shift := 1
					if cfg.Shift {
						shift = 1 + r%(len(hosts)-1)
					}
					dst := c.Nodes[hosts[(idx+shift)%len(hosts)]]
					dstBuf := dst.Alloc(cfg.Bytes, dst.Spec.NIC.NUMA)
					nw.SendOverhead(p, src, 0, src.Spec.NIC.NUMA)
					p.Sleep(src.Jitter(nw.PathLatency(src.ID, dst.ID), src.Spec.NIC.NoiseFrac))
					nw.TransferDMA(p, src, srcBuf, dst, dstBuf, cfg.Bytes)
					// Per-job barrier: the last arriver of the round
					// releases the rest (the sim kernel is cooperative,
					// so the counter needs no locking).
					arrived++
					if arrived == len(hosts) {
						arrived = 0
						barrier.Broadcast()
					} else {
						barrier.Wait(p)
					}
				}
				finished++
				if finished == len(hosts) {
					makespans[j] = p.Now().Sub(0)
				}
			})
		}
	}
	c.K.Run()
	return makespans
}

// FabricCell is the measured outcome of one fabric campaign cell,
// aggregated over runs: per-run makespans of the shared world and the
// inter-job slowdown against per-job solo baselines.
type FabricCell struct {
	Preset  string
	Routing string
	Jobs    int
	// SharedSecs is the mean over runs of the slowest job's makespan on
	// the shared fabric; AloneSecs the same job mix run solo.
	SharedSecs float64
	AloneSecs  float64
	// SlowdownMean / SlowdownMax aggregate the per-job ratios
	// shared/alone over jobs and runs.
	SlowdownMean float64
	SlowdownMax  float64
}

// fabricCell measures one (preset, routing, jobs) cell: the shared
// world with every job active, then one solo world per job with the
// identical placement, both repeated env.Runs times.
func fabricCell(env Env, cfg FabricConfig) FabricCell {
	spec := topology.FabricPreset(cfg.Preset)
	if spec == nil {
		panic(fmt.Sprintf("bench: unknown fabric preset %q", cfg.Preset))
	}
	hosts := spec.MustBuild().NHosts
	cell := FabricCell{Preset: cfg.Preset, Routing: cfg.routing(), Jobs: cfg.Jobs}
	var sumShared, sumAlone, sumRatio float64
	ratios := 0
	for run := 0; run < env.runs(); run++ {
		seed := env.Seed + int64(run)
		jobs := stripedJobs(hosts, cfg.Jobs)
		c, nw := fabricWorld(env, spec, cfg.Adaptive, seed)
		shared := runFabricJobs(c, nw, jobs, cfg)
		alone := make([]sim.Duration, len(jobs))
		for j := range jobs {
			solo := make([][]int, len(jobs)) // same job index, same name, idle peers
			solo[j] = jobs[j]
			cs, ns := fabricWorld(env, spec, cfg.Adaptive, seed)
			alone[j] = runFabricJobs(cs, ns, solo, cfg)[j]
		}
		var worstShared, worstAlone sim.Duration
		for j := range jobs {
			if shared[j] > worstShared {
				worstShared = shared[j]
			}
			if alone[j] > worstAlone {
				worstAlone = alone[j]
			}
			if alone[j] > 0 {
				r := shared[j].Seconds() / alone[j].Seconds()
				sumRatio += r
				ratios++
				if r > cell.SlowdownMax {
					cell.SlowdownMax = r
				}
			}
		}
		sumShared += worstShared.Seconds()
		sumAlone += worstAlone.Seconds()
	}
	cell.SharedSecs = sumShared / float64(env.runs())
	cell.AloneSecs = sumAlone / float64(env.runs())
	if ratios > 0 {
		cell.SlowdownMean = sumRatio / float64(ratios)
	}
	return cell
}

// FabricInterference measures the multi-job interference grid: every
// job count × both routing policies on one fabric preset. Each cell is
// one schedulable sweep point.
func FabricInterference(env Env, preset string, jobCounts []int) []FabricCell {
	var pts []Point
	for _, adaptive := range []bool{false, true} {
		for _, jobs := range jobCounts {
			cfg := FabricConfig{
				Preset: preset, Adaptive: adaptive, Jobs: jobs,
				Rounds: 3, Bytes: 4 << 20, Shift: true,
			}
			pts = append(pts, Point{
				Key: fmt.Sprintf("fabric/interference/%s/routing=%s/jobs=%d", preset, cfg.routing(), jobs),
				Fn:  func(env Env) any { return fabricCell(env, cfg) },
			})
		}
	}
	return RunPointsAs[FabricCell](env, pts)
}

// FabricInterferenceTable renders the interference grid.
func FabricInterferenceTable(title string, cells []FabricCell) *trace.Table {
	t := trace.NewTable(title,
		"fabric", "routing", "jobs", "makespan_ms", "solo_ms", "slowdown_mean", "slowdown_max")
	for _, c := range cells {
		t.Add(c.Preset, c.Routing, c.Jobs, c.SharedSecs*1e3, c.AloneSecs*1e3, c.SlowdownMean, c.SlowdownMax)
	}
	return t
}

// FabricPingCell is one fabric ping measurement: a host pair at the
// fabric's diameter exchanging one small and one large transfer on an
// otherwise idle fabric.
type FabricPingCell struct {
	Preset  string
	Routing string
	Hops    int
	// SmallSecs is the completion time of a 64 KiB transfer (latency
	// regime), LargeGBs the achieved bandwidth of a 64 MiB transfer.
	SmallSecs float64
	LargeGBs  float64
}

// fabricPingCell measures one (preset, routing) diameter ping. On the
// idle fabric the adaptive row must be identical to the minimal one —
// the routing-independence property, locked into the golden file.
func fabricPingCell(env Env, preset string, adaptive bool) FabricPingCell {
	spec := topology.FabricPreset(preset)
	if spec == nil {
		panic(fmt.Sprintf("bench: unknown fabric preset %q", preset))
	}
	fab := spec.MustBuild()
	routing := "minimal"
	if adaptive {
		routing = "adaptive"
	}
	cell := FabricPingCell{Preset: preset, Routing: routing}
	var sumSmall, sumLarge float64
	for run := 0; run < env.runs(); run++ {
		c, nw := fabricWorld(env, spec, adaptive, env.Seed+int64(run))
		src, dst := c.Nodes[0], c.Nodes[fab.NHosts-1]
		cell.Hops = len(fab.Route(src.ID, dst.ID, nil, nil))
		var small, large sim.Duration
		c.K.Spawn("ping", func(p *sim.Proc) {
			srcBuf := src.Alloc(64<<20, src.Spec.NIC.NUMA)
			dstBuf := dst.Alloc(64<<20, dst.Spec.NIC.NUMA)
			start := p.Now()
			nw.SendOverhead(p, src, 0, src.Spec.NIC.NUMA)
			p.Sleep(nw.PathLatency(src.ID, dst.ID))
			nw.TransferDMA(p, src, srcBuf, dst, dstBuf, 64<<10)
			nw.RecvOverhead(p, dst, 0, dst.Spec.NIC.NUMA)
			small = p.Now().Sub(start)
			start = p.Now()
			nw.TransferDMA(p, src, srcBuf, dst, dstBuf, 64<<20)
			large = p.Now().Sub(start)
		})
		c.K.Run()
		sumSmall += small.Seconds()
		sumLarge += float64(64<<20) / large.Seconds() / 1e9
	}
	cell.SmallSecs = sumSmall / float64(env.runs())
	cell.LargeGBs = sumLarge / float64(env.runs())
	return cell
}

// FabricPingPong measures diameter pings over the given presets under
// both routing policies.
func FabricPingPong(env Env, presets []string) []FabricPingCell {
	var pts []Point
	for _, preset := range presets {
		for _, adaptive := range []bool{false, true} {
			preset, adaptive := preset, adaptive
			routing := "minimal"
			if adaptive {
				routing = "adaptive"
			}
			pts = append(pts, Point{
				Key: fmt.Sprintf("fabric/pingpong/%s/routing=%s", preset, routing),
				Fn:  func(env Env) any { return fabricPingCell(env, preset, adaptive) },
			})
		}
	}
	return RunPointsAs[FabricPingCell](env, pts)
}

// FabricPingTable renders the diameter pings. Adjacent minimal and
// adaptive rows of one preset carry identical numbers — the idle
// fabric routing-independence property, enforced by the golden file.
func FabricPingTable(cells []FabricPingCell) *trace.Table {
	t := trace.NewTable("Fabric — diameter ping on an idle fabric (minimal ≡ adaptive)",
		"fabric", "routing", "hops", "latency_us", "bandwidth_GBps")
	for _, c := range cells {
		t.Add(c.Preset, c.Routing, c.Hops, c.SmallSecs*1e6, c.LargeGBs)
	}
	return t
}
