package bench

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

// TestCrashCGResidualMatchesHealthy pins the central fault-tolerance
// contract: the resilient CG run that loses a node mid-solve rolls back
// to its last checkpoint, re-executes the dead rank's tasks, and
// converges to the byte-identical residual of the healthy run.
func TestCrashCGResidualMatchesHealthy(t *testing.T) {
	env := quietEnv()
	healthy, hres := runCrashCG(env, nil)
	if healthy.Crashes != 0 || healthy.Survivors != 2 {
		t.Fatalf("healthy run saw crashes: %+v", healthy)
	}
	crashAt := sim.DurationOfSeconds(healthy.Elapsed.Seconds() * 0.4)
	st, res := runCrashCG(env, crashSchedule(1, crashAt))
	if res != hres {
		t.Fatalf("crash-recovered residual %s differs from healthy %s", res, hres)
	}
	if st.Crashes != 1 || st.Survivors != 1 {
		t.Fatalf("crash not reflected in stats: %+v", st)
	}
	if st.CompletedIters != healthy.CompletedIters {
		t.Fatalf("crashed run completed %d iterations, healthy %d", st.CompletedIters, healthy.CompletedIters)
	}
	if st.TasksReexec == 0 {
		t.Fatal("no tasks re-executed after the crash")
	}
	if st.RecoverySecs <= 0 {
		t.Fatal("recovery time not accounted")
	}
	if st.Elapsed <= healthy.Elapsed {
		t.Fatalf("recovery was free: crashed %v <= healthy %v", st.Elapsed, healthy.Elapsed)
	}
}

// TestCrashCGEarlyCrashRollsBack: a crash shortly after a checkpoint
// still replays from it; a crash between checkpoints pays rollback
// iterations.
func TestCrashCGRollbackAccounting(t *testing.T) {
	env := quietEnv()
	healthy, hres := runCrashCG(env, nil)
	// Late crash: most of the solve is checkpointed; some iterations
	// roll back, all of the dead rank's window re-executes.
	st, res := runCrashCG(env, crashSchedule(1, sim.DurationOfSeconds(healthy.Elapsed.Seconds()*0.8)))
	if res != hres {
		t.Fatalf("late-crash residual %s != healthy %s", res, hres)
	}
	if st.RollbackIters < 0 || st.RollbackIters > 3 {
		t.Fatalf("rollback beyond one checkpoint interval: %+v", st)
	}
}

func TestCrashPingPongDetectionWindow(t *testing.T) {
	env := quietEnv()
	iters, detectedUs, _, status := runCrashPingPong(env, crashSchedule(1, sim.Millisecond))
	if status != "mpi: peer rank is dead" {
		t.Fatalf("status %q", status)
	}
	if iters == 0 {
		t.Fatal("no iterations completed before the crash")
	}
	// Detection: suspicion timeout measured from the last probe that saw
	// the peer up, declared on a probe tick.
	if detectedUs < 1000 || detectedUs > 1300 {
		t.Fatalf("detected at %gus, want shortly after the 1000us crash", detectedUs)
	}
	// Healthy run completes and never declares anyone dead.
	iters, detectedUs, _, status = runCrashPingPong(env, nil)
	if status != "completed" || detectedUs != 0 {
		t.Fatalf("healthy run: %d iters, detected %g, status %q", iters, detectedUs, status)
	}
}

// TestCrashTablesDeterministic: both crash experiments are pure
// functions of (spec, seed, schedule) — two renders are byte-identical.
func TestCrashTablesDeterministic(t *testing.T) {
	if CrashCG(quietEnv()).String() != CrashCG(quietEnv()).String() {
		t.Fatal("CrashCG not deterministic")
	}
	if CrashPingPong(quietEnv()).String() != CrashPingPong(quietEnv()).String() {
		t.Fatal("CrashPingPong not deterministic")
	}
}

// TestMeterCrashCounters: the crash-recovery work is accounted on the
// nodes and aggregated by the meter, so the campaign summary can report
// it.
func TestMeterCrashCounters(t *testing.T) {
	env := quietEnv()
	env.Meter = &Meter{}
	CrashCG(env)
	ft := env.Meter.FaultTotals()
	if !ft.Any() {
		t.Fatal("crash experiment left no fault totals")
	}
	if ft.PeerDeaths == 0 {
		t.Fatalf("no peer deaths recorded: %+v", ft)
	}
	if ft.TasksReexecuted == 0 || ft.Checkpoints == 0 {
		t.Fatalf("recovery work not accounted: %+v", ft)
	}
	if ft.RecoverySecs <= 0 {
		t.Fatalf("lost-progress time not accounted: %+v", ft)
	}

	env2 := quietEnv()
	env2.Meter = &Meter{}
	CrashPingPong(env2)
	ft2 := env2.Meter.FaultTotals()
	if ft2.PeerDeaths == 0 {
		t.Fatalf("ping-pong crash scenarios recorded no deaths: %+v", ft2)
	}
	if ft2.TasksReexecuted != 0 || ft2.Checkpoints != 0 {
		t.Fatalf("ping-pong has no task runtime, yet: %+v", ft2)
	}
}

// TestFaultTotalsMergeAllCounters guards the aggregation paths: every
// counter visible in a Set must survive add+merge into the totals.
func TestFaultTotalsMergeAllCounters(t *testing.T) {
	var a, b FaultTotals
	a.SendRetries, a.PeerDeaths, a.RecoverySecs = 1, 2, 3
	b.TasksReexecuted, b.RollbackIters, b.Checkpoints = 4, 5, 6
	a.merge(b)
	if a.SendRetries != 1 || a.PeerDeaths != 2 || a.RecoverySecs != 3 ||
		a.TasksReexecuted != 4 || a.RollbackIters != 5 || a.Checkpoints != 6 {
		t.Fatalf("merge dropped counters: %+v", a)
	}
	if !a.Any() {
		t.Fatal("Any() misses crash counters")
	}
}

// TestCrashScheduleSpecParses: the crash DSL round-trips through the
// -faults grammar the CLI exposes.
func TestCrashScheduleSpecParses(t *testing.T) {
	s := crashSchedule(1, sim.Millisecond)
	if !s.Crashy() {
		t.Fatal("crash schedule not Crashy")
	}
	if got := s.String(); !strings.Contains(got, "crash:node=1") {
		t.Fatalf("rendered spec %q", got)
	}
}
