package bench

import (
	"fmt"

	"repro/internal/freq"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ExtEnergy quantifies the §7 related-work tradeoff (Lim et al. [14],
// Sundriyal et al. [19]): lowering the CPU frequency during
// communication phases saves energy — essentially for free on
// bandwidth-bound phases (DMA does the work), but at a real
// performance cost on latency-bound phases (the software overhead is
// clocked by the core, §3.1). Reported per phase: duration, node
// energy, and the energy-delay product.
func ExtEnergy(env Env) *trace.Table {
	t := trace.NewTable("EXT — energy/performance tradeoff of frequency scaling in communication phases (after [14])",
		"phase", "core_GHz", "time_ms", "energy_J", "energy_delay_Jms")
	type phase struct {
		name  string
		size  int64
		iters int
	}
	phases := []phase{
		{"latency-bound (4B x 2000)", 4, 2000},
		{"bandwidth-bound (16MB x 40)", 16 << 20, 40},
	}
	type energyCell struct {
		Phase   string
		GHz     float64
		Elapsed sim.Duration
		Joules  float64
	}
	var pts []Point
	for _, ph := range phases {
		for _, ghz := range []float64{env.Spec.Freq.CoreMin, env.Spec.Freq.CoreBase} {
			ph, ghz := ph, ghz
			pts = append(pts, Point{
				Key: fmt.Sprintf("energy/size=%d/iters=%d/ghz=%g", ph.size, ph.iters, ghz),
				Fn: func(env Env) any {
					c, w := newWorld(env, env.Seed)
					for i := 0; i < 2; i++ {
						r := w.Rank(i)
						r.SetCommCore(env.Spec.LastCoreOfNUMA(env.Spec.NIC.NUMA))
						r.Node.Freq.SetUserspace(ghz)
						r.Node.Freq.EnableEnergy(freq.DefaultEnergyParams())
					}
					pp := &mpi.PingPong{Size: ph.size, Iters: ph.iters, Warmup: 0}
					var elapsed sim.Duration
					c.K.Spawn("init", func(p *sim.Proc) {
						start := p.Now()
						pp.Initiate(p, w.Rank(0), 1)
						elapsed = p.Now().Sub(start)
					})
					c.K.Spawn("resp", func(p *sim.Proc) { pp.Respond(p, w.Rank(1), 0) })
					c.K.Run()
					return energyCell{
						Phase: ph.name, GHz: ghz, Elapsed: elapsed,
						Joules: w.Rank(0).Node.Freq.EnergyJoules(),
					}
				},
			})
		}
	}
	for _, cell := range RunPointsAs[energyCell](env, pts) {
		t.Add(cell.Phase, cell.GHz, cell.Elapsed.Seconds()*1e3, cell.Joules,
			cell.Joules*cell.Elapsed.Seconds()*1e3)
	}
	return t
}
