package bench

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/topology"
	"repro/internal/trace"
)

// Placement names the two NUMA binding choices of §4.3.
type Placement int

const (
	// Near means on the same NUMA node as the NIC.
	Near Placement = iota
	// Far means on a NUMA node of the other socket.
	Far
)

func (pl Placement) String() string {
	if pl == Near {
		return "near"
	}
	return "far"
}

// numaOf resolves a placement to a NUMA node for the given spec: Near
// is the NIC's NUMA node, Far is the last NUMA node (other socket).
func (pl Placement) numaOf(spec *topology.NodeSpec) int {
	if pl == Near {
		return spec.NIC.NUMA
	}
	return spec.NUMANodes() - 1
}

// ContentionPoint is one x-position of Figures 4/5: a computing-core
// count with the three-step protocol results for both the latency and
// the bandwidth benchmarks.
type ContentionPoint struct {
	Cores     int
	Latency   InterferenceResult // 4-byte ping-pong
	Bandwidth InterferenceResult // 64 MB ping-pong
}

// ContentionConfig parameterises the §4 experiments.
type ContentionConfig struct {
	// Kernel builds one compute slice given the data NUMA node; defaults
	// to STREAM TRIAD of the default array size.
	Kernel func(numa int) machine.ComputeSpec
	// KernelTag names a non-nil Kernel for sweep-point cache addressing
	// (two configs with the same tag must build identical kernels). A
	// nil Kernel is tagged "triad-default" automatically; a non-nil
	// Kernel with an empty tag disables the point layer for this sweep
	// (it runs as a plain serial loop, never cached).
	KernelTag string
	// Data and CommThread place the computation/communication memory and
	// the communication thread relative to the NIC (§4.3).
	Data, CommThread Placement
	// CoreCounts lists the x-axis; empty means 1..cores−1.
	CoreCounts []int
}

// Fig4Contention reproduces Figure 4 (and, with other placements,
// Figure 5): memory-bound computations beside latency and bandwidth
// ping-pongs, as a function of the number of computing cores. Memory
// for computation and communication is allocated on the Data placement;
// the communication thread is bound to the last core of the CommThread
// placement's NUMA node.
func Fig4Contention(env Env, cfg ContentionConfig) []ContentionPoint {
	pts, ok := contentionSweep(env.Spec, cfg)
	if !ok {
		// Un-taggable custom kernel: run the sweep as a plain serial
		// loop against the caller's environment, bypassing the point
		// scheduler and its cache.
		out := make([]ContentionPoint, 0, len(contentionCoreCounts(env.Spec, cfg)))
		for _, nc := range contentionCoreCounts(env.Spec, cfg) {
			out = append(out, contentionCell(env, cfg, nc))
		}
		return out
	}
	return RunPointsAs[ContentionPoint](env, pts)
}

// contentionCoreCounts resolves the x-axis of a contention sweep.
func contentionCoreCounts(spec *topology.NodeSpec, cfg ContentionConfig) []int {
	if len(cfg.CoreCounts) > 0 {
		return cfg.CoreCounts
	}
	var counts []int
	for n := 1; n < spec.Cores(); n++ {
		counts = append(counts, n)
	}
	return counts
}

// contentionSweep compiles a contention configuration into one sweep
// point per core count. ok is false when the config carries a custom
// kernel without a KernelTag — such a sweep has no sound cache address
// and must run as a plain loop.
func contentionSweep(spec *topology.NodeSpec, cfg ContentionConfig) ([]Point, bool) {
	tag := cfg.KernelTag
	if cfg.Kernel == nil {
		if tag == "" {
			tag = "triad-default"
		}
	} else if tag == "" {
		return nil, false
	}
	counts := contentionCoreCounts(spec, cfg)
	pts := make([]Point, 0, len(counts))
	for _, nc := range counts {
		nc := nc
		pts = append(pts, Point{
			Key: fmt.Sprintf("contention/data=%s/comm=%s/kernel=%s/cores=%d",
				cfg.Data, cfg.CommThread, tag, nc),
			Fn: func(env Env) any { return contentionCell(env, cfg, nc) },
		})
	}
	return pts, true
}

// contentionCell measures one core count of a Figure 4/5 sweep: the
// full three-step protocol for both the latency and the bandwidth
// benchmarks.
func contentionCell(env Env, cfg ContentionConfig, nc int) ContentionPoint {
	spec := env.Spec
	kernel := cfg.Kernel
	if kernel == nil {
		kernel = func(numa int) machine.ComputeSpec {
			return kernels.StreamTriad(kernels.DefaultStreamElems, numa)
		}
	}
	dataNUMA := cfg.Data.numaOf(spec)
	commCore := spec.LastCoreOfNUMA(cfg.CommThread.numaOf(spec))
	comp := ComputeConfig{Slice: kernel(dataNUMA), Cores: nc}
	lat := LatencyConfig()
	lat.CommCore = commCore
	lat.BufNUMA = dataNUMA
	bw := BandwidthConfig()
	bw.CommCore = commCore
	bw.BufNUMA = dataNUMA
	return ContentionPoint{
		Cores:     nc,
		Latency:   Interference(env, lat, comp),
		Bandwidth: Interference(env, bw, comp),
	}
}

// ContentionTable renders a Figure 4/5 series.
func ContentionTable(title string, points []ContentionPoint) *trace.Table {
	t := trace.NewTable(title,
		"cores",
		"latency_us_alone", "latency_us_with_compute",
		"bandwidth_MBps_alone", "bandwidth_MBps_with_compute",
		"stream_GBps_per_core_alone", "stream_GBps_with_lat", "stream_GBps_with_bw")
	for _, pt := range points {
		t.Add(pt.Cores,
			pt.Latency.CommAlone.Median*1e6, pt.Latency.CommTogether.Median*1e6,
			pt.Bandwidth.BandwidthAlone()/1e6, pt.Bandwidth.BandwidthTogether()/1e6,
			pt.Latency.ComputeAlone.Median/1e9,
			pt.Latency.ComputeTogether.Median/1e9,
			pt.Bandwidth.ComputeTogether.Median/1e9)
	}
	return t
}

// Fig5Placement runs the four placement schemes of Figure 5 / Table 1.
// The returned map is keyed by "data/thread" ("near/far", ...). All
// four series are compiled into a single point batch so a parallel
// campaign can overlap cells across placements.
func Fig5Placement(env Env, coreCounts []int) map[string][]ContentionPoint {
	type segment struct {
		key string
		n   int
	}
	var (
		pts  []Point
		segs []segment
	)
	for _, data := range []Placement{Near, Far} {
		for _, thread := range []Placement{Near, Far} {
			p, _ := contentionSweep(env.Spec, ContentionConfig{
				Data: data, CommThread: thread, CoreCounts: coreCounts,
			}) // default kernel: always compilable
			segs = append(segs, segment{key: fmt.Sprintf("%s/%s", data, thread), n: len(p)})
			pts = append(pts, p...)
		}
	}
	cells := RunPointsAs[ContentionPoint](env, pts)
	out := make(map[string][]ContentionPoint, len(segs))
	for _, s := range segs {
		out[s.key] = cells[:s.n:s.n]
		cells = cells[s.n:]
	}
	return out
}

// Table1Row is the qualitative classification of one placement scheme,
// derived from the measured series as the paper's Table 1 does.
type Table1Row struct {
	Data, CommThread Placement
	// LatencyIncrease is the with-compute latency at full cores over the
	// alone latency.
	LatencyIncrease float64
	// LatencyOnset is the smallest computing-core count where latency
	// rose ≥15% above alone.
	LatencyOnset int
	// BandwidthDropFrac is 1 − (contended/alone) bandwidth at full cores.
	BandwidthDropFrac float64
	// StreamWorstLossFrac is the worst per-core STREAM loss beside the
	// bandwidth benchmark.
	StreamWorstLossFrac float64
}

// Table1 derives the paper's Table 1 from Figure 5's series.
func Table1(series map[string][]ContentionPoint) []Table1Row {
	var rows []Table1Row
	for _, data := range []Placement{Near, Far} {
		for _, thread := range []Placement{Near, Far} {
			pts := series[fmt.Sprintf("%s/%s", data, thread)]
			if len(pts) == 0 {
				continue
			}
			row := Table1Row{Data: data, CommThread: thread, LatencyOnset: -1}
			last := pts[len(pts)-1]
			if m := last.Latency.CommAlone.Median; m > 0 {
				row.LatencyIncrease = last.Latency.CommTogether.Median / m
			}
			if a := last.Bandwidth.BandwidthAlone(); a > 0 {
				row.BandwidthDropFrac = 1 - last.Bandwidth.BandwidthTogether()/a
			}
			worst := 0.0
			for _, pt := range pts {
				if pt.Latency.CommAlone.Median > 0 &&
					pt.Latency.CommTogether.Median > 1.15*pt.Latency.CommAlone.Median &&
					row.LatencyOnset < 0 {
					row.LatencyOnset = pt.Cores
				}
				if alone := pt.Bandwidth.ComputeAlone.Median; alone > 0 {
					loss := 1 - pt.Bandwidth.ComputeTogether.Median/alone
					if loss > worst {
						worst = loss
					}
				}
			}
			row.StreamWorstLossFrac = worst
			rows = append(rows, row)
		}
	}
	return rows
}

// Table1Render renders the derived Table 1.
func Table1Render(rows []Table1Row) *trace.Table {
	t := trace.NewTable("Table 1 — impact of data and communication thread placement",
		"data", "comm_thread", "latency_factor_at_full_cores", "latency_onset_cores",
		"bandwidth_drop_%", "worst_stream_loss_%")
	for _, r := range rows {
		t.Add(r.Data.String(), r.CommThread.String(),
			r.LatencyIncrease, r.LatencyOnset,
			r.BandwidthDropFrac*100, r.StreamWorstLossFrac*100)
	}
	return t
}

// SizePoint is one x-position of Figure 6: a message size with the
// protocol results at a fixed computing-core count.
type SizePoint struct {
	Size   int64
	Result InterferenceResult
}

// Fig6MessageSize reproduces Figure 6: network and STREAM performance
// as a function of the transmitted message size, for a fixed number of
// computing cores (the paper uses 5 and 35).
func Fig6MessageSize(env Env, cores int, sizes []int64) []SizePoint {
	if len(sizes) == 0 {
		for s := int64(4); s <= 64<<20; s *= 4 {
			sizes = append(sizes, s)
		}
	}
	pts := make([]Point, 0, len(sizes))
	for _, size := range sizes {
		size := size
		pts = append(pts, Point{
			Key: fmt.Sprintf("fig6/cores=%d/size=%d", cores, size),
			Fn: func(env Env) any {
				spec := env.Spec
				dataNUMA := spec.NIC.NUMA
				commCore := spec.LastCoreOfNUMA(spec.NUMANodes() - 1)
				comm := CommConfig{
					CommCore: commCore, BufNUMA: dataNUMA,
					Size: size, Iters: pingIters(size), Warmup: 2,
				}
				comp := ComputeConfig{
					Slice: kernels.StreamTriad(kernels.DefaultStreamElems, dataNUMA),
					Cores: cores,
				}
				return SizePoint{Size: size, Result: Interference(env, comm, comp)}
			},
		})
	}
	return RunPointsAs[SizePoint](env, pts)
}

// Fig6Table renders a Figure 6 series.
func Fig6Table(cores int, points []SizePoint) *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("Fig 6 — impact of message size with %d computing cores", cores),
		"size_B", "latency_us_alone", "latency_us_with_compute",
		"bandwidth_MBps_alone", "bandwidth_MBps_with_compute",
		"stream_GBps_alone", "stream_GBps_together")
	for _, pt := range points {
		r := pt.Result
		t.Add(pt.Size,
			r.CommAlone.Median*1e6, r.CommTogether.Median*1e6,
			r.BandwidthAlone()/1e6, r.BandwidthTogether()/1e6,
			r.ComputeAlone.Median/1e9, r.ComputeTogether.Median/1e9)
	}
	return t
}

// IntensityPoint is one x-position of Figure 7: an arithmetic intensity
// with the protocol results for latency and bandwidth benchmarks.
type IntensityPoint struct {
	Cursor    int
	Intensity float64 // flop/B
	Latency   InterferenceResult
	Bandwidth InterferenceResult
}

// Fig7Intensity reproduces Figure 7: the TriadX benchmark's cursor
// sweeps the arithmetic intensity from memory-bound to CPU-bound while
// running beside latency and bandwidth ping-pongs on `cores` computing
// cores (the paper uses the full node, 35).
func Fig7Intensity(env Env, cores int, cursors []int) []IntensityPoint {
	if len(cursors) == 0 {
		cursors = []int{1, 2, 4, 8, 16, 24, 36, 48, 72, 96, 144, 288, 576, 1200}
	}
	// Smaller arrays keep high-cursor iterations short.
	const elems = 1 << 20
	pts := make([]Point, 0, len(cursors))
	for _, cur := range cursors {
		cur := cur
		pts = append(pts, Point{
			Key: fmt.Sprintf("fig7/elems=%d/cores=%d/cursor=%d", elems, cores, cur),
			Fn: func(env Env) any {
				spec := env.Spec
				dataNUMA := spec.NIC.NUMA
				commCore := spec.LastCoreOfNUMA(spec.NUMANodes() - 1)
				slice := kernels.TriadX(elems, cur, dataNUMA)
				comp := ComputeConfig{Slice: slice, Cores: cores}
				lat := LatencyConfig()
				lat.CommCore = commCore
				lat.BufNUMA = dataNUMA
				bw := BandwidthConfig()
				bw.CommCore = commCore
				bw.BufNUMA = dataNUMA
				return IntensityPoint{
					Cursor:    cur,
					Intensity: kernels.Intensity(slice),
					Latency:   Interference(env, lat, comp),
					Bandwidth: Interference(env, bw, comp),
				}
			},
		})
	}
	return RunPointsAs[IntensityPoint](env, pts)
}

// Fig7Table renders Figure 7.
func Fig7Table(points []IntensityPoint) *trace.Table {
	t := trace.NewTable("Fig 7 — impact of memory pressure (arithmetic intensity) on network performance",
		"cursor", "flop_per_byte",
		"latency_us_alone", "latency_us_with_compute",
		"bandwidth_MBps_alone", "bandwidth_MBps_with_compute",
		"compute_ms_alone", "compute_ms_with_bw")
	for _, pt := range points {
		t.Add(pt.Cursor, pt.Intensity,
			pt.Latency.CommAlone.Median*1e6, pt.Latency.CommTogether.Median*1e6,
			pt.Bandwidth.BandwidthAlone()/1e6, pt.Bandwidth.BandwidthTogether()/1e6,
			pt.Bandwidth.ComputeSecsAlone.Median*1e3, pt.Bandwidth.ComputeSecsTogether.Median*1e3)
	}
	return t
}
