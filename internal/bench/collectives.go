package bench

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/net"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ExtCollectives measures broadcast and allreduce completion times
// across node counts, quiet and under full memory contention on every
// node. The paper explicitly scopes collectives out (§2.1); this
// extension shows its point-to-point findings compose: a collective
// built on the studied primitives inherits their contention behaviour
// on every hop.
func ExtCollectives(env Env) *trace.Table {
	t := trace.NewTable("EXT — collectives under memory contention (built on the studied point-to-point layer)",
		"op", "nodes", "size_B", "quiet_us", "contended_us", "slowdown")
	const size = 1 << 20
	type collCell struct {
		Op            string
		Nodes         int
		Quiet, Loaded sim.Duration
	}
	var pts []Point
	for _, op := range []string{"bcast", "allreduce"} {
		for _, nodes := range []int{2, 4, 8} {
			op, nodes := op, nodes
			pts = append(pts, Point{
				Key: fmt.Sprintf("collectives/op=%s/nodes=%d/size=%d", op, nodes, size),
				Fn: func(env Env) any {
					return collCell{
						Op: op, Nodes: nodes,
						Quiet:  runCollective(env, op, nodes, size, 0),
						Loaded: runCollective(env, op, nodes, size, env.Spec.Cores()-1),
					}
				},
			})
		}
	}
	for _, cell := range RunPointsAs[collCell](env, pts) {
		slow := 0.0
		if cell.Quiet > 0 {
			slow = cell.Loaded.Seconds() / cell.Quiet.Seconds()
		}
		t.Add(cell.Op, cell.Nodes, size, cell.Quiet.Micros(), cell.Loaded.Micros(), slow)
	}
	return t
}

// runCollective times one collective over `nodes` ranks, with
// `computeCores` STREAM cores per node running beside it.
func runCollective(env Env, op string, nodes int, size int64, computeCores int) sim.Duration {
	c := machine.NewCluster(env.Spec, nodes, env.Seed)
	env.track(c.K)
	w := mpi.NewWorld(c, net.New(c))
	stop := false
	for _, node := range c.Nodes {
		node := node
		for _, core := range computeCoresList(env, computeCores, w.Rank(node.ID).CommCore) {
			core := core
			c.K.Spawn("stream", func(p *sim.Proc) {
				kernels.LoopWhile(p, node, core,
					kernels.StreamTriad(kernels.DefaultStreamElems, env.Spec.NIC.NUMA),
					func() bool { return !stop })
			})
		}
	}
	var finish sim.Time
	remaining := nodes
	for i := 0; i < nodes; i++ {
		r := w.Rank(i)
		c.K.Spawn(fmt.Sprintf("coll.%d", i), func(p *sim.Proc) {
			// Let contention reach steady state, then synchronise.
			p.Sleep(sim.Duration(2 * sim.Millisecond))
			buf := r.Node.Alloc(size, env.Spec.NIC.NUMA)
			switch op {
			case "bcast":
				r.Bcast(p, 0, 1, buf, size)
			case "allreduce":
				r.Allreduce(p, 1, buf, size)
			default:
				panic("bench: unknown collective " + op)
			}
			if p.Now() > finish {
				finish = p.Now()
			}
			remaining--
			if remaining == 0 {
				stop = true
			}
		})
	}
	c.K.Run()
	return finish.Sub(sim.Time(2 * sim.Millisecond))
}

// computeCoresList mirrors computeCores but tolerates zero.
func computeCoresList(env Env, n, commCore int) []int {
	if n <= 0 {
		return nil
	}
	return computeCores(env.Spec, n, commCore)
}
