package bench

// The sweep layer turns an experiment's nested parameter loops into a
// flat, index-ordered slice of independently schedulable points. Each
// point owns a fresh isolated Env clone (its own spec copy and meter),
// so a campaign scheduler may execute points from *different*
// experiments side by side, in any completion order, and still merge
// results back by index — the rendered tables are byte-identical to a
// serial run at every worker count.
//
// Point results are canonicalised through JSON: a freshly computed
// point is marshalled and decoded through exactly the same path as a
// point replayed from a persistent cache, so "cold" and "warm"
// campaigns cannot diverge even by a formatting bit. The encoded
// PointRecord also carries the point's simulation accounting
// (simulated seconds, world count, fault totals), which the owning
// experiment's meter absorbs in index order — campaign summaries and
// journal entries stay deterministic whether a point was executed or
// replayed.

import (
	"encoding/json"
	"fmt"
)

// PointSchema versions the encoded PointRecord format. Cached records
// with a different schema are ignored (a stale cache degrades to a
// recompute, never to corrupt output).
const PointSchema = 1

// SweepVersion versions the *measurement logic* of the sweep drivers:
// bump it whenever a driver changes what a point with an existing key
// computes (protocol steps, iteration counts, derived statistics), so
// content-addressed caches keyed before the change miss instead of
// serving measurements of the old logic.
const SweepVersion = 1

// Point is one independently schedulable cell of an experiment's
// parameter grid.
type Point struct {
	// Key identifies the cell completely and stably: the sweep's name
	// plus every parameter that influences Fn's result (e.g.
	// "contention/data=near/comm=far/kernel=triad-default/cores=7").
	// Two points with equal keys under the same environment must compute
	// identical results — the campaign cache is addressed by this key,
	// so an under-descriptive key silently serves stale data.
	Key string
	// Fn computes the cell against an isolated environment (fresh spec
	// clone, fresh meter, inline nested sweeps). The returned value must
	// survive a JSON round-trip unchanged: exported fields only, no NaN
	// or ±Inf.
	Fn func(env Env) any
}

// PointRecord is the transportable outcome of one point: the encoded
// payload plus the simulation accounting its execution produced. It is
// the unit stored in the campaign's content-addressed cache.
type PointRecord struct {
	Schema int `json:"schema"`
	// Key echoes the full cache key the record was computed under, so a
	// poisoned or misfiled cache entry is detected by comparing the
	// stored key against the requested one (never served silently).
	Key     string          `json:"key"`
	Payload json.RawMessage `json:"payload"`
	// Accounting of the execution, replayed into the owning
	// experiment's meter on decode (cache hits included).
	SimSeconds float64     `json:"sim_seconds"`
	Worlds     int         `json:"worlds"`
	Faults     FaultTotals `json:"faults"`
	// Panic carries a panic value raised while computing the point; it
	// is re-raised on the owning experiment's goroutine by RunPointsAs
	// (a point executed by a stranger's worker must fail the experiment
	// that owns it, not the one that happened to run it). Never stored
	// in the cache.
	Panic any `json:"-"`
}

// PointRunner schedules compiled sweeps. The campaign runner installs
// one on Env.Sched to execute points from all experiments on a shared
// pool (with optional persistent caching); a nil Sched runs points
// inline, serially, with identical semantics.
type PointRunner interface {
	// RunPoints executes every point (in any order, possibly from
	// cache) and returns one record per point, index-aligned with pts.
	RunPoints(env Env, pts []Point) []PointRecord
}

// ExecutePoint runs one point against an isolated clone of env and
// encodes the outcome. It never panics: a panic inside the point's Fn
// (or a non-encodable result) is captured in the record's Panic field
// for the sweep's owner to re-raise.
func ExecutePoint(env Env, p Point) PointRecord {
	iso := env.Isolated()
	// Sweeps nested inside a point run inline: the point is already the
	// unit of scheduling, and re-entering the pool from inside a worker
	// would only add queueing overhead.
	iso.Sched = nil
	// Worlds built for this point are recycled through the arena once
	// the record below is sealed (see arena.go).
	iso.keeper = &worldKeeper{}
	defer releaseWorlds(iso.keeper)
	rec := PointRecord{Schema: PointSchema, Key: p.Key}
	var v any
	func() {
		defer func() {
			if pa := recover(); pa != nil {
				rec.Panic = pa
			}
		}()
		v = p.Fn(iso)
	}()
	if rec.Panic != nil {
		return rec
	}
	payload, err := json.Marshal(v)
	if err != nil {
		rec.Panic = fmt.Sprintf("bench: point %q result is not JSON-encodable: %v", p.Key, err)
		return rec
	}
	rec.Payload = payload
	rec.SimSeconds = iso.Meter.SimSeconds()
	rec.Worlds = iso.Meter.Worlds()
	rec.Faults = iso.Meter.FaultTotals()
	return rec
}

// RunPointsAs executes a compiled sweep and decodes the results in
// index order. With a scheduler installed on the environment the points
// run on the campaign's shared pool (stealing-friendly, cache-backed);
// otherwise they run inline in index order. Either way the returned
// slice is index-aligned with pts and the environment's meter absorbs
// each point's accounting in index order, so every downstream number is
// independent of execution order.
func RunPointsAs[T any](env Env, pts []Point) []T {
	var recs []PointRecord
	if env.Sched != nil {
		recs = env.Sched.RunPoints(env, pts)
	} else {
		recs = make([]PointRecord, len(pts))
		for i, p := range pts {
			recs[i] = ExecutePoint(env, p)
		}
	}
	out := make([]T, len(pts))
	for i, rec := range recs {
		if rec.Panic != nil {
			panic(rec.Panic)
		}
		if err := json.Unmarshal(rec.Payload, &out[i]); err != nil {
			panic(fmt.Sprintf("bench: decoding point %q: %v", pts[i].Key, err))
		}
		if env.Meter != nil {
			env.Meter.Absorb(rec.SimSeconds, rec.Worlds, rec.Faults)
		}
	}
	return out
}
