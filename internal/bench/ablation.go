package bench

// Ablations: quantify the role of each calibrated mechanism DESIGN.md §4
// introduces, by re-running the Fig 4 full-load point with one mechanism
// disabled at a time. This documents which headline result each model
// ingredient carries.

import (
	"fmt"

	"repro/internal/topology"
	"repro/internal/trace"
)

// ablationCase disables one mechanism in a copy of the spec.
type ablationCase struct {
	Name   string
	Doc    string
	Mutate func(spec *topology.NodeSpec)
}

func ablationCases() []ablationCase {
	return []ablationCase{
		{
			Name:   "full-model",
			Doc:    "all mechanisms enabled (the calibrated model)",
			Mutate: func(*topology.NodeSpec) {},
		},
		{
			Name: "no-dma-arbitration",
			Doc:  "NIC DMA loses its growing arbitration priority (pure fair share)",
			Mutate: func(s *topology.NodeSpec) {
				s.NIC.DMAPriorityPerStream = 0
			},
		},
		{
			Name: "no-latency-contention",
			Doc:  "memory accesses never queue (ContentionK = 0)",
			Mutate: func(s *topology.NodeSpec) {
				s.Mem.ContentionK = 0
			},
		},
		{
			Name: "no-stream-efficiency-loss",
			Doc:  "controllers keep full capacity under many streams",
			Mutate: func(s *topology.NodeSpec) {
				s.Mem.StreamEfficiency = 0
			},
		},
		{
			Name: "infinite-upi",
			Doc:  "cross-socket bus can never saturate",
			Mutate: func(s *topology.NodeSpec) {
				s.Mem.LinkGBs = 10000
			},
		},
	}
}

// Ablation runs the Fig 4 full-load configuration (STREAM TRIAD on all
// cores, data near NIC, comm thread far) under each ablated model and
// reports the headline metrics.
func Ablation(env Env) *trace.Table {
	type ablationCell struct {
		LatFactor, BwDrop, StreamGBps float64
	}
	cases := ablationCases()
	pts := make([]Point, 0, len(cases))
	for _, c := range cases {
		c := c
		pts = append(pts, Point{
			// The case name determines the spec mutation; everything else is
			// the campaign spec (hashed into the cache base key).
			Key: fmt.Sprintf("ablation/%s", c.Name),
			Fn: func(env Env) any {
				spec := env.Spec.Clone()
				c.Mutate(spec)
				caseEnv := env
				caseEnv.Spec = spec
				caseEnv.Runs = 1
				pts := Fig4Contention(caseEnv, ContentionConfig{
					Data: Near, CommThread: Far, CoreCounts: []int{spec.Cores() - 1},
				})
				pt := pts[0]
				latFactor := 0.0
				if m := pt.Latency.CommAlone.Median; m > 0 {
					latFactor = pt.Latency.CommTogether.Median / m
				}
				bwDrop := 0.0
				if a := pt.Bandwidth.BandwidthAlone(); a > 0 {
					bwDrop = 100 * (1 - pt.Bandwidth.BandwidthTogether()/a)
				}
				return ablationCell{
					LatFactor:  latFactor,
					BwDrop:     bwDrop,
					StreamGBps: pt.Bandwidth.ComputeTogether.Median / 1e9,
				}
			},
		})
	}
	t := trace.NewTable("Ablation — Fig 4 full-load point with one model mechanism disabled at a time",
		"variant", "latency_factor", "bandwidth_drop_%", "stream_GBps_per_core", "note")
	for i, cell := range RunPointsAs[ablationCell](env, pts) {
		t.Add(cases[i].Name, cell.LatFactor, cell.BwDrop, cell.StreamGBps, cases[i].Doc)
	}
	return t
}
