package bench

import (
	"fmt"
	"testing"

	"repro/internal/topology"
)

// Cross-cluster checks: the paper reports how the henri findings carry
// over (or not) to bora (Omni-Path), billy (EPYC) and pyxis (ThunderX2).

func TestBoraBandwidthImpactedLater(t *testing.T) {
	// §4.2: "On bora nodes, the network bandwidth is impacted, but
	// later: from 20 computing cores" (vs ≈3–5 on henri) — each bora
	// socket has the full 6-channel controller.
	onset := func(spec *topology.NodeSpec) int {
		spec.NIC.NoiseFrac = 0
		env := Env{Spec: spec, Seed: 1, Runs: 1}
		pts := Fig4Contention(env, ContentionConfig{
			Data: Near, CommThread: Far,
			CoreCounts: []int{2, 5, 8, 12, 16, 20, 24, 30, 35},
		})
		for _, pt := range pts {
			if pt.Bandwidth.BandwidthTogether() < 0.93*pt.Bandwidth.BandwidthAlone() {
				return pt.Cores
			}
		}
		return 99
	}
	henri := onset(topology.Henri())
	bora := onset(topology.Bora())
	if bora <= henri {
		t.Fatalf("bora onset (%d cores) not later than henri's (%d)", bora, henri)
	}
	if bora < 8 || bora > 30 {
		t.Fatalf("bora onset %d cores, want ≈20", bora)
	}
}

func TestBoraOmniPathWideDeviation(t *testing.T) {
	// §2.2/§3.2: Omni-Path bandwidth shows a much wider run-to-run
	// deviation than InfiniBand.
	spread := func(spec *topology.NodeSpec) float64 {
		env := Env{Spec: spec, Seed: 1, Runs: 3}
		r := Interference(env, BandwidthConfig(), ComputeConfig{})
		return r.CommAlone.RelSpread()
	}
	ib := spread(topology.Henri())
	opa := spread(topology.Bora())
	if opa <= ib*2 {
		t.Fatalf("Omni-Path spread %.4f not well above InfiniBand's %.4f", opa, ib)
	}
}

func TestBillyContentionShapeHolds(t *testing.T) {
	// §4.2: "Results on billy and pyxis nodes are similar to those
	// observed on henri": full-load bandwidth drop and latency rise.
	spec := topology.Billy()
	spec.NIC.NoiseFrac = 0
	env := Env{Spec: spec, Seed: 1, Runs: 1}
	pts := Fig4Contention(env, ContentionConfig{
		Data: Near, CommThread: Far, CoreCounts: []int{spec.Cores() - 1},
	})
	pt := pts[0]
	drop := 1 - pt.Bandwidth.BandwidthTogether()/pt.Bandwidth.BandwidthAlone()
	if drop < 0.4 {
		t.Fatalf("billy full-load bandwidth drop %.2f, want substantial", drop)
	}
	latFactor := pt.Latency.CommTogether.Median / pt.Latency.CommAlone.Median
	if latFactor < 1.15 {
		t.Fatalf("billy full-load latency factor %.2f, want a visible rise", latFactor)
	}
}

func TestPyxisContentionShapeHolds(t *testing.T) {
	spec := topology.Pyxis()
	spec.NIC.NoiseFrac = 0
	env := Env{Spec: spec, Seed: 1, Runs: 1}
	pts := Fig4Contention(env, ContentionConfig{
		Data: Near, CommThread: Far, CoreCounts: []int{spec.Cores() - 1},
	})
	pt := pts[0]
	drop := 1 - pt.Bandwidth.BandwidthTogether()/pt.Bandwidth.BandwidthAlone()
	if drop < 0.3 {
		t.Fatalf("pyxis full-load bandwidth drop %.2f, want substantial", drop)
	}
}

func TestBillyIntensityRidgeHigherThanHenri(t *testing.T) {
	// §4.5: billy's memory/compute boundary sits at ≈20 flop/B (vs 6 on
	// henri): wider sockets sharing narrower per-NUMA controllers push
	// the ridge up.
	ridge := func(spec *topology.NodeSpec) float64 {
		spec.NIC.NoiseFrac = 0
		env := Env{Spec: spec, Seed: 1, Runs: 1}
		pts := Fig7Intensity(env, spec.Cores()-1, []int{12, 48, 96, 192, 384, 768})
		for _, pt := range pts {
			if pt.Bandwidth.BandwidthTogether() > 0.9*pt.Bandwidth.BandwidthAlone() {
				return pt.Intensity
			}
		}
		return 1e9
	}
	h := ridge(topology.Henri())
	b := ridge(topology.Billy())
	if b <= h {
		t.Fatalf("billy ridge (%.1f flop/B) not above henri's (%.1f)", b, h)
	}
}

func TestAblationMechanismRoles(t *testing.T) {
	// The ablation table must demonstrate each mechanism's role:
	// disabling DMA arbitration deepens the bandwidth drop; disabling
	// latency contention (or making the UPI infinite) flattens the
	// latency factor.
	spec := topology.Henri()
	spec.NIC.NoiseFrac = 0
	env := Env{Spec: spec, Seed: 1, Runs: 1}
	tbl := Ablation(env)
	get := func(name string) (lat, drop float64) {
		for _, row := range tbl.Rows {
			if row[0] == name {
				return atof(t, row[1]), atof(t, row[2])
			}
		}
		t.Fatalf("missing ablation row %q", name)
		return 0, 0
	}
	fullLat, fullDrop := get("full-model")
	noArbLat, noArbDrop := get("no-dma-arbitration")
	noLatLat, noLatDrop := get("no-latency-contention")
	noUpiLat, _ := get("infinite-upi")
	if noArbDrop <= fullDrop+5 {
		t.Fatalf("removing DMA arbitration did not deepen the drop: %.1f vs %.1f", noArbDrop, fullDrop)
	}
	if noLatLat > 1.1 || noUpiLat > 1.2 {
		t.Fatalf("latency factor survives without its mechanisms: noLat=%.2f noUPI=%.2f", noLatLat, noUpiLat)
	}
	if fullLat < 1.5 {
		t.Fatalf("full model latency factor %.2f too low", fullLat)
	}
	// Bandwidth mechanisms are orthogonal to the latency ones.
	if noLatDrop < fullDrop-5 || noArbLat < fullLat-0.3 {
		t.Fatalf("ablations not orthogonal: noLatDrop=%.1f noArbLat=%.2f", noLatDrop, noArbLat)
	}
}

func atof(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmt.Sscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}
