package bench

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/taskrt"
	"repro/internal/trace"
)

// This file implements the `faults-crash` experiment family: the
// fault-tolerant communication and task-runtime stack exercised under
// injected node crashes — ping-pong against a peer that dies mid-run
// (failure detection latency, clean ErrPeerDead surfacing), and a
// resilient distributed CG whose checkpoint/rollback recovery converges
// to the exact same residual as the healthy run.

// cgMath is a host-side conjugate-gradient solve on a small SPD
// tridiagonal system. The simulated tasks model the cost of the solver;
// this mirrors its numerics so the experiment can assert bit-identical
// convergence across healthy and crash-recovered executions: each
// completed simulated iteration applies one CG step, checkpoints deep-
// copy the state, and rollbacks restore it, so a replayed iteration
// redoes the exact same float arithmetic.
type cgMath struct {
	n       int
	x, r, p []float64
	rsold   float64
	steps   int
}

// newCGMath builds the system A x = b with A tridiagonal (2.001 on the
// diagonal, -1 off it — strictly diagonally dominant, hence SPD) and
// b = ones, starting from x = 0.
func newCGMath(n int) *cgMath {
	m := &cgMath{n: n, x: make([]float64, n), r: make([]float64, n), p: make([]float64, n)}
	for i := 0; i < n; i++ {
		m.r[i] = 1 // r = b - A*0 = b
		m.p[i] = 1
	}
	m.rsold = float64(n)
	return m
}

// matvec computes A*v for the tridiagonal system.
func (m *cgMath) matvec(v []float64) []float64 {
	out := make([]float64, m.n)
	for i := 0; i < m.n; i++ {
		s := 2.001 * v[i]
		if i > 0 {
			s -= v[i-1]
		}
		if i < m.n-1 {
			s -= v[i+1]
		}
		out[i] = s
	}
	return out
}

// step applies one CG iteration.
func (m *cgMath) step() {
	ap := m.matvec(m.p)
	var pap float64
	for i := 0; i < m.n; i++ {
		pap += m.p[i] * ap[i]
	}
	alpha := m.rsold / pap
	var rsnew float64
	for i := 0; i < m.n; i++ {
		m.x[i] += alpha * m.p[i]
		m.r[i] -= alpha * ap[i]
		rsnew += m.r[i] * m.r[i]
	}
	beta := rsnew / m.rsold
	for i := 0; i < m.n; i++ {
		m.p[i] = m.r[i] + beta*m.p[i]
	}
	m.rsold = rsnew
	m.steps++
}

// resid returns the residual 2-norm.
func (m *cgMath) resid() float64 { return math.Sqrt(m.rsold) }

// clone deep-copies the solver state (a checkpoint).
func (m *cgMath) clone() *cgMath {
	c := &cgMath{n: m.n, rsold: m.rsold, steps: m.steps}
	c.x = append([]float64(nil), m.x...)
	c.r = append([]float64(nil), m.r...)
	c.p = append([]float64(nil), m.p...)
	return c
}

// restore rewinds the solver to a checkpoint.
func (m *cgMath) restore(c *cgMath) {
	copy(m.x, c.x)
	copy(m.r, c.r)
	copy(m.p, c.p)
	m.rsold = c.rsold
	m.steps = c.steps
}

// crashSchedule builds a permanent single-node crash at the given
// instant.
func crashSchedule(node int, at sim.Duration) *fault.Schedule {
	return &fault.Schedule{Events: []fault.Event{
		{Kind: fault.NodeCrash, Node: node, From: -1, To: -1, At: at},
	}}
}

// runCrashPingPong runs a fault-tolerant 4-byte ping-pong under the
// given schedule: the initiator measures per-iteration latency until it
// either completes or its peer is declared dead.
func runCrashPingPong(env Env, sched *fault.Schedule) (iters int, detectedUs float64, latUs float64, status string) {
	fenv := env
	fenv.Faults = sched
	c, w := newWorld(fenv, fenv.Seed)
	var det *mpi.Detector
	if sched.Crashy() {
		det = w.StartHeartbeat(mpi.DefaultHeartbeat())
	}
	const size, tag, maxIters = 4, 7000, 4000
	var lats []float64
	status = "completed"
	c.K.Spawn("ft-init", func(p *sim.Proc) {
		r := w.Rank(0)
		buf := r.Node.Alloc(size, r.Node.Spec.NIC.NUMA)
		for i := 0; i < maxIters; i++ {
			start := p.Now()
			if err := r.SendFT(p, 1, tag, buf, size); err != nil {
				status = err.Error()
				break
			}
			if err := r.RecvFT(p, 1, tag+1, buf, size); err != nil {
				status = err.Error()
				break
			}
			iters++
			lats = append(lats, p.Now().Sub(start).Seconds()/2)
		}
		if det != nil {
			det.Stop()
		}
	})
	c.K.Spawn("ft-resp", func(p *sim.Proc) {
		r := w.Rank(1)
		buf := r.Node.Alloc(size, r.Node.Spec.NIC.NUMA)
		for i := 0; i < maxIters; i++ {
			if r.RecvFT(p, 0, tag, buf, size) != nil {
				return
			}
			if r.SendFT(p, 0, tag+1, buf, size) != nil {
				return
			}
		}
	})
	c.K.Run()
	if det != nil && det.Dead(1) {
		detectedUs = sim.Duration(det.DeadAt(1)).Seconds() * 1e6
	}
	latUs = stats.Summarize(lats).Median * 1e6
	return iters, detectedUs, latUs, status
}

// CrashPingPong reports the fault-tolerant ping-pong under peer death:
// how many iterations complete before the crash, when the failure
// detector declares the death, and how the operation surfaces it.
func CrashPingPong(env Env) *trace.Table {
	t := trace.NewTable("FAULTS — ping-pong under peer node crash (heartbeat detection, ErrPeerDead)",
		"scenario", "iters_done", "crash_at_us", "detected_us", "latency_us", "status")
	type sc struct {
		name    string
		sched   *fault.Schedule
		crashUs float64
	}
	scenarios := []sc{
		{"none", nil, 0},
		{"crash-n1@1ms", crashSchedule(1, sim.Millisecond), 1000},
		{"crash-n1@3ms", crashSchedule(1, 3*sim.Millisecond), 3000},
	}
	if env.Faults != nil {
		scenarios = []sc{{"custom", env.Faults, 0}}
	}
	for _, s := range scenarios {
		iters, detUs, latUs, status := runCrashPingPong(env, s.sched)
		t.Add(s.name, float64(iters), s.crashUs, detUs, latUs, status)
	}
	return t
}

// runCrashCG runs the resilient distributed CG once under the given
// schedule and returns the run statistics plus the final residual,
// pre-formatted to full precision so the goldens can assert the healthy
// and crash-recovered runs converge to the byte-identical value.
func runCrashCG(env Env, sched *fault.Schedule) (taskrt.ResilientStats, string) {
	fenv := env
	fenv.Faults = sched
	_, w, rts := starpuPair(fenv, fenv.Seed, -1, []int{1, 2}, taskrt.DefaultBackoff)
	det := w.StartHeartbeat(mpi.DefaultHeartbeat())
	cg := newCGMath(64)
	snaps := map[int]*cgMath{-1: cg.clone()}
	app := &taskrt.ResilientApp{
		Name:            "cg",
		Slice:           func(i int) machine.ComputeSpec { return kernels.CGBlock(512, 512, -1) },
		TasksPerIter:    8,
		Iterations:      12,
		MsgSize:         256 << 10,
		HandleNUMA:      -1,
		CheckpointEvery: 3,
		CheckpointBytes: 1 << 20,
		OnIteration:     func(int) { cg.step() },
		OnCheckpoint:    func(it int) { snaps[it] = cg.clone() },
		OnRollback:      func(ckpt int) { cg.restore(snaps[ckpt]) },
	}
	st := app.Run(rts[:], det)
	return st, fmt.Sprintf("%.10e", cg.resid())
}

// CrashCG reports the resilient distributed CG surviving a mid-run node
// crash: the survivors detect the death, shrink the ring, roll back to
// the last checkpoint, re-execute the dead rank's tasks, and converge
// to the exact residual of the healthy run — at the cost of the listed
// recovery time.
func CrashCG(env Env) *trace.Table {
	t := trace.NewTable("FAULTS — resilient CG under node crash (lineage re-execution + checkpoint rollback)",
		"scenario", "iters", "residual", "crashes", "reexec_tasks", "rollback_iters", "checkpoints", "recovery_ms", "elapsed_ms", "survivors")
	add := func(name string, st taskrt.ResilientStats, resid string) {
		t.Add(name, float64(st.CompletedIters), resid, float64(st.Crashes),
			st.TasksReexec, st.RollbackIters, st.Checkpoints,
			st.RecoverySecs*1e3, st.Elapsed.Seconds()*1e3, float64(st.Survivors))
	}
	healthy, hres := runCrashCG(env, nil)
	add("healthy", healthy, hres)
	if env.Faults != nil {
		st, res := runCrashCG(env, env.Faults)
		add("custom", st, res)
		return t
	}
	// Crash node 1 at 40% of the healthy runtime — deterministically
	// mid-run whatever the cluster spec.
	crashAt := sim.DurationOfSeconds(healthy.Elapsed.Seconds() * 0.4)
	st, res := runCrashCG(env, crashSchedule(1, crashAt))
	add(fmt.Sprintf("crash-n1@%.0fus", crashAt.Seconds()*1e6), st, res)
	return t
}
