package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/kernels"
)

// diffPoints is a small point set exercising every pooled subsystem:
// pure ping-pong (eager and rendezvous sizes), CPU-bound compute,
// memory-bound compute with placement, and a multi-run config.
func diffPoints() []Point {
	lat := LatencyConfig()
	lat.Iters, lat.Warmup = 8, 2
	bw := BandwidthConfig()
	bw.Iters, bw.Warmup = 2, 1
	cg := ComputeConfig{Slice: kernels.CGBlock(64, 64, -1), Cores: 3, MinIters: 2}
	triad := ComputeConfig{Slice: kernels.StreamTriad(1<<14, 0), Cores: 2, MinIters: 2}
	cpu := ComputeConfig{Slice: kernels.PrimeCount(1e5), Cores: 2, MinIters: 2}
	return []Point{
		{Key: "t/arena/lat", Fn: func(e Env) any { return Interference(e, lat, ComputeConfig{}) }},
		{Key: "t/arena/bw", Fn: func(e Env) any { return Interference(e, bw, ComputeConfig{}) }},
		{Key: "t/arena/cg", Fn: func(e Env) any { return Interference(e, lat, cg) }},
		{Key: "t/arena/triad", Fn: func(e Env) any { return Interference(e, bw, triad) }},
		{Key: "t/arena/cpu", Fn: func(e Env) any { return Interference(e, lat, cpu) }},
	}
}

func encodeRecord(t *testing.T, rec PointRecord) []byte {
	t.Helper()
	if rec.Panic != nil {
		t.Fatalf("point %q panicked: %v", rec.Key, rec.Panic)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestPooledEnvMatchesFresh is the differential lock on the world
// arena: executing the same points through pooled environments — both
// on a cold arena (worlds freshly built, then parked) and on a warm one
// (worlds rewound and reused) — must produce records byte-identical to
// a NoPool run that builds every world from scratch.
func TestPooledEnvMatchesFresh(t *testing.T) {
	pts := diffPoints()

	fresh := quietEnv()
	fresh.NoPool = true
	want := make([][]byte, len(pts))
	for i, p := range pts {
		want[i] = encodeRecord(t, ExecutePoint(fresh, p))
	}

	pooled := quietEnv()
	for pass := 0; pass < 3; pass++ {
		for i, p := range pts {
			got := encodeRecord(t, ExecutePoint(pooled, p))
			if !bytes.Equal(got, want[i]) {
				t.Errorf("pass %d point %q: pooled record differs from fresh\npooled: %s\nfresh:  %s",
					pass, p.Key, got, want[i])
			}
		}
	}

	arena.mu.Lock()
	parked := arena.count
	arena.mu.Unlock()
	if parked == 0 {
		t.Fatal("arena parked no worlds: pooling never engaged")
	}
}

// TestArenaReuseStorm pushes the full differential point set through
// pooled execution many times over, interleaving seeds and spec
// mutations, so a reset protocol that leaks any state across reuses
// (counters, frequency governors, link capacities, matching queues)
// diverges from the per-seed fresh baseline. Run under -race this also
// exercises the arena's locking from the campaign pool tests.
func TestArenaReuseStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("reuse storm; skipped with -short")
	}
	pts := diffPoints()
	want := map[string][]byte{}
	for seed := int64(1); seed <= 3; seed++ {
		fresh := quietEnv()
		fresh.Seed = seed
		fresh.NoPool = true
		for _, p := range pts {
			want[fmt.Sprintf("%s@%d", p.Key, seed)] = encodeRecord(t, ExecutePoint(fresh, p))
		}
	}
	pooled := quietEnv()
	for pass := 0; pass < 4; pass++ {
		for seed := int64(1); seed <= 3; seed++ {
			env := pooled
			env.Seed = seed
			for _, p := range pts {
				got := encodeRecord(t, ExecutePoint(env, p))
				if !bytes.Equal(got, want[fmt.Sprintf("%s@%d", p.Key, seed)]) {
					t.Fatalf("pass %d seed %d point %q: pooled record diverged", pass, seed, p.Key)
				}
			}
		}
	}
}
