package bench

import (
	"sync"

	"repro/internal/machine"
	"repro/internal/mpi"
)

// The world arena recycles fully-drained simulated worlds (cluster +
// network + MPI communicator) across sweep points. Building a world is
// the dominant allocation cost of a point — kernel, fluid model,
// per-node resources, frequency models, ranks — and every point of a
// campaign builds several. Since almost all points share one node
// shape, a drained world can be rewound (Cluster.Reset, Network.Reset,
// World.Reset) and reused with a byte-identical event sequence, so the
// steady-state campaign allocates no worlds at all.
//
// Pooling is restricted to worlds that are provably clean:
//
//   - healthy (no fault injector): fault schedules leave retransmission
//     timers, watchers and per-run injector state behind;
//   - legacy two-node network (no fabric): fabric experiments size their
//     own clusters and bypass newWorld anyway;
//   - drained kernel: no pending events and no live processes.
//
// Worlds are keyed by the node shape so a point that mutates per-spec
// scalars (frequencies, bandwidths, NIC parameters) still reuses a
// world of the same geometry — Reset rebinds every spec-derived value.

// pooledWorld is one reusable world.
type pooledWorld struct {
	c *machine.Cluster
	w *mpi.World
}

// worldKeeper collects the worlds one point execution builds, so they
// can be released together once the point's record (including its meter
// reads) is sealed. Point execution is single-threaded, so the keeper
// needs no lock.
type worldKeeper struct {
	worlds []pooledWorld
}

// worldArena is the global shape-keyed freelist.
type worldArena struct {
	mu    sync.Mutex
	free  map[machine.ShapeKey][]pooledWorld
	count int
}

// arenaCap bounds the total number of parked worlds. Each world keeps
// its parked coroutine goroutines alive, so the bound also bounds the
// goroutine high-water mark; beyond it released worlds are shut down
// instead of pooled.
const arenaCap = 96

var arena = worldArena{free: map[machine.ShapeKey][]pooledWorld{}}

// get pops a parked world of the given shape, or returns false.
func (a *worldArena) get(shape machine.ShapeKey) (pooledWorld, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	q := a.free[shape]
	n := len(q)
	if n == 0 {
		return pooledWorld{}, false
	}
	pw := q[n-1]
	q[n-1] = pooledWorld{}
	a.free[shape] = q[:n-1]
	a.count--
	return pw, true
}

// put parks a drained world for reuse, or shuts it down when the arena
// is full (unparking its pooled coroutines so they exit).
func (a *worldArena) put(pw pooledWorld) {
	a.mu.Lock()
	if a.count >= arenaCap {
		a.mu.Unlock()
		pw.c.K.Shutdown()
		return
	}
	shape := pw.c.Shape()
	a.free[shape] = append(a.free[shape], pw)
	a.count++
	a.mu.Unlock()
}

// releaseWorlds returns every world a point execution built to the
// arena, keeping only those that are provably drained and were eligible
// for pooling in the first place (newWorld only records such worlds).
func releaseWorlds(keep *worldKeeper) {
	for i, pw := range keep.worlds {
		keep.worlds[i] = pooledWorld{}
		if !pw.c.K.Idle() || pw.c.K.LiveProcs() != 0 {
			// A panicked or abandoned run left the world mid-flight;
			// dropping it is always safe.
			continue
		}
		arena.put(pw)
	}
	keep.worlds = keep.worlds[:0]
}
