package bench

import (
	"fmt"

	"repro/internal/kernels"
	"repro/internal/machine"
	"repro/internal/mpi"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/taskrt"
	"repro/internal/topology"
	"repro/internal/trace"
)

// starpuPair builds a two-node cluster with one runtime per node.
func starpuPair(env Env, seed int64, commCore int, workers []int, backoff taskrt.Backoff) (*machine.Cluster, *mpi.World, [2]*taskrt.Runtime) {
	c, w := newWorld(env, seed)
	var rts [2]*taskrt.Runtime
	for i := 0; i < 2; i++ {
		if commCore >= 0 {
			w.Rank(i).SetCommCore(commCore)
		}
		rts[i] = taskrt.New(taskrt.Config{
			Node:        c.Nodes[i],
			Rank:        w.Rank(i),
			MainCore:    0,
			CommCore:    w.Rank(i).CommCore,
			WorkerCores: workers,
			Backoff:     backoff,
		})
		rts[i].Start()
	}
	return c, w, rts
}

// starpuLatency runs a runtime-level ping-pong and returns the
// half-round-trip latencies.
func starpuLatency(env Env, seed int64, size int64, commCore, dataNUMA int,
	workers []int, backoff taskrt.Backoff, paused bool) []float64 {
	c, _, rts := starpuPair(env, seed, commCore, workers, backoff)
	if paused {
		rts[0].PauseWorkers()
		rts[1].PauseWorkers()
	}
	var pps [2]*taskrt.PingPong
	for i := 0; i < 2; i++ {
		numa := env.Spec.NIC.NUMA
		if dataNUMA >= 0 {
			numa = dataNUMA
		}
		pps[i] = &taskrt.PingPong{
			Size: size, Iters: 15, Warmup: 3,
			Buf: c.Nodes[i].Alloc(maxInt64(size, 1), numa),
		}
	}
	var lats []sim.Duration
	c.K.Spawn("init", func(p *sim.Proc) {
		lats = pps[0].Initiate(p, rts[0], 1)
		rts[0].Shutdown()
		rts[1].Shutdown()
	})
	c.K.Spawn("resp", func(p *sim.Proc) { pps[1].Respond(p, rts[1], 0) })
	c.K.RunUntil(sim.Time(60 * sim.Second))
	xs := make([]float64, len(lats))
	for i, l := range lats {
		xs[i] = l.Seconds()
	}
	return xs
}

// RuntimeOverheadResult compares raw-MPI and runtime latency (§5.2).
type RuntimeOverheadResult struct {
	Cluster         string
	RawLatency      stats.Summary
	RuntimeLatency  stats.Summary
	OverheadSeconds float64
}

// RuntimeOverhead measures the latency overhead added by the task-based
// runtime's software stack (§5.2: +38 µs on henri, +23 µs on billy,
// +45 µs on pyxis). Workers are paused to isolate the path cost.
func RuntimeOverhead(env Env) RuntimeOverheadResult {
	raw := Interference(env, LatencyConfig(), ComputeConfig{})
	var lats []float64
	for run := 0; run < env.runs(); run++ {
		lats = append(lats, starpuLatency(env, env.Seed+int64(run), 4, -1, -1,
			[]int{1, 2}, taskrt.DefaultBackoff, true)...)
	}
	rt := stats.Summarize(lats)
	return RuntimeOverheadResult{
		Cluster:         env.Spec.Name,
		RawLatency:      raw.CommAlone,
		RuntimeLatency:  rt,
		OverheadSeconds: rt.Median - raw.CommAlone.Median,
	}
}

// Fig8Point is one placement scheme of Figure 8.
type Fig8Point struct {
	DataClose, ThreadClose bool
	Latency                stats.Summary
}

// Fig8Runtime reproduces Figure 8: runtime-level ping-pong latency for
// the four data-locality × communication-thread placements ("close"
// means on the NIC's NUMA node). Workers are paused; the effect under
// study is the software path plus NUMA distance of the handle data.
func Fig8Runtime(env Env) []Fig8Point {
	closeFar := func(b bool) string {
		if b {
			return "close"
		}
		return "far"
	}
	var pts []Point
	for _, dataClose := range []bool{true, false} {
		for _, threadClose := range []bool{true, false} {
			dataClose, threadClose := dataClose, threadClose
			pts = append(pts, Point{
				Key: fmt.Sprintf("fig8/data=%s/thread=%s", closeFar(dataClose), closeFar(threadClose)),
				Fn: func(env Env) any {
					spec := env.Spec
					dataNUMA := spec.NIC.NUMA
					if !dataClose {
						dataNUMA = spec.NUMANodes() - 1
					}
					threadNUMA := spec.NIC.NUMA
					if !threadClose {
						threadNUMA = spec.NUMANodes() - 1
					}
					commCore := spec.LastCoreOfNUMA(threadNUMA)
					lats := make([]float64, 0, env.runs()*15)
					for run := 0; run < env.runs(); run++ {
						lats = append(lats, starpuLatency(env, env.Seed+int64(run), 4,
							commCore, dataNUMA, []int{1, 2}, taskrt.DefaultBackoff, true)...)
					}
					return Fig8Point{
						DataClose: dataClose, ThreadClose: threadClose,
						Latency: stats.SummarizeInPlace(lats),
					}
				},
			})
		}
	}
	return RunPointsAs[Fig8Point](env, pts)
}

// Fig8Table renders Figure 8.
func Fig8Table(points []Fig8Point) *trace.Table {
	closeFar := func(b bool) string {
		if b {
			return "close"
		}
		return "far"
	}
	t := trace.NewTable("Fig 8 — impact of data locality and thread placement on StarPU latency",
		"data", "comm_thread", "latency_us")
	for _, pt := range points {
		t.Add(closeFar(pt.DataClose), closeFar(pt.ThreadClose), pt.Latency.Median*1e6)
	}
	return t
}

// Fig9Point is one polling configuration of Figure 9.
type Fig9Point struct {
	Label   string
	Backoff taskrt.Backoff
	Paused  bool
	Latency stats.Summary
}

// Fig9Polling reproduces Figure 9: ping-pong latency while the
// runtime's workers idle-poll the task queue with different maximum
// backoffs (2 = very frequent polling, 32 = default, 10000 = rare), or
// paused (no polling at all). All non-reserved cores run workers.
func Fig9Polling(env Env) []Fig9Point {
	spec := env.Spec
	var workers []int
	commCore := spec.LastCoreOfNUMA(spec.NUMANodes() - 1)
	for c := 1; c < spec.Cores(); c++ {
		if c != commCore {
			workers = append(workers, c)
		}
	}
	configs := []Fig9Point{
		{Label: "backoff-2", Backoff: taskrt.Backoff{Min: 1, Max: 2}},
		{Label: "default-32", Backoff: taskrt.Backoff{Min: 1, Max: 32}},
		{Label: "backoff-10000", Backoff: taskrt.Backoff{Min: 1, Max: 10000}},
		{Label: "paused", Backoff: taskrt.DefaultBackoff, Paused: true},
	}
	pts := make([]Point, 0, len(configs))
	for _, cfg := range configs {
		cfg := cfg
		pts = append(pts, Point{
			Key: fmt.Sprintf("fig9/%s/workers=%d", cfg.Label, len(workers)),
			Fn: func(env Env) any {
				lats := make([]float64, 0, env.runs()*15)
				for run := 0; run < env.runs(); run++ {
					lats = append(lats, starpuLatency(env, env.Seed+int64(run), 4,
						commCore, -1, workers, cfg.Backoff, cfg.Paused)...)
				}
				cfg.Latency = stats.SummarizeInPlace(lats)
				return cfg
			},
		})
	}
	return RunPointsAs[Fig9Point](env, pts)
}

// Fig9Table renders Figure 9.
func Fig9Table(points []Fig9Point) *trace.Table {
	t := trace.NewTable("Fig 9 — impact of polling workers on network latency",
		"workers", "latency_us")
	for _, pt := range points {
		t.Add(pt.Label, pt.Latency.Median*1e6)
	}
	return t
}

// Fig10Point is one worker count of Figure 10 for one kernel.
type Fig10Point struct {
	Kernel        string
	Workers       int
	SendBandwidth float64 // bytes/s as perceived by the sender
	StallFraction float64 // fraction of cycles stalled on memory
}

// Fig10Kernels reproduces Figure 10: dense CG and GEMM built on the
// task runtime, distributed on two nodes, varying the number of
// workers. For each execution it reports the sending network bandwidth
// (library profiling) and the fraction of CPU time stalled on memory
// (PMU counters). The execution parameters (matrix sizes, iteration
// counts) are identical across worker counts, as in the paper.
func Fig10Kernels(env Env, workerCounts []int) []Fig10Point {
	if len(workerCounts) == 0 {
		workerCounts = []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 32, 34}
	}
	var pts []Point
	for _, kname := range []string{"cg", "gemm"} {
		for _, nw := range workerCounts {
			if nw > env.Spec.Cores()-2 {
				continue
			}
			kname, nw := kname, nw
			pts = append(pts, Point{
				Key: fmt.Sprintf("fig10/kernel=%s/workers=%d", kname, nw),
				Fn:  func(env Env) any { return runFig10(env, kname, nw) },
			})
		}
	}
	return RunPointsAs[Fig10Point](env, pts)
}

// Fig10App builds the iterative two-node application for one §6 kernel:
// a fixed problem shape (tasks and communication volume per iteration)
// regardless of the worker count. The exchanged data handles are
// allocated by first touch where workers run (§5.3) — far from the NIC,
// so their DMA path crosses the UPI the compute streams load, a key
// ingredient of the paper's up-to-90% CG send-bandwidth loss.
func Fig10App(spec *topology.NodeSpec, kernel string) *taskrt.App {
	numaOfTask := func(i int) int { return (i / 2) % spec.NUMANodes() }
	app := &taskrt.App{
		Name:         kernel,
		TasksPerIter: 36,
		Iterations:   4,
		HandleNUMA:   -1,
	}
	if kernel == "gemm" {
		// GEMM tiles are cache-blocked and placed by the locality-aware
		// scheduler: their traffic stays on the executing worker's NUMA
		// node; tile-row exchanges are large.
		app.Slice = func(i int) machine.ComputeSpec { return kernels.GEMMTile(512, -1) }
		app.MsgSize = 2 << 20
		app.MsgsPerIter = 4
		return app
	}
	// CG streams the whole (interleaved-allocated) matrix every
	// iteration — heavy cross-NUMA traffic — and exchanges the iterate
	// vector both ways.
	app.Slice = func(i int) machine.ComputeSpec { return kernels.CGBlock(1536, 1536, numaOfTask(i)) }
	app.MsgSize = 512 << 10
	app.MsgsPerIter = 6
	return app
}

// runFig10 executes one kernel at one worker count.
func runFig10(env Env, kernel string, nworkers int) Fig10Point {
	spec := env.Spec
	commCore := spec.LastCoreOfNUMA(spec.NUMANodes() - 1)
	var workers []int
	for c := 1; c < spec.Cores() && len(workers) < nworkers; c++ {
		if c != commCore {
			workers = append(workers, c)
		}
	}
	_, _, rts := starpuPair(env, env.Seed, commCore, workers, taskrt.DefaultBackoff)
	stats := Fig10App(spec, kernel).Run(rts)
	return Fig10Point{
		Kernel:        kernel,
		Workers:       nworkers,
		SendBandwidth: stats.SendBandwidth,
		StallFraction: stats.StallFraction,
	}
}

// Fig10Table renders Figure 10, normalising send bandwidth per kernel
// to its 1-worker value as the paper normalises to nominal.
func Fig10Table(points []Fig10Point) *trace.Table {
	base := map[string]float64{}
	for _, pt := range points {
		if _, ok := base[pt.Kernel]; !ok || pt.SendBandwidth > base[pt.Kernel] {
			base[pt.Kernel] = pt.SendBandwidth
		}
	}
	t := trace.NewTable("Fig 10 — network sends and memory stalls of CG and GEMM executions",
		"kernel", "workers", "send_bandwidth_MBps", "normalized_send_bw", "memory_stall_%")
	for _, pt := range points {
		norm := 0.0
		if base[pt.Kernel] > 0 {
			norm = pt.SendBandwidth / base[pt.Kernel]
		}
		t.Add(pt.Kernel, pt.Workers, pt.SendBandwidth/1e6, norm, pt.StallFraction*100)
	}
	return t
}
