package bench

import (
	"testing"
	"time"

	"repro/internal/fluid"
	"repro/internal/sim"
	"repro/internal/topology"
)

// fabricFluid1k builds the fluid substrate of the 1024-host fat-tree
// (k=16): one resource per directed link (6144 of them), pre-loaded
// with `load` quasi-infinite routed flows so every churn step re-solves
// against a realistically entangled component structure. The flows pair
// host h with a host half the fabric away, so most paths climb to the
// core layer and the components are large.
func fabricFluid1k(tb testing.TB, load int) (*fluid.Model, *topology.Fabric, []*fluid.Resource) {
	tb.Helper()
	spec := topology.FabricPreset("fattree-k16")
	if spec == nil {
		tb.Fatal("fattree-k16 preset missing")
	}
	fab := spec.MustBuild()
	m := fluid.NewModel(sim.NewKernel(1))
	links := make([]*fluid.Resource, len(fab.Links))
	for i := range fab.Links {
		links[i] = m.NewResource(fab.LinkName(i), 12.5e9)
	}
	var buf []int
	for i := 0; i < load; i++ {
		src := (i * 3) % fab.NHosts
		dst := (src + fab.NHosts/2 + i%7) % fab.NHosts
		buf = fab.Route(src, dst, nil, buf)
		uses := make([]fluid.Use, len(buf))
		for j, li := range buf {
			uses[j] = fluid.Use{Resource: links[li], Weight: 1}
		}
		m.StartFlow("bg", 1e18, 12e9, uses, nil)
	}
	return m, fab, links
}

// fabricChurn runs start+cancel steps i..i+n over the loaded fabric:
// each step routes a fresh transfer, starts it, and cancels it — two
// incremental re-solves of the touched components, the unit of work
// every simulated transfer event costs.
func fabricChurn(m *fluid.Model, fab *topology.Fabric, links []*fluid.Resource, steps int) {
	var buf []int
	uses := make([]fluid.Use, 0, 8)
	for i := 0; i < steps; i++ {
		src := (i * 5) % fab.NHosts
		dst := (src + 1 + (i*11)%(fab.NHosts-1)) % fab.NHosts
		buf = fab.Route(src, dst, nil, buf)
		uses = uses[:0]
		for _, li := range buf {
			uses = append(uses, fluid.Use{Resource: links[li], Weight: 1})
		}
		f := m.StartFlow("churn", 1e12, 12e9, uses, nil)
		m.Cancel(f)
	}
}

// BenchmarkFabricSolve1k measures one start+cancel churn step — two
// incremental component re-solves — on the 1024-host fat-tree loaded
// with 512 persistent routed flows. This is the figure BENCH_sim.json
// (schema 5) records as fabric.solve_ns_per_op and the CI fabric job
// ratchets against the sub-second acceptance bar.
func BenchmarkFabricSolve1k(b *testing.B) {
	m, fab, links := fabricFluid1k(b, 512)
	b.ReportAllocs()
	b.ResetTimer()
	fabricChurn(m, fab, links, b.N)
}

// TestFabricSolveBudget1k is the absolute acceptance bar behind the CI
// ratchet: on the 1k-host fat-tree under 512 concurrent flows, the mean
// incremental re-solve step must stay far under a second of wall time.
// The committed BENCH_sim.json records the precise trajectory; this
// test keeps the invariant enforced even where that file is absent.
func TestFabricSolveBudget1k(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-host fabric build; skipped with -short")
	}
	m, fab, links := fabricFluid1k(t, 512)
	if fab.NHosts != 1024 {
		t.Fatalf("fattree-k16 has %d hosts, want 1024", fab.NHosts)
	}
	const steps = 200
	start := time.Now()
	fabricChurn(m, fab, links, steps)
	mean := time.Since(start) / steps
	t.Logf("1k-host fat-tree: %d links, mean churn step %v", len(fab.Links), mean)
	if mean > time.Second {
		t.Fatalf("mean incremental solve step %v exceeds the 1s budget", mean)
	}
}
