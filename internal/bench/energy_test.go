package bench

import "testing"

func TestExtEnergyTradeoff(t *testing.T) {
	// Lim et al. [14] (paper §7): lowering the CPU frequency during a
	// bandwidth-bound communication phase saves energy almost for free,
	// because DMA does the work. This paper's §3.1 counterpoint: a
	// latency-bound phase is clocked by the core, so downclocking costs
	// real time (and, through the longer phase, energy too).
	tbl := ExtEnergy(quietEnv())
	type row struct{ timeMs, joules float64 }
	get := func(phase string, ghz string) row {
		for _, r := range tbl.Rows {
			if r[0] == phase && r[1] == ghz {
				return row{atof(t, r[2]), atof(t, r[3])}
			}
		}
		t.Fatalf("missing row %s/%s in\n%s", phase, ghz, tbl)
		return row{}
	}
	const latPhase = "latency-bound (4B x 2000)"
	const bwPhase = "bandwidth-bound (16MB x 40)"

	latLo, latHi := get(latPhase, "1"), get(latPhase, "2.3")
	bwLo, bwHi := get(bwPhase, "1"), get(bwPhase, "2.3")

	// Latency-bound: downclocking costs >40% time.
	if latLo.timeMs < latHi.timeMs*1.4 {
		t.Fatalf("latency phase barely slowed by downclocking: %.2f vs %.2f ms",
			latLo.timeMs, latHi.timeMs)
	}
	// Bandwidth-bound: downclocking costs <5% time and saves energy.
	if bwLo.timeMs > bwHi.timeMs*1.05 {
		t.Fatalf("bandwidth phase slowed by downclocking: %.2f vs %.2f ms",
			bwLo.timeMs, bwHi.timeMs)
	}
	if bwLo.joules >= bwHi.joules {
		t.Fatalf("bandwidth phase saved no energy: %.2f vs %.2f J",
			bwLo.joules, bwHi.joules)
	}
}

func TestExtCollectivesShape(t *testing.T) {
	tbl := ExtCollectives(quietEnv())
	type row struct{ quiet, contended, slowdown float64 }
	get := func(op string, nodes string) row {
		for _, r := range tbl.Rows {
			if r[0] == op && r[1] == nodes {
				return row{atof(t, r[3]), atof(t, r[4]), atof(t, r[5])}
			}
		}
		t.Fatalf("missing %s/%s", op, nodes)
		return row{}
	}
	// Binomial depth: bcast time grows with log2(nodes), roughly linearly
	// in the tree depth for the rendezvous-sized payload.
	b2, b4, b8 := get("bcast", "2"), get("bcast", "4"), get("bcast", "8")
	if !(b2.quiet < b4.quiet && b4.quiet < b8.quiet) {
		t.Fatalf("bcast quiet times not increasing: %v %v %v", b2.quiet, b4.quiet, b8.quiet)
	}
	if b8.quiet > 4*b2.quiet {
		t.Fatalf("8-node bcast (%v) not log-ish vs 2-node (%v)", b8.quiet, b2.quiet)
	}
	// Contention slows every collective substantially (the p2p findings
	// compose), and allreduce (two tree traversals) more than bcast.
	for _, r := range []row{b2, b4, b8} {
		if r.slowdown < 1.5 {
			t.Fatalf("collective barely slowed under contention: %+v", r)
		}
	}
	a8 := get("allreduce", "8")
	if a8.quiet <= b8.quiet {
		t.Fatalf("allreduce (%v) not slower than bcast (%v)", a8.quiet, b8.quiet)
	}
}
