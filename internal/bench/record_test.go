package bench

import (
	"bytes"
	"testing"
)

// TestRecordBinaryRoundTrip: the binary codec must reproduce every
// field, including all fault counters and an empty payload.
func TestRecordBinaryRoundTrip(t *testing.T) {
	full := PointRecord{
		Schema:     PointSchema,
		Key:        "base/exp/cell=3",
		Payload:    []byte(`{"lat_us":1.5,"bw":[1,2,3]}`),
		SimSeconds: 12.0625,
		Worlds:     7,
		Faults: FaultTotals{
			SendRetries: 1, SendTimeouts: 2, RecvTimeouts: 3, MsgsLost: 4,
			MsgsCorrupted: 5, PeerDeaths: 6, TasksReexecuted: 7,
			RollbackIters: 8, Checkpoints: 9, RecoverySecs: 10.5,
		},
	}
	empty := PointRecord{Schema: PointSchema, Key: "k"}
	for _, rec := range []PointRecord{full, empty} {
		data := rec.EncodeBinary()
		if !IsBinaryRecord(data) {
			t.Fatal("encoded record does not carry the binary framing")
		}
		var got PointRecord
		if err := got.DecodeBinary(data); err != nil {
			t.Fatal(err)
		}
		if got.Schema != rec.Schema || got.Key != rec.Key ||
			got.SimSeconds != rec.SimSeconds || got.Worlds != rec.Worlds ||
			got.Faults != rec.Faults || !bytes.Equal(got.Payload, rec.Payload) {
			t.Fatalf("round-trip drift:\n got %+v\nwant %+v", got, rec)
		}
	}
}

// TestRecordBinaryRejectsDamage: bad magic, truncation at any point,
// and trailing bytes are all decode errors — never silent corruption.
func TestRecordBinaryRejectsDamage(t *testing.T) {
	data := PointRecord{
		Schema: PointSchema, Key: "k", Payload: []byte(`{}`), Worlds: 1,
	}.EncodeBinary()
	var rec PointRecord
	if err := rec.DecodeBinary([]byte("JSON" + string(data[4:]))); err == nil {
		t.Error("bad magic accepted")
	}
	for cut := 1; cut < len(data); cut += 7 {
		if err := rec.DecodeBinary(data[:len(data)-cut]); err == nil {
			t.Errorf("truncation to %d bytes accepted", len(data)-cut)
		}
	}
	if err := rec.DecodeBinary(append(append([]byte(nil), data...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
	if IsBinaryRecord([]byte(`{"schema":1}`)) {
		t.Error("JSON sniffed as binary")
	}
}
