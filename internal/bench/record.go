package bench

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary PointRecord encoding.
//
// The campaign cache moves PointRecords constantly — every Store, every
// Load, every wire round-trip of the remote cache protocol — and JSON
// is a poor fit for that traffic: it re-escapes the embedded payload,
// re-parses float64s, and costs an order of magnitude more CPU and
// bytes than the record's information content. The binary form below is
// the storage and wire format; JSON canonicalisation still happens
// exactly once per point, at the API/golden edge (ExecutePoint encodes
// the payload, RunPointsAs decodes it), so rendered outputs are
// untouched.
//
// Layout (all integers unsigned varints, floats IEEE-754 little-endian):
//
//	magic   "IPR1"               (4 bytes)
//	schema  uvarint              (must equal PointSchema on decode)
//	key     uvarint len + bytes
//	payload uvarint len + bytes  (the JSON-canonical payload, verbatim)
//	sim     float64              (SimSeconds)
//	worlds  uvarint
//	faults  10 × float64         (FaultTotals, field order below)
//
// The format is versioned twice: the magic pins the framing, and the
// schema field pins the measurement semantics exactly like the JSON
// form — a record of either stale version is ignored by the cache, so
// decoding degrades to a recompute, never to corrupt output.

// recordMagic frames binary point records ("Interference Point Record,
// framing 1").
const recordMagic = "IPR1"

// faultFields is the number of float64 counters in FaultTotals; bump
// the magic when it changes.
const faultFields = 10

// IsBinaryRecord reports whether data starts with the binary record
// framing — how the cache layers and the wire protocol distinguish
// binary records from legacy JSON entries.
func IsBinaryRecord(data []byte) bool {
	return len(data) >= len(recordMagic) && string(data[:len(recordMagic)]) == recordMagic
}

// EncodeBinary renders the record in the binary cache format. The Panic
// field is not encoded (panics are never cached).
func (r PointRecord) EncodeBinary() []byte {
	n := len(recordMagic) +
		binary.MaxVarintLen64 + // schema
		binary.MaxVarintLen64 + len(r.Key) +
		binary.MaxVarintLen64 + len(r.Payload) +
		8 + // SimSeconds
		binary.MaxVarintLen64 + // Worlds
		8*faultFields
	buf := make([]byte, 0, n)
	buf = append(buf, recordMagic...)
	buf = binary.AppendUvarint(buf, uint64(r.Schema))
	buf = binary.AppendUvarint(buf, uint64(len(r.Key)))
	buf = append(buf, r.Key...)
	buf = binary.AppendUvarint(buf, uint64(len(r.Payload)))
	buf = append(buf, r.Payload...)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(r.SimSeconds))
	buf = binary.AppendUvarint(buf, uint64(r.Worlds))
	for _, v := range r.Faults.fields() {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

// DecodeBinary parses a binary record, replacing the receiver. It
// rejects framing it does not understand; schema validation is the
// caller's business (the cache treats a schema mismatch as a miss, not
// an error).
func (r *PointRecord) DecodeBinary(data []byte) error {
	d := recDecoder{data: data}
	if string(d.take(len(recordMagic))) != recordMagic {
		return fmt.Errorf("bench: bad point record magic")
	}
	schema := d.uvarint()
	key := d.take(int(d.uvarint()))
	payload := d.take(int(d.uvarint()))
	sim := math.Float64frombits(d.u64())
	worlds := d.uvarint()
	var faults [faultFields]float64
	for i := range faults {
		faults[i] = math.Float64frombits(d.u64())
	}
	if d.err != nil {
		return fmt.Errorf("bench: truncated point record: %w", d.err)
	}
	if len(d.data) != 0 {
		return fmt.Errorf("bench: %d trailing bytes after point record", len(d.data))
	}
	*r = PointRecord{
		Schema:     int(schema),
		Key:        string(key),
		SimSeconds: sim,
		Worlds:     int(worlds),
	}
	if len(payload) > 0 {
		r.Payload = append([]byte(nil), payload...)
	}
	r.Faults.setFields(faults)
	return nil
}

// fields returns the counters in encoding order.
func (t FaultTotals) fields() [faultFields]float64 {
	return [faultFields]float64{
		t.SendRetries, t.SendTimeouts, t.RecvTimeouts, t.MsgsLost, t.MsgsCorrupted,
		t.PeerDeaths, t.TasksReexecuted, t.RollbackIters, t.Checkpoints, t.RecoverySecs,
	}
}

// setFields is the inverse of fields.
func (t *FaultTotals) setFields(f [faultFields]float64) {
	t.SendRetries, t.SendTimeouts, t.RecvTimeouts, t.MsgsLost, t.MsgsCorrupted = f[0], f[1], f[2], f[3], f[4]
	t.PeerDeaths, t.TasksReexecuted, t.RollbackIters, t.Checkpoints, t.RecoverySecs = f[5], f[6], f[7], f[8], f[9]
}

// recDecoder is a cursor over an encoded record that latches the first
// error, so the decode above reads straight-line.
type recDecoder struct {
	data []byte
	err  error
}

var errShortRecord = fmt.Errorf("unexpected end of data")

func (d *recDecoder) take(n int) []byte {
	if d.err != nil || n < 0 || n > len(d.data) {
		if d.err == nil {
			d.err = errShortRecord
		}
		return nil
	}
	b := d.data[:n]
	d.data = d.data[n:]
	return b
}

func (d *recDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.err = errShortRecord
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *recDecoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
