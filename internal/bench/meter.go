package bench

import (
	"sync"

	"repro/internal/sim"
)

// Meter accumulates execution accounting for one experiment: every
// simulated world the drivers build registers its kernel, so that after
// the experiment returns the harness can report how many worlds were
// simulated and how much simulated time they covered. A Meter is safe
// for concurrent use, but the usual pattern is one Meter per experiment
// (see Env.Isolated and the runner package).
type Meter struct {
	mu      sync.Mutex
	kernels []*sim.Kernel
}

func (m *Meter) track(k *sim.Kernel) {
	m.mu.Lock()
	m.kernels = append(m.kernels, k)
	m.mu.Unlock()
}

// Worlds returns how many simulated worlds have been built so far.
func (m *Meter) Worlds() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.kernels)
}

// SimSeconds returns the total simulated time covered by the tracked
// worlds. Call it after the experiment returns: each driver runs its
// kernels to completion, so Now() is each world's end time.
func (m *Meter) SimSeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var total float64
	for _, k := range m.kernels {
		total += sim.Duration(k.Now()).Seconds()
	}
	return total
}
