package bench

import (
	"sync"

	"repro/internal/counters"
	"repro/internal/sim"
)

// Meter accumulates execution accounting for one experiment: every
// simulated world the drivers build registers its kernel, so that after
// the experiment returns the harness can report how many worlds were
// simulated and how much simulated time they covered. A Meter is safe
// for concurrent use, but the usual pattern is one Meter per experiment
// (see Env.Isolated and the runner package).
type Meter struct {
	mu      sync.Mutex
	kernels []*sim.Kernel
	sets    []*counters.Set
	// Absorbed sweep-point accounting (see Absorb): worlds simulated
	// under a point's own meter, including points replayed from cache.
	absorbedSim    float64
	absorbedWorlds int
	absorbedFaults FaultTotals
}

// Absorb folds an already-accounted execution into the meter: sweep
// points run against their own isolated meter (possibly on another
// goroutine, possibly replayed from a cache without simulating at all),
// and the owning experiment absorbs their totals in index order so the
// campaign accounting is identical whichever path produced them.
func (m *Meter) Absorb(simSeconds float64, worlds int, faults FaultTotals) {
	m.mu.Lock()
	m.absorbedSim += simSeconds
	m.absorbedWorlds += worlds
	m.absorbedFaults.merge(faults)
	m.mu.Unlock()
}

func (m *Meter) track(k *sim.Kernel) {
	m.mu.Lock()
	m.kernels = append(m.kernels, k)
	m.mu.Unlock()
}

// Worlds returns how many simulated worlds have been built so far,
// including worlds absorbed from sweep points.
func (m *Meter) Worlds() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.kernels) + m.absorbedWorlds
}

// TrackCounters registers one node's counter set so the harness can
// aggregate fault/recovery statistics over every world an experiment
// built.
func (m *Meter) TrackCounters(s *counters.Set) {
	m.mu.Lock()
	m.sets = append(m.sets, s)
	m.mu.Unlock()
}

// FaultTotals aggregates the fault and recovery counters across every
// tracked node. All fields are zero for healthy experiments.
type FaultTotals struct {
	SendRetries   float64
	SendTimeouts  float64
	RecvTimeouts  float64
	MsgsLost      float64
	MsgsCorrupted float64
	// Crash-recovery totals (zero without node-crash injection).
	PeerDeaths      float64
	TasksReexecuted float64
	RollbackIters   float64
	Checkpoints     float64
	RecoverySecs    float64
}

// add accrues one node's counter set into the totals.
func (t *FaultTotals) add(s *counters.Set) {
	t.SendRetries += s.SendRetries
	t.SendTimeouts += s.SendTimeouts
	t.RecvTimeouts += s.RecvTimeouts
	t.MsgsLost += s.MsgsLost
	t.MsgsCorrupted += s.MsgsCorrupted
	t.PeerDeaths += s.PeerDeaths
	t.TasksReexecuted += s.TasksReexecuted
	t.RollbackIters += s.RollbackIters
	t.Checkpoints += s.Checkpoints
	t.RecoverySecs += s.RecoverySecs
}

// merge accrues another totals value into t.
func (t *FaultTotals) merge(o FaultTotals) {
	t.SendRetries += o.SendRetries
	t.SendTimeouts += o.SendTimeouts
	t.RecvTimeouts += o.RecvTimeouts
	t.MsgsLost += o.MsgsLost
	t.MsgsCorrupted += o.MsgsCorrupted
	t.PeerDeaths += o.PeerDeaths
	t.TasksReexecuted += o.TasksReexecuted
	t.RollbackIters += o.RollbackIters
	t.Checkpoints += o.Checkpoints
	t.RecoverySecs += o.RecoverySecs
}

// Any reports whether any fault activity was recorded.
func (t FaultTotals) Any() bool {
	return t.SendRetries+t.SendTimeouts+t.RecvTimeouts+t.MsgsLost+t.MsgsCorrupted+
		t.PeerDeaths+t.TasksReexecuted+t.RollbackIters+t.Checkpoints+t.RecoverySecs > 0
}

// FaultTotals sums the fault counters of every tracked node. Call it
// after the experiment returns.
func (m *Meter) FaultTotals() FaultTotals {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.absorbedFaults
	for _, s := range m.sets {
		t.add(s)
	}
	return t
}

// SimSeconds returns the total simulated time covered by the tracked
// worlds. Call it after the experiment returns: each driver runs its
// kernels to completion, so Now() is each world's end time.
func (m *Meter) SimSeconds() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	total := m.absorbedSim
	for _, k := range m.kernels {
		total += sim.Duration(k.Now()).Seconds()
	}
	return total
}
